// Running the composite workload against a non-ideal battery (Peukert rate
// effect + internal resistance) versus an ideal energy store: how much
// usable lifetime battery chemistry takes back, and how the draw level
// changes the answer.
//
//   $ ./build/examples/battery_aware_session

#include <cstdio>

#include "src/apps/composite.h"
#include "src/apps/experiments.h"
#include "src/apps/testbed.h"
#include "src/power/battery.h"

namespace {

double Lifetime(bool lowest_fidelity, bool non_ideal) {
  odapps::TestBed bed(odapps::TestBed::Options{.seed = 3, .hw_pm = true, .link = {}});
  if (lowest_fidelity) {
    bed.speech().SetFidelity(0);
    bed.video().SetFidelity(0);
    bed.map().SetFidelity(0);
    bed.web().SetFidelity(0);
  }
  odapps::Settle(bed);
  bed.laptop().accounting().Reset(bed.sim().Now());

  odpower::BatteryConfig config;
  config.nominal_joules = 13500.0;
  config.rated_watts = 10.0;
  if (!non_ideal) {
    config.peukert_exponent = 1.0;
    config.resistance_fraction = 0.0;
  }
  odpower::Battery battery(&bed.sim(), &bed.laptop().accounting(), config);

  odapps::CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  composite.StartPeriodic(odsim::SimDuration::Seconds(25));
  bed.video().PlayLooping(odapps::StandardVideoClips()[0]);

  odsim::SimTime start = bed.sim().Now();
  while (!battery.Exhausted(bed.sim().Now())) {
    bed.sim().RunUntil(bed.sim().Now() + odsim::SimDuration::Seconds(5));
  }
  composite.Stop();
  bed.video().StopLooping();
  battery.Stop();
  return (bed.sim().Now() - start).seconds();
}

}  // namespace

int main() {
  std::printf("Composite workload + background video on 13,500 J:\n\n");
  std::printf("%-18s %-14s %-14s %s\n", "fidelity", "ideal supply",
              "real battery", "chemistry tax");
  for (bool lowest : {false, true}) {
    double ideal = Lifetime(lowest, false);
    double real = Lifetime(lowest, true);
    std::printf("%-18s %6.1f min     %6.1f min     %4.1f%%\n",
                lowest ? "lowest" : "highest", ideal / 60.0, real / 60.0,
                100.0 * (1.0 - real / ideal));
  }
  std::printf(
      "\nHigh draw loses more to Peukert's law and internal resistance, so\n"
      "fidelity adaptation pays twice on a real battery: less work, and the\n"
      "remaining work is extracted more efficiently.\n");
  return 0;
}
