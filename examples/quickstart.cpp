// Quickstart: build a simulated mobile client, play a video at two fidelity
// levels, and compare the energy bills.
//
//   $ cmake -B build -G Ninja && cmake --build build
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/apps/testbed.h"

int main() {
  // A TestBed wires up the whole client: a ThinkPad 560X power model, a
  // 2 Mb/s WaveLAN link, the Odyssey viceroy, and the four adaptive
  // applications (video, speech, map, web).
  odapps::TestBed bed;
  bed.SetHardwarePm(true);  // Disk spin-down, network standby, display off
                            // when idle.

  const odapps::VideoClip& clip = odapps::StandardVideoClips()[0];

  // Play the first 60 seconds at the highest fidelity...
  auto high = bed.Measure([&](odsim::EventFn done) {
    bed.video().PlaySegment(clip, odsim::SimDuration::Seconds(60),
                            std::move(done));
  });

  // ...then again at the lowest fidelity on the goal-directed ladder
  // (Premiere-C compression, quarter window, half frame rate, dim display).
  bed.video().SetFidelity(0);
  auto low = bed.Measure([&](odsim::EventFn done) {
    bed.video().PlaySegment(clip, odsim::SimDuration::Seconds(60),
                            std::move(done));
  });

  std::printf("60 s of %s:\n", clip.name.c_str());
  std::printf("  highest fidelity: %6.1f J (%.2f W average)\n", high.joules,
              high.average_watts());
  std::printf("  lowest fidelity:  %6.1f J (%.2f W average)\n", low.joules,
              low.average_watts());
  std::printf("  energy saved by adaptation: %.0f%%\n",
              100.0 * (1.0 - low.joules / high.joules));

  std::printf("\nWhere the high-fidelity energy went (hardware view):\n");
  for (const auto& [component, joules] : high.by_component) {
    std::printf("  %-10s %7.1f J\n", component.c_str(), joules);
  }
  std::printf("\nAnd by software component (PowerScope view):\n");
  for (const auto& [process, joules] : high.by_process) {
    std::printf("  %-20s %7.1f J  (%.1f s CPU)\n", process.c_str(), joules,
                high.cpu_seconds.at(process));
  }
  return 0;
}
