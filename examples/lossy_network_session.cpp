// Failure injection: the same 22-minute battery goal over a clean and a
// lossy wireless channel.  Retransmissions raise the energy bill; Odyssey
// absorbs the difference by running applications at lower fidelity.
//
//   $ ./build/examples/lossy_network_session

#include <cstdio>

#include "src/apps/goal_scenario.h"

int main() {
  for (double loss : {0.0, 0.10, 0.25}) {
    odapps::GoalScenarioOptions options;
    options.goal = odsim::SimDuration::Minutes(22);
    options.rpc_loss_probability = loss;
    options.seed = 7;
    odapps::GoalScenarioResult result = odapps::RunGoalScenario(options);

    int fidelity_sum = 0;
    for (const auto& [app, level] : result.final_fidelity) {
      fidelity_sum += level;
    }
    std::printf(
        "loss %4.0f%%: %s, residual %5.0f J, %3d adaptations, "
        "final fidelity sum %d (higher = better quality)\n",
        loss * 100.0, result.goal_met ? "goal met " : "exhausted",
        result.residual_joules, result.total_adaptations, fidelity_sum);
  }
  std::printf(
      "\nThe goal holds even when a quarter of all messages are lost — the\n"
      "energy cost of retransmission is paid for with fidelity.\n");
  return 0;
}
