// PowerScope profiling session (Section 2.1): profile a mixed workload —
// a map fetch followed by local speech recognition while a video plays —
// and print the two-table energy profile of Figure 2.
//
//   $ ./build/examples/powerscope_profiling

#include <cstdio>

#include "src/apps/testbed.h"
#include "src/powerscope/profiler.h"

int main() {
  odapps::TestBed bed;
  bed.SetHardwarePm(true);

  // The profiler models the external HP 3458a multimeter sampling current
  // at ~600 Hz plus the kernel system monitor recording PC/PID pairs.
  odscope::Profiler profiler(&bed.sim(), &bed.laptop().machine());

  profiler.Start();
  bool finished = false;
  bed.video().PlayLooping(odapps::StandardVideoClips()[1]);
  bed.map().ViewMap(odapps::StandardMaps()[0], [&] {
    bed.speech().Recognize(odapps::StandardUtterances()[2], [&] {
      bed.video().StopLooping();
      finished = true;
      bed.sim().Stop();
    });
  });
  bed.sim().RunUntil(odsim::SimTime::Seconds(600));
  profiler.Stop();
  if (!finished) {
    std::fprintf(stderr, "workload did not finish\n");
    return 1;
  }

  std::printf("Collected %zu correlated current/PID samples over %.1f s.\n\n",
              profiler.sample_count(), bed.sim().Now().seconds());

  // Offline stage: correlate current levels with PC/PID samples.
  odscope::EnergyProfile profile = profiler.Correlate();
  std::printf("%s\n", profile.Format("Janus").c_str());

  // Cross-check against the analytic ground truth.
  double analytic =
      bed.laptop().accounting().TotalJoules(bed.sim().Now());
  std::printf("Sampled total: %.1f J; analytic ground truth: %.1f J (%.2f%% off)\n",
              profile.TotalJoules(), analytic,
              100.0 * (profile.TotalJoules() - analytic) / analytic);
  return 0;
}
