// Goal-directed adaptation session (Section 5): the user asks for the
// battery to last 22 minutes; Odyssey monitors energy supply and demand and
// directs the applications — a composite speech/web/map workload plus a
// background video — to the fidelity that meets the goal.
//
//   $ ./build/examples/goal_directed_session [goal_minutes]

#include <cstdio>
#include <cstdlib>

#include "src/apps/goal_scenario.h"

int main(int argc, char** argv) {
  double goal_minutes = 22.0;
  if (argc > 1) {
    goal_minutes = std::atof(argv[1]);
    if (goal_minutes <= 0.0) {
      std::fprintf(stderr, "usage: %s [goal_minutes]\n", argv[0]);
      return 1;
    }
  }

  odapps::GoalScenarioOptions options;
  options.initial_joules = 13500.0;
  options.goal = odsim::SimDuration::Minutes(goal_minutes);

  std::printf("Battery: %.0f J.  Goal: make it last %.0f minutes.\n",
              options.initial_joules, goal_minutes);
  std::printf("(At full fidelity this workload drains the battery in ~18 min;\n"
              " at lowest fidelity it lasts ~26 min.)\n\n");

  odapps::GoalScenarioResult result = odapps::RunGoalScenario(options);

  std::printf("Outcome: %s after %.0f s, residual %.0f J (%.1f%%).\n",
              result.goal_met ? "GOAL MET" : "supply exhausted",
              result.elapsed_seconds, result.residual_joules,
              100.0 * result.residual_joules / options.initial_joules);

  std::printf("\nAdaptations issued (upcalls):\n");
  for (const auto& [app, count] : result.adaptations) {
    std::printf("  %-7s %3d changes, final fidelity level %d\n", app.c_str(),
                count, result.final_fidelity.at(app));
  }

  std::printf("\nFidelity trace (time -> new level):\n");
  for (const auto& [app, changes] : result.fidelity_traces) {
    std::printf("  %-7s", app.c_str());
    int shown = 0;
    for (const auto& change : changes) {
      if (shown++ == 12) {
        std::printf(" ...");
        break;
      }
      std::printf(" %.0fs->%d", change.time.seconds(), change.level);
    }
    std::printf("\n");
  }

  std::printf("\nSupply vs predicted demand (every 3 minutes):\n");
  double next = 0.0;
  for (const auto& point : result.timeline) {
    if (point.time.seconds() >= next) {
      std::printf("  t=%5.0fs  supply %6.0f J  demand %6.0f J\n",
                  point.time.seconds(), point.residual_joules,
                  point.demand_joules);
      next += 180.0;
    }
  }
  return result.goal_met ? 0 : 2;
}
