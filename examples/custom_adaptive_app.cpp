// Writing your own adaptive application against the Odyssey API.
//
// A hypothetical "news ticker" registers a three-level fidelity ladder with
// the viceroy, declares a resource expectation window on network bandwidth
// (the original Odyssey API), and receives upcalls when the observed
// bandwidth leaves the window.  The energy goal director uses exactly the
// same ladder via priorities.
//
//   $ ./build/examples/custom_adaptive_app

#include <cstdio>
#include <string>

#include "src/apps/testbed.h"
#include "src/odyssey/application.h"
#include "src/odyssey/viceroy.h"

namespace {

class NewsTicker : public odyssey::AdaptiveApplication {
 public:
  explicit NewsTicker(odyssey::Viceroy* viceroy)
      : viceroy_(viceroy),
        spec_({"headlines only", "headlines + summaries", "full articles"}),
        fidelity_(spec_.highest()) {
    viceroy_->RegisterApplication(this);
  }
  ~NewsTicker() override { viceroy_->UnregisterApplication(this); }

  const std::string& name() const override { return name_; }
  int priority() const override { return 1; }
  const odyssey::FidelitySpec& fidelity_spec() const override { return spec_; }
  int current_fidelity() const override { return fidelity_; }

  // The upcall: Odyssey tells us to change fidelity; we adjust what we fetch
  // from the next refresh onward.
  void SetFidelity(int level) override {
    std::printf("  [upcall] news ticker: %s -> %s\n",
                spec_.name(fidelity_).c_str(), spec_.name(level).c_str());
    fidelity_ = level;
  }

  // Refresh sizes per fidelity level.
  size_t RefreshBytes() const {
    switch (fidelity_) {
      case 0:
        return 2 * 1024;
      case 1:
        return 24 * 1024;
      default:
        return 200 * 1024;
    }
  }

 private:
  odyssey::Viceroy* viceroy_;
  std::string name_ = "NewsTicker";
  odyssey::FidelitySpec spec_;
  int fidelity_;
};

}  // namespace

int main() {
  odapps::TestBed bed;
  NewsTicker ticker(&bed.viceroy());

  // Express expectations: stay at this fidelity while bandwidth is within
  // [0.5, 1.5] Mb/s; outside the window, Odyssey issues an upcall.
  bed.viceroy().RegisterExpectation(&ticker, odyssey::ResourceId::kNetworkBandwidth,
                                    0.5e6, 1.5e6);

  std::printf("Bandwidth drops as the user walks away from the base station:\n");
  for (double bw : {1.2e6, 0.8e6, 0.4e6, 0.2e6}) {
    std::printf("observed bandwidth %.1f Mb/s:\n", bw / 1e6);
    bed.viceroy().NotifyResourceLevel(odyssey::ResourceId::kNetworkBandwidth, bw);
    std::printf("  ticker now fetches %zu bytes per refresh (%s)\n",
                ticker.RefreshBytes(),
                ticker.fidelity_spec().name(ticker.current_fidelity()).c_str());
  }

  std::printf("...and recovers on the walk back:\n");
  for (double bw : {0.9e6, 2.0e6, 2.5e6}) {
    std::printf("observed bandwidth %.1f Mb/s:\n", bw / 1e6);
    bed.viceroy().NotifyResourceLevel(odyssey::ResourceId::kNetworkBandwidth, bw);
    std::printf("  ticker now fetches %zu bytes per refresh (%s)\n",
                ticker.RefreshBytes(),
                ticker.fidelity_spec().name(ticker.current_fidelity()).c_str());
  }

  std::printf("\nTotal upcalls delivered: %d\n",
              bed.viceroy().AdaptationCount(&ticker));
  return 0;
}
