// Zoned backlighting demo (Section 4): how much display energy a 4-zone or
// 8-zone backlight would save for a small video window and a cropped map.
//
//   $ ./build/examples/zoned_display_demo

#include <cstdio>

#include "src/apps/data_objects.h"
#include "src/apps/testbed.h"
#include "src/display/zoned.h"

namespace {

void Show(const char* what, const oddisplay::Rect& window,
          odpower::Display& display) {
  for (auto layout : {oddisplay::ZoneLayout::FourZone(),
                      oddisplay::ZoneLayout::EightZone()}) {
    oddisplay::ZonedBacklightController controller(&display, layout);
    controller.SetWindows({window});
    std::printf("  %-28s %d-zone display: %d/%d zones lit, %.2f W (vs %.2f W)\n",
                what, layout.zone_count(), controller.lit_zones(),
                layout.zone_count(), display.power(),
                display.zoned() ? 2.95 : display.power());
    controller.Disable();
  }
}

}  // namespace

int main() {
  odapps::TestBed bed;
  odpower::Display& display = bed.laptop().display();

  std::printf("Backlight draw with zoned control (bright = %.2f W):\n\n",
              display.power());

  Show("video, full-size window", odapps::VideoWindow(1.0), display);
  Show("video, half-size window", odapps::VideoWindow(0.5), display);
  Show("map, full view", odapps::MapWindowFull(), display);
  Show("map, cropped view", odapps::MapWindowCropped(), display);

  std::printf(
      "\nZone control would be exercised by the X server, like the disk and\n"
      "network device drivers control their devices' energy states; window\n"
      "managers could 'snap' windows to straddle the fewest zones.\n");
  return 0;
}
