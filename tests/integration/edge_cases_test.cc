// Edge cases across module boundaries.

#include <gtest/gtest.h>

#include "src/apps/testbed.h"
#include "src/display/zoned.h"
#include "src/powerscope/profiler.h"

namespace {

TEST(EdgeCaseTest, EmptyProfileFormats) {
  // Correlating a profiler that never sampled yields an empty but printable
  // profile.
  odapps::TestBed bed;
  odscope::Profiler profiler(&bed.sim(), &bed.laptop().machine());
  profiler.Start();
  profiler.Stop();  // No time elapsed: zero or one sample.
  odscope::EnergyProfile profile = profiler.Correlate();
  std::string out = profile.Format();
  EXPECT_NE(out.find("Process"), std::string::npos);
}

TEST(EdgeCaseTest, ZonesPartitionTheScreen) {
  // Zone rectangles tile the unit square exactly: areas sum to 1 and no two
  // zones overlap.
  for (auto layout :
       {oddisplay::ZoneLayout(1, 1), oddisplay::ZoneLayout::FourZone(),
        oddisplay::ZoneLayout::EightZone(), oddisplay::ZoneLayout(5, 3)}) {
    double area = 0.0;
    for (int i = 0; i < layout.zone_count(); ++i) {
      oddisplay::Rect zone = layout.ZoneRect(i);
      area += zone.w * zone.h;
      for (int j = i + 1; j < layout.zone_count(); ++j) {
        EXPECT_FALSE(zone.Intersects(layout.ZoneRect(j)))
            << "zones " << i << "," << j;
      }
    }
    EXPECT_NEAR(area, 1.0, 1e-9);
  }
}

TEST(EdgeCaseTest, HardwarePmToggleMidRun) {
  // Flipping power management during playback must not wedge anything.
  odapps::TestBed bed;
  bool done = false;
  bed.video().PlaySegment(odapps::StandardVideoClips()[0],
                          odsim::SimDuration::Seconds(20), [&] { done = true; });
  bed.sim().RunUntil(odsim::SimTime::Seconds(5));
  bed.SetHardwarePm(true);
  bed.sim().RunUntil(odsim::SimTime::Seconds(10));
  bed.SetHardwarePm(false);
  bed.sim().RunUntil(odsim::SimTime::Seconds(40));
  EXPECT_TRUE(done);
  // Display stays bright afterwards (no PM, nothing held).
  EXPECT_EQ(bed.laptop().display().display_state(),
            odpower::DisplayState::kBright);
}

TEST(EdgeCaseTest, ZeroThinkTimeEverywhere) {
  odapps::TestBed bed;
  bed.map().set_think_seconds(0.0);
  bed.web().set_think_seconds(0.0);
  int completed = 0;
  bed.map().ViewMap(odapps::StandardMaps()[1], [&] {
    ++completed;
    bed.web().BrowsePage(odapps::StandardWebImages()[3], [&] { ++completed; });
  });
  bed.sim().RunUntil(odsim::SimTime::Seconds(60));
  EXPECT_EQ(completed, 2);
}

TEST(EdgeCaseTest, MeasureForZeroDuration) {
  odapps::TestBed bed;
  auto m = bed.MeasureFor(odsim::SimDuration::Zero());
  EXPECT_DOUBLE_EQ(m.joules, 0.0);
  EXPECT_DOUBLE_EQ(m.seconds, 0.0);
  EXPECT_DOUBLE_EQ(m.average_watts(), 0.0);
}

TEST(EdgeCaseTest, BackToBackRecognitions) {
  // The speech recognizer's busy flag resets correctly across dozens of
  // sequential utterances in all three modes.
  odapps::TestBed bed;
  int completed = 0;
  std::function<void(int)> chain = [&](int remaining) {
    if (remaining == 0) {
      return;
    }
    bed.speech().set_mode(remaining % 3 == 0   ? odapps::SpeechMode::kLocal
                          : remaining % 3 == 1 ? odapps::SpeechMode::kRemote
                                               : odapps::SpeechMode::kHybrid);
    bed.speech().Recognize(
        odapps::StandardUtterances()[static_cast<size_t>(remaining % 4)],
        [&, remaining] {
          ++completed;
          chain(remaining - 1);
        });
  };
  chain(30);
  bed.sim().RunUntil(odsim::SimTime::Seconds(1200));
  EXPECT_EQ(completed, 30);
  EXPECT_FALSE(bed.speech().busy());
}

TEST(EdgeCaseTest, FidelityChangeDuringFetchAppliesNextFetch) {
  // Changing map fidelity mid-fetch must not corrupt the in-flight request.
  odapps::TestBed bed;
  bool done = false;
  bed.map().ViewMap(odapps::StandardMaps()[0], [&] { done = true; });
  bed.sim().RunUntil(odsim::SimTime::Seconds(1));
  bed.map().SetFidelity(0);
  bed.sim().RunUntil(odsim::SimTime::Seconds(60));
  EXPECT_TRUE(done);
  EXPECT_EQ(bed.map().map_fidelity(), odapps::MapFidelity::kCroppedSecondary);
}

TEST(EdgeCaseTest, VideoOverrideWithRateAndDim) {
  odapps::TestBed bed(odapps::TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  odapps::VideoPlayer::Config config;
  config.track = odapps::VideoTrack::kPremiereC;
  config.window_scale = 0.25;
  config.rate_scale = 0.5;
  config.dim_display = true;
  bed.video().SetConfigOverride(config);
  auto m = bed.Measure([&](odsim::EventFn done) {
    bed.video().PlaySegment(odapps::StandardVideoClips()[0],
                            odsim::SimDuration::Seconds(20), std::move(done));
  });
  // Display dim throughout: display draw is the dim power.
  EXPECT_NEAR(m.Component("Display") / m.seconds, 1.95, 0.05);
}

}  // namespace
