// End-to-end integration: the full Section 5 stack (apps + viceroy + online
// monitor + goal director) drives fidelity up and down over a whole run.

#include <gtest/gtest.h>

#include "src/apps/goal_scenario.h"

namespace odapps {
namespace {

TEST(EndToEndTest, TightGoalForcesDegradationAndIsMet) {
  GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(1200);
  GoalScenarioResult result = RunGoalScenario(options);
  EXPECT_TRUE(result.goal_met);
  EXPECT_NEAR(result.elapsed_seconds, 1200.0, 1.0);
  EXPECT_GT(result.total_adaptations, 0);
  // The lowest-priority app (Speech) ends degraded.
  EXPECT_EQ(result.final_fidelity.at("Speech"), 0);
}

TEST(EndToEndTest, GenerousGoalNeedsFewAdaptations) {
  GoalScenarioOptions options;
  options.initial_joules = 16000.0;
  options.goal = odsim::SimDuration::Seconds(1200);
  GoalScenarioResult result = RunGoalScenario(options);
  EXPECT_TRUE(result.goal_met);
  // Ample energy: applications stay at (or quickly return to) high fidelity.
  EXPECT_EQ(result.final_fidelity.at("Web"),
            4);  // Web never needs to degrade.
}

TEST(EndToEndTest, InfeasibleGoalExhaustsSupply) {
  GoalScenarioOptions options;
  options.initial_joules = 6000.0;
  options.goal = odsim::SimDuration::Seconds(1500);  // Needs < 4 W: impossible.
  GoalScenarioResult result = RunGoalScenario(options);
  EXPECT_FALSE(result.goal_met);
  EXPECT_LT(result.elapsed_seconds, 1500.0);
  // Everything was driven to lowest fidelity on the way down.
  EXPECT_EQ(result.final_fidelity.at("Speech"), 0);
  EXPECT_EQ(result.final_fidelity.at("Video"), 0);
}

TEST(EndToEndTest, DemandTracksSupplyInTimeline) {
  GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(1200);
  GoalScenarioResult result = RunGoalScenario(options);
  ASSERT_GT(result.timeline.size(), 100u);
  // After the initial transient, estimated demand stays within 25% of
  // residual supply — the paper's "estimated demand tracks supply closely".
  size_t start = result.timeline.size() / 4;
  for (size_t i = start; i < result.timeline.size(); ++i) {
    const auto& point = result.timeline[i];
    if (point.residual_joules < 500.0) {
      break;  // Terminal noise region.
    }
    EXPECT_LT(std::abs(point.demand_joules - point.residual_joules),
              0.25 * point.residual_joules + 200.0)
        << "at t=" << point.time.seconds();
  }
}

TEST(EndToEndTest, AdaptationLogTimesAreOrdered) {
  GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(1200);
  GoalScenarioResult result = RunGoalScenario(options);
  for (const auto& [app, changes] : result.fidelity_traces) {
    for (size_t i = 1; i < changes.size(); ++i) {
      EXPECT_GT(changes[i].time, changes[i - 1].time);
    }
  }
}

TEST(EndToEndTest, BurstyWorkloadMeetsGoal) {
  GoalScenarioOptions options;
  options.bursty = true;
  options.initial_joules = 9000.0;
  options.goal = odsim::SimDuration::Seconds(1200);
  GoalScenarioResult result = RunGoalScenario(options);
  EXPECT_TRUE(result.goal_met);
}

}  // namespace
}  // namespace odapps
