// End-to-end network adaptation (the initial Odyssey prototype's loop,
// Section 2.2): the bandwidth monitor feeds the viceroy, applications
// register expectation windows, and fidelity follows the wireless link as
// it degrades and recovers — "a client playing full-color video data from a
// server could switch to black and white video when bandwidth drops".

#include <gtest/gtest.h>

#include "src/apps/testbed.h"
#include "src/net/bandwidth_monitor.h"

namespace odapps {
namespace {

struct Rig {
  Rig() : monitor(&bed.sim(), &bed.link(), odnet::BandwidthMonitorConfig{}) {
    monitor.set_callback([this](odsim::SimTime, double bps) {
      bed.viceroy().NotifyResourceLevel(odyssey::ResourceId::kNetworkBandwidth,
                                        bps);
    });
  }
  TestBed bed;
  odnet::BandwidthMonitor monitor;
};

TEST(BandwidthAdaptationTest, VideoDegradesWhenLinkDegrades) {
  Rig rig;
  // The video expects at least 1.3 Mb/s to sustain its baseline track.
  rig.bed.viceroy().RegisterExpectation(&rig.bed.video(),
                                        odyssey::ResourceId::kNetworkBandwidth,
                                        1.3e6, 2.5e6);
  rig.monitor.Start();
  rig.bed.video().PlayLooping(StandardVideoClips()[0]);
  rig.bed.sim().RunUntil(odsim::SimTime::Seconds(20));
  EXPECT_EQ(rig.bed.video().current_fidelity(),
            rig.bed.video().fidelity_spec().highest());

  // The user walks away from the base station: the channel halves.
  rig.bed.link().set_bandwidth_bps(0.9e6);
  rig.bed.sim().RunUntil(odsim::SimTime::Seconds(60));
  EXPECT_LT(rig.bed.video().current_fidelity(),
            rig.bed.video().fidelity_spec().highest());

  rig.bed.video().StopLooping();
}

TEST(BandwidthAdaptationTest, VideoRecoversWhenLinkRecovers) {
  Rig rig;
  rig.bed.viceroy().RegisterExpectation(&rig.bed.video(),
                                        odyssey::ResourceId::kNetworkBandwidth,
                                        1.3e6, 2.5e6);
  rig.monitor.Start();
  rig.bed.video().SetFidelity(1);  // Start degraded (Premiere-C, half size).
  rig.bed.video().PlayLooping(StandardVideoClips()[0]);

  // A degraded track underuses a healthy 2 Mb/s channel, so the observed
  // throughput equals the offered load; the estimator must not mistake an
  // underused link for a slow one.  Give it a faster channel to confirm
  // upgrades fire when capacity is demonstrably above the window.
  rig.bed.link().set_bandwidth_bps(4.0e6);
  rig.bed.sim().RunUntil(odsim::SimTime::Seconds(120));
  EXPECT_GT(rig.bed.video().current_fidelity(), 1);

  rig.bed.video().StopLooping();
}

TEST(BandwidthAdaptationTest, StableLinkCausesNoFlapping) {
  Rig rig;
  rig.bed.viceroy().RegisterExpectation(&rig.bed.video(),
                                        odyssey::ResourceId::kNetworkBandwidth,
                                        1.3e6, 2.5e6);
  rig.monitor.Start();
  rig.bed.video().PlayLooping(StandardVideoClips()[0]);
  rig.bed.sim().RunUntil(odsim::SimTime::Seconds(120));
  // The healthy channel stays inside the expectation window: no upcalls.
  EXPECT_EQ(rig.bed.viceroy().AdaptationCount(&rig.bed.video()), 0);
  rig.bed.video().StopLooping();
}

}  // namespace
}  // namespace odapps
