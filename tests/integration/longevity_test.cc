// Longevity / scale smoke test: a simulated day of the bursty workload.
// Guards against event-queue leaks, drifting accumulators, and anything
// whose cost grows with simulated time.

#include <gtest/gtest.h>

#include "src/apps/bursty.h"
#include "src/apps/testbed.h"

namespace odapps {
namespace {

TEST(LongevityTest, TwentyFourHourBurstyDay) {
  TestBed bed(TestBed::Options{.seed = 4242, .hw_pm = true, .link = {}});
  BurstyWorkload workload(&bed.sim(), &bed.video(), &bed.speech(), &bed.web(),
                          &bed.map(), &bed.rng());
  workload.Start();

  constexpr double kDay = 24.0 * 3600.0;
  auto m = bed.MeasureFor(odsim::SimDuration::Seconds(kDay));
  workload.Stop();
  bed.video().StopLooping();

  EXPECT_DOUBLE_EQ(m.seconds, kDay);
  // Sanity bounds: between the all-off floor and the all-on ceiling.
  EXPECT_GT(m.average_watts(), 3.5);
  EXPECT_LT(m.average_watts(), 13.0);

  // Accounting is still exhaustive after ~10^5 scheduling events.
  double by_component = 0.0;
  for (const auto& [name, joules] : m.by_component) {
    by_component += joules;
  }
  EXPECT_NEAR(by_component, m.joules, 1e-6 * m.joules);
  double by_process = 0.0;
  for (const auto& [name, joules] : m.by_process) {
    by_process += joules;
  }
  EXPECT_NEAR(by_process, m.joules, 1e-6 * m.joules);
}

TEST(LongevityTest, RepeatedMeasurementsDoNotDrift) {
  // Ten consecutive Measure() calls on one bed: each resets cleanly.
  TestBed bed(TestBed::Options{.seed = 4243, .hw_pm = true, .link = {}});
  // Let the disk reach standby first so every iteration sees the same
  // resting state.
  bed.sim().RunUntil(odsim::SimTime::Seconds(15));
  double first = 0.0;
  for (int i = 0; i < 10; ++i) {
    auto m = bed.Measure([&](odsim::EventFn done) {
      bed.web().BrowsePage(StandardWebImages()[1], std::move(done));
    });
    if (i == 0) {
      first = m.joules;
    } else {
      EXPECT_NEAR(m.joules, first, 0.15 * first) << "iteration " << i;
    }
  }
}

}  // namespace
}  // namespace odapps
