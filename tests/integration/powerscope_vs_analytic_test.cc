// Property test: PowerScope's statistical sampling must agree with the
// analytic energy integrator, for every application workload.  This is the
// simulation's core soundness check — the two accountings share no code.

#include <gtest/gtest.h>

#include "src/apps/testbed.h"
#include "src/powerscope/profiler.h"

namespace odapps {
namespace {

enum class Workload {
  kVideo,
  kSpeechLocal,
  kSpeechRemote,
  kMap,
  kWeb,
};

struct Case {
  Workload workload;
  bool hw_pm;
};

class PowerScopeAgreementTest : public ::testing::TestWithParam<Case> {};

TEST_P(PowerScopeAgreementTest, SampledEnergyMatchesAnalytic) {
  const Case& c = GetParam();
  TestBed bed(TestBed::Options{.seed = 21, .hw_pm = c.hw_pm, .link = {}});
  odscope::MultimeterConfig config;
  config.noise_amps = 0.0;  // Isolate sampling error from measurement noise.
  odscope::Profiler profiler(&bed.sim(), &bed.laptop().machine(), config);

  bed.sim().RunUntil(odsim::SimTime::Seconds(15));
  profiler.Start();
  auto m = bed.Measure([&](odsim::EventFn done) {
    switch (c.workload) {
      case Workload::kVideo:
        bed.video().PlaySegment(StandardVideoClips()[0],
                                odsim::SimDuration::Seconds(20), std::move(done));
        break;
      case Workload::kSpeechLocal:
        bed.speech().Recognize(StandardUtterances()[2], std::move(done));
        break;
      case Workload::kSpeechRemote:
        bed.speech().set_mode(SpeechMode::kRemote);
        bed.speech().Recognize(StandardUtterances()[2], std::move(done));
        break;
      case Workload::kMap:
        bed.map().ViewMap(StandardMaps()[0], std::move(done));
        break;
      case Workload::kWeb:
        bed.web().BrowsePage(StandardWebImages()[0], std::move(done));
        break;
    }
  });
  profiler.Stop();

  double sampled = profiler.SampledJoules();
  // 600 Hz sampling against sub-second state changes: within 2%.
  EXPECT_NEAR(sampled, m.joules, 0.02 * m.joules + 0.1);

  // Correlated per-process attribution must also reconcile with analytic
  // per-process attribution for the top consumers.
  odscope::EnergyProfile profile = profiler.Correlate();
  for (const auto& [name, joules] : m.by_process) {
    if (joules < 0.05 * m.joules) {
      continue;  // Sampling error swamps tiny shares.
    }
    EXPECT_NEAR(profile.ProcessJoules(name), joules, 0.1 * joules + 0.5)
        << "process " << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PowerScopeAgreementTest,
    ::testing::Values(Case{Workload::kVideo, false}, Case{Workload::kVideo, true},
                      Case{Workload::kSpeechLocal, false},
                      Case{Workload::kSpeechLocal, true},
                      Case{Workload::kSpeechRemote, true},
                      Case{Workload::kMap, false}, Case{Workload::kMap, true},
                      Case{Workload::kWeb, false}, Case{Workload::kWeb, true}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name;
      switch (info.param.workload) {
        case Workload::kVideo:
          name = "Video";
          break;
        case Workload::kSpeechLocal:
          name = "SpeechLocal";
          break;
        case Workload::kSpeechRemote:
          name = "SpeechRemote";
          break;
        case Workload::kMap:
          name = "Map";
          break;
        case Workload::kWeb:
          name = "Web";
          break;
      }
      return name + (info.param.hw_pm ? "Pm" : "NoPm");
    });

}  // namespace
}  // namespace odapps
