#include "src/energy/goal_director.h"

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/power/thinkpad560x.h"
#include "src/powerscope/online_monitor.h"
#include "src/sim/simulator.h"

namespace odenergy {
namespace {

class FakeApp : public odyssey::AdaptiveApplication {
 public:
  FakeApp(std::string name, int priority)
      : name_(std::move(name)),
        priority_(priority),
        spec_({"L0", "L1", "L2"}),
        fidelity_(spec_.highest()) {}

  const std::string& name() const override { return name_; }
  int priority() const override { return priority_; }
  const odyssey::FidelitySpec& fidelity_spec() const override { return spec_; }
  int current_fidelity() const override { return fidelity_; }
  void SetFidelity(int level) override { fidelity_ = level; }

  void Force(int level) { fidelity_ = level; }

 private:
  std::string name_;
  int priority_;
  odyssey::FidelitySpec spec_;
  int fidelity_;
};

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  odnet::Link link{&sim, &laptop->power_manager(), odnet::LinkConfig{}};
  odyssey::Viceroy viceroy{&sim, &link, &laptop->power_manager()};
  FakeApp low{"low", 0};
  FakeApp high{"high", 10};
  odscope::OnlineMonitor monitor{&sim, &laptop->machine(),
                                 [] {
                                   odscope::OnlineMonitorConfig c;
                                   c.noise_watts = 0.0;
                                   return c;
                                 }(),
                                 1};

  Rig() {
    viceroy.RegisterApplication(&low);
    viceroy.RegisterApplication(&high);
  }
};

// The idle laptop draws ~9.8 W (display bright, disk and network idle).

TEST(GoalDirectorTest, DegradesLowestPriorityFirst) {
  Rig rig;
  // 9.8 W for 100 s needs ~980 J; give much less so demand exceeds supply.
  odpower::EnergySupply supply(&rig.laptop->accounting(), 300.0);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(100));
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(8));
  EXPECT_LT(rig.low.current_fidelity(), rig.low.fidelity_spec().highest());
  EXPECT_EQ(rig.high.current_fidelity(), rig.high.fidelity_spec().highest());
  director.Stop();
}

TEST(GoalDirectorTest, DegradesHigherPriorityOnlyAfterLowExhausted) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 100.0);
  GoalDirectorConfig config;
  config.degrade_interval = odsim::SimDuration::Millis(500);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(200), config);
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  EXPECT_EQ(rig.low.current_fidelity(), 0);
  EXPECT_LT(rig.high.current_fidelity(), rig.high.fidelity_spec().highest());
  director.Stop();
}

TEST(GoalDirectorTest, UpgradesHighestPriorityFirst) {
  Rig rig;
  rig.low.Force(0);
  rig.high.Force(0);
  // Huge supply: surplus exceeds any margin.
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e6);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(60));
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  EXPECT_GT(rig.high.current_fidelity(), 0);
  EXPECT_EQ(rig.low.current_fidelity(), 0);  // Upgrades capped at 1/15 s.
  director.Stop();
}

TEST(GoalDirectorTest, UpgradeCapFifteenSeconds) {
  Rig rig;
  rig.low.Force(0);
  rig.high.Force(0);
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e6);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(300));
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(40));
  // At most one upgrade per 15 s in ~40 s -> no more than 3 total.
  int total = rig.viceroy.TotalAdaptations();
  EXPECT_GE(total, 2);
  EXPECT_LE(total, 3);
  director.Stop();
}

TEST(GoalDirectorTest, GoalMetStopsSimulator) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e6);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(30));
  director.Start(true);
  rig.sim.RunUntil(odsim::SimTime::Seconds(100));
  EXPECT_EQ(director.outcome(), GoalOutcome::kGoalMet);
  // The director stopped the run at the goal.
  EXPECT_LT(rig.sim.Now(), odsim::SimTime::Seconds(32));
}

TEST(GoalDirectorTest, ExhaustionDetected) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 50.0);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(1000));
  director.Start(true);
  rig.sim.RunUntil(odsim::SimTime::Seconds(100));
  EXPECT_EQ(director.outcome(), GoalOutcome::kExhausted);
  // ~50 J at ~9.8 W idle-bright drains in ~6-8 s (apps degrade en route).
  EXPECT_LT(rig.sim.Now(), odsim::SimTime::Seconds(20));
}

TEST(GoalDirectorTest, ExtendGoalPostpones) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e6);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(30));
  director.Start(true);
  rig.sim.Schedule(odsim::SimDuration::Seconds(10), [&] {
    director.ExtendGoal(odsim::SimTime::Seconds(60));
  });
  rig.sim.RunUntil(odsim::SimTime::Seconds(100));
  EXPECT_EQ(director.outcome(), GoalOutcome::kGoalMet);
  EXPECT_GE(rig.sim.Now(), odsim::SimTime::Seconds(60));
}

TEST(GoalDirectorTest, TimelineRecorded) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e6);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(10));
  director.Start(true);
  rig.sim.RunUntil(odsim::SimTime::Seconds(20));
  const std::vector<TimelinePoint>& timeline = director.timeline();
  // Two evaluations per second for 10 s.
  EXPECT_GE(timeline.size(), 18u);
  for (size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_GT(timeline[i].time, timeline[i - 1].time);
    EXPECT_GT(timeline[i].demand_joules, 0.0);
  }
}

TEST(GoalDirectorTest, EstimatedResidualTracksTruth) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 10000.0);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(60));
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(30));
  double estimated = director.EstimatedResidualJoules();
  double truth = director.TrueResidualJoules(rig.sim.Now());
  EXPECT_NEAR(estimated, truth, 0.01 * truth);
  director.Stop();
}

TEST(GoalDirectorTest, FidelityLogMatchesAdaptations) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 100.0);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(200));
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  director.Stop();
  EXPECT_EQ(static_cast<int>(director.FidelityLog(&rig.low).size()),
            rig.viceroy.AdaptationCount(&rig.low));
}

}  // namespace
}  // namespace odenergy
