// Infeasible goals (Section 5.1.1): "An infeasible duration is one so large
// that the available energy is inadequate even if all applications run at
// lowest fidelity ... the user should be alerted to this as early as
// possible."

#include <gtest/gtest.h>

#include "src/apps/goal_scenario.h"
#include "src/energy/goal_director.h"
#include "src/net/link.h"
#include "src/power/thinkpad560x.h"
#include "src/powerscope/online_monitor.h"

namespace odenergy {
namespace {

TEST(InfeasibilityTest, DetectedWellBeforeExhaustion) {
  // 6,000 J cannot last 1,500 s even at lowest fidelity (~8.5 W floor needs
  // 12,750 J).  The alert must come early, not at the bitter end.
  odapps::GoalScenarioOptions options;
  options.initial_joules = 6000.0;
  options.goal = odsim::SimDuration::Seconds(1500);
  odapps::GoalScenarioResult result = odapps::RunGoalScenario(options);
  EXPECT_FALSE(result.goal_met);
  ASSERT_TRUE(result.infeasibility_detected_seconds.has_value());
  // Detected in the first third of the doomed run (the detector waits one
  // smoothing half-life so the estimate reflects lowest-fidelity power).
  EXPECT_LT(*result.infeasibility_detected_seconds,
            0.35 * result.elapsed_seconds);
}

TEST(InfeasibilityTest, FeasibleGoalNeverAlerts) {
  odapps::GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(1320);
  odapps::GoalScenarioResult result = odapps::RunGoalScenario(options);
  EXPECT_TRUE(result.goal_met);
  EXPECT_FALSE(result.infeasibility_detected_seconds.has_value());
}

TEST(InfeasibilityTest, CallbackReceivesDeficit) {
  odsim::Simulator sim;
  auto laptop = odpower::MakeThinkPad560X(&sim);
  odnet::Link link(&sim, &laptop->power_manager(), odnet::LinkConfig{});
  odyssey::Viceroy viceroy(&sim, &link, &laptop->power_manager());
  // No applications at all: every goal that demand cannot meet is
  // infeasible immediately (nothing left to degrade).
  odpower::EnergySupply supply(&laptop->accounting(), 500.0);
  odscope::OnlineMonitorConfig monitor_config;
  monitor_config.noise_watts = 0.0;
  odscope::OnlineMonitor monitor(&sim, &laptop->machine(), monitor_config, 1);
  GoalDirector director(&viceroy, &supply, &monitor, odsim::SimTime::Seconds(600));

  double deficit = 0.0;
  odsim::SimTime when;
  director.set_infeasibility_callback(
      [&](odsim::SimTime now, double deficit_joules) {
        when = now;
        deficit = deficit_joules;
      });
  director.Start(false);
  // Idle draw ~9.8 W for 600 s needs ~5,900 J >> 500 J.  Detection needs
  // one smoothing half-life (10% of 600 s) of persistence.
  sim.RunUntil(odsim::SimTime::Seconds(90));
  director.Stop();

  ASSERT_TRUE(director.infeasibility_detected().has_value());
  EXPECT_GT(deficit, 1000.0);
  EXPECT_EQ(when, *director.infeasibility_detected());
}

TEST(InfeasibilityTest, ExtendGoalClearsReport) {
  odsim::Simulator sim;
  auto laptop = odpower::MakeThinkPad560X(&sim);
  odnet::Link link(&sim, &laptop->power_manager(), odnet::LinkConfig{});
  odyssey::Viceroy viceroy(&sim, &link, &laptop->power_manager());
  odpower::EnergySupply supply(&laptop->accounting(), 500.0);
  odscope::OnlineMonitorConfig monitor_config;
  monitor_config.noise_watts = 0.0;
  odscope::OnlineMonitor monitor(&sim, &laptop->machine(), monitor_config, 1);
  GoalDirector director(&viceroy, &supply, &monitor, odsim::SimTime::Seconds(600));
  director.Start(false);
  sim.RunUntil(odsim::SimTime::Seconds(90));
  ASSERT_TRUE(director.infeasibility_detected().has_value());

  // The user respecifies (here: a shorter horizon via a "new goal" — any
  // respecification clears the report so feasibility is re-evaluated).
  director.ExtendGoal(odsim::SimTime::Seconds(100));
  EXPECT_FALSE(director.infeasibility_detected().has_value());
  director.Stop();
}

}  // namespace
}  // namespace odenergy
