#include "src/energy/predictor.h"

#include <gtest/gtest.h>

namespace odenergy {
namespace {

TEST(PredictorTest, DemandIsSmoothedPowerTimesRemaining) {
  DemandPredictor predictor(0.10);
  predictor.AddSample(10.0, 0.1, 1000.0);
  EXPECT_NEAR(predictor.PredictedDemandJoules(600.0), 6000.0, 1e-9);
}

TEST(PredictorTest, ZeroRemainingMeansZeroDemand) {
  DemandPredictor predictor(0.10);
  predictor.AddSample(10.0, 0.1, 1000.0);
  EXPECT_DOUBLE_EQ(predictor.PredictedDemandJoules(0.0), 0.0);
  EXPECT_DOUBLE_EQ(predictor.PredictedDemandJoules(-5.0), 0.0);
}

TEST(PredictorTest, HalfLifeScalesWithRemainingTime) {
  // With the goal distant, smoothing is stable: a single outlier sample
  // barely moves the estimate.  Near the goal, the same outlier moves it
  // much more (Section 5.1.2's agility-vs-stability trade).
  DemandPredictor far(0.10), near(0.10);
  far.AddSample(10.0, 0.1, 3000.0);
  near.AddSample(10.0, 0.1, 3000.0);
  far.AddSample(30.0, 0.1, 3000.0);  // Goal still 3000 s away.
  near.AddSample(30.0, 0.1, 10.0);   // Goal 10 s away.
  EXPECT_LT(far.smoothed_watts(), near.smoothed_watts());
}

TEST(PredictorTest, TenPercentHalfLifeExample) {
  // "If 30 minutes remain, the present estimate will be weighted equally
  // with more recent samples after 3 minutes have passed" (Section 5.1.2).
  DemandPredictor predictor(0.10);
  predictor.AddSample(100.0, 0.1, 1800.0);
  // 3 minutes of zero samples at 30 minutes remaining.
  for (int i = 0; i < 1800; ++i) {
    predictor.AddSample(0.0, 0.1, 1800.0);
  }
  EXPECT_NEAR(predictor.smoothed_watts(), 50.0, 0.5);
}

TEST(PredictorTest, ResetClearsState) {
  DemandPredictor predictor(0.10);
  predictor.AddSample(10.0, 0.1, 100.0);
  predictor.Reset();
  EXPECT_FALSE(predictor.initialized());
}

TEST(PredictorTest, MinimumHalfLifeClampNearGoal) {
  // At one second remaining, the half-life clamps at 1 s, so one 0.1 s
  // sample cannot dominate the estimate.
  DemandPredictor predictor(0.10);
  predictor.AddSample(10.0, 0.1, 1.0);
  predictor.AddSample(100.0, 0.1, 1.0);
  EXPECT_LT(predictor.smoothed_watts(), 20.0);
}

}  // namespace
}  // namespace odenergy
