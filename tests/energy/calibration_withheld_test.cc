// Calibration-withheld deployment: the learned model bootstraps from the
// probe phase and takes over the residual estimate.
//
// The analytic accounting needs the per-state calibration table; a device
// we never profiled has none.  In that deployment the director runs on the
// gas gauge alone, trains the self-constructive model against it, and —
// with learned_primary_when_converged — hands the residual estimate over
// once the fit converges.  These tests pin the handoff semantics and the
// acceptance bound: withheld attainment within 15% of the calibrated
// baseline.

#include <cmath>

#include <gtest/gtest.h>

#include "src/apps/goal_scenario.h"

namespace odenergy {
namespace {

odapps::GoalScenarioOptions BaseOptions() {
  odapps::GoalScenarioOptions options;
  options.seed = 7;
  options.initial_joules = 13500.0;
  options.goal = odsim::SimDuration::Seconds(1320);
  options.learned_model = true;
  // The 1 Hz quantized SmartBattery gauge carries ~15% irreducible window
  // mismatch against occupancy features; 20% is the handoff bar for the
  // withheld deployment (the multimeter default of 8% is never reached).
  options.learned_config.converged_error_fraction = 0.20;
  return options;
}

TEST(CalibrationWithheldTest, HandoffHappensAfterConvergence) {
  odapps::GoalScenarioOptions options = BaseOptions();
  options.use_smart_battery = true;
  options.director.learned_primary_when_converged = true;
  odapps::GoalScenarioResult result = odapps::RunGoalScenario(options);

  EXPECT_TRUE(result.learned_converged);
  EXPECT_TRUE(result.learned_primary_active);
  // The learned estimate, not the gauge integral, now closes the books;
  // it must still track ground truth within the acceptance band.
  EXPECT_LE(std::abs(result.estimated_residual_joules - result.residual_joules),
            0.15 * options.initial_joules);
}

TEST(CalibrationWithheldTest, AttainmentWithinBandOfCalibratedBaseline) {
  odapps::GoalScenarioResult calibrated = odapps::RunGoalScenario(BaseOptions());

  odapps::GoalScenarioOptions withheld_options = BaseOptions();
  withheld_options.use_smart_battery = true;
  withheld_options.director.learned_primary_when_converged = true;
  odapps::GoalScenarioResult withheld =
      odapps::RunGoalScenario(withheld_options);

  EXPECT_EQ(withheld.goal_met, calibrated.goal_met);
  EXPECT_LE(std::abs(withheld.residual_joules - calibrated.residual_joules),
            0.15 * 13500.0);
}

TEST(CalibrationWithheldTest, NoHandoffWithoutOptIn) {
  odapps::GoalScenarioOptions options = BaseOptions();
  options.use_smart_battery = true;
  odapps::GoalScenarioResult result = odapps::RunGoalScenario(options);
  EXPECT_TRUE(result.learned_converged);
  EXPECT_FALSE(result.learned_primary_active);
}

}  // namespace
}  // namespace odenergy
