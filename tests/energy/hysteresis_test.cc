#include "src/energy/hysteresis.h"

#include <gtest/gtest.h>

namespace odenergy {
namespace {

using odsim::SimTime;

TEST(HysteresisTest, DegradeWhenDemandExceedsResidual) {
  HysteresisPolicy policy;
  EXPECT_EQ(policy.Decide(1100.0, 1000.0, 10000.0, SimTime::Seconds(1)),
            AdaptAction::kDegrade);
}

TEST(HysteresisTest, NoneInsideHysteresisBand) {
  HysteresisPolicy policy;
  // Residual 1000, demand 950: surplus 50 < margin (0.05*1000 + 0.01*10000
  // = 150).
  EXPECT_EQ(policy.Decide(950.0, 1000.0, 10000.0, SimTime::Seconds(1)),
            AdaptAction::kNone);
}

TEST(HysteresisTest, UpgradeWhenSurplusExceedsMargin) {
  HysteresisPolicy policy;
  // Surplus 400 > 150.
  EXPECT_EQ(policy.Decide(600.0, 1000.0, 10000.0, SimTime::Seconds(1)),
            AdaptAction::kUpgrade);
}

TEST(HysteresisTest, MarginComposition) {
  HysteresisPolicy policy;
  EXPECT_DOUBLE_EQ(policy.UpgradeMarginJoules(1000.0, 10000.0),
                   0.05 * 1000.0 + 0.01 * 10000.0);
}

TEST(HysteresisTest, ConstantMarginBlocksUpgradeWhenResidualLow) {
  // Section 5.1.3: the constant component biases against improvements when
  // residual energy is low.  Surplus of 40% of residual is below the
  // absolute margin here.
  HysteresisPolicy policy;
  EXPECT_EQ(policy.Decide(60.0, 100.0, 10000.0, SimTime::Seconds(1)),
            AdaptAction::kNone);
}

TEST(HysteresisTest, UpgradeRateCapped) {
  HysteresisPolicy policy;
  EXPECT_EQ(policy.Decide(100.0, 1000.0, 1000.0, SimTime::Seconds(10)),
            AdaptAction::kUpgrade);
  policy.NoteUpgrade(SimTime::Seconds(10));
  // 10 s later: still inside the 15 s cap.
  EXPECT_EQ(policy.Decide(100.0, 1000.0, 1000.0, SimTime::Seconds(20)),
            AdaptAction::kNone);
  // 15 s later: allowed again.
  EXPECT_EQ(policy.Decide(100.0, 1000.0, 1000.0, SimTime::Seconds(25)),
            AdaptAction::kUpgrade);
}

TEST(HysteresisTest, DegradeNotRateLimited) {
  HysteresisPolicy policy;
  policy.NoteUpgrade(SimTime::Seconds(10));
  EXPECT_EQ(policy.Decide(2000.0, 1000.0, 1000.0, SimTime::Seconds(11)),
            AdaptAction::kDegrade);
}

TEST(HysteresisTest, CustomConfig) {
  HysteresisConfig config;
  config.variable_fraction = 0.0;
  config.constant_fraction = 0.0;
  config.upgrade_interval = odsim::SimDuration::Zero();
  HysteresisPolicy policy(config);
  // Any surplus upgrades with zero margins.
  EXPECT_EQ(policy.Decide(999.0, 1000.0, 1000.0, SimTime::Seconds(1)),
            AdaptAction::kUpgrade);
}

}  // namespace
}  // namespace odenergy
