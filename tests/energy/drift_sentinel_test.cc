// Gauge-drift sentinel: the learned model as a cross-check on the gauge
// (DESIGN.md §11).
//
// The regression at the heart of this file: PR 5's per-sample validation
// bounds readings at max_plausible_watts (15 W).  A gauge whose scale
// drifts by 1.2x reads the ~9.8 W laptop as ~11.8 W — inside the bound, so
// every sample passes validation, health stays kHealthy, and the residual
// estimate silently absorbs a ~20% energy bias.  The first test pins that
// hole open (it is the documented behavior without the sentinel); the rest
// prove the learned-model cross-check closes it.

#include "src/energy/goal_director.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/energy/learned_estimator.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/net/link.h"
#include "src/power/thinkpad560x.h"
#include "src/powerscope/online_monitor.h"
#include "src/sim/simulator.h"

namespace odenergy {
namespace {

class FakeApp : public odyssey::AdaptiveApplication {
 public:
  FakeApp(std::string name, int priority)
      : name_(std::move(name)),
        priority_(priority),
        spec_({"L0", "L1", "L2"}),
        fidelity_(spec_.highest()) {}

  const std::string& name() const override { return name_; }
  int priority() const override { return priority_; }
  const odyssey::FidelitySpec& fidelity_spec() const override { return spec_; }
  int current_fidelity() const override { return fidelity_; }
  void SetFidelity(int level) override { fidelity_ = level; }

 private:
  std::string name_;
  int priority_;
  odyssey::FidelitySpec spec_;
  int fidelity_;
};

// The idle laptop draws ~9.8 W; the noiseless multimeter samples at 10 Hz.
struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  odnet::Link link{&sim, &laptop->power_manager(), odnet::LinkConfig{}};
  odyssey::Viceroy viceroy{&sim, &link, &laptop->power_manager()};
  FakeApp low{"low", 0};
  FakeApp high{"high", 10};
  odscope::OnlineMonitor monitor{&sim, &laptop->machine(),
                                 [] {
                                   odscope::OnlineMonitorConfig c;
                                   c.noise_watts = 0.0;
                                   return c;
                                 }(),
                                 1};

  Rig() {
    viceroy.RegisterApplication(&low);
    viceroy.RegisterApplication(&high);
  }
};

// The sub-plausible step fault every test below injects: 1.2x scale during
// [120 s, 420 s).  ~11.8 W readings, under the 15 W plausibility bar.
void ArmSubPlausibleStep(Rig& rig) {
  rig.sim.Schedule(odsim::SimDuration::Seconds(120), [&rig] {
    rig.monitor.telemetry_faults()->set_gauge_scale(1.2);
  });
  rig.sim.Schedule(odsim::SimDuration::Seconds(420), [&rig] {
    rig.monitor.telemetry_faults()->set_gauge_scale(1.0);
  });
}

// Red half of the regression pair: without the sentinel the 1.2x fault
// sails through every PR 5 defense and biases the residual by the full
// 0.2 * 9.8 W * 300 s ~ 590 J.  If this test ever starts failing because
// validation rejects the samples, the sentinel tests below have lost their
// reason to exist — re-examine both together.
TEST(DriftSentinelTest, SubPlausibleDriftPassesValidationSilently) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e4);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(600));
  ArmSubPlausibleStep(rig);
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(400));
  // Mid-fault: every defense is blind.
  EXPECT_EQ(director.health(), ControllerHealth::kHealthy);
  EXPECT_EQ(director.invalid_samples(), 0);
  EXPECT_EQ(director.safe_mode_entries(), 0);
  rig.sim.RunUntil(odsim::SimTime::Seconds(600));
  double truth = director.TrueResidualJoules(odsim::SimTime::Seconds(600));
  double bias = truth - director.EstimatedResidualJoules();
  // The silent bias is the fault's full integrated excess.
  EXPECT_GT(bias, 450.0);
  director.Stop();
}

// Green half: same fault, sentinel armed.  Detection while the readings
// stay individually plausible, residual error within 10% of the bias the
// red half demonstrated, and hysteretic recovery once the scale reverts.
TEST(DriftSentinelTest, SentinelCatchesSubPlausibleDrift) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e4);
  GoalDirectorConfig config;
  config.drift_sentinel.enabled = true;
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(600), config);
  LearnedEstimator learned(&rig.laptop->machine(), rig.sim.Now());
  director.AttachLearnedEstimator(&learned);
  ArmSubPlausibleStep(rig);
  director.Start(false);

  rig.sim.RunUntil(odsim::SimTime::Seconds(300));
  // Caught, while per-sample validation still sees nothing.
  EXPECT_EQ(director.health(), ControllerHealth::kGaugeDrift);
  EXPECT_EQ(director.invalid_samples(), 0);
  EXPECT_EQ(director.safe_mode_entries(), 0);
  ASSERT_TRUE(director.first_drift_detected().has_value());
  double detected = director.first_drift_detected()->seconds();
  EXPECT_GE(detected, 120.0);
  // The 20 s comparison window bounds detection latency: well under a
  // minute after onset.
  EXPECT_LE(detected, 160.0);

  // Recovery: the scale reverts at 420 s; 50 in-band samples at 10 Hz lift
  // the verdict within seconds.
  rig.sim.RunUntil(odsim::SimTime::Seconds(440));
  EXPECT_EQ(director.health(), ControllerHealth::kHealthy);
  EXPECT_EQ(director.drift_entries(), 1);
  EXPECT_GT(director.DriftSeconds(odsim::SimTime::Seconds(440)), 200.0);

  rig.sim.RunUntil(odsim::SimTime::Seconds(600));
  double truth = director.TrueResidualJoules(odsim::SimTime::Seconds(600));
  double error = std::abs(director.EstimatedResidualJoules() - truth);
  // <= 10% of the ~590 J bias the unsentineled director absorbs.
  EXPECT_LE(error, 60.0);
  // The correction the sentinel charged back is most of that bias.
  EXPECT_GT(director.drift_correction_joules(), 450.0);
  director.Stop();
}

// Slow-ramp drift (the "ramp" fault kind): the scale creeps from 1.0
// toward 1.6 over four minutes, so there is no step edge anywhere — each
// reading differs from its neighbor by ~0.02 W.  The sentinel must detect
// once the accumulated scale passes its band, within a bounded latency.
TEST(DriftSentinelTest, SlowRampDriftDetectedWithinBoundedLatency) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e4);
  GoalDirectorConfig config;
  config.drift_sentinel.enabled = true;
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(600), config);
  LearnedEstimator learned(&rig.laptop->machine(), rig.sim.Now());
  director.AttachLearnedEstimator(&learned);

  odfault::FaultPlan plan;
  std::string error;
  ASSERT_TRUE(odfault::FaultPlan::Parse("ramp@60+240=1.6", &plan, &error))
      << error;
  odfault::FaultTargets targets;
  targets.monitor = &rig.monitor;
  odfault::FaultInjector injector(&rig.sim, targets);
  injector.Arm(plan);
  director.Start(false);

  rig.sim.RunUntil(odsim::SimTime::Seconds(600));
  ASSERT_TRUE(director.first_drift_detected().has_value());
  double detected = director.first_drift_detected()->seconds();
  // The ramp crosses the 10% divergence band at ~100 s (scale 1.1); the
  // 20 s window average trails it.  Detection must land in that regime —
  // long before the ramp tops out, and never before the band is honestly
  // crossed.
  EXPECT_GE(detected, 95.0);
  EXPECT_LE(detected, 180.0);
  EXPECT_EQ(director.invalid_samples(), 0);  // Still sub-plausible throughout.

  // Residual error stays bounded even though the pre-detection creep
  // (scale < 1.1) is below anything the sentinel can see.
  double truth = director.TrueResidualJoules(odsim::SimTime::Seconds(600));
  double residual_error =
      std::abs(director.EstimatedResidualJoules() - truth);
  EXPECT_LE(residual_error, 90.0);  // vs ~700 J of uncorrected ramp bias.
  director.Stop();
}

// The seam test: the learned model must consume the *corrupted* observation
// stream, never the true accounting.  With the gauge mis-scaled from the
// first sample, a model peeking at the truth would fit ~9.8 W; the honest
// model fits what the gauge reports — 1.6x that — and, because gauge and
// model then agree, the sentinel correctly has nothing to say (a gauge
// wrong from birth is indistinguishable from a legitimate calibration).
TEST(DriftSentinelTest, LearnedModelSeesCorruptedStreamNotAccounting) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e4);
  GoalDirectorConfig config;
  config.drift_sentinel.enabled = true;
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(600), config);
  LearnedEstimator learned(&rig.laptop->machine(), rig.sim.Now());
  director.AttachLearnedEstimator(&learned);
  rig.monitor.telemetry_faults()->set_gauge_scale(1.6);  // Before any sample.
  director.Start(false);

  rig.sim.RunUntil(odsim::SimTime::Seconds(120));
  ASSERT_TRUE(learned.model().converged());
  double true_watts = rig.laptop->machine().TotalPower();
  double ratio = learned.last_predicted_watts() / true_watts;
  EXPECT_NEAR(ratio, 1.6, 0.05);
  // Gauge and model agree, so no drift verdict — by design.
  EXPECT_EQ(director.drift_entries(), 0);
  EXPECT_EQ(director.health(), ControllerHealth::kHealthy);
  director.Stop();
}

// Pure-class sentinel behavior: window arithmetic, the confidence gate, and
// reset semantics, without a simulator.
TEST(DriftSentinelTest, WindowVerdictRequiresConfidenceAndBand) {
  DriftSentinelConfig config;
  config.enabled = true;
  config.window_seconds = 10.0;
  config.divergence_band = 0.10;
  config.min_window_joules = 5.0;
  DriftSentinel sentinel(config);

  auto feed = [&](int n, double gauge_w, double learned_w, bool confident) {
    for (int i = 0; i < n; ++i) {
      sentinel.AddInterval(odsim::SimTime::Zero(), 1.0, gauge_w, learned_w,
                           confident);
    }
  };

  feed(20, 10.0, 10.0, true);
  EXPECT_FALSE(sentinel.Diverged());  // In band.
  EXPECT_NEAR(sentinel.WindowDivergence(), 0.0, 1e-12);

  // Divergent but unconfident intervals must not convict.
  feed(20, 13.0, 10.0, false);
  EXPECT_FALSE(sentinel.Diverged());

  // Confident and out of band: verdict.
  feed(20, 13.0, 10.0, true);
  EXPECT_TRUE(sentinel.Diverged());
  EXPECT_NEAR(sentinel.WindowDivergence(), 0.3, 1e-9);
  EXPECT_NEAR(sentinel.WindowExcessJoules(), 30.0, 1e-9);

  // Reset drops the evidence; a fresh window must refill before any new
  // verdict.
  sentinel.ResetWindow();
  EXPECT_FALSE(sentinel.Diverged());
  feed(3, 13.0, 10.0, true);
  EXPECT_FALSE(sentinel.Diverged());  // Window not yet spanned.
}

TEST(DriftSentinelTest, UnderReadingGaugeConvictsToo) {
  DriftSentinelConfig config;
  config.enabled = true;
  config.window_seconds = 10.0;
  DriftSentinel sentinel(config);
  for (int i = 0; i < 20; ++i) {
    sentinel.AddInterval(odsim::SimTime::Zero(), 1.0, 8.0, 10.0, true);
  }
  EXPECT_TRUE(sentinel.Diverged());
  EXPECT_LT(sentinel.WindowExcessJoules(), 0.0);  // Signed: under-read.
}

}  // namespace
}  // namespace odenergy
