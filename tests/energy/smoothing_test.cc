#include "src/energy/smoothing.h"

#include <cmath>

#include <gtest/gtest.h>

namespace odenergy {
namespace {

TEST(SmootherTest, FirstSampleInitializes) {
  ExponentialSmoother s;
  EXPECT_FALSE(s.initialized());
  s.Update(10.0, 1.0);
  EXPECT_TRUE(s.initialized());
  EXPECT_DOUBLE_EQ(s.value(), 10.0);
}

TEST(SmootherTest, HalfLifeSemantics) {
  // After exactly one half-life of zero samples, the old estimate's weight
  // has halved.
  ExponentialSmoother s;
  s.set_half_life(10.0);
  s.Update(100.0, 1.0);
  s.Update(0.0, 10.0);  // One 10-second sample covering one half-life.
  EXPECT_NEAR(s.value(), 50.0, 1e-9);
}

TEST(SmootherTest, HalfLifeIndependentOfSampleGranularity) {
  // Many small steps over one half-life decay the old value the same as one
  // big step.
  ExponentialSmoother coarse, fine;
  coarse.set_half_life(10.0);
  fine.set_half_life(10.0);
  coarse.Update(100.0, 1.0);
  fine.Update(100.0, 1.0);
  coarse.Update(0.0, 10.0);
  for (int i = 0; i < 100; ++i) {
    fine.Update(0.0, 0.1);
  }
  EXPECT_NEAR(coarse.value(), fine.value(), 1e-9);
}

TEST(SmootherTest, ConvergesToConstantInput) {
  ExponentialSmoother s;
  s.set_half_life(5.0);
  s.Update(0.0, 1.0);
  for (int i = 0; i < 200; ++i) {
    s.Update(42.0, 1.0);
  }
  EXPECT_NEAR(s.value(), 42.0, 1e-6);
}

TEST(SmootherTest, ShorterHalfLifeIsMoreAgile) {
  ExponentialSmoother fast, slow;
  fast.set_half_life(1.0);
  slow.set_half_life(100.0);
  fast.Update(0.0, 1.0);
  slow.Update(0.0, 1.0);
  fast.Update(10.0, 1.0);
  slow.Update(10.0, 1.0);
  EXPECT_GT(fast.value(), slow.value());
}

TEST(SmootherTest, ResetClears) {
  ExponentialSmoother s;
  s.Update(5.0, 1.0);
  s.Reset();
  EXPECT_FALSE(s.initialized());
  EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(SmootherTest, ValueStaysBetweenSampleAndOld) {
  ExponentialSmoother s;
  s.set_half_life(3.0);
  s.Update(10.0, 1.0);
  s.Update(20.0, 1.0);
  EXPECT_GT(s.value(), 10.0);
  EXPECT_LT(s.value(), 20.0);
}

}  // namespace
}  // namespace odenergy
