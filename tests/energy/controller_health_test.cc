// Controller health state machine: the director's telemetry-fault defenses
// (DESIGN.md §7).  Corruption is injected straight at the monitor's
// TelemetryFaults switchboard, below the director, so these tests exercise
// exactly what a disturbance plan exercises without the scenario layer.

#include "src/energy/goal_director.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/power/thinkpad560x.h"
#include "src/powerscope/online_monitor.h"
#include "src/sim/simulator.h"

namespace odenergy {
namespace {

class FakeApp : public odyssey::AdaptiveApplication {
 public:
  FakeApp(std::string name, int priority)
      : name_(std::move(name)),
        priority_(priority),
        spec_({"L0", "L1", "L2"}),
        fidelity_(spec_.highest()) {}

  const std::string& name() const override { return name_; }
  int priority() const override { return priority_; }
  const odyssey::FidelitySpec& fidelity_spec() const override { return spec_; }
  int current_fidelity() const override { return fidelity_; }
  void SetFidelity(int level) override { fidelity_ = level; }

  void Force(int level) { fidelity_ = level; }

 private:
  std::string name_;
  int priority_;
  odyssey::FidelitySpec spec_;
  int fidelity_;
};

// The idle laptop draws ~9.8 W; samples arrive every 100 ms.
struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  odnet::Link link{&sim, &laptop->power_manager(), odnet::LinkConfig{}};
  odyssey::Viceroy viceroy{&sim, &link, &laptop->power_manager()};
  FakeApp low{"low", 0};
  FakeApp high{"high", 10};
  odscope::OnlineMonitor monitor{&sim, &laptop->machine(),
                                 [] {
                                   odscope::OnlineMonitorConfig c;
                                   c.noise_watts = 0.0;
                                   return c;
                                 }(),
                                 1};

  Rig() {
    viceroy.RegisterApplication(&low);
    viceroy.RegisterApplication(&high);
  }
};

TEST(ControllerHealthTest, CleanFeedStaysHealthy) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e6);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(600));
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(20));
  EXPECT_EQ(director.health(), ControllerHealth::kHealthy);
  EXPECT_EQ(director.safe_mode_entries(), 0);
  EXPECT_EQ(director.invalid_samples(), 0);
  EXPECT_EQ(director.telemetry_gaps(), 0);
  EXPECT_DOUBLE_EQ(director.telemetry_debit_joules(), 0.0);
  EXPECT_DOUBLE_EQ(
      director.SafeModeSeconds(odsim::SimTime::Seconds(20)), 0.0);
  director.Stop();
}

TEST(ControllerHealthTest, NanSamplesTripSafeModeAndClampFidelity) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e6);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(600));
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  ASSERT_EQ(rig.high.current_fidelity(), rig.high.fidelity_spec().highest());

  rig.monitor.telemetry_faults()->set_nan(true);
  // Default invalid_sample_limit = 3, one sample per 100 ms: safe mode
  // within half a second of the corruption starting.
  rig.sim.RunUntil(odsim::SimTime::Seconds(7));
  EXPECT_EQ(director.health(), ControllerHealth::kSafeMode);
  EXPECT_EQ(director.safe_mode_entries(), 1);
  EXPECT_GE(director.invalid_samples(), 3);
  // The energy-conserving fallback: everything at cheapest fidelity.
  EXPECT_EQ(rig.low.current_fidelity(), 0);
  EXPECT_EQ(rig.high.current_fidelity(), 0);
  EXPECT_GT(director.SafeModeSeconds(odsim::SimTime::Seconds(7)), 0.0);
  director.Stop();
}

TEST(ControllerHealthTest, SafeModeFreezesPlanningDespiteSurplus) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e6);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(600));
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  rig.monitor.telemetry_faults()->set_nan(true);
  // A huge surplus would normally drive upgrades; in safe mode the clamp
  // holds every application at the floor for as long as the fault lasts.
  rig.sim.RunUntil(odsim::SimTime::Seconds(60));
  EXPECT_EQ(director.health(), ControllerHealth::kSafeMode);
  EXPECT_EQ(rig.low.current_fidelity(), 0);
  EXPECT_EQ(rig.high.current_fidelity(), 0);
  EXPECT_EQ(director.safe_mode_entries(), 1);  // One episode, not many.
  director.Stop();
}

TEST(ControllerHealthTest, RecoveryHysteresisRestoresFidelity) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e6);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(600));
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  rig.monitor.telemetry_faults()->set_nan(true);
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  ASSERT_EQ(director.health(), ControllerHealth::kSafeMode);

  rig.monitor.telemetry_faults()->set_nan(false);
  // Default health_recovery_samples = 8 -> ~0.8 s of valid readings before
  // the clamp lifts and the pre-fault fidelities return.
  rig.sim.RunUntil(odsim::SimTime::Seconds(10.3));
  EXPECT_EQ(director.health(), ControllerHealth::kSafeMode);  // Not yet.
  rig.sim.RunUntil(odsim::SimTime::Seconds(15));
  EXPECT_EQ(director.health(), ControllerHealth::kHealthy);
  EXPECT_EQ(rig.low.current_fidelity(), rig.low.fidelity_spec().highest());
  EXPECT_EQ(rig.high.current_fidelity(), rig.high.fidelity_spec().highest());
  // The episode is closed: safe-mode time stops accruing.
  double at_recovery = director.SafeModeSeconds(odsim::SimTime::Seconds(15));
  rig.sim.RunUntil(odsim::SimTime::Seconds(20));
  EXPECT_DOUBLE_EQ(director.SafeModeSeconds(odsim::SimTime::Seconds(20)),
                   at_recovery);
  director.Stop();
}

TEST(ControllerHealthTest, DropoutGapTripsTheWatchdogAndIsBridged) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e4);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(600));
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));

  rig.monitor.telemetry_faults()->set_dropout(true);
  // No samples at all: the gap watchdog in Evaluate() (default 4 sampling
  // periods = 0.4 s) must trip safe mode even though OnPowerSample never
  // runs.
  rig.sim.RunUntil(odsim::SimTime::Seconds(12));
  EXPECT_EQ(director.health(), ControllerHealth::kSafeMode);

  rig.monitor.telemetry_faults()->set_dropout(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(20));
  EXPECT_EQ(director.health(), ControllerHealth::kHealthy);
  EXPECT_GE(director.telemetry_gaps(), 1);
  // The monitor integrated nothing during the outage; the debit bridges
  // the missing ~9.8 W so the residual estimate tracks the truth.
  EXPECT_GT(director.telemetry_debit_joules(), 0.0);
  double truth = director.TrueResidualJoules(odsim::SimTime::Seconds(20));
  EXPECT_NEAR(director.EstimatedResidualJoules(), truth, 0.02 * 1.0e4);
  director.Stop();
}

TEST(ControllerHealthTest, GaugeDriftIsRejectedAndReCounted) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e4);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(600));
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));

  // 3x gauge drift reads the ~9.8 W laptop as ~29 W — beyond
  // max_plausible_watts, so every reading is rejected as implausible.
  rig.monitor.telemetry_faults()->set_gauge_scale(3.0);
  rig.sim.RunUntil(odsim::SimTime::Seconds(40));
  EXPECT_EQ(director.health(), ControllerHealth::kSafeMode);
  EXPECT_GT(director.invalid_samples(), 0);

  rig.monitor.telemetry_faults()->set_gauge_scale(1.0);
  rig.sim.RunUntil(odsim::SimTime::Seconds(50));
  EXPECT_EQ(director.health(), ControllerHealth::kHealthy);
  // The monitor integrated the inflated readings (~3x actual); the debit
  // re-counts that span at the smoothed rate.  Without the correction the
  // estimate would be off by ~2 * 9.8 W * 30 s = ~590 J; with it the error
  // must stay a small fraction of that.
  double truth = director.TrueResidualJoules(odsim::SimTime::Seconds(50));
  EXPECT_NE(director.telemetry_debit_joules(), 0.0);
  EXPECT_NEAR(director.EstimatedResidualJoules(), truth, 150.0);
  director.Stop();
}

TEST(ControllerHealthTest, FrozenFeedDetectedByStaleLimit) {
  // Stale detection needs a noisy source (a noiseless feed legitimately
  // repeats values), so this test builds its own monitor instead of the
  // rig's noiseless one — matching how the goal scenario configures the
  // multimeter under a disturbance plan.
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  odnet::Link link{&sim, &laptop->power_manager(), odnet::LinkConfig{}};
  odyssey::Viceroy viceroy{&sim, &link, &laptop->power_manager()};
  FakeApp low{"low", 0};
  FakeApp high{"high", 10};
  viceroy.RegisterApplication(&low);
  viceroy.RegisterApplication(&high);
  odscope::OnlineMonitorConfig monitor_config;
  monitor_config.noise_watts = 0.05;
  odscope::OnlineMonitor monitor(&sim, &laptop->machine(), monitor_config, 1);

  odpower::EnergySupply supply(&laptop->accounting(), 1.0e6);
  GoalDirectorConfig config;
  config.stale_sample_limit = 12;
  GoalDirector director(&viceroy, &supply, &monitor,
                        odsim::SimTime::Seconds(600), config);
  director.Start(false);
  sim.RunUntil(odsim::SimTime::Seconds(10));
  ASSERT_EQ(director.health(), ControllerHealth::kHealthy);

  // A wedged driver repeating its last reading: values stay plausible, so
  // only the frozen-feed detector can catch this.
  monitor.telemetry_faults()->set_stale(true);
  sim.RunUntil(odsim::SimTime::Seconds(15));
  EXPECT_EQ(director.health(), ControllerHealth::kSafeMode);
  EXPECT_GE(director.invalid_samples(), 1);

  monitor.telemetry_faults()->set_stale(false);
  sim.RunUntil(odsim::SimTime::Seconds(20));
  EXPECT_EQ(director.health(), ControllerHealth::kHealthy);
  director.Stop();
}

TEST(ControllerHealthTest, TimelineRecordsHealthTransitions) {
  Rig rig;
  odpower::EnergySupply supply(&rig.laptop->accounting(), 1.0e6);
  GoalDirector director(&rig.viceroy, &supply, &rig.monitor,
                        odsim::SimTime::Seconds(600));
  director.Start(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  rig.monitor.telemetry_faults()->set_nan(true);
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  rig.monitor.telemetry_faults()->set_nan(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(20));
  director.Stop();

  bool saw_healthy = false;
  bool saw_safe_mode = false;
  for (const TimelinePoint& point : director.timeline()) {
    if (point.health == ControllerHealth::kHealthy) saw_healthy = true;
    if (point.health == ControllerHealth::kSafeMode) saw_safe_mode = true;
  }
  EXPECT_TRUE(saw_healthy);
  EXPECT_TRUE(saw_safe_mode);
  // Recovered by the end: the last point is healthy again.
  ASSERT_FALSE(director.timeline().empty());
  EXPECT_EQ(director.timeline().back().health, ControllerHealth::kHealthy);
}

}  // namespace
}  // namespace odenergy
