// Reproduction of Figure 18 / Section 4 (zoned backlighting projection).
// Paper claims:
//   - video: 17-18% saving at full fidelity (both layouts: one zone of
//     four lit, or two of eight — identical lit area), 24% (4-zone) and
//     28-29% (8-zone) at lowest fidelity;
//   - map: no benefit at full fidelity on the 4-zone display (all zones
//     lit), 7-8% on the 8-zone display; at lowest fidelity 24%/28-29%-class
//     savings appear as the cropped window spans fewer zones;
//   - lowering fidelity enhances the energy savings due to zoning.
//
// With ODBENCH_ARTIFACT_DIR set the tests replay the recorded fig18_zoned
// artifact.  Its cells ("Video/<fid>/zones<z>", "Map/think<t>/<fid>/zones<z>")
// are normalized by a per-row baseline, so every assertion here is a ratio
// of cells sharing that baseline — scale-invariant, valid for both the raw
// joules of live mode and the normalized values of replay mode.  Each test
// branches wholesale so recorded and live values never mix scales.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "src/harness/artifact_replay.h"

namespace odapps {
namespace {

constexpr char kExp[] = "fig18_zoned";

std::string VideoCell(const char* fidelity, int zones) {
  char label[64];
  std::snprintf(label, sizeof(label), "Video/%s/zones%d", fidelity, zones);
  return label;
}

std::string MapCell(double think, const char* fidelity, int zones) {
  char label[64];
  std::snprintf(label, sizeof(label), "Map/think%.0f/%s/zones%d", think,
                fidelity, zones);
  return label;
}

TEST(ZonedVideoTest, FullFidelitySavingsSameForBothLayouts) {
  const VideoClip& clip = StandardVideoClips()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  double none, four, eight;
  if (auto recorded = replay.SetMean(kExp, VideoCell("full", 0))) {
    none = *recorded;
    four = replay.SetMean(kExp, VideoCell("full", 4)).value();
    eight = replay.SetMean(kExp, VideoCell("full", 8)).value();
  } else {
    none = RunZonedVideoExperiment(clip, VideoTrack::kBaseline, 1.0, 0, 71).joules;
    four = RunZonedVideoExperiment(clip, VideoTrack::kBaseline, 1.0, 4, 71).joules;
    eight =
        RunZonedVideoExperiment(clip, VideoTrack::kBaseline, 1.0, 8, 71).joules;
  }
  // One of four zones lit == two of eight: identical lit fraction.
  EXPECT_NEAR(four, eight, 0.01 * none);
  // 17-18% in the paper; we assert 13-21%.
  double saving = 1.0 - four / none;
  EXPECT_GT(saving, 0.13);
  EXPECT_LT(saving, 0.21);
}

TEST(ZonedVideoTest, LowestFidelityEnhancesSavings) {
  const VideoClip& clip = StandardVideoClips()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  double full_none, full_four, low_none, low_four, low_eight;
  if (auto recorded = replay.SetMean(kExp, VideoCell("full", 0))) {
    full_none = *recorded;
    full_four = replay.SetMean(kExp, VideoCell("full", 4)).value();
    low_none = replay.SetMean(kExp, VideoCell("lowest", 0)).value();
    low_four = replay.SetMean(kExp, VideoCell("lowest", 4)).value();
    low_eight = replay.SetMean(kExp, VideoCell("lowest", 8)).value();
  } else {
    full_none =
        RunZonedVideoExperiment(clip, VideoTrack::kBaseline, 1.0, 0, 73).joules;
    full_four =
        RunZonedVideoExperiment(clip, VideoTrack::kBaseline, 1.0, 4, 73).joules;
    low_none =
        RunZonedVideoExperiment(clip, VideoTrack::kPremiereC, 0.5, 0, 73).joules;
    low_four =
        RunZonedVideoExperiment(clip, VideoTrack::kPremiereC, 0.5, 4, 73).joules;
    low_eight =
        RunZonedVideoExperiment(clip, VideoTrack::kPremiereC, 0.5, 8, 73).joules;
  }

  double full_saving = 1.0 - full_four / full_none;
  double low_saving_four = 1.0 - low_four / low_none;
  double low_saving_eight = 1.0 - low_eight / low_none;

  EXPECT_GT(low_saving_four, full_saving);
  // Paper: 24% (4-zone) and 28-29% (8-zone); we assert 20-33%.
  EXPECT_GT(low_saving_four, 0.20);
  EXPECT_LT(low_saving_four, 0.30);
  EXPECT_GT(low_saving_eight, low_saving_four);
  EXPECT_LT(low_saving_eight, 0.33);
}

TEST(ZonedMapTest, FullFidelityNoBenefitOnFourZones) {
  // "The map at full fidelity occupies all zones in the 4-zone case and
  // hence shows no benefits."
  const MapObject& map = StandardMaps()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  double none, four;
  if (auto recorded = replay.SetMean(kExp, MapCell(5.0, "full", 0))) {
    none = *recorded;
    four = replay.SetMean(kExp, MapCell(5.0, "full", 4)).value();
  } else {
    none = RunZonedMapExperiment(map, MapFidelity::kFull, 5.0, 0, 75).joules;
    four = RunZonedMapExperiment(map, MapFidelity::kFull, 5.0, 4, 75).joules;
  }
  EXPECT_NEAR(four, none, 0.01 * none);
}

TEST(ZonedMapTest, EightZonesHelpEvenAtFullFidelity) {
  // Six of eight zones lit: 7-8% saving at five seconds of think time.
  const MapObject& map = StandardMaps()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  double none, eight;
  if (auto recorded = replay.SetMean(kExp, MapCell(5.0, "full", 0))) {
    none = *recorded;
    eight = replay.SetMean(kExp, MapCell(5.0, "full", 8)).value();
  } else {
    none = RunZonedMapExperiment(map, MapFidelity::kFull, 5.0, 0, 75).joules;
    eight = RunZonedMapExperiment(map, MapFidelity::kFull, 5.0, 8, 75).joules;
  }
  double saving = 1.0 - eight / none;
  EXPECT_GT(saving, 0.05);
  EXPECT_LT(saving, 0.12);
}

TEST(ZonedMapTest, CroppedMapSpansFewerZones) {
  const MapObject& map = StandardMaps()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  double none, four, eight;
  if (auto recorded = replay.SetMean(kExp, MapCell(5.0, "lowest", 0))) {
    none = *recorded;
    four = replay.SetMean(kExp, MapCell(5.0, "lowest", 4)).value();
    eight = replay.SetMean(kExp, MapCell(5.0, "lowest", 8)).value();
  } else {
    none =
        RunZonedMapExperiment(map, MapFidelity::kCroppedSecondary, 5.0, 0, 77).joules;
    four =
        RunZonedMapExperiment(map, MapFidelity::kCroppedSecondary, 5.0, 4, 77).joules;
    eight =
        RunZonedMapExperiment(map, MapFidelity::kCroppedSecondary, 5.0, 8, 77).joules;
  }
  double saving_four = 1.0 - four / none;
  double saving_eight = 1.0 - eight / none;
  // Two of four zones lit / three of eight.
  EXPECT_GT(saving_four, 0.15);
  EXPECT_LT(saving_four, 0.30);
  EXPECT_GT(saving_eight, saving_four);
  EXPECT_LT(saving_eight, 0.35);
}

TEST(ZonedMapTest, SavingsGrowWithThinkTime) {
  // "The energy reduction increases with think time" — the display dominates
  // longer idle periods.
  const MapObject& map = StandardMaps()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  auto saving_at = [&](double think) {
    double none, eight;
    if (auto recorded = replay.SetMean(kExp, MapCell(think, "full", 0))) {
      none = *recorded;
      eight = replay.SetMean(kExp, MapCell(think, "full", 8)).value();
    } else {
      none = RunZonedMapExperiment(map, MapFidelity::kFull, think, 0, 79).joules;
      eight = RunZonedMapExperiment(map, MapFidelity::kFull, think, 8, 79).joules;
    }
    return 1.0 - eight / none;
  };
  EXPECT_GT(saving_at(20.0), saving_at(5.0));
  EXPECT_GT(saving_at(5.0), saving_at(0.0));
}

}  // namespace
}  // namespace odapps
