// Reproduction bands for Figures 10 and 11 (map viewer).  Paper claims:
//   - hardware-only PM saves 9-19% of baseline;
//   - the minor-road filter saves 6-51% below hardware-only PM;
//   - the secondary-road filter saves 23-55%;
//   - cropping saves 14-49%;
//   - cropping + secondary filter saves 36-66% (46-70% below baseline);
//   - energy is linear in think time, with slope = background power.
//
// With ODBENCH_ARTIFACT_DIR set the bands replay the recorded fig10_map
// ("<map>/<bar>") and fig11_map_think ("<policy>/think<t>") artifacts
// instead of re-simulating.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "src/util/stats.h"
#include "tests/repro/replay_util.h"

namespace odapps {
namespace {

using odrepro::OrLive;

constexpr char kFig10[] = "fig10_map";
constexpr char kFig11[] = "fig11_map_think";

std::string Bar(const MapObject& map, const char* bar) {
  return std::string(map.name) + "/" + bar;
}

std::string ThinkCell(const char* policy, double think) {
  char label[64];
  std::snprintf(label, sizeof(label), "%s/think%.0f", policy, think);
  return label;
}

class MapBandsTest : public ::testing::TestWithParam<int> {};

TEST_P(MapBandsTest, FigureTenRatios) {
  const MapObject& map = StandardMaps()[static_cast<size_t>(GetParam())];
  uint64_t seed = 300 + static_cast<uint64_t>(GetParam());
  constexpr double kThink = 5.0;
  const auto& replay = odharness::ArtifactReplay::Env();

  double base = OrLive(replay.SetMean(kFig10, Bar(map, "Baseline")), [&] {
    return RunMapExperiment(map, MapFidelity::kFull, kThink, false, seed)
        .joules;
  });
  double pm = OrLive(
      replay.SetMean(kFig10, Bar(map, "Hardware-Only Power Mgmt.")), [&] {
        return RunMapExperiment(map, MapFidelity::kFull, kThink, true, seed)
            .joules;
      });
  double minor =
      OrLive(replay.SetMean(kFig10, Bar(map, "Minor Road Filter")), [&] {
        return RunMapExperiment(map, MapFidelity::kMinorFilter, kThink, true,
                                seed)
            .joules;
      });
  double secondary =
      OrLive(replay.SetMean(kFig10, Bar(map, "Secondary Road Filter")), [&] {
        return RunMapExperiment(map, MapFidelity::kSecondaryFilter, kThink,
                                true, seed)
            .joules;
      });
  double cropped = OrLive(replay.SetMean(kFig10, Bar(map, "Cropped")), [&] {
    return RunMapExperiment(map, MapFidelity::kCropped, kThink, true, seed)
        .joules;
  });
  double combined = OrLive(
      replay.SetMean(kFig10, Bar(map, "Cropped + Secondary Filter")), [&] {
        return RunMapExperiment(map, MapFidelity::kCroppedSecondary, kThink,
                                true, seed)
            .joules;
      });

  EXPECT_GT(pm / base, 0.80) << map.name;
  EXPECT_LT(pm / base, 0.92) << map.name;

  EXPECT_GT(minor / pm, 0.45) << map.name;
  EXPECT_LT(minor / pm, 0.97) << map.name;

  EXPECT_GT(secondary / pm, 0.42) << map.name;
  EXPECT_LT(secondary / pm, 0.80) << map.name;

  EXPECT_GT(cropped / pm, 0.48) << map.name;
  EXPECT_LT(cropped / pm, 0.89) << map.name;

  EXPECT_GT(combined / pm, 0.30) << map.name;
  EXPECT_LT(combined / pm, 0.69) << map.name;

  // Combined vs baseline: 46-70% reduction (we allow 42-72%).
  EXPECT_GT(combined / base, 0.28) << map.name;
  EXPECT_LT(combined / base, 0.58) << map.name;

  // More aggressive filtering always beats less aggressive filtering.
  EXPECT_LT(secondary, minor) << map.name;
  EXPECT_LT(combined, cropped) << map.name;
  EXPECT_LT(combined, secondary) << map.name;
}

INSTANTIATE_TEST_SUITE_P(AllMaps, MapBandsTest, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return StandardMaps()[static_cast<size_t>(info.param)]
                                      .name == "San Jose" && info.param == 0
                                      ? std::string("SanJose")
                                      : "Map" + std::to_string(info.param);
                         });

TEST(MapThinkTimeTest, LinearModelFitsAllThreePolicies) {
  // Figure 11: E_t = E_0 + t * P_B fits baseline, hardware-only, and lowest
  // fidelity; the first two diverge, the last two are parallel.
  const MapObject& map = StandardMaps()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  std::vector<double> thinks = {0.0, 5.0, 10.0, 20.0};

  auto sweep = [&](const char* policy, MapFidelity fidelity, bool pm) {
    std::vector<double> joules;
    for (double think : thinks) {
      joules.push_back(
          OrLive(replay.SetMean(kFig11, ThinkCell(policy, think)), [&] {
            return RunMapExperiment(map, fidelity, think, pm, 31).joules;
          }));
    }
    return odutil::FitLine(thinks, joules);
  };

  odutil::LinearFit baseline = sweep("Baseline", MapFidelity::kFull, false);
  odutil::LinearFit hw =
      sweep("Hardware-Only Power Mgmt.", MapFidelity::kFull, true);
  odutil::LinearFit lowest =
      sweep("Lowest Fidelity", MapFidelity::kCroppedSecondary, true);

  EXPECT_GT(baseline.r_squared, 0.999);
  EXPECT_GT(hw.r_squared, 0.999);
  EXPECT_GT(lowest.r_squared, 0.999);

  // Baseline slope exceeds the managed slope (network and disk idle during
  // think time), so the lines diverge.
  EXPECT_GT(baseline.slope, hw.slope + 1.0);
  // Hardware-only and lowest-fidelity slopes are equal (parallel lines):
  // fidelity reduction gives a constant offset, independent of think time.
  EXPECT_NEAR(hw.slope, lowest.slope, 0.15);
  EXPECT_GT(hw.intercept, lowest.intercept + 10.0);
}

TEST(MapThinkTimeTest, ManagedSlopeIsRestingBrightPower) {
  // With PM on, think-time draw is display bright + everything else resting.
  const MapObject& map = StandardMaps()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  double e5 = OrLive(
      replay.SetMean(kFig11, ThinkCell("Hardware-Only Power Mgmt.", 5.0)),
      [&] {
        return RunMapExperiment(map, MapFidelity::kFull, 5.0, true, 33).joules;
      });
  double e20 = OrLive(
      replay.SetMean(kFig11, ThinkCell("Hardware-Only Power Mgmt.", 20.0)),
      [&] {
        return RunMapExperiment(map, MapFidelity::kFull, 20.0, true, 33).joules;
      });
  double slope = (e20 - e5) / 15.0;
  EXPECT_GT(slope, 6.0);
  EXPECT_LT(slope, 7.2);
}

TEST(MapBandsTest2, CroppingLessEffectiveThanFilteringForSanJose) {
  // "Cropping is less effective than filtering for these samples."
  const MapObject& map = StandardMaps()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  double secondary =
      OrLive(replay.SetMean(kFig10, Bar(map, "Secondary Road Filter")), [&] {
        return RunMapExperiment(map, MapFidelity::kSecondaryFilter, 5.0, true,
                                35)
            .joules;
      });
  double cropped = OrLive(replay.SetMean(kFig10, Bar(map, "Cropped")), [&] {
    return RunMapExperiment(map, MapFidelity::kCropped, 5.0, true, 35).joules;
  });
  EXPECT_GT(cropped, secondary);
}

}  // namespace
}  // namespace odapps
