// Reproduction of Figures 19-22 / Section 5 (goal-directed adaptation).
// The paper's headline: Odyssey meets user-specified battery-duration goals
// spanning a 30% range, with small residual energy, degrading low-priority
// applications first; smoothing half-life trades stability for agility.

#include <string>

#include <gtest/gtest.h>

#include "src/apps/goal_scenario.h"
#include "tests/repro/replay_util.h"

namespace odapps {
namespace {

using odrepro::OrLive;

constexpr char kExp[] = "fig20_goal_summary";

class GoalSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(GoalSweepTest, GoalIsMetWithSmallResidual) {
  GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(GetParam());
  options.seed = 81;
  // In replay mode the recorded fig20 set for this goal stands in for the
  // live run: residual is the set's headline value; goal_met,
  // elapsed_seconds, and the per-application adaptation counts are recorded
  // in the trial breakdown.
  const auto& replay = odharness::ArtifactReplay::Env();
  const std::string label =
      "goal_" + std::to_string(static_cast<int>(GetParam()));
  if (auto residual = replay.SetMean(kExp, label)) {
    EXPECT_EQ(replay.BreakdownMean(kExp, label, "goal_met").value(), 1.0);
    EXPECT_NEAR(replay.BreakdownMean(kExp, label, "elapsed_seconds").value(),
                GetParam(), 1.0);
    EXPECT_LT(*residual, 0.08 * options.initial_joules);
    double adaptations =
        replay.BreakdownMean(kExp, label, "Speech").value_or(0.0) +
        replay.BreakdownMean(kExp, label, "Video").value_or(0.0) +
        replay.BreakdownMean(kExp, label, "Map").value_or(0.0) +
        replay.BreakdownMean(kExp, label, "Web").value_or(0.0);
    EXPECT_GT(adaptations, 0.0);
    return;
  }
  GoalScenarioResult result = RunGoalScenario(options);
  EXPECT_TRUE(result.goal_met);
  EXPECT_NEAR(result.elapsed_seconds, GetParam(), 1.0);
  // Residue under 8% of the 13,500 J supply (paper: under ~2% of 12,000 J
  // in most runs; our director is slightly more conservative).
  EXPECT_LT(result.residual_joules, 0.08 * options.initial_joules);
  EXPECT_GT(result.total_adaptations, 0);
}

INSTANTIATE_TEST_SUITE_P(PaperGoals, GoalSweepTest,
                         ::testing::Values(1200.0, 1320.0, 1440.0, 1560.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "Goal" +
                                  std::to_string(static_cast<int>(info.param)) +
                                  "s";
                         });

TEST(GoalBandsTest, PinnedLifetimesBracketTheGoals) {
  // Paper framing: 19:27 at highest fidelity, 27:06 at lowest (12,000 J).
  // Ours: the four goals must lie between the pinned lifetimes so that the
  // tightest goal requires adaptation and the loosest remains feasible.
  // fig20 records both lifetimes as notes, so replay mode skips the two
  // pinned simulations.
  const auto& replay = odharness::ArtifactReplay::Env();
  double full = OrLive(replay.Note(kExp, "pinned_lifetime_full_seconds"),
                       [] { return MeasurePinnedLifetime(13500.0, false, 83); });
  double low = OrLive(replay.Note(kExp, "pinned_lifetime_lowest_seconds"),
                      [] { return MeasurePinnedLifetime(13500.0, true, 83); });
  EXPECT_LT(full, 1200.0);
  EXPECT_GT(low, 1560.0);
  // Fidelity range extends lifetime by more than 30%.
  EXPECT_GT(low / full, 1.30);
}

TEST(GoalBandsTest, TighterGoalsRunAtLowerFidelity) {
  GoalScenarioOptions tight, loose;
  tight.goal = odsim::SimDuration::Seconds(1560);
  loose.goal = odsim::SimDuration::Seconds(1200);
  tight.seed = loose.seed = 85;
  GoalScenarioResult tight_result = RunGoalScenario(tight);
  GoalScenarioResult loose_result = RunGoalScenario(loose);
  // The 26-minute goal forces everything down by the end; the 20-minute
  // goal leaves the high-priority applications higher.
  int tight_sum = 0, loose_sum = 0;
  for (const auto& [name, level] : tight_result.final_fidelity) {
    tight_sum += level;
  }
  for (const auto& [name, level] : loose_result.final_fidelity) {
    loose_sum += level;
  }
  EXPECT_LT(tight_sum, loose_sum);
}

TEST(GoalBandsTest, SpeechDegradedBeforeWeb) {
  // Priorities: Speech < Video < Map < Web (Section 5.2).  In every run the
  // lowest-priority application is degraded at least as deeply as the
  // highest-priority one.
  GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(1320);
  GoalScenarioResult result = RunGoalScenario(options);
  EXPECT_TRUE(result.goal_met);
  // Normalize by ladder size: speech has 2 levels, web 5.
  double speech_norm = result.final_fidelity.at("Speech") / 1.0;
  double web_norm = result.final_fidelity.at("Web") / 4.0;
  EXPECT_LE(speech_norm, web_norm);
}

TEST(GoalBandsTest, HalfLifeSensitivity) {
  // Figure 21: a 1% half-life is too unstable (most adaptations, largest
  // residue); longer half-lives are more stable.
  auto run = [](double fraction) {
    GoalScenarioOptions options;
    options.goal = odsim::SimDuration::Seconds(1320);
    options.initial_joules = 13000.0;
    options.director.half_life_fraction = fraction;
    options.seed = 87;
    return RunGoalScenario(options);
  };
  GoalScenarioResult h01 = run(0.01);
  GoalScenarioResult h10 = run(0.10);
  GoalScenarioResult h15 = run(0.15);
  // The 1% half-life chases noise, producing the most adaptations; the
  // ordering between 10% and 15% is within run-to-run variation.
  EXPECT_GE(h01.total_adaptations, h10.total_adaptations);
  EXPECT_GE(h01.total_adaptations, h15.total_adaptations);
  EXPECT_TRUE(h10.goal_met);
}

TEST(GoalBandsTest, BurstyLongRunMeetsExtendedGoal) {
  // Figure 22: 90,000 J, 2:45 goal extended by 30 minutes after the first
  // hour, bursty workload.  (A single seed here; the five-trial sweep is in
  // bench/fig22_longrun.)
  GoalScenarioOptions options;
  options.bursty = true;
  options.initial_joules = 90000.0;
  options.goal = odsim::SimDuration::Seconds(9900);
  options.extend_at = odsim::SimDuration::Seconds(3600);
  options.extend_by = odsim::SimDuration::Seconds(1800);
  options.seed = 89;
  GoalScenarioResult result = RunGoalScenario(options);
  EXPECT_TRUE(result.goal_met);
  EXPECT_NEAR(result.elapsed_seconds, 11700.0, 2.0);
  // Residue under 5% of the supply.
  EXPECT_LT(result.residual_joules, 0.05 * options.initial_joules);
}

TEST(GoalBandsTest, SystemStaysResponsiveThroughoutRun) {
  // After the initial transient (where the director pulls predicted demand
  // under the supply), the system keeps adapting as energy drains rather
  // than freezing at one configuration.
  GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(1320);
  options.seed = 91;
  GoalScenarioResult result = RunGoalScenario(options);
  int first_half = 0, second_half = 0;
  for (const auto& [app, changes] : result.fidelity_traces) {
    for (const auto& change : changes) {
      if (change.time.seconds() < 660.0) {
        ++first_half;
      } else {
        ++second_half;
      }
    }
  }
  EXPECT_GT(first_half, 0);
  EXPECT_GT(second_half, 0);
}

}  // namespace
}  // namespace odapps
