// Reproduction bands for Figure 8 (speech).  Paper claims, per utterance:
//   - hardware-only PM reduces client energy by 33-34%;
//   - the reduced model saves 25-46% below hardware-only PM;
//   - remote recognition at full fidelity saves 33-44% below hardware-only;
//   - hybrid saves 47-55% at full fidelity and 53-70% reduced;
//   - lowest fidelity overall is a 69-80% reduction below baseline.
// Bands widened a few points for the simulated substrate.
//
// With ODBENCH_ARTIFACT_DIR set the bands replay the recorded fig08_speech
// artifact (set labels "<utterance>/<bar>") instead of re-simulating.

#include <string>

#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "tests/repro/replay_util.h"

namespace odapps {
namespace {

using odrepro::OrLive;

constexpr char kExp[] = "fig08_speech";

std::string Bar(const Utterance& utterance, const char* bar) {
  return std::string(utterance.name) + "/" + bar;
}

class SpeechBandsTest : public ::testing::TestWithParam<int> {};

TEST_P(SpeechBandsTest, FigureEightRatios) {
  const Utterance& utterance =
      StandardUtterances()[static_cast<size_t>(GetParam())];
  uint64_t seed = 200 + static_cast<uint64_t>(GetParam());
  const auto& replay = odharness::ArtifactReplay::Env();

  double base = OrLive(replay.SetMean(kExp, Bar(utterance, "Baseline")), [&] {
    return RunSpeechExperiment(utterance, SpeechMode::kLocal, false, false,
                               seed)
        .joules;
  });
  double pm = OrLive(
      replay.SetMean(kExp, Bar(utterance, "Hardware-Only Power Mgmt.")), [&] {
        return RunSpeechExperiment(utterance, SpeechMode::kLocal, false, true,
                                   seed)
            .joules;
      });
  double reduced =
      OrLive(replay.SetMean(kExp, Bar(utterance, "Reduced Model")), [&] {
        return RunSpeechExperiment(utterance, SpeechMode::kLocal, true, true,
                                   seed)
            .joules;
      });
  double remote = OrLive(replay.SetMean(kExp, Bar(utterance, "Remote")), [&] {
    return RunSpeechExperiment(utterance, SpeechMode::kRemote, false, true,
                               seed)
        .joules;
  });
  double remote_reduced = OrLive(
      replay.SetMean(kExp, Bar(utterance, "Remote Reduced Model")), [&] {
        return RunSpeechExperiment(utterance, SpeechMode::kRemote, true, true,
                                   seed)
            .joules;
      });
  double hybrid = OrLive(replay.SetMean(kExp, Bar(utterance, "Hybrid")), [&] {
    return RunSpeechExperiment(utterance, SpeechMode::kHybrid, false, true,
                               seed)
        .joules;
  });
  double hybrid_reduced = OrLive(
      replay.SetMean(kExp, Bar(utterance, "Hybrid Reduced Model")), [&] {
        return RunSpeechExperiment(utterance, SpeechMode::kHybrid, true, true,
                                   seed)
            .joules;
      });

  EXPECT_GT(pm / base, 0.62) << utterance.name;
  EXPECT_LT(pm / base, 0.70) << utterance.name;

  EXPECT_GT(reduced / pm, 0.52) << utterance.name;
  EXPECT_LT(reduced / pm, 0.76) << utterance.name;

  EXPECT_GT(remote / pm, 0.52) << utterance.name;
  EXPECT_LT(remote / pm, 0.70) << utterance.name;

  EXPECT_GT(hybrid / pm, 0.42) << utterance.name;
  EXPECT_LT(hybrid / pm, 0.56) << utterance.name;

  EXPECT_GT(hybrid_reduced / pm, 0.27) << utterance.name;
  EXPECT_LT(hybrid_reduced / pm, 0.48) << utterance.name;

  // Remote reduced sits between hybrid-reduced and remote-full.
  EXPECT_LT(remote_reduced, remote) << utterance.name;

  // Lowest fidelity overall vs baseline: 69-80% reduction (we allow 66-82%).
  EXPECT_GT(hybrid_reduced / base, 0.18) << utterance.name;
  EXPECT_LT(hybrid_reduced / base, 0.34) << utterance.name;

  // Strategy ordering at full fidelity: hybrid < remote < local.
  EXPECT_LT(hybrid, remote) << utterance.name;
  EXPECT_LT(remote, pm) << utterance.name;
}

TEST_P(SpeechBandsTest, HybridShipsFiveTimesLessData) {
  // The hybrid first phase is a type-specific compressor: WaveLAN transmit
  // residency must shrink accordingly versus remote mode.
  const Utterance& utterance =
      StandardUtterances()[static_cast<size_t>(GetParam())];
  const auto& replay = odharness::ArtifactReplay::Env();
  double remote_wavelan = OrLive(
      replay.ComponentMean(kExp, Bar(utterance, "Remote"), "WaveLAN"), [&] {
        return RunSpeechExperiment(utterance, SpeechMode::kRemote, false, true,
                                   9)
            .Component("WaveLAN");
      });
  double hybrid_wavelan = OrLive(
      replay.ComponentMean(kExp, Bar(utterance, "Hybrid"), "WaveLAN"), [&] {
        return RunSpeechExperiment(utterance, SpeechMode::kHybrid, false, true,
                                   9)
            .Component("WaveLAN");
      });
  EXPECT_LT(hybrid_wavelan, remote_wavelan);
}

INSTANTIATE_TEST_SUITE_P(AllUtterances, SpeechBandsTest, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Utterance" + std::to_string(info.param + 1);
                         });

TEST(SpeechBandsTest2, PmSavingsComeFromDisplayDiskAndNetwork) {
  // "The display can be turned off and both the network and disk can be
  // placed in standby mode for the entire duration."
  const Utterance& utterance = StandardUtterances()[2];
  const auto& replay = odharness::ArtifactReplay::Env();
  const std::string base_label = Bar(utterance, "Baseline");
  const std::string pm_label = Bar(utterance, "Hardware-Only Power Mgmt.");
  double pm_display, pm_disk, base_disk, pm_wavelan, base_wavelan;
  if (auto display = replay.ComponentMean(kExp, pm_label, "Display")) {
    pm_display = *display;
    pm_disk = replay.ComponentMean(kExp, pm_label, "Disk").value();
    base_disk = replay.ComponentMean(kExp, base_label, "Disk").value();
    pm_wavelan = replay.ComponentMean(kExp, pm_label, "WaveLAN").value();
    base_wavelan = replay.ComponentMean(kExp, base_label, "WaveLAN").value();
  } else {
    auto base =
        RunSpeechExperiment(utterance, SpeechMode::kLocal, false, false, 9);
    auto pm =
        RunSpeechExperiment(utterance, SpeechMode::kLocal, false, true, 9);
    pm_display = pm.Component("Display");
    pm_disk = pm.Component("Disk");
    base_disk = base.Component("Disk");
    pm_wavelan = pm.Component("WaveLAN");
    base_wavelan = base.Component("WaveLAN");
  }
  EXPECT_NEAR(pm_display, 0.0, 1e-9);
  EXPECT_LT(pm_disk, base_disk);
  EXPECT_LT(pm_wavelan, base_wavelan);
}

}  // namespace
}  // namespace odapps
