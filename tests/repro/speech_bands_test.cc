// Reproduction bands for Figure 8 (speech).  Paper claims, per utterance:
//   - hardware-only PM reduces client energy by 33-34%;
//   - the reduced model saves 25-46% below hardware-only PM;
//   - remote recognition at full fidelity saves 33-44% below hardware-only;
//   - hybrid saves 47-55% at full fidelity and 53-70% reduced;
//   - lowest fidelity overall is a 69-80% reduction below baseline.
// Bands widened a few points for the simulated substrate.

#include <gtest/gtest.h>

#include "src/apps/experiments.h"

namespace odapps {
namespace {

class SpeechBandsTest : public ::testing::TestWithParam<int> {};

TEST_P(SpeechBandsTest, FigureEightRatios) {
  const Utterance& utterance =
      StandardUtterances()[static_cast<size_t>(GetParam())];
  uint64_t seed = 200 + static_cast<uint64_t>(GetParam());

  double base =
      RunSpeechExperiment(utterance, SpeechMode::kLocal, false, false, seed).joules;
  double pm =
      RunSpeechExperiment(utterance, SpeechMode::kLocal, false, true, seed).joules;
  double reduced =
      RunSpeechExperiment(utterance, SpeechMode::kLocal, true, true, seed).joules;
  double remote =
      RunSpeechExperiment(utterance, SpeechMode::kRemote, false, true, seed).joules;
  double remote_reduced =
      RunSpeechExperiment(utterance, SpeechMode::kRemote, true, true, seed).joules;
  double hybrid =
      RunSpeechExperiment(utterance, SpeechMode::kHybrid, false, true, seed).joules;
  double hybrid_reduced =
      RunSpeechExperiment(utterance, SpeechMode::kHybrid, true, true, seed).joules;

  EXPECT_GT(pm / base, 0.62) << utterance.name;
  EXPECT_LT(pm / base, 0.70) << utterance.name;

  EXPECT_GT(reduced / pm, 0.52) << utterance.name;
  EXPECT_LT(reduced / pm, 0.76) << utterance.name;

  EXPECT_GT(remote / pm, 0.52) << utterance.name;
  EXPECT_LT(remote / pm, 0.70) << utterance.name;

  EXPECT_GT(hybrid / pm, 0.42) << utterance.name;
  EXPECT_LT(hybrid / pm, 0.56) << utterance.name;

  EXPECT_GT(hybrid_reduced / pm, 0.27) << utterance.name;
  EXPECT_LT(hybrid_reduced / pm, 0.48) << utterance.name;

  // Remote reduced sits between hybrid-reduced and remote-full.
  EXPECT_LT(remote_reduced, remote) << utterance.name;

  // Lowest fidelity overall vs baseline: 69-80% reduction (we allow 66-82%).
  EXPECT_GT(hybrid_reduced / base, 0.18) << utterance.name;
  EXPECT_LT(hybrid_reduced / base, 0.34) << utterance.name;

  // Strategy ordering at full fidelity: hybrid < remote < local.
  EXPECT_LT(hybrid, remote) << utterance.name;
  EXPECT_LT(remote, pm) << utterance.name;
}

TEST_P(SpeechBandsTest, HybridShipsFiveTimesLessData) {
  // The hybrid first phase is a type-specific compressor: WaveLAN transmit
  // residency must shrink accordingly versus remote mode.
  const Utterance& utterance =
      StandardUtterances()[static_cast<size_t>(GetParam())];
  auto remote = RunSpeechExperiment(utterance, SpeechMode::kRemote, false, true, 9);
  auto hybrid = RunSpeechExperiment(utterance, SpeechMode::kHybrid, false, true, 9);
  EXPECT_LT(hybrid.Component("WaveLAN"), remote.Component("WaveLAN"));
}

INSTANTIATE_TEST_SUITE_P(AllUtterances, SpeechBandsTest, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Utterance" + std::to_string(info.param + 1);
                         });

TEST(SpeechBandsTest2, PmSavingsComeFromDisplayDiskAndNetwork) {
  // "The display can be turned off and both the network and disk can be
  // placed in standby mode for the entire duration."
  const Utterance& utterance = StandardUtterances()[2];
  auto base = RunSpeechExperiment(utterance, SpeechMode::kLocal, false, false, 9);
  auto pm = RunSpeechExperiment(utterance, SpeechMode::kLocal, false, true, 9);
  EXPECT_NEAR(pm.Component("Display"), 0.0, 1e-9);
  EXPECT_LT(pm.Component("Disk"), base.Component("Disk"));
  EXPECT_LT(pm.Component("WaveLAN"), base.Component("WaveLAN"));
}

}  // namespace
}  // namespace odapps
