// Reproduction of Figure 15 / Section 3.7 (concurrency).  The paper's
// qualitative claims, which we assert:
//   - adding a background video costs more energy in every configuration;
//   - the marginal cost is smallest at lowest fidelity (+18% in the paper —
//     background power is amortized across applications);
//   - the marginal cost under hardware-only PM exceeds the baseline's (the
//     display can no longer sleep during speech segments);
//   - concurrency enhances the benefit of lowering fidelity: the combined
//     ratio under concurrency beats the product of the individual ratios.
// Our marginal costs are lower than the paper's +53%/+64% for the managed
// cases (our video sheds more load under contention); EXPERIMENTS.md records
// the measured values.

#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "src/harness/artifact_replay.h"

namespace odapps {
namespace {

struct ConcurrencyResults {
  double base_alone, base_video;
  double pm_alone, pm_video;
  double low_alone, low_video;
};

// With ODBENCH_ARTIFACT_DIR set, the six energies replay the recorded
// fig15_concurrency artifact ("<case>/alone" and "<case>/with_video");
// otherwise each is simulated once per test binary.
const ConcurrencyResults& Results() {
  static const ConcurrencyResults results = [] {
    const auto& replay = odharness::ArtifactReplay::Env();
    constexpr char kExp[] = "fig15_concurrency";
    ConcurrencyResults r;
    if (auto base_alone = replay.SetMean(kExp, "Baseline/alone")) {
      r.base_alone = *base_alone;
      r.base_video = replay.SetMean(kExp, "Baseline/with_video").value();
      r.pm_alone =
          replay.SetMean(kExp, "Hardware-Only Power Mgmt./alone").value();
      r.pm_video =
          replay.SetMean(kExp, "Hardware-Only Power Mgmt./with_video").value();
      r.low_alone = replay.SetMean(kExp, "Lowest Fidelity/alone").value();
      r.low_video = replay.SetMean(kExp, "Lowest Fidelity/with_video").value();
      return r;
    }
    r.base_alone = RunCompositeExperiment(6, false, false, false, 61).joules;
    r.base_video = RunCompositeExperiment(6, false, false, true, 61).joules;
    r.pm_alone = RunCompositeExperiment(6, false, true, false, 61).joules;
    r.pm_video = RunCompositeExperiment(6, false, true, true, 61).joules;
    r.low_alone = RunCompositeExperiment(6, true, true, false, 61).joules;
    r.low_video = RunCompositeExperiment(6, true, true, true, 61).joules;
    return r;
  }();
  return results;
}

TEST(ConcurrencyTest, VideoAlwaysAddsEnergy) {
  const ConcurrencyResults& r = Results();
  EXPECT_GT(r.base_video, r.base_alone);
  EXPECT_GT(r.pm_video, r.pm_alone);
  EXPECT_GT(r.low_video, r.low_alone);
}

TEST(ConcurrencyTest, LowestFidelityHasSmallestMarginalCost) {
  const ConcurrencyResults& r = Results();
  double base_add = r.base_video / r.base_alone - 1.0;
  double pm_add = r.pm_video / r.pm_alone - 1.0;
  double low_add = r.low_video / r.low_alone - 1.0;
  EXPECT_LT(low_add, base_add);
  EXPECT_LT(low_add, pm_add);
  // Paper: +18%; we assert 5-30%.
  EXPECT_GT(low_add, 0.05);
  EXPECT_LT(low_add, 0.30);
}

TEST(ConcurrencyTest, PmMarginalCostExceedsBaseline) {
  // Under PM the display sleeps during speech when the composite runs alone;
  // the background video forfeits that, so concurrency costs more.
  const ConcurrencyResults& r = Results();
  double base_add = r.base_video / r.base_alone - 1.0;
  double pm_add = r.pm_video / r.pm_alone - 1.0;
  EXPECT_GT(pm_add, base_add);
}

TEST(ConcurrencyTest, ConcurrencyEnhancesFidelityBenefit) {
  // Section 3.7: under concurrency the lowest-fidelity/hardware-only ratio
  // (0.65 in the paper) beats the expected product of the isolated ratios
  // (0.84 * 0.84 = 0.71) — concurrency magnifies the benefit of adaptation.
  const ConcurrencyResults& r = Results();
  double concurrent_ratio = r.low_video / r.pm_video;
  double isolated_ratio = r.low_alone / r.pm_alone;
  EXPECT_LT(concurrent_ratio, isolated_ratio);
  EXPECT_GT(concurrent_ratio, 0.35);
  EXPECT_LT(concurrent_ratio, 0.75);
}

TEST(ConcurrencyTest, HardwarePmStillHelpsUnderConcurrency) {
  const ConcurrencyResults& r = Results();
  EXPECT_LT(r.pm_video, r.base_video);
}

TEST(ConcurrencyTest, BackgroundVideoDropsFramesRatherThanStretching) {
  // The concurrent run must not take dramatically longer than the composite
  // alone — the video sheds load instead of starving the foreground.
  auto alone = RunCompositeExperiment(6, false, false, false, 67);
  auto with_video = RunCompositeExperiment(6, false, false, true, 67);
  EXPECT_LT(with_video.seconds, 1.25 * alone.seconds);
}

}  // namespace
}  // namespace odapps
