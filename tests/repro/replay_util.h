// Helpers for the band tests' two execution modes.
//
// Each reproduction band either replays a recorded `odbench run all --out`
// artifact (ODBENCH_ARTIFACT_DIR set; asserts against cross-trial means)
// or simulates live, exactly as before replay existed.  OrLive() expresses
// one quantity in both modes: the recorded value when the replay lookup
// found one, otherwise the result of the live lambda — which therefore
// only simulates when it has to.
//
// Tests whose quantities must share a scale (e.g. the fig18 cells, which
// are normalized by a common baseline) should branch wholesale on the
// first lookup instead of calling OrLive per quantity, so a partially
// readable artifact can never mix recorded and live values.

#ifndef TESTS_REPRO_REPLAY_UTIL_H_
#define TESTS_REPRO_REPLAY_UTIL_H_

#include <optional>
#include <utility>

#include "src/harness/artifact_replay.h"

namespace odrepro {

template <typename Live>
double OrLive(const std::optional<double>& recorded, Live&& live) {
  return recorded.has_value() ? *recorded : std::forward<Live>(live)();
}

}  // namespace odrepro

#endif  // TESTS_REPRO_REPLAY_UTIL_H_
