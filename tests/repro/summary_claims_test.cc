// Section 3.8 / Figure 16 summary claims, computed over all sixteen data
// objects exactly as the paper's summary table is:
//   - fidelity reduction alone saves 7-72% (mean 36%);
//   - combined with hardware power management: 31-76% (mean 50%) —
//     "in effect, doubling battery life";
//   - video shows little variation across data objects; others vary widely.
//
// With ODBENCH_ARTIFACT_DIR set the claims replay the recorded fig16_summary
// artifact: each "<App>/<object>" cell's breakdown records the base/pm/low
// absolute energies the ratios are computed from.

#include <string>

#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "src/util/stats.h"
#include "tests/repro/replay_util.h"

namespace odapps {
namespace {

constexpr char kExp[] = "fig16_summary";

struct AppSummary {
  std::vector<double> hw_ratio;        // hw-pm / baseline, per object.
  std::vector<double> fidelity_ratio;  // lowest / hw-pm, per object.
  std::vector<double> combined_ratio;  // lowest / baseline, per object.
};

void AddObject(AppSummary& s, double base, double pm, double low) {
  s.hw_ratio.push_back(pm / base);
  s.fidelity_ratio.push_back(low / pm);
  s.combined_ratio.push_back(low / base);
}

// The recorded base/pm/low energies of one fig16 cell, or nullopt when
// replay is off (or the artifact lacks the cell) and the caller must
// simulate.
struct Energies {
  double base, pm, low;
};

std::optional<Energies> Recorded(const char* app, const std::string& object) {
  const auto& replay = odharness::ArtifactReplay::Env();
  const std::string label = std::string(app) + "/" + object;
  auto base = replay.BreakdownMean(kExp, label, "base");
  if (!base.has_value()) {
    return std::nullopt;
  }
  return Energies{*base, replay.BreakdownMean(kExp, label, "pm").value(),
                  replay.BreakdownMean(kExp, label, "low").value()};
}

AppSummary VideoSummary() {
  AppSummary s;
  for (size_t i = 0; i < 4; ++i) {
    const VideoClip& clip = StandardVideoClips()[i];
    if (auto e = Recorded("Video", clip.name)) {
      AddObject(s, e->base, e->pm, e->low);
      continue;
    }
    uint64_t seed = 500 + i;
    double base =
        RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, false, seed).joules;
    double pm =
        RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, true, seed).joules;
    double low =
        RunVideoExperiment(clip, VideoTrack::kPremiereC, 0.5, true, seed).joules;
    AddObject(s, base, pm, low);
  }
  return s;
}

AppSummary SpeechSummary() {
  AppSummary s;
  for (size_t i = 0; i < 4; ++i) {
    const Utterance& u = StandardUtterances()[i];
    if (auto e = Recorded("Speech", u.name)) {
      AddObject(s, e->base, e->pm, e->low);
      continue;
    }
    uint64_t seed = 520 + i;
    double base =
        RunSpeechExperiment(u, SpeechMode::kLocal, false, false, seed).joules;
    double pm = RunSpeechExperiment(u, SpeechMode::kLocal, false, true, seed).joules;
    double low =
        RunSpeechExperiment(u, SpeechMode::kHybrid, true, true, seed).joules;
    AddObject(s, base, pm, low);
  }
  return s;
}

AppSummary MapSummary() {
  AppSummary s;
  for (size_t i = 0; i < 4; ++i) {
    const MapObject& map = StandardMaps()[i];
    if (auto e = Recorded("Map", map.name)) {
      AddObject(s, e->base, e->pm, e->low);
      continue;
    }
    uint64_t seed = 540 + i;
    double base = RunMapExperiment(map, MapFidelity::kFull, 5.0, false, seed).joules;
    double pm = RunMapExperiment(map, MapFidelity::kFull, 5.0, true, seed).joules;
    double low =
        RunMapExperiment(map, MapFidelity::kCroppedSecondary, 5.0, true, seed)
            .joules;
    AddObject(s, base, pm, low);
  }
  return s;
}

AppSummary WebSummary() {
  AppSummary s;
  for (size_t i = 0; i < 4; ++i) {
    const WebImage& image = StandardWebImages()[i];
    if (auto e = Recorded("Web", image.name)) {
      AddObject(s, e->base, e->pm, e->low);
      continue;
    }
    uint64_t seed = 560 + i;
    double base =
        RunWebExperiment(image, WebFidelity::kOriginal, 5.0, false, seed).joules;
    double pm =
        RunWebExperiment(image, WebFidelity::kOriginal, 5.0, true, seed).joules;
    double low = RunWebExperiment(image, WebFidelity::kJpeg5, 5.0, true, seed).joules;
    AddObject(s, base, pm, low);
  }
  return s;
}

TEST(SummaryClaimsTest, MeanSavingsMatchAbstract) {
  std::vector<AppSummary> apps = {VideoSummary(), SpeechSummary(), MapSummary(),
                                  WebSummary()};
  odutil::RunningStats fidelity, combined;
  for (const AppSummary& app : apps) {
    for (double r : app.fidelity_ratio) {
      fidelity.Add(1.0 - r);
    }
    for (double r : app.combined_ratio) {
      combined.Add(1.0 - r);
    }
  }
  // Paper: fidelity savings mean 36%, combined mean 50%.
  EXPECT_GT(fidelity.mean(), 0.26);
  EXPECT_LT(fidelity.mean(), 0.46);
  EXPECT_GT(combined.mean(), 0.40);
  EXPECT_LT(combined.mean(), 0.60);
  // Ranges (paper: fidelity 7-72%, combined 31-76%).  Our 110-byte web
  // image genuinely cannot save anything through distillation, so the
  // fidelity floor is ~0 rather than the paper's 7%.
  EXPECT_GT(fidelity.min(), -0.02);
  EXPECT_LT(fidelity.max(), 0.75);
  EXPECT_GT(combined.min(), 0.18);
  EXPECT_LT(combined.max(), 0.80);
}

TEST(SummaryClaimsTest, VideoVariesLittleAcrossObjects) {
  // "Video is the only application that shows little variation across data
  // objects."
  AppSummary video = VideoSummary();
  odutil::Summary spread = odutil::Summarize(video.combined_ratio);
  EXPECT_LT(spread.max - spread.min, 0.06);
}

TEST(SummaryClaimsTest, MapVariesWidelyAcrossObjects) {
  AppSummary map = MapSummary();
  odutil::Summary spread = odutil::Summarize(map.combined_ratio);
  EXPECT_GT(spread.max - spread.min, 0.10);
}

TEST(SummaryClaimsTest, SpeechHasDeepestCombinedSavings) {
  // Speech reaches the lowest combined ratio of the four applications
  // (0.20-0.31 in the paper).
  double speech_best = odutil::Summarize(SpeechSummary().combined_ratio).min;
  double video_best = odutil::Summarize(VideoSummary().combined_ratio).min;
  double web_best = odutil::Summarize(WebSummary().combined_ratio).min;
  EXPECT_LT(speech_best, video_best);
  EXPECT_LT(speech_best, web_best);
}

TEST(SummaryClaimsTest, WebHasShallowestFidelitySavings) {
  double web_mean = odutil::Summarize(WebSummary().fidelity_ratio).mean;
  double video_mean = odutil::Summarize(VideoSummary().fidelity_ratio).mean;
  double speech_mean = odutil::Summarize(SpeechSummary().fidelity_ratio).mean;
  double map_mean = odutil::Summarize(MapSummary().fidelity_ratio).mean;
  EXPECT_GT(web_mean, video_mean);
  EXPECT_GT(web_mean, speech_mean);
  EXPECT_GT(web_mean, map_mean);
}

}  // namespace
}  // namespace odapps
