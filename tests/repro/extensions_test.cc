// Tests for the paper's future-work extensions implemented here:
// SmartBattery-based monitoring (Section 5.1.1), dynamic priorities
// (Section 5.1.3: "we are implementing an interface to allow users to
// change priority dynamically"), and goal-directed adaptation against a
// non-ideal battery (Section 3.2 removed the battery; we put one back).

#include <gtest/gtest.h>

#include "src/apps/composite.h"
#include "src/apps/experiments.h"
#include "src/apps/goal_scenario.h"
#include "src/apps/testbed.h"
#include "src/energy/goal_director.h"
#include "src/power/battery.h"
#include "src/powerscope/online_monitor.h"
#include "src/powerscope/smart_battery.h"

namespace odapps {
namespace {

TEST(SmartBatteryExtensionTest, GoalMetWithGasGaugeMonitoring) {
  // The coarse 1 Hz quantized monitor must still meet the paper's goals.
  GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(1320);
  options.use_smart_battery = true;
  options.seed = 95;
  GoalScenarioResult result = RunGoalScenario(options);
  EXPECT_TRUE(result.goal_met);
  EXPECT_LT(result.residual_joules, 0.08 * options.initial_joules);
}

TEST(SmartBatteryExtensionTest, CoarserMonitoringStillTracksSupply) {
  // The prototype's 10 Hz multimeter slightly over-estimates consumption
  // (its strictly periodic sampling aliases against the 0.5 s video chunk
  // cycle), which acts as a safety margin; the jittered gas gauge is nearly
  // unbiased.  Both must meet the standard goal with residues in the same
  // regime despite the 10x coarser, quantized sampling.
  GoalScenarioOptions fine, coarse;
  fine.goal = coarse.goal = odsim::SimDuration::Seconds(1320);
  fine.seed = coarse.seed = 97;
  coarse.use_smart_battery = true;
  GoalScenarioResult fine_result = RunGoalScenario(fine);
  GoalScenarioResult coarse_result = RunGoalScenario(coarse);
  EXPECT_TRUE(fine_result.goal_met);
  EXPECT_TRUE(coarse_result.goal_met);
  EXPECT_LT(std::abs(coarse_result.residual_joules - fine_result.residual_joules),
            600.0);
}

TEST(DynamicPriorityTest, MidRunPriorityChangeRedirectsAdaptation) {
  // The user promotes the video mid-session: subsequent degradations must
  // fall on other applications and the video recovers on upgrades.
  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  // Initially video outranks only speech (defaults).  Promote it above web.
  EXPECT_LT(bed.video().priority(), bed.web().priority());
  bed.video().set_priority(10);
  EXPECT_GT(bed.video().priority(), bed.web().priority());

  // The goal director consults priorities on every decision, so the change
  // takes effect on the next evaluation: run a tight scenario where video
  // keeps fidelity while others drop.
  Settle(bed);
  odsim::SimTime start = bed.sim().Now();
  bed.laptop().accounting().Reset(start);
  odpower::EnergySupply supply(&bed.laptop().accounting(), 10000.0);
  odscope::OnlineMonitor monitor(&bed.sim(), &bed.laptop().machine(),
                                 odscope::OnlineMonitorConfig{}, 3);
  odenergy::GoalDirector director(&bed.viceroy(), &supply, &monitor,
                                  start + odsim::SimDuration::Seconds(1200));
  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  composite.StartPeriodic(odsim::SimDuration::Seconds(25));
  bed.video().PlayLooping(StandardVideoClips()[0]);
  director.Start(true);
  bed.sim().RunUntil(start + odsim::SimDuration::Seconds(400));

  director.Stop();
  composite.Stop();
  bed.video().StopLooping();
  // With video promoted to the top, it is degraded last: web/map/speech all
  // sit at or below the video's normalized level.
  double video_norm = bed.video().current_fidelity() / 4.0;
  double web_norm = bed.web().current_fidelity() / 4.0;
  EXPECT_GE(video_norm, web_norm);
}

TEST(LossyChannelTest, GoalStillMetOnLossyWireless) {
  // Retransmissions raise the energy bill; the director absorbs them by
  // running at lower fidelity, and the goal is still met.
  GoalScenarioOptions clean, lossy;
  clean.goal = lossy.goal = odsim::SimDuration::Seconds(1320);
  clean.seed = lossy.seed = 99;
  lossy.rpc_loss_probability = 0.15;
  GoalScenarioResult clean_result = RunGoalScenario(clean);
  GoalScenarioResult lossy_result = RunGoalScenario(lossy);
  EXPECT_TRUE(clean_result.goal_met);
  EXPECT_TRUE(lossy_result.goal_met);
}

TEST(NonIdealBatteryTest, WorkloadLifetimeShorterThanIdealSupply) {
  // Play the composite workload against a Peukert battery and an ideal
  // supply of the same nominal energy; the battery dies first.
  auto lifetime = [](bool non_ideal) {
    TestBed bed(TestBed::Options{.seed = 5, .hw_pm = true, .link = {}});
    Settle(bed);
    odsim::SimTime start = bed.sim().Now();
    bed.laptop().accounting().Reset(start);

    odpower::BatteryConfig config;
    config.nominal_joules = 4000.0;
    config.rated_watts = 8.0;
    if (!non_ideal) {
      config.peukert_exponent = 1.0;
      config.resistance_fraction = 0.0;
    }
    odpower::Battery battery(&bed.sim(), &bed.laptop().accounting(), config);

    CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
    composite.StartPeriodic(odsim::SimDuration::Seconds(25));
    while (!battery.Exhausted(bed.sim().Now())) {
      bed.sim().RunUntil(bed.sim().Now() + odsim::SimDuration::Seconds(1));
    }
    composite.Stop();
    battery.Stop();
    return (bed.sim().Now() - start).seconds();
  };

  double ideal = lifetime(false);
  double real = lifetime(true);
  EXPECT_LT(real, ideal);
  EXPECT_GT(real, 0.80 * ideal);  // Losses are material but not absurd.
}

}  // namespace
}  // namespace odapps
