// Robustness sweep: goal-directed adaptation must meet the standard goal
// across many random seeds (workload jitter and measurement noise), with
// bounded residue — the paper's "the desired goal was met in every trial".

#include <gtest/gtest.h>

#include "src/apps/goal_scenario.h"

namespace odapps {
namespace {

class GoalSeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GoalSeedSweepTest, StandardGoalMet) {
  GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(1320);
  options.seed = GetParam();
  GoalScenarioResult result = RunGoalScenario(options);
  EXPECT_TRUE(result.goal_met) << "seed " << GetParam();
  EXPECT_LT(result.residual_joules, 0.08 * options.initial_joules)
      << "seed " << GetParam();
  EXPECT_NEAR(result.elapsed_seconds, 1320.0, 1.0);
}

TEST_P(GoalSeedSweepTest, BurstyGoalMet) {
  GoalScenarioOptions options;
  options.bursty = true;
  options.initial_joules = 10000.0;
  options.goal = odsim::SimDuration::Seconds(1200);
  options.seed = GetParam();
  GoalScenarioResult result = RunGoalScenario(options);
  EXPECT_TRUE(result.goal_met) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoalSeedSweepTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808,
                                           909, 1010));

}  // namespace
}  // namespace odapps
