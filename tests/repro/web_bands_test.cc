// Reproduction bands for Figures 13 and 14 (web browser).  Paper claims:
//   - hardware-only PM saves 22-26% of baseline;
//   - even at JPEG quality 5 the further saving is merely 4-14%;
//   - energy is linear in think time; fidelity lines are closely spaced.
//
// With ODBENCH_ARTIFACT_DIR set the bands replay the recorded fig13_web
// ("<image>/<bar>") and fig14_web_think ("<policy>/think<t>") artifacts
// instead of re-simulating.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "src/util/stats.h"
#include "tests/repro/replay_util.h"

namespace odapps {
namespace {

using odrepro::OrLive;

constexpr char kFig13[] = "fig13_web";
constexpr char kFig14[] = "fig14_web_think";

std::string Bar(const WebImage& image, const char* bar) {
  return std::string(image.name) + "/" + bar;
}

std::string ThinkCell(const char* policy, double think) {
  char label[64];
  std::snprintf(label, sizeof(label), "%s/think%.0f", policy, think);
  return label;
}

class WebBandsTest : public ::testing::TestWithParam<int> {};

TEST_P(WebBandsTest, FigureThirteenRatios) {
  const WebImage& image = StandardWebImages()[static_cast<size_t>(GetParam())];
  uint64_t seed = 400 + static_cast<uint64_t>(GetParam());
  constexpr double kThink = 5.0;
  const auto& replay = odharness::ArtifactReplay::Env();

  double base = OrLive(replay.SetMean(kFig13, Bar(image, "Baseline")), [&] {
    return RunWebExperiment(image, WebFidelity::kOriginal, kThink, false, seed)
        .joules;
  });
  double pm = OrLive(
      replay.SetMean(kFig13, Bar(image, "Hardware-Only Power Mgmt.")), [&] {
        return RunWebExperiment(image, WebFidelity::kOriginal, kThink, true,
                                seed)
            .joules;
      });
  double j75 = OrLive(replay.SetMean(kFig13, Bar(image, "JPEG-75")), [&] {
    return RunWebExperiment(image, WebFidelity::kJpeg75, kThink, true, seed)
        .joules;
  });
  double j5 = OrLive(replay.SetMean(kFig13, Bar(image, "JPEG-5")), [&] {
    return RunWebExperiment(image, WebFidelity::kJpeg5, kThink, true, seed)
        .joules;
  });

  EXPECT_GT(pm / base, 0.72) << image.name;
  EXPECT_LT(pm / base, 0.82) << image.name;

  // "The energy benefits of fidelity reduction are disappointing": even the
  // most aggressive distillation saves at most ~15%.
  EXPECT_GT(j5 / pm, 0.84) << image.name;
  EXPECT_LE(j5 / pm, 1.0) << image.name;
  EXPECT_GT(j75 / pm, 0.90) << image.name;

  // Fidelity steps are monotone.
  EXPECT_LE(j5, j75) << image.name;
  EXPECT_LE(j75, pm) << image.name;
}

INSTANTIATE_TEST_SUITE_P(AllImages, WebBandsTest, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Image" + std::to_string(info.param + 1);
                         });

TEST(WebThinkTimeTest, LinearModelAndCloseFidelityLines) {
  // Figure 14: baseline diverges from the managed cases; the managed and
  // lowest-fidelity lines are nearly coincident.
  const WebImage& image = StandardWebImages()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  std::vector<double> thinks = {0.0, 5.0, 10.0, 20.0};

  auto sweep = [&](const char* policy, WebFidelity fidelity, bool pm) {
    std::vector<double> joules;
    for (double think : thinks) {
      joules.push_back(
          OrLive(replay.SetMean(kFig14, ThinkCell(policy, think)), [&] {
            return RunWebExperiment(image, fidelity, think, pm, 41).joules;
          }));
    }
    return odutil::FitLine(thinks, joules);
  };

  odutil::LinearFit baseline = sweep("Baseline", WebFidelity::kOriginal, false);
  odutil::LinearFit hw =
      sweep("Hardware-Only Power Mgmt.", WebFidelity::kOriginal, true);
  odutil::LinearFit lowest =
      sweep("Lowest Fidelity", WebFidelity::kJpeg5, true);

  EXPECT_GT(baseline.r_squared, 0.999);
  EXPECT_GT(hw.r_squared, 0.999);
  EXPECT_GT(lowest.r_squared, 0.999);
  EXPECT_GT(baseline.slope, hw.slope + 1.0);
  EXPECT_NEAR(hw.slope, lowest.slope, 0.15);
  // Close spacing: the lowest-fidelity line sits only a few joules below.
  EXPECT_LT(hw.intercept - lowest.intercept, 8.0);
  EXPECT_GT(hw.intercept - lowest.intercept, 0.0);
}

TEST(WebBandsTest2, MostPmSavingsOccurDuringThinkTime) {
  // "The shadings indicate that most of this savings occurs in the idle
  // state, probably during think time."
  const WebImage& image = StandardWebImages()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  const std::string base_label = Bar(image, "Baseline");
  const std::string pm_label = Bar(image, "Hardware-Only Power Mgmt.");
  double idle_delta, total_delta;
  if (auto base_idle = replay.BreakdownMean(kFig13, base_label, "Idle")) {
    idle_delta =
        *base_idle - replay.BreakdownMean(kFig13, pm_label, "Idle").value();
    total_delta = replay.SetMean(kFig13, base_label).value() -
                  replay.SetMean(kFig13, pm_label).value();
  } else {
    auto base = RunWebExperiment(image, WebFidelity::kOriginal, 5.0, false, 43);
    auto pm = RunWebExperiment(image, WebFidelity::kOriginal, 5.0, true, 43);
    idle_delta = base.Process("Idle") - pm.Process("Idle");
    total_delta = base.joules - pm.joules;
  }
  EXPECT_GT(idle_delta, 0.6 * total_delta);
}

TEST(WebBandsTest2, DistillationServerBearsTranscodingCost) {
  // Transcoding happens at the server; the client pays only a waiting cost,
  // so a distilled fetch is never more expensive than the original.  The
  // recorded fig13 bars include 5 s of think time on both sides, which
  // shifts both energies equally and preserves the ordering claim.
  const WebImage& image = StandardWebImages()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  double original, distilled;
  if (auto recorded =
          replay.SetMean(kFig13, Bar(image, "Hardware-Only Power Mgmt."))) {
    original = *recorded;
    distilled = replay.SetMean(kFig13, Bar(image, "JPEG-25")).value();
  } else {
    original =
        RunWebExperiment(image, WebFidelity::kOriginal, 0.0, true, 43).joules;
    distilled =
        RunWebExperiment(image, WebFidelity::kJpeg25, 0.0, true, 43).joules;
  }
  EXPECT_LT(distilled, original);
}

}  // namespace
}  // namespace odapps
