// Reproduction bands for Figure 6 (video).  Paper claims, per clip:
//   - hardware-only PM saves 9-10% of baseline;
//   - Premiere-C saves 16-17% below hardware-only PM;
//   - halving the window saves 19-20% below hardware-only PM;
//   - combined saves 28-30% below hardware-only PM (~35% below baseline).
// Our asserted bands are the paper's, widened a few points for the
// simulated substrate; EXPERIMENTS.md records measured values.

#include <gtest/gtest.h>

#include "src/apps/experiments.h"

namespace odapps {
namespace {

class VideoBandsTest : public ::testing::TestWithParam<int> {};

TEST_P(VideoBandsTest, FigureSixRatios) {
  const VideoClip& clip = StandardVideoClips()[static_cast<size_t>(GetParam())];
  uint64_t seed = 100 + static_cast<uint64_t>(GetParam());

  double base =
      RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, false, seed).joules;
  double pm = RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, true, seed).joules;
  double prem_b =
      RunVideoExperiment(clip, VideoTrack::kPremiereB, 1.0, true, seed).joules;
  double prem_c =
      RunVideoExperiment(clip, VideoTrack::kPremiereC, 1.0, true, seed).joules;
  double window =
      RunVideoExperiment(clip, VideoTrack::kBaseline, 0.5, true, seed).joules;
  double combined =
      RunVideoExperiment(clip, VideoTrack::kPremiereC, 0.5, true, seed).joules;

  EXPECT_GT(pm / base, 0.88) << clip.name;
  EXPECT_LT(pm / base, 0.93) << clip.name;

  EXPECT_GT(prem_b / pm, 0.87) << clip.name;
  EXPECT_LT(prem_b / pm, 0.95) << clip.name;

  EXPECT_GT(prem_c / pm, 0.80) << clip.name;
  EXPECT_LT(prem_c / pm, 0.87) << clip.name;

  EXPECT_GT(window / pm, 0.77) << clip.name;
  EXPECT_LT(window / pm, 0.86) << clip.name;

  EXPECT_GT(combined / pm, 0.62) << clip.name;
  EXPECT_LT(combined / pm, 0.74) << clip.name;

  // Combined vs baseline: about 35% total reduction.
  EXPECT_GT(combined / base, 0.55) << clip.name;
  EXPECT_LT(combined / base, 0.68) << clip.name;

  // Ordering within the sweep: each technique helps, combined helps most.
  EXPECT_LT(pm, base);
  EXPECT_LT(prem_b, pm);
  EXPECT_LT(prem_c, prem_b);
  EXPECT_LT(combined, prem_c);
  EXPECT_LT(combined, window);
}

TEST_P(VideoBandsTest, XServerEnergyUnaffectedByCompression) {
  // "The energy used by the X server is almost completely unaffected by
  // compression" — frames are decoded before reaching X.
  const VideoClip& clip = StandardVideoClips()[static_cast<size_t>(GetParam())];
  auto base = RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, true, 7);
  auto prem_c = RunVideoExperiment(clip, VideoTrack::kPremiereC, 1.0, true, 7);
  double x_base = base.Process("X Server");
  double x_prem = prem_c.Process("X Server");
  EXPECT_NEAR(x_prem, x_base, 0.10 * x_base);
}

TEST_P(VideoBandsTest, WindowReductionCutsXServerEnergy) {
  // "Reducing window size significantly decreases X server energy usage"
  // (proportional to window area: quarter area -> about a quarter).
  const VideoClip& clip = StandardVideoClips()[static_cast<size_t>(GetParam())];
  auto full = RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, true, 7);
  auto half = RunVideoExperiment(clip, VideoTrack::kBaseline, 0.5, true, 7);
  double ratio = half.Process("X Server") / full.Process("X Server");
  EXPECT_GT(ratio, 0.15);
  EXPECT_LT(ratio, 0.45);
}

TEST_P(VideoBandsTest, DiskStandbyProvidesMostOfHwPmSaving) {
  // "Most of the reduction is due to disk power management — the disk
  // remains in standby mode for the entire duration of an experiment."
  const VideoClip& clip = StandardVideoClips()[static_cast<size_t>(GetParam())];
  auto base = RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, false, 7);
  auto pm = RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, true, 7);
  double disk_delta = base.Component("Disk") - pm.Component("Disk");
  double total_delta = base.joules - pm.joules;
  EXPECT_GT(disk_delta, 0.5 * total_delta);
}

INSTANTIATE_TEST_SUITE_P(AllClips, VideoBandsTest, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Video" + std::to_string(info.param + 1);
                         });

TEST(VideoBandsTest2, BaselineHasIdleEnergyFromNetworkLimit) {
  // "Much energy is consumed while the processor is idle because of the
  // limited bandwidth of the wireless network."  Our decode/render
  // calibration leaves the CPU busier than the paper's client, so the idle
  // share is smaller but still material.
  auto m = RunVideoExperiment(StandardVideoClips()[0], VideoTrack::kBaseline, 1.0,
                              false, 7);
  EXPECT_GT(m.Process("Idle"), 0.02 * m.joules);
  // At Premiere-C the network and CPU are both less utilized, so the idle
  // share grows — the effect the paper attributes to the bandwidth limit.
  auto low = RunVideoExperiment(StandardVideoClips()[0], VideoTrack::kPremiereC,
                                1.0, true, 7);
  EXPECT_GT(low.Process("Idle") / low.joules, m.Process("Idle") / m.joules);
}

}  // namespace
}  // namespace odapps
