// Reproduction bands for Figure 6 (video).  Paper claims, per clip:
//   - hardware-only PM saves 9-10% of baseline;
//   - Premiere-C saves 16-17% below hardware-only PM;
//   - halving the window saves 19-20% below hardware-only PM;
//   - combined saves 28-30% below hardware-only PM (~35% below baseline).
// Our asserted bands are the paper's, widened a few points for the
// simulated substrate; EXPERIMENTS.md records measured values.
//
// With ODBENCH_ARTIFACT_DIR set the bands replay the recorded fig06_video
// artifact (set labels "<clip>/<bar>") instead of re-simulating.

#include <string>

#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "tests/repro/replay_util.h"

namespace odapps {
namespace {

using odrepro::OrLive;

constexpr char kExp[] = "fig06_video";

std::string Bar(const VideoClip& clip, const char* bar) {
  return std::string(clip.name) + "/" + bar;
}

class VideoBandsTest : public ::testing::TestWithParam<int> {};

TEST_P(VideoBandsTest, FigureSixRatios) {
  const VideoClip& clip = StandardVideoClips()[static_cast<size_t>(GetParam())];
  uint64_t seed = 100 + static_cast<uint64_t>(GetParam());
  const auto& replay = odharness::ArtifactReplay::Env();

  double base = OrLive(replay.SetMean(kExp, Bar(clip, "Baseline")), [&] {
    return RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, false, seed)
        .joules;
  });
  double pm = OrLive(
      replay.SetMean(kExp, Bar(clip, "Hardware-Only Power Mgmt.")), [&] {
        return RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, true, seed)
            .joules;
      });
  double prem_b = OrLive(replay.SetMean(kExp, Bar(clip, "Premiere-B")), [&] {
    return RunVideoExperiment(clip, VideoTrack::kPremiereB, 1.0, true, seed)
        .joules;
  });
  double prem_c = OrLive(replay.SetMean(kExp, Bar(clip, "Premiere-C")), [&] {
    return RunVideoExperiment(clip, VideoTrack::kPremiereC, 1.0, true, seed)
        .joules;
  });
  double window =
      OrLive(replay.SetMean(kExp, Bar(clip, "Reduced Window")), [&] {
        return RunVideoExperiment(clip, VideoTrack::kBaseline, 0.5, true, seed)
            .joules;
      });
  double combined = OrLive(replay.SetMean(kExp, Bar(clip, "Combined")), [&] {
    return RunVideoExperiment(clip, VideoTrack::kPremiereC, 0.5, true, seed)
        .joules;
  });

  EXPECT_GT(pm / base, 0.88) << clip.name;
  EXPECT_LT(pm / base, 0.93) << clip.name;

  EXPECT_GT(prem_b / pm, 0.87) << clip.name;
  EXPECT_LT(prem_b / pm, 0.95) << clip.name;

  EXPECT_GT(prem_c / pm, 0.80) << clip.name;
  EXPECT_LT(prem_c / pm, 0.87) << clip.name;

  EXPECT_GT(window / pm, 0.77) << clip.name;
  EXPECT_LT(window / pm, 0.86) << clip.name;

  EXPECT_GT(combined / pm, 0.62) << clip.name;
  EXPECT_LT(combined / pm, 0.74) << clip.name;

  // Combined vs baseline: about 35% total reduction.
  EXPECT_GT(combined / base, 0.55) << clip.name;
  EXPECT_LT(combined / base, 0.68) << clip.name;

  // Ordering within the sweep: each technique helps, combined helps most.
  EXPECT_LT(pm, base);
  EXPECT_LT(prem_b, pm);
  EXPECT_LT(prem_c, prem_b);
  EXPECT_LT(combined, prem_c);
  EXPECT_LT(combined, window);
}

TEST_P(VideoBandsTest, XServerEnergyUnaffectedByCompression) {
  // "The energy used by the X server is almost completely unaffected by
  // compression" — frames are decoded before reaching X.
  const VideoClip& clip = StandardVideoClips()[static_cast<size_t>(GetParam())];
  const auto& replay = odharness::ArtifactReplay::Env();
  double x_base = OrLive(
      replay.BreakdownMean(kExp, Bar(clip, "Hardware-Only Power Mgmt."),
                           "X Server"),
      [&] {
        return RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, true, 7)
            .Process("X Server");
      });
  double x_prem = OrLive(
      replay.BreakdownMean(kExp, Bar(clip, "Premiere-C"), "X Server"), [&] {
        return RunVideoExperiment(clip, VideoTrack::kPremiereC, 1.0, true, 7)
            .Process("X Server");
      });
  EXPECT_NEAR(x_prem, x_base, 0.10 * x_base);
}

TEST_P(VideoBandsTest, WindowReductionCutsXServerEnergy) {
  // "Reducing window size significantly decreases X server energy usage"
  // (proportional to window area: quarter area -> about a quarter).
  const VideoClip& clip = StandardVideoClips()[static_cast<size_t>(GetParam())];
  const auto& replay = odharness::ArtifactReplay::Env();
  double x_full = OrLive(
      replay.BreakdownMean(kExp, Bar(clip, "Hardware-Only Power Mgmt."),
                           "X Server"),
      [&] {
        return RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, true, 7)
            .Process("X Server");
      });
  double x_half = OrLive(
      replay.BreakdownMean(kExp, Bar(clip, "Reduced Window"), "X Server"),
      [&] {
        return RunVideoExperiment(clip, VideoTrack::kBaseline, 0.5, true, 7)
            .Process("X Server");
      });
  double ratio = x_half / x_full;
  EXPECT_GT(ratio, 0.15);
  EXPECT_LT(ratio, 0.45);
}

TEST_P(VideoBandsTest, DiskStandbyProvidesMostOfHwPmSaving) {
  // "Most of the reduction is due to disk power management — the disk
  // remains in standby mode for the entire duration of an experiment."
  const VideoClip& clip = StandardVideoClips()[static_cast<size_t>(GetParam())];
  const auto& replay = odharness::ArtifactReplay::Env();
  const std::string base_label = Bar(clip, "Baseline");
  const std::string pm_label = Bar(clip, "Hardware-Only Power Mgmt.");
  double disk_delta, total_delta;
  if (auto base_disk = replay.ComponentMean(kExp, base_label, "Disk")) {
    disk_delta =
        *base_disk - replay.ComponentMean(kExp, pm_label, "Disk").value();
    total_delta = replay.SetMean(kExp, base_label).value() -
                  replay.SetMean(kExp, pm_label).value();
  } else {
    auto base = RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, false, 7);
    auto pm = RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, true, 7);
    disk_delta = base.Component("Disk") - pm.Component("Disk");
    total_delta = base.joules - pm.joules;
  }
  EXPECT_GT(disk_delta, 0.5 * total_delta);
}

INSTANTIATE_TEST_SUITE_P(AllClips, VideoBandsTest, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Video" + std::to_string(info.param + 1);
                         });

TEST(VideoBandsTest2, BaselineHasIdleEnergyFromNetworkLimit) {
  // "Much energy is consumed while the processor is idle because of the
  // limited bandwidth of the wireless network."  Our decode/render
  // calibration leaves the CPU busier than the paper's client, so the idle
  // share is smaller but still material.
  const VideoClip& clip = StandardVideoClips()[0];
  const auto& replay = odharness::ArtifactReplay::Env();
  const std::string base_label = Bar(clip, "Baseline");
  const std::string low_label = Bar(clip, "Premiere-C");
  double base_idle, base_joules, low_idle, low_joules;
  if (auto idle = replay.BreakdownMean(kExp, base_label, "Idle")) {
    base_idle = *idle;
    base_joules = replay.SetMean(kExp, base_label).value();
    low_idle = replay.BreakdownMean(kExp, low_label, "Idle").value();
    low_joules = replay.SetMean(kExp, low_label).value();
  } else {
    auto m = RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, false, 7);
    auto low = RunVideoExperiment(clip, VideoTrack::kPremiereC, 1.0, true, 7);
    base_idle = m.Process("Idle");
    base_joules = m.joules;
    low_idle = low.Process("Idle");
    low_joules = low.joules;
  }
  EXPECT_GT(base_idle, 0.02 * base_joules);
  // At Premiere-C the network and CPU are both less utilized, so the idle
  // share grows — the effect the paper attributes to the bandwidth limit.
  EXPECT_GT(low_idle / low_joules, base_idle / base_joules);
}

}  // namespace
}  // namespace odapps
