// Failure injection: lossy wireless channels cost retransmissions, time,
// and energy, but calls still complete.

#include <tuple>

#include <gtest/gtest.h>

#include "src/net/rpc.h"
#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odnet {
namespace {

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  Link link{&sim, &laptop->power_manager(), LinkConfig{}};
  RpcClient rpc{&sim, &link, &laptop->power_manager(), 42};
};

TEST(RpcLossTest, NoLossMeansNoRetransmissions) {
  Rig rig;
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    rig.rpc.Call(1000, 1000, odsim::SimDuration::Millis(100),
                 [&] { ++completed; });
    rig.sim.Run();
  }
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(rig.rpc.retransmissions(), 0);
}

TEST(RpcLossTest, LossyChannelRetransmitsButCompletes) {
  Rig rig;
  RpcConfig config;
  config.loss_probability = 0.3;
  config.retry_timeout = odsim::SimDuration::Millis(500);
  rig.rpc.set_config(config);

  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    rig.rpc.Call(1000, 1000, odsim::SimDuration::Millis(100),
                 [&] { ++completed; });
    rig.sim.Run();
  }
  EXPECT_EQ(completed, 50);
  // ~30% per message, two messages per attempt: expect dozens of retries.
  EXPECT_GT(rig.rpc.retransmissions(), 10);
}

TEST(RpcLossTest, LossCostsTimeAndEnergy) {
  auto measure = [](double loss) {
    Rig rig;
    RpcConfig config;
    config.loss_probability = loss;
    config.retry_timeout = odsim::SimDuration::Millis(500);
    rig.rpc.set_config(config);
    rig.laptop->accounting().Reset(rig.sim.Now());
    for (int i = 0; i < 30; ++i) {
      rig.rpc.Call(20000, 2000, odsim::SimDuration::Millis(200), nullptr);
      rig.sim.Run();
    }
    return std::pair<double, double>(
        rig.laptop->accounting().TotalJoules(rig.sim.Now()),
        rig.sim.Now().seconds());
  };
  auto [clean_joules, clean_seconds] = measure(0.0);
  auto [lossy_joules, lossy_seconds] = measure(0.4);
  EXPECT_GT(lossy_seconds, clean_seconds);
  EXPECT_GT(lossy_joules, clean_joules);
}

TEST(RpcLossTest, GivesUpAfterMaxRetries) {
  Rig rig;
  RpcConfig config;
  config.loss_probability = 0.95;  // Nearly dead channel.
  config.retry_timeout = odsim::SimDuration::Millis(100);
  config.max_retries = 2;
  rig.rpc.set_config(config);

  bool completed = false;
  rig.rpc.Call(1000, 1000, odsim::SimDuration::Millis(100), [&] { completed = true; });
  rig.sim.Run();
  // Completion still fires (upper layers are not wedged)...
  EXPECT_TRUE(completed);
  // ...after at most max_retries retransmissions for this call.
  EXPECT_LE(rig.rpc.retransmissions(), 2);
}

TEST(RpcLossTest, LossSequenceIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    odsim::Simulator sim;
    auto laptop = odpower::MakeThinkPad560X(&sim);
    Link link{&sim, &laptop->power_manager(), LinkConfig{}};
    RpcClient rpc{&sim, &link, &laptop->power_manager(), seed};
    RpcConfig config;
    config.loss_probability = 0.3;
    config.retry_timeout = odsim::SimDuration::Millis(200);
    rpc.set_config(config);
    for (int i = 0; i < 40; ++i) {
      rpc.Call(2000, 2000, odsim::SimDuration::Millis(50), nullptr);
      sim.Run();
    }
    return std::tuple<int, int, int, double>(
        rpc.retransmissions(), rpc.request_losses(), rpc.reply_losses(),
        sim.Now().seconds());
  };
  // Same seed: the whole loss/retry history replays bit for bit.
  EXPECT_EQ(run(7), run(7));
  // Different seed: a different draw sequence.
  EXPECT_NE(run(7), run(8));
}

TEST(RpcLossTest, RequestAndReplyLossesAccountedSeparately) {
  Rig rig;
  RpcConfig config;
  config.loss_probability = 0.4;
  config.retry_timeout = odsim::SimDuration::Millis(100);
  rig.rpc.set_config(config);
  for (int i = 0; i < 60; ++i) {
    rig.rpc.Call(1000, 1000, odsim::SimDuration::Millis(20), nullptr);
    rig.sim.Run();
  }
  // Both directions lose messages at 40%.
  EXPECT_GT(rig.rpc.request_losses(), 0);
  EXPECT_GT(rig.rpc.reply_losses(), 0);
  // Every retransmission was provoked by exactly one lost message; losses
  // not retried are the final loss of a call that exhausted its retries.
  const int losses = rig.rpc.request_losses() + rig.rpc.reply_losses();
  EXPECT_LE(rig.rpc.retransmissions(), losses);
  EXPECT_LE(losses - rig.rpc.retransmissions(), rig.rpc.retries_exhausted());
}

TEST(RpcLossTest, RetransmissionEnergyLandsOnWaveLAN) {
  auto wavelan_joules = [](double loss) {
    Rig rig;
    RpcConfig config;
    config.loss_probability = loss;
    config.retry_timeout = odsim::SimDuration::Millis(200);
    rig.rpc.set_config(config);
    for (int i = 0; i < 30; ++i) {
      rig.rpc.Call(20000, 2000, odsim::SimDuration::Millis(100), nullptr);
      rig.sim.Run();
    }
    int index = -1;
    for (int i = 0; i < rig.laptop->machine().component_count(); ++i) {
      if (rig.laptop->machine().component(i).name() == "WaveLAN") {
        index = i;
      }
    }
    return rig.laptop->accounting().ComponentJoules(index, rig.sim.Now());
  };
  // The retransmitted bytes are paid for by the wireless interface.
  EXPECT_GT(wavelan_joules(0.4), wavelan_joules(0.0));
}

TEST(RpcLossTest, RetryBackoffIsCappedExponentialWithJitter) {
  Rig rig;
  RpcConfig config;
  config.loss_probability = 0.9999;  // Effectively dead channel.
  config.retry_timeout = odsim::SimDuration::Millis(100);
  config.backoff_factor = 2.0;
  config.max_retry_timeout = odsim::SimDuration::Millis(400);
  config.retry_jitter = 0.1;
  config.max_retries = 4;
  rig.rpc.set_config(config);

  RpcStatus status = RpcStatus::kOk;
  rig.rpc.CallWithStatus(1000, 1000, [](odsim::EventFn done) { done(); },
                         [&](RpcStatus s) { status = s; });
  rig.sim.Run();
  EXPECT_EQ(status, RpcStatus::kRetriesExhausted);
  EXPECT_EQ(rig.rpc.retransmissions(), 4);
  // Waits are 100, 200, 400, 400 ms (capped), each jittered by at most
  // ±10%; the whole exchange must fall inside those bounds plus a little
  // transmission time.
  const double elapsed = rig.sim.Now().seconds();
  EXPECT_GE(elapsed, 1.1 * 0.9);
  EXPECT_LE(elapsed, 1.1 * 1.1 + 0.2);
}

TEST(RpcLossTest, DeadlineBoundsACallAcrossAnOutage) {
  Rig rig;
  rig.link.SetOutage(true);  // Nothing can transmit at all.
  RpcConfig config;
  config.retry_timeout = odsim::SimDuration::Millis(500);
  config.deadline = odsim::SimDuration::Seconds(2);
  rig.rpc.set_config(config);

  RpcStatus status = RpcStatus::kOk;
  rig.rpc.CallWithStatus(1000, 1000, [](odsim::EventFn done) { done(); },
                         [&](RpcStatus s) { status = s; });
  rig.sim.Run();
  // The call fails with the typed deadline status at exactly the deadline —
  // the liveness bound no retransmission policy can provide on a parked
  // queue.
  EXPECT_EQ(status, RpcStatus::kDeadlineExceeded);
  EXPECT_EQ(rig.rpc.deadlines_exceeded(), 1);
  EXPECT_DOUBLE_EQ(rig.sim.Now().seconds(), 2.0);
  // And the pending transfer no longer wedges the interface accounting.
  rig.link.SetOutage(false);
  rig.sim.Run();
  EXPECT_FALSE(rig.laptop->power_manager().network_in_use());
}

TEST(RpcLossTest, InterfaceReleasedAfterLossyCall) {
  Rig rig;
  rig.laptop->power_manager().SetHardwarePmEnabled(true);
  RpcConfig config;
  config.loss_probability = 0.5;
  config.retry_timeout = odsim::SimDuration::Millis(200);
  rig.rpc.set_config(config);
  rig.rpc.Call(1000, 1000, odsim::SimDuration::Millis(100), nullptr);
  rig.sim.Run();
  EXPECT_FALSE(rig.laptop->power_manager().network_in_use());
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), odpower::WaveLanState::kStandby);
}

}  // namespace
}  // namespace odnet
