// Failure injection: lossy wireless channels cost retransmissions, time,
// and energy, but calls still complete.

#include <gtest/gtest.h>

#include "src/net/rpc.h"
#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odnet {
namespace {

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  Link link{&sim, &laptop->power_manager(), LinkConfig{}};
  RpcClient rpc{&sim, &link, &laptop->power_manager(), 42};
};

TEST(RpcLossTest, NoLossMeansNoRetransmissions) {
  Rig rig;
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    rig.rpc.Call(1000, 1000, odsim::SimDuration::Millis(100),
                 [&] { ++completed; });
    rig.sim.Run();
  }
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(rig.rpc.retransmissions(), 0);
}

TEST(RpcLossTest, LossyChannelRetransmitsButCompletes) {
  Rig rig;
  RpcConfig config;
  config.loss_probability = 0.3;
  config.retry_timeout = odsim::SimDuration::Millis(500);
  rig.rpc.set_config(config);

  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    rig.rpc.Call(1000, 1000, odsim::SimDuration::Millis(100),
                 [&] { ++completed; });
    rig.sim.Run();
  }
  EXPECT_EQ(completed, 50);
  // ~30% per message, two messages per attempt: expect dozens of retries.
  EXPECT_GT(rig.rpc.retransmissions(), 10);
}

TEST(RpcLossTest, LossCostsTimeAndEnergy) {
  auto measure = [](double loss) {
    Rig rig;
    RpcConfig config;
    config.loss_probability = loss;
    config.retry_timeout = odsim::SimDuration::Millis(500);
    rig.rpc.set_config(config);
    rig.laptop->accounting().Reset(rig.sim.Now());
    for (int i = 0; i < 30; ++i) {
      rig.rpc.Call(20000, 2000, odsim::SimDuration::Millis(200), nullptr);
      rig.sim.Run();
    }
    return std::pair<double, double>(
        rig.laptop->accounting().TotalJoules(rig.sim.Now()),
        rig.sim.Now().seconds());
  };
  auto [clean_joules, clean_seconds] = measure(0.0);
  auto [lossy_joules, lossy_seconds] = measure(0.4);
  EXPECT_GT(lossy_seconds, clean_seconds);
  EXPECT_GT(lossy_joules, clean_joules);
}

TEST(RpcLossTest, GivesUpAfterMaxAttempts) {
  Rig rig;
  RpcConfig config;
  config.loss_probability = 0.95;  // Nearly dead channel.
  config.retry_timeout = odsim::SimDuration::Millis(100);
  config.max_attempts = 3;
  rig.rpc.set_config(config);

  bool completed = false;
  rig.rpc.Call(1000, 1000, odsim::SimDuration::Millis(100), [&] { completed = true; });
  rig.sim.Run();
  // Completion still fires (upper layers are not wedged)...
  EXPECT_TRUE(completed);
  // ...after at most max_attempts - 1 retransmissions for this call.
  EXPECT_LE(rig.rpc.retransmissions(), 2);
}

TEST(RpcLossTest, InterfaceReleasedAfterLossyCall) {
  Rig rig;
  rig.laptop->power_manager().SetHardwarePmEnabled(true);
  RpcConfig config;
  config.loss_probability = 0.5;
  config.retry_timeout = odsim::SimDuration::Millis(200);
  rig.rpc.set_config(config);
  rig.rpc.Call(1000, 1000, odsim::SimDuration::Millis(100), nullptr);
  rig.sim.Run();
  EXPECT_FALSE(rig.laptop->power_manager().network_in_use());
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), odpower::WaveLanState::kStandby);
}

}  // namespace
}  // namespace odnet
