#include "src/net/link.h"

#include <gtest/gtest.h>

#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odnet {
namespace {

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  Link link{&sim, &laptop->power_manager(), LinkConfig{}};
};

TEST(LinkTest, TransferTimeMatchesBandwidth) {
  Rig rig;
  // 250,000 bytes at 2 Mb/s = 1 s, plus 5 ms setup.
  odsim::SimDuration t = rig.link.TransferTime(250000);
  EXPECT_EQ(t, odsim::SimDuration::Seconds(1.005));
}

TEST(LinkTest, TransferCompletesAndSignals) {
  Rig rig;
  odsim::SimTime done_at;
  rig.link.Transfer(Direction::kReceive, 250000, [&] { done_at = rig.sim.Now(); });
  rig.sim.RunUntil(odsim::SimTime::Seconds(2));
  EXPECT_EQ(done_at, odsim::SimTime::Seconds(1.005));
}

TEST(LinkTest, ReceiveDrivesWavelanState) {
  Rig rig;
  rig.link.Transfer(Direction::kReceive, 250000, nullptr);
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), odpower::WaveLanState::kReceive);
  rig.sim.RunUntil(odsim::SimTime::Seconds(2));
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), odpower::WaveLanState::kIdle);
}

TEST(LinkTest, SendDrivesTransmitState) {
  Rig rig;
  rig.link.Transfer(Direction::kSend, 1000, nullptr);
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), odpower::WaveLanState::kTransmit);
}

TEST(LinkTest, RestsInStandbyUnderPm) {
  Rig rig;
  rig.laptop->power_manager().SetHardwarePmEnabled(true);
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), odpower::WaveLanState::kStandby);
  rig.link.Transfer(Direction::kReceive, 1000, nullptr);
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), odpower::WaveLanState::kReceive);
  rig.sim.RunUntil(odsim::SimTime::Seconds(1));
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), odpower::WaveLanState::kStandby);
}

TEST(LinkTest, TransfersAreFifo) {
  Rig rig;
  std::vector<int> order;
  rig.link.Transfer(Direction::kReceive, 250000, [&] { order.push_back(1); });
  rig.link.Transfer(Direction::kReceive, 250000, [&] { order.push_back(2); });
  rig.link.Transfer(Direction::kSend, 1000, [&] { order.push_back(3); });
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(LinkTest, QueuedTransfersCount) {
  Rig rig;
  EXPECT_EQ(rig.link.queued_transfers(), 0);
  rig.link.Transfer(Direction::kReceive, 250000, nullptr);
  rig.link.Transfer(Direction::kReceive, 250000, nullptr);
  EXPECT_EQ(rig.link.queued_transfers(), 2);
  EXPECT_TRUE(rig.link.busy());
  rig.sim.RunUntil(odsim::SimTime::Seconds(1.5));
  EXPECT_EQ(rig.link.queued_transfers(), 1);
  rig.sim.RunUntil(odsim::SimTime::Seconds(3));
  EXPECT_EQ(rig.link.queued_transfers(), 0);
  EXPECT_FALSE(rig.link.busy());
}

TEST(LinkTest, InterruptLoadAttributedToWavelanProcess) {
  Rig rig;
  odpower::EnergyAccounting& accounting = rig.laptop->accounting();
  // 256 KiB = 16 interrupt batches.
  rig.link.Transfer(Direction::kReceive, 256 * 1024, nullptr);
  rig.sim.RunUntil(odsim::SimTime::Seconds(3));
  odsim::ProcessId intr = rig.sim.processes().RegisterProcess("Interrupts-WaveLAN");
  odpower::ContextUsage usage = accounting.ProcessUsage(intr, rig.sim.Now());
  // 16 batches * 3 ms.
  EXPECT_NEAR(usage.cpu_seconds, 0.048, 1e-6);
  EXPECT_GT(usage.joules, 0.0);
}

TEST(LinkTest, SmallTransferHasNoInterruptBatches) {
  Rig rig;
  rig.link.Transfer(Direction::kSend, 512, nullptr);
  rig.sim.RunUntil(odsim::SimTime::Seconds(1));
  odsim::ProcessId intr = rig.sim.processes().RegisterProcess("Interrupts-WaveLAN");
  odpower::ContextUsage usage =
      rig.laptop->accounting().ProcessUsage(intr, rig.sim.Now());
  EXPECT_DOUBLE_EQ(usage.cpu_seconds, 0.0);
}

}  // namespace
}  // namespace odnet
