#include "src/net/bandwidth_monitor.h"

#include <gtest/gtest.h>

#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odnet {
namespace {

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  Link link{&sim, &laptop->power_manager(), LinkConfig{}};
  BandwidthMonitor monitor{&sim, &link, BandwidthMonitorConfig{}};

  // Issues back-to-back transfers for `seconds`.
  void Saturate(double seconds) {
    auto* self = this;
    odsim::SimTime end = sim.Now() + odsim::SimDuration::Seconds(seconds);
    StartTransfer(self, end);
  }

  static void StartTransfer(Rig* rig, odsim::SimTime end) {
    if (rig->sim.Now() >= end) {
      return;
    }
    rig->link.Transfer(Direction::kReceive, 25000,
                       [rig, end] { StartTransfer(rig, end); });
  }
};

TEST(BandwidthMonitorTest, IdleLinkReportsCapacity) {
  Rig rig;
  rig.monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_DOUBLE_EQ(rig.monitor.EstimatedBps(), 2.0e6);
}

TEST(BandwidthMonitorTest, SaturatedLinkReportsThroughput) {
  Rig rig;
  rig.monitor.Start();
  rig.Saturate(10.0);
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  // Observed throughput is slightly below capacity (setup latency per
  // transfer), but in the right regime.
  EXPECT_GT(rig.monitor.EstimatedBps(), 1.6e6);
  EXPECT_LT(rig.monitor.EstimatedBps(), 2.0e6);
}

TEST(BandwidthMonitorTest, TracksBandwidthDrop) {
  Rig rig;
  rig.monitor.Start();
  rig.Saturate(20.0);
  rig.sim.RunUntil(odsim::SimTime::Seconds(8));
  double before = rig.monitor.EstimatedBps();
  rig.link.set_bandwidth_bps(0.5e6);
  rig.sim.RunUntil(odsim::SimTime::Seconds(20));
  double after = rig.monitor.EstimatedBps();
  EXPECT_LT(after, 0.5 * before);
  EXPECT_GT(after, 0.3e6);
  EXPECT_LT(after, 0.6e6);
}

TEST(BandwidthMonitorTest, CallbackFiresPeriodically) {
  Rig rig;
  int calls = 0;
  rig.monitor.set_callback([&](odsim::SimTime, double) { ++calls; });
  rig.monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  EXPECT_EQ(calls, 5);
}

TEST(BandwidthMonitorTest, WindowForgetsOldActivity) {
  Rig rig;
  rig.monitor.Start();
  rig.Saturate(3.0);
  rig.sim.RunUntil(odsim::SimTime::Seconds(3));
  EXPECT_LT(rig.monitor.EstimatedBps(), 2.0e6);
  // After the 5 s window drains with no traffic, capacity is reported again.
  rig.sim.RunUntil(odsim::SimTime::Seconds(15));
  EXPECT_DOUBLE_EQ(rig.monitor.EstimatedBps(), 2.0e6);
}

TEST(BandwidthMonitorTest, StopHaltsEstimation) {
  Rig rig;
  int calls = 0;
  rig.monitor.set_callback([&](odsim::SimTime, double) { ++calls; });
  rig.monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(2));
  rig.monitor.Stop();
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_EQ(calls, 2);
}

TEST(LinkBandwidthTest, SetBandwidthAffectsNewTransfers) {
  Rig rig;
  rig.link.set_bandwidth_bps(1.0e6);
  odsim::SimTime done_at;
  rig.link.Transfer(Direction::kReceive, 125000, [&] { done_at = rig.sim.Now(); });
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  // 125,000 B at 1 Mb/s = 1 s + 5 ms setup.
  EXPECT_EQ(done_at, odsim::SimTime::Seconds(1.005));
}

}  // namespace
}  // namespace odnet
