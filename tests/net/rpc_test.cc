#include "src/net/rpc.h"

#include <gtest/gtest.h>

#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odnet {
namespace {

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  Link link{&sim, &laptop->power_manager(), LinkConfig{}};
  RpcClient rpc{&sim, &link, &laptop->power_manager()};
};

TEST(RpcTest, CallCompletesAfterAllPhases) {
  Rig rig;
  odsim::SimTime done_at;
  // Request: 25,000 B = 0.1 s + 5 ms; server: 2 s; reply: 25,000 B.
  rig.rpc.Call(25000, 25000, odsim::SimDuration::Seconds(2),
               [&] { done_at = rig.sim.Now(); });
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  EXPECT_EQ(done_at, odsim::SimTime::Seconds(0.105 + 2.0 + 0.105));
}

TEST(RpcTest, InterfaceHeldAwakeWhileServerComputes) {
  Rig rig;
  rig.laptop->power_manager().SetHardwarePmEnabled(true);
  rig.rpc.Call(25000, 25000, odsim::SimDuration::Seconds(2), nullptr);
  // Mid server computation: not in standby — the client is listening.
  rig.sim.RunUntil(odsim::SimTime::Seconds(1.0));
  EXPECT_NE(rig.laptop->wavelan().wavelan_state(), odpower::WaveLanState::kStandby);
  // After the reply: back to standby.
  rig.sim.RunUntil(odsim::SimTime::Seconds(3));
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), odpower::WaveLanState::kStandby);
}

TEST(RpcTest, ClientIdlesDuringServerTime) {
  Rig rig;
  rig.rpc.Call(1000, 1000, odsim::SimDuration::Seconds(2), nullptr);
  rig.sim.RunUntil(odsim::SimTime::Seconds(1.0));
  EXPECT_FALSE(rig.sim.cpu_busy());
}

TEST(RpcTest, ZeroServerTime) {
  Rig rig;
  bool done = false;
  rig.rpc.Call(1000, 1000, odsim::SimDuration::Zero(), [&] { done = true; });
  rig.sim.RunUntil(odsim::SimTime::Seconds(1));
  EXPECT_TRUE(done);
}

TEST(RpcTest, SequentialCalls) {
  Rig rig;
  int completed = 0;
  rig.rpc.Call(1000, 1000, odsim::SimDuration::Seconds(1), [&] {
    ++completed;
    rig.rpc.Call(1000, 1000, odsim::SimDuration::Seconds(1),
                 [&] { ++completed; });
  });
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_EQ(completed, 2);
}

}  // namespace
}  // namespace odnet
