// Property test: the link conserves bytes, completes transfers in FIFO
// order, and its busy-time counter equals the sum of per-transfer durations
// under randomized offered load.

#include <vector>

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace odnet {
namespace {

class LinkPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinkPropertyTest, ConservationAndFifo) {
  odsim::Simulator sim;
  auto laptop = odpower::MakeThinkPad560X(&sim);
  Link link(&sim, &laptop->power_manager(), LinkConfig{});
  odutil::Rng rng(GetParam());

  struct Xfer {
    size_t bytes;
    odsim::SimTime submitted;
    int sequence;
  };
  std::vector<Xfer> transfers;
  std::vector<int> completion_order;
  size_t total_bytes = 0;
  double expected_busy = 0.0;

  for (int i = 0; i < 25; ++i) {
    size_t bytes = static_cast<size_t>(rng.Uniform(100, 300000));
    double at = rng.Uniform(0.0, 20.0);
    total_bytes += bytes;
    expected_busy += link.TransferTime(bytes).seconds();
    transfers.push_back(Xfer{bytes, odsim::SimTime::Seconds(at), i});
  }
  // Sort submissions by time so the FIFO expectation is by submission order.
  std::sort(transfers.begin(), transfers.end(),
            [](const Xfer& a, const Xfer& b) { return a.submitted < b.submitted; });
  for (const Xfer& xfer : transfers) {
    sim.ScheduleAt(xfer.submitted, [&link, &xfer, &completion_order, &rng]() {
      Direction direction =
          rng.Bernoulli(0.5) ? Direction::kSend : Direction::kReceive;
      link.Transfer(direction, xfer.bytes, [&completion_order, &xfer] {
        completion_order.push_back(xfer.sequence);
      });
    });
  }

  sim.Run();

  ASSERT_EQ(completion_order.size(), transfers.size());
  // FIFO: completions follow submission order.
  for (size_t i = 0; i < transfers.size(); ++i) {
    EXPECT_EQ(completion_order[i], transfers[i].sequence) << "seed " << GetParam();
  }

  EXPECT_EQ(link.total_bytes(), total_bytes);
  EXPECT_NEAR(link.total_busy_seconds(), expected_busy, 1e-6);
  EXPECT_FALSE(link.busy());
  // The interface ends in its resting state.
  EXPECT_EQ(laptop->wavelan().wavelan_state(), odpower::WaveLanState::kIdle);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkPropertyTest,
                         ::testing::Values(10, 20, 30, 40, 50, 60));

}  // namespace
}  // namespace odnet
