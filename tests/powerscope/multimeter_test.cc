#include "src/powerscope/multimeter.h"

#include <gtest/gtest.h>

#include "src/power/cpu.h"
#include "src/power/machine.h"
#include "src/sim/simulator.h"

namespace odscope {
namespace {

struct Rig {
  odsim::Simulator sim;
  odpower::Machine machine{&sim, 0.0};
  odpower::OtherComponent* other =
      machine.AddComponent(std::make_unique<odpower::OtherComponent>(12.0));
};

TEST(MultimeterTest, SamplesAtConfiguredRate) {
  Rig rig;
  MultimeterConfig config;
  config.sample_rate_hz = 100.0;
  config.noise_amps = 0.0;
  Multimeter meter(&rig.sim, &rig.machine, config, 1);
  meter.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(1));
  meter.Stop();
  // One sample at t=0, then one every 10 ms: 101 samples in [0, 1].
  EXPECT_EQ(meter.samples().size(), 101u);
}

TEST(MultimeterTest, NoiselessSamplesMatchPowerOverVoltage) {
  Rig rig;
  MultimeterConfig config;
  config.noise_amps = 0.0;
  config.supply_volts = 12.0;
  Multimeter meter(&rig.sim, &rig.machine, config, 1);
  meter.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(0.1));
  for (const CurrentSample& s : meter.samples()) {
    EXPECT_DOUBLE_EQ(s.amps, 1.0);  // 12 W / 12 V.
  }
}

TEST(MultimeterTest, NoiseIsDeterministicPerSeed) {
  Rig rig1, rig2;
  MultimeterConfig config;
  Multimeter a(&rig1.sim, &rig1.machine, config, 99);
  Multimeter b(&rig2.sim, &rig2.machine, config, 99);
  a.Start();
  b.Start();
  rig1.sim.RunUntil(odsim::SimTime::Seconds(0.05));
  rig2.sim.RunUntil(odsim::SimTime::Seconds(0.05));
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples()[i].amps, b.samples()[i].amps);
  }
}

TEST(MultimeterTest, TriggerFiresPerSample) {
  Rig rig;
  Multimeter meter(&rig.sim, &rig.machine, MultimeterConfig{}, 1);
  int triggers = 0;
  meter.set_trigger([&](odsim::SimTime) { ++triggers; });
  meter.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(0.1));
  meter.Stop();
  EXPECT_EQ(static_cast<size_t>(triggers), meter.samples().size());
}

TEST(MultimeterTest, StopHaltsSampling) {
  Rig rig;
  Multimeter meter(&rig.sim, &rig.machine, MultimeterConfig{}, 1);
  meter.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(0.05));
  meter.Stop();
  size_t count = meter.samples().size();
  rig.sim.RunUntil(odsim::SimTime::Seconds(0.2));
  EXPECT_EQ(meter.samples().size(), count);
}

TEST(MultimeterTest, ClearSamples) {
  Rig rig;
  Multimeter meter(&rig.sim, &rig.machine, MultimeterConfig{}, 1);
  meter.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(0.05));
  meter.ClearSamples();
  EXPECT_TRUE(meter.samples().empty());
}

}  // namespace
}  // namespace odscope
