#include "src/powerscope/online_monitor.h"

#include <gtest/gtest.h>

#include "src/power/cpu.h"
#include "src/power/machine.h"
#include "src/sim/simulator.h"

namespace odscope {
namespace {

struct Rig {
  odsim::Simulator sim;
  odpower::Machine machine{&sim, 0.0};
  odpower::OtherComponent* other =
      machine.AddComponent(std::make_unique<odpower::OtherComponent>(10.0));

  OnlineMonitorConfig Noiseless() {
    OnlineMonitorConfig config;
    config.noise_watts = 0.0;
    return config;
  }
};

TEST(OnlineMonitorTest, TracksLastSample) {
  Rig rig;
  OnlineMonitor monitor(&rig.sim, &rig.machine, rig.Noiseless(), 1);
  monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(1));
  EXPECT_DOUBLE_EQ(monitor.last_watts(), 10.0);
}

TEST(OnlineMonitorTest, IntegratesMeasuredEnergy) {
  Rig rig;
  OnlineMonitor monitor(&rig.sim, &rig.machine, rig.Noiseless(), 1);
  monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  // Constant 10 W for 10 s; the rectangle rule is exact for constant power.
  EXPECT_NEAR(monitor.measured_joules(), 100.0, 1.5);
}

TEST(OnlineMonitorTest, CallbackDelivered) {
  Rig rig;
  OnlineMonitor monitor(&rig.sim, &rig.machine, rig.Noiseless(), 1);
  int calls = 0;
  double last = 0.0;
  monitor.set_callback([&](odsim::SimTime, double watts) {
    ++calls;
    last = watts;
  });
  monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(1));
  EXPECT_EQ(calls, 11);  // t=0 plus 10 at 100 ms.
  EXPECT_DOUBLE_EQ(last, 10.0);
}

TEST(OnlineMonitorTest, StopFreezesIntegration) {
  Rig rig;
  OnlineMonitor monitor(&rig.sim, &rig.machine, rig.Noiseless(), 1);
  monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(1));
  monitor.Stop();
  double frozen = monitor.measured_joules();
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  EXPECT_DOUBLE_EQ(monitor.measured_joules(), frozen);
}

// Trailing integration is exact at sample boundaries: after exactly N
// periods, energy is watts * N * period.  The old forward-charging scheme
// counted N+1 full periods here (the first sample charged a period that
// had not elapsed yet).
TEST(OnlineMonitorTest, FirstSampleChargesNoEnergy) {
  Rig rig;
  OnlineMonitor monitor(&rig.sim, &rig.machine, rig.Noiseless(), 1);
  monitor.Start();
  EXPECT_DOUBLE_EQ(monitor.measured_joules(), 0.0);
  rig.sim.RunUntil(odsim::SimTime::Seconds(1));
  // Samples at 0, 0.1, ..., 1.0: ten elapsed 100 ms intervals at 10 W.
  EXPECT_DOUBLE_EQ(monitor.measured_joules(), 10.0);
}

TEST(OnlineMonitorTest, StopMidPeriodChargesOnlyElapsedTime) {
  Rig rig;
  OnlineMonitor monitor(&rig.sim, &rig.machine, rig.Noiseless(), 1);
  monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Millis(250));
  monitor.Stop();
  // Two whole intervals plus the 50 ms tail since the t=200 ms sample —
  // exactly the 250 ms that elapsed, at 10 W.
  EXPECT_DOUBLE_EQ(monitor.measured_joules(), 2.5);
  double frozen = monitor.measured_joules();
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  EXPECT_DOUBLE_EQ(monitor.measured_joules(), frozen);
}

TEST(OnlineMonitorTest, NoiseDoesNotBiasIntegration) {
  Rig rig;
  OnlineMonitorConfig config;
  config.noise_watts = 0.5;
  OnlineMonitor monitor(&rig.sim, &rig.machine, config, 42);
  monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(100));
  // Zero-mean noise: the integral converges to the true 1000 J.
  EXPECT_NEAR(monitor.measured_joules(), 1000.0, 10.0);
}

}  // namespace
}  // namespace odscope
