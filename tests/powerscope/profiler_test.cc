#include "src/powerscope/profiler.h"

#include <gtest/gtest.h>

#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odscope {
namespace {

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);

  MultimeterConfig NoiselessConfig() {
    MultimeterConfig config;
    config.noise_amps = 0.0;
    return config;
  }
};

TEST(ProfilerTest, SampledEnergyMatchesAnalyticWithinSamplingError) {
  Rig rig;
  Profiler profiler(&rig.sim, &rig.laptop->machine(), rig.NoiselessConfig());
  odsim::ProcessId pid = rig.sim.processes().RegisterProcess("worker");
  odsim::ProcedureId proc = rig.sim.processes().RegisterProcedure("_w");

  profiler.Start();
  rig.laptop->accounting().Reset(rig.sim.Now());
  rig.sim.SubmitWork(pid, proc, odsim::SimDuration::Seconds(3), nullptr);
  rig.sim.Schedule(odsim::SimDuration::Seconds(5), [&] {
    rig.laptop->display().Set(odpower::DisplayState::kOff);
  });
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  profiler.Stop();

  double analytic = rig.laptop->accounting().TotalJoules(rig.sim.Now());
  double sampled = profiler.SampledJoules();
  EXPECT_NEAR(sampled, analytic, 0.02 * analytic);
}

TEST(ProfilerTest, CorrelateAttributesEnergyToProcesses) {
  Rig rig;
  Profiler profiler(&rig.sim, &rig.laptop->machine(), rig.NoiselessConfig());
  odsim::ProcessId pid = rig.sim.processes().RegisterProcess("worker");
  odsim::ProcedureId proc = rig.sim.processes().RegisterProcedure("_busyloop");

  profiler.Start();
  rig.sim.SubmitWork(pid, proc, odsim::SimDuration::Seconds(2), nullptr);
  rig.sim.RunUntil(odsim::SimTime::Seconds(4));
  profiler.Stop();

  EnergyProfile profile = profiler.Correlate();
  // Both the worker and the idle loop must appear.
  EXPECT_GT(profile.ProcessJoules("worker"), 0.0);
  EXPECT_GT(profile.ProcessJoules("Idle"), 0.0);
  // Worker ran at higher draw (CPU busy) for 2 s; idle for 2 s.
  EXPECT_GT(profile.ProcessJoules("worker"), profile.ProcessJoules("Idle"));
}

TEST(ProfilerTest, CpuTimeMatchesSubmittedWork) {
  Rig rig;
  Profiler profiler(&rig.sim, &rig.laptop->machine(), rig.NoiselessConfig());
  odsim::ProcessId pid = rig.sim.processes().RegisterProcess("worker");
  odsim::ProcedureId proc = rig.sim.processes().RegisterProcedure("_w");

  profiler.Start();
  rig.sim.SubmitWork(pid, proc, odsim::SimDuration::Seconds(2), nullptr);
  rig.sim.RunUntil(odsim::SimTime::Seconds(4));
  profiler.Stop();

  EnergyProfile profile = profiler.Correlate();
  for (const ProcessProfile& p : profile.processes()) {
    if (p.summary.name == "worker") {
      EXPECT_NEAR(p.summary.cpu_seconds, 2.0, 0.05);
    }
  }
}

TEST(ProfilerTest, ProcedureDetailSumsToProcess) {
  Rig rig;
  Profiler profiler(&rig.sim, &rig.laptop->machine(), rig.NoiselessConfig());
  odsim::ProcessId pid = rig.sim.processes().RegisterProcess("worker");
  odsim::ProcedureId p1 = rig.sim.processes().RegisterProcedure("_alpha");
  odsim::ProcedureId p2 = rig.sim.processes().RegisterProcedure("_beta");

  profiler.Start();
  rig.sim.SubmitWork(pid, p1, odsim::SimDuration::Seconds(1), nullptr);
  rig.sim.SubmitWork(pid, p2, odsim::SimDuration::Seconds(1), nullptr);
  rig.sim.RunUntil(odsim::SimTime::Seconds(3));
  profiler.Stop();

  EnergyProfile profile = profiler.Correlate();
  for (const ProcessProfile& p : profile.processes()) {
    double detail_sum = 0.0;
    for (const ProfileEntry& entry : p.procedures) {
      detail_sum += entry.joules;
    }
    EXPECT_NEAR(detail_sum, p.summary.joules, 1e-9);
  }
}

TEST(ProfilerTest, FormatContainsFigure2Columns) {
  Rig rig;
  Profiler profiler(&rig.sim, &rig.laptop->machine(), rig.NoiselessConfig());
  odsim::ProcessId pid = rig.sim.processes().RegisterProcess("xanim");
  odsim::ProcedureId proc = rig.sim.processes().RegisterProcedure("_Dispatcher");

  profiler.Start();
  rig.sim.SubmitWork(pid, proc, odsim::SimDuration::Seconds(1), nullptr);
  rig.sim.RunUntil(odsim::SimTime::Seconds(2));
  profiler.Stop();

  std::string out = profiler.Correlate().Format();
  EXPECT_NE(out.find("Process"), std::string::npos);
  EXPECT_NE(out.find("Total Energy"), std::string::npos);
  EXPECT_NE(out.find("Avg Power"), std::string::npos);
  EXPECT_NE(out.find("xanim"), std::string::npos);
  EXPECT_NE(out.find("Energy Usage Detail"), std::string::npos);
  EXPECT_NE(out.find("_Dispatcher"), std::string::npos);
}

TEST(ProfilerTest, ProfileSortedByDescendingEnergy) {
  Rig rig;
  Profiler profiler(&rig.sim, &rig.laptop->machine(), rig.NoiselessConfig());
  odsim::ProcessId small = rig.sim.processes().RegisterProcess("small");
  odsim::ProcessId big = rig.sim.processes().RegisterProcess("big");
  odsim::ProcedureId proc = rig.sim.processes().RegisterProcedure("_w");

  profiler.Start();
  rig.sim.SubmitWork(small, proc, odsim::SimDuration::Seconds(0.5), nullptr);
  rig.sim.Schedule(odsim::SimDuration::Seconds(1), [&] {
    rig.sim.SubmitWork(big, proc, odsim::SimDuration::Seconds(3), nullptr);
  });
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  profiler.Stop();

  EnergyProfile profile = profiler.Correlate();
  ASSERT_GE(profile.processes().size(), 2u);
  for (size_t i = 1; i < profile.processes().size(); ++i) {
    EXPECT_GE(profile.processes()[i - 1].summary.joules,
              profile.processes()[i].summary.joules);
  }
}

TEST(ProfilerTest, TotalsConsistency) {
  Rig rig;
  Profiler profiler(&rig.sim, &rig.laptop->machine(), rig.NoiselessConfig());
  profiler.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(2));
  profiler.Stop();
  EnergyProfile profile = profiler.Correlate();
  // Correlate() uses exact inter-sample spacing; SampledJoules() assumes the
  // nominal period throughout, so the two differ only at stream edges.
  EXPECT_NEAR(profile.TotalJoules(), profiler.SampledJoules(), 0.01);
  EXPECT_NEAR(profile.total_seconds(), 2.0, 1e-9);
}

}  // namespace
}  // namespace odscope
