#include "src/powerscope/smart_battery.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/power/cpu.h"
#include "src/power/machine.h"
#include "src/sim/simulator.h"

namespace odscope {
namespace {

struct Rig {
  odsim::Simulator sim;
  odpower::Machine machine{&sim, 0.0};
  odpower::OtherComponent* other =
      machine.AddComponent(std::make_unique<odpower::OtherComponent>(10.0));

  SmartBatteryConfig Clean() {
    SmartBatteryConfig config;
    config.noise_watts = 0.0;
    config.jitter_fraction = 0.0;
    return config;
  }
};

TEST(SmartBatteryTest, OverheadDrawsRealPower) {
  Rig rig;
  double before = rig.machine.TotalPower();
  SmartBattery monitor(&rig.sim, &rig.machine, rig.Clean(), 1);
  EXPECT_NEAR(rig.machine.TotalPower() - before, 0.010, 1e-9);
  EXPECT_NE(rig.machine.FindComponent("SmartBattery"), nullptr);
}

TEST(SmartBatteryTest, ZeroOverheadAddsNoComponent) {
  Rig rig;
  SmartBatteryConfig config = rig.Clean();
  config.overhead_watts = 0.0;
  SmartBattery monitor(&rig.sim, &rig.machine, config, 1);
  EXPECT_EQ(rig.machine.FindComponent("SmartBattery"), nullptr);
}

TEST(SmartBatteryTest, ReadingsAreQuantized) {
  Rig rig;
  SmartBatteryConfig config = rig.Clean();
  config.power_quantum_watts = 0.5;
  SmartBattery monitor(&rig.sim, &rig.machine, config, 1);
  monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(3));
  double reading = monitor.last_watts();
  EXPECT_NEAR(std::remainder(reading, 0.5), 0.0, 1e-9);
  // 10.01 W true draw rounds to 10.0 with a 0.5 W quantum.
  EXPECT_DOUBLE_EQ(reading, 10.0);
}

TEST(SmartBatteryTest, IntegratesEnergyAtCoarseRate) {
  Rig rig;
  SmartBattery monitor(&rig.sim, &rig.machine, rig.Clean(), 1);
  monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(100));
  // ~10.01 W over 100 s, read once per second.
  EXPECT_NEAR(monitor.measured_joules(), 1001.0, 15.0);
}

TEST(SmartBatteryTest, PeriodIsOneSecondByDefault) {
  Rig rig;
  SmartBattery monitor(&rig.sim, &rig.machine, rig.Clean(), 1);
  EXPECT_EQ(monitor.period(), odsim::SimDuration::Seconds(1));
  int readings = 0;
  monitor.set_callback([&](odsim::SimTime, double) { ++readings; });
  monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_EQ(readings, 11);
}

TEST(SmartBatteryTest, ImplementsPowerMonitorInterface) {
  Rig rig;
  SmartBattery smart(&rig.sim, &rig.machine, rig.Clean(), 1);
  PowerMonitor* monitor = &smart;
  monitor->Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(2));
  EXPECT_GT(monitor->last_watts(), 9.0);
  monitor->Stop();
}

}  // namespace
}  // namespace odscope
