#include "src/powerscope/telemetry_faults.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/power/cpu.h"
#include "src/power/machine.h"
#include "src/powerscope/online_monitor.h"
#include "src/sim/simulator.h"

namespace odscope {
namespace {

TEST(TelemetryFaultsTest, CleanPassThrough) {
  TelemetryFaults faults;
  EXPECT_FALSE(faults.any_active());
  auto delivered = faults.Corrupt(7.5, 3.0, true);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_DOUBLE_EQ(*delivered, 7.5);
}

TEST(TelemetryFaultsTest, DropoutSwallowsTheSample) {
  TelemetryFaults faults;
  faults.set_dropout(true);
  EXPECT_TRUE(faults.any_active());
  EXPECT_FALSE(faults.Corrupt(7.5, 3.0, true).has_value());
  faults.set_dropout(false);
  EXPECT_FALSE(faults.any_active());
  EXPECT_TRUE(faults.Corrupt(7.5, 3.0, true).has_value());
}

TEST(TelemetryFaultsTest, NanDeliversNonFinite) {
  TelemetryFaults faults;
  faults.set_nan(true);
  auto delivered = faults.Corrupt(7.5, 3.0, true);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_TRUE(std::isnan(*delivered));
}

TEST(TelemetryFaultsTest, StaleRepeatsTheLastDeliveredReading) {
  TelemetryFaults faults;
  faults.set_stale(true);
  auto delivered = faults.Corrupt(7.5, 3.0, true);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_DOUBLE_EQ(*delivered, 3.0);
  // Nothing delivered yet: there is nothing to repeat, so the raw reading
  // goes through.
  auto first = faults.Corrupt(7.5, 0.0, false);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(*first, 7.5);
}

TEST(TelemetryFaultsTest, GaugeScalesTheReading) {
  TelemetryFaults faults;
  faults.set_gauge_scale(3.0);
  EXPECT_TRUE(faults.any_active());
  auto delivered = faults.Corrupt(7.5, 3.0, true);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_DOUBLE_EQ(*delivered, 22.5);
  faults.set_gauge_scale(1.0);
  EXPECT_FALSE(faults.any_active());
}

TEST(TelemetryFaultsTest, PrecedenceDropoutOverNanOverStaleOverGauge) {
  TelemetryFaults faults;
  faults.set_dropout(true);
  faults.set_nan(true);
  faults.set_stale(true);
  faults.set_gauge_scale(3.0);
  EXPECT_FALSE(faults.Corrupt(7.5, 3.0, true).has_value());
  faults.set_dropout(false);
  EXPECT_TRUE(std::isnan(*faults.Corrupt(7.5, 3.0, true)));
  faults.set_nan(false);
  EXPECT_DOUBLE_EQ(*faults.Corrupt(7.5, 3.0, true), 3.0);
  faults.set_stale(false);
  EXPECT_DOUBLE_EQ(*faults.Corrupt(7.5, 3.0, true), 22.5);
}

// -- Integration with the on-line monitor ------------------------------------

struct Rig {
  odsim::Simulator sim;
  odpower::Machine machine{&sim, 0.0};
  odpower::OtherComponent* other =
      machine.AddComponent(std::make_unique<odpower::OtherComponent>(10.0));

  OnlineMonitorConfig Noiseless() {
    OnlineMonitorConfig config;
    config.noise_watts = 0.0;
    return config;
  }
};

TEST(TelemetryFaultsTest, MonitorDropoutSuppressesCallbacksAndIntegration) {
  Rig rig;
  OnlineMonitor monitor(&rig.sim, &rig.machine, rig.Noiseless(), 1);
  int calls = 0;
  monitor.set_callback([&](odsim::SimTime, double) { ++calls; });
  monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(1));
  int before = calls;
  double joules_before = monitor.measured_joules();

  monitor.telemetry_faults()->set_dropout(true);
  rig.sim.RunUntil(odsim::SimTime::Seconds(2));
  EXPECT_EQ(calls, before);  // No samples delivered during the dropout.
  EXPECT_DOUBLE_EQ(monitor.measured_joules(), joules_before);

  monitor.telemetry_faults()->set_dropout(false);
  rig.sim.RunUntil(odsim::SimTime::Seconds(3));
  EXPECT_GT(calls, before);  // Sampling resumes on the same cadence.
}

TEST(TelemetryFaultsTest, MonitorNanDeliversButNeverIntegrates) {
  Rig rig;
  OnlineMonitor monitor(&rig.sim, &rig.machine, rig.Noiseless(), 1);
  int nan_calls = 0;
  monitor.set_callback([&](odsim::SimTime, double watts) {
    if (std::isnan(watts)) {
      ++nan_calls;
    }
  });
  monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(1));
  double joules_before = monitor.measured_joules();

  monitor.telemetry_faults()->set_nan(true);
  rig.sim.RunUntil(odsim::SimTime::Seconds(2));
  EXPECT_GT(nan_calls, 0);  // The consumer sees the garbage...
  EXPECT_DOUBLE_EQ(monitor.measured_joules(), joules_before);  // ...we don't.
}

TEST(TelemetryFaultsTest, MonitorGaugeDriftInflatesIntegration) {
  Rig rig;
  OnlineMonitor monitor(&rig.sim, &rig.machine, rig.Noiseless(), 1);
  monitor.telemetry_faults()->set_gauge_scale(3.0);
  monitor.Start();
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  // 10 W machine read as 30 W: the monitor integrates the corrupted value
  // (that is the point — the director must correct for it).
  EXPECT_NEAR(monitor.measured_joules(), 300.0, 5.0);
}

}  // namespace
}  // namespace odscope
