#include "src/apps/video_player.h"

#include <gtest/gtest.h>

#include "src/apps/testbed.h"

namespace odapps {
namespace {

TEST(VideoPlayerTest, LadderHasFiveLevels) {
  TestBed bed;
  EXPECT_EQ(bed.video().fidelity_spec().count(), 5);
  EXPECT_TRUE(bed.video().AtHighestFidelity());
}

TEST(VideoPlayerTest, LadderMapsToConfigs) {
  TestBed bed;
  VideoPlayer& video = bed.video();
  video.SetFidelity(4);
  EXPECT_EQ(video.EffectiveConfig().track, VideoTrack::kBaseline);
  video.SetFidelity(3);
  EXPECT_EQ(video.EffectiveConfig().track, VideoTrack::kPremiereB);
  video.SetFidelity(2);
  EXPECT_EQ(video.EffectiveConfig().track, VideoTrack::kPremiereC);
  video.SetFidelity(1);
  EXPECT_DOUBLE_EQ(video.EffectiveConfig().window_scale, 0.5);
  video.SetFidelity(0);
  EXPECT_TRUE(video.EffectiveConfig().dim_display);
  EXPECT_DOUBLE_EQ(video.EffectiveConfig().rate_scale, 0.5);
}

TEST(VideoPlayerTest, OverridePinsConfig) {
  TestBed bed;
  VideoPlayer& video = bed.video();
  video.SetConfigOverride(VideoPlayer::Config{VideoTrack::kPremiereC, 0.5});
  video.SetFidelity(4);  // Ladder changes must not leak through.
  EXPECT_EQ(video.EffectiveConfig().track, VideoTrack::kPremiereC);
  video.ClearConfigOverride();
  EXPECT_EQ(video.EffectiveConfig().track, VideoTrack::kBaseline);
}

TEST(VideoPlayerTest, PlaybackTakesClipDuration) {
  TestBed bed;
  const VideoClip& clip = StandardVideoClips()[0];
  odsim::SimTime done_at;
  bed.video().PlayClip(clip, [&] { done_at = bed.sim().Now(); });
  EXPECT_TRUE(bed.video().playing());
  bed.sim().RunUntil(odsim::SimTime::Seconds(clip.duration_seconds + 10));
  EXPECT_FALSE(bed.video().playing());
  EXPECT_NEAR(done_at.seconds(), clip.duration_seconds, 1.0);
}

TEST(VideoPlayerTest, PlaySegmentStopsEarly) {
  TestBed bed;
  odsim::SimTime done_at;
  bed.video().PlaySegment(StandardVideoClips()[0], odsim::SimDuration::Seconds(10),
                          [&] { done_at = bed.sim().Now(); });
  bed.sim().RunUntil(odsim::SimTime::Seconds(30));
  EXPECT_NEAR(done_at.seconds(), 10.0, 0.6);
}

TEST(VideoPlayerTest, PlaybackHoldsDisplay) {
  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kOff);
  bed.video().PlaySegment(StandardVideoClips()[0], odsim::SimDuration::Seconds(5),
                          nullptr);
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kBright);
  bed.sim().RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kOff);
}

TEST(VideoPlayerTest, AmbientFidelityDimsDisplay) {
  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  bed.video().SetFidelity(0);
  bed.video().PlaySegment(StandardVideoClips()[0], odsim::SimDuration::Seconds(5),
                          nullptr);
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kDim);
  bed.sim().RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kOff);
}

TEST(VideoPlayerTest, MidPlaybackFidelityChangeRetunesDisplay) {
  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  bed.video().PlaySegment(StandardVideoClips()[0], odsim::SimDuration::Seconds(20),
                          nullptr);
  bed.sim().RunUntil(odsim::SimTime::Seconds(5));
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kBright);
  bed.video().SetFidelity(0);
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kDim);
  bed.video().SetFidelity(4);
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kBright);
}

TEST(VideoPlayerTest, LoopingRestartsUntilStopped) {
  TestBed bed;
  const VideoClip& clip = StandardVideoClips()[0];  // 127 s.
  bed.video().PlayLooping(clip);
  bed.sim().RunUntil(odsim::SimTime::Seconds(300));
  EXPECT_TRUE(bed.video().playing());
  bed.video().StopLooping();
  bed.sim().RunUntil(odsim::SimTime::Seconds(400));
  EXPECT_FALSE(bed.video().playing());
}

TEST(VideoPlayerTest, NoFramesDroppedWhenAlone) {
  TestBed bed;
  bed.video().PlaySegment(StandardVideoClips()[0], odsim::SimDuration::Seconds(30),
                          nullptr);
  bed.sim().RunUntil(odsim::SimTime::Seconds(40));
  EXPECT_EQ(bed.video().chunks_dropped(), 0);
  EXPECT_GT(bed.video().chunks_played(), 0);
}

TEST(VideoPlayerTest, DropsFramesUnderForeignCpuLoad) {
  TestBed bed;
  bed.video().PlaySegment(StandardVideoClips()[0], odsim::SimDuration::Seconds(30),
                          nullptr);
  // A long-running foreign computation contends for the CPU.
  odsim::ProcessId pid = bed.sim().processes().RegisterProcess("hog");
  odsim::ProcedureId proc = bed.sim().processes().RegisterProcedure("_hog");
  bed.sim().SubmitWork(pid, proc, odsim::SimDuration::Seconds(20), nullptr);
  bed.sim().RunUntil(odsim::SimTime::Seconds(40));
  EXPECT_GT(bed.video().chunks_dropped(), 0);
}

TEST(VideoPlayerTest, WindowGeometryFollowsConfig) {
  TestBed bed;
  bed.video().SetConfigOverride(VideoPlayer::Config{VideoTrack::kBaseline, 0.5});
  oddisplay::Rect window = bed.video().window();
  EXPECT_DOUBLE_EQ(window.w, VideoWindow(0.5).w);
}

TEST(VideoPlayerTest, LowerFidelityUsesLessEnergy) {
  const VideoClip& clip = StandardVideoClips()[1];
  double joules[5];
  for (int level = 0; level < 5; ++level) {
    TestBed bed;
    bed.video().SetFidelity(level);
    auto m = bed.Measure([&](odsim::EventFn done) {
      bed.video().PlaySegment(clip, odsim::SimDuration::Seconds(30),
                              std::move(done));
    });
    joules[level] = m.joules;
  }
  for (int level = 1; level < 5; ++level) {
    EXPECT_LT(joules[level - 1], joules[level]) << "level " << level;
  }
}

}  // namespace
}  // namespace odapps
