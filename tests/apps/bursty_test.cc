#include "src/apps/bursty.h"

#include <gtest/gtest.h>

#include "src/apps/testbed.h"

namespace odapps {
namespace {

TEST(BurstyTest, RunsWorkloadOverTime) {
  TestBed bed;
  BurstyWorkload workload(&bed.sim(), &bed.video(), &bed.speech(), &bed.web(),
                          &bed.map(), &bed.rng());
  auto m = bed.MeasureFor(odsim::SimDuration::Zero());  // Reset accounting.
  workload.Start();
  m = bed.MeasureFor(odsim::SimDuration::Seconds(600));
  workload.Stop();
  // Ten minutes of half-active apps must consume real energy, and some CPU
  // work must have been attributed beyond the idle loop.
  EXPECT_GT(m.joules, 600 * 5.0);
  double busy_joules = m.joules - m.Process("Idle");
  EXPECT_GT(busy_joules, 0.0);
}

TEST(BurstyTest, DeterministicPerSeed) {
  double joules[2];
  for (int i = 0; i < 2; ++i) {
    TestBed bed(TestBed::Options{.seed = 77, .hw_pm = true, .link = {}});
    BurstyWorkload workload(&bed.sim(), &bed.video(), &bed.speech(), &bed.web(),
                            &bed.map(), &bed.rng());
    workload.Start();
    auto m = bed.MeasureFor(odsim::SimDuration::Seconds(300));
    workload.Stop();
    joules[i] = m.joules;
  }
  EXPECT_DOUBLE_EQ(joules[0], joules[1]);
}

TEST(BurstyTest, DifferentSeedsDiffer) {
  double joules[2];
  uint64_t seeds[2] = {101, 202};
  for (int i = 0; i < 2; ++i) {
    TestBed bed(TestBed::Options{.seed = seeds[i], .hw_pm = true, .link = {}});
    BurstyWorkload workload(&bed.sim(), &bed.video(), &bed.speech(), &bed.web(),
                            &bed.map(), &bed.rng());
    workload.Start();
    auto m = bed.MeasureFor(odsim::SimDuration::Seconds(300));
    workload.Stop();
    joules[i] = m.joules;
  }
  EXPECT_NE(joules[0], joules[1]);
}

TEST(BurstyTest, StatesEventuallyToggle) {
  TestBed bed;
  BurstyWorkload workload(&bed.sim(), &bed.video(), &bed.speech(), &bed.web(),
                          &bed.map(), &bed.rng());
  workload.Start();
  bool video_seen_active = false, video_seen_idle = false;
  // With 10%/minute switching, 60 minutes flips each app several times.
  for (int minute = 0; minute < 60; ++minute) {
    bed.sim().RunUntil(bed.sim().Now() + odsim::SimDuration::Seconds(60));
    video_seen_active |= workload.video_active();
    video_seen_idle |= !workload.video_active();
  }
  workload.Stop();
  EXPECT_TRUE(video_seen_active);
  EXPECT_TRUE(video_seen_idle);
}

TEST(BurstyTest, StopQuiescesWithinAMinuteWorkload) {
  TestBed bed;
  BurstyWorkload workload(&bed.sim(), &bed.video(), &bed.speech(), &bed.web(),
                          &bed.map(), &bed.rng());
  workload.Start();
  bed.sim().RunUntil(odsim::SimTime::Seconds(120));
  workload.Stop();
  bed.video().StopLooping();
  // After stop, in-flight units drain; no new minute ticks fire.
  bed.sim().RunUntil(odsim::SimTime::Seconds(300));
  auto m = bed.MeasureFor(odsim::SimDuration::Seconds(60));
  // Energy now flows at the idle resting rate only (no app activity).
  EXPECT_LT(m.average_watts(), 11.0);
}

}  // namespace
}  // namespace odapps
