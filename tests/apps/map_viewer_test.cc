#include "src/apps/map_viewer.h"

#include <gtest/gtest.h>

#include "src/apps/testbed.h"

namespace odapps {
namespace {

TEST(MapViewerTest, LadderHasFiveLevels) {
  TestBed bed;
  EXPECT_EQ(bed.map().fidelity_spec().count(), 5);
  EXPECT_EQ(bed.map().map_fidelity(), MapFidelity::kFull);
}

TEST(MapViewerTest, BytesAtEachFidelity) {
  const MapObject& map = StandardMaps()[0];
  EXPECT_EQ(MapViewer::BytesAtFidelity(map, MapFidelity::kFull), map.full_bytes);
  EXPECT_EQ(MapViewer::BytesAtFidelity(map, MapFidelity::kMinorFilter),
            map.minor_filter_bytes);
  EXPECT_EQ(MapViewer::BytesAtFidelity(map, MapFidelity::kSecondaryFilter),
            map.secondary_filter_bytes);
  EXPECT_EQ(MapViewer::BytesAtFidelity(map, MapFidelity::kCropped),
            map.cropped_bytes);
  EXPECT_EQ(MapViewer::BytesAtFidelity(map, MapFidelity::kCroppedSecondary),
            map.cropped_secondary_bytes);
}

TEST(MapViewerTest, ViewIncludesThinkTime) {
  TestBed bed;
  bed.map().set_think_seconds(5.0);
  auto m = bed.Measure([&](odsim::EventFn done) {
    bed.map().ViewMap(StandardMaps()[1], std::move(done));
  });
  EXPECT_GT(m.seconds, 5.0);
}

TEST(MapViewerTest, ZeroThinkTimeSupported) {
  TestBed bed;
  bed.map().set_think_seconds(0.0);
  bool done = false;
  bed.map().ViewMap(StandardMaps()[1], [&] { done = true; });
  bed.sim().RunUntil(odsim::SimTime::Seconds(60));
  EXPECT_TRUE(done);
}

TEST(MapViewerTest, ThinkTimeExtendsEnergyLinearly) {
  // Figure 11: E_t = E_0 + t * P_B.
  double joules[3];
  double thinks[3] = {0.0, 10.0, 20.0};
  for (int i = 0; i < 3; ++i) {
    TestBed bed(TestBed::Options{.seed = 7, .hw_pm = true, .link = {}});
    bed.map().set_think_seconds(thinks[i]);
    bed.sim().RunUntil(odsim::SimTime::Seconds(15));
    auto m = bed.Measure([&](odsim::EventFn done) {
      bed.map().ViewMap(StandardMaps()[0], std::move(done));
    });
    joules[i] = m.joules;
  }
  double slope1 = (joules[1] - joules[0]) / 10.0;
  double slope2 = (joules[2] - joules[1]) / 10.0;
  EXPECT_NEAR(slope1, slope2, 0.2);
  // Think-time slope is the bright-display resting power (~6.5 W).
  EXPECT_GT(slope1, 5.5);
  EXPECT_LT(slope1, 7.5);
}

TEST(MapViewerTest, DisplayHeldThroughThinkTime) {
  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  bed.map().set_think_seconds(5.0);
  bool done = false;
  bed.map().ViewMap(StandardMaps()[1], [&] { done = true; });
  // Mid think time (map small enough to fetch in <4 s): display bright.
  bed.sim().RunUntil(odsim::SimTime::Seconds(6));
  EXPECT_FALSE(done);
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kBright);
  bed.sim().RunUntil(odsim::SimTime::Seconds(60));
  EXPECT_TRUE(done);
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kOff);
}

TEST(MapViewerTest, EnergyTracksTransferSize) {
  // The fidelity ladder is not strictly energy-monotonic (the paper notes
  // cropping is less effective than filtering for these samples), but energy
  // must track the bytes actually transferred.
  const MapObject& map = StandardMaps()[0];
  std::vector<std::pair<size_t, double>> by_bytes;
  for (int level = 0; level < 5; ++level) {
    TestBed bed(TestBed::Options{.seed = 7, .hw_pm = true, .link = {}});
    bed.map().SetFidelity(level);
    bed.sim().RunUntil(odsim::SimTime::Seconds(15));
    auto m = bed.Measure([&](odsim::EventFn done) {
      bed.map().ViewMap(map, std::move(done));
    });
    by_bytes.emplace_back(
        MapViewer::BytesAtFidelity(map, static_cast<MapFidelity>(level)),
        m.joules);
  }
  std::sort(by_bytes.begin(), by_bytes.end());
  for (size_t i = 1; i < by_bytes.size(); ++i) {
    EXPECT_GT(by_bytes[i].second, by_bytes[i - 1].second)
        << "bytes " << by_bytes[i].first;
  }
}

TEST(MapViewerTest, CroppedFidelityShrinksWindow) {
  TestBed bed;
  bed.map().SetFidelity(static_cast<int>(MapFidelity::kCropped));
  oddisplay::Rect cropped = bed.map().window();
  bed.map().SetFidelity(static_cast<int>(MapFidelity::kFull));
  oddisplay::Rect full = bed.map().window();
  EXPECT_LT(cropped.w * cropped.h, full.w * full.h);
}

TEST(MapViewerTest, BusyFlagLifecycle) {
  TestBed bed;
  EXPECT_FALSE(bed.map().busy());
  bed.map().ViewMap(StandardMaps()[2], nullptr);
  EXPECT_TRUE(bed.map().busy());
  bed.sim().RunUntil(odsim::SimTime::Seconds(60));
  EXPECT_FALSE(bed.map().busy());
}

}  // namespace
}  // namespace odapps
