#include "src/apps/speech_recognizer.h"

#include <gtest/gtest.h>

#include "src/apps/testbed.h"

namespace odapps {
namespace {

double RecognizeJoules(SpeechMode mode, bool reduced, bool hw_pm) {
  TestBed bed(TestBed::Options{.seed = 3, .hw_pm = hw_pm, .link = {}});
  bed.speech().set_mode(mode);
  bed.speech().SetFidelity(reduced ? 0 : 1);
  bed.sim().RunUntil(odsim::SimTime::Seconds(15));  // Settle devices.
  auto m = bed.Measure([&](odsim::EventFn done) {
    bed.speech().Recognize(StandardUtterances()[2], std::move(done));
  });
  return m.joules;
}

TEST(SpeechTest, LadderHasTwoLevels) {
  TestBed bed;
  EXPECT_EQ(bed.speech().fidelity_spec().count(), 2);
  EXPECT_FALSE(bed.speech().reduced_model());
  bed.speech().SetFidelity(0);
  EXPECT_TRUE(bed.speech().reduced_model());
}

TEST(SpeechTest, BusyDuringRecognition) {
  TestBed bed;
  bool done = false;
  bed.speech().Recognize(StandardUtterances()[0], [&] { done = true; });
  EXPECT_TRUE(bed.speech().busy());
  bed.sim().RunUntil(odsim::SimTime::Seconds(60));
  EXPECT_TRUE(done);
  EXPECT_FALSE(bed.speech().busy());
}

TEST(SpeechTest, LocalRecognitionUsesNoNetwork) {
  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  bed.sim().RunUntil(odsim::SimTime::Seconds(15));
  auto m = bed.Measure([&](odsim::EventFn done) {
    bed.speech().Recognize(StandardUtterances()[1], std::move(done));
  });
  // The interface never leaves standby: WaveLAN energy is standby draw only.
  double wavelan = m.Component("WaveLAN");
  EXPECT_NEAR(wavelan / m.seconds, 0.18, 1e-6);
}

TEST(SpeechTest, RemoteRecognitionTransfersWaveform) {
  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  bed.speech().set_mode(SpeechMode::kRemote);
  bed.sim().RunUntil(odsim::SimTime::Seconds(15));
  auto m = bed.Measure([&](odsim::EventFn done) {
    bed.speech().Recognize(StandardUtterances()[1], std::move(done));
  });
  EXPECT_GT(m.Component("WaveLAN") / m.seconds, 0.2);
}

TEST(SpeechTest, ReducedModelIsFasterAndCheaper) {
  double full = RecognizeJoules(SpeechMode::kLocal, false, true);
  double reduced = RecognizeJoules(SpeechMode::kLocal, true, true);
  EXPECT_LT(reduced, full);
}

TEST(SpeechTest, RemoteCheaperThanLocalUnderPm) {
  double local = RecognizeJoules(SpeechMode::kLocal, false, true);
  double remote = RecognizeJoules(SpeechMode::kRemote, false, true);
  EXPECT_LT(remote, local);
}

TEST(SpeechTest, HybridCheapestFullFidelityStrategy) {
  // "Hybrid recognition offers slightly greater energy savings than remote."
  double remote = RecognizeJoules(SpeechMode::kRemote, false, true);
  double hybrid = RecognizeJoules(SpeechMode::kHybrid, false, true);
  EXPECT_LT(hybrid, remote);
}

TEST(SpeechTest, RemoteIdleDominatesClientEnergy) {
  // "Most of the energy consumed by the client in remote recognition occurs
  // with the processor idle."
  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  bed.speech().set_mode(SpeechMode::kRemote);
  bed.sim().RunUntil(odsim::SimTime::Seconds(15));
  auto m = bed.Measure([&](odsim::EventFn done) {
    bed.speech().Recognize(StandardUtterances()[3], std::move(done));
  });
  EXPECT_GT(m.Process("Idle"), 0.4 * m.joules);
}

TEST(SpeechTest, LocalJanusDominatesClientEnergy) {
  // "Almost all the energy in this case is consumed by Janus."
  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  bed.sim().RunUntil(odsim::SimTime::Seconds(15));
  auto m = bed.Measure([&](odsim::EventFn done) {
    bed.speech().Recognize(StandardUtterances()[3], std::move(done));
  });
  EXPECT_GT(m.Process("Janus"), 0.8 * m.joules);
}

TEST(SpeechTest, LongerUtterancesCostMore) {
  TestBed bed;
  double previous = 0.0;
  for (const Utterance& u : StandardUtterances()) {
    TestBed fresh;
    auto m = fresh.Measure([&](odsim::EventFn done) {
      fresh.speech().Recognize(u, std::move(done));
    });
    EXPECT_GT(m.joules, previous);
    previous = m.joules;
  }
}

}  // namespace
}  // namespace odapps
