#include "src/apps/display_arbiter.h"

#include <gtest/gtest.h>

#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odapps {
namespace {

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  DisplayArbiter arbiter{&laptop->power_manager()};

  odpower::DisplayState state() { return laptop->display().display_state(); }
};

TEST(DisplayArbiterTest, BrightWhileHeld) {
  Rig rig;
  rig.arbiter.set_off_when_idle(true);
  EXPECT_EQ(rig.state(), odpower::DisplayState::kOff);
  rig.arbiter.Acquire();
  EXPECT_EQ(rig.state(), odpower::DisplayState::kBright);
  rig.arbiter.Release();
  EXPECT_EQ(rig.state(), odpower::DisplayState::kOff);
}

TEST(DisplayArbiterTest, IdleBrightWithoutPm) {
  Rig rig;
  rig.arbiter.set_off_when_idle(false);
  EXPECT_EQ(rig.state(), odpower::DisplayState::kBright);
  rig.arbiter.Acquire();
  rig.arbiter.Release();
  EXPECT_EQ(rig.state(), odpower::DisplayState::kBright);
}

TEST(DisplayArbiterTest, NestedHolders) {
  Rig rig;
  rig.arbiter.set_off_when_idle(true);
  rig.arbiter.Acquire();
  rig.arbiter.Acquire();
  rig.arbiter.Release();
  EXPECT_EQ(rig.state(), odpower::DisplayState::kBright);
  rig.arbiter.Release();
  EXPECT_EQ(rig.state(), odpower::DisplayState::kOff);
}

TEST(DisplayArbiterTest, DimHolderAloneDims) {
  Rig rig;
  rig.arbiter.set_off_when_idle(true);
  rig.arbiter.Acquire(DisplayNeed::kDim);
  EXPECT_EQ(rig.state(), odpower::DisplayState::kDim);
  rig.arbiter.Release(DisplayNeed::kDim);
  EXPECT_EQ(rig.state(), odpower::DisplayState::kOff);
}

TEST(DisplayArbiterTest, BrightHolderOverridesDim) {
  Rig rig;
  rig.arbiter.set_off_when_idle(true);
  rig.arbiter.Acquire(DisplayNeed::kDim);
  rig.arbiter.Acquire(DisplayNeed::kBright);
  EXPECT_EQ(rig.state(), odpower::DisplayState::kBright);
  rig.arbiter.Release(DisplayNeed::kBright);
  EXPECT_EQ(rig.state(), odpower::DisplayState::kDim);
}

TEST(DisplayArbiterTest, HolderCount) {
  Rig rig;
  EXPECT_EQ(rig.arbiter.holders(), 0);
  rig.arbiter.Acquire(DisplayNeed::kBright);
  rig.arbiter.Acquire(DisplayNeed::kDim);
  EXPECT_EQ(rig.arbiter.holders(), 2);
}

}  // namespace
}  // namespace odapps
