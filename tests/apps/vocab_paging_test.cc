// Vocabulary paging (Section 3.4: "More complex recognition tasks may
// trigger disk activity and hence show less benefit from hardware power
// management").

#include <gtest/gtest.h>

#include "src/apps/testbed.h"

namespace odapps {
namespace {

double Recognize(bool paging, bool reduced, bool hw_pm, double* out_disk_joules) {
  TestBed bed(TestBed::Options{.seed = 13, .hw_pm = hw_pm, .link = {}});
  bed.speech().set_vocab_paging(paging);
  bed.speech().SetFidelity(reduced ? 0 : 1);
  bed.sim().RunUntil(odsim::SimTime::Seconds(15));
  auto m = bed.Measure([&](odsim::EventFn done) {
    bed.speech().Recognize(StandardUtterances()[3], std::move(done));
  });
  if (out_disk_joules != nullptr) {
    *out_disk_joules = m.Component("Disk");
  }
  return m.joules;
}

TEST(VocabPagingTest, PagingCostsDiskEnergy) {
  double disk_without = 0.0, disk_with = 0.0;
  Recognize(false, false, true, &disk_without);
  Recognize(true, false, true, &disk_with);
  EXPECT_GT(disk_with, disk_without);
}

TEST(VocabPagingTest, PagingSpinsUpFromStandby) {
  // Under PM the disk starts in standby; paging must spin it up, paying the
  // spin-up transition on top of the access itself.
  TestBed bed(TestBed::Options{.seed = 13, .hw_pm = true, .link = {}});
  bed.speech().set_vocab_paging(true);
  bed.sim().RunUntil(odsim::SimTime::Seconds(20));
  ASSERT_EQ(bed.laptop().disk().disk_state(), odpower::DiskState::kStandby);
  bool done = false;
  bed.speech().Recognize(StandardUtterances()[3], [&] { done = true; });
  // The front end runs ~1.4 s before the search (and its paging) starts.
  bed.sim().RunUntil(bed.sim().Now() + odsim::SimDuration::Seconds(3));
  EXPECT_NE(bed.laptop().disk().disk_state(), odpower::DiskState::kStandby);
  bed.sim().RunUntil(bed.sim().Now() + odsim::SimDuration::Seconds(60));
  EXPECT_TRUE(done);
}

TEST(VocabPagingTest, ReducedModelFitsInMemory) {
  // "The vocabulary, language model and acoustic model fit entirely in
  // physical memory" at low fidelity: no disk traffic even with paging on.
  double disk_reduced = 0.0;
  Recognize(true, true, true, &disk_reduced);
  double disk_full = 0.0;
  Recognize(true, false, true, &disk_full);
  EXPECT_LT(disk_reduced, disk_full);
}

TEST(VocabPagingTest, PagingShrinksPmBenefit) {
  // The paper's point: disk activity during recognition reduces what
  // hardware power management can save.
  double base_plain = Recognize(false, false, false, nullptr);
  double pm_plain = Recognize(false, false, true, nullptr);
  double base_paging = Recognize(true, false, false, nullptr);
  double pm_paging = Recognize(true, false, true, nullptr);
  double plain_saving = 1.0 - pm_plain / base_plain;
  double paging_saving = 1.0 - pm_paging / base_paging;
  EXPECT_LT(paging_saving, plain_saving);
}

}  // namespace
}  // namespace odapps
