#include "src/apps/experiments.h"

#include <gtest/gtest.h>

namespace odapps {
namespace {

TEST(ExperimentsTest, SettleReachesRestingStates) {
  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  Settle(bed);
  EXPECT_EQ(bed.laptop().disk().disk_state(), odpower::DiskState::kStandby);
  EXPECT_EQ(bed.laptop().wavelan().wavelan_state(), odpower::WaveLanState::kStandby);
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kOff);
}

TEST(ExperimentsTest, RunnersAreDeterministicPerSeed) {
  double a = RunMapExperiment(StandardMaps()[1], MapFidelity::kFull, 5.0, true, 7)
                 .joules;
  double b = RunMapExperiment(StandardMaps()[1], MapFidelity::kFull, 5.0, true, 7)
                 .joules;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(ExperimentsTest, SeedsPerturbMeasurements) {
  double a = RunMapExperiment(StandardMaps()[1], MapFidelity::kFull, 5.0, true, 7)
                 .joules;
  double b = RunMapExperiment(StandardMaps()[1], MapFidelity::kFull, 5.0, true, 8)
                 .joules;
  EXPECT_NE(a, b);
  // ...but only slightly: within a couple of percent.
  EXPECT_NEAR(a, b, 0.03 * a);
}

TEST(ExperimentsTest, ZonedVideoNeverExceedsUnzoned) {
  const VideoClip& clip = StandardVideoClips()[2];
  double none = RunZonedVideoExperiment(clip, VideoTrack::kBaseline, 1.0, 0, 3)
                    .joules;
  double four = RunZonedVideoExperiment(clip, VideoTrack::kBaseline, 1.0, 4, 3)
                    .joules;
  double eight = RunZonedVideoExperiment(clip, VideoTrack::kBaseline, 1.0, 8, 3)
                     .joules;
  EXPECT_LE(four, none);
  EXPECT_LE(eight, four + 0.01 * none);
}

TEST(ExperimentsTest, CompositeExperimentRespectsVideoFlag) {
  auto alone = RunCompositeExperiment(2, false, true, false, 11);
  auto with_video = RunCompositeExperiment(2, false, true, true, 11);
  EXPECT_DOUBLE_EQ(alone.Process("xanim"), 0.0);
  EXPECT_GT(with_video.Process("xanim"), 0.0);
}

TEST(ExperimentsTest, MeasurementDurationsAreConsistent) {
  // Speech experiment wall time ~ (frontend + local rtf) * utterance length.
  const Utterance& u = StandardUtterances()[2];  // 4.5 s.
  auto m = RunSpeechExperiment(u, SpeechMode::kLocal, false, true, 5);
  EXPECT_NEAR(m.seconds, (0.2 + 1.3) * 4.5, 0.5);
}

}  // namespace
}  // namespace odapps
