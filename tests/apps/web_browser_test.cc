#include "src/apps/web_browser.h"

#include <gtest/gtest.h>

#include "src/apps/testbed.h"

namespace odapps {
namespace {

TEST(WebBrowserTest, LadderHasFiveLevels) {
  TestBed bed;
  EXPECT_EQ(bed.web().fidelity_spec().count(), 5);
  EXPECT_EQ(bed.web().web_fidelity(), WebFidelity::kOriginal);
}

TEST(WebBrowserTest, DistilledSizesMonotonic) {
  const WebImage& image = StandardWebImages()[0];
  size_t original = WebBrowser::BytesAtFidelity(image, WebFidelity::kOriginal);
  size_t j75 = WebBrowser::BytesAtFidelity(image, WebFidelity::kJpeg75);
  size_t j50 = WebBrowser::BytesAtFidelity(image, WebFidelity::kJpeg50);
  size_t j25 = WebBrowser::BytesAtFidelity(image, WebFidelity::kJpeg25);
  size_t j5 = WebBrowser::BytesAtFidelity(image, WebFidelity::kJpeg5);
  EXPECT_GT(original, j75);
  EXPECT_GT(j75, j50);
  EXPECT_GT(j50, j25);
  EXPECT_GT(j25, j5);
}

TEST(WebBrowserTest, PageIncludesThinkTime) {
  TestBed bed;
  auto m = bed.Measure([&](odsim::EventFn done) {
    bed.web().BrowsePage(StandardWebImages()[0], std::move(done));
  });
  EXPECT_GT(m.seconds, 5.0);
  EXPECT_LT(m.seconds, 10.0);
}

TEST(WebBrowserTest, LowerFidelityUsesLessEnergyOnLargeImage) {
  const WebImage& image = StandardWebImages()[0];  // 175 KB.
  double previous = 0.0;
  for (int level = 0; level < 5; ++level) {
    TestBed bed(TestBed::Options{.seed = 9, .hw_pm = true, .link = {}});
    bed.web().SetFidelity(level);
    bed.sim().RunUntil(odsim::SimTime::Seconds(15));
    auto m = bed.Measure([&](odsim::EventFn done) {
      bed.web().BrowsePage(image, std::move(done));
    });
    EXPECT_GT(m.joules, previous) << "level " << level;
    previous = m.joules;
  }
}

TEST(WebBrowserTest, TinyImageSavingsAreNegligible) {
  // Image 4 is 110 bytes; distillation cannot save anything meaningful.
  const WebImage& image = StandardWebImages()[3];
  TestBed bed_full(TestBed::Options{.seed = 9, .hw_pm = true, .link = {}});
  bed_full.sim().RunUntil(odsim::SimTime::Seconds(15));
  auto full = bed_full.Measure([&](odsim::EventFn done) {
    bed_full.web().BrowsePage(image, std::move(done));
  });
  TestBed bed_low(TestBed::Options{.seed = 9, .hw_pm = true, .link = {}});
  bed_low.web().SetFidelity(0);
  bed_low.sim().RunUntil(odsim::SimTime::Seconds(15));
  auto low = bed_low.Measure([&](odsim::EventFn done) {
    bed_low.web().BrowsePage(image, std::move(done));
  });
  EXPECT_GT(low.joules / full.joules, 0.95);
}

TEST(WebBrowserTest, ProxyAndNetscapeAttributed) {
  TestBed bed;
  auto m = bed.Measure([&](odsim::EventFn done) {
    bed.web().BrowsePage(StandardWebImages()[0], std::move(done));
  });
  EXPECT_GT(m.Process("Netscape"), 0.0);
  EXPECT_GT(m.Process("Proxy"), 0.0);
  EXPECT_GT(m.Process("X Server"), 0.0);
}

TEST(WebBrowserTest, BusyFlagLifecycle) {
  TestBed bed;
  EXPECT_FALSE(bed.web().busy());
  bed.web().BrowsePage(StandardWebImages()[1], nullptr);
  EXPECT_TRUE(bed.web().busy());
  bed.sim().RunUntil(odsim::SimTime::Seconds(30));
  EXPECT_FALSE(bed.web().busy());
}

TEST(WebBrowserTest, ThinkTimeSlopeIsBackgroundPower) {
  double joules[2];
  double thinks[2] = {5.0, 20.0};
  for (int i = 0; i < 2; ++i) {
    TestBed bed(TestBed::Options{.seed = 11, .hw_pm = true, .link = {}});
    bed.web().set_think_seconds(thinks[i]);
    bed.sim().RunUntil(odsim::SimTime::Seconds(15));
    auto m = bed.Measure([&](odsim::EventFn done) {
      bed.web().BrowsePage(StandardWebImages()[0], std::move(done));
    });
    joules[i] = m.joules;
  }
  double slope = (joules[1] - joules[0]) / 15.0;
  EXPECT_GT(slope, 5.5);
  EXPECT_LT(slope, 7.5);
}

}  // namespace
}  // namespace odapps
