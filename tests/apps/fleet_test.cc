#include "src/apps/fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/apps/experiments.h"
#include "src/apps/testbed.h"
#include "src/fault/fault_plan.h"
#include "src/scenario/library.h"
#include "src/serve/shared_service.h"

namespace odapps {
namespace {

odfault::FaultPlan Plan(const std::string& spec) {
  odfault::FaultPlan plan;
  std::string error;
  EXPECT_TRUE(odfault::FaultPlan::Parse(spec, &plan, &error)) << error;
  return plan;
}

// A small fleet saturating a deliberately slow service: rejects, batching,
// cache hits, an overload clamp, and a mid-run stall all in one pot.  The
// 1 Hz probe checks that fleet-scale accounting stays honest per device:
// supply residual plus consumed energy equals the initial budget, and the
// per-component energies (plus synergy) sum to the device total.  One
// shared event loop must not let devices bleed energy into each other.
TEST(FleetScenarioTest, ChaosSoakConservesPerDeviceEnergy) {
  FleetOptions options;
  options.clients = 6;
  options.seed = 7;
  options.goal = odsim::SimDuration::Seconds(120);
  options.service.speed_factor = 0.05;
  options.service.max_queue = 3;
  options.service.cache_capacity = 4;
  options.shared_objects = 16;
  options.fetch_period = odsim::SimDuration::Seconds(2);
  options.fault_plan = Plan("stall@30+20");

  int probes = 0;
  double max_supply_error = 0.0;
  double max_component_error = 0.0;
  options.device_probe = [&](int, odsim::SimTime now, odpower::Laptop& laptop,
                             odpower::EnergySupply& supply) {
    ++probes;
    double total = laptop.accounting().TotalJoules(now);
    // The supply clamps at empty, so past exhaustion the expected residual
    // is zero while the accountant keeps metering the (still powered-on)
    // device.
    double expected_residual = std::max(0.0, supply.initial_joules() - total);
    max_supply_error = std::max(
        max_supply_error,
        std::fabs(supply.ResidualJoules(now) - expected_residual));
    double parts = laptop.accounting().SynergyJoules(now);
    for (int c = 0; c < laptop.machine().component_count(); ++c) {
      parts += laptop.accounting().ComponentJoules(c, now);
    }
    max_component_error =
        std::max(max_component_error, std::fabs(parts - total));
  };

  FleetResult result = RunFleetScenario(options);

  EXPECT_GE(probes, options.clients * 100);
  EXPECT_LT(max_supply_error, 1e-6);
  EXPECT_LT(max_component_error, 1e-6);

  // The pot actually boiled: contention and the stall left visible marks.
  EXPECT_GT(result.total_fetches, 0);
  EXPECT_GT(result.server_batch_joins, 0);
  EXPECT_GT(result.server_cache_hits, 0);
  EXPECT_GT(result.total_rejected_fetches, 0);
}

TEST(FleetScenarioTest, SameSeedReproducesExactly) {
  FleetOptions options;
  options.clients = 4;
  options.seed = 11;
  options.goal = odsim::SimDuration::Seconds(60);
  options.service.cache_capacity = 32;

  FleetResult a = RunFleetScenario(options);
  FleetResult b = RunFleetScenario(options);
  EXPECT_EQ(a.goal_met_count, b.goal_met_count);
  EXPECT_EQ(a.total_fetches, b.total_fetches);
  EXPECT_EQ(a.server_completed, b.server_completed);
  EXPECT_EQ(a.server_cache_hits, b.server_cache_hits);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.devices[i].consumed_joules, b.devices[i].consumed_joules);
    EXPECT_EQ(a.devices[i].fetches, b.devices[i].fetches);
  }
}

// A fleet of one wired through the service-provider seam — every warden a
// session on an explicit default-configured SharedService — must measure
// exactly what the classic testbed with private per-warden servers
// measures.  This is the facade equivalence the goldens rely on, asserted
// at the seam itself.
TEST(FleetScenarioTest, FleetOfOneThroughProviderMatchesPrivateServers) {
  auto run = [](bool through_provider) {
    auto sim = std::make_unique<odsim::Simulator>();
    std::vector<std::unique_ptr<odserve::SharedService>> services;
    TestBed::Options options;
    options.seed = 42;
    options.hw_pm = true;
    if (through_provider) {
      options.sim = sim.get();
      options.services = [&sim, &services](const std::string& data_type) {
        services.push_back(std::make_unique<odserve::SharedService>(
            sim.get(), data_type + "-shared"));
        return services.back().get();
      };
    }
    TestBed bed(options);
    bed.map().SetFidelity(static_cast<int>(MapFidelity::kFull));
    bed.map().set_think_seconds(1.0);
    Settle(bed);
    TestBed::Measurement m = bed.Measure([&](odsim::EventFn done) {
      bed.map().ViewMap(StandardMaps()[0], std::move(done));
    });
    return m;
  };

  TestBed::Measurement direct = run(false);
  TestBed::Measurement shared = run(true);
  EXPECT_DOUBLE_EQ(direct.joules, shared.joules);
  EXPECT_DOUBLE_EQ(direct.seconds, shared.seconds);
  for (const auto& [name, joules] : direct.by_component) {
    auto it = shared.by_component.find(name);
    ASSERT_NE(it, shared.by_component.end()) << name;
    EXPECT_DOUBLE_EQ(joules, it->second) << name;
  }
}

// Scenario diversity assigns each device a behavior timeline from the
// named library by seed-indexed rotation and gates its fetch loop on it.
// With one device per library entry, the commuter's tunnel (a coverage
// gap) and the coffee shop's weak-signal dip must suppress fetch ticks,
// while the always-active behaviors (background_sync, video_evening) skip
// nothing — so skip counts differ across the fleet.
TEST(FleetScenarioTest, ScenarioDiversityGatesFetchLoopsPerDevice) {
  const size_t library_size = odscenario::ScenarioLibrary().size();
  FleetOptions options;
  options.clients = static_cast<int>(library_size);
  options.seed = 3;
  options.goal = odsim::SimDuration::Seconds(600);
  options.fetch_period = odsim::SimDuration::Seconds(5);
  options.scenario_diversity = true;

  FleetResult result = RunFleetScenario(options);

  EXPECT_GT(result.total_fetches, 0);
  EXPECT_GT(result.total_scenario_skipped_ticks, 0);
  int devices_with_skips = 0;
  int devices_without_skips = 0;
  for (const FleetDeviceResult& device : result.devices) {
    (device.scenario_skipped_ticks > 0 ? devices_with_skips
                                       : devices_without_skips)++;
  }
  EXPECT_GT(devices_with_skips, 0);
  EXPECT_GT(devices_without_skips, 0);
}

TEST(FleetScenarioTest, ScenarioDiversityReproducesExactly) {
  FleetOptions options;
  options.clients = 8;  // Wraps past the library: assignment is modular.
  options.seed = 5;
  options.goal = odsim::SimDuration::Seconds(300);
  options.scenario_diversity = true;

  FleetResult a = RunFleetScenario(options);
  FleetResult b = RunFleetScenario(options);
  EXPECT_EQ(a.total_fetches, b.total_fetches);
  EXPECT_EQ(a.total_scenario_skipped_ticks, b.total_scenario_skipped_ticks);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (size_t i = 0; i < a.devices.size(); ++i) {
    EXPECT_EQ(a.devices[i].fetches, b.devices[i].fetches);
    EXPECT_EQ(a.devices[i].scenario_skipped_ticks,
              b.devices[i].scenario_skipped_ticks);
    EXPECT_DOUBLE_EQ(a.devices[i].consumed_joules,
                     b.devices[i].consumed_joules);
  }
}

TEST(FleetScenarioTest, ScenarioDiversityOffLeavesTheFleetUnchanged) {
  // The flag must be strictly additive: a default-constructed fleet and an
  // explicit scenario_diversity=false fleet are the same program, and
  // neither records a skipped tick.
  FleetOptions options;
  options.clients = 3;
  options.seed = 11;
  options.goal = odsim::SimDuration::Seconds(60);

  FleetResult off = RunFleetScenario(options);
  EXPECT_EQ(off.total_scenario_skipped_ticks, 0);
  for (const FleetDeviceResult& device : off.devices) {
    EXPECT_EQ(device.scenario_skipped_ticks, 0);
  }
}

}  // namespace
}  // namespace odapps
