#include "src/apps/composite.h"

#include <gtest/gtest.h>

#include "src/apps/testbed.h"

namespace odapps {
namespace {

TEST(CompositeTest, RunsRequestedIterations) {
  TestBed bed;
  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  bool done = false;
  composite.RunIterations(3, [&] { done = true; });
  bed.sim().RunUntil(odsim::SimTime::Seconds(600));
  EXPECT_TRUE(done);
  EXPECT_EQ(composite.completed_iterations(), 3);
}

TEST(CompositeTest, ZeroIterationsCompletesImmediately) {
  TestBed bed;
  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  bool done = false;
  composite.RunIterations(0, [&] { done = true; });
  EXPECT_TRUE(done);
}

TEST(CompositeTest, SixIterationDurationPlausible) {
  // The paper's six-iteration experiment takes 80-160 seconds; ours lands in
  // the same regime (somewhat longer, dominated by recognition time).
  TestBed bed;
  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  auto m = bed.Measure([&](odsim::EventFn done) {
    composite.RunIterations(6, std::move(done));
  });
  EXPECT_GT(m.seconds, 80.0);
  EXPECT_LT(m.seconds, 250.0);
}

TEST(CompositeTest, PeriodicPacing) {
  TestBed bed;
  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  composite.StartPeriodic(odsim::SimDuration::Seconds(40));
  bed.sim().RunUntil(odsim::SimTime::Seconds(200));
  composite.Stop();
  // Iterations take ~25-30 s < 40 s period: one per period.
  EXPECT_EQ(composite.completed_iterations(), 5);
}

TEST(CompositeTest, PeriodicOverrunStartsImmediately) {
  TestBed bed;
  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  // Period shorter than an iteration: back-to-back execution.
  composite.StartPeriodic(odsim::SimDuration::Seconds(1));
  bed.sim().RunUntil(odsim::SimTime::Seconds(120));
  composite.Stop();
  EXPECT_GE(composite.completed_iterations(), 3);
}

TEST(CompositeTest, StopPreventsFurtherIterations) {
  TestBed bed;
  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  composite.StartPeriodic(odsim::SimDuration::Seconds(30));
  bed.sim().RunUntil(odsim::SimTime::Seconds(40));
  composite.Stop();
  int at_stop = composite.completed_iterations();
  bed.sim().RunUntil(odsim::SimTime::Seconds(400));
  // At most the in-flight iteration completes after Stop.
  EXPECT_LE(composite.completed_iterations(), at_stop + 1);
}

TEST(CompositeTest, HoldsDisplayWhenArbiterGiven) {
  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map(),
                         &bed.arbiter());
  bool done = false;
  composite.RunIterations(1, [&] { done = true; });
  // During the first speech segment the display stays bright (the user is
  // at the screen), even though speech alone would allow it off.
  bed.sim().RunUntil(odsim::SimTime::Seconds(2));
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kBright);
  bed.sim().RunUntil(odsim::SimTime::Seconds(300));
  EXPECT_TRUE(done);
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kOff);
}

TEST(CompositeTest, WithoutArbiterSpeechLeavesDisplayOff) {
  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  CompositeApp composite(&bed.sim(), &bed.speech(), &bed.web(), &bed.map());
  composite.RunIterations(1, nullptr);
  bed.sim().RunUntil(odsim::SimTime::Seconds(2));
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kOff);
}

}  // namespace
}  // namespace odapps
