#include "src/apps/data_objects.h"

#include <gtest/gtest.h>

namespace odapps {
namespace {

TEST(VideoClipsTest, DurationsMatchPaperRange) {
  // "four QuickTime/Cinepak videos from 127 to 226 seconds in length".
  for (const VideoClip& clip : StandardVideoClips()) {
    EXPECT_GE(clip.duration_seconds, 127.0);
    EXPECT_LE(clip.duration_seconds, 226.0);
  }
}

TEST(VideoClipsTest, CompressionReducesBitrateAndDecodeCost) {
  for (const VideoClip& clip : StandardVideoClips()) {
    EXPECT_GT(clip.baseline.bitrate_bps, clip.premiere_b.bitrate_bps);
    EXPECT_GT(clip.premiere_b.bitrate_bps, clip.premiere_c.bitrate_bps);
    EXPECT_GT(clip.baseline.decode_busy, clip.premiere_b.decode_busy);
    EXPECT_GT(clip.premiere_b.decode_busy, clip.premiere_c.decode_busy);
  }
}

TEST(VideoClipsTest, BaselineNearlySaturatesWaveLan) {
  // "much energy is consumed while the processor is idle because of the
  // limited bandwidth of the wireless network" — baseline bitrates sit just
  // below the 2 Mb/s channel.
  for (const VideoClip& clip : StandardVideoClips()) {
    EXPECT_GT(clip.baseline.bitrate_bps, 1.4e6);
    EXPECT_LT(clip.baseline.bitrate_bps, 2.0e6);
  }
}

TEST(VideoClipsTest, TrackAccessorSelects) {
  const VideoClip& clip = StandardVideoClips()[0];
  EXPECT_DOUBLE_EQ(clip.track(VideoTrack::kBaseline).bitrate_bps,
                   clip.baseline.bitrate_bps);
  EXPECT_DOUBLE_EQ(clip.track(VideoTrack::kPremiereC).bitrate_bps,
                   clip.premiere_c.bitrate_bps);
}

TEST(UtterancesTest, LengthsMatchPaperRange) {
  // "four spoken utterances from one to seven seconds in length".
  for (const Utterance& u : StandardUtterances()) {
    EXPECT_GE(u.duration_seconds, 1.0);
    EXPECT_LE(u.duration_seconds, 7.0);
  }
}

TEST(MapsTest, FidelityShrinksTransferSize) {
  for (const MapObject& map : StandardMaps()) {
    EXPECT_LT(map.minor_filter_bytes, map.full_bytes);
    EXPECT_LT(map.secondary_filter_bytes, map.minor_filter_bytes);
    EXPECT_LT(map.cropped_bytes, map.full_bytes);
    EXPECT_LT(map.cropped_secondary_bytes, map.cropped_bytes);
    EXPECT_LT(map.cropped_secondary_bytes, map.secondary_filter_bytes);
  }
}

TEST(MapsTest, FourCities) {
  const auto& maps = StandardMaps();
  EXPECT_EQ(maps.size(), 4u);
  EXPECT_EQ(maps[0].name, "San Jose");
}

TEST(WebImagesTest, SizesMatchPaperRange) {
  // "four GIF images from 110 B to 175 KB in size".
  const auto& images = StandardWebImages();
  EXPECT_EQ(images[0].gif_bytes, 175000u);
  EXPECT_EQ(images[3].gif_bytes, 110u);
}

TEST(WindowsTest, VideoWindowScales) {
  oddisplay::Rect full = VideoWindow(1.0);
  oddisplay::Rect half = VideoWindow(0.5);
  EXPECT_DOUBLE_EQ(half.w, full.w * 0.5);
  EXPECT_DOUBLE_EQ(half.h, full.h * 0.5);
}

TEST(WindowsTest, CroppedMapSmallerThanFull) {
  oddisplay::Rect full = MapWindowFull();
  oddisplay::Rect cropped = MapWindowCropped();
  EXPECT_LT(cropped.w * cropped.h, full.w * full.h);
}

}  // namespace
}  // namespace odapps
