// Schedule record/replay for the bursty workload: an observed stochastic
// run can be reproduced exactly, and hand-written schedules can be driven.

#include <gtest/gtest.h>

#include "src/apps/bursty.h"
#include "src/apps/testbed.h"

namespace odapps {
namespace {

TEST(BurstyReplayTest, RecordsOneEntryPerMinute) {
  TestBed bed;
  BurstyWorkload workload(&bed.sim(), &bed.video(), &bed.speech(), &bed.web(),
                          &bed.map(), &bed.rng());
  workload.Start();
  bed.sim().RunUntil(odsim::SimTime::Seconds(5 * 60 + 1));
  workload.Stop();
  EXPECT_EQ(workload.recorded_schedule().minutes.size(), 6u);  // t=0..5 min.
}

TEST(BurstyReplayTest, ReplayReproducesRecordedStates) {
  // Record a stochastic run...
  MinuteSchedule recorded;
  {
    TestBed bed(TestBed::Options{.seed = 606, .hw_pm = true, .link = {}});
    BurstyWorkload workload(&bed.sim(), &bed.video(), &bed.speech(), &bed.web(),
                            &bed.map(), &bed.rng());
    workload.Start();
    bed.sim().RunUntil(odsim::SimTime::Seconds(10 * 60));
    workload.Stop();
    recorded = workload.recorded_schedule();
  }
  ASSERT_FALSE(recorded.empty());

  // ...replay it under a different seed: the activity states must match
  // minute for minute (only the fine-grained jitter differs).
  TestBed bed(TestBed::Options{.seed = 999, .hw_pm = true, .link = {}});
  BurstyWorkload::Config config;
  config.replay = recorded;
  BurstyWorkload workload(&bed.sim(), &bed.video(), &bed.speech(), &bed.web(),
                          &bed.map(), &bed.rng(), config);
  workload.Start();
  bed.sim().RunUntil(odsim::SimTime::Seconds(10 * 60));
  workload.Stop();
  EXPECT_EQ(workload.recorded_schedule().minutes, recorded.minutes);
}

TEST(BurstyReplayTest, HandWrittenSchedule) {
  // Video-only for two minutes, then everything idle.
  MinuteSchedule schedule;
  schedule.minutes.push_back({true, false, false, false});
  schedule.minutes.push_back({true, false, false, false});
  schedule.minutes.push_back({false, false, false, false});

  TestBed bed(TestBed::Options{.seed = 1, .hw_pm = true, .link = {}});
  BurstyWorkload::Config config;
  config.replay = schedule;
  BurstyWorkload workload(&bed.sim(), &bed.video(), &bed.speech(), &bed.web(),
                          &bed.map(), &bed.rng(), config);
  workload.Start();
  bed.sim().RunUntil(odsim::SimTime::Seconds(30));
  EXPECT_TRUE(workload.video_active());
  EXPECT_FALSE(workload.map_active());
  EXPECT_TRUE(bed.video().playing());
  // After minute 2 the schedule goes idle (and repeats its last entry).
  bed.sim().RunUntil(odsim::SimTime::Seconds(4 * 60));
  EXPECT_FALSE(workload.video_active());
  EXPECT_FALSE(bed.video().playing());
  workload.Stop();
}

}  // namespace
}  // namespace odapps
