#include "src/apps/testbed.h"

#include <gtest/gtest.h>

#include "src/apps/data_objects.h"

namespace odapps {
namespace {

TEST(TestBedTest, MeasureAccountsAllEnergy) {
  TestBed bed;
  auto m = bed.Measure([&](odsim::EventFn done) {
    bed.web().BrowsePage(StandardWebImages()[1], std::move(done));
  });
  // Component energies (plus synergy) sum to the total.
  double component_sum = 0.0;
  for (const auto& [name, joules] : m.by_component) {
    component_sum += joules;
  }
  EXPECT_NEAR(component_sum, m.joules, 1e-6);
  // Process attribution is exhaustive too.
  double process_sum = 0.0;
  for (const auto& [name, joules] : m.by_process) {
    process_sum += joules;
  }
  EXPECT_NEAR(process_sum, m.joules, 1e-6);
}

TEST(TestBedTest, MeasureResetsBetweenCalls) {
  TestBed bed;
  auto first = bed.Measure([&](odsim::EventFn done) {
    bed.web().BrowsePage(StandardWebImages()[1], std::move(done));
  });
  auto second = bed.Measure([&](odsim::EventFn done) {
    bed.web().BrowsePage(StandardWebImages()[1], std::move(done));
  });
  // Same workload, so same ballpark — and crucially not cumulative.
  EXPECT_NEAR(second.joules, first.joules, 0.3 * first.joules);
}

TEST(TestBedTest, HardwarePmTogglesRestingStates) {
  TestBed bed;
  EXPECT_FALSE(bed.hardware_pm());
  bed.SetHardwarePm(true);
  EXPECT_TRUE(bed.hardware_pm());
  EXPECT_EQ(bed.laptop().wavelan().wavelan_state(),
            odpower::WaveLanState::kStandby);
  EXPECT_EQ(bed.laptop().display().display_state(), odpower::DisplayState::kOff);
}

TEST(TestBedTest, PrioritiesFollowSection5) {
  TestBed bed;
  EXPECT_LT(bed.speech().priority(), bed.video().priority());
  EXPECT_LT(bed.video().priority(), bed.map().priority());
  EXPECT_LT(bed.map().priority(), bed.web().priority());
}

TEST(TestBedTest, AllFourAppsRegistered) {
  TestBed bed;
  EXPECT_EQ(bed.viceroy().applications().size(), 4u);
}

TEST(TestBedTest, MeasureForTracksWallTime) {
  TestBed bed;
  auto m = bed.MeasureFor(odsim::SimDuration::Seconds(10));
  EXPECT_DOUBLE_EQ(m.seconds, 10.0);
  // Idle machine: display bright + disk/net idle, about 9.5-10 W.
  EXPECT_GT(m.average_watts(), 8.5);
  EXPECT_LT(m.average_watts(), 11.0);
}

TEST(TestBedTest, SeedsReproduceMeasurements) {
  double joules[2];
  for (int i = 0; i < 2; ++i) {
    TestBed bed(TestBed::Options{.seed = 5, .hw_pm = false, .link = {}});
    auto m = bed.Measure([&](odsim::EventFn done) {
      bed.map().ViewMap(StandardMaps()[2], std::move(done));
    });
    joules[i] = m.joules;
  }
  EXPECT_DOUBLE_EQ(joules[0], joules[1]);
}

}  // namespace
}  // namespace odapps
