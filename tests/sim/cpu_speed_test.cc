#include <gtest/gtest.h>

#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odsim {
namespace {

TEST(CpuSpeedTest, HalfSpeedDoublesWallTime) {
  Simulator sim;
  sim.set_cpu_speed(0.5);
  ProcessId pid = sim.processes().RegisterProcess("p");
  ProcedureId proc = sim.processes().RegisterProcedure("_p");
  SimTime done_at;
  sim.SubmitWork(pid, proc, SimDuration::Seconds(1), [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, SimTime::Seconds(2));
}

TEST(CpuSpeedTest, FullSpeedUnchanged) {
  Simulator sim;
  sim.set_cpu_speed(1.0);
  ProcessId pid = sim.processes().RegisterProcess("p");
  ProcedureId proc = sim.processes().RegisterProcedure("_p");
  SimTime done_at;
  sim.SubmitWork(pid, proc, SimDuration::Seconds(1), [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, SimTime::Seconds(1));
}

TEST(CpuSpeedTest, RoundRobinFairnessPreservedAtReducedSpeed) {
  Simulator sim;
  sim.set_cpu_speed(0.25);
  ProcessId a = sim.processes().RegisterProcess("a");
  ProcessId b = sim.processes().RegisterProcess("b");
  ProcedureId proc = sim.processes().RegisterProcedure("_w");
  SimTime a_done, b_done;
  sim.SubmitWork(a, proc, SimDuration::Seconds(0.5), [&] { a_done = sim.Now(); });
  sim.SubmitWork(b, proc, SimDuration::Seconds(0.5), [&] { b_done = sim.Now(); });
  sim.Run();
  // 1 s total work at quarter speed: 4 s wall, both finishing near the end.
  EXPECT_EQ(b_done, SimTime::Seconds(4));
  EXPECT_GE(a_done, SimTime::Seconds(3.8));
}

TEST(CpuSpeedTest, SpeedChangeAppliesToSubsequentSlices) {
  Simulator sim;
  ProcessId pid = sim.processes().RegisterProcess("p");
  ProcedureId proc = sim.processes().RegisterProcedure("_p");
  SimTime done_at;
  sim.SubmitWork(pid, proc, SimDuration::Seconds(1), [&] { done_at = sim.Now(); });
  // Halve the clock midway through.
  sim.Schedule(SimDuration::Seconds(0.5), [&] { sim.set_cpu_speed(0.5); });
  sim.Run();
  // 0.5 s of work at full speed + 0.5 s of work at half speed = 1.5 s wall.
  EXPECT_NEAR(done_at.seconds(), 1.5, 0.02);
}

// quantum * speed can round to zero microseconds (sub-µs quantum at deep
// clock scaling); the dispatcher must still make forward progress instead
// of rescheduling a zero-length slice at the same timestamp forever.
TEST(CpuSpeedTest, ZeroLengthSliceIsClampedToMinimumProgress) {
  Simulator sim;
  sim.set_cpu_quantum(SimDuration::Micros(1));
  sim.set_cpu_speed(0.001);  // 1 µs quantum * 0.001 rounds to 0 µs of work.
  ProcessId pid = sim.processes().RegisterProcess("p");
  ProcedureId proc = sim.processes().RegisterProcedure("_p");
  SimTime done_at;
  sim.SubmitWork(pid, proc, SimDuration::Micros(10), [&] { done_at = sim.Now(); });
  sim.Run();
  // Each slice retires the 1 µs minimum at 1000 µs of wall time.
  EXPECT_EQ(done_at, SimTime::Micros(10000));
}

TEST(CpuSpeedTest, LaptopScalesPowerCubically) {
  Simulator sim;
  auto laptop = odpower::MakeThinkPad560X(&sim);
  ProcessId pid = sim.processes().RegisterProcess("p");
  ProcedureId proc = sim.processes().RegisterProcedure("_p");

  laptop->SetCpuSpeed(0.5);
  sim.SubmitWork(pid, proc, SimDuration::Seconds(10), nullptr);
  // Busy draw at half speed: 6.0 W * 0.5^3 = 0.75 W.
  EXPECT_NEAR(laptop->cpu().power(), 0.75, 1e-9);
}

TEST(CpuSpeedTest, RaceToIdleBeatsSlowdownForCpuBoundWork) {
  // With cubic power scaling and a large baseline platform draw, finishing
  // fast and halting wins for pure CPU work: the platform's fixed power
  // dominates the stretched runtime.
  auto measure = [](double speed) {
    Simulator sim;
    auto laptop = odpower::MakeThinkPad560X(&sim);
    laptop->SetCpuSpeed(speed);
    ProcessId pid = sim.processes().RegisterProcess("p");
    ProcedureId proc = sim.processes().RegisterProcedure("_p");
    sim.SubmitWork(pid, proc, SimDuration::Seconds(10), nullptr);
    sim.Run();
    return laptop->accounting().TotalJoules(sim.Now());
  };
  // Energy to complete the job, including platform power while it runs.
  double fast = measure(1.0);
  double slow = measure(0.5);
  EXPECT_LT(fast, slow);
}

TEST(CpuSpeedTest, SlowdownWinsOnCpuEnergyAlone) {
  // Looking only at the CPU component, slowing down saves energy (the
  // classic DVS argument): half speed costs 2x time at 1/8 power.
  auto cpu_joules = [](double speed) {
    Simulator sim;
    auto laptop = odpower::MakeThinkPad560X(&sim);
    laptop->SetCpuSpeed(speed);
    ProcessId pid = sim.processes().RegisterProcess("p");
    ProcedureId proc = sim.processes().RegisterProcedure("_p");
    sim.SubmitWork(pid, proc, SimDuration::Seconds(10), nullptr);
    sim.Run();
    int cpu_index = -1;
    for (int i = 0; i < laptop->machine().component_count(); ++i) {
      if (laptop->machine().component(i).name() == "CPU") {
        cpu_index = i;
      }
    }
    return laptop->accounting().ComponentJoules(cpu_index, sim.Now());
  };
  EXPECT_LT(cpu_joules(0.5), cpu_joules(1.0));
}

}  // namespace
}  // namespace odsim
