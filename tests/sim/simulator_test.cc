#include "src/sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

namespace odsim {
namespace {

class RecordingObserver : public CpuObserver {
 public:
  struct Switch {
    SimTime time;
    ProcessId pid;
    ProcedureId proc;
    bool busy;
  };
  void OnCpuContextSwitch(SimTime now, ProcessId pid, ProcedureId proc,
                          bool busy) override {
    switches.push_back({now, pid, proc, busy});
  }
  std::vector<Switch> switches;
};

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), SimTime::Zero());
}

TEST(SimulatorTest, RunAdvancesClockThroughEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.Schedule(SimDuration::Seconds(2), [&] { times.push_back(sim.Now().seconds()); });
  sim.Schedule(SimDuration::Seconds(1), [&] { times.push_back(sim.Now().seconds()); });
  sim.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.Now(), SimTime::Seconds(2));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(SimDuration::Seconds(1), [&] {
    ++fired;
    sim.Schedule(SimDuration::Seconds(1), [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), SimTime::Seconds(2));
}

TEST(SimulatorTest, RunUntilAdvancesToDeadline) {
  Simulator sim;
  bool before = false, after = false;
  sim.Schedule(SimDuration::Seconds(1), [&] { before = true; });
  sim.Schedule(SimDuration::Seconds(10), [&] { after = true; });
  sim.RunUntil(SimTime::Seconds(5));
  EXPECT_TRUE(before);
  EXPECT_FALSE(after);
  EXPECT_EQ(sim.Now(), SimTime::Seconds(5));
  // The late event still fires on a later run.
  sim.RunUntil(SimTime::Seconds(20));
  EXPECT_TRUE(after);
}

TEST(SimulatorTest, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(SimDuration::Seconds(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(SimDuration::Seconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  // Run again resumes.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator sim;
  SimTime fired_at;
  sim.ScheduleAt(SimTime::Seconds(7), [&] { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(fired_at, SimTime::Seconds(7));
}

TEST(SimulatorTest, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.Schedule(SimDuration::Seconds(1), [&] { fired = true; });
  h.Cancel();
  sim.Run();
  EXPECT_FALSE(fired);
}

// -- CPU scheduling ----------------------------------------------------------

TEST(SimulatorCpuTest, SingleWorkItemRunsForItsDuration) {
  Simulator sim;
  ProcessId pid = sim.processes().RegisterProcess("worker");
  ProcedureId proc = sim.processes().RegisterProcedure("_work");
  SimTime done_at;
  sim.SubmitWork(pid, proc, SimDuration::Seconds(1.5), [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, SimTime::Seconds(1.5));
}

TEST(SimulatorCpuTest, ContextReflectsRunningWork) {
  Simulator sim;
  ProcessId pid = sim.processes().RegisterProcess("worker");
  ProcedureId proc = sim.processes().RegisterProcedure("_work");
  EXPECT_FALSE(sim.cpu_busy());
  sim.SubmitWork(pid, proc, SimDuration::Seconds(1), nullptr);
  EXPECT_TRUE(sim.cpu_busy());
  EXPECT_EQ(sim.current_pid(), pid);
  EXPECT_EQ(sim.current_proc(), proc);
  sim.Run();
  EXPECT_FALSE(sim.cpu_busy());
  EXPECT_EQ(sim.current_pid(), kIdlePid);
}

TEST(SimulatorCpuTest, RoundRobinSharesCpuFairly) {
  Simulator sim;
  ProcessId a = sim.processes().RegisterProcess("a");
  ProcessId b = sim.processes().RegisterProcess("b");
  ProcedureId proc = sim.processes().RegisterProcedure("_w");
  SimTime a_done, b_done;
  sim.SubmitWork(a, proc, SimDuration::Seconds(1), [&] { a_done = sim.Now(); });
  sim.SubmitWork(b, proc, SimDuration::Seconds(1), [&] { b_done = sim.Now(); });
  sim.Run();
  // Both finish near 2 s (work conserving), interleaved by quantum.
  EXPECT_GE(a_done, SimTime::Seconds(1.9));
  EXPECT_LE(a_done, SimTime::Seconds(2));
  EXPECT_EQ(b_done, SimTime::Seconds(2));
}

TEST(SimulatorCpuTest, ShortJobFinishesBeforeLongJobCompletes) {
  Simulator sim;
  ProcessId a = sim.processes().RegisterProcess("short");
  ProcessId b = sim.processes().RegisterProcess("long");
  ProcedureId proc = sim.processes().RegisterProcedure("_w");
  SimTime short_done, long_done;
  sim.SubmitWork(b, proc, SimDuration::Seconds(10), [&] { long_done = sim.Now(); });
  sim.SubmitWork(a, proc, SimDuration::Seconds(0.1), [&] { short_done = sim.Now(); });
  sim.Run();
  // The short job shares the CPU and finishes near 0.2 s, not after 10 s.
  EXPECT_LE(short_done, SimTime::Seconds(0.5));
  EXPECT_GE(long_done, SimTime::Seconds(10));
}

TEST(SimulatorCpuTest, ObserverSeesBusyAndIdleTransitions) {
  Simulator sim;
  RecordingObserver observer;
  sim.AddCpuObserver(&observer);
  ProcessId pid = sim.processes().RegisterProcess("worker");
  ProcedureId proc = sim.processes().RegisterProcedure("_w");
  sim.SubmitWork(pid, proc, SimDuration::Seconds(1), nullptr);
  sim.Run();
  ASSERT_GE(observer.switches.size(), 2u);
  EXPECT_EQ(observer.switches.front().pid, pid);
  EXPECT_TRUE(observer.switches.front().busy);
  EXPECT_EQ(observer.switches.back().pid, kIdlePid);
  EXPECT_FALSE(observer.switches.back().busy);
}

TEST(SimulatorCpuTest, CompletionCanSubmitMoreWork) {
  Simulator sim;
  ProcessId pid = sim.processes().RegisterProcess("worker");
  ProcedureId proc = sim.processes().RegisterProcedure("_w");
  SimTime second_done;
  sim.SubmitWork(pid, proc, SimDuration::Seconds(1), [&] {
    sim.SubmitWork(pid, proc, SimDuration::Seconds(1),
                   [&] { second_done = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(second_done, SimTime::Seconds(2));
}

TEST(SimulatorCpuTest, RunnablePidsListsQueuedWork) {
  Simulator sim;
  ProcessId a = sim.processes().RegisterProcess("a");
  ProcessId b = sim.processes().RegisterProcess("b");
  ProcedureId proc = sim.processes().RegisterProcedure("_w");
  EXPECT_TRUE(sim.RunnablePids().empty());
  sim.SubmitWork(a, proc, SimDuration::Seconds(1), nullptr);
  sim.SubmitWork(b, proc, SimDuration::Seconds(1), nullptr);
  std::vector<ProcessId> pids = sim.RunnablePids();
  ASSERT_EQ(pids.size(), 2u);
  EXPECT_EQ(pids[0], a);
  EXPECT_EQ(pids[1], b);
  sim.Run();
  EXPECT_TRUE(sim.RunnablePids().empty());
}

TEST(SimulatorCpuTest, QuantumGovernsInterleavingGranularity) {
  Simulator sim;
  sim.set_cpu_quantum(SimDuration::Millis(100));
  RecordingObserver observer;
  sim.AddCpuObserver(&observer);
  ProcessId a = sim.processes().RegisterProcess("a");
  ProcessId b = sim.processes().RegisterProcess("b");
  ProcedureId proc = sim.processes().RegisterProcedure("_w");
  sim.SubmitWork(a, proc, SimDuration::Seconds(0.3), nullptr);
  sim.SubmitWork(b, proc, SimDuration::Seconds(0.3), nullptr);
  sim.Run();
  // a runs 100ms, b 100ms, a 100ms, ... -> 6 busy switches + final idle.
  int busy_switches = 0;
  for (const auto& s : observer.switches) {
    if (s.busy) {
      ++busy_switches;
    }
  }
  EXPECT_EQ(busy_switches, 6);
}

}  // namespace
}  // namespace odsim
