#include "src/sim/time.h"

#include <gtest/gtest.h>

namespace odsim {
namespace {

TEST(SimTimeTest, Constructors) {
  EXPECT_EQ(SimTime::Micros(1500000).micros(), 1500000);
  EXPECT_EQ(SimTime::Millis(1500).micros(), 1500000);
  EXPECT_EQ(SimTime::Seconds(1.5).micros(), 1500000);
  EXPECT_EQ(SimTime::Minutes(2).micros(), 120000000);
  EXPECT_EQ(SimTime::Zero().micros(), 0);
}

TEST(SimTimeTest, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(SimTime::Seconds(3.25).seconds(), 3.25);
  EXPECT_DOUBLE_EQ(SimTime::Micros(1).seconds(), 1e-6);
}

TEST(SimTimeTest, SecondsRoundsToNearestMicro) {
  EXPECT_EQ(SimTime::Seconds(0.0000014).micros(), 1);
  EXPECT_EQ(SimTime::Seconds(0.0000016).micros(), 2);
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::Seconds(1), SimTime::Seconds(2));
  EXPECT_EQ(SimTime::Seconds(1), SimTime::Millis(1000));
  EXPECT_GE(SimTime::Seconds(2), SimTime::Seconds(2));
}

TEST(SimTimeTest, Arithmetic) {
  SimTime t = SimTime::Seconds(1) + SimTime::Seconds(2);
  EXPECT_EQ(t, SimTime::Seconds(3));
  t -= SimTime::Seconds(1);
  EXPECT_EQ(t, SimTime::Seconds(2));
  t += SimTime::Millis(500);
  EXPECT_EQ(t, SimTime::Seconds(2.5));
  EXPECT_EQ(SimTime::Seconds(3) - SimTime::Seconds(1), SimTime::Seconds(2));
}

TEST(SimTimeTest, ScalarMultiply) {
  EXPECT_EQ(SimTime::Seconds(10) * 0.5, SimTime::Seconds(5));
  EXPECT_EQ(SimTime::Seconds(1) * 2.0, SimTime::Seconds(2));
}

TEST(SimTimeTest, MaxIsLargerThanAnyPracticalTime) {
  EXPECT_GT(SimTime::Max(), SimTime::Seconds(1e12));
}

}  // namespace
}  // namespace odsim
