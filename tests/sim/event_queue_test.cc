#include "src/sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace odsim {
namespace {

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(SimTime::Seconds(3), [&] { order.push_back(3); });
  q.Push(SimTime::Seconds(1), [&] { order.push_back(1); });
  q.Push(SimTime::Seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(SimTime::Seconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.Pop().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.Push(SimTime::Seconds(9), [] {});
  q.Push(SimTime::Seconds(4), [] {});
  EXPECT_EQ(q.NextTime(), SimTime::Seconds(4));
}

TEST(EventQueueTest, CancelledEventIsSkipped) {
  EventQueue q;
  bool fired = false;
  EventHandle handle = q.Push(SimTime::Seconds(1), [&] { fired = true; });
  q.Push(SimTime::Seconds(2), [] {});
  handle.Cancel();
  EXPECT_EQ(q.NextTime(), SimTime::Seconds(2));
  q.Pop();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  EventHandle handle = q.Push(SimTime::Seconds(1), [] {});
  auto popped = q.Pop();
  popped.fn();
  handle.Cancel();  // Must not crash or corrupt.
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PendingLifecycle) {
  EventQueue q;
  EventHandle handle = q.Push(SimTime::Seconds(1), [] {});
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());

  EventHandle fired = q.Push(SimTime::Seconds(2), [] {});
  q.Pop();
  EXPECT_FALSE(fired.pending());

  EventHandle empty;
  EXPECT_FALSE(empty.pending());
}

TEST(EventQueueTest, AllCancelledMeansEmpty) {
  EventQueue q;
  EventHandle a = q.Push(SimTime::Seconds(1), [] {});
  EventHandle b = q.Push(SimTime::Seconds(2), [] {});
  a.Cancel();
  b.Cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CopiedHandleCancelsSameEvent) {
  EventQueue q;
  bool fired = false;
  EventHandle a = q.Push(SimTime::Seconds(1), [&] { fired = true; });
  EventHandle b = a;
  b.Cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace odsim
