#include "src/sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace odsim {
namespace {

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(SimTime::Seconds(3), [&] { order.push_back(3); });
  q.Push(SimTime::Seconds(1), [&] { order.push_back(1); });
  q.Push(SimTime::Seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(SimTime::Seconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.Pop().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.Push(SimTime::Seconds(9), [] {});
  q.Push(SimTime::Seconds(4), [] {});
  EXPECT_EQ(q.NextTime(), SimTime::Seconds(4));
}

TEST(EventQueueTest, CancelledEventIsSkipped) {
  EventQueue q;
  bool fired = false;
  EventHandle handle = q.Push(SimTime::Seconds(1), [&] { fired = true; });
  q.Push(SimTime::Seconds(2), [] {});
  handle.Cancel();
  EXPECT_EQ(q.NextTime(), SimTime::Seconds(2));
  q.Pop();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  EventHandle handle = q.Push(SimTime::Seconds(1), [] {});
  auto popped = q.Pop();
  popped.fn();
  handle.Cancel();  // Must not crash or corrupt.
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PendingLifecycle) {
  EventQueue q;
  EventHandle handle = q.Push(SimTime::Seconds(1), [] {});
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());

  EventHandle fired = q.Push(SimTime::Seconds(2), [] {});
  q.Pop();
  EXPECT_FALSE(fired.pending());

  EventHandle empty;
  EXPECT_FALSE(empty.pending());
}

TEST(EventQueueTest, AllCancelledMeansEmpty) {
  EventQueue q;
  EventHandle a = q.Push(SimTime::Seconds(1), [] {});
  EventHandle b = q.Push(SimTime::Seconds(2), [] {});
  a.Cancel();
  b.Cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CopiedHandleCancelsSameEvent) {
  EventQueue q;
  bool fired = false;
  EventHandle a = q.Push(SimTime::Seconds(1), [&] { fired = true; });
  EventHandle b = a;
  b.Cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, PopIfAtOrBeforeRespectsDeadline) {
  EventQueue q;
  q.Push(SimTime::Seconds(5), [] {});
  EventQueue::Popped popped;
  EXPECT_FALSE(q.PopIfAtOrBefore(SimTime::Seconds(4), &popped));
  EXPECT_FALSE(q.empty());
  ASSERT_TRUE(q.PopIfAtOrBefore(SimTime::Seconds(5), &popped));
  EXPECT_EQ(popped.time, SimTime::Seconds(5));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.PopIfAtOrBefore(SimTime::Max(), &popped));
}

TEST(EventQueueTest, StaleHandleAfterSlotReuseIsInert) {
  EventQueue q;
  bool second_fired = false;
  EventHandle first = q.Push(SimTime::Seconds(1), [] {});
  q.Pop();  // Fires (and recycles) the first event's slot.
  // The recycled slot is reused by the next push; the stale handle must
  // neither report pending nor cancel the new occupant.
  EventHandle second = q.Push(SimTime::Seconds(2), [&] { second_fired = true; });
  EXPECT_FALSE(first.pending());
  first.Cancel();
  EXPECT_TRUE(second.pending());
  q.Pop().fn();
  EXPECT_TRUE(second_fired);
}

// RPC deadline timers are armed per call and almost always cancelled; the
// pending set must stay bounded by the live-event count, not by the total
// cancel traffic.
TEST(EventQueueTest, CancelHeavySoakKeepsHeapBounded) {
  EventQueue q;
  std::vector<int> order;
  constexpr int kRounds = 20000;
  SimTime far = SimTime::Seconds(1e6);
  for (int i = 0; i < kRounds; ++i) {
    // A deadline far in the future, cancelled immediately — the lazy-
    // cancellation worst case: it would never reach the top of the heap.
    EventHandle deadline = q.Push(far, [] {});
    deadline.Cancel();
    // Cancelled closures are released eagerly and compaction keeps the
    // heap itself bounded.
    EXPECT_LE(q.size_for_testing(), 256u) << "round " << i;
    EXPECT_LE(q.cancelled_count_for_testing(), 128u) << "round " << i;
  }
  // A live event scheduled after the churn still pops, in order.
  q.Push(SimTime::Seconds(2), [&] { order.push_back(2); });
  q.Push(SimTime::Seconds(1), [&] { order.push_back(1); });
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Compaction must not perturb the (time, seq) pop order of surviving
// events, including FIFO ties.
TEST(EventQueueTest, CompactionPreservesPopOrder) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 300; ++i) {
    int bucket = i % 10;
    q.Push(SimTime::Seconds(bucket), [&order, i] { order.push_back(i); });
    // Two doomed per live event, so cancelled entries outnumber live ones
    // and the cancel loop crosses the compaction threshold.
    doomed.push_back(q.Push(SimTime::Seconds(1000 + bucket), [] {}));
    doomed.push_back(q.Push(SimTime::Seconds(2000 + bucket), [] {}));
  }
  for (EventHandle& h : doomed) {
    h.Cancel();  // Triggers at least one threshold compaction.
  }
  std::vector<int> popped_order;
  while (!q.empty()) {
    q.Pop().fn();
  }
  // Survivors fire grouped by time bucket, FIFO within a bucket.
  ASSERT_EQ(order.size(), 300u);
  for (size_t i = 1; i < order.size(); ++i) {
    int prev = order[i - 1];
    int cur = order[i];
    if (prev % 10 == cur % 10) {
      EXPECT_LT(prev, cur) << "FIFO violated within an equal-time bucket";
    } else {
      EXPECT_LT(prev % 10, cur % 10) << "time order violated";
    }
  }
}

}  // namespace
}  // namespace odsim
