// Property test: the round-robin CPU scheduler is work-conserving and
// complete under randomized submission patterns — every work item finishes,
// observed busy time equals submitted work, and completions never precede
// submission time plus work.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace odsim {
namespace {

class BusyTimeRecorder : public CpuObserver {
 public:
  void OnCpuContextSwitch(SimTime now, ProcessId pid, ProcedureId /*proc*/,
                          bool busy) override {
    if (current_busy_) {
      busy_seconds_ += (now - since_).seconds();
      per_pid_[current_pid_] += (now - since_).seconds();
    }
    current_busy_ = busy;
    current_pid_ = pid;
    since_ = now;
  }

  double busy_seconds() const { return busy_seconds_; }
  double pid_seconds(ProcessId pid) const {
    auto it = per_pid_.find(pid);
    return it == per_pid_.end() ? 0.0 : it->second;
  }

 private:
  bool current_busy_ = false;
  ProcessId current_pid_ = kIdlePid;
  SimTime since_;
  double busy_seconds_ = 0.0;
  std::map<ProcessId, double> per_pid_;
};

class SchedulerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerPropertyTest, WorkConservingAndComplete) {
  Simulator sim;
  BusyTimeRecorder recorder;
  sim.AddCpuObserver(&recorder);
  odutil::Rng rng(GetParam());

  struct Job {
    SimTime submitted;
    SimDuration work;
    ProcessId pid;
    bool completed = false;
    SimTime completed_at;
  };
  std::vector<Job> jobs(30);

  std::map<ProcessId, double> submitted_per_pid;
  double total_work = 0.0;
  for (Job& job : jobs) {
    double at = rng.Uniform(0.0, 30.0);
    double work = rng.Uniform(0.01, 3.0);
    job.submitted = SimTime::Seconds(at);
    job.work = SimDuration::Seconds(work);
    job.pid = sim.processes().RegisterProcess("p" +
                                              std::to_string(rng.UniformInt(0, 4)));
    submitted_per_pid[job.pid] += work;
    total_work += work;
    sim.ScheduleAt(job.submitted, [&sim, &job] {
      sim.SubmitWork(job.pid, kIdleProc, job.work, [&sim, &job] {
        job.completed = true;
        job.completed_at = sim.Now();
      });
    });
  }

  sim.Run();

  double busy = recorder.busy_seconds();
  // Work durations are rounded to integer microseconds on submission.
  EXPECT_NEAR(busy, total_work, 1e-4) << "seed " << GetParam();

  for (const Job& job : jobs) {
    EXPECT_TRUE(job.completed);
    // A job cannot finish before its own work could possibly execute.
    EXPECT_GE(job.completed_at, job.submitted + job.work);
  }

  // Per-pid busy time matches per-pid submitted work.
  for (const auto& [pid, work] : submitted_per_pid) {
    EXPECT_NEAR(recorder.pid_seconds(pid), work, 1e-4);
  }

  // The CPU ends idle.
  EXPECT_FALSE(sim.cpu_busy());
  EXPECT_EQ(sim.runnable_count(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace odsim
