#include "src/sim/process.h"

#include <gtest/gtest.h>

namespace odsim {
namespace {

TEST(ProcessTableTest, IdleIsPreRegistered) {
  ProcessTable table;
  EXPECT_EQ(table.ProcessName(kIdlePid), "Idle");
  EXPECT_EQ(table.ProcedureName(kIdleProc), "_cpu_halt");
}

TEST(ProcessTableTest, RegistrationIsIdempotent) {
  ProcessTable table;
  ProcessId a = table.RegisterProcess("xanim");
  ProcessId b = table.RegisterProcess("xanim");
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.ProcessName(a), "xanim");
}

TEST(ProcessTableTest, DistinctNamesGetDistinctIds) {
  ProcessTable table;
  ProcessId a = table.RegisterProcess("xanim");
  ProcessId b = table.RegisterProcess("X Server");
  EXPECT_NE(a, b);
}

TEST(ProcessTableTest, ProcedureNamespaceIsIndependent) {
  ProcessTable table;
  ProcedureId p = table.RegisterProcedure("_DecodeFrame");
  EXPECT_EQ(table.ProcedureName(p), "_DecodeFrame");
  EXPECT_EQ(table.process_count(), 1);  // Only Idle.
  EXPECT_EQ(table.procedure_count(), 2);
}

TEST(ProcessTableTest, CountsGrow) {
  ProcessTable table;
  int base = table.process_count();
  table.RegisterProcess("a");
  table.RegisterProcess("b");
  EXPECT_EQ(table.process_count(), base + 2);
}

}  // namespace
}  // namespace odsim
