#include "src/odyssey/fidelity.h"

#include <gtest/gtest.h>

namespace odyssey {
namespace {

TEST(FidelitySpecTest, OrderingAndNames) {
  FidelitySpec spec({"low", "medium", "high"});
  EXPECT_EQ(spec.count(), 3);
  EXPECT_EQ(spec.lowest(), 0);
  EXPECT_EQ(spec.highest(), 2);
  EXPECT_EQ(spec.name(0), "low");
  EXPECT_EQ(spec.name(2), "high");
}

TEST(FidelitySpecTest, Validity) {
  FidelitySpec spec({"only"});
  EXPECT_TRUE(spec.valid(0));
  EXPECT_FALSE(spec.valid(-1));
  EXPECT_FALSE(spec.valid(1));
  EXPECT_EQ(spec.lowest(), spec.highest());
}

}  // namespace
}  // namespace odyssey
