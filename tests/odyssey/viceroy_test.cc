#include "src/odyssey/viceroy.h"

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/odyssey/application.h"
#include "src/odyssey/warden.h"
#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odyssey {
namespace {

class FakeApp : public AdaptiveApplication {
 public:
  FakeApp(std::string name, int priority, int levels)
      : name_(std::move(name)), priority_(priority), spec_([levels] {
          std::vector<std::string> names;
          for (int i = 0; i < levels; ++i) {
            names.push_back("L" + std::to_string(i));
          }
          return names;
        }()) {
    fidelity_ = spec_.highest();
  }

  const std::string& name() const override { return name_; }
  int priority() const override { return priority_; }
  const FidelitySpec& fidelity_spec() const override { return spec_; }
  int current_fidelity() const override { return fidelity_; }
  void SetFidelity(int level) override {
    fidelity_ = level;
    ++set_calls;
  }

  int set_calls = 0;

 private:
  std::string name_;
  int priority_;
  FidelitySpec spec_;
  int fidelity_;
};

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  odnet::Link link{&sim, &laptop->power_manager(), odnet::LinkConfig{}};
  Viceroy viceroy{&sim, &link, &laptop->power_manager()};
};

TEST(ViceroyTest, RegisterAndUnregister) {
  Rig rig;
  FakeApp app("a", 0, 3);
  rig.viceroy.RegisterApplication(&app);
  EXPECT_EQ(rig.viceroy.applications().size(), 1u);
  rig.viceroy.UnregisterApplication(&app);
  EXPECT_TRUE(rig.viceroy.applications().empty());
}

TEST(ViceroyTest, UpcallChangesFidelityAndCounts) {
  Rig rig;
  FakeApp app("a", 0, 3);
  rig.viceroy.RegisterApplication(&app);
  rig.viceroy.IssueUpcall(&app, 1);
  EXPECT_EQ(app.current_fidelity(), 1);
  EXPECT_EQ(rig.viceroy.AdaptationCount(&app), 1);
  EXPECT_EQ(rig.viceroy.TotalAdaptations(), 1);
}

TEST(ViceroyTest, NoopUpcallNotCounted) {
  Rig rig;
  FakeApp app("a", 0, 3);
  rig.viceroy.RegisterApplication(&app);
  rig.viceroy.IssueUpcall(&app, app.current_fidelity());
  EXPECT_EQ(rig.viceroy.AdaptationCount(&app), 0);
  EXPECT_EQ(app.set_calls, 0);
}

TEST(ViceroyTest, ResetAdaptationCounts) {
  Rig rig;
  FakeApp app("a", 0, 3);
  rig.viceroy.RegisterApplication(&app);
  rig.viceroy.IssueUpcall(&app, 0);
  rig.viceroy.ResetAdaptationCounts();
  EXPECT_EQ(rig.viceroy.TotalAdaptations(), 0);
}

TEST(ViceroyTest, WardenRegistryFindsByType) {
  Rig rig;
  rig.viceroy.RegisterWarden(std::make_unique<Warden>("video"));
  EXPECT_NE(rig.viceroy.FindWarden("video"), nullptr);
  EXPECT_EQ(rig.viceroy.FindWarden("speech"), nullptr);
}

TEST(ViceroyTest, ExpectationBelowWindowDegrades) {
  Rig rig;
  FakeApp app("a", 0, 3);
  rig.viceroy.RegisterApplication(&app);
  rig.viceroy.RegisterExpectation(&app, ResourceId::kNetworkBandwidth, 1e6, 2e6);
  rig.viceroy.NotifyResourceLevel(ResourceId::kNetworkBandwidth, 0.5e6);
  EXPECT_EQ(app.current_fidelity(), 1);  // One step down from 2.
}

TEST(ViceroyTest, ExpectationAboveWindowUpgrades) {
  Rig rig;
  FakeApp app("a", 0, 3);
  rig.viceroy.RegisterApplication(&app);
  app.SetFidelity(0);
  rig.viceroy.RegisterExpectation(&app, ResourceId::kNetworkBandwidth, 1e6, 2e6);
  rig.viceroy.NotifyResourceLevel(ResourceId::kNetworkBandwidth, 3e6);
  EXPECT_EQ(app.current_fidelity(), 1);
}

TEST(ViceroyTest, ExpectationInsideWindowDoesNothing) {
  Rig rig;
  FakeApp app("a", 0, 3);
  rig.viceroy.RegisterApplication(&app);
  rig.viceroy.RegisterExpectation(&app, ResourceId::kNetworkBandwidth, 1e6, 2e6);
  rig.viceroy.NotifyResourceLevel(ResourceId::kNetworkBandwidth, 1.5e6);
  EXPECT_EQ(app.current_fidelity(), 2);
  EXPECT_EQ(rig.viceroy.TotalAdaptations(), 0);
}

TEST(ViceroyTest, ExpectationClampedAtLadderEnds) {
  Rig rig;
  FakeApp app("a", 0, 3);
  rig.viceroy.RegisterApplication(&app);
  app.SetFidelity(0);
  rig.viceroy.RegisterExpectation(&app, ResourceId::kNetworkBandwidth, 1e6, 2e6);
  rig.viceroy.NotifyResourceLevel(ResourceId::kNetworkBandwidth, 0.1e6);
  EXPECT_EQ(app.current_fidelity(), 0);  // Already lowest; no change.
}

TEST(ViceroyTest, ClearExpectationStopsNotifications) {
  Rig rig;
  FakeApp app("a", 0, 3);
  rig.viceroy.RegisterApplication(&app);
  rig.viceroy.RegisterExpectation(&app, ResourceId::kEnergy, 100.0, 1e9);
  rig.viceroy.ClearExpectation(&app, ResourceId::kEnergy);
  rig.viceroy.NotifyResourceLevel(ResourceId::kEnergy, 1.0);
  EXPECT_EQ(rig.viceroy.TotalAdaptations(), 0);
}

TEST(ViceroyTest, ResourcesAreIndependent) {
  Rig rig;
  FakeApp app("a", 0, 3);
  rig.viceroy.RegisterApplication(&app);
  rig.viceroy.RegisterExpectation(&app, ResourceId::kEnergy, 100.0, 1e9);
  rig.viceroy.NotifyResourceLevel(ResourceId::kNetworkBandwidth, 0.0);
  EXPECT_EQ(rig.viceroy.TotalAdaptations(), 0);
}

odnet::BandwidthEstimate Unhealthy() {
  odnet::BandwidthEstimate estimate;
  estimate.outage = true;
  return estimate;
}

odnet::BandwidthEstimate Healthy(double bps = 2e6) {
  odnet::BandwidthEstimate estimate;
  estimate.bps = bps;
  return estimate;
}

TEST(ViceroyClampTest, UnhealthyEstimateClampsEveryAppToLowest) {
  Rig rig;
  FakeApp a("a", 0, 5);
  FakeApp b("b", 1, 3);
  rig.viceroy.RegisterApplication(&a);
  rig.viceroy.RegisterApplication(&b);

  rig.viceroy.NotifyLinkHealth(Unhealthy());
  EXPECT_TRUE(rig.viceroy.link_clamped());
  EXPECT_EQ(rig.viceroy.outage_clamps(), 1);
  EXPECT_EQ(a.current_fidelity(), 0);
  EXPECT_EQ(b.current_fidelity(), 0);
  // Further unhealthy reports are the same episode, not a new clamp.
  rig.viceroy.NotifyLinkHealth(Unhealthy());
  EXPECT_EQ(rig.viceroy.outage_clamps(), 1);
}

TEST(ViceroyClampTest, ResourceNotificationsSuppressedWhileClamped) {
  Rig rig;
  FakeApp app("a", 0, 5);
  rig.viceroy.RegisterApplication(&app);
  rig.viceroy.RegisterExpectation(&app, ResourceId::kNetworkBandwidth, 1e6, 2e6);

  rig.viceroy.NotifyLinkHealth(Unhealthy());
  ASSERT_EQ(app.current_fidelity(), 0);
  // A generous bandwidth report must not upgrade past the clamp: the
  // monitor's windowed average lags the outage and cannot be trusted here.
  rig.viceroy.NotifyResourceLevel(ResourceId::kNetworkBandwidth, 3e6);
  EXPECT_EQ(app.current_fidelity(), 0);
}

TEST(ViceroyClampTest, RecoveryNeedsConsecutiveHealthyReports) {
  Rig rig;
  rig.viceroy.set_recovery_hysteresis(3);
  FakeApp app("a", 0, 5);
  rig.viceroy.RegisterApplication(&app);
  app.SetFidelity(2);  // Mid-ladder, so the restore is observable.

  rig.viceroy.NotifyLinkHealth(Unhealthy());
  ASSERT_EQ(app.current_fidelity(), 0);

  rig.viceroy.NotifyLinkHealth(Healthy());
  rig.viceroy.NotifyLinkHealth(Healthy());
  EXPECT_TRUE(rig.viceroy.link_clamped());  // Two of three: still waiting.
  // A relapse restarts the streak from zero.
  rig.viceroy.NotifyLinkHealth(Unhealthy());
  rig.viceroy.NotifyLinkHealth(Healthy());
  rig.viceroy.NotifyLinkHealth(Healthy());
  EXPECT_TRUE(rig.viceroy.link_clamped());
  rig.viceroy.NotifyLinkHealth(Healthy());
  EXPECT_FALSE(rig.viceroy.link_clamped());
  // The pre-clamp fidelity comes back, not the ladder top.
  EXPECT_EQ(app.current_fidelity(), 2);
}

TEST(ViceroyClampTest, HealthyReportsWithoutClampAreIgnored) {
  Rig rig;
  FakeApp app("a", 0, 3);
  rig.viceroy.RegisterApplication(&app);
  rig.viceroy.NotifyLinkHealth(Healthy());
  EXPECT_FALSE(rig.viceroy.link_clamped());
  EXPECT_EQ(rig.viceroy.outage_clamps(), 0);
  EXPECT_EQ(app.current_fidelity(), 2);
}

TEST(ViceroyClampTest, UnregisterDuringClampSkipsItsRestore) {
  Rig rig;
  rig.viceroy.set_recovery_hysteresis(1);
  FakeApp a("a", 0, 5);
  FakeApp b("b", 1, 5);
  rig.viceroy.RegisterApplication(&a);
  rig.viceroy.RegisterApplication(&b);
  a.SetFidelity(3);
  b.SetFidelity(4);

  rig.viceroy.NotifyLinkHealth(Unhealthy());
  rig.viceroy.UnregisterApplication(&b);
  const int b_calls = b.set_calls;
  rig.viceroy.NotifyLinkHealth(Healthy());
  EXPECT_FALSE(rig.viceroy.link_clamped());
  EXPECT_EQ(a.current_fidelity(), 3);
  // The departed app is never touched again.
  EXPECT_EQ(b.set_calls, b_calls);
}

}  // namespace
}  // namespace odyssey
