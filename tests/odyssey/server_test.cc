#include "src/odyssey/server.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/net/link.h"
#include "src/odyssey/viceroy.h"
#include "src/odyssey/warden.h"
#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odyssey {
namespace {

TEST(RemoteServerTest, SingleRequestTakesItsWork) {
  odsim::Simulator sim;
  RemoteServer server(&sim, "test-server");
  odsim::SimTime done_at;
  server.Submit(odsim::SimDuration::Seconds(2), [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, odsim::SimTime::Seconds(2));
  EXPECT_EQ(server.completed_requests(), 1);
  EXPECT_DOUBLE_EQ(server.total_busy_seconds(), 2.0);
}

TEST(RemoteServerTest, RequestsQueueFifo) {
  odsim::Simulator sim;
  RemoteServer server(&sim, "test-server");
  odsim::SimTime first, second;
  server.Submit(odsim::SimDuration::Seconds(2), [&] { first = sim.Now(); });
  server.Submit(odsim::SimDuration::Seconds(1), [&] { second = sim.Now(); });
  EXPECT_EQ(server.queue_depth(), 2);
  sim.Run();
  EXPECT_EQ(first, odsim::SimTime::Seconds(2));
  EXPECT_EQ(second, odsim::SimTime::Seconds(3));
  EXPECT_EQ(server.queue_depth(), 0);
}

TEST(RemoteServerTest, SpeedFactorScalesWork) {
  odsim::Simulator sim;
  RemoteServer server(&sim, "fast-server", 2.0);
  odsim::SimTime done_at;
  server.Submit(odsim::SimDuration::Seconds(2), [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done_at, odsim::SimTime::Seconds(1));
}

// Regression: a stall clear landing at the same timestamp as new submits
// must drain in submission order — backlog first, then the same-timestamp
// submits in the order they arrived, regardless of whether their events run
// before or after the clear's event.
TEST(RemoteServerTest, StallClearAtSubmitTimestampDrainsInSubmissionOrder) {
  odsim::Simulator sim;
  RemoteServer server(&sim, "test-server");
  server.SetStalled(true);

  std::vector<int> order;
  std::vector<odsim::SimTime> at;
  auto track = [&](int id) {
    return [&, id] {
      order.push_back(id);
      at.push_back(sim.Now());
    };
  };
  server.Submit(odsim::SimDuration::Seconds(1), track(0));  // Backlog.

  // Three same-timestamp events at t=3: submit, clear, submit.
  sim.Schedule(odsim::SimDuration::Seconds(3), [&] {
    server.Submit(odsim::SimDuration::Seconds(1), track(1));
  });
  sim.Schedule(odsim::SimDuration::Seconds(3), [&] { server.SetStalled(false); });
  sim.Schedule(odsim::SimDuration::Seconds(3), [&] {
    server.Submit(odsim::SimDuration::Seconds(1), track(2));
  });
  sim.Run();

  ASSERT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(at[0], odsim::SimTime::Seconds(4));
  EXPECT_EQ(at[1], odsim::SimTime::Seconds(5));
  EXPECT_EQ(at[2], odsim::SimTime::Seconds(6));
}

TEST(RemoteServerTest, ZeroWorkCompletesImmediately) {
  odsim::Simulator sim;
  RemoteServer server(&sim, "s");
  bool done = false;
  server.Submit(odsim::SimDuration::Zero(), [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
}

struct WardenRig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  odnet::Link link{&sim, &laptop->power_manager(), odnet::LinkConfig{}};
  Viceroy viceroy{&sim, &link, &laptop->power_manager()};
};

TEST(WardenServerTest, RegistrationCreatesServer) {
  WardenRig rig;
  Warden* warden = rig.viceroy.RegisterWarden(std::make_unique<Warden>("map"));
  ASSERT_NE(warden->server(), nullptr);
  EXPECT_EQ(warden->server()->name(), "map-server");
}

TEST(WardenServerTest, ConcurrentFetchesSerializeAtServer) {
  WardenRig rig;
  Warden* warden = rig.viceroy.RegisterWarden(std::make_unique<Warden>("map"));
  odsim::SimTime first, second;
  // Two fetches with 2 s of server work each; small transfers.
  warden->Fetch(512, 1024, odsim::SimDuration::Seconds(2),
                [&] { first = rig.sim.Now(); });
  warden->Fetch(512, 1024, odsim::SimDuration::Seconds(2),
                [&] { second = rig.sim.Now(); });
  rig.sim.RunUntil(odsim::SimTime::Seconds(20));
  // The second fetch waits for the first's server work: completions at
  // roughly 2 s and 4 s (plus transfer overheads), not both at ~2 s.
  EXPECT_GT((second - first).seconds(), 1.5);
  EXPECT_EQ(warden->server()->completed_requests(), 2);
}

}  // namespace
}  // namespace odyssey
