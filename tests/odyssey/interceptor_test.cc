#include "src/odyssey/interceptor.h"

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odyssey {
namespace {

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  odnet::Link link{&sim, &laptop->power_manager(), odnet::LinkConfig{}};
  Viceroy viceroy{&sim, &link, &laptop->power_manager()};
  Interceptor interceptor{&viceroy};

  Rig() { viceroy.RegisterWarden(std::make_unique<Warden>("map")); }
};

TEST(InterceptorTest, ParsesDataType) {
  EXPECT_EQ(Interceptor::DataTypeOf("/odyssey/map/pittsburgh.usgs"), "map");
  EXPECT_EQ(Interceptor::DataTypeOf("/odyssey/video/clip1.qt"), "video");
  EXPECT_EQ(Interceptor::DataTypeOf("/odyssey/web"), "web");
  EXPECT_EQ(Interceptor::DataTypeOf("/usr/bin/xanim"), "");
  EXPECT_EQ(Interceptor::DataTypeOf("odyssey/map/x"), "");
}

TEST(InterceptorTest, ResolvesOnlyRegisteredTypes) {
  Rig rig;
  EXPECT_TRUE(rig.interceptor.Resolves("/odyssey/map/boston.usgs"));
  EXPECT_FALSE(rig.interceptor.Resolves("/odyssey/speech/u1.wav"));
  EXPECT_FALSE(rig.interceptor.Resolves("/etc/passwd"));
}

TEST(InterceptorTest, ReadRoutesThroughWarden) {
  Rig rig;
  odsim::SimTime done_at;
  bool accepted = rig.interceptor.Read("/odyssey/map/boston.usgs", 512, 250000,
                                       odsim::SimDuration::Seconds(0.5),
                                       [&] { done_at = rig.sim.Now(); });
  EXPECT_TRUE(accepted);
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  // Request (~7 ms) + server 0.5 s + 250 KB reply (~1.005 s).
  EXPECT_GT(done_at, odsim::SimTime::Seconds(1.4));
  EXPECT_LT(done_at, odsim::SimTime::Seconds(1.7));
  EXPECT_EQ(rig.interceptor.intercepted_count(), 1);
}

TEST(InterceptorTest, NonOdysseyPathRejected) {
  Rig rig;
  bool called = false;
  bool accepted = rig.interceptor.Read("/home/user/file", 512, 1000,
                                       odsim::SimDuration::Zero(),
                                       [&] { called = true; });
  EXPECT_FALSE(accepted);
  rig.sim.RunUntil(odsim::SimTime::Seconds(1));
  EXPECT_FALSE(called);
  EXPECT_EQ(rig.interceptor.intercepted_count(), 0);
}

TEST(InterceptorTest, UnknownTypeRejected) {
  Rig rig;
  EXPECT_FALSE(rig.interceptor.Read("/odyssey/speech/u1.wav", 512, 1000,
                                    odsim::SimDuration::Zero(), nullptr));
}

}  // namespace
}  // namespace odyssey
