#include "src/odyssey/warden.h"

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/odyssey/viceroy.h"
#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odyssey {
namespace {

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  odnet::Link link{&sim, &laptop->power_manager(), odnet::LinkConfig{}};
  Viceroy viceroy{&sim, &link, &laptop->power_manager()};
};

TEST(WardenTest, FetchRunsRequestServerReply) {
  Rig rig;
  Warden* warden = rig.viceroy.RegisterWarden(std::make_unique<Warden>("map"));
  odsim::SimTime done_at;
  // 512 B request (~7 ms incl. setup), 1 s server, 250 KB reply (1.005 s).
  warden->Fetch(512, 250000, odsim::SimDuration::Seconds(1),
                [&] { done_at = rig.sim.Now(); });
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  EXPECT_GT(done_at, odsim::SimTime::Seconds(2.0));
  EXPECT_LT(done_at, odsim::SimTime::Seconds(2.1));
}

TEST(WardenTest, DataTypeExposed) {
  Warden warden("web");
  EXPECT_EQ(warden.data_type(), "web");
}

TEST(WardenTest, RegistrationWiresViceroy) {
  Rig rig;
  Warden* warden = rig.viceroy.RegisterWarden(std::make_unique<Warden>("video"));
  EXPECT_EQ(warden->viceroy(), &rig.viceroy);
}

}  // namespace
}  // namespace odyssey
