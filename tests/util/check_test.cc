// Contract checks abort loudly: the library is a measurement instrument,
// so a silent accounting error is worse than a crash.

#include "src/util/check.h"

#include <gtest/gtest.h>

#include "src/odyssey/fidelity.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace {

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ OD_CHECK(1 == 2); }, "OD_CHECK failed");
}

TEST(CheckDeathTest, CheckMsgIncludesMessage) {
  EXPECT_DEATH({ OD_CHECK_MSG(false, "the reason"); }, "the reason");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  OD_CHECK(1 == 1);
  OD_CHECK_MSG(true, "unused");
}

TEST(ContractDeathTest, FidelityOutOfRange) {
  odyssey::FidelitySpec spec({"only"});
  EXPECT_DEATH(spec.name(2), "OD_CHECK failed");
}

TEST(ContractDeathTest, SchedulingInThePast) {
  odsim::Simulator sim;
  sim.Schedule(odsim::SimDuration::Seconds(5), [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(odsim::SimTime::Seconds(1), [] {}),
               "OD_CHECK failed");
}

TEST(ContractDeathTest, NegativeDelayRejected) {
  odsim::Simulator sim;
  EXPECT_DEATH(sim.Schedule(odsim::SimDuration::Seconds(-1), [] {}),
               "OD_CHECK failed");
}

TEST(ContractDeathTest, ZeroWorkRejected) {
  odsim::Simulator sim;
  EXPECT_DEATH(
      sim.SubmitWork(odsim::kIdlePid, odsim::kIdleProc, odsim::SimDuration::Zero(),
                     nullptr),
      "OD_CHECK failed");
}

TEST(ContractDeathTest, InvalidCpuSpeedRejected) {
  odsim::Simulator sim;
  EXPECT_DEATH(sim.set_cpu_speed(0.0), "OD_CHECK failed");
  EXPECT_DEATH(sim.set_cpu_speed(1.5), "OD_CHECK failed");
}

TEST(ContractDeathTest, FitLineNeedsTwoPoints) {
  EXPECT_DEATH(odutil::FitLine({1.0}, {1.0}), "OD_CHECK failed");
}

TEST(ContractDeathTest, UniformBoundsChecked) {
  odutil::Rng rng(1);
  (void)rng;
#ifndef NDEBUG
  EXPECT_DEATH(rng.Uniform(2.0, 1.0), "OD_CHECK failed");
#else
  GTEST_SKIP() << "OD_DCHECK compiled out in NDEBUG builds";
#endif
}

}  // namespace
