#include "src/util/logging.h"

#include <gtest/gtest.h>

namespace odutil {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : previous_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(previous_); }

 private:
  LogLevel previous_;
};

TEST(LoggingTest, SetReturnsPrevious) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(SetLogLevel(LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kNone);
}

TEST(LoggingTest, FilteredMessagesDoNotReachStderr) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kNone);
  testing::internal::CaptureStderr();
  OD_LOG_ERROR("should be filtered %d", 42);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(LoggingTest, EmittedMessagesCarryLevelAndText) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  OD_LOG_WARN("supply low: %.1f J", 12.5);
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[WARN]"), std::string::npos);
  EXPECT_NE(out.find("supply low: 12.5 J"), std::string::npos);
}

TEST(LoggingTest, ThresholdIsInclusive) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  OD_LOG_INFO("below");
  OD_LOG_WARN("at");
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("below"), std::string::npos);
  EXPECT_NE(out.find("at"), std::string::npos);
}

}  // namespace
}  // namespace odutil
