#include "src/util/table.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace odutil {
namespace {

std::string Render(const Table& table) {
  char buffer[8192];
  std::FILE* f = fmemopen(buffer, sizeof(buffer), "w");
  table.Print(f);
  long len = std::ftell(f);
  std::fclose(f);
  return std::string(buffer, static_cast<size_t>(len));
}

TEST(TableTest, RendersHeaderAndRows) {
  Table t("Figure X");
  t.SetHeader({"Name", "Energy (J)"});
  t.AddRow({"Video 1", "1500.0"});
  t.AddRow({"Video 2", "1700.5"});
  std::string out = Render(t);
  EXPECT_NE(out.find("Figure X"), std::string::npos);
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("Video 1"), std::string::npos);
  EXPECT_NE(out.find("1700.5"), std::string::npos);
}

TEST(TableTest, SeparatorRendersRule) {
  Table t("");
  t.SetHeader({"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  std::string out = Render(t);
  // Header rule + separator + bottom rule = at least 3 dashed lines.
  size_t dashes = 0;
  size_t pos = 0;
  while ((pos = out.find("---", pos)) != std::string::npos) {
    ++dashes;
    pos = out.find('\n', pos);
  }
  EXPECT_GE(dashes, 3u);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(10.0, 0), "10");
}

TEST(TableTest, PctFormatsFraction) {
  EXPECT_EQ(Table::Pct(0.305, 1), "30.5%");
  EXPECT_EQ(Table::Pct(1.0), "100%");
}

TEST(TableTest, MeanStdFormat) {
  EXPECT_EQ(Table::MeanStd(10.84, 2.26, 1), "10.8 (2.3)");
}

TEST(TableTest, RangeFormat) {
  EXPECT_EQ(Table::Range(0.31, 0.54), "0.31-0.54");
}

}  // namespace
}  // namespace odutil
