#include "src/util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace odutil {
namespace {

std::string TempPath() {
  return testing::TempDir() + "/csv_test_out.csv";
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CsvEscapeTest, PlainFieldUnchanged) {
  EXPECT_EQ(CsvWriter::Escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::Escape("12.5"), "12.5");
}

TEST(CsvEscapeTest, CommaQuoted) {
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesDoubled) {
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlineQuoted) {
  EXPECT_EQ(CsvWriter::Escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, WritesRows) {
  std::string path = TempPath();
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"t", "supply", "demand"});
    writer.WriteNumericRow({1.5, 13000.0, 12500.25}, 8);
    EXPECT_EQ(writer.rows_written(), 2);
  }
  EXPECT_EQ(ReadAll(path), "t,supply,demand\n1.5,13000,12500.25\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, BadPathReportsNotOk) {
  CsvWriter writer("/nonexistent-dir-xyz/out.csv");
  EXPECT_FALSE(writer.ok());
  writer.WriteRow({"a"});  // Must not crash.
  EXPECT_EQ(writer.rows_written(), 0);
}

}  // namespace
}  // namespace odutil
