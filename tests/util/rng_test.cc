#include "src/util/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace odutil {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform(-3.5, 9.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 9.25);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 10000; ++i) {
    int v = rng.UniformInt(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  double p = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(p, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  constexpr int kTrials = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    double v = rng.Normal(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / kTrials;
  double var = sum2 / kTrials - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  constexpr int kTrials = 100000;
  double sum = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    double v = rng.Exponential(4.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kTrials, 4.0, 0.1);
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  Rng parent1(23);
  Rng child1 = parent1.Fork();
  // A forked child from the same parent state yields the same stream.
  Rng parent2(23);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child1.NextU32(), child2.NextU32());
  }
}

TEST(RngTest, ForkedChildDiffersFromParent) {
  Rng parent(29);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextU32() == child.NextU32()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace odutil
