#include "src/util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace odutil {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(4.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats stats;
  for (double v : values) {
    stats.Add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats stats;
  stats.Add(-3.0);
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
}

TEST(StudentTTest, KnownValues) {
  EXPECT_NEAR(StudentT90(1), 6.314, 1e-3);
  EXPECT_NEAR(StudentT90(4), 2.132, 1e-3);   // Five trials.
  EXPECT_NEAR(StudentT90(9), 1.833, 1e-3);   // Ten trials.
  EXPECT_NEAR(StudentT90(1000), 1.645, 1e-3);
  EXPECT_DOUBLE_EQ(StudentT90(0), 0.0);
}

TEST(SummarizeTest, FiveTrialConfidenceInterval) {
  // The paper reports means of five trials with 90% confidence intervals.
  std::vector<double> samples = {10.0, 11.0, 9.0, 10.5, 9.5};
  Summary s = Summarize(samples);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 10.0);
  EXPECT_NEAR(s.ci90_halfwidth, 2.132 * s.stddev / std::sqrt(5.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 9.0);
  EXPECT_DOUBLE_EQ(s.max, 11.0);
}

TEST(SummarizeTest, SingleSampleHasNoInterval) {
  Summary s = Summarize({5.0});
  EXPECT_DOUBLE_EQ(s.ci90_halfwidth, 0.0);
}

TEST(FitLineTest, ExactLine) {
  std::vector<double> x = {0.0, 5.0, 10.0, 20.0};
  std::vector<double> y;
  for (double xi : x) {
    y.push_back(3.0 + 5.6 * xi);
  }
  LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 5.6, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitLineTest, NoisyLineHighRSquared) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(FitLineTest, FlatLine) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {7.0, 7.0, 7.0};
  LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-12);
}

}  // namespace
}  // namespace odutil
