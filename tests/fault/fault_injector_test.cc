#include "src/fault/fault_injector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/net/rpc.h"
#include "src/odyssey/server.h"
#include "src/power/thinkpad560x.h"
#include "src/powerscope/online_monitor.h"
#include "src/sim/simulator.h"

namespace odfault {
namespace {

FaultPlan Plan(const std::string& spec) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << error;
  return plan;
}

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<odpower::Laptop> laptop = odpower::MakeThinkPad560X(&sim);
  odnet::Link link{&sim, &laptop->power_manager(), odnet::LinkConfig{}};
  odnet::RpcClient rpc{&sim, &link, &laptop->power_manager(), 7};
  odyssey::RemoteServer server{&sim, "test-server"};
  odscope::OnlineMonitor monitor{&sim, &laptop->machine(),
                                 odscope::OnlineMonitorConfig{}, 1};

  FaultInjector MakeInjector() {
    FaultTargets targets;
    targets.link = &link;
    targets.rpc = &rpc;
    targets.pm = &laptop->power_manager();
    targets.servers.push_back(&server);
    targets.monitor = &monitor;
    return FaultInjector(&sim, std::move(targets));
  }

  void RunUntil(double seconds) {
    sim.RunUntil(odsim::SimTime::Seconds(seconds));
  }
};

TEST(FaultInjectorTest, OutageWindowTogglesTheLink) {
  Rig rig;
  FaultInjector injector = rig.MakeInjector();
  injector.Arm(Plan("outage@10+5"));

  rig.RunUntil(9.0);
  EXPECT_FALSE(rig.link.outage());
  EXPECT_FALSE(injector.any_active());
  rig.RunUntil(12.0);
  EXPECT_TRUE(rig.link.outage());
  EXPECT_EQ(injector.active_windows(), 1);
  rig.RunUntil(16.0);
  EXPECT_FALSE(rig.link.outage());
  EXPECT_FALSE(injector.any_active());
  EXPECT_EQ(injector.windows_begun(), 1);
}

TEST(FaultInjectorTest, BandwidthCrashScalesAndRestoresNominal) {
  Rig rig;
  const double nominal = rig.link.bandwidth_bps();
  FaultInjector injector = rig.MakeInjector();
  injector.Arm(Plan("bandwidth@5+10=0.1"));

  rig.RunUntil(6.0);
  EXPECT_DOUBLE_EQ(rig.link.bandwidth_bps(), nominal * 0.1);
  rig.RunUntil(20.0);
  EXPECT_DOUBLE_EQ(rig.link.bandwidth_bps(), nominal);
}

TEST(FaultInjectorTest, LossBurstScalesAndRestoresProbability) {
  Rig rig;
  FaultInjector injector = rig.MakeInjector();
  injector.Arm(Plan("loss@5+10=0.4"));

  rig.RunUntil(6.0);
  EXPECT_DOUBLE_EQ(rig.rpc.config().loss_probability, 0.4);
  rig.RunUntil(20.0);
  EXPECT_DOUBLE_EQ(rig.rpc.config().loss_probability, 0.0);
}

TEST(FaultInjectorTest, StallAndDiskWindowsApplyAndRevert) {
  Rig rig;
  FaultInjector injector = rig.MakeInjector();
  injector.Arm(Plan("stall@5+10;disk@5+10=8"));

  rig.RunUntil(6.0);
  EXPECT_TRUE(rig.server.stalled());
  EXPECT_DOUBLE_EQ(rig.laptop->power_manager().disk_latency_scale(), 8.0);
  rig.RunUntil(20.0);
  EXPECT_FALSE(rig.server.stalled());
  EXPECT_DOUBLE_EQ(rig.laptop->power_manager().disk_latency_scale(), 1.0);
}

TEST(FaultInjectorTest, NestedWindowsRestoreNominalOnlyAtLastEnd) {
  Rig rig;
  const double nominal = rig.link.bandwidth_bps();
  FaultInjector injector = rig.MakeInjector();
  // Second window opens inside the first with a deeper crash; the first
  // window's end must not restore nominal while the second is still open.
  injector.Arm(Plan("bandwidth@5+10=0.5;bandwidth@8+12=0.1"));

  rig.RunUntil(6.0);
  EXPECT_DOUBLE_EQ(rig.link.bandwidth_bps(), nominal * 0.5);
  rig.RunUntil(9.0);
  EXPECT_DOUBLE_EQ(rig.link.bandwidth_bps(), nominal * 0.1);
  EXPECT_EQ(injector.active_windows(), 2);
  rig.RunUntil(16.0);  // First window closed, second still open.
  EXPECT_EQ(injector.active_windows(), 1);
  EXPECT_NE(rig.link.bandwidth_bps(), nominal);
  rig.RunUntil(21.0);
  EXPECT_DOUBLE_EQ(rig.link.bandwidth_bps(), nominal);
  EXPECT_EQ(injector.windows_begun(), 2);
}

TEST(FaultInjectorTest, TelemetryWindowsToggleTheSwitchboard) {
  Rig rig;
  FaultInjector injector = rig.MakeInjector();
  injector.Arm(Plan("dropout@5+5;nan@12+5;stale@20+5;gauge@28+5=2.5"));
  odscope::TelemetryFaults* faults = rig.monitor.telemetry_faults();

  rig.RunUntil(4.0);
  EXPECT_FALSE(faults->any_active());
  rig.RunUntil(6.0);
  EXPECT_FALSE(faults->Corrupt(9.8, 9.8, true).has_value());  // Dropout on.
  rig.RunUntil(13.0);
  EXPECT_TRUE(std::isnan(*faults->Corrupt(9.8, 9.7, true)));  // NaN on.
  rig.RunUntil(21.0);
  EXPECT_DOUBLE_EQ(*faults->Corrupt(9.8, 9.7, true), 9.7);    // Stale on.
  rig.RunUntil(29.0);
  EXPECT_DOUBLE_EQ(*faults->Corrupt(9.8, 9.7, true), 24.5);   // Gauge x2.5.
  rig.RunUntil(40.0);
  EXPECT_FALSE(faults->any_active());  // Every window closed and restored.
  EXPECT_EQ(injector.windows_begun(), 4);
}

TEST(FaultInjectorTest, RampInterpolatesGaugeScaleAndRestores) {
  Rig rig;
  FaultInjector injector = rig.MakeInjector();
  injector.Arm(Plan("ramp@10+20=2"));
  odscope::TelemetryFaults* faults = rig.monitor.telemetry_faults();

  rig.RunUntil(9.0);
  EXPECT_DOUBLE_EQ(faults->gauge_scale(), 1.0);
  // The ramp starts at nominal and interpolates linearly at 1 s ticks:
  // halfway through the window the scale is halfway to the endpoint.
  rig.RunUntil(20.5);
  EXPECT_NEAR(faults->gauge_scale(), 1.5, 1e-12);
  rig.RunUntil(29.5);
  EXPECT_NEAR(faults->gauge_scale(), 1.95, 1e-12);
  // Window end: the scale snaps back to nominal, whatever the tick order.
  rig.RunUntil(31.0);
  EXPECT_DOUBLE_EQ(faults->gauge_scale(), 1.0);
  EXPECT_FALSE(injector.any_active());
}

TEST(FaultInjectorTest, EmptyPlanIsANoop) {
  Rig rig;
  FaultInjector injector = rig.MakeInjector();
  injector.Arm(FaultPlan{});
  rig.RunUntil(5.0);
  EXPECT_EQ(injector.windows_begun(), 0);
  EXPECT_FALSE(injector.any_active());
}

TEST(FaultInjectorDeathTest, ArmRejectsPlanWithoutItsTarget) {
  odsim::Simulator sim;
  FaultInjector injector(&sim, FaultTargets{});  // No link target.
  EXPECT_DEATH(injector.Arm(Plan("outage@1+1")), "OD_CHECK failed");
}

TEST(FaultInjectorDeathTest, ArmRejectsTelemetryPlanWithoutMonitor) {
  odsim::Simulator sim;
  FaultInjector injector(&sim, FaultTargets{});  // No monitor target.
  EXPECT_DEATH(injector.Arm(Plan("dropout@1+1")), "OD_CHECK failed");
}

}  // namespace
}  // namespace odfault
