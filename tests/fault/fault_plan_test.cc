#include "src/fault/fault_plan.h"

#include <gtest/gtest.h>

namespace odfault {
namespace {

FaultPlan MustParse(const std::string& spec) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << error;
  return plan;
}

std::string ParseError(const std::string& spec) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse(spec, &plan, &error)) << spec;
  EXPECT_FALSE(error.empty()) << spec;
  return error;
}

TEST(FaultPlanTest, EmptySpecIsEmptyPlan) {
  FaultPlan plan = MustParse("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.ToString(), "");
}

TEST(FaultPlanTest, ParsesSingleEvent) {
  FaultPlan plan = MustParse("bandwidth@20+30=0.25");
  ASSERT_EQ(plan.events.size(), 1u);
  const FaultEvent& event = plan.events[0];
  EXPECT_EQ(event.kind, FaultKind::kBandwidth);
  EXPECT_DOUBLE_EQ(event.at.seconds(), 20.0);
  EXPECT_DOUBLE_EQ(event.duration.seconds(), 30.0);
  EXPECT_DOUBLE_EQ(event.magnitude, 0.25);
}

TEST(FaultPlanTest, ParsesAllKindsAndRoundTrips) {
  const std::string spec =
      "bandwidth@20+30=0.1;outage@60+10;loss@90+15=0.3;stall@100+5;"
      "disk@110+20=8;dropout@130+10;stale@150+10;nan@170+5;gauge@180+10=3;"
      "ramp@200+60=1.5";
  FaultPlan plan = MustParse(spec);
  ASSERT_EQ(plan.events.size(), 10u);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kOutage);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kLossBurst);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kServerStall);
  EXPECT_EQ(plan.events[4].kind, FaultKind::kDiskLatency);
  EXPECT_EQ(plan.events[5].kind, FaultKind::kSampleDropout);
  EXPECT_EQ(plan.events[6].kind, FaultKind::kStaleTelemetry);
  EXPECT_EQ(plan.events[7].kind, FaultKind::kNanTelemetry);
  EXPECT_EQ(plan.events[8].kind, FaultKind::kGaugeDrift);
  EXPECT_EQ(plan.events[9].kind, FaultKind::kGaugeRamp);
  // ToString is canonical: parsing its own output must reproduce it.
  EXPECT_EQ(plan.ToString(), spec);
  EXPECT_EQ(MustParse(plan.ToString()).ToString(), plan.ToString());
}

TEST(FaultPlanTest, EveryKindRoundTripsIndividually) {
  for (const char* spec :
       {"bandwidth@1.5+2.25=0.125", "outage@0+1", "loss@3+4=0.45",
        "stall@5+6", "disk@7+8=2.5", "dropout@9+10", "stale@11+12",
        "nan@13+14", "gauge@15+16=0.5", "ramp@17+18=1.3"}) {
    FaultPlan plan = MustParse(spec);
    EXPECT_EQ(plan.ToString(), spec);
    EXPECT_EQ(MustParse(plan.ToString()).ToString(), spec);
  }
}

TEST(FaultPlanTest, FractionalSecondsSurviveTheRoundTrip) {
  FaultPlan plan = MustParse("loss@0.5+1.25=0.05");
  EXPECT_DOUBLE_EQ(plan.events[0].at.seconds(), 0.5);
  EXPECT_DOUBLE_EQ(plan.events[0].duration.seconds(), 1.25);
  EXPECT_EQ(MustParse(plan.ToString()).ToString(), plan.ToString());
}

TEST(FaultPlanTest, MagnitudeDefaultsPerKind) {
  EXPECT_DOUBLE_EQ(MustParse("bandwidth@0+1").events[0].magnitude, 0.1);
  EXPECT_DOUBLE_EQ(MustParse("loss@0+1").events[0].magnitude, 0.3);
  EXPECT_DOUBLE_EQ(MustParse("disk@0+1").events[0].magnitude, 8.0);
  EXPECT_DOUBLE_EQ(MustParse("gauge@0+1").events[0].magnitude, 3.0);
  EXPECT_DOUBLE_EQ(MustParse("ramp@0+1").events[0].magnitude, 2.0);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  ParseError("meteor@0+1");          // Unknown kind.
  ParseError("outage");              // No window.
  ParseError("outage@5");            // No duration.
  ParseError("outage@-1+5");         // Negative start.
  ParseError("outage@5+0");          // Zero duration.
  ParseError("outage@x+5");          // Unparseable number.
  ParseError("bandwidth@0+1=0");     // Fraction must be > 0.
  ParseError("bandwidth@0+1=1.5");   // Fraction must be <= 1.
  ParseError("loss@0+1=1");          // Loss must be < 1.
  ParseError("disk@0+1=-2");         // Scale must be > 0.
  ParseError("outage@0+1=0.5");      // Outage takes no magnitude.
  ParseError("stall@0+1=0.5");       // Stall takes no magnitude.
  ParseError("dropout@0+1=0.5");     // Dropout takes no magnitude.
  ParseError("stale@0+1=0.5");       // Stale takes no magnitude.
  ParseError("nan@0+1=0.5");         // NaN takes no magnitude.
  ParseError("gauge@0+1=0");         // Gauge scale must be > 0.
  ParseError("gauge@0+1=-3");        // Gauge scale must be > 0.
  ParseError("ramp@0+1=0");          // Ramp endpoint must be > 0.
  ParseError("ramp@0+1=-1.5");       // Ramp endpoint must be > 0.
}

TEST(FaultPlanTest, EmptyPiecesBetweenSeparatorsAreSkipped) {
  // Tolerates trailing or doubled ';' (easy to produce when gluing specs
  // together on a command line).
  EXPECT_EQ(MustParse("outage@0+1;;loss@2+1=0.3;").events.size(), 2u);
}

TEST(FaultPlanTest, ErrorNamesTheOffendingEvent) {
  EXPECT_NE(ParseError("outage@0+1;meteor@5+1").find("meteor"),
            std::string::npos);
}

TEST(FaultPlanTest, NewlinesSeparateEventsLikeSemicolons) {
  FaultPlan plan = MustParse("outage@0+1\nloss@2+1=0.3\n\n  disk@4+1=2\n");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.ToString(), "outage@0+1;loss@2+1=0.3;disk@4+1=2");
}

// Every rejection names the line, the column, and the offending token, so
// a bad --fault-plan flag is a one-glance fix (same diagnostic shape as
// the scenario grammar).
TEST(FaultPlanTest, ErrorsCarryLineColumnAndToken) {
  struct Case {
    const char* spec;
    const char* expected_position;
    const char* expected_token;
  };
  const Case cases[] = {
      {"meteor@0+1", "line 1, col 1", "'meteor'"},
      {"outage@5", "line 1, col 8", "'5'"},
      {"outage@-1+5", "line 1, col 8", "'-1'"},
      {"outage@5+0", "line 1, col 10", "'0'"},
      {"outage@0+1=0.5", "line 1, col 11", "'=0.5'"},
      {"bandwidth@0+1=1.5", "line 1, col 15", "'1.5'"},
      {"gauge@0+1=x", "line 1, col 11", "'x'"},
      {"outage@0+1;meteor@5+1", "line 1, col 12", "'meteor'"},
      {"outage@0+1\n  meteor@5+1", "line 2, col 3", "'meteor'"},
  };
  for (const Case& c : cases) {
    std::string error = ParseError(c.spec);
    EXPECT_NE(error.find(c.expected_position), std::string::npos)
        << c.spec << " -> " << error;
    EXPECT_NE(error.find(c.expected_token), std::string::npos)
        << c.spec << " -> " << error;
  }
}

TEST(FaultPlanTest, KindNamesMatchTheGrammar) {
  EXPECT_STREQ(FaultKindName(FaultKind::kBandwidth), "bandwidth");
  EXPECT_STREQ(FaultKindName(FaultKind::kOutage), "outage");
  EXPECT_STREQ(FaultKindName(FaultKind::kLossBurst), "loss");
  EXPECT_STREQ(FaultKindName(FaultKind::kServerStall), "stall");
  EXPECT_STREQ(FaultKindName(FaultKind::kDiskLatency), "disk");
  EXPECT_STREQ(FaultKindName(FaultKind::kSampleDropout), "dropout");
  EXPECT_STREQ(FaultKindName(FaultKind::kStaleTelemetry), "stale");
  EXPECT_STREQ(FaultKindName(FaultKind::kNanTelemetry), "nan");
  EXPECT_STREQ(FaultKindName(FaultKind::kGaugeDrift), "gauge");
  EXPECT_STREQ(FaultKindName(FaultKind::kGaugeRamp), "ramp");
}

TEST(FaultPlanTest, TelemetryKindPredicate) {
  EXPECT_TRUE(IsTelemetryFault(FaultKind::kSampleDropout));
  EXPECT_TRUE(IsTelemetryFault(FaultKind::kStaleTelemetry));
  EXPECT_TRUE(IsTelemetryFault(FaultKind::kNanTelemetry));
  EXPECT_TRUE(IsTelemetryFault(FaultKind::kGaugeDrift));
  EXPECT_TRUE(IsTelemetryFault(FaultKind::kGaugeRamp));
  EXPECT_FALSE(IsTelemetryFault(FaultKind::kBandwidth));
  EXPECT_FALSE(IsTelemetryFault(FaultKind::kOutage));
  EXPECT_FALSE(IsTelemetryFault(FaultKind::kLossBurst));
  EXPECT_FALSE(IsTelemetryFault(FaultKind::kServerStall));
  EXPECT_FALSE(IsTelemetryFault(FaultKind::kDiskLatency));
}

}  // namespace
}  // namespace odfault
