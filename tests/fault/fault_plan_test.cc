#include "src/fault/fault_plan.h"

#include <gtest/gtest.h>

namespace odfault {
namespace {

FaultPlan MustParse(const std::string& spec) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << error;
  return plan;
}

std::string ParseError(const std::string& spec) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse(spec, &plan, &error)) << spec;
  EXPECT_FALSE(error.empty()) << spec;
  return error;
}

TEST(FaultPlanTest, EmptySpecIsEmptyPlan) {
  FaultPlan plan = MustParse("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.ToString(), "");
}

TEST(FaultPlanTest, ParsesSingleEvent) {
  FaultPlan plan = MustParse("bandwidth@20+30=0.25");
  ASSERT_EQ(plan.events.size(), 1u);
  const FaultEvent& event = plan.events[0];
  EXPECT_EQ(event.kind, FaultKind::kBandwidth);
  EXPECT_DOUBLE_EQ(event.at.seconds(), 20.0);
  EXPECT_DOUBLE_EQ(event.duration.seconds(), 30.0);
  EXPECT_DOUBLE_EQ(event.magnitude, 0.25);
}

TEST(FaultPlanTest, ParsesAllKindsAndRoundTrips) {
  const std::string spec =
      "bandwidth@20+30=0.1;outage@60+10;loss@90+15=0.3;stall@100+5;"
      "disk@110+20=8";
  FaultPlan plan = MustParse(spec);
  ASSERT_EQ(plan.events.size(), 5u);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kOutage);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kLossBurst);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kServerStall);
  EXPECT_EQ(plan.events[4].kind, FaultKind::kDiskLatency);
  // ToString is canonical: parsing its own output must reproduce it.
  EXPECT_EQ(plan.ToString(), spec);
  EXPECT_EQ(MustParse(plan.ToString()).ToString(), plan.ToString());
}

TEST(FaultPlanTest, FractionalSecondsSurviveTheRoundTrip) {
  FaultPlan plan = MustParse("loss@0.5+1.25=0.05");
  EXPECT_DOUBLE_EQ(plan.events[0].at.seconds(), 0.5);
  EXPECT_DOUBLE_EQ(plan.events[0].duration.seconds(), 1.25);
  EXPECT_EQ(MustParse(plan.ToString()).ToString(), plan.ToString());
}

TEST(FaultPlanTest, MagnitudeDefaultsPerKind) {
  EXPECT_DOUBLE_EQ(MustParse("bandwidth@0+1").events[0].magnitude, 0.1);
  EXPECT_DOUBLE_EQ(MustParse("loss@0+1").events[0].magnitude, 0.3);
  EXPECT_DOUBLE_EQ(MustParse("disk@0+1").events[0].magnitude, 8.0);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  ParseError("meteor@0+1");          // Unknown kind.
  ParseError("outage");              // No window.
  ParseError("outage@5");            // No duration.
  ParseError("outage@-1+5");         // Negative start.
  ParseError("outage@5+0");          // Zero duration.
  ParseError("outage@x+5");          // Unparseable number.
  ParseError("bandwidth@0+1=0");     // Fraction must be > 0.
  ParseError("bandwidth@0+1=1.5");   // Fraction must be <= 1.
  ParseError("loss@0+1=1");          // Loss must be < 1.
  ParseError("disk@0+1=-2");         // Scale must be > 0.
  ParseError("outage@0+1=0.5");      // Outage takes no magnitude.
  ParseError("stall@0+1=0.5");       // Stall takes no magnitude.
}

TEST(FaultPlanTest, EmptyPiecesBetweenSeparatorsAreSkipped) {
  // Tolerates trailing or doubled ';' (easy to produce when gluing specs
  // together on a command line).
  EXPECT_EQ(MustParse("outage@0+1;;loss@2+1=0.3;").events.size(), 2u);
}

TEST(FaultPlanTest, ErrorNamesTheOffendingEvent) {
  EXPECT_NE(ParseError("outage@0+1;meteor@5+1").find("meteor"),
            std::string::npos);
}

TEST(FaultPlanTest, KindNamesMatchTheGrammar) {
  EXPECT_STREQ(FaultKindName(FaultKind::kBandwidth), "bandwidth");
  EXPECT_STREQ(FaultKindName(FaultKind::kOutage), "outage");
  EXPECT_STREQ(FaultKindName(FaultKind::kLossBurst), "loss");
  EXPECT_STREQ(FaultKindName(FaultKind::kServerStall), "stall");
  EXPECT_STREQ(FaultKindName(FaultKind::kDiskLatency), "disk");
}

}  // namespace
}  // namespace odfault
