// Seeded chaos soak (`ctest -L chaos`): deterministic fault plans drive
// the full goal-directed scenario under invariant checks.  Half the seeds
// draw purely random plans (2-6 overlapping windows across every kind the
// grammar knows); the other half draw *scenario-derived* plans — a named
// user-behavior scenario supplies both the workload timeline and its
// coverage-gap environment, and GenerateScenarioChaosPlan layers realistic
// telemetry noise on top.  Either way the run must preserve the
// simulator's physical invariants no matter what the plan does:
//
//   * energy conservation: total accounted energy equals the sum of
//     per-component energy plus the synergy term, at every probe tick;
//   * monotone battery drain: the true residual never increases;
//   * no negative component power;
//   * termination: the scenario ends (goal met or supply exhausted)
//     before the overrun safety valve, for every plan;
//   * controller health: the director never ends a run wedged in safe
//     mode — every fault window leaves recovery slack behind it.
//
// Every run also records its power trace (the --trace path), and the trace
// must stay well-formed under chaos: monotone segment times, finite
// non-negative draws, and an integral that reproduces the accounting total.
//
// The scenario-mode gauge noise sits inside the drift sentinel's
// divergence band by construction, so any drift episode those runs record
// is a false positive; a final test bounds their rate.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/apps/goal_scenario.h"
#include "src/fault/chaos.h"
#include "src/fault/fault_plan.h"
#include "src/scenario/driver.h"
#include "src/scenario/library.h"
#include "src/trace/power_trace.h"

namespace {

// Runs one goal-directed scenario under `options` (seed, budget, goal, and
// fault plan already set) and checks every physical invariant above.
// `plan_text` labels failures with the repro spelling.
odapps::GoalScenarioResult SoakRun(odapps::GoalScenarioOptions options,
                                   const std::string& plan_text) {
  options.trace = true;
  // The soak runs the full robustness stack: the learned second estimator
  // and the drift sentinel are armed, so gauge faults — step and slow ramp
  // alike — exercise the cross-check, and its residual corrections must
  // preserve every invariant below.
  options.learned_model = true;
  options.director.drift_sentinel.enabled = true;

  double last_residual = options.initial_joules;
  int ticks = 0;
  options.tick_probe = [&](odapps::TestBed& bed,
                           odpower::EnergySupply& supply) {
    odsim::SimTime now = bed.sim().Now();
    odpower::EnergyAccounting& acct = bed.laptop().accounting();
    odpower::Machine& machine = bed.laptop().machine();

    // Energy conservation: the whole is the sum of its parts.
    double total = acct.TotalJoules(now);
    double parts = acct.SynergyJoules(now);
    for (int i = 0; i < machine.component_count(); ++i) {
      EXPECT_GE(machine.component(i).power(), 0.0)
          << machine.component(i).name() << " draws negative power at t="
          << now.seconds();
      parts += acct.ComponentJoules(i, now);
    }
    EXPECT_NEAR(total, parts, 1e-6 * std::max(1.0, total))
        << "accounting leak at t=" << now.seconds();

    // Monotone drain: no fault may put energy back into the battery.
    double residual = supply.ResidualJoules(now);
    EXPECT_LE(residual, last_residual + 1e-9)
        << "residual rose at t=" << now.seconds();
    EXPECT_GE(residual, 0.0);
    last_residual = residual;
    ++ticks;
  };

  odapps::GoalScenarioResult result = odapps::RunGoalScenario(options);

  // Termination: the run decided its outcome and never hit the overrun
  // safety valve.
  EXPECT_NE(result.outcome, odenergy::GoalOutcome::kRunning)
      << "plan " << plan_text;
  EXPECT_LE(result.elapsed_seconds,
            options.goal.seconds() + options.max_overrun.seconds() - 1.0)
      << "plan " << plan_text;
  EXPECT_GT(ticks, 0);

  // Controller health: every fault window leaves recovery slack, so a run
  // still wedged in safe mode at the end is a liveness bug.
  EXPECT_NE(result.final_health, odenergy::ControllerHealth::kSafeMode)
      << "plan " << plan_text;

  // The director's residual estimate stayed finite and sane.
  EXPECT_TRUE(std::isfinite(result.estimated_residual_joules));
  EXPECT_GE(result.estimated_residual_joules, 0.0);
  EXPECT_LE(result.estimated_residual_joules, options.initial_joules);

  // Drift-sentinel bookkeeping stayed coherent no matter what the plan
  // threw at the gauge: episodes imply a detection time, time under
  // verdict is bounded by the run, and the correction never went
  // non-finite.
  EXPECT_TRUE(std::isfinite(result.drift_correction_joules));
  EXPECT_GE(result.drift_seconds, 0.0);
  EXPECT_LE(result.drift_seconds, result.elapsed_seconds + 1e-9);
  if (result.drift_entries > 0) {
    EXPECT_TRUE(result.first_drift_detected_seconds.has_value());
    if (result.first_drift_detected_seconds.has_value()) {
      EXPECT_GE(*result.first_drift_detected_seconds, 0.0);
      EXPECT_LE(*result.first_drift_detected_seconds, result.elapsed_seconds);
    }
  } else {
    EXPECT_FALSE(result.first_drift_detected_seconds.has_value());
  }

  // The recorded power trace survived the chaos intact: monotone and RLE
  // by construction (Validate), every draw finite and non-negative, and
  // its integral reproduces the accounting total — faults may reshape the
  // profile but must not leak energy between the two views.
  EXPECT_NE(result.trace, nullptr) << "plan " << plan_text;
  if (result.trace != nullptr) {
    std::string trace_error;
    EXPECT_TRUE(result.trace->Validate(&trace_error))
        << trace_error << " under plan " << plan_text;
    for (const odtrace::ComponentTrace& component : result.trace->components) {
      for (const odtrace::TraceSegment& segment : component.segments) {
        EXPECT_TRUE(std::isfinite(segment.watts)) << component.name;
        EXPECT_GE(segment.watts, 0.0)
            << component.name << " at t=" << segment.start_us * 1e-6;
      }
    }
    EXPECT_NEAR(result.trace->TotalJoules(), result.accounted_joules, 1e-9)
        << "trace/accounting disagreement under plan " << plan_text;
  }
  return result;
}

// Builds the scenario-driven soak options for one seed: the scenario's
// behavior timeline as workload, its coverage gaps plus seeded telemetry
// noise as the plan.
odapps::GoalScenarioOptions ScenarioSoakOptions(uint64_t seed,
                                                const odscenario::Scenario&
                                                    scenario,
                                                odfault::FaultPlan* plan_out) {
  odfault::ScenarioChaosConfig config;
  config.horizon_seconds = scenario.Duration().seconds();
  odfault::FaultPlan plan = odfault::GenerateScenarioChaosPlan(
      seed, scenario.DerivedFaultPlan(), config);
  odapps::GoalScenarioOptions options;
  options.seed = seed;
  options.goal = scenario.Duration();
  // A 12 W allowance: busy scenarios adapt but complete, so the telemetry
  // noise windows are actually lived through.
  options.initial_joules = 12.0 * scenario.Duration().seconds();
  // The plan above already carries the scenario's gap windows; deriving
  // the environment again would double-disturb the run.
  odscenario::ApplyScenarioWorkload(scenario, &options, nullptr,
                                    /*derive_environment=*/false);
  options.fault_plan = plan;
  if (plan_out != nullptr) {
    *plan_out = plan;
  }
  return options;
}

class ChaosSoakTest : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSoakTest, InvariantsHoldUnderRandomPlan) {
  const uint64_t seed = 0xC0FFEEULL + static_cast<uint64_t>(GetParam());
  odfault::FaultPlan plan = odfault::GenerateChaosPlan(seed);
  ASSERT_FALSE(plan.empty());

  // The generated plan must survive the canonical round-trip: a plan we
  // cannot replay from its artifact stamp is not a reproducible test.
  odfault::FaultPlan reparsed;
  std::string error;
  ASSERT_TRUE(odfault::FaultPlan::Parse(plan.ToString(), &reparsed, &error))
      << error;
  EXPECT_EQ(plan.ToString(), reparsed.ToString());

  odapps::GoalScenarioOptions options;
  options.seed = seed;
  options.initial_joules = 4000.0;
  options.goal = odsim::SimDuration::Seconds(300);  // Covers the default
                                                    // 240 s chaos horizon.
  options.fault_plan = plan;
  SoakRun(std::move(options), plan.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoakTest, ::testing::Range(0, 25));

class ScenarioChaosSoakTest : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioChaosSoakTest, InvariantsHoldUnderScenarioPlan) {
  const uint64_t seed = 0xC0FFEEULL + static_cast<uint64_t>(GetParam());
  const auto& library = odscenario::ScenarioLibrary();
  const odscenario::Scenario& scenario =
      library[static_cast<size_t>(GetParam()) % library.size()];

  odfault::FaultPlan plan;
  odapps::GoalScenarioOptions options =
      ScenarioSoakOptions(seed, scenario, &plan);

  // The layered plan replays from its canonical stamp too.
  odfault::FaultPlan reparsed;
  std::string error;
  ASSERT_TRUE(odfault::FaultPlan::Parse(plan.ToString(), &reparsed, &error))
      << error;
  EXPECT_EQ(plan.ToString(), reparsed.ToString());

  SoakRun(std::move(options),
          scenario.name + " + " + plan.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioChaosSoakTest,
                         ::testing::Range(25, 50));

// The scenario-mode gauge noise stays inside the sentinel's divergence
// band, so every drift episode under these plans is a false positive.
// Their rate must stay bounded — a sentinel that cries wolf under
// realistic gauge wobble would be disarmed in practice.  One test (not a
// parameterized family) so the rate is computed over all seeds in one
// process.
TEST(ScenarioChaosFalsePositives, DriftRateBoundedUnderRealisticNoise) {
  const auto& library = odscenario::ScenarioLibrary();
  const int kRuns = 10;
  int false_positives = 0;
  for (int i = 0; i < kRuns; ++i) {
    const uint64_t seed = 0xFA15EULL + static_cast<uint64_t>(i);
    const odscenario::Scenario& scenario =
        library[static_cast<size_t>(i) % library.size()];
    odfault::FaultPlan plan;
    odapps::GoalScenarioOptions options =
        ScenarioSoakOptions(seed, scenario, &plan);
    options.trace = false;
    options.learned_model = true;
    options.director.drift_sentinel.enabled = true;
    odapps::GoalScenarioResult result = odapps::RunGoalScenario(options);
    if (result.drift_entries > 0) {
      ++false_positives;
    }
  }
  EXPECT_LE(false_positives, 2)
      << false_positives << "/" << kRuns
      << " runs flagged drift under in-band gauge noise";
}

}  // namespace
