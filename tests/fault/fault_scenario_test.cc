// End-to-end graceful degradation: the full adaptive workload under fault
// plans, asserting the liveness and clamp/recovery contract the odfault
// subsystem exists to provide.

#include "src/fault/fault_scenario.h"

#include <gtest/gtest.h>

namespace odfault {
namespace {

FaultScenarioOptions WithPlan(const std::string& spec, uint64_t seed = 1) {
  FaultScenarioOptions options;
  options.seed = seed;
  options.duration = odsim::SimDuration::Seconds(120);
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse(spec, &options.plan, &error)) << error;
  return options;
}

TEST(FaultScenarioTest, CleanRunCompletesWithoutClampsOrFailures) {
  FaultScenarioResult result = RunFaultScenario(WithPlan(""));
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.pages_browsed, 0);
  EXPECT_GT(result.maps_viewed, 0);
  EXPECT_GT(result.utterances_recognized, 0);
  EXPECT_GT(result.chunks_played, 0);
  EXPECT_EQ(result.outage_clamps, 0);
  EXPECT_EQ(result.failed_fetches, 0);
  EXPECT_EQ(result.pages_degraded, 0);
  EXPECT_EQ(result.maps_degraded, 0);
  EXPECT_DOUBLE_EQ(result.clamped_seconds, 0.0);
}

TEST(FaultScenarioTest, IdenticalSeedAndPlanReproduceExactly) {
  const FaultScenarioOptions options =
      WithPlan("outage@30+20;loss@60+20=0.3", 5);
  FaultScenarioResult a = RunFaultScenario(options);
  FaultScenarioResult b = RunFaultScenario(options);
  EXPECT_DOUBLE_EQ(a.joules, b.joules);
  EXPECT_EQ(a.pages_browsed, b.pages_browsed);
  EXPECT_EQ(a.maps_viewed, b.maps_viewed);
  EXPECT_EQ(a.chunks_played, b.chunks_played);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.request_losses, b.request_losses);
  EXPECT_EQ(a.reply_losses, b.reply_losses);
  EXPECT_EQ(a.failed_fetches, b.failed_fetches);
  EXPECT_DOUBLE_EQ(a.clamped_seconds, b.clamped_seconds);
}

TEST(FaultScenarioTest, DifferentSeedsDiverge) {
  FaultScenarioResult a = RunFaultScenario(WithPlan("loss@20+40=0.3", 1));
  FaultScenarioResult b = RunFaultScenario(WithPlan("loss@20+40=0.3", 2));
  EXPECT_NE(a.joules, b.joules);
}

TEST(FaultScenarioTest, OutageClampsToLowestFidelityAndRecovers) {
  FaultScenarioResult result = RunFaultScenario(WithPlan("outage@30+20"));
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.outage_clamps, 1);
  EXPECT_GT(result.clamped_seconds, 0.0);
  // During the outage every adaptive app sat at its lowest fidelity...
  EXPECT_EQ(result.min_video_fidelity, 0);
  EXPECT_EQ(result.min_web_fidelity, 0);
  EXPECT_EQ(result.min_map_fidelity, 0);
  // ...and after it ended the clamp lifted and fidelity came back.
  EXPECT_FALSE(result.clamped_at_end);
  EXPECT_GT(result.final_video_fidelity, 0);
  EXPECT_GT(result.final_web_fidelity, 0);
  EXPECT_GT(result.final_map_fidelity, 0);
}

TEST(FaultScenarioTest, PermanentOutageNeverWedgesTheWorkload) {
  // The outage outlives the scenario: no recovery is possible, yet every
  // loop must keep making (degraded) progress and no retry can run
  // unbounded — the core liveness property.
  FaultScenarioResult result = RunFaultScenario(WithPlan("outage@20+500"));
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.pages_browsed, 0);
  EXPECT_GT(result.maps_viewed, 0);
  EXPECT_GT(result.utterances_recognized, 0);
  EXPECT_TRUE(result.clamped_at_end);
  EXPECT_GT(result.deadlines_exceeded + result.retries_exhausted, 0);
  EXPECT_GT(result.failed_fetches, 0);
  // Work shed during the outage is degraded, not queued: pages fall back
  // to text-only layout and maps redraw from cache.
  EXPECT_GT(result.pages_degraded + result.maps_degraded, 0);
}

TEST(FaultScenarioTest, DegradedUnitsStillCountAsProgress) {
  FaultScenarioResult clean = RunFaultScenario(WithPlan(""));
  FaultScenarioResult crashed =
      RunFaultScenario(WithPlan("bandwidth@30+40=0.1"));
  EXPECT_TRUE(crashed.completed);
  EXPECT_GT(crashed.pages_degraded + crashed.maps_degraded, 0);
  // Degradation costs some throughput but not collapse.
  EXPECT_GT(crashed.pages_browsed, clean.pages_browsed / 2);
  // And a degraded run must not burn extra energy in retry storms.
  EXPECT_LT(crashed.joules, clean.joules * 1.25);
}

TEST(FaultScenarioTest, ServerStallSurfacesTypedFailures) {
  FaultScenarioResult result = RunFaultScenario(WithPlan("stall@30+25"));
  EXPECT_TRUE(result.completed);
  // A stalled server holds replies past the deadline; the wardens see
  // typed failures instead of hanging.
  EXPECT_GT(result.deadlines_exceeded, 0);
  EXPECT_GT(result.failed_fetches, 0);
}

TEST(FaultScenarioTest, DiskLatencySpikeSlowsRecognitionOnly) {
  FaultScenarioResult clean = RunFaultScenario(WithPlan(""));
  FaultScenarioResult spiked = RunFaultScenario(WithPlan("disk@10+100=16"));
  EXPECT_TRUE(spiked.completed);
  // Paged vocabulary recognition slows down; the network loops don't care.
  EXPECT_LT(spiked.utterances_recognized, clean.utterances_recognized);
  EXPECT_EQ(spiked.failed_fetches, 0);
  EXPECT_EQ(spiked.outage_clamps, 0);
}

}  // namespace
}  // namespace odfault
