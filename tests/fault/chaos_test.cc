#include "src/fault/chaos.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace odfault {
namespace {

TEST(ChaosPlanTest, SameSeedSamePlan) {
  for (uint64_t seed : {0ULL, 1ULL, 42ULL, 0xC0FFEEULL}) {
    FaultPlan a = GenerateChaosPlan(seed);
    FaultPlan b = GenerateChaosPlan(seed);
    EXPECT_EQ(a.ToString(), b.ToString()) << "seed " << seed;
  }
}

TEST(ChaosPlanTest, SeedsProduceDistinctPlans) {
  std::set<std::string> specs;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    specs.insert(GenerateChaosPlan(seed).ToString());
  }
  // Collisions are astronomically unlikely given the draw space; a cluster
  // of duplicates would mean the seed is not actually reaching the RNG.
  EXPECT_GE(specs.size(), 48u);
}

TEST(ChaosPlanTest, EventsRespectTheConfiguredBounds) {
  ChaosPlanConfig config;
  config.min_events = 3;
  config.max_events = 5;
  config.horizon_seconds = 100.0;
  config.min_duration_seconds = 2.0;
  config.max_duration_seconds = 9.0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    FaultPlan plan = GenerateChaosPlan(seed, config);
    EXPECT_GE(plan.events.size(), 3u) << "seed " << seed;
    EXPECT_LE(plan.events.size(), 5u) << "seed " << seed;
    for (const FaultEvent& event : plan.events) {
      EXPECT_GE(event.at.seconds(), 0.0);
      EXPECT_LT(event.at.seconds(), 100.0);
      EXPECT_GE(event.duration.seconds(), 2.0);
      EXPECT_LE(event.duration.seconds(), 9.0);
    }
  }
}

TEST(ChaosPlanTest, GeneratedPlansRoundTripThroughTheGrammar) {
  // The plan's canonical spelling is the repro command line for a soak
  // failure, so every generated plan must survive parse -> print intact.
  for (uint64_t seed = 0; seed < 200; ++seed) {
    FaultPlan plan = GenerateChaosPlan(seed);
    FaultPlan reparsed;
    std::string error;
    ASSERT_TRUE(FaultPlan::Parse(plan.ToString(), &reparsed, &error))
        << "seed " << seed << ": " << error;
    EXPECT_EQ(reparsed.ToString(), plan.ToString()) << "seed " << seed;
  }
}

TEST(ChaosPlanTest, EventuallyCoversEveryKind) {
  std::set<FaultKind> seen;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    for (const FaultEvent& event : GenerateChaosPlan(seed).events) {
      seen.insert(event.kind);
    }
  }
  EXPECT_EQ(seen.size(), 10u);  // All kinds reachable, telemetry included.
}

TEST(ChaosPlanTest, WholeWindowsStayInsideTheHorizon) {
  // Not just the start: start + duration <= horizon, so no window is dead
  // weight past the end of the run it disturbs.
  ChaosPlanConfig config;
  config.horizon_seconds = 120.0;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    for (const FaultEvent& event : GenerateChaosPlan(seed, config).events) {
      EXPECT_LE(event.at.seconds() + event.duration.seconds(),
                config.horizon_seconds + 1e-9)
          << "seed " << seed;
    }
  }
}

TEST(ChaosPlanTest, EventsAreOrderedByStart) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    const FaultPlan plan = GenerateChaosPlan(seed);
    for (size_t i = 1; i < plan.events.size(); ++i) {
      EXPECT_LE(plan.events[i - 1].at, plan.events[i].at) << "seed " << seed;
    }
  }
}

TEST(ChaosPlanTest, SameKindWindowsMayOverlap) {
  // Pins the overlap contract: the generator does not de-conflict windows,
  // even of the same kind — the injector nests and restores.  If this
  // stops finding an overlapping same-kind pair, the generator's
  // distribution changed and the soak's coverage narrowed.
  bool found = false;
  for (uint64_t seed = 0; seed < 500 && !found; ++seed) {
    const FaultPlan plan = GenerateChaosPlan(seed);
    for (size_t i = 0; i < plan.events.size() && !found; ++i) {
      for (size_t j = i + 1; j < plan.events.size() && !found; ++j) {
        if (plan.events[i].kind == plan.events[j].kind &&
            plan.events[j].at < plan.events[i].at + plan.events[i].duration) {
          found = true;
        }
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(ChaosPlanTest, SeedToPlanMappingIsByteStable) {
  // The seed -> plan mapping is part of the repro contract: a soak failure
  // log from any platform or build names a seed, and these exact plans
  // must come back for it.  Regenerating on purpose?  Update the strings.
  EXPECT_EQ(GenerateChaosPlan(1).ToString(),
            "bandwidth@33.99+18.616=0.176;stall@131.554+58.707;"
            "outage@206.323+28.775");
  EXPECT_EQ(GenerateChaosPlan(42).ToString(),
            "ramp@29.869+41.127=1.623;outage@46.201+52.852;"
            "nan@61.409+10.782;dropout@63.232+30.889;"
            "bandwidth@155.134+25.176=0.247;bandwidth@160.629+17.212=0.234");
  EXPECT_EQ(GenerateChaosPlan(0xC0FFEEULL).ToString(),
            "nan@152.311+32.495;gauge@153.493+27.227=0.413;"
            "bandwidth@156.859+37.505=0.221;ramp@161.173+13.401=1.235");
}

// -- Scenario-derived plans --------------------------------------------------

FaultPlan TestEnvironment() {
  FaultPlan environment;
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse("outage@30+30;bandwidth@80+20=0.25",
                               &environment, &error))
      << error;
  return environment;
}

TEST(ScenarioChaosPlanTest, SameSeedSamePlanAndDistinctFromRandomMode) {
  const FaultPlan environment = TestEnvironment();
  for (uint64_t seed : {0ULL, 7ULL, 0xC0FFEEULL}) {
    FaultPlan a = GenerateScenarioChaosPlan(seed, environment);
    FaultPlan b = GenerateScenarioChaosPlan(seed, environment);
    EXPECT_EQ(a.ToString(), b.ToString()) << "seed " << seed;
    // A distinct RNG stream: the same seed must not yield the random-mode
    // plan with the environment bolted on.
    EXPECT_NE(a.ToString(),
              environment.ToString() + ";" + GenerateChaosPlan(seed).ToString());
  }
}

TEST(ScenarioChaosPlanTest, KeepsEveryEnvironmentWindowAndAddsOnlyTelemetry) {
  const FaultPlan environment = TestEnvironment();
  ScenarioChaosConfig config;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const FaultPlan plan = GenerateScenarioChaosPlan(seed, environment, config);
    EXPECT_GE(plan.events.size(),
              environment.events.size() +
                  static_cast<size_t>(config.min_noise_events));
    EXPECT_LE(plan.events.size(),
              environment.events.size() +
                  static_cast<size_t>(config.max_noise_events));
    size_t environment_seen = 0;
    for (const FaultEvent& event : plan.events) {
      bool is_environment = false;
      for (const FaultEvent& env : environment.events) {
        if (event.kind == env.kind && event.at == env.at &&
            event.duration == env.duration &&
            event.magnitude == env.magnitude) {
          is_environment = true;
          break;
        }
      }
      if (is_environment) {
        ++environment_seen;
        continue;
      }
      // Everything layered on top corrupts only the observation path.
      EXPECT_TRUE(event.kind == FaultKind::kSampleDropout ||
                  event.kind == FaultKind::kStaleTelemetry ||
                  event.kind == FaultKind::kGaugeDrift ||
                  event.kind == FaultKind::kGaugeRamp)
          << "seed " << seed;
      EXPECT_LE(event.at.seconds() + event.duration.seconds(),
                config.horizon_seconds + 1e-9)
          << "seed " << seed;
      if (event.kind == FaultKind::kGaugeDrift ||
          event.kind == FaultKind::kGaugeRamp) {
        EXPECT_GE(event.magnitude, 1.0 - config.gauge_noise_band - 1e-9);
        EXPECT_LE(event.magnitude, 1.0 + config.gauge_noise_band + 1e-9);
      }
    }
    EXPECT_EQ(environment_seen, environment.events.size()) << "seed " << seed;
    for (size_t i = 1; i < plan.events.size(); ++i) {
      EXPECT_LE(plan.events[i - 1].at, plan.events[i].at) << "seed " << seed;
    }
  }
}

TEST(ScenarioChaosPlanTest, GeneratedPlansRoundTripThroughTheGrammar) {
  const FaultPlan environment = TestEnvironment();
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const FaultPlan plan = GenerateScenarioChaosPlan(seed, environment);
    FaultPlan reparsed;
    std::string error;
    ASSERT_TRUE(FaultPlan::Parse(plan.ToString(), &reparsed, &error))
        << "seed " << seed << ": " << error;
    EXPECT_EQ(reparsed.ToString(), plan.ToString()) << "seed " << seed;
  }
}

TEST(ScenarioChaosPlanTest, SeedToPlanMappingIsByteStable) {
  const FaultPlan environment = TestEnvironment();
  EXPECT_EQ(GenerateScenarioChaosPlan(1, environment).ToString(),
            "dropout@29.869+5.953;outage@30+30;bandwidth@80+20=0.25;"
            "stale@125.654+13.248");
  EXPECT_EQ(GenerateScenarioChaosPlan(42, environment).ToString(),
            "ramp@6.205+13.466=1;outage@30+30;bandwidth@80+20=0.25;"
            "gauge@205.553+7.365=1.014");
}

}  // namespace
}  // namespace odfault
