#include "src/fault/chaos.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace odfault {
namespace {

TEST(ChaosPlanTest, SameSeedSamePlan) {
  for (uint64_t seed : {0ULL, 1ULL, 42ULL, 0xC0FFEEULL}) {
    FaultPlan a = GenerateChaosPlan(seed);
    FaultPlan b = GenerateChaosPlan(seed);
    EXPECT_EQ(a.ToString(), b.ToString()) << "seed " << seed;
  }
}

TEST(ChaosPlanTest, SeedsProduceDistinctPlans) {
  std::set<std::string> specs;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    specs.insert(GenerateChaosPlan(seed).ToString());
  }
  // Collisions are astronomically unlikely given the draw space; a cluster
  // of duplicates would mean the seed is not actually reaching the RNG.
  EXPECT_GE(specs.size(), 48u);
}

TEST(ChaosPlanTest, EventsRespectTheConfiguredBounds) {
  ChaosPlanConfig config;
  config.min_events = 3;
  config.max_events = 5;
  config.horizon_seconds = 100.0;
  config.min_duration_seconds = 2.0;
  config.max_duration_seconds = 9.0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    FaultPlan plan = GenerateChaosPlan(seed, config);
    EXPECT_GE(plan.events.size(), 3u) << "seed " << seed;
    EXPECT_LE(plan.events.size(), 5u) << "seed " << seed;
    for (const FaultEvent& event : plan.events) {
      EXPECT_GE(event.at.seconds(), 0.0);
      EXPECT_LT(event.at.seconds(), 100.0);
      EXPECT_GE(event.duration.seconds(), 2.0);
      EXPECT_LE(event.duration.seconds(), 9.0);
    }
  }
}

TEST(ChaosPlanTest, GeneratedPlansRoundTripThroughTheGrammar) {
  // The plan's canonical spelling is the repro command line for a soak
  // failure, so every generated plan must survive parse -> print intact.
  for (uint64_t seed = 0; seed < 200; ++seed) {
    FaultPlan plan = GenerateChaosPlan(seed);
    FaultPlan reparsed;
    std::string error;
    ASSERT_TRUE(FaultPlan::Parse(plan.ToString(), &reparsed, &error))
        << "seed " << seed << ": " << error;
    EXPECT_EQ(reparsed.ToString(), plan.ToString()) << "seed " << seed;
  }
}

TEST(ChaosPlanTest, EventuallyCoversEveryKind) {
  std::set<FaultKind> seen;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    for (const FaultEvent& event : GenerateChaosPlan(seed).events) {
      seen.insert(event.kind);
    }
  }
  EXPECT_EQ(seen.size(), 10u);  // All kinds reachable, telemetry included.
}

}  // namespace
}  // namespace odfault
