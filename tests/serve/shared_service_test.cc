#include "src/serve/shared_service.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/link.h"
#include "src/odyssey/application.h"
#include "src/odyssey/viceroy.h"
#include "src/odyssey/warden.h"
#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odserve {
namespace {

odsim::SimDuration Sec(double s) { return odsim::SimDuration::Seconds(s); }

// -- Cache: deterministic LRU eviction at capacity ---------------------------

TEST(SharedServiceCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  odsim::Simulator sim;
  SharedService service(&sim, "s", ServiceConfig{.cache_capacity = 2});
  int session = service.OpenSession("c");

  // Serve A then B: cache holds {B, A} (most recent first).
  service.SubmitKeyed(session, "A", Sec(1), nullptr);
  sim.Run();
  service.SubmitKeyed(session, "B", Sec(1), nullptr);
  sim.Run();
  EXPECT_EQ(service.cache_size(), 2u);
  EXPECT_EQ(service.cache_evictions(), 0);

  // A hit on A refreshes its recency: cache order becomes {A, B}.
  ServeOutcome outcome = ServeOutcome::kServed;
  service.SubmitKeyed(session, "A", Sec(1), [&](ServeOutcome o) { outcome = o; });
  EXPECT_EQ(outcome, ServeOutcome::kCacheHit);

  // Serving C at capacity evicts B — the least recently used — not A.
  service.SubmitKeyed(session, "C", Sec(1), nullptr);
  sim.Run();
  EXPECT_EQ(service.cache_size(), 2u);
  EXPECT_EQ(service.cache_evictions(), 1);

  outcome = ServeOutcome::kServed;
  service.SubmitKeyed(session, "A", Sec(1), [&](ServeOutcome o) { outcome = o; });
  EXPECT_EQ(outcome, ServeOutcome::kCacheHit);

  // B was evicted: it queues for compute instead of hitting.
  bool served_b = false;
  service.SubmitKeyed(session, "B", Sec(1),
                      [&](ServeOutcome o) { served_b = o == ServeOutcome::kServed; });
  sim.Run();
  EXPECT_TRUE(served_b);
  EXPECT_EQ(service.cache_evictions(), 2);  // Re-serving B evicted C.
}

// -- Batching: identical keys across sessions share one compute unit --------

TEST(SharedServiceBatchTest, IdenticalKeysAcrossSessionsBatch) {
  odsim::Simulator sim;
  SharedService service(&sim, "s", ServiceConfig{.batch_same_key = true});
  int alice = service.OpenSession("alice");
  int bob = service.OpenSession("bob");
  int carol = service.OpenSession("carol");

  odsim::SimTime done_alice, done_bob, done_carol;
  service.SubmitKeyed(alice, "tile", Sec(4),
                      [&](ServeOutcome) { done_alice = sim.Now(); });
  // Bob joins the in-service request; Carol joins the same batch later.
  service.SubmitKeyed(bob, "tile", Sec(4),
                      [&](ServeOutcome) { done_bob = sim.Now(); });
  sim.Schedule(Sec(1), [&] {
    service.SubmitKeyed(carol, "tile", Sec(4),
                        [&](ServeOutcome) { done_carol = sim.Now(); });
  });
  sim.Run();

  // One unit of compute, every waiter completed at the same instant.
  EXPECT_EQ(done_alice, odsim::SimTime::Seconds(4));
  EXPECT_EQ(done_bob, done_alice);
  EXPECT_EQ(done_carol, done_alice);
  EXPECT_DOUBLE_EQ(service.total_busy_seconds(), 4.0);
  EXPECT_EQ(service.batch_joins(), 2);
  EXPECT_EQ(service.completed_requests(), 3);
  EXPECT_EQ(service.SessionCompleted(alice), 1);
  EXPECT_EQ(service.SessionCompleted(bob), 1);
  EXPECT_EQ(service.SessionCompleted(carol), 1);
}

TEST(SharedServiceBatchTest, DifferentKeysDoNotBatch) {
  odsim::Simulator sim;
  SharedService service(&sim, "s", ServiceConfig{.batch_same_key = true});
  int session = service.OpenSession("c");
  service.SubmitKeyed(session, "A", Sec(1), nullptr);
  service.SubmitKeyed(session, "B", Sec(1), nullptr);
  sim.Run();
  EXPECT_EQ(service.batch_joins(), 0);
  EXPECT_DOUBLE_EQ(service.total_busy_seconds(), 2.0);
}

// -- Admission control -------------------------------------------------------

TEST(SharedServiceAdmissionTest, FullQueueRejectsSynchronously) {
  odsim::Simulator sim;
  SharedService service(&sim, "s", ServiceConfig{.max_queue = 2});
  int session = service.OpenSession("c");

  std::vector<ServeOutcome> outcomes;
  for (int i = 0; i < 3; ++i) {
    service.SubmitKeyed(session, "k" + std::to_string(i), Sec(1),
                        [&](ServeOutcome o) { outcomes.push_back(o); });
  }
  // The third submit found depth == max_queue and was refused immediately.
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0], ServeOutcome::kRejected);
  EXPECT_EQ(service.rejected_requests(), 1);

  sim.Run();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[1], ServeOutcome::kServed);
  EXPECT_EQ(outcomes[2], ServeOutcome::kServed);
  EXPECT_EQ(service.completed_requests(), 2);
}

TEST(SharedServiceAdmissionTest, CacheHitBypassesAdmission) {
  odsim::Simulator sim;
  SharedService service(&sim, "s",
                        ServiceConfig{.max_queue = 1, .cache_capacity = 4});
  int session = service.OpenSession("c");
  service.SubmitKeyed(session, "A", Sec(1), nullptr);
  sim.Run();

  // Fill the queue, then ask for cached content: served, not rejected.
  service.SubmitKeyed(session, "B", Sec(5), nullptr);
  ServeOutcome outcome = ServeOutcome::kServed;
  service.SubmitKeyed(session, "A", Sec(1), [&](ServeOutcome o) { outcome = o; });
  EXPECT_EQ(outcome, ServeOutcome::kCacheHit);
  EXPECT_EQ(service.rejected_requests(), 0);
  sim.Run();
}

// -- Stall drain: same-timestamp clear vs submit tie-break -------------------

// The documented contract: requests drain in submission order when a stall
// clears, including submits landing at the very timestamp of the clear.
// Whether a same-timestamp submit's event runs before or after the clear's
// event, it was submitted after the stalled backlog — so it serves last.
TEST(SharedServiceStallTest, SameTimestampClearDrainsInSubmissionOrder) {
  odsim::Simulator sim;
  SharedService service(&sim, "s");
  int session = service.OpenSession("c");

  service.SetStalled(true);
  std::vector<int> order;
  std::vector<odsim::SimTime> at;
  auto track = [&](int id) {
    return [&, id](ServeOutcome) {
      order.push_back(id);
      at.push_back(sim.Now());
    };
  };
  // Backlog queued while wedged.
  service.SubmitKeyed(session, "q0", Sec(1), track(0));
  service.SubmitKeyed(session, "q1", Sec(1), track(1));

  // At t=5, three events share the timestamp: a submit scheduled before the
  // clear, the clear itself, and a submit scheduled after the clear.
  sim.Schedule(Sec(5), [&] { service.SubmitKeyed(session, "q2", Sec(1), track(2)); });
  sim.Schedule(Sec(5), [&] { service.SetStalled(false); });
  sim.Schedule(Sec(5), [&] { service.SubmitKeyed(session, "q3", Sec(1), track(3)); });
  sim.Run();

  ASSERT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  // Service resumed at the clear instant: completions at 6, 7, 8, 9 s.
  EXPECT_EQ(at[0], odsim::SimTime::Seconds(6));
  EXPECT_EQ(at[1], odsim::SimTime::Seconds(7));
  EXPECT_EQ(at[2], odsim::SimTime::Seconds(8));
  EXPECT_EQ(at[3], odsim::SimTime::Seconds(9));
}

TEST(SharedServiceStallTest, CacheServesWhileStalled) {
  odsim::Simulator sim;
  SharedService service(&sim, "s", ServiceConfig{.cache_capacity = 4});
  int session = service.OpenSession("c");
  service.SubmitKeyed(session, "A", Sec(1), nullptr);
  sim.Run();

  service.SetStalled(true);
  ServeOutcome outcome = ServeOutcome::kServed;
  service.SubmitKeyed(session, "A", Sec(1), [&](ServeOutcome o) { outcome = o; });
  EXPECT_EQ(outcome, ServeOutcome::kCacheHit);
}

// -- Admission reject -> viceroy overload clamp -> hysteresis recovery -------

class LadderApp : public odyssey::AdaptiveApplication {
 public:
  LadderApp() : spec_({"min", "low", "mid", "high"}) { fidelity_ = 2; }

  const std::string& name() const override { return name_; }
  int priority() const override { return 0; }
  const odyssey::FidelitySpec& fidelity_spec() const override { return spec_; }
  int current_fidelity() const override { return fidelity_; }
  void SetFidelity(int level) override { fidelity_ = level; }

 private:
  std::string name_ = "ladder";
  odyssey::FidelitySpec spec_;
  int fidelity_;
};

TEST(SharedServiceOverloadTest, RejectsClampThenRecoveryRestoresFidelity) {
  odsim::Simulator sim;
  auto laptop = odpower::MakeThinkPad560X(&sim);
  odnet::Link link(&sim, &laptop->power_manager(), odnet::LinkConfig{});
  odyssey::Viceroy viceroy(&sim, &link, &laptop->power_manager());
  viceroy.set_overload_threshold(3);
  viceroy.set_recovery_hysteresis(3);

  SharedService service(&sim, "distill", ServiceConfig{.max_queue = 1});
  LadderApp app;
  viceroy.RegisterApplication(&app);
  odyssey::Warden* warden = viceroy.RegisterWarden(
      std::make_unique<odyssey::Warden>("distill"), &service);

  // Wedge the service: a long request occupies the single admission slot.
  int filler = service.OpenSession("filler");
  service.SubmitKeyed(filler, "block", Sec(30), nullptr);

  // Three keyed fetches, spaced out, all refused at the full queue.  The
  // third consecutive reject engages the overload clamp: fidelity drops
  // from mid-ladder to the floor.
  for (int i = 0; i < 3; ++i) {
    sim.Schedule(Sec(1 + i), [&, i] {
      warden->FetchKeyed("k" + std::to_string(i), 256, 1024, Sec(1), nullptr);
    });
  }
  sim.RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_EQ(warden->rejected_fetches(), 3);
  EXPECT_TRUE(viceroy.overload_clamped());
  EXPECT_EQ(viceroy.overload_clamps(), 1);
  EXPECT_EQ(app.current_fidelity(), 0);

  // After the blocker drains, successful fetches accumulate.  Two are not
  // enough at hysteresis 3; the third releases the clamp and restores the
  // exact pre-clamp fidelity.
  for (int i = 0; i < 3; ++i) {
    sim.Schedule(Sec(35 + 5 * i), [&, i] {
      warden->FetchKeyed("ok" + std::to_string(i), 256, 1024, Sec(1), nullptr);
    });
  }
  sim.RunUntil(odsim::SimTime::Seconds(44));
  EXPECT_TRUE(viceroy.overload_clamped());  // Two of three: still clamped.
  sim.RunUntil(odsim::SimTime::Seconds(60));
  EXPECT_FALSE(viceroy.overload_clamped());
  EXPECT_EQ(app.current_fidelity(), 2);
  EXPECT_EQ(viceroy.overload_clamps(), 1);  // Same episode, no re-engage.
}

}  // namespace
}  // namespace odserve
