// The scenario driver: deterministic replay (same seed, same timeline,
// same counters, same residual), polite sharing of apps that crash on
// concurrent use, gap windows arriving as environment, and the
// zero-duration submission edge cases the driver's fractional windows
// flushed out of the video pipeline.

#include <gtest/gtest.h>

#include "src/apps/data_objects.h"
#include "src/apps/experiments.h"
#include "src/apps/goal_scenario.h"
#include "src/apps/testbed.h"
#include "src/scenario/driver.h"
#include "src/scenario/library.h"
#include "src/scenario/scenario.h"

namespace {

using odscenario::Scenario;
using odscenario::ScenarioBuilder;

struct ScenarioRun {
  odapps::GoalScenarioResult result;
  odscenario::ScenarioDriver::Counters counters;
};

ScenarioRun RunScenario(const Scenario& scenario, uint64_t seed,
                        double initial_joules = 0.0) {
  odapps::GoalScenarioOptions options;
  options.seed = seed;
  options.goal = scenario.Duration();
  // Default: a generous budget so adaptation noise does not perturb the
  // behavior-counter assertions.
  options.initial_joules = initial_joules > 0.0
                               ? initial_joules
                               : 15.0 * scenario.Duration().seconds();
  auto stats = std::make_shared<odscenario::ScenarioWorkloadStats>();
  odscenario::ApplyScenarioWorkload(scenario, &options, stats);
  ScenarioRun run;
  run.result = odapps::RunGoalScenario(options);
  run.counters = stats->counters;
  return run;
}

TEST(ScenarioDriver, SameSeedReplaysIdentically) {
  const Scenario* scenario = odscenario::FindScenario("coffee_shop");
  ASSERT_NE(scenario, nullptr);
  ScenarioRun a = RunScenario(*scenario, 71);
  ScenarioRun b = RunScenario(*scenario, 71);
  EXPECT_EQ(a.counters.pages, b.counters.pages);
  EXPECT_EQ(a.counters.maps, b.counters.maps);
  EXPECT_EQ(a.counters.utterances, b.counters.utterances);
  EXPECT_EQ(a.counters.sync_fetches, b.counters.sync_fetches);
  EXPECT_EQ(a.counters.video_segments, b.counters.video_segments);
  EXPECT_EQ(a.result.residual_joules, b.result.residual_joules);
  EXPECT_EQ(a.result.elapsed_seconds, b.result.elapsed_seconds);
  EXPECT_EQ(a.result.total_adaptations, b.result.total_adaptations);
}

TEST(ScenarioDriver, RateChannelsHitTheirCadence) {
  Scenario scenario =
      ScenarioBuilder("cadence").Web(0, 120, 10).Sync(0, 120, 30).Build();
  ScenarioRun run = RunScenario(scenario, 5);
  // 10 pages/min over 2 minutes, minus slack for fetches that outlast
  // their 6 s spacing; 4 sync ticks at t=0,30,60,90.
  EXPECT_GE(run.counters.pages, 12);
  EXPECT_LE(run.counters.pages, 20);
  EXPECT_EQ(run.counters.sync_fetches, 4);
  EXPECT_EQ(run.counters.video_segments, 0);
  EXPECT_EQ(run.counters.composite_iterations, 0);
}

TEST(ScenarioDriver, IdleScenarioIssuesNoWork) {
  Scenario scenario = ScenarioBuilder("nothing").Idle(0, 120).Build();
  ScenarioRun run = RunScenario(scenario, 3);
  EXPECT_EQ(run.counters.pages, 0);
  EXPECT_EQ(run.counters.maps, 0);
  EXPECT_EQ(run.counters.utterances, 0);
  EXPECT_EQ(run.counters.video_segments, 0);
  EXPECT_EQ(run.counters.sync_fetches, 0);
  EXPECT_EQ(run.counters.burst_starts, 0);
  EXPECT_TRUE(run.result.goal_met);
}

TEST(ScenarioDriver, CompositeDefersWhileAnotherChannelHoldsAnApp) {
  // The composite iteration drives speech/web/map without busy guards;
  // overlapping it with a busy speech channel must defer, not crash into
  // OD_CHECK(!busy_).
  Scenario scenario = ScenarioBuilder("contended")
                          .Composite(0, 120, 20)
                          .Speech(0, 120, 10)
                          .Build();
  ScenarioRun run = RunScenario(scenario, 11);
  EXPECT_GT(run.counters.composite_iterations, 0);
  EXPECT_GT(run.counters.utterances, 0);
}

TEST(ScenarioDriver, BackToBackSameKindPhasesChainCleanly) {
  // The second window starts the instant the first ends (same timestamp);
  // the chain must hand over without double-driving the app.
  Scenario scenario =
      ScenarioBuilder("handover").Web(0, 60, 6).Web(60, 60, 6).Build();
  ScenarioRun run = RunScenario(scenario, 13);
  EXPECT_GE(run.counters.pages, 8);
  EXPECT_LE(run.counters.pages, 12);
}

TEST(ScenarioDriver, GapWindowsArriveAsEnvironment) {
  Scenario scenario = ScenarioBuilder("tunnel")
                          .Web(0, 120, 6)
                          .Gap(30, 30)
                          .Gap(80, 20, 0.25)
                          .Build();
  odapps::GoalScenarioOptions options;
  options.seed = 9;
  odscenario::ApplyScenarioWorkload(scenario, &options);
  EXPECT_EQ(options.fault_plan.ToString(),
            "outage@30+30;bandwidth@80+20=0.25");
  // Scenario-mode chaos already folds the gaps into its plan; the opt-out
  // must leave the options' plan untouched.
  odapps::GoalScenarioOptions chaos_options;
  chaos_options.seed = 9;
  odscenario::ApplyScenarioWorkload(scenario, &chaos_options, nullptr,
                                    /*derive_environment=*/false);
  EXPECT_TRUE(chaos_options.fault_plan.empty());
}

TEST(ScenarioDriver, BurstPhaseStartsAndStopsTheBurstyWorkload) {
  Scenario scenario = ScenarioBuilder("burst").Burst(0, 120, 0.3).Build();
  ScenarioRun run = RunScenario(scenario, 17);
  EXPECT_EQ(run.counters.burst_starts, 1);
}

// Regression (found by fractional scenario windows): a video segment whose
// tail chunk rounds to under a microsecond of decode or render CPU used to
// abort on the simulator's zero-duration work check.  The stage must
// complete inline instead, and the segment must finish.
TEST(VideoPlayerEdge, SubMicrosecondTailChunkCompletes) {
  odapps::TestBed bed(odapps::TestBed::Options{.seed = 7});
  odapps::Settle(bed);
  bool done = false;
  bed.video().PlaySegment(odapps::StandardVideoClips()[0],
                          odsim::SimDuration::Micros(500001),
                          [&done] { done = true; });
  bed.sim().RunUntil(bed.sim().Now() + odsim::SimDuration::Seconds(5));
  EXPECT_TRUE(done);
  EXPECT_FALSE(bed.video().playing());
}

// A whole-segment duration under a microsecond is likewise unrepresentable
// in integer sim time: it must finish immediately rather than submit
// zero-duration work or recurse forever.
TEST(VideoPlayerEdge, SubMicrosecondSegmentFinishesImmediately) {
  odapps::TestBed bed(odapps::TestBed::Options{.seed = 7});
  odapps::Settle(bed);
  bool done = false;
  bed.video().PlaySegment(odapps::StandardVideoClips()[0],
                          odsim::SimDuration::Micros(0),
                          [&done] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_FALSE(bed.video().playing());
}

}  // namespace
