// The scenario grammar: round-trips, builder/grammar equivalence, comment
// and newline handling, the derived environment plan, and the malformed-
// input table (every parse error names line, column, and offending token —
// the same diagnostic shape as fault plans).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/scenario/library.h"
#include "src/scenario/scenario.h"

namespace {

using odscenario::PhaseKind;
using odscenario::Scenario;
using odscenario::ScenarioBuilder;

Scenario MustParse(const std::string& spec) {
  Scenario scenario;
  std::string error;
  EXPECT_TRUE(Scenario::Parse(spec, &scenario, &error)) << spec << ": " << error;
  return scenario;
}

std::string ParseError(const std::string& spec) {
  Scenario scenario;
  std::string error;
  EXPECT_FALSE(Scenario::Parse(spec, &scenario, &error)) << spec;
  return error;
}

TEST(ScenarioGrammar, RoundTripsCanonicalSpelling) {
  for (const Scenario& scenario : odscenario::ScenarioLibrary()) {
    Scenario reparsed = MustParse(scenario.ToString());
    EXPECT_EQ(scenario.ToString(), reparsed.ToString()) << scenario.name;
    EXPECT_EQ(scenario.name, reparsed.name);
    EXPECT_EQ(scenario.phases.size(), reparsed.phases.size());
  }
}

TEST(ScenarioGrammar, BuilderAndGrammarAgree) {
  Scenario built = ScenarioBuilder("commute")
                       .Video(0, 240)
                       .Gap(180, 120)
                       .Web(300, 180, 6)
                       .Build();
  Scenario parsed =
      MustParse("commute: video@0+240;gap@180+120=0;web@300+180=6");
  EXPECT_EQ(built.ToString(), parsed.ToString());
}

TEST(ScenarioGrammar, DefaultsApplyWhenParamOmitted) {
  Scenario scenario = MustParse("web@0+60;sync@0+300;burst@0+120;gap@10+20");
  ASSERT_EQ(scenario.phases.size(), 4u);
  EXPECT_DOUBLE_EQ(scenario.phases[0].param, 5.0);    // pages/min
  EXPECT_DOUBLE_EQ(scenario.phases[1].param, 60.0);   // sync period
  EXPECT_DOUBLE_EQ(scenario.phases[2].param, 0.1);    // switch prob
  EXPECT_DOUBLE_EQ(scenario.phases[3].param, 0.0);    // full outage
}

TEST(ScenarioGrammar, NewlinesAndCommentsSeparatePhases) {
  Scenario scenario = MustParse(
      "day:\n"
      "# the morning video\n"
      "video@0+240\n"
      "web@300+60=4  # cast list; the ';' here is commented out\n"
      "sync@0+600=120");
  EXPECT_EQ(scenario.name, "day");
  ASSERT_EQ(scenario.phases.size(), 3u);
  EXPECT_EQ(scenario.phases[1].kind, PhaseKind::kWeb);
  EXPECT_EQ(scenario.ToString(),
            "day: video@0+240;web@300+60=4;sync@0+600=120");
}

TEST(ScenarioGrammar, EmptySpecIsEmptyScenario) {
  Scenario scenario = MustParse("");
  EXPECT_TRUE(scenario.empty());
  EXPECT_EQ(scenario.ToString(), "");
  EXPECT_EQ(scenario.Duration(), odsim::SimDuration::Zero());
  MustParse("  # nothing but a comment\n");
}

TEST(ScenarioGrammar, FractionalTimesSurviveRoundTrip) {
  Scenario scenario = MustParse("web@0.5+59.25=7.5");
  EXPECT_EQ(scenario.ToString(), "web@0.5+59.25=7.5");
  EXPECT_EQ(scenario.Duration(), odsim::SimDuration::Seconds(59.75));
}

// Malformed inputs: every rejection names the line, the column, and the
// offending token, so a bad --scenario flag (or a typo in a committed
// scenario) is a one-glance fix.
TEST(ScenarioGrammar, RejectsMalformedSpecsWithPosition) {
  struct Case {
    const char* spec;
    const char* expected_position;
    const char* expected_token;
  };
  const std::vector<Case> cases = {
      {"meteor@0+60", "line 1, col 1", "'meteor'"},
      {"web@0", "line 1, col 5", "'0'"},
      {"video@0+60=2", "line 1, col 11", "'=2'"},
      {"web@-5+60", "line 1, col 5", "'-5'"},
      {"web@0+0", "line 1, col 7", "'0'"},
      {"web@0+60=zero", "line 1, col 10", "'zero'"},
      {"gap@0+60=1.5", "line 1, col 10", "'1.5'"},
      {"burst@0+60=0", "line 1, col 12", "'0'"},
      {"video@0+60; web@5", "line 1, col 17", "'5'"},
      {"video@0+60\nbogus@5+5", "line 2, col 1", "'bogus'"},
      {"bad name: video@0+60", "line 1, col 1", "'bad name'"},
  };
  for (const Case& c : cases) {
    std::string error = ParseError(c.spec);
    EXPECT_NE(error.find(c.expected_position), std::string::npos)
        << c.spec << " -> " << error;
    EXPECT_NE(error.find(c.expected_token), std::string::npos)
        << c.spec << " -> " << error;
  }
}

TEST(ScenarioEnvironment, GapsBecomeMatchedFaultWindows) {
  const Scenario* commuter = odscenario::FindScenario("commuter_day");
  ASSERT_NE(commuter, nullptr);
  odfault::FaultPlan plan = commuter->DerivedFaultPlan();
  // The tunnel is a full outage; the office edge keeps 30% of nominal.
  EXPECT_EQ(plan.ToString(), "outage@180+120;bandwidth@540+60=0.3");
  // The derived plan replays from its own canonical stamp.
  odfault::FaultPlan reparsed;
  std::string error;
  ASSERT_TRUE(odfault::FaultPlan::Parse(plan.ToString(), &reparsed, &error))
      << error;
  EXPECT_EQ(plan.ToString(), reparsed.ToString());
}

TEST(ScenarioQueries, ActivityAndCoverageWindows) {
  const Scenario* commuter = odscenario::FindScenario("commuter_day");
  ASSERT_NE(commuter, nullptr);
  auto t = [](double s) { return odsim::SimDuration::Seconds(s); };
  EXPECT_TRUE(commuter->ActiveAt(t(100)));    // video
  EXPECT_FALSE(commuter->CoverageAt(t(200))); // the tunnel
  EXPECT_TRUE(commuter->ActiveAt(t(200)));    // video keeps playing in it
  EXPECT_FALSE(commuter->CoverageAt(t(550))); // weak-coverage stretch
  EXPECT_TRUE(commuter->ActiveAt(t(890)));    // sync runs to the end
  EXPECT_TRUE(commuter->CoverageAt(t(890)));
  EXPECT_FALSE(commuter->ActiveAt(t(950)));   // past the scenario
}

TEST(ScenarioLibrary, SixNamedScenariosRoundTrip) {
  const auto& library = odscenario::ScenarioLibrary();
  ASSERT_EQ(library.size(), 6u);
  const std::vector<std::string> expected = {
      "commuter_day", "bursty_morning", "background_sync",
      "video_evening", "office_mix",    "coffee_shop"};
  EXPECT_EQ(odscenario::ScenarioNames(), expected);
  for (const Scenario& scenario : library) {
    EXPECT_FALSE(scenario.empty()) << scenario.name;
    EXPECT_GT(scenario.Duration(), odsim::SimDuration::Zero())
        << scenario.name;
    EXPECT_EQ(odscenario::FindScenario(scenario.name), &scenario);
  }
  EXPECT_EQ(odscenario::FindScenario("nope"), nullptr);
}

}  // namespace
