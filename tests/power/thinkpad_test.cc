// Tests that the ThinkPad 560X power model reproduces the aggregates the
// paper publishes in Figure 4 and Section 3.1.

#include "src/power/thinkpad560x.h"

#include <gtest/gtest.h>

#include "src/sim/simulator.h"

namespace odpower {
namespace {

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<Laptop> laptop = MakeThinkPad560X(&sim);
};

TEST(ThinkPadTest, BackgroundPowerIs5Point6Watts) {
  // "Background (display dim, WaveLAN & disk standby) = 5.6 W" (Figure 4).
  Rig rig;
  rig.laptop->display().Set(DisplayState::kDim);
  rig.laptop->wavelan().Set(WaveLanState::kStandby);
  rig.laptop->disk().Set(DiskState::kStandby);
  EXPECT_NEAR(rig.laptop->machine().TotalPower(), 5.6, 0.05);
  EXPECT_NEAR(rig.laptop->BackgroundPowerWatts(),
              rig.laptop->machine().TotalPower(), 1e-9);
}

TEST(ThinkPadTest, SuperlinearityIsPoint21WattsWithFourActive) {
  // "The laptop uses ... 0.21 W more than the sum of the individual power
  // usage of each component" with the screen brightest and disk and network
  // idle (four active components).
  Rig rig;
  Machine& machine = rig.laptop->machine();
  double sum = 0.0;
  for (int i = 0; i < machine.component_count(); ++i) {
    sum += machine.component(i).power();
  }
  EXPECT_NEAR(machine.TotalPower() - sum, 0.21, 1e-9);
}

TEST(ThinkPadTest, DisplayIsAboutAThirdOfBackgroundPower) {
  // Section 4: the display is responsible for nearly 35% of the background
  // energy usage.
  Rig rig;
  const ThinkPad560XSpec& spec = rig.laptop->spec();
  double share = spec.display_dim / rig.laptop->BackgroundPowerWatts();
  EXPECT_GT(share, 0.30);
  EXPECT_LT(share, 0.40);
}

TEST(ThinkPadTest, StatePowersAreOrdered) {
  Rig rig;
  const ThinkPad560XSpec& spec = rig.laptop->spec();
  EXPECT_GT(spec.display_bright, spec.display_dim);
  EXPECT_GT(spec.wavelan_transmit, spec.wavelan_receive);
  EXPECT_GT(spec.wavelan_receive, spec.wavelan_idle);
  EXPECT_GT(spec.wavelan_idle, spec.wavelan_standby);
  EXPECT_GT(spec.disk_access, spec.disk_idle);
  EXPECT_GT(spec.disk_idle, spec.disk_standby);
  EXPECT_GT(spec.disk_spinup, spec.disk_access);
}

TEST(ThinkPadTest, AllComponentsWired) {
  Rig rig;
  Machine& machine = rig.laptop->machine();
  EXPECT_EQ(machine.component_count(), 5);
  EXPECT_NE(machine.FindComponent("Display"), nullptr);
  EXPECT_NE(machine.FindComponent("WaveLAN"), nullptr);
  EXPECT_NE(machine.FindComponent("Disk"), nullptr);
  EXPECT_NE(machine.FindComponent("CPU"), nullptr);
  EXPECT_NE(machine.FindComponent("Other"), nullptr);
}

TEST(ThinkPadTest, CpuDrawTracksScheduler) {
  Rig rig;
  double idle_power = rig.laptop->machine().TotalPower();
  odsim::ProcessId pid = rig.sim.processes().RegisterProcess("p");
  odsim::ProcedureId proc = rig.sim.processes().RegisterProcedure("_p");
  rig.sim.SubmitWork(pid, proc, odsim::SimDuration::Seconds(1), nullptr);
  double busy_power = rig.laptop->machine().TotalPower();
  // Busy adds the CPU draw plus one synergy increment.
  EXPECT_NEAR(busy_power - idle_power,
              rig.laptop->spec().cpu_busy +
                  rig.laptop->spec().synergy_per_extra_active,
              1e-9);
}

}  // namespace
}  // namespace odpower
