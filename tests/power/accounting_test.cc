#include "src/power/accounting.h"

#include <gtest/gtest.h>

#include "src/power/cpu.h"
#include "src/power/display.h"
#include "src/power/machine.h"
#include "src/sim/simulator.h"

namespace odpower {
namespace {

struct Rig {
  odsim::Simulator sim;
  Machine machine{&sim, 0.07};
  Display* display = machine.AddComponent(std::make_unique<Display>(3.0, 2.0));
  OtherComponent* other =
      machine.AddComponent(std::make_unique<OtherComponent>(3.0));
  Cpu* cpu = machine.AddComponent(std::make_unique<Cpu>(6.0));
  EnergyAccounting accounting{&machine};

  Rig() { sim.AddCpuObserver(cpu); }
};

TEST(AccountingTest, ConstantPowerIntegration) {
  Rig rig;
  // Display 3 + other 3 + synergy 0.07 (two active).
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_NEAR(rig.accounting.TotalJoules(rig.sim.Now()), 60.7, 1e-9);
}

TEST(AccountingTest, StateChangeSplitsIntegration) {
  Rig rig;
  rig.sim.Schedule(odsim::SimDuration::Seconds(4),
                   [&] { rig.display->Set(DisplayState::kOff); });
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  // 4 s at 6.07 W, then 6 s at 3.0 W (one active component, no synergy).
  EXPECT_NEAR(rig.accounting.TotalJoules(rig.sim.Now()), 4 * 6.07 + 6 * 3.0, 1e-9);
}

TEST(AccountingTest, PerComponentBreakdown) {
  Rig rig;
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  odsim::SimTime now = rig.sim.Now();
  EXPECT_NEAR(rig.accounting.ComponentJoules(0, now), 30.0, 1e-9);  // Display.
  EXPECT_NEAR(rig.accounting.ComponentJoules(1, now), 30.0, 1e-9);  // Other.
  EXPECT_NEAR(rig.accounting.ComponentJoules(2, now), 0.0, 1e-9);   // CPU halt.
  EXPECT_NEAR(rig.accounting.SynergyJoules(now), 0.7, 1e-9);
}

TEST(AccountingTest, ComponentsSumToTotal) {
  Rig rig;
  odsim::ProcessId pid = rig.sim.processes().RegisterProcess("p");
  odsim::ProcedureId proc = rig.sim.processes().RegisterProcedure("_p");
  rig.sim.SubmitWork(pid, proc, odsim::SimDuration::Seconds(3), nullptr);
  rig.sim.Schedule(odsim::SimDuration::Seconds(5),
                   [&] { rig.display->Set(DisplayState::kDim); });
  rig.sim.RunUntil(odsim::SimTime::Seconds(12));
  odsim::SimTime now = rig.sim.Now();
  double sum = rig.accounting.SynergyJoules(now);
  for (int i = 0; i < rig.machine.component_count(); ++i) {
    sum += rig.accounting.ComponentJoules(i, now);
  }
  EXPECT_NEAR(sum, rig.accounting.TotalJoules(now), 1e-9);
}

TEST(AccountingTest, ProcessAttribution) {
  Rig rig;
  odsim::ProcessId pid = rig.sim.processes().RegisterProcess("worker");
  odsim::ProcedureId proc = rig.sim.processes().RegisterProcedure("_w");
  rig.sim.SubmitWork(pid, proc, odsim::SimDuration::Seconds(4), nullptr);
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  odsim::SimTime now = rig.sim.Now();

  ContextUsage worker = rig.accounting.ProcessUsage(pid, now);
  ContextUsage idle = rig.accounting.ProcessUsage(odsim::kIdlePid, now);
  // Worker: 4 s at (3+3+6+0.14) = 12.14 W.
  EXPECT_NEAR(worker.cpu_seconds, 4.0, 1e-9);
  EXPECT_NEAR(worker.joules, 4 * 12.14, 1e-9);
  // Idle: 6 s at 6.07 W, no CPU time.
  EXPECT_NEAR(idle.cpu_seconds, 0.0, 1e-9);
  EXPECT_NEAR(idle.joules, 6 * 6.07, 1e-9);
  // Attribution is exhaustive.
  EXPECT_NEAR(worker.joules + idle.joules, rig.accounting.TotalJoules(now), 1e-9);
}

TEST(AccountingTest, ProcedureAttribution) {
  Rig rig;
  odsim::ProcessId pid = rig.sim.processes().RegisterProcess("worker");
  odsim::ProcedureId p1 = rig.sim.processes().RegisterProcedure("_one");
  odsim::ProcedureId p2 = rig.sim.processes().RegisterProcedure("_two");
  rig.sim.SubmitWork(pid, p1, odsim::SimDuration::Seconds(1), nullptr);
  rig.sim.SubmitWork(pid, p2, odsim::SimDuration::Seconds(3), nullptr);
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  odsim::SimTime now = rig.sim.Now();
  ContextUsage u1 = rig.accounting.ProcedureUsage(pid, p1, now);
  ContextUsage u2 = rig.accounting.ProcedureUsage(pid, p2, now);
  EXPECT_NEAR(u1.cpu_seconds, 1.0, 1e-9);
  EXPECT_NEAR(u2.cpu_seconds, 3.0, 1e-9);
  ContextUsage whole = rig.accounting.ProcessUsage(pid, now);
  EXPECT_NEAR(u1.joules + u2.joules, whole.joules, 1e-9);
}

TEST(AccountingTest, ResetZeroesAccumulators) {
  Rig rig;
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  rig.accounting.Reset(rig.sim.Now());
  EXPECT_NEAR(rig.accounting.TotalJoules(rig.sim.Now()), 0.0, 1e-12);
  rig.sim.RunUntil(odsim::SimTime::Seconds(7));
  EXPECT_NEAR(rig.accounting.TotalJoules(rig.sim.Now()), 2 * 6.07, 1e-9);
}

TEST(AccountingTest, ProcessesListsAllSeen) {
  Rig rig;
  odsim::ProcessId pid = rig.sim.processes().RegisterProcess("worker");
  odsim::ProcedureId proc = rig.sim.processes().RegisterProcedure("_w");
  rig.sim.SubmitWork(pid, proc, odsim::SimDuration::Seconds(1), nullptr);
  rig.sim.RunUntil(odsim::SimTime::Seconds(2));
  std::vector<odsim::ProcessId> pids = rig.accounting.Processes(rig.sim.Now());
  ASSERT_EQ(pids.size(), 2u);
  EXPECT_EQ(pids[0], odsim::kIdlePid);
  EXPECT_EQ(pids[1], pid);
}

TEST(AccountingTest, IdempotentAccrual) {
  Rig rig;
  rig.sim.RunUntil(odsim::SimTime::Seconds(3));
  odsim::SimTime now = rig.sim.Now();
  double first = rig.accounting.TotalJoules(now);
  double second = rig.accounting.TotalJoules(now);
  EXPECT_DOUBLE_EQ(first, second);
}

}  // namespace
}  // namespace odpower
