#include "src/power/power_manager.h"

#include <gtest/gtest.h>

#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odpower {
namespace {

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<Laptop> laptop = MakeThinkPad560X(&sim);
  PowerManager& pm() { return laptop->power_manager(); }
};

TEST(PowerManagerTest, DiskSpinsDownAfterTimeout) {
  Rig rig;
  rig.pm().SetHardwarePmEnabled(true);
  EXPECT_EQ(rig.laptop->disk().disk_state(), DiskState::kIdle);
  rig.sim.RunUntil(odsim::SimTime::Seconds(9));
  EXPECT_EQ(rig.laptop->disk().disk_state(), DiskState::kIdle);
  rig.sim.RunUntil(odsim::SimTime::Seconds(11));
  EXPECT_EQ(rig.laptop->disk().disk_state(), DiskState::kStandby);
}

TEST(PowerManagerTest, DiskStaysSpinningWithoutPm) {
  Rig rig;
  rig.sim.RunUntil(odsim::SimTime::Seconds(30));
  EXPECT_EQ(rig.laptop->disk().disk_state(), DiskState::kIdle);
}

TEST(PowerManagerTest, DiskAccessFromIdle) {
  Rig rig;
  bool done = false;
  rig.pm().AccessDisk(odsim::SimDuration::Seconds(2), [&] { done = true; });
  EXPECT_EQ(rig.laptop->disk().disk_state(), DiskState::kAccess);
  rig.sim.RunUntil(odsim::SimTime::Seconds(3));
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.laptop->disk().disk_state(), DiskState::kIdle);
}

TEST(PowerManagerTest, DiskAccessFromStandbySpinsUpFirst) {
  Rig rig;
  rig.pm().SetHardwarePmEnabled(true);
  rig.sim.RunUntil(odsim::SimTime::Seconds(20));
  ASSERT_EQ(rig.laptop->disk().disk_state(), DiskState::kStandby);

  odsim::SimTime done_at;
  rig.pm().AccessDisk(odsim::SimDuration::Seconds(1),
                      [&] { done_at = rig.sim.Now(); });
  EXPECT_EQ(rig.laptop->disk().disk_state(), DiskState::kSpinup);
  rig.sim.RunUntil(odsim::SimTime::Seconds(30));
  // 1.5 s spin-up + 1 s transfer.
  EXPECT_EQ(done_at, odsim::SimTime::Seconds(22.5));
}

TEST(PowerManagerTest, DiskTimerRearmsAfterAccess) {
  Rig rig;
  rig.pm().SetHardwarePmEnabled(true);
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  rig.pm().AccessDisk(odsim::SimDuration::Seconds(1), nullptr);
  rig.sim.RunUntil(odsim::SimTime::Seconds(15));
  // Access ended at t=6; timer expires at t=16.
  EXPECT_EQ(rig.laptop->disk().disk_state(), DiskState::kIdle);
  rig.sim.RunUntil(odsim::SimTime::Seconds(17));
  EXPECT_EQ(rig.laptop->disk().disk_state(), DiskState::kStandby);
}

TEST(PowerManagerTest, NetworkRestsInStandbyUnderPm) {
  Rig rig;
  rig.pm().SetHardwarePmEnabled(true);
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), WaveLanState::kStandby);
  rig.pm().SetHardwarePmEnabled(false);
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), WaveLanState::kIdle);
}

TEST(PowerManagerTest, NetworkUseBracketsWake) {
  Rig rig;
  rig.pm().SetHardwarePmEnabled(true);
  rig.pm().BeginNetworkUse();
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), WaveLanState::kIdle);
  rig.pm().EndNetworkUse();
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), WaveLanState::kStandby);
}

TEST(PowerManagerTest, NestedNetworkUseCounts) {
  Rig rig;
  rig.pm().SetHardwarePmEnabled(true);
  rig.pm().BeginNetworkUse();
  rig.pm().BeginNetworkUse();
  rig.pm().EndNetworkUse();
  EXPECT_TRUE(rig.pm().network_in_use());
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), WaveLanState::kIdle);
  rig.pm().EndNetworkUse();
  EXPECT_FALSE(rig.pm().network_in_use());
  EXPECT_EQ(rig.laptop->wavelan().wavelan_state(), WaveLanState::kStandby);
}

TEST(PowerManagerTest, CustomDiskTimeout) {
  Rig rig;
  rig.pm().set_disk_standby_timeout(odsim::SimDuration::Seconds(2));
  rig.pm().SetHardwarePmEnabled(true);
  rig.sim.RunUntil(odsim::SimTime::Seconds(3));
  EXPECT_EQ(rig.laptop->disk().disk_state(), DiskState::kStandby);
}

TEST(PowerManagerTest, DisplayControl) {
  Rig rig;
  rig.pm().SetDisplay(DisplayState::kOff);
  EXPECT_EQ(rig.laptop->display().display_state(), DisplayState::kOff);
  rig.pm().SetDisplay(DisplayState::kBright);
  EXPECT_EQ(rig.laptop->display().display_state(), DisplayState::kBright);
}

}  // namespace
}  // namespace odpower
