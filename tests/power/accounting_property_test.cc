// Property test: under randomized scripts of component state changes and
// CPU work, the analytic accountant must agree with a brute-force
// fine-grained integration of Machine::TotalPower(), and attribution must
// remain exhaustive.

#include <gtest/gtest.h>

#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace odpower {
namespace {

class AccountingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AccountingPropertyTest, AnalyticMatchesBruteForceIntegration) {
  odsim::Simulator sim;
  auto laptop = MakeThinkPad560X(&sim);
  odutil::Rng rng(GetParam());

  odsim::ProcessId pids[3] = {
      sim.processes().RegisterProcess("a"),
      sim.processes().RegisterProcess("b"),
      sim.processes().RegisterProcess("c"),
  };
  odsim::ProcedureId proc = sim.processes().RegisterProcedure("_w");

  // Random script over 60 seconds.
  constexpr double kHorizon = 60.0;
  for (int i = 0; i < 40; ++i) {
    double at = rng.Uniform(0.0, kHorizon);
    switch (rng.UniformInt(0, 3)) {
      case 0:
        sim.ScheduleAt(odsim::SimTime::Seconds(at), [&laptop, &rng] {
          laptop->display().Set(
              static_cast<DisplayState>(rng.UniformInt(0, 2)));
        });
        break;
      case 1:
        sim.ScheduleAt(odsim::SimTime::Seconds(at), [&laptop, &rng] {
          laptop->wavelan().Set(
              static_cast<WaveLanState>(rng.UniformInt(0, 4)));
        });
        break;
      case 2:
        sim.ScheduleAt(odsim::SimTime::Seconds(at), [&laptop, &rng] {
          laptop->disk().Set(static_cast<DiskState>(rng.UniformInt(0, 2)));
        });
        break;
      default:
        sim.ScheduleAt(odsim::SimTime::Seconds(at), [&sim, &rng, &pids, proc] {
          sim.SubmitWork(pids[rng.UniformInt(0, 2)], proc,
                         odsim::SimDuration::Seconds(rng.Uniform(0.01, 1.5)),
                         nullptr);
        });
        break;
    }
  }

  // Brute force: sample TotalPower on a 1 ms grid.  Power is piecewise
  // constant, so the only error is at transition boundaries.
  double brute = 0.0;
  constexpr double kStep = 0.001;
  odsim::SimTime t = sim.Now();
  while (t < odsim::SimTime::Seconds(kHorizon + 10.0)) {
    double p = laptop->machine().TotalPower();
    odsim::SimTime next = t + odsim::SimDuration::Seconds(kStep);
    sim.RunUntil(next);
    brute += p * kStep;
    t = next;
  }

  double analytic = laptop->accounting().TotalJoules(sim.Now());
  EXPECT_NEAR(analytic, brute, 0.005 * analytic + 0.5) << "seed " << GetParam();

  // Attribution exhaustiveness under the same random script.
  double by_process = 0.0;
  for (odsim::ProcessId pid : laptop->accounting().Processes(sim.Now())) {
    by_process += laptop->accounting().ProcessUsage(pid, sim.Now()).joules;
  }
  EXPECT_NEAR(by_process, analytic, 1e-6);

  double by_component = laptop->accounting().SynergyJoules(sim.Now());
  for (int i = 0; i < laptop->machine().component_count(); ++i) {
    by_component += laptop->accounting().ComponentJoules(i, sim.Now());
  }
  EXPECT_NEAR(by_component, analytic, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountingPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace odpower
