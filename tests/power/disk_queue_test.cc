// Concurrent disk requests queue FIFO instead of faulting.

#include <gtest/gtest.h>

#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"

namespace odpower {
namespace {

struct Rig {
  odsim::Simulator sim;
  std::unique_ptr<Laptop> laptop = MakeThinkPad560X(&sim);
  PowerManager& pm() { return laptop->power_manager(); }
};

TEST(DiskQueueTest, ConcurrentAccessesServedInOrder) {
  Rig rig;
  std::vector<int> order;
  rig.pm().AccessDisk(odsim::SimDuration::Seconds(1), [&] { order.push_back(1); });
  rig.pm().AccessDisk(odsim::SimDuration::Seconds(1), [&] { order.push_back(2); });
  rig.pm().AccessDisk(odsim::SimDuration::Seconds(1), [&] { order.push_back(3); });
  EXPECT_EQ(rig.pm().queued_disk_accesses(), 3);
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(rig.pm().queued_disk_accesses(), 0);
}

TEST(DiskQueueTest, QueuedAccessesRunBackToBack) {
  Rig rig;
  odsim::SimTime first_done, second_done;
  rig.pm().AccessDisk(odsim::SimDuration::Seconds(1),
                      [&] { first_done = rig.sim.Now(); });
  rig.pm().AccessDisk(odsim::SimDuration::Seconds(2),
                      [&] { second_done = rig.sim.Now(); });
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_EQ(first_done, odsim::SimTime::Seconds(1));
  EXPECT_EQ(second_done, odsim::SimTime::Seconds(3));
}

TEST(DiskQueueTest, StandbyTimerArmsOnlyAfterQueueDrains) {
  Rig rig;
  rig.pm().SetHardwarePmEnabled(true);
  rig.sim.RunUntil(odsim::SimTime::Seconds(20));
  ASSERT_EQ(rig.laptop->disk().disk_state(), DiskState::kStandby);

  // Two queued accesses: spin-up (1.5 s) + 1 s + 1 s, ending at 23.5 s.
  rig.pm().AccessDisk(odsim::SimDuration::Seconds(1), nullptr);
  rig.pm().AccessDisk(odsim::SimDuration::Seconds(1), nullptr);
  rig.sim.RunUntil(odsim::SimTime::Seconds(30));
  EXPECT_EQ(rig.laptop->disk().disk_state(), DiskState::kIdle);
  // Standby 10 s after the last access completes.
  rig.sim.RunUntil(odsim::SimTime::Seconds(34));
  EXPECT_EQ(rig.laptop->disk().disk_state(), DiskState::kStandby);
}

}  // namespace
}  // namespace odpower
