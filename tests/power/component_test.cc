#include "src/power/component.h"

#include <gtest/gtest.h>

#include "src/power/cpu.h"
#include "src/power/disk.h"
#include "src/power/display.h"
#include "src/power/machine.h"
#include "src/power/wavelan.h"
#include "src/sim/simulator.h"

namespace odpower {
namespace {

TEST(ComponentTest, StatePowerLookup) {
  Display display(3.0, 2.0);
  EXPECT_DOUBLE_EQ(display.power(), 3.0);
  display.Set(DisplayState::kDim);
  EXPECT_DOUBLE_EQ(display.power(), 2.0);
  display.Set(DisplayState::kOff);
  EXPECT_DOUBLE_EQ(display.power(), 0.0);
}

TEST(ComponentTest, ActiveThreshold) {
  WaveLan wavelan(1.65, 1.40, 0.88, 0.18);
  EXPECT_TRUE(wavelan.active());  // Idle 0.88 > 0.5.
  wavelan.Set(WaveLanState::kStandby);
  EXPECT_FALSE(wavelan.active());  // 0.18 < 0.5.
}

TEST(ComponentTest, DisplayZonedPower) {
  Display display(4.0, 2.0);
  display.SetZonedLitFraction(0.25);
  EXPECT_TRUE(display.zoned());
  EXPECT_DOUBLE_EQ(display.power(), 1.0);  // 4.0 * 0.25, unlit zones dark.
  display.ClearZoning();
  EXPECT_DOUBLE_EQ(display.power(), 4.0);
}

TEST(ComponentTest, ZoningOnlyAffectsBrightState) {
  Display display(4.0, 2.0);
  display.SetZonedLitFraction(0.25);
  display.Set(DisplayState::kDim);
  EXPECT_DOUBLE_EQ(display.power(), 2.0);
  display.Set(DisplayState::kOff);
  EXPECT_DOUBLE_EQ(display.power(), 0.0);
}

TEST(ComponentTest, DiskStatesAndSpinup) {
  Disk disk(2.2, 0.96, 0.16, 3.0, odsim::SimDuration::Seconds(1.5));
  EXPECT_EQ(disk.disk_state(), DiskState::kIdle);
  disk.Set(DiskState::kStandby);
  EXPECT_DOUBLE_EQ(disk.power(), 0.16);
  disk.Set(DiskState::kSpinup);
  EXPECT_DOUBLE_EQ(disk.power(), 3.0);
  EXPECT_EQ(disk.spinup_time(), odsim::SimDuration::Seconds(1.5));
}

TEST(ComponentTest, CpuTracksSchedulerContext) {
  odsim::Simulator sim;
  Machine machine(&sim, 0.0);
  Cpu* cpu = machine.AddComponent(std::make_unique<Cpu>(6.0));
  sim.AddCpuObserver(cpu);
  EXPECT_DOUBLE_EQ(cpu->power(), 0.0);

  odsim::ProcessId pid = sim.processes().RegisterProcess("p");
  odsim::ProcedureId proc = sim.processes().RegisterProcedure("_p");
  sim.SubmitWork(pid, proc, odsim::SimDuration::Seconds(1), nullptr);
  EXPECT_DOUBLE_EQ(cpu->power(), 6.0);
  sim.Run();
  EXPECT_DOUBLE_EQ(cpu->power(), 0.0);
}

TEST(ComponentTest, SetStateIgnoresNoop) {
  odsim::Simulator sim;
  Machine machine(&sim, 0.0);
  Display* display =
      machine.AddComponent(std::make_unique<Display>(3.0, 2.0));
  // Re-setting the same state must be a silent no-op.
  display->Set(DisplayState::kBright);
  EXPECT_DOUBLE_EQ(display->power(), 3.0);
}

}  // namespace
}  // namespace odpower
