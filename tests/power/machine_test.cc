#include "src/power/machine.h"

#include <gtest/gtest.h>

#include "src/power/cpu.h"
#include "src/power/display.h"
#include "src/power/wavelan.h"
#include "src/sim/simulator.h"

namespace odpower {
namespace {

class CountingObserver : public MachineObserver {
 public:
  void OnMachinePowerChanged(odsim::SimTime) override { ++count; }
  int count = 0;
};

TEST(MachineTest, TotalPowerSumsComponents) {
  odsim::Simulator sim;
  Machine machine(&sim, 0.0);
  machine.AddComponent(std::make_unique<Display>(3.0, 2.0));
  machine.AddComponent(std::make_unique<OtherComponent>(3.24));
  EXPECT_DOUBLE_EQ(machine.TotalPower(), 6.24);
}

TEST(MachineTest, SynergyPerExtraActiveComponent) {
  odsim::Simulator sim;
  Machine machine(&sim, 0.07);
  Display* display = machine.AddComponent(std::make_unique<Display>(3.0, 2.0));
  machine.AddComponent(std::make_unique<OtherComponent>(3.24));
  WaveLan* wavelan =
      machine.AddComponent(std::make_unique<WaveLan>(1.65, 1.4, 0.88, 0.18));
  // Three active components -> 2 * 0.07.
  EXPECT_DOUBLE_EQ(machine.SynergyPower(), 0.14);
  wavelan->Set(WaveLanState::kStandby);
  EXPECT_DOUBLE_EQ(machine.SynergyPower(), 0.07);
  display->Set(DisplayState::kOff);
  // One active component left -> no synergy.
  EXPECT_DOUBLE_EQ(machine.SynergyPower(), 0.0);
}

TEST(MachineTest, FindComponentByName) {
  odsim::Simulator sim;
  Machine machine(&sim, 0.0);
  machine.AddComponent(std::make_unique<Display>(3.0, 2.0));
  EXPECT_NE(machine.FindComponent("Display"), nullptr);
  EXPECT_EQ(machine.FindComponent("Nonexistent"), nullptr);
}

TEST(MachineTest, ObserverNotifiedOnStateChange) {
  odsim::Simulator sim;
  Machine machine(&sim, 0.0);
  Display* display = machine.AddComponent(std::make_unique<Display>(3.0, 2.0));
  CountingObserver observer;
  machine.AddObserver(&observer);
  display->Set(DisplayState::kDim);
  EXPECT_EQ(observer.count, 1);
  display->Set(DisplayState::kDim);  // No-op does not notify.
  EXPECT_EQ(observer.count, 1);
  display->Set(DisplayState::kOff);
  EXPECT_EQ(observer.count, 2);
}

TEST(MachineTest, ComponentIndexing) {
  odsim::Simulator sim;
  Machine machine(&sim, 0.0);
  machine.AddComponent(std::make_unique<Display>(3.0, 2.0));
  machine.AddComponent(std::make_unique<OtherComponent>(1.0));
  ASSERT_EQ(machine.component_count(), 2);
  EXPECT_EQ(machine.component(0).name(), "Display");
  EXPECT_EQ(machine.component(1).name(), "Other");
}

}  // namespace
}  // namespace odpower
