#include "src/power/battery.h"

#include <gtest/gtest.h>

#include "src/power/cpu.h"
#include "src/power/machine.h"
#include "src/sim/simulator.h"

namespace odpower {
namespace {

struct Rig {
  explicit Rig(double load_watts) {
    other = machine.AddComponent(std::make_unique<OtherComponent>(load_watts));
  }
  odsim::Simulator sim;
  Machine machine{&sim, 0.0};
  OtherComponent* other = nullptr;
  EnergyAccounting accounting{&machine};
};

TEST(BatteryTest, IdealAtRatedDraw) {
  Rig rig(10.0);
  BatteryConfig config;
  config.nominal_joules = 1000.0;
  config.rated_watts = 10.0;
  config.resistance_fraction = 0.0;
  Battery battery(&rig.sim, &rig.accounting, config);
  rig.sim.RunUntil(odsim::SimTime::Seconds(50));
  // 10 W at the rated draw: ideal drain, 500 J left after 50 s.
  EXPECT_NEAR(battery.ResidualJoules(rig.sim.Now()), 500.0, 1.0);
  EXPECT_NEAR(battery.loss_joules(), 0.0, 1e-9);
}

TEST(BatteryTest, HighDrawDrainsSuperlinearly) {
  Rig rig(20.0);  // Twice the rated draw.
  BatteryConfig config;
  config.nominal_joules = 1000.0;
  config.rated_watts = 10.0;
  config.peukert_exponent = 1.10;
  config.resistance_fraction = 0.0;
  Battery battery(&rig.sim, &rig.accounting, config);
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  // Effective drain = 20 * 2^0.1 ≈ 21.4 W, so > 200 J gone after 10 s.
  double drained = config.nominal_joules - battery.ResidualJoules(rig.sim.Now());
  EXPECT_GT(drained, 210.0);
  EXPECT_LT(drained, 220.0);
}

TEST(BatteryTest, LowDrawHasNoRatePenalty) {
  Rig rig(5.0);  // Half the rated draw.
  BatteryConfig config;
  config.nominal_joules = 1000.0;
  config.rated_watts = 10.0;
  config.peukert_exponent = 1.30;
  config.resistance_fraction = 0.0;
  Battery battery(&rig.sim, &rig.accounting, config);
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_NEAR(battery.ResidualJoules(rig.sim.Now()), 950.0, 1.0);
}

TEST(BatteryTest, InternalResistanceLosses) {
  Rig rig(10.0);
  BatteryConfig config;
  config.nominal_joules = 1000.0;
  config.rated_watts = 10.0;
  config.peukert_exponent = 1.0;
  config.resistance_fraction = 0.05;
  Battery battery(&rig.sim, &rig.accounting, config);
  rig.sim.RunUntil(odsim::SimTime::Seconds(20));
  // Loss = 0.05 * (10/10) * 10 = 0.5 W: 10 J lost in 20 s.
  EXPECT_NEAR(battery.loss_joules(), 10.0, 0.5);
  EXPECT_NEAR(battery.drained_joules(), 210.0, 1.0);
}

TEST(BatteryTest, ResidualMonotoneBetweenTicks) {
  Rig rig(10.0);
  BatteryConfig config;
  config.nominal_joules = 1000.0;
  Battery battery(&rig.sim, &rig.accounting, config);
  double previous = battery.ResidualJoules(rig.sim.Now());
  for (int i = 1; i <= 40; ++i) {
    rig.sim.RunUntil(odsim::SimTime::Millis(i * 130));  // Off-tick times.
    double now = battery.ResidualJoules(rig.sim.Now());
    EXPECT_LE(now, previous + 1e-9);
    previous = now;
  }
}

TEST(BatteryTest, ExhaustionClampsAtZero) {
  Rig rig(100.0);
  BatteryConfig config;
  config.nominal_joules = 50.0;
  Battery battery(&rig.sim, &rig.accounting, config);
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_DOUBLE_EQ(battery.ResidualJoules(rig.sim.Now()), 0.0);
  EXPECT_TRUE(battery.Exhausted(rig.sim.Now()));
}

TEST(BatteryTest, NonIdealBatteryDeliversLessThanNominal) {
  // The headline property: the same platform workload gets less usable
  // lifetime from a non-ideal battery than from an ideal supply.
  Rig rig(15.0);
  BatteryConfig config;
  config.nominal_joules = 1500.0;
  config.rated_watts = 10.0;
  config.peukert_exponent = 1.15;
  config.resistance_fraction = 0.03;
  Battery battery(&rig.sim, &rig.accounting, config);
  int seconds = 0;
  while (!battery.Exhausted(rig.sim.Now()) && seconds < 200) {
    rig.sim.RunUntil(rig.sim.Now() + odsim::SimDuration::Seconds(1));
    ++seconds;
  }
  // Ideal lifetime would be 100 s; the non-ideal battery dies sooner.
  EXPECT_LT(seconds, 100);
  EXPECT_GT(seconds, 70);
}

TEST(BatteryTest, StopFreezesDrain) {
  Rig rig(10.0);
  BatteryConfig config;
  config.nominal_joules = 1000.0;
  Battery battery(&rig.sim, &rig.accounting, config);
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  battery.Stop();
  double drained = battery.drained_joules();
  rig.sim.RunUntil(odsim::SimTime::Seconds(20));
  EXPECT_DOUBLE_EQ(battery.drained_joules(), drained);
}

}  // namespace
}  // namespace odpower
