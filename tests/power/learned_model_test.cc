// Self-constructive power model: RLS core (src/power/learned_model) and the
// utilization features that feed it (src/power/utilization).  Synthetic
// regressions pin the estimator's numerics — recovery of a known linear
// model, coefficient clamping, degenerate-input rejection, covariance
// guarding — and a small two-component machine pins the probe's occupancy
// accounting against hand-computed residencies.

#include "src/power/learned_model.h"

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/power/machine.h"
#include "src/power/utilization.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace odpower {
namespace {

// y = 6 + 2*x1 - 0.5*x2, exercised with occupancy-like features in [0, 1].
std::vector<double> Phi(double x1, double x2) { return {1.0, x1, x2}; }
double Truth(double x1, double x2) { return 6.0 + 2.0 * x1 - 0.5 * x2; }

TEST(LearnedModelTest, RecoversALinearModelFromNoisyObservations) {
  LearnedModel model(3);
  odutil::Rng rng(7);
  for (int i = 0; i < 600; ++i) {
    double x1 = rng.Uniform(0.0, 1.0);
    double x2 = rng.Uniform(0.0, 1.0);
    double noise = rng.Uniform(-0.02, 0.02);
    model.Observe(Phi(x1, x2), Truth(x1, x2) + noise);
  }
  EXPECT_NEAR(model.coefficient(0), 6.0, 0.05);
  EXPECT_NEAR(model.coefficient(1), 2.0, 0.05);
  EXPECT_NEAR(model.coefficient(2), -0.5, 0.05);
  EXPECT_TRUE(model.converged());
  EXPECT_GT(model.confidence(), 0.9);
  EXPECT_LT(model.prediction_error_fraction(), 0.01);
  // Out-of-sample prediction lands on the plane.
  EXPECT_NEAR(model.PredictWatts(Phi(0.3, 0.9)), Truth(0.3, 0.9), 0.1);
}

TEST(LearnedModelTest, TracksADriftingTargetThroughForgetting) {
  LearnedModelConfig config;
  config.forgetting = 0.98;  // Short memory so the test stays small.
  LearnedModel model(3, config);
  odutil::Rng rng(11);
  for (int i = 0; i < 400; ++i) {
    double x1 = rng.Uniform(0.0, 1.0);
    model.Observe(Phi(x1, 0.0), 6.0 + 2.0 * x1);
  }
  ASSERT_NEAR(model.coefficient(1), 2.0, 0.05);
  // The component's real draw changes; with forgetting the fit follows.
  for (int i = 0; i < 400; ++i) {
    double x1 = rng.Uniform(0.0, 1.0);
    model.Observe(Phi(x1, 0.0), 6.0 + 3.5 * x1);
  }
  EXPECT_NEAR(model.coefficient(1), 3.5, 0.1);
}

TEST(LearnedModelTest, CoefficientsClampToPhysicalBounds) {
  LearnedModelConfig config;
  config.min_coefficient_watts = -5.0;
  config.max_coefficient_watts = 25.0;
  LearnedModel model(2, config);
  // An (erroneous) 500 W target: no component of this machine draws that,
  // so the fit must saturate at the bound instead of following.
  for (int i = 0; i < 200; ++i) {
    model.Observe({1.0, 1.0}, 500.0);
  }
  EXPECT_LE(model.coefficient(0), 25.0);
  EXPECT_LE(model.coefficient(1), 25.0);
  for (int i = 0; i < 200; ++i) {
    model.Observe({1.0, 1.0}, -500.0);
  }
  EXPECT_GE(model.coefficient(0), -5.0);
  EXPECT_GE(model.coefficient(1), -5.0);
}

TEST(LearnedModelTest, NonFiniteInputsAreSkippedNotFolded) {
  LearnedModel model(2);
  model.Observe({1.0, 0.5}, 8.0);
  int samples = model.samples();
  model.Observe({1.0, 0.5}, std::nan(""));
  model.Observe({1.0, std::nan("")}, 8.0);
  model.Observe({1.0, 0.5}, std::numeric_limits<double>::infinity());
  EXPECT_EQ(model.samples(), samples);
  EXPECT_EQ(model.skipped_updates(), 3);
}

TEST(LearnedModelTest, PredictionIsClampedNonNegative) {
  LearnedModel model(2);
  for (int i = 0; i < 100; ++i) {
    model.Observe({1.0, 1.0}, 0.1);
    model.Observe({1.0, 0.0}, 2.0);
  }
  // Extrapolating past the data could go negative; a power model must not.
  EXPECT_GE(model.PredictWatts({1.0, 2.0}), 0.0);
}

TEST(LearnedModelTest, CovarianceGuardCatchesUnexcitedFeatures) {
  LearnedModel model(3);
  // Feature 2 is never excited: under forgetting its prior variance
  // inflates by 1/lambda per update, unbounded, until the guard caps it.
  odutil::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    model.Observe(Phi(rng.Uniform(0.0, 1.0), 0.0), 6.0);
  }
  EXPECT_GT(model.guarded_updates(), 0);
  EXPECT_LE(model.condition_proxy(), model.config().max_condition * 1.01);
}

TEST(LearnedModelTest, ConfidenceRampsWithSamplesAndQuality) {
  LearnedModel model(2);
  EXPECT_FALSE(model.converged());
  EXPECT_EQ(model.confidence(), 0.0);
  for (int i = 0; i < 30; ++i) {
    model.Observe({1.0, 0.5}, 7.0);
  }
  double early = model.confidence();
  EXPECT_GT(early, 0.0);
  EXPECT_FALSE(model.converged());  // Below convergence_samples.
  for (int i = 0; i < 200; ++i) {
    model.Observe({1.0, 0.5}, 7.0);
  }
  EXPECT_GT(model.confidence(), early);
  EXPECT_TRUE(model.converged());
}

TEST(UtilizationProbeTest, OccupanciesMatchHandComputedResidency) {
  odsim::Simulator sim;
  Machine machine(&sim, 0.0);
  Component* a = machine.AddComponent(
      std::make_unique<Component>("a", std::vector<double>{1.0, 2.0}, 0));
  Component* b = machine.AddComponent(std::make_unique<Component>(
      "b", std::vector<double>{0.5, 1.0, 3.0}, 1));

  UtilizationProbe probe(&machine, sim.Now());
  // dim = 1 intercept + (2-1) + (3-1) non-baseline states.
  ASSERT_EQ(probe.dim(), 4);
  EXPECT_EQ(probe.FeatureName(0), "bias");

  sim.Schedule(odsim::SimDuration::Seconds(2), [&] { a->SetState(1); });
  sim.Schedule(odsim::SimDuration::Seconds(6), [&] { a->SetState(0); });
  sim.Schedule(odsim::SimDuration::Seconds(8), [&] { b->SetState(2); });
  sim.RunUntil(odsim::SimTime::Seconds(10));

  double window = 0.0;
  std::vector<double> phi = probe.DrainWindow(sim.Now(), &window);
  EXPECT_DOUBLE_EQ(window, 10.0);
  ASSERT_EQ(phi.size(), 4u);
  EXPECT_DOUBLE_EQ(phi[0], 1.0);
  // a spent [2 s, 6 s) in state 1 -> 0.4 of the window; b spent [8 s, 10 s)
  // in state 2 -> 0.2.  b's state 0 was never entered.
  double occupancy_a1 = 0.0;
  double occupancy_b0 = 0.0;
  double occupancy_b2 = 0.0;
  for (int i = 1; i < probe.dim(); ++i) {
    if (probe.FeatureName(i) == "a[1]") occupancy_a1 = phi[static_cast<size_t>(i)];
    if (probe.FeatureName(i) == "b[0]") occupancy_b0 = phi[static_cast<size_t>(i)];
    if (probe.FeatureName(i) == "b[2]") occupancy_b2 = phi[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(occupancy_a1, 0.4, 1e-12);
  EXPECT_NEAR(occupancy_b0, 0.0, 1e-12);
  EXPECT_NEAR(occupancy_b2, 0.2, 1e-12);

  // The drain reset the window: an immediate re-drain is empty.
  std::vector<double> empty = probe.DrainWindow(sim.Now(), &window);
  EXPECT_DOUBLE_EQ(window, 0.0);

  // Truth access (evaluation only): increments over each component's
  // baseline state, and the resting intercept.
  for (int i = 1; i < probe.dim(); ++i) {
    if (probe.FeatureName(i) == "a[1]") {
      EXPECT_DOUBLE_EQ(probe.TrueIncrementWatts(i), 1.0);  // 2.0 - 1.0
    }
    if (probe.FeatureName(i) == "b[2]") {
      EXPECT_DOUBLE_EQ(probe.TrueIncrementWatts(i), 2.0);  // 3.0 - 1.0
    }
  }
  EXPECT_DOUBLE_EQ(probe.TrueInterceptWatts(), 2.0);  // a@1.0 + b@1.0.

  // Cumulative excitation survives drains.
  for (int i = 1; i < probe.dim(); ++i) {
    if (probe.FeatureName(i) == "a[1]") {
      EXPECT_NEAR(probe.FeatureSeconds(i), 4.0, 1e-12);
    }
  }
  EXPECT_NEAR(probe.FeatureSeconds(0), 10.0, 1e-12);
}

TEST(UtilizationProbeTest, FeatureStreamCarriesNoCalibratedWattage) {
  // The identifiability contract: occupancies within a window plus the
  // intercept sum to at most 1 per component, and a fully resting machine
  // yields the bare intercept — the features are dimensionless activity,
  // never watts.
  odsim::Simulator sim;
  Machine machine(&sim, 0.0);
  machine.AddComponent(
      std::make_unique<Component>("c", std::vector<double>{4.0, 9.0}, 0));
  UtilizationProbe probe(&machine, sim.Now());
  sim.RunUntil(odsim::SimTime::Seconds(5));
  double window = 0.0;
  std::vector<double> phi = probe.DrainWindow(sim.Now(), &window);
  ASSERT_EQ(phi.size(), 2u);
  EXPECT_DOUBLE_EQ(phi[0], 1.0);
  EXPECT_DOUBLE_EQ(phi[1], 0.0);  // Resting: no trace of the 4 W draw.
}

}  // namespace
}  // namespace odpower
