#include "src/power/supply.h"

#include <gtest/gtest.h>

#include "src/power/cpu.h"
#include "src/power/machine.h"
#include "src/sim/simulator.h"

namespace odpower {
namespace {

struct Rig {
  odsim::Simulator sim;
  Machine machine{&sim, 0.0};
  OtherComponent* other =
      machine.AddComponent(std::make_unique<OtherComponent>(10.0));
  EnergyAccounting accounting{&machine};
};

TEST(SupplyTest, ResidualDrainsWithConsumption) {
  Rig rig;
  EnergySupply supply(&rig.accounting, 100.0);
  EXPECT_DOUBLE_EQ(supply.ResidualJoules(rig.sim.Now()), 100.0);
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  EXPECT_NEAR(supply.ResidualJoules(rig.sim.Now()), 50.0, 1e-9);
}

TEST(SupplyTest, ClampsAtZero) {
  Rig rig;
  EnergySupply supply(&rig.accounting, 100.0);
  rig.sim.RunUntil(odsim::SimTime::Seconds(20));
  EXPECT_DOUBLE_EQ(supply.ResidualJoules(rig.sim.Now()), 0.0);
  EXPECT_TRUE(supply.Exhausted(rig.sim.Now()));
}

TEST(SupplyTest, AnchorsAtCreationTime) {
  Rig rig;
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));  // 50 J consumed before.
  EnergySupply supply(&rig.accounting, 100.0);
  EXPECT_DOUBLE_EQ(supply.ResidualJoules(rig.sim.Now()), 100.0);
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  EXPECT_NEAR(supply.ResidualJoules(rig.sim.Now()), 50.0, 1e-9);
}

TEST(SupplyTest, AddJoulesExtendsLifetime) {
  Rig rig;
  EnergySupply supply(&rig.accounting, 100.0);
  supply.AddJoules(50.0);
  EXPECT_DOUBLE_EQ(supply.initial_joules(), 150.0);
  rig.sim.RunUntil(odsim::SimTime::Seconds(12));
  EXPECT_NEAR(supply.ResidualJoules(rig.sim.Now()), 30.0, 1e-9);
}

}  // namespace
}  // namespace odpower
