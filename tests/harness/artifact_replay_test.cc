#include "src/harness/artifact_replay.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "src/harness/artifact.h"
#include "src/harness/trial_runner.h"

namespace odharness {
namespace {

class ArtifactReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/replay_test";
    std::string cmd = "mkdir -p " + dir_;
    ASSERT_EQ(std::system(cmd.c_str()), 0);

    RunArtifact artifact;
    artifact.experiment = "fig06_video";
    TrialSet set;
    set.base_seed = 1000;
    for (double v : {470.0, 472.0, 468.0}) {
      TrialSample sample;
      sample.value = v;
      sample.breakdown["Idle"] = v / 4.0;
      sample.components["Disk"] = v / 10.0;
      set.trials.push_back(std::move(sample));
    }
    set.Summarize();
    artifact.AddSet("Video 1/Combined", std::move(set));
    artifact.AddNote("claim_ratio", 0.94);
    ASSERT_TRUE(artifact.WriteFile(dir_ + "/fig06_video.json"));
  }

  std::string dir_;
};

TEST_F(ArtifactReplayTest, DisabledWhenDirEmpty) {
  ArtifactReplay replay("");
  EXPECT_FALSE(replay.enabled());
  EXPECT_EQ(replay.Get("fig06_video"), nullptr);
  EXPECT_FALSE(replay.SetMean("fig06_video", "Video 1/Combined").has_value());
}

TEST_F(ArtifactReplayTest, SetMeanIsCrossTrialMean) {
  ArtifactReplay replay(dir_);
  EXPECT_TRUE(replay.enabled());
  auto mean = replay.SetMean("fig06_video", "Video 1/Combined");
  ASSERT_TRUE(mean.has_value());
  EXPECT_DOUBLE_EQ(*mean, 470.0);
}

TEST_F(ArtifactReplayTest, BreakdownComponentAndNoteLookups) {
  ArtifactReplay replay(dir_);
  auto idle = replay.BreakdownMean("fig06_video", "Video 1/Combined", "Idle");
  ASSERT_TRUE(idle.has_value());
  EXPECT_DOUBLE_EQ(*idle, 470.0 / 4.0);
  auto disk = replay.ComponentMean("fig06_video", "Video 1/Combined", "Disk");
  ASSERT_TRUE(disk.has_value());
  EXPECT_DOUBLE_EQ(*disk, 47.0);
  auto note = replay.Note("fig06_video", "claim_ratio");
  ASSERT_TRUE(note.has_value());
  EXPECT_DOUBLE_EQ(*note, 0.94);
}

TEST_F(ArtifactReplayTest, FaultPlanMismatchFallsBackToLive) {
  // An artifact recorded under a disturbance plan answers a different
  // question than a clean-run assertion: the guard must reject it.
  RunArtifact disturbed;
  disturbed.experiment = "fig20_goal_summary";
  disturbed.provenance.fault_plan = "outage@300+60";
  TrialSet set;
  set.base_seed = 2000;
  TrialSample sample;
  sample.value = 1200.0;
  set.trials.push_back(std::move(sample));
  set.Summarize();
  disturbed.AddSet("Goal 20 min", std::move(set));
  ASSERT_TRUE(disturbed.WriteFile(dir_ + "/fig20_goal_summary.json"));

  // Default expectation is a clean run ("") -> recorded plan mismatches.
  ArtifactReplay clean_replay(dir_);
  EXPECT_EQ(clean_replay.Get("fig20_goal_summary"), nullptr);
  EXPECT_FALSE(clean_replay.SetMean("fig20_goal_summary", "Goal 20 min")
                   .has_value());

  // The matching expectation replays it fine.
  ArtifactReplay matching(dir_, "outage@300+60");
  EXPECT_NE(matching.Get("fig20_goal_summary"), nullptr);
  auto mean = matching.SetMean("fig20_goal_summary", "Goal 20 min");
  ASSERT_TRUE(mean.has_value());
  EXPECT_DOUBLE_EQ(*mean, 1200.0);

  // And the guard cuts both ways: a clean artifact must not satisfy a
  // consumer expecting a disturbed run.
  EXPECT_EQ(matching.Get("fig06_video"), nullptr);
}

TEST_F(ArtifactReplayTest, AbsentPiecesReturnNullopt) {
  // Each miss — experiment, set, key, note — is the caller's signal to
  // fall back to live simulation, so none of them may throw.
  ArtifactReplay replay(dir_);
  EXPECT_EQ(replay.Get("no_such_experiment"), nullptr);
  EXPECT_FALSE(replay.SetMean("no_such_experiment", "x").has_value());
  EXPECT_FALSE(replay.SetMean("fig06_video", "No/Such Set").has_value());
  EXPECT_FALSE(replay.BreakdownMean("fig06_video", "Video 1/Combined", "nope")
                   .has_value());
  EXPECT_FALSE(replay.Note("fig06_video", "nope").has_value());
}

TEST_F(ArtifactReplayTest, MalformedArtifactReadsAsAbsent) {
  std::string path = dir_ + "/broken.json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("{\"schema_version\": 3, \"experiment\"", file);
  std::fclose(file);
  ArtifactReplay replay(dir_);
  EXPECT_EQ(replay.Get("broken"), nullptr);
  std::remove(path.c_str());
}

TEST_F(ArtifactReplayTest, CachesParsedArtifactAcrossLookups) {
  ArtifactReplay replay(dir_);
  const RunArtifact* first = replay.Get("fig06_video");
  ASSERT_NE(first, nullptr);
  // Delete the file: a second lookup must serve the cached parse.
  ASSERT_EQ(std::remove((dir_ + "/fig06_video.json").c_str()), 0);
  EXPECT_EQ(replay.Get("fig06_video"), first);
  ASSERT_TRUE(replay.SetMean("fig06_video", "Video 1/Combined").has_value());
}

}  // namespace
}  // namespace odharness
