#include "src/harness/scheduler.h"

#ifndef _WIN32
#include <unistd.h>
#endif

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/job_budget.h"

namespace odharness {
namespace {

// Tiny stand-in experiments: deterministic artifacts, one nonzero rc.
int RunAlpha(RunContext& ctx) {
  std::printf("alpha output line\n");
  ctx.Record("alpha/cell", 11, TrialSample{2.5, {{"part", 1.25}}});
  ctx.Note("alpha_note", 0.5);
  return 0;
}

int RunBeta(RunContext& ctx) {
  ctx.Record("beta/cell", 22, TrialSample{7.5});
  return 3;  // Experiment-level failure; must dominate the suite rc.
}

int RunGamma(RunContext& ctx) {
  ctx.RunTrials("gamma/set", 4, 300, [](uint64_t seed) {
    return TrialSample{static_cast<double>(seed) * 1.5};
  });
  return 0;
}

const Experiment kAlpha{"alpha", "alpha experiment", &RunAlpha, 5.0};
const Experiment kBeta{"beta", "beta experiment", &RunBeta, 50.0};
const Experiment kGamma{"gamma", "gamma experiment", &RunGamma, 1.0};

#ifndef _WIN32
// Sleeps far past any timeout the watchdog tests configure; only ever runs
// forked, where SIGKILL cuts the sleep short.
int RunSleeper(RunContext&) {
  ::usleep(30'000'000);
  return 0;
}
const Experiment kSleeper{"sleeper", "sleeps until killed", &RunSleeper, 99.0};
#endif

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class SchedulerTest : public testing::Test {
 protected:
  void TearDown() override { JobBudget::Global().Reset(); }
};

TEST_F(SchedulerTest, ParallelSuiteMatchesSerialArtifactsAndWorstRc) {
  const std::string serial_dir = testing::TempDir() + "/sched_serial";
  const std::string parallel_dir = testing::TempDir() + "/sched_parallel";
  std::filesystem::remove_all(serial_dir);
  std::filesystem::remove_all(parallel_dir);
  std::filesystem::create_directories(serial_dir);
  std::filesystem::create_directories(parallel_dir);

  const std::vector<const Experiment*> suite = {&kAlpha, &kBeta, &kGamma};

  RunOptions serial;
  serial.jobs = 1;
  serial.out_dir = serial_dir;
  EXPECT_EQ(RunExperiments(suite, serial), 3);

  JobBudget::Global().Reset();
  RunOptions parallel;
  parallel.jobs = 4;
  parallel.out_dir = parallel_dir;
  EXPECT_EQ(RunExperiments(suite, parallel), 3);

  for (const char* name : {"alpha", "beta", "gamma"}) {
    const std::string a = Slurp(serial_dir + "/" + name + ".json");
    const std::string b = Slurp(parallel_dir + "/" + name + ".json");
    ASSERT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, b) << name;  // The determinism contract, byte for byte.
  }

  std::filesystem::remove_all(serial_dir);
  std::filesystem::remove_all(parallel_dir);
}

TEST_F(SchedulerTest, RunWithoutOutDirWritesNoArtifacts) {
  RunOptions options;  // out_dir empty: console-only run.
  EXPECT_EQ(RunExperiment(kAlpha, options), 0);
  EXPECT_EQ(RunExperiment(kBeta, options), 3);
}

#ifndef _WIN32
TEST_F(SchedulerTest, WatchdogKillsOverdueChildAsExitCode124) {
  const std::string out_dir = testing::TempDir() + "/sched_watchdog";
  std::filesystem::remove_all(out_dir);
  std::filesystem::create_directories(out_dir);

  RunOptions options;
  options.jobs = 2;  // Forked mode; the watchdog only applies there.
  options.out_dir = out_dir;
  options.experiment_timeout_seconds = 0.2;
  const std::vector<const Experiment*> suite = {&kAlpha, &kSleeper};
  EXPECT_EQ(RunExperiments(suite, options), 124);

  // The well-behaved experiment still ran to completion and wrote its
  // artifact; the killed one never got that far.
  EXPECT_TRUE(std::filesystem::exists(out_dir + "/alpha.json"));
  EXPECT_FALSE(std::filesystem::exists(out_dir + "/sleeper.json"));
  std::filesystem::remove_all(out_dir);
}

TEST_F(SchedulerTest, GenerousTimeoutKillsNothing) {
  RunOptions options;
  options.jobs = 2;
  options.experiment_timeout_seconds = 60.0;
  const std::vector<const Experiment*> suite = {&kAlpha, &kGamma};
  EXPECT_EQ(RunExperiments(suite, options), 0);
}

TEST_F(SchedulerTest, SuiteSurvivesAndContinuesPastAKill) {
  // Experiments queued behind the killed one must still run: the reclaimed
  // jobserver tokens keep the pool usable.
  RunOptions options;
  options.jobs = 2;
  options.experiment_timeout_seconds = 0.2;
  const std::vector<const Experiment*> suite = {&kSleeper, &kAlpha, &kBeta,
                                                &kGamma};
  // Worst rc across the suite: the kill (124) dominates beta's 3.
  EXPECT_EQ(RunExperiments(suite, options), 124);
}
#endif

TEST_F(SchedulerTest, ArtifactWriteFailureIsANonzeroExit) {
  // Block the artifact directory with a regular file so WriteFile fails.
  const std::string blocker = testing::TempDir() + "/sched_blocker";
  std::filesystem::remove_all(blocker);
  { std::ofstream touch(blocker); }

  RunOptions options;
  options.out_dir = blocker + "/nested";
  EXPECT_EQ(RunExperiment(kAlpha, options), 74);  // EX_IOERR.
  // The write failure must also dominate a whole-suite run.
  const std::vector<const Experiment*> suite = {&kAlpha, &kGamma};
  EXPECT_EQ(RunExperiments(suite, options), 74);

  std::filesystem::remove(blocker);
}

}  // namespace
}  // namespace odharness
