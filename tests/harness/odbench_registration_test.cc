// Links the odbench_experiments object library, so the registry here holds
// exactly the experiments the odbench binary ships: all 31 of them.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/registry.h"

namespace odharness {
namespace {

const char* const kExpected[] = {
    "ablate_cpu_scaling", "ablate_hysteresis", "ablate_monitoring",
    "ablate_priority",    "calibrate",         "fault_sweep",
    "fig02_profile",      "fig04_power_table", "fig06_video",
    "fig08_speech",       "fig10_map",         "fig11_map_think",
    "fig13_web",          "fig14_web_think",   "fig15_concurrency",
    "fig16_summary",      "fig18_zoned",       "fig19_goal_timeline",
    "fig20_goal_summary", "fig21_halflife",    "fig22_longrun",
    "fleet_small",        "fleet_sweep",       "gauge_drift_sweep",
    "goal_fault_sweep",   "goalprobe",         "learned_model_sweep",
    "lifetime",           "micro_overhead",    "scenario_sweep",
    "simspeed",
};

TEST(OdbenchRegistrationTest, AllThirtyExperimentsRegistered) {
  auto& registry = ExperimentRegistry::Instance();
  EXPECT_EQ(registry.size(), 31u);
  for (const char* name : kExpected) {
    EXPECT_NE(registry.Find(name), nullptr) << name;
  }
}

TEST(OdbenchRegistrationTest, EveryExperimentHasDescription) {
  for (const Experiment* experiment :
       ExperimentRegistry::Instance().List()) {
    EXPECT_FALSE(experiment->description.empty()) << experiment->name;
    EXPECT_NE(experiment->run, nullptr) << experiment->name;
  }
}

TEST(OdbenchRegistrationTest, PrefixResolution) {
  auto& registry = ExperimentRegistry::Instance();
  const Experiment* fig04 = registry.Resolve("fig04");
  ASSERT_NE(fig04, nullptr);
  EXPECT_EQ(fig04->name, "fig04_power_table");

  // "fig1" matches several figures; Resolve must refuse and list them.
  std::vector<std::string> matches;
  EXPECT_EQ(registry.Resolve("fig1", &matches), nullptr);
  EXPECT_GT(matches.size(), 1u);
}

TEST(OdbenchRegistrationTest, RunsFig04EndToEnd) {
  const Experiment* fig04 =
      ExperimentRegistry::Instance().Find("fig04_power_table");
  ASSERT_NE(fig04, nullptr);
  RunOptions options;
  options.trials = 1;
  RunContext ctx("fig04_power_table", options);
  EXPECT_EQ(fig04->run(ctx), 0);
}

TEST(OdbenchRegistrationTest, Fig06ParallelTrialsMatchSerial) {
  const Experiment* fig06 = ExperimentRegistry::Instance().Find("fig06_video");
  ASSERT_NE(fig06, nullptr);

  RunOptions serial;
  serial.trials = 2;
  RunContext serial_ctx("fig06_video", serial);
  ASSERT_EQ(fig06->run(serial_ctx), 0);

  RunOptions threaded;
  threaded.trials = 2;
  threaded.jobs = 4;
  RunContext threaded_ctx("fig06_video", threaded);
  ASSERT_EQ(fig06->run(threaded_ctx), 0);

  const RunArtifact& a = serial_ctx.artifact();
  const RunArtifact& b = threaded_ctx.artifact();
  ASSERT_EQ(a.sets.size(), b.sets.size());
  for (size_t i = 0; i < a.sets.size(); ++i) {
    EXPECT_EQ(a.sets[i].label, b.sets[i].label);
    EXPECT_EQ(a.sets[i].set.summary.mean, b.sets[i].set.summary.mean)
        << a.sets[i].label;
  }
}

}  // namespace
}  // namespace odharness
