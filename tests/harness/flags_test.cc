#include "src/harness/flags.h"

#include <gtest/gtest.h>

namespace odharness {
namespace {

TEST(FlagsTest, PositionalThenFlags) {
  Flags flags({"run", "fig04", "--trials", "3", "--jobs=8"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "fig04");
  EXPECT_EQ(flags.GetInt("trials", 0), 3);
  EXPECT_EQ(flags.GetInt("jobs", 1), 8);
}

TEST(FlagsTest, EqualsAndSpaceFormsAreEquivalent) {
  Flags space({"--seed", "42"});
  Flags equals({"--seed=42"});
  EXPECT_EQ(space.GetUint64("seed", 0), 42u);
  EXPECT_EQ(equals.GetUint64("seed", 0), 42u);
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  Flags flags({"run"});
  EXPECT_FALSE(flags.Has("trials"));
  EXPECT_EQ(flags.GetString("out", "artifacts"), "artifacts");
  EXPECT_DOUBLE_EQ(flags.GetDouble("minutes", 22.0), 22.0);
  EXPECT_EQ(flags.GetInt("jobs", 1), 1);
}

TEST(FlagsTest, BooleanFlagsHaveNoValue) {
  Flags flags({"lifetime", "--lowest", "--joules", "9000"});
  EXPECT_TRUE(flags.Has("lowest"));
  EXPECT_DOUBLE_EQ(flags.GetDouble("joules", 0.0), 9000.0);
}

TEST(FlagsTest, ValidateAcceptsDeclaredFlags) {
  Flags flags({"goal", "--minutes", "25", "--bursty"});
  std::string error;
  EXPECT_TRUE(flags.Validate({"minutes", "joules"}, {"bursty"}, &error));
  EXPECT_TRUE(error.empty());
}

TEST(FlagsTest, ValidateRejectsUnknownFlag) {
  Flags flags({"run", "fig04", "--trails", "3"});
  std::string error;
  EXPECT_FALSE(flags.Validate({"trials", "seed"}, {}, &error));
  EXPECT_NE(error.find("trails"), std::string::npos);
}

TEST(FlagsTest, ValidateRejectsValueFlagWithoutValue) {
  Flags flags({"run", "fig04", "--trials"});
  std::string error;
  EXPECT_FALSE(flags.Validate({"trials"}, {}, &error));
}

TEST(FlagsTest, GetStringForValuelessFlagReturnsFallback) {
  Flags flags({"--bursty"});
  EXPECT_TRUE(flags.Has("bursty"));
  EXPECT_EQ(flags.GetString("bursty", "x"), "x");
}

}  // namespace
}  // namespace odharness
