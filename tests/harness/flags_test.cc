#include "src/harness/flags.h"

#include <gtest/gtest.h>

namespace odharness {
namespace {

TEST(FlagsTest, PositionalThenFlags) {
  Flags flags({"run", "fig04", "--trials", "3", "--jobs=8"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "fig04");
  EXPECT_EQ(flags.GetInt("trials", 0), 3);
  EXPECT_EQ(flags.GetInt("jobs", 1), 8);
}

TEST(FlagsTest, EqualsAndSpaceFormsAreEquivalent) {
  Flags space({"--seed", "42"});
  Flags equals({"--seed=42"});
  EXPECT_EQ(space.GetUint64("seed", 0), 42u);
  EXPECT_EQ(equals.GetUint64("seed", 0), 42u);
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  Flags flags({"run"});
  EXPECT_FALSE(flags.Has("trials"));
  EXPECT_EQ(flags.GetString("out", "artifacts"), "artifacts");
  EXPECT_DOUBLE_EQ(flags.GetDouble("minutes", 22.0), 22.0);
  EXPECT_EQ(flags.GetInt("jobs", 1), 1);
}

TEST(FlagsTest, BooleanFlagsHaveNoValue) {
  Flags flags({"lifetime", "--lowest", "--joules", "9000"});
  EXPECT_TRUE(flags.Has("lowest"));
  EXPECT_DOUBLE_EQ(flags.GetDouble("joules", 0.0), 9000.0);
}

TEST(FlagsTest, ValidateAcceptsDeclaredFlags) {
  Flags flags({"goal", "--minutes", "25", "--bursty"});
  std::string error;
  EXPECT_TRUE(flags.Validate({"minutes", "joules"}, {"bursty"}, &error));
  EXPECT_TRUE(error.empty());
}

TEST(FlagsTest, ValidateRejectsUnknownFlag) {
  Flags flags({"run", "fig04", "--trails", "3"});
  std::string error;
  EXPECT_FALSE(flags.Validate({"trials", "seed"}, {}, &error));
  EXPECT_NE(error.find("trails"), std::string::npos);
}

TEST(FlagsTest, ValidateRejectsValueFlagWithoutValue) {
  Flags flags({"run", "fig04", "--trials"});
  std::string error;
  EXPECT_FALSE(flags.Validate({"trials"}, {}, &error));
}

TEST(FlagsTest, GetStringForValuelessFlagReturnsFallback) {
  Flags flags({"--bursty"});
  EXPECT_TRUE(flags.Has("bursty"));
  EXPECT_EQ(flags.GetString("bursty", "x"), "x");
}

// Regression: positionals after a flag pair used to be rejected, forcing
// `odbench run all --jobs 4` word order.  Both orders must now parse.
TEST(FlagsTest, PositionalsInterleaveWithFlags) {
  Flags flags({"run", "--jobs", "4", "all", "--trials=3"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "all");
  EXPECT_EQ(flags.GetInt("jobs", 1), 4);
  EXPECT_EQ(flags.GetInt("trials", 0), 3);
}

TEST(FlagsTest, DoubleDashEndsFlagParsing) {
  Flags flags({"run", "--jobs", "2", "--", "--trials", "fig04"});
  EXPECT_EQ(flags.GetInt("jobs", 1), 2);
  EXPECT_FALSE(flags.Has("trials"));
  ASSERT_EQ(flags.positional().size(), 3u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "--trials");
  EXPECT_EQ(flags.positional()[2], "fig04");
}

// Regression: Has() used to scan value tokens too, so `--out=--trials`
// made Has("trials") true.  Only flag-name tokens may match.
TEST(FlagsTest, ValueTokensAreNotFlagNames) {
  Flags flags({"--out=--trials"});
  EXPECT_TRUE(flags.Has("out"));
  EXPECT_FALSE(flags.Has("trials"));
  EXPECT_EQ(flags.GetString("out", ""), "--trials");
}

// Regression: GetInt used atoi and silently returned 0 for garbage, so
// `--trials five` ran zero-trial experiments instead of failing.
TEST(FlagsTest, GetIntRejectsGarbage) {
  EXPECT_THROW(Flags({"--trials", "five"}).GetInt("trials", 5), FlagError);
  EXPECT_THROW(Flags({"--trials", "12abc"}).GetInt("trials", 5), FlagError);
  EXPECT_THROW(Flags({"--trials="}).GetInt("trials", 5), FlagError);
  EXPECT_THROW(Flags({"--trials", "99999999999999999999"}).GetInt("trials", 5),
               FlagError);
  EXPECT_EQ(Flags({"--trials", "-2"}).GetInt("trials", 5), -2);
}

TEST(FlagsTest, GetDoubleRejectsGarbage) {
  EXPECT_THROW(Flags({"--minutes", "abc"}).GetDouble("minutes", 1.0),
               FlagError);
  EXPECT_THROW(Flags({"--minutes", "1.5x"}).GetDouble("minutes", 1.0),
               FlagError);
  EXPECT_THROW(Flags({"--minutes="}).GetDouble("minutes", 1.0), FlagError);
  EXPECT_DOUBLE_EQ(Flags({"--minutes", "22.5"}).GetDouble("minutes", 1.0),
                   22.5);
}

TEST(FlagsTest, GetUint64RejectsGarbageAndNegatives) {
  EXPECT_THROW(Flags({"--seed", "xyz"}).GetUint64("seed", 1), FlagError);
  EXPECT_THROW(Flags({"--seed", "-3"}).GetUint64("seed", 1), FlagError);
  EXPECT_EQ(Flags({"--seed", "18446744073709551615"}).GetUint64("seed", 1),
            18446744073709551615ull);
}

TEST(FlagsTest, ValidateRejectsBoolFlagWithValue) {
  Flags flags({"--lowest=yes"});
  std::string error;
  EXPECT_FALSE(flags.Validate({}, {"lowest"}, &error));
  EXPECT_NE(error.find("does not take a value"), std::string::npos);
}

}  // namespace
}  // namespace odharness
