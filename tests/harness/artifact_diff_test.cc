#include "src/harness/artifact_diff.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "src/harness/artifact.h"

namespace odharness {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TrialSet MakeSet(std::vector<double> values, uint64_t base_seed = 1000) {
  TrialSet set;
  set.base_seed = base_seed;
  for (double v : values) {
    TrialSample sample;
    sample.value = v;
    sample.breakdown["Idle"] = v / 4.0;
    set.trials.push_back(std::move(sample));
  }
  set.Summarize();
  return set;
}

RunArtifact MakeArtifact() {
  RunArtifact artifact;
  artifact.experiment = "fig06_video";
  artifact.AddSet("Video 1/Baseline", MakeSet({700.0, 702.0, 698.0}));
  artifact.AddSet("Video 1/Combined", MakeSet({470.0, 472.0, 468.0}));
  artifact.AddNote("claim_ratio", 0.94);
  return artifact;
}

TEST(WithinToleranceTest, ExactBoundaryIsWithin) {
  // The rule is |a-b| <= atol + rtol*max(|a|,|b|): equality counts.
  DiffOptions options;
  options.atol = 1.0;
  EXPECT_TRUE(WithinTolerance(10.0, 11.0, options));
  EXPECT_FALSE(WithinTolerance(10.0, 11.0 + 1e-9, options));

  DiffOptions relative;
  relative.rtol = 0.1;
  EXPECT_TRUE(WithinTolerance(100.0, 110.0, relative));  // 10 == 0.1 * 110.
  EXPECT_FALSE(WithinTolerance(100.0, 112.0, relative));
}

TEST(WithinToleranceTest, NonFiniteValues) {
  DiffOptions loose;
  loose.atol = 1e9;
  // Bit-identical non-finite values are "no change", any other non-finite
  // pairing is out of tolerance no matter how loose the tolerance.
  EXPECT_TRUE(WithinTolerance(kNan, kNan, loose));
  EXPECT_TRUE(WithinTolerance(kInf, kInf, loose));
  EXPECT_TRUE(WithinTolerance(-kInf, -kInf, loose));
  EXPECT_FALSE(WithinTolerance(kInf, -kInf, loose));
  EXPECT_FALSE(WithinTolerance(kNan, 1.0, loose));
  EXPECT_FALSE(WithinTolerance(kInf, 1.0, loose));
}

TEST(ArtifactDiffTest, IdenticalArtifacts) {
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  ArtifactDiff diff = DiffArtifacts(a, b, {});
  EXPECT_TRUE(diff.identical());
  EXPECT_EQ(diff.ExitCode(), 0);
  EXPECT_TRUE(diff.changes.empty());
}

TEST(ArtifactDiffTest, EmptyArtifactsAreIdentical) {
  RunArtifact a, b;
  a.experiment = b.experiment = "empty";
  EXPECT_EQ(DiffArtifacts(a, b, {}).ExitCode(), 0);
}

TEST(ArtifactDiffTest, SetWithNoTrialsComparesClean) {
  RunArtifact a, b;
  a.experiment = b.experiment = "x";
  a.AddSet("empty", MakeSet({}));
  b.AddSet("empty", MakeSet({}));
  EXPECT_EQ(DiffArtifacts(a, b, {}).ExitCode(), 0);
}

TEST(ArtifactDiffTest, ReorderedSetsAndNotesAreNotAChange) {
  RunArtifact a = MakeArtifact();
  a.AddNote("second_note", 2.0);
  RunArtifact b;
  b.experiment = a.experiment;
  b.AddNote("second_note", 2.0);
  b.AddNote("claim_ratio", 0.94);
  b.AddSet("Video 1/Combined", MakeSet({470.0, 472.0, 468.0}));
  b.AddSet("Video 1/Baseline", MakeSet({700.0, 702.0, 698.0}));
  EXPECT_EQ(DiffArtifacts(a, b, {}).ExitCode(), 0);
}

TEST(ArtifactDiffTest, DriftWithinToleranceExitsOne) {
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  b.sets[0].set.trials[1].value += 0.5;
  b.sets[0].set.Summarize();
  DiffOptions options;
  options.atol = 1.0;
  ArtifactDiff diff = DiffArtifacts(a, b, options);
  EXPECT_EQ(diff.severity, ArtifactDiff::Severity::kDrift);
  EXPECT_EQ(diff.ExitCode(), 1);
  ASSERT_EQ(diff.changes.size(), 1u);
  EXPECT_TRUE(diff.changes[0].within);
  EXPECT_EQ(diff.changes[0].path, "sets[Video 1/Baseline].trials[1].value");
}

TEST(ArtifactDiffTest, OutOfToleranceExitsTwo) {
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  b.sets[1].set.trials[0].value += 50.0;
  b.sets[1].set.Summarize();
  ArtifactDiff diff = DiffArtifacts(a, b, {});
  EXPECT_EQ(diff.ExitCode(), 2);
  // The report names the offending set.
  ASSERT_FALSE(diff.changes.empty());
  EXPECT_NE(diff.changes[0].path.find("Video 1/Combined"), std::string::npos);
}

TEST(ArtifactDiffTest, WorstChangeDeterminesSeverity) {
  // One within-tolerance drift plus one regression: exit 2, not 1.
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  b.sets[0].set.trials[0].value += 0.5;   // within atol=1
  b.sets[1].set.trials[0].value += 50.0;  // far outside
  ArtifactDiff diff = DiffArtifacts(a, b, DiffOptions{0.0, 1.0});
  EXPECT_EQ(diff.ExitCode(), 2);
  EXPECT_EQ(diff.changes.size(), 2u);
}

TEST(ArtifactDiffTest, NanCellsCompareEqualToNan) {
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  a.sets[0].set.trials[2].value = kNan;
  b.sets[0].set.trials[2].value = kNan;
  EXPECT_EQ(DiffArtifacts(a, b, {}).ExitCode(), 0);

  b.sets[0].set.trials[2].value = 1.0;
  EXPECT_EQ(DiffArtifacts(a, b, {}).ExitCode(), 2);
}

TEST(ArtifactDiffTest, InfinityMismatchIsRegressionAtAnyTolerance) {
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  a.notes[0].second = kInf;
  b.notes[0].second = -kInf;
  DiffOptions loose;
  loose.atol = 1e12;
  EXPECT_EQ(DiffArtifacts(a, b, loose).ExitCode(), 2);
}

TEST(ArtifactDiffTest, OneSidedSetIsRegression) {
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  b.AddSet("Video 1/Extra", MakeSet({1.0}));
  ArtifactDiff diff = DiffArtifacts(a, b, {});
  EXPECT_EQ(diff.ExitCode(), 2);
  ASSERT_EQ(diff.changes.size(), 1u);
  EXPECT_EQ(diff.changes[0].kind, ArtifactDiff::Change::Kind::kAddedInB);
}

TEST(ArtifactDiffTest, OneSidedNoteIsRegression) {
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  a.AddNote("only_in_first", 3.0);
  ArtifactDiff diff = DiffArtifacts(a, b, {});
  EXPECT_EQ(diff.ExitCode(), 2);
  ASSERT_EQ(diff.changes.size(), 1u);
  EXPECT_EQ(diff.changes[0].kind, ArtifactDiff::Change::Kind::kRemovedInB);
  EXPECT_EQ(diff.changes[0].path, "notes[only_in_first]");
}

TEST(ArtifactDiffTest, OneSidedBreakdownKeyIsRegression) {
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  b.sets[0].set.trials[0].breakdown["Extra"] = 1.0;
  EXPECT_EQ(DiffArtifacts(a, b, {}).ExitCode(), 2);
}

TEST(ArtifactDiffTest, SeedMismatchIsStructural) {
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  b.sets[0].set.base_seed = 9999;
  ArtifactDiff diff = DiffArtifacts(a, b, {});
  EXPECT_EQ(diff.ExitCode(), 2);
  ASSERT_EQ(diff.changes.size(), 1u);
  EXPECT_EQ(diff.changes[0].kind, ArtifactDiff::Change::Kind::kStructural);
  // Different seeds measure different populations: the per-trial values are
  // deliberately not compared on top of the structural report.
}

TEST(ArtifactDiffTest, TrialCountMismatchIsStructural) {
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  b.sets[0].set.trials.pop_back();
  b.sets[0].set.Summarize();
  ArtifactDiff diff = DiffArtifacts(a, b, {});
  EXPECT_EQ(diff.ExitCode(), 2);
  ASSERT_EQ(diff.changes.size(), 1u);
  EXPECT_EQ(diff.changes[0].kind, ArtifactDiff::Change::Kind::kStructural);
}

TEST(ArtifactDiffTest, ExperimentNameMismatchIsStructural) {
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  b.experiment = "fig08_speech";
  EXPECT_EQ(DiffArtifacts(a, b, {}).ExitCode(), 2);
}

TEST(ArtifactDiffTest, ProvenanceDifferencesNeverAffectExitCode) {
  // The guarantee committed goldens rely on: a fresh run from a later
  // commit, or with retuned calibration, still diffs clean when the
  // measured numbers match.
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  a.provenance.git_revision = "aaaa111";
  b.provenance.git_revision = "bbbb222";
  a.provenance.trials_override = 0;
  b.provenance.trials_override = 7;
  a.provenance.calibration = {{"video.chunk_seconds", 0.5}, {"old.key", 1.0}};
  b.provenance.calibration = {{"video.chunk_seconds", 0.25}, {"new.key", 2.0}};
  ArtifactDiff diff = DiffArtifacts(a, b, {});
  EXPECT_EQ(diff.ExitCode(), 0);
  EXPECT_TRUE(diff.changes.empty());
  // ...but every difference is surfaced as a hint: revision, override, the
  // changed constant, and both one-sided constants.
  EXPECT_EQ(diff.provenance_hints.size(), 5u);
}

TEST(ArtifactDiffTest, PerturbedCalibrationNamedInHintsNextToRegression) {
  // The acceptance scenario: a calibration constant changes, the dependent
  // measurements shift out of tolerance — the diff reports the shifted set
  // AND names the constant.
  RunArtifact a = MakeArtifact();
  RunArtifact b = MakeArtifact();
  a.provenance.calibration = {{"video.decode_joules_per_frame", 0.03}};
  b.provenance.calibration = {{"video.decode_joules_per_frame", 0.06}};
  for (TrialSample& trial : b.sets[0].set.trials) {
    trial.value *= 1.4;
  }
  b.sets[0].set.Summarize();
  ArtifactDiff diff = DiffArtifacts(a, b, {});
  EXPECT_EQ(diff.ExitCode(), 2);
  ASSERT_EQ(diff.provenance_hints.size(), 1u);
  EXPECT_NE(diff.provenance_hints[0].find("video.decode_joules_per_frame"),
            std::string::npos);
}

}  // namespace
}  // namespace odharness
