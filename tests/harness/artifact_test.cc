#include "src/harness/artifact.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "src/harness/trial_runner.h"

namespace odharness {
namespace {

RunArtifact MakeArtifact() {
  RunArtifact artifact;
  artifact.experiment = "fig06_video";
  artifact.exit_code = 0;

  TrialRunner runner(1);
  TrialSet set = runner.Run(5, 1000, [](uint64_t seed) {
    TrialSample s;
    s.value = 400.0 + static_cast<double>(seed % 7) * 1.3;
    s.breakdown["Idle"] = 120.0 + static_cast<double>(seed % 3);
    s.breakdown["xanim"] = 250.0 - static_cast<double>(seed % 5);
    s.components["CPU"] = 88.0 + 0.5 * static_cast<double>(seed % 4);
    return s;
  });
  artifact.AddSet("Video 1/Combined", std::move(set));
  artifact.AddNote("background_watts", 5.65);
  artifact.AddNote("claim_ratio", 0.94);
  return artifact;
}

void ExpectEqual(const RunArtifact& a, const RunArtifact& b) {
  EXPECT_EQ(a.experiment, b.experiment);
  EXPECT_EQ(a.exit_code, b.exit_code);
  ASSERT_EQ(a.sets.size(), b.sets.size());
  for (size_t i = 0; i < a.sets.size(); ++i) {
    EXPECT_EQ(a.sets[i].label, b.sets[i].label);
    const TrialSet& x = a.sets[i].set;
    const TrialSet& y = b.sets[i].set;
    EXPECT_EQ(x.base_seed, y.base_seed);
    ASSERT_EQ(x.trials.size(), y.trials.size());
    for (size_t t = 0; t < x.trials.size(); ++t) {
      EXPECT_EQ(x.trials[t].value, y.trials[t].value);
      EXPECT_EQ(x.trials[t].breakdown, y.trials[t].breakdown);
      EXPECT_EQ(x.trials[t].components, y.trials[t].components);
    }
    // FromJson recomputes summaries from the trial samples; with exact
    // double round-tripping they must match bit for bit.
    EXPECT_EQ(x.summary.n, y.summary.n);
    EXPECT_EQ(x.summary.mean, y.summary.mean);
    EXPECT_EQ(x.summary.stddev, y.summary.stddev);
    EXPECT_EQ(x.summary.ci90_halfwidth, y.summary.ci90_halfwidth);
    ASSERT_EQ(x.breakdown_summaries.size(), y.breakdown_summaries.size());
    for (const auto& [key, summary] : x.breakdown_summaries) {
      ASSERT_TRUE(y.breakdown_summaries.count(key));
      EXPECT_EQ(summary.mean, y.breakdown_summaries.at(key).mean);
    }
  }
  ASSERT_EQ(a.notes.size(), b.notes.size());
  for (size_t i = 0; i < a.notes.size(); ++i) {
    EXPECT_EQ(a.notes[i], b.notes[i]);
  }
}

TEST(ArtifactTest, JsonRoundTrip) {
  RunArtifact artifact = MakeArtifact();
  auto restored = RunArtifact::FromJson(artifact.ToJson());
  ASSERT_TRUE(restored.has_value());
  ExpectEqual(artifact, *restored);
}

TEST(ArtifactTest, SerializedTextRoundTrip) {
  RunArtifact artifact = MakeArtifact();
  std::string text = artifact.ToJson().Dump(2);
  auto json = JsonValue::Parse(text);
  ASSERT_TRUE(json.has_value());
  auto restored = RunArtifact::FromJson(*json);
  ASSERT_TRUE(restored.has_value());
  ExpectEqual(artifact, *restored);
}

TEST(ArtifactTest, JsonCarriesSchemaFields) {
  JsonValue json = MakeArtifact().ToJson();
  EXPECT_DOUBLE_EQ(json.DoubleAt("schema_version"),
                   RunArtifact::kSchemaVersion);
  ASSERT_NE(json.Find("experiment"), nullptr);
  EXPECT_EQ(json.Find("experiment")->AsString(), "fig06_video");
  ASSERT_NE(json.Find("sets"), nullptr);
  ASSERT_EQ(json.Find("sets")->array().size(), 1u);
  const JsonValue& set = json.Find("sets")->array()[0];
  EXPECT_EQ(set.Find("label")->AsString(), "Video 1/Combined");
  ASSERT_NE(set.Find("summary"), nullptr);
  EXPECT_DOUBLE_EQ(set.Find("summary")->DoubleAt("n"), 5.0);
  ASSERT_NE(json.Find("notes"), nullptr);
  EXPECT_DOUBLE_EQ(json.Find("notes")->DoubleAt("background_watts"), 5.65);
}

TEST(ArtifactTest, JsonOmitsNondeterministicRunMetadata) {
  // The determinism contract: artifact bytes must not depend on --jobs or
  // wall clock, so neither may appear in the document.
  JsonValue json = MakeArtifact().ToJson();
  EXPECT_EQ(json.Find("jobs"), nullptr);
  EXPECT_EQ(json.Find("wall_ms"), nullptr);
}

TEST(ArtifactTest, ProvenanceRoundTrip) {
  RunArtifact artifact = MakeArtifact();
  artifact.provenance.git_revision = "abc1234";
  artifact.provenance.trials_override = 7;
  artifact.provenance.seed_override = 42;
  artifact.provenance.calibration = {{"video.chunk_seconds", 0.5},
                                     {"web.jpeg5_scale", 0.05}};
  auto restored = RunArtifact::FromJson(artifact.ToJson());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->provenance.git_revision, "abc1234");
  EXPECT_EQ(restored->provenance.trials_override, 7);
  EXPECT_EQ(restored->provenance.seed_override, 42u);
  EXPECT_EQ(restored->provenance.calibration, artifact.provenance.calibration);
}

TEST(ArtifactTest, VersionTwoDocumentReadsWithDefaultProvenance) {
  // v2 artifacts predate the provenance block; they must stay readable and
  // come back with the default-constructed provenance.
  JsonValue json = MakeArtifact().ToJson();
  json.Set("schema_version", 2);
  ASSERT_TRUE(json.Remove("provenance"));
  auto restored = RunArtifact::FromJson(json);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->provenance.git_revision, "unknown");
  EXPECT_EQ(restored->provenance.trials_override, 0);
  EXPECT_TRUE(restored->provenance.calibration.empty());
  EXPECT_EQ(restored->experiment, "fig06_video");
  ASSERT_EQ(restored->sets.size(), 1u);
}

TEST(ArtifactTest, FromJsonRejectsWrongShape) {
  EXPECT_FALSE(RunArtifact::FromJson(JsonValue(3.0)).has_value());
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("schema_version", 99);
  obj.Set("experiment", "x");
  EXPECT_FALSE(RunArtifact::FromJson(obj).has_value());
}

TEST(ArtifactTest, FromJsonRejectsUnsupportedVersions) {
  JsonValue json = MakeArtifact().ToJson();
  json.Set("schema_version", 1);  // Below kMinReadSchemaVersion.
  EXPECT_FALSE(RunArtifact::FromJson(json).has_value());
  json.Set("schema_version", RunArtifact::kSchemaVersion + 1);
  EXPECT_FALSE(RunArtifact::FromJson(json).has_value());
  json.Set("schema_version", "3");  // Must be a number, not a string.
  EXPECT_FALSE(RunArtifact::FromJson(json).has_value());
  json.Set("schema_version", RunArtifact::kSchemaVersion);
  EXPECT_TRUE(RunArtifact::FromJson(json).has_value());
}

TEST(ArtifactTest, FromJsonRejectsMissingExperiment) {
  JsonValue json = MakeArtifact().ToJson();
  ASSERT_TRUE(json.Remove("experiment"));
  EXPECT_FALSE(RunArtifact::FromJson(json).has_value());
}

TEST(ArtifactTest, FromJsonRejectsMalformedSets) {
  {
    JsonValue json = MakeArtifact().ToJson();
    json.Find("sets")->array()[0].Remove("summary");
    EXPECT_FALSE(RunArtifact::FromJson(json).has_value());
  }
  {
    JsonValue json = MakeArtifact().ToJson();
    json.Find("sets")->array()[0].Remove("label");
    EXPECT_FALSE(RunArtifact::FromJson(json).has_value());
  }
  {
    // A trial entry that is not an object.
    JsonValue json = MakeArtifact().ToJson();
    json.Find("sets")->array()[0].Find("trials")->array()[0] = JsonValue(1.0);
    EXPECT_FALSE(RunArtifact::FromJson(json).has_value());
  }
}

TEST(ArtifactTest, ReadFileRejectsTruncatedDocument) {
  // The torn-write scenario atomic replacement prevents; a byte-level
  // truncation must read back as nullopt, not garbage.
  RunArtifact artifact = MakeArtifact();
  std::string text = artifact.ToJson().Dump(2);
  std::string path = testing::TempDir() + "/truncated_artifact.json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fwrite(text.data(), 1, text.size() / 2, file);
  std::fclose(file);
  EXPECT_FALSE(RunArtifact::ReadFile(path).has_value());
  std::remove(path.c_str());
}

TEST(ArtifactTest, FileRoundTrip) {
  RunArtifact artifact = MakeArtifact();
  std::string path = testing::TempDir() + "/artifact_test.json";
  ASSERT_TRUE(artifact.WriteFile(path));
  auto restored = RunArtifact::ReadFile(path);
  ASSERT_TRUE(restored.has_value());
  ExpectEqual(artifact, *restored);
  std::remove(path.c_str());
}

TEST(ArtifactTest, ReadFileMissingPath) {
  EXPECT_FALSE(RunArtifact::ReadFile("/nonexistent/dir/nope.json").has_value());
}

TEST(ArtifactTest, CompactFileRoundTripsAndIsSingleLine) {
  RunArtifact artifact = MakeArtifact();
  const std::string pretty = testing::TempDir() + "/artifact_pretty.json";
  const std::string compact = testing::TempDir() + "/artifact_compact.json";
  ASSERT_TRUE(artifact.WriteFile(pretty));
  ASSERT_TRUE(artifact.WriteFile(compact, /*compact=*/true));

  // Same document, different spelling: the compact file has no newlines
  // and is strictly smaller.
  std::ifstream in(compact, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_LT(std::filesystem::file_size(compact),
            std::filesystem::file_size(pretty));

  auto restored = RunArtifact::ReadFile(compact);
  ASSERT_TRUE(restored.has_value());
  ExpectEqual(artifact, *restored);
  std::remove(pretty.c_str());
  std::remove(compact.c_str());
}

TEST(ArtifactTest, FaultPlanRoundTripsAndIsOmittedWhenEmpty) {
  RunArtifact clean = MakeArtifact();
  // A clean run's JSON must be byte-identical to the pre-fault schema: the
  // key only appears when a plan actually disturbed the run.
  EXPECT_EQ(clean.ToJson().Find("provenance")->Find("fault_plan"), nullptr);

  RunArtifact faulted = MakeArtifact();
  faulted.provenance.fault_plan = "outage@30+20;loss@60+10=0.3";
  auto restored = RunArtifact::FromJson(faulted.ToJson());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->provenance.fault_plan, faulted.provenance.fault_plan);
}

}  // namespace
}  // namespace odharness
