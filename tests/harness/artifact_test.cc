#include "src/harness/artifact.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/harness/trial_runner.h"

namespace odharness {
namespace {

RunArtifact MakeArtifact() {
  RunArtifact artifact;
  artifact.experiment = "fig06_video";
  artifact.exit_code = 0;

  TrialRunner runner(1);
  TrialSet set = runner.Run(5, 1000, [](uint64_t seed) {
    TrialSample s;
    s.value = 400.0 + static_cast<double>(seed % 7) * 1.3;
    s.breakdown["Idle"] = 120.0 + static_cast<double>(seed % 3);
    s.breakdown["xanim"] = 250.0 - static_cast<double>(seed % 5);
    s.components["CPU"] = 88.0 + 0.5 * static_cast<double>(seed % 4);
    return s;
  });
  artifact.AddSet("Video 1/Combined", std::move(set));
  artifact.AddNote("background_watts", 5.65);
  artifact.AddNote("claim_ratio", 0.94);
  return artifact;
}

void ExpectEqual(const RunArtifact& a, const RunArtifact& b) {
  EXPECT_EQ(a.experiment, b.experiment);
  EXPECT_EQ(a.exit_code, b.exit_code);
  ASSERT_EQ(a.sets.size(), b.sets.size());
  for (size_t i = 0; i < a.sets.size(); ++i) {
    EXPECT_EQ(a.sets[i].label, b.sets[i].label);
    const TrialSet& x = a.sets[i].set;
    const TrialSet& y = b.sets[i].set;
    EXPECT_EQ(x.base_seed, y.base_seed);
    ASSERT_EQ(x.trials.size(), y.trials.size());
    for (size_t t = 0; t < x.trials.size(); ++t) {
      EXPECT_EQ(x.trials[t].value, y.trials[t].value);
      EXPECT_EQ(x.trials[t].breakdown, y.trials[t].breakdown);
      EXPECT_EQ(x.trials[t].components, y.trials[t].components);
    }
    // FromJson recomputes summaries from the trial samples; with exact
    // double round-tripping they must match bit for bit.
    EXPECT_EQ(x.summary.n, y.summary.n);
    EXPECT_EQ(x.summary.mean, y.summary.mean);
    EXPECT_EQ(x.summary.stddev, y.summary.stddev);
    EXPECT_EQ(x.summary.ci90_halfwidth, y.summary.ci90_halfwidth);
    ASSERT_EQ(x.breakdown_summaries.size(), y.breakdown_summaries.size());
    for (const auto& [key, summary] : x.breakdown_summaries) {
      ASSERT_TRUE(y.breakdown_summaries.count(key));
      EXPECT_EQ(summary.mean, y.breakdown_summaries.at(key).mean);
    }
  }
  ASSERT_EQ(a.notes.size(), b.notes.size());
  for (size_t i = 0; i < a.notes.size(); ++i) {
    EXPECT_EQ(a.notes[i], b.notes[i]);
  }
}

TEST(ArtifactTest, JsonRoundTrip) {
  RunArtifact artifact = MakeArtifact();
  auto restored = RunArtifact::FromJson(artifact.ToJson());
  ASSERT_TRUE(restored.has_value());
  ExpectEqual(artifact, *restored);
}

TEST(ArtifactTest, SerializedTextRoundTrip) {
  RunArtifact artifact = MakeArtifact();
  std::string text = artifact.ToJson().Dump(2);
  auto json = JsonValue::Parse(text);
  ASSERT_TRUE(json.has_value());
  auto restored = RunArtifact::FromJson(*json);
  ASSERT_TRUE(restored.has_value());
  ExpectEqual(artifact, *restored);
}

TEST(ArtifactTest, JsonCarriesSchemaFields) {
  JsonValue json = MakeArtifact().ToJson();
  EXPECT_DOUBLE_EQ(json.DoubleAt("schema_version"),
                   RunArtifact::kSchemaVersion);
  ASSERT_NE(json.Find("experiment"), nullptr);
  EXPECT_EQ(json.Find("experiment")->AsString(), "fig06_video");
  ASSERT_NE(json.Find("sets"), nullptr);
  ASSERT_EQ(json.Find("sets")->array().size(), 1u);
  const JsonValue& set = json.Find("sets")->array()[0];
  EXPECT_EQ(set.Find("label")->AsString(), "Video 1/Combined");
  ASSERT_NE(set.Find("summary"), nullptr);
  EXPECT_DOUBLE_EQ(set.Find("summary")->DoubleAt("n"), 5.0);
  ASSERT_NE(json.Find("notes"), nullptr);
  EXPECT_DOUBLE_EQ(json.Find("notes")->DoubleAt("background_watts"), 5.65);
}

TEST(ArtifactTest, JsonOmitsNondeterministicRunMetadata) {
  // The determinism contract: artifact bytes must not depend on --jobs or
  // wall clock, so neither may appear in the document.
  JsonValue json = MakeArtifact().ToJson();
  EXPECT_EQ(json.Find("jobs"), nullptr);
  EXPECT_EQ(json.Find("wall_ms"), nullptr);
}

TEST(ArtifactTest, FromJsonRejectsWrongShape) {
  EXPECT_FALSE(RunArtifact::FromJson(JsonValue(3.0)).has_value());
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("schema_version", 99);
  obj.Set("experiment", "x");
  EXPECT_FALSE(RunArtifact::FromJson(obj).has_value());
}

TEST(ArtifactTest, FileRoundTrip) {
  RunArtifact artifact = MakeArtifact();
  std::string path = testing::TempDir() + "/artifact_test.json";
  ASSERT_TRUE(artifact.WriteFile(path));
  auto restored = RunArtifact::ReadFile(path);
  ASSERT_TRUE(restored.has_value());
  ExpectEqual(artifact, *restored);
  std::remove(path.c_str());
}

TEST(ArtifactTest, ReadFileMissingPath) {
  EXPECT_FALSE(RunArtifact::ReadFile("/nonexistent/dir/nope.json").has_value());
}

}  // namespace
}  // namespace odharness
