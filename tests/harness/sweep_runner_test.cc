#include "src/harness/sweep_runner.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "src/harness/job_budget.h"
#include "src/harness/registry.h"

namespace odharness {
namespace {

class SweepRunnerTest : public testing::Test {
 protected:
  void TearDown() override { JobBudget::Global().Reset(); }
};

// A deterministic stand-in measurement: nontrivial floating point so any
// summation-order bug between job counts would change the summary bytes.
TrialSample FakeMeasure(uint64_t seed) {
  TrialSample sample;
  sample.value = 100.0 + std::sin(static_cast<double>(seed)) * 7.3;
  sample.breakdown["part"] = std::sqrt(static_cast<double>(seed % 11) + 0.1);
  return sample;
}

// Builds the same heterogeneous sweep (plain cells, a hidden baseline, a
// nested trial set) under a given job count and returns the artifact bytes.
std::string ArtifactBytes(int jobs) {
  JobBudget::Global().Reset();
  RunOptions options;
  options.jobs = jobs;
  RunContext ctx("sweep_test", options);
  Sweep sweep(ctx);
  size_t base = sweep.AddHidden([] { return FakeMeasure(1); });
  for (int i = 0; i < 6; ++i) {
    sweep.Add("cell_" + std::to_string(i), 100 + static_cast<uint64_t>(i),
              [i] { return FakeMeasure(100 + static_cast<uint64_t>(i)); });
  }
  sweep.AddTrials("trialset", 5, 500, FakeMeasure);
  sweep.Run();
  ctx.Note("baseline", sweep.Value(base));
  return ctx.artifact().ToJson().Dump(2);
}

TEST_F(SweepRunnerTest, ArtifactBytesIdenticalForAnyJobCount) {
  const std::string serial = ArtifactBytes(1);
  EXPECT_EQ(serial, ArtifactBytes(8));
  EXPECT_EQ(serial, ArtifactBytes(3));
}

TEST_F(SweepRunnerTest, RecordsInSubmissionOrderAcrossPhases) {
  RunOptions options;
  options.jobs = 4;
  RunContext ctx("sweep_test", options);
  Sweep sweep(ctx);
  size_t hidden = sweep.AddHidden([] { return FakeMeasure(9); });
  sweep.Add("first", 1, [] { return FakeMeasure(1); });
  sweep.Run();
  // A second phase may depend on the first (e.g. fig18's baselines).
  double baseline = sweep.Value(hidden);
  sweep.Add("second", 2, [baseline] {
    TrialSample s = FakeMeasure(2);
    s.value /= baseline;
    return s;
  });
  sweep.Run();

  const RunArtifact& artifact = ctx.artifact();
  ASSERT_EQ(artifact.sets.size(), 2u);  // Hidden cells are not recorded.
  EXPECT_EQ(artifact.sets[0].label, "first");
  EXPECT_EQ(artifact.sets[1].label, "second");
  EXPECT_DOUBLE_EQ(sweep.Value(1), artifact.sets[0].set.summary.mean);
}

TEST_F(SweepRunnerTest, AddTrialsHonorsContextOverrides) {
  RunOptions options;
  options.trials = 3;   // Overrides the default 7.
  options.seed = 4000;  // Overrides the default 900.
  RunContext ctx("sweep_test", options);
  Sweep sweep(ctx);
  size_t cell = sweep.AddTrials("set", 7, 900, FakeMeasure);
  sweep.Run();
  const TrialSet& set = sweep.Set(cell);
  EXPECT_EQ(set.base_seed, 4000u);
  ASSERT_EQ(set.trials.size(), 3u);
  EXPECT_DOUBLE_EQ(set.trials[0].value, FakeMeasure(4000).value);
  EXPECT_DOUBLE_EQ(set.trials[2].value, FakeMeasure(4002).value);
}

TEST_F(SweepRunnerTest, CellExceptionPropagatesAndRecordsNothing) {
  RunOptions options;
  options.jobs = 4;
  RunContext ctx("sweep_test", options);
  Sweep sweep(ctx);
  sweep.Add("ok", 1, [] { return FakeMeasure(1); });
  sweep.Add("boom", 2, []() -> TrialSample {
    throw std::runtime_error("cell failed");
  });
  EXPECT_THROW(sweep.Run(), std::runtime_error);
  // A failed phase records no partial results into the artifact.
  EXPECT_TRUE(ctx.artifact().sets.empty());
}

}  // namespace
}  // namespace odharness
