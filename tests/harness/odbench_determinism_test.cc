// Determinism of the real sweep-converted experiments: the artifact bytes
// of fig16_summary and fig18_zoned (the former serial offenders, now the
// heaviest Sweep users) must not depend on --jobs.  Links the full
// odbench_experiments object library, like odbench_registration_test.

#include <string>

#include <gtest/gtest.h>

#include "src/harness/job_budget.h"
#include "src/harness/registry.h"

namespace odharness {
namespace {

std::string ArtifactBytes(const std::string& name, int jobs) {
  JobBudget::Global().Reset();
  const Experiment* experiment = ExperimentRegistry::Instance().Find(name);
  EXPECT_NE(experiment, nullptr) << name;
  if (experiment == nullptr) {
    return "";
  }
  RunOptions options;
  options.jobs = jobs;
  RunContext ctx(name, options);
  EXPECT_EQ(experiment->run(ctx), 0) << name;
  JobBudget::Global().Reset();
  return ctx.artifact().ToJson().Dump(2);
}

TEST(OdbenchDeterminismTest, Fig16SummaryArtifactIndependentOfJobs) {
  EXPECT_EQ(ArtifactBytes("fig16_summary", 1),
            ArtifactBytes("fig16_summary", 8));
}

TEST(OdbenchDeterminismTest, Fig18ZonedArtifactIndependentOfJobs) {
  EXPECT_EQ(ArtifactBytes("fig18_zoned", 1), ArtifactBytes("fig18_zoned", 8));
}

TEST(OdbenchDeterminismTest, AblateCpuScalingArtifactIndependentOfJobs) {
  EXPECT_EQ(ArtifactBytes("ablate_cpu_scaling", 1),
            ArtifactBytes("ablate_cpu_scaling", 8));
}

// The simspeed artifact records only the deterministic facts of each cell
// (event count, simulated seconds, workload checksum); the wall-derived
// rates live in the side BENCH file.  The artifact must therefore be
// byte-identical regardless of --jobs.
TEST(OdbenchDeterminismTest, SimspeedArtifactIndependentOfJobs) {
  EXPECT_EQ(ArtifactBytes("simspeed", 1), ArtifactBytes("simspeed", 8));
}

}  // namespace
}  // namespace odharness
