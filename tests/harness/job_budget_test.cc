#include "src/harness/job_budget.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace odharness {
namespace {

// The global budget outlives each test; restore the unconfigured default
// so tests cannot leak tokens (or the lack of them) into one another.
class JobBudgetTest : public testing::Test {
 protected:
  void TearDown() override { JobBudget::Global().Reset(); }
};

TEST_F(JobBudgetTest, UnconfiguredAlwaysGrants) {
  JobBudget& budget = JobBudget::Global();
  budget.Reset();
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(budget.TryAcquire());
  }
}

TEST_F(JobBudgetTest, LocalModeBoundsAndRecyclesTokens) {
  JobBudget& budget = JobBudget::Global();
  budget.Reset();
  budget.ConfigureLocal(2);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());  // Budget exhausted.
  budget.Release();
  EXPECT_TRUE(budget.TryAcquire());  // Released token is reusable.
  EXPECT_FALSE(budget.TryAcquire());
}

TEST_F(JobBudgetTest, NegativeTokenCountClampsToZero) {
  JobBudget& budget = JobBudget::Global();
  budget.Reset();
  budget.ConfigureLocal(-5);
  EXPECT_FALSE(budget.TryAcquire());
}

TEST_F(JobBudgetTest, ParallelForRunsEveryIndexExactlyOnce) {
  JobBudget::Global().Reset();
  JobBudget::Global().ConfigureLocal(3);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  ParallelFor(kTasks, 4, [&](int i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST_F(JobBudgetTest, ParallelForZeroTasksIsANoop) {
  ParallelFor(0, 8, [](int) { FAIL() << "no task should run"; });
}

TEST_F(JobBudgetTest, ParallelForWorksWithExhaustedBudget) {
  // No helper token available: the calling thread must still finish all
  // work alone (acquisition is non-blocking by design).
  JobBudget::Global().Reset();
  JobBudget::Global().ConfigureLocal(0);
  std::vector<int> order;
  ParallelFor(5, 8, [&](int i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);  // Serial, in index order.
  }
}

TEST_F(JobBudgetTest, ParallelForRethrowsLowestIndexException) {
  JobBudget::Global().Reset();
  JobBudget::Global().ConfigureLocal(3);
  try {
    ParallelFor(8, 4, [](int i) {
      if (i >= 2) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "ParallelFor must propagate the task exception";
  } catch (const std::runtime_error& e) {
    // Tasks are handed out in index order, so of the tasks that actually
    // started, the lowest-index thrower (task 2) wins deterministically.
    EXPECT_STREQ(e.what(), "task 2");
  }
}

}  // namespace
}  // namespace odharness
