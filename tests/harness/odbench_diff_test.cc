// End-to-end tests of `odbench diff`, driving the real binary against the
// committed golden artifacts in tests/data/artifacts/.  These are the same
// goldens CI compares fresh runs against, so DiffFreshRunAgainstGolden is
// the in-tree proof that the golden workflow holds: regenerate, diff,
// exit 0 — even though the goldens were recorded at a different git
// revision (provenance is informational, never a verdict).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/harness/artifact.h"

namespace odharness {
namespace {

const std::string kBinary = ODBENCH_BINARY;
const std::string kGoldenDir = ODBENCH_GOLDEN_DIR;
const std::string kTraceGoldenDir = ODBENCH_TRACE_GOLDEN_DIR;

struct CommandResult {
  int exit_code;
  std::string output;  // stdout + stderr.
};

CommandResult RunCommand(const std::string& args) {
  // Pid-unique so parallel ctest shards never share a capture file.
  const std::string out_path = testing::TempDir() + "/odbench_diff_out_" +
                               std::to_string(getpid()) + ".txt";
  const std::string command =
      kBinary + " " + args + " > " + out_path + " 2>&1";
  int status = std::system(command.c_str());
  CommandResult result;
  result.exit_code = WEXITSTATUS(status);
  std::ifstream in(out_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  result.output = buffer.str();
  std::remove(out_path.c_str());
  return result;
}

std::string Golden(const std::string& name) {
  return kGoldenDir + "/" + name + ".json";
}

TEST(OdbenchDiffTest, GoldenAgainstItselfExitsZero) {
  CommandResult result =
      RunCommand("diff " + Golden("fig04_power_table") + " " +
          Golden("fig04_power_table"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(OdbenchDiffTest, DiffFreshRunAgainstGolden) {
  // Regenerate each golden experiment and diff it against the committed
  // fixture: measured content must be bit-identical.
  const std::string out_dir = testing::TempDir() + "/odbench_diff_fresh";
  for (const char* name :
       {"fig02_profile", "fig04_power_table", "calibrate", "fig06_video",
        "fig08_speech", "fig10_map", "fig11_map_think", "fig13_web",
        "fault_sweep"}) {
    CommandResult run =
        RunCommand("run " + std::string(name) + " --out " + out_dir);
    ASSERT_EQ(run.exit_code, 0) << run.output;
    CommandResult diff = RunCommand("diff " + Golden(name) + " " + out_dir + "/" +
                             name + ".json");
    EXPECT_EQ(diff.exit_code, 0) << name << ":\n" << diff.output;
  }
}

TEST(OdbenchDiffTest, PerturbedValueExitsTwoAndNamesTheSet) {
  auto artifact = RunArtifact::ReadFile(Golden("fig06_video"));
  ASSERT_TRUE(artifact.has_value());
  ASSERT_FALSE(artifact->sets.empty());
  ASSERT_FALSE(artifact->sets[0].set.trials.empty());
  artifact->sets[0].set.trials[0].value += 100.0;
  const std::string perturbed = testing::TempDir() + "/perturbed.json";
  ASSERT_TRUE(artifact->WriteFile(perturbed));

  CommandResult result =
      RunCommand("diff " + Golden("fig06_video") + " " + perturbed);
  EXPECT_EQ(result.exit_code, 2);
  // The report names the offending set and flags the tolerance violation.
  EXPECT_NE(result.output.find(artifact->sets[0].label), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("OUT OF TOLERANCE"), std::string::npos);
  std::remove(perturbed.c_str());
}

TEST(OdbenchDiffTest, SmallDriftWithinToleranceExitsOne) {
  auto artifact = RunArtifact::ReadFile(Golden("fig06_video"));
  ASSERT_TRUE(artifact.has_value());
  artifact->sets[0].set.trials[0].value += 1e-9;
  const std::string drifted = testing::TempDir() + "/drifted.json";
  ASSERT_TRUE(artifact->WriteFile(drifted));

  CommandResult strict =
      RunCommand("diff " + Golden("fig06_video") + " " + drifted);
  EXPECT_EQ(strict.exit_code, 2);
  CommandResult tolerant = RunCommand("diff --rtol 1e-6 " +
                               Golden("fig06_video") + " " + drifted);
  EXPECT_EQ(tolerant.exit_code, 1) << tolerant.output;
  EXPECT_NE(tolerant.output.find("within tolerance"), std::string::npos);
  std::remove(drifted.c_str());
}

TEST(OdbenchDiffTest, CompactFlagWritesSingleLineEquivalentArtifact) {
  const std::string out_dir = testing::TempDir() + "/odbench_compact";
  CommandResult run =
      RunCommand("run fig04_power_table --compact --out " + out_dir);
  ASSERT_EQ(run.exit_code, 0) << run.output;

  const std::string path = out_dir + "/fig04_power_table.json";
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str().find('\n'), std::string::npos);

  // Spelling only: the compact document diffs clean against the golden.
  CommandResult diff =
      RunCommand("diff " + Golden("fig04_power_table") + " " + path);
  EXPECT_EQ(diff.exit_code, 0) << diff.output;
}

TEST(OdbenchDiffTest, FaultSweepGoldenCarriesThePlanInProvenance) {
  auto artifact = RunArtifact::ReadFile(Golden("fault_sweep"));
  ASSERT_TRUE(artifact.has_value());
  // The disturbance schedule is part of the record of how the degradation
  // curve was produced.
  EXPECT_NE(artifact->provenance.fault_plan.find("outage@"),
            std::string::npos);
}

TEST(OdbenchDiffTest, PerturbedFaultSweepExitsTwo) {
  // The acceptance gate for the degradation curve: a calibration-sized
  // shift in any measured cell is an out-of-tolerance regression.
  auto artifact = RunArtifact::ReadFile(Golden("fault_sweep"));
  ASSERT_TRUE(artifact.has_value());
  ASSERT_FALSE(artifact->sets.empty());
  ASSERT_FALSE(artifact->sets[0].set.trials.empty());
  artifact->sets[0].set.trials[0].value *= 1.02;
  const std::string perturbed = testing::TempDir() + "/fault_perturbed.json";
  ASSERT_TRUE(artifact->WriteFile(perturbed));

  CommandResult result =
      RunCommand("diff " + Golden("fault_sweep") + " " + perturbed);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("OUT OF TOLERANCE"), std::string::npos);
  std::remove(perturbed.c_str());
}

TEST(OdbenchDiffTest, FaultPlanDifferenceIsAHintNotAVerdict) {
  // Equal measurements recorded under different provenance still diff
  // clean; the plan change is reported informationally.
  auto artifact = RunArtifact::ReadFile(Golden("fault_sweep"));
  ASSERT_TRUE(artifact.has_value());
  artifact->provenance.fault_plan = "outage@1+1";
  const std::string replanned = testing::TempDir() + "/fault_replanned.json";
  ASSERT_TRUE(artifact->WriteFile(replanned));

  CommandResult result =
      RunCommand("diff " + Golden("fault_sweep") + " " + replanned);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("fault_plan:"), std::string::npos);
  std::remove(replanned.c_str());
}

std::string TraceGolden(const std::string& name) {
  return kTraceGoldenDir + "/" + name + ".trace.json";
}

TEST(OdbenchDiffTest, TraceGoldenAgainstItselfExitsZero) {
  // Both flag spellings: the grammar binds a bare word after --traces as
  // its value, and the CLI accepts either placement.
  CommandResult leading = RunCommand("diff --traces " +
                              TraceGolden("fig13_web") + " " +
                              TraceGolden("fig13_web"));
  EXPECT_EQ(leading.exit_code, 0) << leading.output;
  CommandResult trailing = RunCommand("diff " + TraceGolden("fig13_web") +
                               " " + TraceGolden("fig13_web") + " --traces");
  EXPECT_EQ(trailing.exit_code, 0) << trailing.output;
}

TEST(OdbenchDiffTest, FreshTracedRunMatchesTraceGolden) {
  // The CI trace-regression workflow in miniature: regenerate the cheapest
  // traced experiment and diff its power profile against the committed
  // golden.  Measured content must be bit-identical (exit 0); the scalar
  // artifact from the traced run must also still match its scalar golden.
  const std::string out_dir = testing::TempDir() + "/odbench_trace_fresh";
  CommandResult run =
      RunCommand("run fig13_web --trace --compact --out " + out_dir);
  ASSERT_EQ(run.exit_code, 0) << run.output;
  CommandResult trace_diff = RunCommand(
      "diff --traces " + TraceGolden("fig13_web") + " " + out_dir +
      "/fig13_web.trace.json --rtol 1e-9 --max-shift 0.05");
  EXPECT_EQ(trace_diff.exit_code, 0) << trace_diff.output;
  CommandResult scalar_diff = RunCommand(
      "diff " + Golden("fig13_web") + " " + out_dir + "/fig13_web.json");
  EXPECT_EQ(scalar_diff.exit_code, 0) << scalar_diff.output;
}

TEST(OdbenchDiffTest, Fig19SyncRungMatchesTraceGolden) {
  // The fig19 trace golden pins only the background_sync rung: with a
  // budget generous enough that the director never adapts, the profile is
  // a pure function of the scenario's behavior trace — unlike the 20/26-
  // minute rungs, whose profiles reshape with every controller tuning.
  const std::string out_dir = testing::TempDir() + "/odbench_trace_fig19";
  CommandResult run =
      RunCommand("run fig19_goal_timeline --trace --compact --out " + out_dir);
  ASSERT_EQ(run.exit_code, 0) << run.output;
  CommandResult trace_diff = RunCommand(
      "diff --traces " + TraceGolden("fig19_goal_timeline") + " " + out_dir +
      "/fig19_goal_timeline.trace.json --rtol 1e-9 --max-shift 0.05");
  EXPECT_EQ(trace_diff.exit_code, 0) << trace_diff.output;

  std::ifstream in(out_dir + "/fig19_goal_timeline.trace.json");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string document = buffer.str();
  EXPECT_NE(document.find("\"goal_sync\""), std::string::npos);
  // The schedule-sensitive goal rungs must stay out of the hard golden.
  EXPECT_EQ(document.find("\"goal_1200\""), std::string::npos);
  EXPECT_EQ(document.find("\"goal_1560\""), std::string::npos);
}

TEST(OdbenchDiffTest, TraceDiffUsageAndUnreadableExits) {
  EXPECT_EQ(RunCommand("diff --traces only_one.trace.json").exit_code, 64);
  CommandResult missing = RunCommand("diff --traces " +
                              TraceGolden("fig13_web") +
                              " /nonexistent/missing.trace.json");
  EXPECT_EQ(missing.exit_code, 66);
  EXPECT_NE(missing.output.find("cannot read trace artifact"),
            std::string::npos);
  // A scalar artifact is not a power-trace document.
  CommandResult wrong_kind = RunCommand("diff --traces " +
                                 Golden("fig13_web") + " " +
                                 Golden("fig13_web"));
  EXPECT_EQ(wrong_kind.exit_code, 66) << wrong_kind.output;
}

TEST(OdbenchDiffTest, UsageErrorsExitSixtyFour) {
  EXPECT_EQ(RunCommand("diff only_one.json").exit_code, 64);
  EXPECT_EQ(RunCommand("diff a.json b.json c.json").exit_code, 64);
  EXPECT_EQ(RunCommand("diff --bogus 1 a.json b.json").exit_code, 64);
}

TEST(OdbenchDiffTest, UnreadableArtifactExitsSixtySix) {
  CommandResult result = RunCommand("diff " + Golden("fig04_power_table") +
                             " /nonexistent/missing.json");
  EXPECT_EQ(result.exit_code, 66);
  EXPECT_NE(result.output.find("cannot read artifact"), std::string::npos);
}

}  // namespace
}  // namespace odharness
