#include "src/harness/registry.h"

#include <gtest/gtest.h>

namespace odharness {
namespace {

// Experiments registered from this translation unit via the macro.  This
// test binary does NOT link bench/, so the registry holds only these.
ODBENCH_EXPERIMENT(test_alpha, "first test experiment") {
  ctx.Note("alpha_ran", 1.0);
  return 0;
}

ODBENCH_EXPERIMENT(test_beta, "second test experiment") {
  TrialSet set = ctx.RunTrials("main", 4, 100, [](uint64_t seed) {
    TrialSample s;
    s.value = static_cast<double>(seed);
    return s;
  });
  return set.trials.size() == 4 ? 0 : 1;
}

TEST(RegistryTest, MacroRegistersExperiments) {
  auto& registry = ExperimentRegistry::Instance();
  const Experiment* alpha = registry.Find("test_alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->name, "test_alpha");
  EXPECT_EQ(alpha->description, "first test experiment");
  ASSERT_NE(registry.Find("test_beta"), nullptr);
  EXPECT_EQ(registry.Find("test_gamma"), nullptr);
}

TEST(RegistryTest, ListIsSortedByName) {
  auto list = ExperimentRegistry::Instance().List();
  ASSERT_GE(list.size(), 2u);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list[i - 1]->name, list[i]->name);
  }
}

TEST(RegistryTest, ResolveExactAndUniquePrefix) {
  auto& registry = ExperimentRegistry::Instance();
  EXPECT_EQ(registry.Resolve("test_alpha"), registry.Find("test_alpha"));
  EXPECT_EQ(registry.Resolve("test_a"), registry.Find("test_alpha"));
  EXPECT_EQ(registry.Resolve("test_b"), registry.Find("test_beta"));
}

TEST(RegistryTest, ResolveAmbiguousPrefixListsCandidates) {
  std::vector<std::string> matches;
  EXPECT_EQ(ExperimentRegistry::Instance().Resolve("test_", &matches), nullptr);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], "test_alpha");
  EXPECT_EQ(matches[1], "test_beta");
}

TEST(RegistryTest, ResolveUnknownName) {
  std::vector<std::string> matches;
  EXPECT_EQ(ExperimentRegistry::Instance().Resolve("nope", &matches), nullptr);
  EXPECT_TRUE(matches.empty());
}

TEST(RegistryTest, RunContextRecordsTrialSetsInArtifact) {
  RunOptions options;
  RunContext ctx("test_beta", options);
  const Experiment* beta = ExperimentRegistry::Instance().Find("test_beta");
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(beta->run(ctx), 0);
  ASSERT_EQ(ctx.artifact().sets.size(), 1u);
  EXPECT_EQ(ctx.artifact().sets[0].label, "main");
  EXPECT_EQ(ctx.artifact().sets[0].set.trials.size(), 4u);
  EXPECT_EQ(ctx.artifact().sets[0].set.base_seed, 100u);
}

TEST(RegistryTest, TrialsAndSeedOverridesApply) {
  RunOptions options;
  options.trials = 2;
  options.seed = 777;
  RunContext ctx("test_beta", options);
  TrialSet set = ctx.RunTrials("main", 4, 100, [](uint64_t seed) {
    TrialSample s;
    s.value = static_cast<double>(seed);
    return s;
  });
  ASSERT_EQ(set.trials.size(), 2u);
  EXPECT_DOUBLE_EQ(set.trials[0].value, 777.0);
}

TEST(RegistryTest, NotesAccumulateInOrder) {
  RunOptions options;
  RunContext ctx("test_alpha", options);
  ctx.Note("first", 1.0);
  ctx.Note("second", 2.0);
  ASSERT_EQ(ctx.artifact().notes.size(), 2u);
  EXPECT_EQ(ctx.artifact().notes[0].first, "first");
  EXPECT_EQ(ctx.artifact().notes[1].first, "second");
}

}  // namespace
}  // namespace odharness
