#include "src/harness/trial_runner.h"

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include <gtest/gtest.h>

namespace odharness {
namespace {

// A cheap deterministic "measurement": value and breakdown derived only from
// the seed, with a little busy variance in completion order when threaded.
TrialSample FakeMeasure(uint64_t seed) {
  TrialSample sample;
  sample.value = static_cast<double>(seed * 7 % 101) + 0.25;
  sample.breakdown["even"] = static_cast<double>(seed % 2);
  sample.breakdown["scaled"] = static_cast<double>(seed) * 1.5;
  sample.components["cpu"] = static_cast<double>(seed % 5);
  return sample;
}

TEST(TrialRunnerTest, SeedsAreConsecutiveFromBase) {
  TrialRunner runner(1);
  TrialSet set = runner.Run(4, 1000, [](uint64_t seed) {
    TrialSample s;
    s.value = static_cast<double>(seed);
    return s;
  });
  ASSERT_EQ(set.trials.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(set.trials[i].value, 1000.0 + i);
  }
  EXPECT_EQ(set.base_seed, 1000u);
}

TEST(TrialRunnerTest, ParallelMatchesSerialBitForBit) {
  TrialRunner serial(1);
  TrialRunner threaded(8);
  TrialSet a = serial.Run(64, 5000, FakeMeasure);
  TrialSet b = threaded.Run(64, 5000, FakeMeasure);

  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].value, b.trials[i].value);
    EXPECT_EQ(a.trials[i].breakdown, b.trials[i].breakdown);
    EXPECT_EQ(a.trials[i].components, b.trials[i].components);
  }
  EXPECT_EQ(a.summary.mean, b.summary.mean);
  EXPECT_EQ(a.summary.stddev, b.summary.stddev);
  EXPECT_EQ(a.summary.ci90_halfwidth, b.summary.ci90_halfwidth);
  ASSERT_EQ(a.breakdown_summaries.size(), b.breakdown_summaries.size());
  for (const auto& [key, summary] : a.breakdown_summaries) {
    ASSERT_TRUE(b.breakdown_summaries.count(key));
    EXPECT_EQ(summary.mean, b.breakdown_summaries.at(key).mean);
  }
}

TEST(TrialRunnerTest, MoreJobsThanTrials) {
  TrialRunner runner(16);
  TrialSet set = runner.Run(3, 1, FakeMeasure);
  ASSERT_EQ(set.trials.size(), 3u);
  EXPECT_EQ(set.summary.n, 3u);
}

TEST(TrialRunnerTest, RunsEveryTrialExactlyOnce) {
  std::atomic<int> calls{0};
  TrialRunner runner(8);
  TrialSet set = runner.Run(40, 0, [&calls](uint64_t seed) {
    calls.fetch_add(1);
    TrialSample s;
    s.value = static_cast<double>(seed);
    return s;
  });
  EXPECT_EQ(calls.load(), 40);
  EXPECT_EQ(set.trials.size(), 40u);
}

TEST(TrialRunnerTest, BreakdownSummariesAreCrossTrialMeans) {
  TrialRunner runner(1);
  TrialSet set = runner.Run(4, 10, FakeMeasure);  // seeds 10..13
  // "scaled" = 1.5 * seed -> mean over {15, 16.5, 18, 19.5} = 17.25.
  EXPECT_DOUBLE_EQ(set.Mean("scaled"), 17.25);
  // "even" over seeds 10..13 -> {0, 1, 0, 1} -> mean 0.5.
  EXPECT_DOUBLE_EQ(set.Mean("even"), 0.5);
  EXPECT_DOUBLE_EQ(set.Mean("missing"), 0.0);
  EXPECT_DOUBLE_EQ(set.ComponentMean("cpu"),
                   (10 % 5 + 11 % 5 + 12 % 5 + 13 % 5) / 4.0);
}

TEST(TrialRunnerTest, TrialExceptionPropagates) {
  TrialRunner runner(4);
  EXPECT_THROW(runner.Run(8, 0,
                          [](uint64_t seed) -> TrialSample {
                            if (seed == 5) {
                              throw std::runtime_error("boom");
                            }
                            return TrialSample{};
                          }),
               std::runtime_error);
}

}  // namespace
}  // namespace odharness
