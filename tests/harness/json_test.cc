#include "src/harness/json.h"

#include <gtest/gtest.h>

namespace odharness {
namespace {

TEST(JsonTest, ScalarDump) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(3).Dump(), "3");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, StringEscaping) {
  JsonValue v(std::string("a\"b\\c\n\td"));
  std::string dumped = v.Dump();
  auto parsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\n\td");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("zebra", 1);
  obj.Set("apple", 2);
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"apple\":2}");
}

TEST(JsonTest, SetReplacesExistingKey) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("k", 1);
  obj.Set("k", 2);
  ASSERT_EQ(obj.object().size(), 1u);
  EXPECT_DOUBLE_EQ(obj.DoubleAt("k"), 2.0);
}

TEST(JsonTest, FindAndDoubleAt) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("x", 4.5);
  ASSERT_NE(obj.Find("x"), nullptr);
  EXPECT_DOUBLE_EQ(obj.Find("x")->AsDouble(), 4.5);
  EXPECT_EQ(obj.Find("y"), nullptr);
  EXPECT_DOUBLE_EQ(obj.DoubleAt("y", -1.0), -1.0);
}

TEST(JsonTest, DoublesRoundTripExactly) {
  const double values[] = {0.0,  -0.0,    1.0 / 3.0,          470.1,
                           1e-9, 1e300,   123456789.123456789, -2.5};
  for (double d : values) {
    auto parsed = JsonValue::Parse(JsonValue(d).Dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->AsDouble(), d);
  }
}

TEST(JsonTest, ParseNestedDocument) {
  auto parsed = JsonValue::Parse(
      R"({"a": [1, 2, {"b": true}], "c": null, "d": "s"})");
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_TRUE(a->array()[2].Find("b")->AsBool());
  EXPECT_TRUE(parsed->Find("c")->is_null());
  EXPECT_EQ(parsed->Find("d")->AsString(), "s");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").has_value());
  EXPECT_FALSE(JsonValue::Parse("{").has_value());
  EXPECT_FALSE(JsonValue::Parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(JsonValue::Parse("1 trailing").has_value());
  EXPECT_FALSE(JsonValue::Parse("nul").has_value());
}

TEST(JsonTest, PrettyPrintRoundTrips) {
  JsonValue obj = JsonValue::MakeObject();
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(1);
  arr.Append("two");
  obj.Set("list", std::move(arr));
  obj.Set("flag", true);
  std::string pretty = obj.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto parsed = JsonValue::Parse(pretty);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Dump(), obj.Dump());
}

}  // namespace
}  // namespace odharness
