#include "src/trace/trace_diff.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/artifact.h"
#include "src/harness/artifact_diff.h"
#include "src/power/component.h"
#include "src/power/machine.h"
#include "src/powerscope/trace_recorder.h"
#include "src/sim/simulator.h"

namespace odtrace {
namespace {

using Severity = TraceDiff::Severity;

PowerTrace MakeTrace(std::vector<ComponentTrace> components, int64_t start_us,
                     int64_t end_us) {
  PowerTrace trace;
  trace.start_us = start_us;
  trace.end_us = end_us;
  trace.components = std::move(components);
  return trace;
}

TraceArtifact MakeArtifact(PowerTrace trace, uint64_t seed = 1000) {
  TraceArtifact artifact;
  artifact.experiment = "unit_test";
  artifact.Add("scenario", seed, std::move(trace));
  return artifact;
}

TEST(TraceDiffTest, IdenticalArtifactsExitZero) {
  TraceArtifact a = MakeArtifact(MakeTrace(
      {{"CPU", {{0, 1.0}, {3000000, 4.0}}}}, 0, 10000000));
  TraceDiff diff = DiffTraceArtifacts(a, a);
  EXPECT_EQ(diff.severity, Severity::kIdentical);
  EXPECT_EQ(diff.ExitCode(), 0);
  EXPECT_TRUE(diff.divergences.empty());
  EXPECT_TRUE(diff.structural.empty());
}

TEST(TraceDiffTest, InBandDrawChangeIsDriftWithoutADivergence) {
  TraceArtifact a = MakeArtifact(MakeTrace({{"CPU", {{0, 5.0}}}}, 0, 10000000));
  TraceArtifact b =
      MakeArtifact(MakeTrace({{"CPU", {{0, 5.004}}}}, 0, 10000000));
  TraceDiffOptions options;
  options.rtol = 1e-2;
  TraceDiff diff = DiffTraceArtifacts(a, b, options);
  EXPECT_EQ(diff.severity, Severity::kDrift);
  EXPECT_EQ(diff.ExitCode(), 1);
  EXPECT_TRUE(diff.divergences.empty());
  EXPECT_GE(diff.tolerated_intervals, 1u);
}

TEST(TraceDiffTest, BoundaryShiftWithinBandIsDrift) {
  // The 2->4 W step lands at 3.00 s in one run and 3.02 s in the other: the
  // profiles disagree only on [3.00, 3.02), well inside a 50 ms shift band.
  TraceArtifact a = MakeArtifact(
      MakeTrace({{"CPU", {{0, 2.0}, {3000000, 4.0}}}}, 0, 10000000));
  TraceArtifact b = MakeArtifact(
      MakeTrace({{"CPU", {{0, 2.0}, {3020000, 4.0}}}}, 0, 10000000));
  TraceDiffOptions options;
  options.max_shift_us = 50000;
  TraceDiff diff = DiffTraceArtifacts(a, b, options);
  EXPECT_EQ(diff.severity, Severity::kDrift);
  ASSERT_EQ(diff.divergences.size(), 1u);
  const TraceDiff::Divergence& divergence = diff.divergences[0];
  EXPECT_TRUE(divergence.within_shift);
  EXPECT_EQ(divergence.windows, 1u);
  EXPECT_EQ(divergence.divergent_us, 20000);
  EXPECT_EQ(divergence.first_begin_us, 3000000);
  EXPECT_EQ(divergence.first_end_us, 3020000);
  EXPECT_EQ(divergence.first_a_watts, 4.0);
  EXPECT_EQ(divergence.first_b_watts, 2.0);
}

TEST(TraceDiffTest, ZeroShiftBandMakesAnyDivergenceARegression) {
  TraceArtifact a = MakeArtifact(
      MakeTrace({{"CPU", {{0, 2.0}, {3000000, 4.0}}}}, 0, 10000000));
  TraceArtifact b = MakeArtifact(
      MakeTrace({{"CPU", {{0, 2.0}, {3000001, 4.0}}}}, 0, 10000000));
  TraceDiff diff = DiffTraceArtifacts(a, b);  // max_shift_us = 0.
  EXPECT_EQ(diff.severity, Severity::kRegression);
  EXPECT_EQ(diff.ExitCode(), 2);
}

TEST(TraceDiffTest, SustainedDivergenceIsARegressionWithFirstWindow) {
  TraceArtifact a = MakeArtifact(MakeTrace({{"CPU", {{0, 6.0}}}}, 0, 10000000));
  TraceArtifact b = MakeArtifact(MakeTrace(
      {{"CPU", {{0, 6.0}, {5000000, 20.0}, {5200000, 6.0}}}}, 0, 10000000));
  TraceDiffOptions options;
  options.max_shift_us = 50000;
  TraceDiff diff = DiffTraceArtifacts(a, b, options);
  EXPECT_EQ(diff.severity, Severity::kRegression);
  ASSERT_EQ(diff.divergences.size(), 1u);
  const TraceDiff::Divergence& divergence = diff.divergences[0];
  EXPECT_FALSE(divergence.within_shift);
  EXPECT_EQ(divergence.path, "traces[scenario].CPU");
  EXPECT_EQ(divergence.first_begin_us, 5000000);
  EXPECT_EQ(divergence.first_end_us, 5200000);
  EXPECT_EQ(divergence.first_a_watts, 6.0);
  EXPECT_EQ(divergence.first_b_watts, 20.0);
}

TEST(TraceDiffTest, MissingLabelAndComponentAreStructural) {
  TraceArtifact a = MakeArtifact(MakeTrace(
      {{"CPU", {{0, 1.0}}}, {"Disk", {{0, 0.0}}}}, 0, 10000000));
  TraceArtifact b = MakeArtifact(MakeTrace({{"CPU", {{0, 1.0}}}}, 0, 10000000));
  b.Add("extra", 1000, MakeTrace({{"CPU", {{0, 1.0}}}}, 0, 10000000));
  TraceDiff diff = DiffTraceArtifacts(a, b);
  EXPECT_EQ(diff.severity, Severity::kRegression);
  ASSERT_EQ(diff.structural.size(), 2u);
  EXPECT_EQ(diff.structural[0].path, "traces[scenario].Disk");
  EXPECT_EQ(diff.structural[0].detail, "component only in first");
  EXPECT_EQ(diff.structural[1].path, "traces[extra]");
  EXPECT_EQ(diff.structural[1].detail, "trace only in second");
}

TEST(TraceDiffTest, SeedMismatchIsStructuralAndSkipsShapeNoise) {
  TraceArtifact a =
      MakeArtifact(MakeTrace({{"CPU", {{0, 1.0}}}}, 0, 10000000), 1000);
  TraceArtifact b =
      MakeArtifact(MakeTrace({{"CPU", {{0, 9.0}}}}, 0, 10000000), 2000);
  TraceDiff diff = DiffTraceArtifacts(a, b);
  EXPECT_EQ(diff.severity, Severity::kRegression);
  ASSERT_EQ(diff.structural.size(), 1u);
  EXPECT_EQ(diff.structural[0].path, "traces[scenario].seed");
  // Different seeds trace different runs; shape comparison would be noise.
  EXPECT_TRUE(diff.divergences.empty());
}

TEST(TraceDiffTest, DurationMismatchIsStructuralButCommonPrefixStillWalked) {
  TraceArtifact a = MakeArtifact(MakeTrace(
      {{"CPU", {{0, 1.0}, {2000000, 8.0}}}}, 0, 10000000));
  TraceArtifact b = MakeArtifact(MakeTrace({{"CPU", {{0, 1.0}}}}, 0, 8000000));
  TraceDiff diff = DiffTraceArtifacts(a, b);
  EXPECT_EQ(diff.severity, Severity::kRegression);
  ASSERT_EQ(diff.structural.size(), 1u);
  EXPECT_EQ(diff.structural[0].path, "traces[scenario].duration_us");
  // The divergence at 2 s inside the common prefix is still pinpointed —
  // usually it explains why one run ended early.
  ASSERT_EQ(diff.divergences.size(), 1u);
  EXPECT_EQ(diff.divergences[0].first_begin_us, 2000000);
}

TEST(TraceDiffTest, InvalidTraceIsStructural) {
  PowerTrace broken = MakeTrace({{"CPU", {{0, 1.0}, {0, 2.0}}}}, 0, 10000000);
  TraceDiff diff =
      DiffTraceArtifacts(MakeArtifact(broken), MakeArtifact(broken));
  EXPECT_EQ(diff.severity, Severity::kRegression);
  ASSERT_GE(diff.structural.size(), 1u);
  EXPECT_NE(diff.structural[0].detail.find("invalid"), std::string::npos);
}

TEST(TraceDiffTest, ProvenanceDifferencesAreHintsNotVerdicts) {
  TraceArtifact a = MakeArtifact(MakeTrace({{"CPU", {{0, 1.0}}}}, 0, 10000000));
  TraceArtifact b = a;
  a.provenance.git_revision = "aaaa";
  b.provenance.git_revision = "bbbb";
  TraceDiff diff = DiffTraceArtifacts(a, b);
  EXPECT_EQ(diff.severity, Severity::kIdentical);
  EXPECT_EQ(diff.ExitCode(), 0);
  EXPECT_FALSE(diff.provenance_hints.empty());
}

std::string Printed(const TraceDiff& diff) {
  std::FILE* out = std::tmpfile();
  PrintTraceDiff(diff, out);
  std::string text(static_cast<size_t>(std::ftell(out)), '\0');
  std::rewind(out);
  text.resize(std::fread(text.data(), 1, text.size(), out));
  std::fclose(out);
  return text;
}

TEST(TraceDiffTest, ReportPinpointsTheFirstDivergentWindow) {
  TraceArtifact a = MakeArtifact(MakeTrace({{"CPU", {{0, 6.0}}}}, 0, 10000000));
  TraceArtifact b = MakeArtifact(MakeTrace(
      {{"CPU", {{0, 6.0}, {5000000, 20.0}, {5200000, 6.0}}}}, 0, 10000000));
  const std::string text = Printed(DiffTraceArtifacts(a, b));
  // A failing CI log must say *when* the profiles first part ways, with the
  // draws on both sides — not just which component moved.
  EXPECT_NE(text.find("first window [5.000000s, 5.200000s) 6 W -> 20 W"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("OUT OF SHIFT BAND"), std::string::npos) << text;
}

// The acceptance gate for the whole layer: a short high-power stall that a
// scalar energy diff waves through must trip the trace diff.  Two recorder
// rigs run the same 500 s scenario; the second wedges the CPU at 20 W for
// 200 ms.  That moves the total by ~2.8 J in ~4500 J — inside a 1e-3 scalar
// rtol — but is a sustained divergent window far beyond a 50 ms shift band.
TEST(TraceDiffTest, TraceGateCatchesAStallTheScalarDiffTolerates) {
  struct Rig {
    odsim::Simulator sim;
    odpower::Machine machine{&sim, 0.07};
    odpower::Component* cpu =
        machine.AddComponent(std::make_unique<odpower::Component>(
            "CPU", std::vector<double>{6.0, 20.0}, 0));
    odpower::Component* display =
        machine.AddComponent(std::make_unique<odpower::Component>(
            "Display", std::vector<double>{3.0}, 0));
    odscope::TraceRecorder recorder{&machine, sim.Now()};
  };

  Rig clean;
  clean.sim.RunUntil(odsim::SimTime::Seconds(500));
  PowerTrace clean_trace = clean.recorder.Snapshot(clean.sim.Now());

  Rig stalled;
  stalled.sim.Schedule(odsim::SimDuration::Seconds(5),
                       [&] { stalled.cpu->SetState(1); });
  stalled.sim.Schedule(odsim::SimDuration::Millis(5200),
                       [&] { stalled.cpu->SetState(0); });
  stalled.sim.RunUntil(odsim::SimTime::Seconds(500));
  PowerTrace stalled_trace = stalled.recorder.Snapshot(stalled.sim.Now());

  // Scalar view: one trial whose value is the run's total energy.  The
  // stall moves it by ~6e-4 relative — drift at rtol 1e-3, not a failure.
  auto scalar = [](const PowerTrace& trace) {
    odharness::RunArtifact artifact;
    artifact.experiment = "stall_gate";
    odharness::TrialSet set;
    set.base_seed = 42;
    set.trials.push_back(odharness::TrialSample(trace.TotalJoules()));
    set.Summarize();
    artifact.AddSet("scenario", std::move(set));
    return artifact;
  };
  odharness::DiffOptions scalar_band;
  scalar_band.rtol = 1e-3;
  odharness::ArtifactDiff scalar_diff = odharness::DiffArtifacts(
      scalar(clean_trace), scalar(stalled_trace), scalar_band);
  EXPECT_LE(scalar_diff.ExitCode(), 1) << "stall must pass the scalar gate";

  TraceDiffOptions trace_band;
  trace_band.rtol = 1e-3;
  trace_band.max_shift_us = 50000;
  TraceDiff trace_diff = DiffTraceArtifacts(
      MakeArtifact(std::move(clean_trace)),
      MakeArtifact(std::move(stalled_trace)), trace_band);
  EXPECT_EQ(trace_diff.ExitCode(), 2) << "stall must trip the trace gate";
  ASSERT_EQ(trace_diff.divergences.size(), 1u);
  EXPECT_EQ(trace_diff.divergences[0].path, "traces[scenario].CPU");
  EXPECT_EQ(trace_diff.divergences[0].first_begin_us, 5000000);
  EXPECT_EQ(trace_diff.divergences[0].first_end_us, 5200000);
}

}  // namespace
}  // namespace odtrace
