#include "src/trace/trace_artifact.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "src/harness/json.h"
#include "src/harness/registry.h"

namespace odtrace {
namespace {

PowerTrace MakeTrace() {
  PowerTrace trace;
  trace.start_us = 15000000;
  trace.end_us = 25000000;
  trace.components.push_back(ComponentTrace{
      "CPU",
      {{15000000, 0.0}, {15001812, 6.0}, {20000000, 0.0}}});
  trace.components.push_back(ComponentTrace{"Display", {{15000000, 3.0}}});
  return trace;
}

TraceArtifact MakeArtifact() {
  TraceArtifact artifact;
  artifact.experiment = "fig06_video";
  artifact.provenance.git_revision = "deadbeef";
  artifact.provenance.calibration = {{"k_display", 3.0}};
  artifact.Add("Video 1/Baseline", 1000, MakeTrace());
  return artifact;
}

TEST(TraceArtifactTest, JsonRoundTripPreservesEverything) {
  TraceArtifact artifact = MakeArtifact();
  auto restored = TraceArtifact::FromJson(artifact.ToJson());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->experiment, "fig06_video");
  EXPECT_EQ(restored->provenance.git_revision, "deadbeef");
  ASSERT_EQ(restored->traces.size(), 1u);
  EXPECT_EQ(restored->traces[0].label, "Video 1/Baseline");
  EXPECT_EQ(restored->traces[0].seed, 1000u);
  EXPECT_EQ(restored->traces[0].trace, MakeTrace());
}

TEST(TraceArtifactTest, SegmentsAreDeltaEncoded) {
  JsonValue json = MakeArtifact().ToJson();
  const JsonValue& cpu =
      json.Find("traces")->array()[0].Find("components")->array()[0];
  const JsonValue::Array& segments = cpu.Find("segments")->array();
  ASSERT_EQ(segments.size(), 3u);
  // [dt_us, watts]: dt is relative to the previous segment's open (the
  // trace start for the first, so the leading delta is always 0).
  EXPECT_EQ(segments[0].array()[0].AsDouble(), 0.0);
  EXPECT_EQ(segments[1].array()[0].AsDouble(), 1812.0);
  EXPECT_EQ(segments[2].array()[0].AsDouble(), 4998188.0);
  EXPECT_EQ(segments[1].array()[1].AsDouble(), 6.0);
}

TEST(TraceArtifactTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "odtrace_artifact_test.json")
          .string();
  TraceArtifact artifact = MakeArtifact();
  ASSERT_TRUE(artifact.WriteFile(path, /*compact=*/true));
  auto restored = TraceArtifact::ReadFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->traces.size(), 1u);
  EXPECT_EQ(restored->traces[0].trace, MakeTrace());
}

TEST(TraceArtifactTest, ReadFileReportsMissingFileAsNullopt) {
  EXPECT_FALSE(TraceArtifact::ReadFile("/nonexistent/trace.json").has_value());
}

TEST(TraceArtifactTest, RejectsForeignDocuments) {
  JsonValue good = MakeArtifact().ToJson();

  JsonValue wrong_kind = good;
  wrong_kind.Set("kind", "run_artifact");
  EXPECT_FALSE(TraceArtifact::FromJson(wrong_kind).has_value());

  JsonValue wrong_version = good;
  wrong_version.Set("schema_version", 2);
  EXPECT_FALSE(TraceArtifact::FromJson(wrong_version).has_value());

  JsonValue no_experiment = good;
  no_experiment.Remove("experiment");
  EXPECT_FALSE(TraceArtifact::FromJson(no_experiment).has_value());

  JsonValue no_traces = good;
  no_traces.Remove("traces");
  EXPECT_FALSE(TraceArtifact::FromJson(no_traces).has_value());

  EXPECT_FALSE(TraceArtifact::FromJson(JsonValue("not an object")).has_value());
}

TEST(TraceArtifactTest, RejectsMalformedSegmentDeltas) {
  auto with_delta = [](const JsonValue& delta) {
    JsonValue json = MakeArtifact().ToJson();
    JsonValue& segment = json.Find("traces")
                             ->array()[0]
                             .Find("components")
                             ->array()[0]
                             .Find("segments")
                             ->array()[1];
    segment.array()[0] = delta;
    return TraceArtifact::FromJson(json);
  };
  EXPECT_FALSE(with_delta(JsonValue(-5.0)).has_value());   // Time reversal.
  EXPECT_FALSE(with_delta(JsonValue(10.5)).has_value());   // Sub-microsecond.
  EXPECT_FALSE(with_delta(JsonValue("soon")).has_value()); // Non-numeric.
  EXPECT_TRUE(with_delta(JsonValue(1812.0)).has_value());  // Control.
}

TEST(TraceArtifactTest, AttachStampsContextNameAndProvenance) {
  odharness::RunOptions options;
  options.trace = true;
  odharness::RunContext ctx("fig06_video", options);

  TraceArtifact artifact;
  artifact.experiment = "ignored";  // Attach overwrites with ctx.name().
  artifact.Add("Video 1/Baseline", 1000, MakeTrace());
  AttachTraceArtifact(ctx, std::move(artifact));

  ASSERT_EQ(ctx.aux_documents().size(), 1u);
  EXPECT_EQ(ctx.aux_documents()[0].first, "fig06_video.trace.json");
  auto restored = TraceArtifact::FromJson(ctx.aux_documents()[0].second);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->experiment, "fig06_video");
  EXPECT_EQ(restored->provenance.git_revision,
            ctx.artifact().provenance.git_revision);
}

TEST(TraceArtifactTest, RepeatedAuxFilenameReplacesTheDocument) {
  odharness::RunOptions options;
  odharness::RunContext ctx("fig06_video", options);
  TraceArtifact first = MakeArtifact();
  AttachTraceArtifact(ctx, first);
  TraceArtifact second = MakeArtifact();
  second.traces[0].seed = 2000;
  AttachTraceArtifact(ctx, second);
  ASSERT_EQ(ctx.aux_documents().size(), 1u);
  auto restored = TraceArtifact::FromJson(ctx.aux_documents()[0].second);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->traces[0].seed, 2000u);
}

}  // namespace
}  // namespace odtrace
