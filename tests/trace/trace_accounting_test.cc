// Property test (run under ASan in CI like the rest of the suite): the
// integral of every recorded power trace reproduces the analytic
// EnergyAccounting totals to 1e-9 J.  The recorder samples the same
// Component::power() values the accounting integrates over the same integer
// microsecond timeline, so the two views must agree to floating-point
// accumulation error — first on a synthetic machine with dense state flips,
// then on the real video and web experiments end to end.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/apps/experiments.h"
#include "src/power/accounting.h"
#include "src/power/cpu.h"
#include "src/power/display.h"
#include "src/power/machine.h"
#include "src/powerscope/trace_recorder.h"
#include "src/sim/simulator.h"
#include "src/trace/power_trace.h"

namespace odtrace {
namespace {

constexpr double kTolJ = 1e-9;

struct Rig {
  odsim::Simulator sim;
  odpower::Machine machine{&sim, 0.07};
  odpower::Display* display =
      machine.AddComponent(std::make_unique<odpower::Display>(3.0, 2.0));
  odpower::OtherComponent* other =
      machine.AddComponent(std::make_unique<odpower::OtherComponent>(3.0));
  odpower::Cpu* cpu = machine.AddComponent(std::make_unique<odpower::Cpu>(6.0));
  odpower::EnergyAccounting accounting{&machine};
  odscope::TraceRecorder recorder{&machine, sim.Now()};

  Rig() { sim.AddCpuObserver(cpu); }

  void ExpectTraceMatchesAccounting() {
    const odsim::SimTime now = sim.Now();
    const PowerTrace trace = recorder.Snapshot(now);
    std::string error;
    ASSERT_TRUE(trace.Validate(&error)) << error;
    for (int i = 0; i < machine.component_count(); ++i) {
      const std::string& name = machine.component(i).name();
      EXPECT_NEAR(trace.ComponentJoules(name), accounting.ComponentJoules(i, now),
                  kTolJ)
          << name;
    }
    EXPECT_NEAR(trace.ComponentJoules("Synergy"), accounting.SynergyJoules(now),
                kTolJ);
    EXPECT_NEAR(trace.TotalJoules(), accounting.TotalJoules(now), kTolJ);
  }
};

TEST(TraceAccountingTest, ConstantDrawsIntegrateIdentically) {
  Rig rig;
  rig.sim.RunUntil(odsim::SimTime::Seconds(10));
  rig.ExpectTraceMatchesAccounting();
}

TEST(TraceAccountingTest, DenseStateFlipsIntegrateIdentically) {
  Rig rig;
  // A deliberately noisy schedule: display dims and recovers on a 700 ms
  // beat, CPU bursts arrive on a 1.1 s beat, so segment boundaries of the
  // different components interleave at sub-second offsets.
  for (int i = 0; i < 40; ++i) {
    rig.sim.Schedule(odsim::SimDuration::Millis(700 * i + 350), [&rig, i] {
      rig.display->Set(i % 2 == 0 ? odpower::DisplayState::kDim
                                  : odpower::DisplayState::kBright);
    });
    odsim::ProcessId pid = rig.sim.processes().RegisterProcess(
        "burst" + std::to_string(i));
    odsim::ProcedureId proc = rig.sim.processes().RegisterProcedure("_b");
    rig.sim.Schedule(odsim::SimDuration::Millis(1100 * i), [&rig, pid, proc] {
      rig.sim.SubmitWork(pid, proc, odsim::SimDuration::Millis(400), nullptr);
    });
  }
  rig.sim.RunUntil(odsim::SimTime::Seconds(50));
  rig.ExpectTraceMatchesAccounting();
}

TEST(TraceAccountingTest, MidRunSnapshotAgreesAtAnyInstant) {
  Rig rig;
  rig.sim.Schedule(odsim::SimDuration::Seconds(2),
                   [&rig] { rig.display->Set(odpower::DisplayState::kOff); });
  for (double t : {1.0, 2.0, 3.5, 7.25}) {
    rig.sim.RunUntil(odsim::SimTime::Seconds(t));
    rig.ExpectTraceMatchesAccounting();
  }
}

// End-to-end: the traces the --trace flag records during the real paper
// experiments integrate back to the scalar energy numbers the artifacts
// report.  The scalar side is bit-identical with tracing on or off, so this
// also pins that recording is a pure observer.
void ExpectMeasurementMatchesTrace(const odapps::TestBed::Measurement& m) {
  ASSERT_NE(m.trace, nullptr);
  std::string error;
  ASSERT_TRUE(m.trace->Validate(&error)) << error;
  for (const auto& [name, joules] : m.by_component) {
    EXPECT_NEAR(m.trace->ComponentJoules(name), joules, kTolJ) << name;
  }
  EXPECT_NEAR(m.trace->TotalJoules(), m.joules, kTolJ);
  EXPECT_NEAR(m.trace->duration_us() * 1e-6, m.seconds, 1e-12);
}

TEST(TraceAccountingTest, VideoExperimentTraceMatchesItsEnergyNumbers) {
  ExpectMeasurementMatchesTrace(odapps::RunVideoExperiment(
      odapps::StandardVideoClips()[0], odapps::VideoTrack::kBaseline,
      /*window_scale=*/1.0, /*hw_pm=*/false, /*seed=*/12345, /*trace=*/true));
}

TEST(TraceAccountingTest, WebExperimentTraceMatchesItsEnergyNumbers) {
  ExpectMeasurementMatchesTrace(odapps::RunWebExperiment(
      odapps::StandardWebImages()[0], odapps::WebFidelity::kJpeg50,
      /*think_seconds=*/5.0, /*hw_pm=*/true, /*seed=*/54321, /*trace=*/true));
}

}  // namespace
}  // namespace odtrace
