#include "src/powerscope/trace_recorder.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/power/component.h"
#include "src/power/machine.h"
#include "src/sim/simulator.h"

namespace odscope {
namespace {

using odtrace::ComponentTrace;
using odtrace::PowerTrace;
using odtrace::TraceSegment;

struct Rig {
  odsim::Simulator sim;
  odpower::Machine machine{&sim, 0.07};
  odpower::Component* a = machine.AddComponent(std::make_unique<odpower::Component>(
      "A", std::vector<double>{0.0, 2.0, 4.0}, 0));
  odpower::Component* b = machine.AddComponent(std::make_unique<odpower::Component>(
      "B", std::vector<double>{1.0, 3.0}, 0));
  TraceRecorder recorder{&machine, sim.Now()};
};

TEST(TraceRecorderTest, OpensEveryStreamAtStart) {
  Rig rig;
  PowerTrace trace = rig.recorder.Snapshot(rig.sim.Now());
  ASSERT_EQ(trace.components.size(), 3u);  // A, B, Synergy.
  EXPECT_EQ(trace.components[0].name, "A");
  EXPECT_EQ(trace.components[1].name, "B");
  EXPECT_EQ(trace.components[2].name, "Synergy");
  for (const ComponentTrace& component : trace.components) {
    ASSERT_EQ(component.segments.size(), 1u);
    EXPECT_EQ(component.segments[0].start_us, 0);
  }
  EXPECT_EQ(trace.components[0].segments[0].watts, 0.0);
  EXPECT_EQ(trace.components[1].segments[0].watts, 1.0);
  EXPECT_TRUE(trace.Validate());
}

TEST(TraceRecorderTest, RunLengthEncodesUnrelatedChanges) {
  Rig rig;
  rig.sim.Schedule(odsim::SimDuration::Seconds(1), [&] { rig.a->SetState(1); });
  rig.sim.Schedule(odsim::SimDuration::Seconds(2), [&] { rig.a->SetState(2); });
  rig.sim.RunUntil(odsim::SimTime::Seconds(3));
  PowerTrace trace = rig.recorder.Snapshot(rig.sim.Now());
  // A stepped twice; B never moved, so its stream stays one segment even
  // though the machine notified on every change.
  EXPECT_EQ(trace.Find("A")->segments.size(), 3u);
  EXPECT_EQ(trace.Find("B")->segments.size(), 1u);
  std::string error;
  EXPECT_TRUE(trace.Validate(&error)) << error;
}

TEST(TraceRecorderTest, EqualTimestampChangesCoalesceToOneSegment) {
  Rig rig;
  rig.sim.Schedule(odsim::SimDuration::Seconds(1), [&] {
    // Two draw changes at the same microsecond: the signature must hold
    // one segment with the final draw, not a zero-length intermediate.
    rig.a->SetState(1);
    rig.a->SetState(2);
  });
  rig.sim.RunUntil(odsim::SimTime::Seconds(2));
  PowerTrace trace = rig.recorder.Snapshot(rig.sim.Now());
  const ComponentTrace* a = trace.Find("A");
  ASSERT_EQ(a->segments.size(), 2u);
  EXPECT_EQ(a->segments[1].start_us, 1000000);
  EXPECT_EQ(a->segments[1].watts, 4.0);
  std::string error;
  EXPECT_TRUE(trace.Validate(&error)) << error;
}

TEST(TraceRecorderTest, SameMicrosecondRevertDropsTheBoundary) {
  Rig rig;
  rig.sim.Schedule(odsim::SimDuration::Seconds(1), [&] {
    rig.a->SetState(2);
    rig.a->SetState(0);  // Back where it was, within the same microsecond.
  });
  rig.sim.RunUntil(odsim::SimTime::Seconds(2));
  PowerTrace trace = rig.recorder.Snapshot(rig.sim.Now());
  // The net draw never changed over any observable interval.
  EXPECT_EQ(trace.Find("A")->segments.size(), 1u);
  EXPECT_TRUE(trace.Validate());
}

TEST(TraceRecorderTest, TrailingZeroLengthSegmentIsDropped) {
  Rig rig;
  rig.sim.RunUntil(odsim::SimTime::Seconds(1));
  rig.a->SetState(1);  // Draw change at the snapshot instant.
  PowerTrace trace = rig.recorder.Snapshot(rig.sim.Now());
  // The change covers zero time before the window closes; the signature of
  // this run must match one that stopped an event earlier.
  EXPECT_EQ(trace.Find("A")->segments.size(), 1u);
  EXPECT_EQ(trace.Find("A")->segments[0].watts, 0.0);
  std::string error;
  EXPECT_TRUE(trace.Validate(&error)) << error;
}

TEST(TraceRecorderTest, ZeroDurationSnapshotValidates) {
  Rig rig;
  PowerTrace trace = rig.recorder.Snapshot(rig.sim.Now());
  EXPECT_EQ(trace.duration_us(), 0);
  std::string error;
  EXPECT_TRUE(trace.Validate(&error)) << error;
  EXPECT_EQ(trace.TotalJoules(), 0.0);
}

TEST(TraceRecorderTest, RestartDropsHistoryAndReopensAtNow) {
  Rig rig;
  rig.sim.Schedule(odsim::SimDuration::Seconds(1), [&] { rig.a->SetState(2); });
  rig.sim.RunUntil(odsim::SimTime::Seconds(5));
  rig.recorder.Restart(rig.sim.Now());
  rig.sim.RunUntil(odsim::SimTime::Seconds(8));
  PowerTrace trace = rig.recorder.Snapshot(rig.sim.Now());
  EXPECT_EQ(trace.start_us, 5000000);
  EXPECT_EQ(trace.end_us, 8000000);
  const ComponentTrace* a = trace.Find("A");
  ASSERT_EQ(a->segments.size(), 1u);
  EXPECT_EQ(a->segments[0].start_us, 5000000);
  EXPECT_EQ(a->segments[0].watts, 4.0);  // Draw at restart, not at origin.
  EXPECT_TRUE(trace.Validate());
}

TEST(TraceRecorderTest, SynergyStreamFollowsActiveCount) {
  Rig rig;
  rig.sim.Schedule(odsim::SimDuration::Seconds(1), [&] { rig.a->SetState(1); });
  rig.sim.RunUntil(odsim::SimTime::Seconds(2));
  PowerTrace trace = rig.recorder.Snapshot(rig.sim.Now());
  const ComponentTrace* synergy = trace.Find("Synergy");
  // One active component (B at 1.0 W) -> no synergy; A joining at t=1 s
  // makes two actives -> 0.07 W excess.
  ASSERT_EQ(synergy->segments.size(), 2u);
  EXPECT_EQ(synergy->segments[0].watts, 0.0);
  EXPECT_EQ(synergy->segments[1].start_us, 1000000);
  EXPECT_NEAR(synergy->segments[1].watts, 0.07, 1e-15);
}

}  // namespace
}  // namespace odscope
