#include "src/display/zoned.h"

#include <gtest/gtest.h>

#include "src/apps/data_objects.h"
#include "src/power/display.h"

namespace oddisplay {
namespace {

TEST(ZoneLayoutTest, FourZoneIsTwoByTwo) {
  ZoneLayout layout = ZoneLayout::FourZone();
  EXPECT_EQ(layout.zone_count(), 4);
  Rect z0 = layout.ZoneRect(0);
  EXPECT_DOUBLE_EQ(z0.w, 0.5);
  EXPECT_DOUBLE_EQ(z0.h, 0.5);
}

TEST(ZoneLayoutTest, EightZoneIsFourByTwo) {
  ZoneLayout layout = ZoneLayout::EightZone();
  EXPECT_EQ(layout.zone_count(), 8);
  Rect z = layout.ZoneRect(5);  // Second row, second column.
  EXPECT_DOUBLE_EQ(z.x, 0.25);
  EXPECT_DOUBLE_EQ(z.y, 0.5);
  EXPECT_DOUBLE_EQ(z.w, 0.25);
  EXPECT_DOUBLE_EQ(z.h, 0.5);
}

TEST(ZoneLayoutTest, FullScreenLightsAllZones) {
  EXPECT_EQ(ZoneLayout::FourZone().LitZoneCount({Rect::FullScreen()}), 4);
  EXPECT_EQ(ZoneLayout::EightZone().LitZoneCount({Rect::FullScreen()}), 8);
}

TEST(ZoneLayoutTest, NoWindowsNoLitZones) {
  EXPECT_EQ(ZoneLayout::FourZone().LitZoneCount({}), 0);
}

// Section 4.3's zone-occupancy claims for the paper's window geometries.

TEST(ZoneOccupancyTest, VideoFullFidelity) {
  // "The video at full fidelity fits within one zone for the 4-zone case,
  // and within two zones for the 8-zone case."
  Rect window = odapps::VideoWindow(1.0);
  EXPECT_EQ(ZoneLayout::FourZone().LitZoneCount({window}), 1);
  EXPECT_EQ(ZoneLayout::EightZone().LitZoneCount({window}), 2);
}

TEST(ZoneOccupancyTest, VideoLowestFidelity) {
  // "At lowest fidelity, the video fits entirely within one of the 8 zones."
  Rect window = odapps::VideoWindow(0.5);
  EXPECT_EQ(ZoneLayout::FourZone().LitZoneCount({window}), 1);
  EXPECT_EQ(ZoneLayout::EightZone().LitZoneCount({window}), 1);
}

TEST(ZoneOccupancyTest, MapFullFidelity) {
  // "The map at full fidelity occupies all zones in the 4-zone case...
  // But it occupies only six zones in the 8-zone case."
  Rect window = odapps::MapWindowFull();
  EXPECT_EQ(ZoneLayout::FourZone().LitZoneCount({window}), 4);
  EXPECT_EQ(ZoneLayout::EightZone().LitZoneCount({window}), 6);
}

TEST(ZoneOccupancyTest, MapLowestFidelity) {
  // "At lowest fidelity, the map output only occupies two zones in the
  // 4-zone case ... the map output only occupies three zones [8-zone]."
  Rect window = odapps::MapWindowCropped();
  EXPECT_EQ(ZoneLayout::FourZone().LitZoneCount({window}), 2);
  EXPECT_EQ(ZoneLayout::EightZone().LitZoneCount({window}), 3);
}

TEST(ZonedControllerTest, AppliesLitFractionToDisplay) {
  odpower::Display display(4.0, 2.0);
  ZonedBacklightController controller(&display, ZoneLayout::FourZone());
  controller.SetWindows({Rect{0.0, 0.0, 0.3, 0.3}});
  EXPECT_EQ(controller.lit_zones(), 1);
  EXPECT_DOUBLE_EQ(display.power(), 1.0);  // 4.0 * 1/4.
  controller.Disable();
  EXPECT_DOUBLE_EQ(display.power(), 4.0);
}

TEST(ZonedControllerTest, MultipleWindows) {
  odpower::Display display(4.0, 2.0);
  ZonedBacklightController controller(&display, ZoneLayout::FourZone());
  controller.SetWindows(
      {Rect{0.0, 0.0, 0.3, 0.3}, Rect{0.7, 0.7, 0.2, 0.2}});
  EXPECT_EQ(controller.lit_zones(), 2);
  EXPECT_DOUBLE_EQ(display.power(), 2.0);
}

TEST(ZonedControllerTest, EmptyWindowIgnored) {
  odpower::Display display(4.0, 2.0);
  ZonedBacklightController controller(&display, ZoneLayout::FourZone());
  controller.SetWindows({Rect{0.1, 0.1, 0.0, 0.0}});
  EXPECT_EQ(controller.lit_zones(), 0);
}

}  // namespace
}  // namespace oddisplay
