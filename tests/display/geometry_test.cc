#include "src/display/geometry.h"

#include <gtest/gtest.h>

namespace oddisplay {
namespace {

TEST(RectTest, OverlapDetected) {
  Rect a{0.0, 0.0, 0.5, 0.5};
  Rect b{0.25, 0.25, 0.5, 0.5};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
}

TEST(RectTest, DisjointNotIntersecting) {
  Rect a{0.0, 0.0, 0.2, 0.2};
  Rect b{0.5, 0.5, 0.2, 0.2};
  EXPECT_FALSE(a.Intersects(b));
}

TEST(RectTest, SharedEdgeDoesNotCount) {
  // A window snapped exactly to a zone boundary lights only its own zone.
  Rect a{0.0, 0.0, 0.5, 1.0};
  Rect b{0.5, 0.0, 0.5, 1.0};
  EXPECT_FALSE(a.Intersects(b));
}

TEST(RectTest, ContainmentIntersects) {
  Rect outer{0.0, 0.0, 1.0, 1.0};
  Rect inner{0.4, 0.4, 0.1, 0.1};
  EXPECT_TRUE(outer.Intersects(inner));
}

TEST(RectTest, EmptyRect) {
  Rect empty{0.5, 0.5, 0.0, 0.0};
  EXPECT_TRUE(empty.empty());
  Rect normal{0.0, 0.0, 1.0, 1.0};
  EXPECT_FALSE(normal.empty());
}

TEST(RectTest, FullScreenCoversEverything) {
  Rect full = Rect::FullScreen();
  Rect corner{0.9, 0.9, 0.05, 0.05};
  EXPECT_TRUE(full.Intersects(corner));
}

}  // namespace
}  // namespace oddisplay
