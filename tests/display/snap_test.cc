#include <gtest/gtest.h>

#include "src/display/zoned.h"

namespace oddisplay {
namespace {

TEST(SnapToZonesTest, AlreadyAlignedWindowUnchanged) {
  ZoneLayout layout = ZoneLayout::FourZone();
  Rect window{0.0, 0.0, 0.4, 0.4};
  Rect snapped = SnapToZones(window, layout);
  EXPECT_DOUBLE_EQ(snapped.x, 0.0);
  EXPECT_DOUBLE_EQ(snapped.y, 0.0);
  EXPECT_EQ(layout.LitZoneCount({snapped}), 1);
}

TEST(SnapToZonesTest, StraddlingWindowSnapsToOneZone) {
  ZoneLayout layout = ZoneLayout::FourZone();
  // A 0.4x0.4 window centered on the screen straddles all four zones.
  Rect window{0.3, 0.3, 0.4, 0.4};
  EXPECT_EQ(layout.LitZoneCount({window}), 4);
  Rect snapped = SnapToZones(window, layout);
  EXPECT_EQ(layout.LitZoneCount({snapped}), 1);
  // Size is preserved.
  EXPECT_DOUBLE_EQ(snapped.w, 0.4);
  EXPECT_DOUBLE_EQ(snapped.h, 0.4);
}

TEST(SnapToZonesTest, MovesMinimally) {
  ZoneLayout layout = ZoneLayout::FourZone();
  Rect window{0.45, 0.05, 0.4, 0.4};  // Slightly over the column boundary.
  Rect snapped = SnapToZones(window, layout);
  EXPECT_EQ(layout.LitZoneCount({snapped}), 1);
  // The nearest single-zone placement is the right column at x = 0.5, not
  // the far-left one at x = 0.1.
  EXPECT_NEAR(snapped.x, 0.5, 1e-9);
}

TEST(SnapToZonesTest, LargeWindowStillSpansMinimum) {
  ZoneLayout layout = ZoneLayout::EightZone();
  // 0.6 wide needs ceil(0.6/0.25) = 3 columns at best.
  Rect window{0.18, 0.1, 0.6, 0.3};
  Rect snapped = SnapToZones(window, layout);
  EXPECT_EQ(layout.LitZoneCount({snapped}), 3);
}

TEST(SnapToZonesTest, FullScreenWindowUntouched) {
  ZoneLayout layout = ZoneLayout::FourZone();
  Rect snapped = SnapToZones(Rect::FullScreen(), layout);
  EXPECT_DOUBLE_EQ(snapped.x, 0.0);
  EXPECT_DOUBLE_EQ(snapped.y, 0.0);
  EXPECT_EQ(layout.LitZoneCount({snapped}), 4);
}

TEST(SnapToZonesTest, OversizedWindowClampedToScreen) {
  ZoneLayout layout = ZoneLayout::FourZone();
  Rect snapped = SnapToZones(Rect{0.0, 0.0, 1.5, 1.2}, layout);
  EXPECT_DOUBLE_EQ(snapped.w, 1.0);
  EXPECT_DOUBLE_EQ(snapped.h, 1.0);
}

TEST(SnapToZonesTest, SnappedWindowNeverLitsMoreZones) {
  // Property: snapping never increases the lit-zone count of an on-screen
  // window (a partially off-screen window can gain zones, since snapping
  // also brings it back on screen).
  for (auto layout : {ZoneLayout::FourZone(), ZoneLayout::EightZone()}) {
    for (double x = 0.0; x <= 0.6; x += 0.07) {
      for (double y = 0.0; y <= 0.6; y += 0.07) {
        for (double w : {0.1, 0.3, 0.45, 0.7}) {
          if (x + w > 1.0 || y + w > 1.0) {
            continue;
          }
          Rect window{x, y, w, w};
          Rect snapped = SnapToZones(window, layout);
          EXPECT_LE(layout.LitZoneCount({snapped}), layout.LitZoneCount({window}))
              << "x=" << x << " y=" << y << " w=" << w;
          EXPECT_GE(snapped.x, 0.0);
          EXPECT_LE(snapped.x + snapped.w, 1.0 + 1e-9);
        }
      }
    }
  }
}

}  // namespace
}  // namespace oddisplay
