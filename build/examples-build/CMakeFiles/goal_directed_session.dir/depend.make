# Empty dependencies file for goal_directed_session.
# This may be replaced when dependencies are built.
