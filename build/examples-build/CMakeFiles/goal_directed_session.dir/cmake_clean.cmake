file(REMOVE_RECURSE
  "../examples/goal_directed_session"
  "../examples/goal_directed_session.pdb"
  "CMakeFiles/goal_directed_session.dir/goal_directed_session.cpp.o"
  "CMakeFiles/goal_directed_session.dir/goal_directed_session.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goal_directed_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
