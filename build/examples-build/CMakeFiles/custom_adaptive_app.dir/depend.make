# Empty dependencies file for custom_adaptive_app.
# This may be replaced when dependencies are built.
