
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_adaptive_app.cpp" "examples-build/CMakeFiles/custom_adaptive_app.dir/custom_adaptive_app.cpp.o" "gcc" "examples-build/CMakeFiles/custom_adaptive_app.dir/custom_adaptive_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/odapps.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/odenergy.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/oddisplay.dir/DependInfo.cmake"
  "/root/repo/build/src/powerscope/CMakeFiles/odscope.dir/DependInfo.cmake"
  "/root/repo/build/src/odyssey/CMakeFiles/odyssey.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/odnet.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/odpower.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/odsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/odutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
