file(REMOVE_RECURSE
  "../examples/custom_adaptive_app"
  "../examples/custom_adaptive_app.pdb"
  "CMakeFiles/custom_adaptive_app.dir/custom_adaptive_app.cpp.o"
  "CMakeFiles/custom_adaptive_app.dir/custom_adaptive_app.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_adaptive_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
