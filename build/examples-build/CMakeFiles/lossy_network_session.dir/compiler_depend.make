# Empty compiler generated dependencies file for lossy_network_session.
# This may be replaced when dependencies are built.
