file(REMOVE_RECURSE
  "../examples/lossy_network_session"
  "../examples/lossy_network_session.pdb"
  "CMakeFiles/lossy_network_session.dir/lossy_network_session.cpp.o"
  "CMakeFiles/lossy_network_session.dir/lossy_network_session.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_network_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
