file(REMOVE_RECURSE
  "../examples/zoned_display_demo"
  "../examples/zoned_display_demo.pdb"
  "CMakeFiles/zoned_display_demo.dir/zoned_display_demo.cpp.o"
  "CMakeFiles/zoned_display_demo.dir/zoned_display_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoned_display_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
