# Empty dependencies file for zoned_display_demo.
# This may be replaced when dependencies are built.
