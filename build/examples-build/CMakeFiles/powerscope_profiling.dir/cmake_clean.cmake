file(REMOVE_RECURSE
  "../examples/powerscope_profiling"
  "../examples/powerscope_profiling.pdb"
  "CMakeFiles/powerscope_profiling.dir/powerscope_profiling.cpp.o"
  "CMakeFiles/powerscope_profiling.dir/powerscope_profiling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powerscope_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
