# Empty compiler generated dependencies file for powerscope_profiling.
# This may be replaced when dependencies are built.
