file(REMOVE_RECURSE
  "../examples/battery_aware_session"
  "../examples/battery_aware_session.pdb"
  "CMakeFiles/battery_aware_session.dir/battery_aware_session.cpp.o"
  "CMakeFiles/battery_aware_session.dir/battery_aware_session.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_aware_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
