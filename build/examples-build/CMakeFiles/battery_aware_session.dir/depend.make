# Empty dependencies file for battery_aware_session.
# This may be replaced when dependencies are built.
