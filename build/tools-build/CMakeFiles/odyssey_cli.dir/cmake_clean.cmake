file(REMOVE_RECURSE
  "../tools/odyssey_cli"
  "../tools/odyssey_cli.pdb"
  "CMakeFiles/odyssey_cli.dir/odyssey_cli.cc.o"
  "CMakeFiles/odyssey_cli.dir/odyssey_cli.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odyssey_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
