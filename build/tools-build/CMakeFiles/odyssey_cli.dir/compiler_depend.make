# Empty compiler generated dependencies file for odyssey_cli.
# This may be replaced when dependencies are built.
