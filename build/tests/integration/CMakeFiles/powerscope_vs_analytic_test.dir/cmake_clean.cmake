file(REMOVE_RECURSE
  "CMakeFiles/powerscope_vs_analytic_test.dir/powerscope_vs_analytic_test.cc.o"
  "CMakeFiles/powerscope_vs_analytic_test.dir/powerscope_vs_analytic_test.cc.o.d"
  "powerscope_vs_analytic_test"
  "powerscope_vs_analytic_test.pdb"
  "powerscope_vs_analytic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powerscope_vs_analytic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
