# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for powerscope_vs_analytic_test.
