# Empty compiler generated dependencies file for powerscope_vs_analytic_test.
# This may be replaced when dependencies are built.
