# Empty dependencies file for bandwidth_adaptation_test.
# This may be replaced when dependencies are built.
