file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_adaptation_test.dir/bandwidth_adaptation_test.cc.o"
  "CMakeFiles/bandwidth_adaptation_test.dir/bandwidth_adaptation_test.cc.o.d"
  "bandwidth_adaptation_test"
  "bandwidth_adaptation_test.pdb"
  "bandwidth_adaptation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_adaptation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
