file(REMOVE_RECURSE
  "CMakeFiles/longevity_test.dir/longevity_test.cc.o"
  "CMakeFiles/longevity_test.dir/longevity_test.cc.o.d"
  "longevity_test"
  "longevity_test.pdb"
  "longevity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longevity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
