# Empty dependencies file for longevity_test.
# This may be replaced when dependencies are built.
