# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration/powerscope_vs_analytic_test[1]_include.cmake")
include("/root/repo/build/tests/integration/end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/integration/bandwidth_adaptation_test[1]_include.cmake")
include("/root/repo/build/tests/integration/longevity_test[1]_include.cmake")
include("/root/repo/build/tests/integration/edge_cases_test[1]_include.cmake")
