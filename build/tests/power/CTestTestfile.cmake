# CMake generated Testfile for 
# Source directory: /root/repo/tests/power
# Build directory: /root/repo/build/tests/power
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/power/component_test[1]_include.cmake")
include("/root/repo/build/tests/power/machine_test[1]_include.cmake")
include("/root/repo/build/tests/power/accounting_test[1]_include.cmake")
include("/root/repo/build/tests/power/accounting_property_test[1]_include.cmake")
include("/root/repo/build/tests/power/power_manager_test[1]_include.cmake")
include("/root/repo/build/tests/power/disk_queue_test[1]_include.cmake")
include("/root/repo/build/tests/power/supply_test[1]_include.cmake")
include("/root/repo/build/tests/power/battery_test[1]_include.cmake")
include("/root/repo/build/tests/power/thinkpad_test[1]_include.cmake")
