file(REMOVE_RECURSE
  "CMakeFiles/supply_test.dir/supply_test.cc.o"
  "CMakeFiles/supply_test.dir/supply_test.cc.o.d"
  "supply_test"
  "supply_test.pdb"
  "supply_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supply_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
