file(REMOVE_RECURSE
  "CMakeFiles/accounting_property_test.dir/accounting_property_test.cc.o"
  "CMakeFiles/accounting_property_test.dir/accounting_property_test.cc.o.d"
  "accounting_property_test"
  "accounting_property_test.pdb"
  "accounting_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accounting_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
