# Empty compiler generated dependencies file for accounting_property_test.
# This may be replaced when dependencies are built.
