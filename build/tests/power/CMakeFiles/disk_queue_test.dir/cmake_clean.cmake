file(REMOVE_RECURSE
  "CMakeFiles/disk_queue_test.dir/disk_queue_test.cc.o"
  "CMakeFiles/disk_queue_test.dir/disk_queue_test.cc.o.d"
  "disk_queue_test"
  "disk_queue_test.pdb"
  "disk_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
