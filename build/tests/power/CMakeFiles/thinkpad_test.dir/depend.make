# Empty dependencies file for thinkpad_test.
# This may be replaced when dependencies are built.
