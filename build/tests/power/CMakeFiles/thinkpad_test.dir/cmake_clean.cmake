file(REMOVE_RECURSE
  "CMakeFiles/thinkpad_test.dir/thinkpad_test.cc.o"
  "CMakeFiles/thinkpad_test.dir/thinkpad_test.cc.o.d"
  "thinkpad_test"
  "thinkpad_test.pdb"
  "thinkpad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinkpad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
