file(REMOVE_RECURSE
  "CMakeFiles/power_manager_test.dir/power_manager_test.cc.o"
  "CMakeFiles/power_manager_test.dir/power_manager_test.cc.o.d"
  "power_manager_test"
  "power_manager_test.pdb"
  "power_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
