# CMake generated Testfile for 
# Source directory: /root/repo/tests/util
# Build directory: /root/repo/build/tests/util
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util/rng_test[1]_include.cmake")
include("/root/repo/build/tests/util/stats_test[1]_include.cmake")
include("/root/repo/build/tests/util/table_test[1]_include.cmake")
include("/root/repo/build/tests/util/csv_test[1]_include.cmake")
include("/root/repo/build/tests/util/check_test[1]_include.cmake")
include("/root/repo/build/tests/util/logging_test[1]_include.cmake")
