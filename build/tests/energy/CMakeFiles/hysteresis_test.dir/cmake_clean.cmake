file(REMOVE_RECURSE
  "CMakeFiles/hysteresis_test.dir/hysteresis_test.cc.o"
  "CMakeFiles/hysteresis_test.dir/hysteresis_test.cc.o.d"
  "hysteresis_test"
  "hysteresis_test.pdb"
  "hysteresis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hysteresis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
