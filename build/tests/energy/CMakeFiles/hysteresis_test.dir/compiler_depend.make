# Empty compiler generated dependencies file for hysteresis_test.
# This may be replaced when dependencies are built.
