# Empty dependencies file for goal_director_test.
# This may be replaced when dependencies are built.
