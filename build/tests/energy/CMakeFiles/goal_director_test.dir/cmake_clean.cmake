file(REMOVE_RECURSE
  "CMakeFiles/goal_director_test.dir/goal_director_test.cc.o"
  "CMakeFiles/goal_director_test.dir/goal_director_test.cc.o.d"
  "goal_director_test"
  "goal_director_test.pdb"
  "goal_director_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goal_director_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
