file(REMOVE_RECURSE
  "CMakeFiles/infeasibility_test.dir/infeasibility_test.cc.o"
  "CMakeFiles/infeasibility_test.dir/infeasibility_test.cc.o.d"
  "infeasibility_test"
  "infeasibility_test.pdb"
  "infeasibility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infeasibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
