# Empty dependencies file for infeasibility_test.
# This may be replaced when dependencies are built.
