file(REMOVE_RECURSE
  "CMakeFiles/smart_battery_test.dir/smart_battery_test.cc.o"
  "CMakeFiles/smart_battery_test.dir/smart_battery_test.cc.o.d"
  "smart_battery_test"
  "smart_battery_test.pdb"
  "smart_battery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_battery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
