file(REMOVE_RECURSE
  "CMakeFiles/multimeter_test.dir/multimeter_test.cc.o"
  "CMakeFiles/multimeter_test.dir/multimeter_test.cc.o.d"
  "multimeter_test"
  "multimeter_test.pdb"
  "multimeter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimeter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
