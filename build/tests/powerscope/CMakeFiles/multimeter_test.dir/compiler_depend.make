# Empty compiler generated dependencies file for multimeter_test.
# This may be replaced when dependencies are built.
