# CMake generated Testfile for 
# Source directory: /root/repo/tests/powerscope
# Build directory: /root/repo/build/tests/powerscope
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/powerscope/multimeter_test[1]_include.cmake")
include("/root/repo/build/tests/powerscope/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/powerscope/online_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/powerscope/smart_battery_test[1]_include.cmake")
