# CMake generated Testfile for 
# Source directory: /root/repo/tests/odyssey
# Build directory: /root/repo/build/tests/odyssey
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/odyssey/fidelity_test[1]_include.cmake")
include("/root/repo/build/tests/odyssey/viceroy_test[1]_include.cmake")
include("/root/repo/build/tests/odyssey/warden_test[1]_include.cmake")
include("/root/repo/build/tests/odyssey/interceptor_test[1]_include.cmake")
include("/root/repo/build/tests/odyssey/server_test[1]_include.cmake")
