file(REMOVE_RECURSE
  "CMakeFiles/viceroy_test.dir/viceroy_test.cc.o"
  "CMakeFiles/viceroy_test.dir/viceroy_test.cc.o.d"
  "viceroy_test"
  "viceroy_test.pdb"
  "viceroy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viceroy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
