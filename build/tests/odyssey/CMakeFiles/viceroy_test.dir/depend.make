# Empty dependencies file for viceroy_test.
# This may be replaced when dependencies are built.
