file(REMOVE_RECURSE
  "CMakeFiles/warden_test.dir/warden_test.cc.o"
  "CMakeFiles/warden_test.dir/warden_test.cc.o.d"
  "warden_test"
  "warden_test.pdb"
  "warden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
