# Empty compiler generated dependencies file for warden_test.
# This may be replaced when dependencies are built.
