# CMake generated Testfile for 
# Source directory: /root/repo/tests/apps
# Build directory: /root/repo/build/tests/apps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/apps/data_objects_test[1]_include.cmake")
include("/root/repo/build/tests/apps/display_arbiter_test[1]_include.cmake")
include("/root/repo/build/tests/apps/video_player_test[1]_include.cmake")
include("/root/repo/build/tests/apps/speech_recognizer_test[1]_include.cmake")
include("/root/repo/build/tests/apps/map_viewer_test[1]_include.cmake")
include("/root/repo/build/tests/apps/web_browser_test[1]_include.cmake")
include("/root/repo/build/tests/apps/composite_test[1]_include.cmake")
include("/root/repo/build/tests/apps/bursty_test[1]_include.cmake")
include("/root/repo/build/tests/apps/bursty_replay_test[1]_include.cmake")
include("/root/repo/build/tests/apps/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/apps/vocab_paging_test[1]_include.cmake")
include("/root/repo/build/tests/apps/experiments_test[1]_include.cmake")
