# Empty dependencies file for web_browser_test.
# This may be replaced when dependencies are built.
