file(REMOVE_RECURSE
  "CMakeFiles/web_browser_test.dir/web_browser_test.cc.o"
  "CMakeFiles/web_browser_test.dir/web_browser_test.cc.o.d"
  "web_browser_test"
  "web_browser_test.pdb"
  "web_browser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_browser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
