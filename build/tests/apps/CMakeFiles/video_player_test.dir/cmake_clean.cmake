file(REMOVE_RECURSE
  "CMakeFiles/video_player_test.dir/video_player_test.cc.o"
  "CMakeFiles/video_player_test.dir/video_player_test.cc.o.d"
  "video_player_test"
  "video_player_test.pdb"
  "video_player_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_player_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
