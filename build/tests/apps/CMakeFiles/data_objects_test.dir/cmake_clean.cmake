file(REMOVE_RECURSE
  "CMakeFiles/data_objects_test.dir/data_objects_test.cc.o"
  "CMakeFiles/data_objects_test.dir/data_objects_test.cc.o.d"
  "data_objects_test"
  "data_objects_test.pdb"
  "data_objects_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_objects_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
