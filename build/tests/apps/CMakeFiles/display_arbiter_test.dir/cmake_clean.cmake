file(REMOVE_RECURSE
  "CMakeFiles/display_arbiter_test.dir/display_arbiter_test.cc.o"
  "CMakeFiles/display_arbiter_test.dir/display_arbiter_test.cc.o.d"
  "display_arbiter_test"
  "display_arbiter_test.pdb"
  "display_arbiter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/display_arbiter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
