# Empty dependencies file for display_arbiter_test.
# This may be replaced when dependencies are built.
