file(REMOVE_RECURSE
  "CMakeFiles/speech_recognizer_test.dir/speech_recognizer_test.cc.o"
  "CMakeFiles/speech_recognizer_test.dir/speech_recognizer_test.cc.o.d"
  "speech_recognizer_test"
  "speech_recognizer_test.pdb"
  "speech_recognizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speech_recognizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
