# Empty compiler generated dependencies file for speech_recognizer_test.
# This may be replaced when dependencies are built.
