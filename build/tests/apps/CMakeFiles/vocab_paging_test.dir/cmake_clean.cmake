file(REMOVE_RECURSE
  "CMakeFiles/vocab_paging_test.dir/vocab_paging_test.cc.o"
  "CMakeFiles/vocab_paging_test.dir/vocab_paging_test.cc.o.d"
  "vocab_paging_test"
  "vocab_paging_test.pdb"
  "vocab_paging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_paging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
