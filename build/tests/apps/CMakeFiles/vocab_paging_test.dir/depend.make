# Empty dependencies file for vocab_paging_test.
# This may be replaced when dependencies are built.
