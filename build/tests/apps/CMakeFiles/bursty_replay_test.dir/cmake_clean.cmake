file(REMOVE_RECURSE
  "CMakeFiles/bursty_replay_test.dir/bursty_replay_test.cc.o"
  "CMakeFiles/bursty_replay_test.dir/bursty_replay_test.cc.o.d"
  "bursty_replay_test"
  "bursty_replay_test.pdb"
  "bursty_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
