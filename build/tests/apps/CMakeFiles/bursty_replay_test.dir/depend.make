# Empty dependencies file for bursty_replay_test.
# This may be replaced when dependencies are built.
