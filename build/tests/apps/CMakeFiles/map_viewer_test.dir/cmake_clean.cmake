file(REMOVE_RECURSE
  "CMakeFiles/map_viewer_test.dir/map_viewer_test.cc.o"
  "CMakeFiles/map_viewer_test.dir/map_viewer_test.cc.o.d"
  "map_viewer_test"
  "map_viewer_test.pdb"
  "map_viewer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_viewer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
