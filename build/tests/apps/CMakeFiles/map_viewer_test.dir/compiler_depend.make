# Empty compiler generated dependencies file for map_viewer_test.
# This may be replaced when dependencies are built.
