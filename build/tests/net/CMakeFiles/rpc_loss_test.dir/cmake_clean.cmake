file(REMOVE_RECURSE
  "CMakeFiles/rpc_loss_test.dir/rpc_loss_test.cc.o"
  "CMakeFiles/rpc_loss_test.dir/rpc_loss_test.cc.o.d"
  "rpc_loss_test"
  "rpc_loss_test.pdb"
  "rpc_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
