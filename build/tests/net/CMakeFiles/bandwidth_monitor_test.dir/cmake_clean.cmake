file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_monitor_test.dir/bandwidth_monitor_test.cc.o"
  "CMakeFiles/bandwidth_monitor_test.dir/bandwidth_monitor_test.cc.o.d"
  "bandwidth_monitor_test"
  "bandwidth_monitor_test.pdb"
  "bandwidth_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
