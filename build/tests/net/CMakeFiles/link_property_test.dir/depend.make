# Empty dependencies file for link_property_test.
# This may be replaced when dependencies are built.
