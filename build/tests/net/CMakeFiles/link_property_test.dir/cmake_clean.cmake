file(REMOVE_RECURSE
  "CMakeFiles/link_property_test.dir/link_property_test.cc.o"
  "CMakeFiles/link_property_test.dir/link_property_test.cc.o.d"
  "link_property_test"
  "link_property_test.pdb"
  "link_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
