# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim/time_test[1]_include.cmake")
include("/root/repo/build/tests/sim/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/sim/process_test[1]_include.cmake")
include("/root/repo/build/tests/sim/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/sim/scheduler_property_test[1]_include.cmake")
include("/root/repo/build/tests/sim/cpu_speed_test[1]_include.cmake")
