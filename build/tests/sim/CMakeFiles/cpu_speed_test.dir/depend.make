# Empty dependencies file for cpu_speed_test.
# This may be replaced when dependencies are built.
