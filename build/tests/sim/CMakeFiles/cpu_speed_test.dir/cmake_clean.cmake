file(REMOVE_RECURSE
  "CMakeFiles/cpu_speed_test.dir/cpu_speed_test.cc.o"
  "CMakeFiles/cpu_speed_test.dir/cpu_speed_test.cc.o.d"
  "cpu_speed_test"
  "cpu_speed_test.pdb"
  "cpu_speed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_speed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
