# Empty dependencies file for zoned_bands_test.
# This may be replaced when dependencies are built.
