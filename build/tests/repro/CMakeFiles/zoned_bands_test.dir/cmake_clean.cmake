file(REMOVE_RECURSE
  "CMakeFiles/zoned_bands_test.dir/zoned_bands_test.cc.o"
  "CMakeFiles/zoned_bands_test.dir/zoned_bands_test.cc.o.d"
  "zoned_bands_test"
  "zoned_bands_test.pdb"
  "zoned_bands_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoned_bands_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
