file(REMOVE_RECURSE
  "CMakeFiles/goal_seed_sweep_test.dir/goal_seed_sweep_test.cc.o"
  "CMakeFiles/goal_seed_sweep_test.dir/goal_seed_sweep_test.cc.o.d"
  "goal_seed_sweep_test"
  "goal_seed_sweep_test.pdb"
  "goal_seed_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goal_seed_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
