file(REMOVE_RECURSE
  "CMakeFiles/video_bands_test.dir/video_bands_test.cc.o"
  "CMakeFiles/video_bands_test.dir/video_bands_test.cc.o.d"
  "video_bands_test"
  "video_bands_test.pdb"
  "video_bands_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_bands_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
