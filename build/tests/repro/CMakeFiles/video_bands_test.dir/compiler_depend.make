# Empty compiler generated dependencies file for video_bands_test.
# This may be replaced when dependencies are built.
