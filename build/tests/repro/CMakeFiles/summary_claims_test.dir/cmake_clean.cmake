file(REMOVE_RECURSE
  "CMakeFiles/summary_claims_test.dir/summary_claims_test.cc.o"
  "CMakeFiles/summary_claims_test.dir/summary_claims_test.cc.o.d"
  "summary_claims_test"
  "summary_claims_test.pdb"
  "summary_claims_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_claims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
