# Empty compiler generated dependencies file for concurrency_bands_test.
# This may be replaced when dependencies are built.
