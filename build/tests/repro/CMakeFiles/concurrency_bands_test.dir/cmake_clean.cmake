file(REMOVE_RECURSE
  "CMakeFiles/concurrency_bands_test.dir/concurrency_bands_test.cc.o"
  "CMakeFiles/concurrency_bands_test.dir/concurrency_bands_test.cc.o.d"
  "concurrency_bands_test"
  "concurrency_bands_test.pdb"
  "concurrency_bands_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_bands_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
