file(REMOVE_RECURSE
  "CMakeFiles/goal_bands_test.dir/goal_bands_test.cc.o"
  "CMakeFiles/goal_bands_test.dir/goal_bands_test.cc.o.d"
  "goal_bands_test"
  "goal_bands_test.pdb"
  "goal_bands_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goal_bands_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
