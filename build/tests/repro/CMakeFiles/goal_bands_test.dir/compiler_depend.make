# Empty compiler generated dependencies file for goal_bands_test.
# This may be replaced when dependencies are built.
