# Empty compiler generated dependencies file for web_bands_test.
# This may be replaced when dependencies are built.
