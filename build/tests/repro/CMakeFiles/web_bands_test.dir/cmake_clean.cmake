file(REMOVE_RECURSE
  "CMakeFiles/web_bands_test.dir/web_bands_test.cc.o"
  "CMakeFiles/web_bands_test.dir/web_bands_test.cc.o.d"
  "web_bands_test"
  "web_bands_test.pdb"
  "web_bands_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_bands_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
