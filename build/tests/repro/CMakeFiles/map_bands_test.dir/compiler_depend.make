# Empty compiler generated dependencies file for map_bands_test.
# This may be replaced when dependencies are built.
