file(REMOVE_RECURSE
  "CMakeFiles/map_bands_test.dir/map_bands_test.cc.o"
  "CMakeFiles/map_bands_test.dir/map_bands_test.cc.o.d"
  "map_bands_test"
  "map_bands_test.pdb"
  "map_bands_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_bands_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
