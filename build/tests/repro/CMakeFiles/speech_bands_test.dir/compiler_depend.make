# Empty compiler generated dependencies file for speech_bands_test.
# This may be replaced when dependencies are built.
