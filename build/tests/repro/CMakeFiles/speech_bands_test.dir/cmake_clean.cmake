file(REMOVE_RECURSE
  "CMakeFiles/speech_bands_test.dir/speech_bands_test.cc.o"
  "CMakeFiles/speech_bands_test.dir/speech_bands_test.cc.o.d"
  "speech_bands_test"
  "speech_bands_test.pdb"
  "speech_bands_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speech_bands_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
