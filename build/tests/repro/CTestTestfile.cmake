# CMake generated Testfile for 
# Source directory: /root/repo/tests/repro
# Build directory: /root/repo/build/tests/repro
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/repro/video_bands_test[1]_include.cmake")
include("/root/repo/build/tests/repro/speech_bands_test[1]_include.cmake")
include("/root/repo/build/tests/repro/map_bands_test[1]_include.cmake")
include("/root/repo/build/tests/repro/web_bands_test[1]_include.cmake")
include("/root/repo/build/tests/repro/summary_claims_test[1]_include.cmake")
include("/root/repo/build/tests/repro/concurrency_bands_test[1]_include.cmake")
include("/root/repo/build/tests/repro/zoned_bands_test[1]_include.cmake")
include("/root/repo/build/tests/repro/goal_bands_test[1]_include.cmake")
include("/root/repo/build/tests/repro/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/repro/goal_seed_sweep_test[1]_include.cmake")
