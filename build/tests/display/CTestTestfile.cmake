# CMake generated Testfile for 
# Source directory: /root/repo/tests/display
# Build directory: /root/repo/build/tests/display
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/display/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/display/zoned_test[1]_include.cmake")
include("/root/repo/build/tests/display/snap_test[1]_include.cmake")
