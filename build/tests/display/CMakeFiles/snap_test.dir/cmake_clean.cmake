file(REMOVE_RECURSE
  "CMakeFiles/snap_test.dir/snap_test.cc.o"
  "CMakeFiles/snap_test.dir/snap_test.cc.o.d"
  "snap_test"
  "snap_test.pdb"
  "snap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
