# Empty compiler generated dependencies file for snap_test.
# This may be replaced when dependencies are built.
