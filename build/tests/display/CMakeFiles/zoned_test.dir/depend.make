# Empty dependencies file for zoned_test.
# This may be replaced when dependencies are built.
