file(REMOVE_RECURSE
  "CMakeFiles/zoned_test.dir/zoned_test.cc.o"
  "CMakeFiles/zoned_test.dir/zoned_test.cc.o.d"
  "zoned_test"
  "zoned_test.pdb"
  "zoned_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoned_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
