
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bursty.cc" "src/apps/CMakeFiles/odapps.dir/bursty.cc.o" "gcc" "src/apps/CMakeFiles/odapps.dir/bursty.cc.o.d"
  "/root/repo/src/apps/composite.cc" "src/apps/CMakeFiles/odapps.dir/composite.cc.o" "gcc" "src/apps/CMakeFiles/odapps.dir/composite.cc.o.d"
  "/root/repo/src/apps/data_objects.cc" "src/apps/CMakeFiles/odapps.dir/data_objects.cc.o" "gcc" "src/apps/CMakeFiles/odapps.dir/data_objects.cc.o.d"
  "/root/repo/src/apps/display_arbiter.cc" "src/apps/CMakeFiles/odapps.dir/display_arbiter.cc.o" "gcc" "src/apps/CMakeFiles/odapps.dir/display_arbiter.cc.o.d"
  "/root/repo/src/apps/experiments.cc" "src/apps/CMakeFiles/odapps.dir/experiments.cc.o" "gcc" "src/apps/CMakeFiles/odapps.dir/experiments.cc.o.d"
  "/root/repo/src/apps/goal_scenario.cc" "src/apps/CMakeFiles/odapps.dir/goal_scenario.cc.o" "gcc" "src/apps/CMakeFiles/odapps.dir/goal_scenario.cc.o.d"
  "/root/repo/src/apps/map_viewer.cc" "src/apps/CMakeFiles/odapps.dir/map_viewer.cc.o" "gcc" "src/apps/CMakeFiles/odapps.dir/map_viewer.cc.o.d"
  "/root/repo/src/apps/speech_recognizer.cc" "src/apps/CMakeFiles/odapps.dir/speech_recognizer.cc.o" "gcc" "src/apps/CMakeFiles/odapps.dir/speech_recognizer.cc.o.d"
  "/root/repo/src/apps/testbed.cc" "src/apps/CMakeFiles/odapps.dir/testbed.cc.o" "gcc" "src/apps/CMakeFiles/odapps.dir/testbed.cc.o.d"
  "/root/repo/src/apps/video_player.cc" "src/apps/CMakeFiles/odapps.dir/video_player.cc.o" "gcc" "src/apps/CMakeFiles/odapps.dir/video_player.cc.o.d"
  "/root/repo/src/apps/wardens.cc" "src/apps/CMakeFiles/odapps.dir/wardens.cc.o" "gcc" "src/apps/CMakeFiles/odapps.dir/wardens.cc.o.d"
  "/root/repo/src/apps/web_browser.cc" "src/apps/CMakeFiles/odapps.dir/web_browser.cc.o" "gcc" "src/apps/CMakeFiles/odapps.dir/web_browser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/odyssey/CMakeFiles/odyssey.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/odenergy.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/oddisplay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/odnet.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/odpower.dir/DependInfo.cmake"
  "/root/repo/build/src/powerscope/CMakeFiles/odscope.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/odsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/odutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
