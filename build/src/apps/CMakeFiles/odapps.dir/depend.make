# Empty dependencies file for odapps.
# This may be replaced when dependencies are built.
