file(REMOVE_RECURSE
  "libodapps.a"
)
