# Empty compiler generated dependencies file for odapps.
# This may be replaced when dependencies are built.
