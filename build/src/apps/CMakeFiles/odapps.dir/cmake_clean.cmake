file(REMOVE_RECURSE
  "CMakeFiles/odapps.dir/bursty.cc.o"
  "CMakeFiles/odapps.dir/bursty.cc.o.d"
  "CMakeFiles/odapps.dir/composite.cc.o"
  "CMakeFiles/odapps.dir/composite.cc.o.d"
  "CMakeFiles/odapps.dir/data_objects.cc.o"
  "CMakeFiles/odapps.dir/data_objects.cc.o.d"
  "CMakeFiles/odapps.dir/display_arbiter.cc.o"
  "CMakeFiles/odapps.dir/display_arbiter.cc.o.d"
  "CMakeFiles/odapps.dir/experiments.cc.o"
  "CMakeFiles/odapps.dir/experiments.cc.o.d"
  "CMakeFiles/odapps.dir/goal_scenario.cc.o"
  "CMakeFiles/odapps.dir/goal_scenario.cc.o.d"
  "CMakeFiles/odapps.dir/map_viewer.cc.o"
  "CMakeFiles/odapps.dir/map_viewer.cc.o.d"
  "CMakeFiles/odapps.dir/speech_recognizer.cc.o"
  "CMakeFiles/odapps.dir/speech_recognizer.cc.o.d"
  "CMakeFiles/odapps.dir/testbed.cc.o"
  "CMakeFiles/odapps.dir/testbed.cc.o.d"
  "CMakeFiles/odapps.dir/video_player.cc.o"
  "CMakeFiles/odapps.dir/video_player.cc.o.d"
  "CMakeFiles/odapps.dir/wardens.cc.o"
  "CMakeFiles/odapps.dir/wardens.cc.o.d"
  "CMakeFiles/odapps.dir/web_browser.cc.o"
  "CMakeFiles/odapps.dir/web_browser.cc.o.d"
  "libodapps.a"
  "libodapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odapps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
