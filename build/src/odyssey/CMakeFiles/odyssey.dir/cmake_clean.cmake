file(REMOVE_RECURSE
  "CMakeFiles/odyssey.dir/fidelity.cc.o"
  "CMakeFiles/odyssey.dir/fidelity.cc.o.d"
  "CMakeFiles/odyssey.dir/interceptor.cc.o"
  "CMakeFiles/odyssey.dir/interceptor.cc.o.d"
  "CMakeFiles/odyssey.dir/server.cc.o"
  "CMakeFiles/odyssey.dir/server.cc.o.d"
  "CMakeFiles/odyssey.dir/viceroy.cc.o"
  "CMakeFiles/odyssey.dir/viceroy.cc.o.d"
  "CMakeFiles/odyssey.dir/warden.cc.o"
  "CMakeFiles/odyssey.dir/warden.cc.o.d"
  "libodyssey.a"
  "libodyssey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odyssey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
