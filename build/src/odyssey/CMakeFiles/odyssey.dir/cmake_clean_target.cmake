file(REMOVE_RECURSE
  "libodyssey.a"
)
