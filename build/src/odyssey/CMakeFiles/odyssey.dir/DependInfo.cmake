
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/odyssey/fidelity.cc" "src/odyssey/CMakeFiles/odyssey.dir/fidelity.cc.o" "gcc" "src/odyssey/CMakeFiles/odyssey.dir/fidelity.cc.o.d"
  "/root/repo/src/odyssey/interceptor.cc" "src/odyssey/CMakeFiles/odyssey.dir/interceptor.cc.o" "gcc" "src/odyssey/CMakeFiles/odyssey.dir/interceptor.cc.o.d"
  "/root/repo/src/odyssey/server.cc" "src/odyssey/CMakeFiles/odyssey.dir/server.cc.o" "gcc" "src/odyssey/CMakeFiles/odyssey.dir/server.cc.o.d"
  "/root/repo/src/odyssey/viceroy.cc" "src/odyssey/CMakeFiles/odyssey.dir/viceroy.cc.o" "gcc" "src/odyssey/CMakeFiles/odyssey.dir/viceroy.cc.o.d"
  "/root/repo/src/odyssey/warden.cc" "src/odyssey/CMakeFiles/odyssey.dir/warden.cc.o" "gcc" "src/odyssey/CMakeFiles/odyssey.dir/warden.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/odnet.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/odpower.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/odsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/odutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
