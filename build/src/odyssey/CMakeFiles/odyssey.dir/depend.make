# Empty dependencies file for odyssey.
# This may be replaced when dependencies are built.
