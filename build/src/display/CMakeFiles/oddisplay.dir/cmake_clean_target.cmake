file(REMOVE_RECURSE
  "liboddisplay.a"
)
