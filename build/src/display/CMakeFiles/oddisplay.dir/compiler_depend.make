# Empty compiler generated dependencies file for oddisplay.
# This may be replaced when dependencies are built.
