file(REMOVE_RECURSE
  "CMakeFiles/oddisplay.dir/zoned.cc.o"
  "CMakeFiles/oddisplay.dir/zoned.cc.o.d"
  "liboddisplay.a"
  "liboddisplay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oddisplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
