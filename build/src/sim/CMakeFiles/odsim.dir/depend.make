# Empty dependencies file for odsim.
# This may be replaced when dependencies are built.
