file(REMOVE_RECURSE
  "libodsim.a"
)
