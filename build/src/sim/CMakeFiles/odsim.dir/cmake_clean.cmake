file(REMOVE_RECURSE
  "CMakeFiles/odsim.dir/event_queue.cc.o"
  "CMakeFiles/odsim.dir/event_queue.cc.o.d"
  "CMakeFiles/odsim.dir/process.cc.o"
  "CMakeFiles/odsim.dir/process.cc.o.d"
  "CMakeFiles/odsim.dir/simulator.cc.o"
  "CMakeFiles/odsim.dir/simulator.cc.o.d"
  "libodsim.a"
  "libodsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
