file(REMOVE_RECURSE
  "libodnet.a"
)
