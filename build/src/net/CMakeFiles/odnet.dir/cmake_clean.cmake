file(REMOVE_RECURSE
  "CMakeFiles/odnet.dir/bandwidth_monitor.cc.o"
  "CMakeFiles/odnet.dir/bandwidth_monitor.cc.o.d"
  "CMakeFiles/odnet.dir/link.cc.o"
  "CMakeFiles/odnet.dir/link.cc.o.d"
  "CMakeFiles/odnet.dir/rpc.cc.o"
  "CMakeFiles/odnet.dir/rpc.cc.o.d"
  "libodnet.a"
  "libodnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
