file(REMOVE_RECURSE
  "libodscope.a"
)
