
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/powerscope/multimeter.cc" "src/powerscope/CMakeFiles/odscope.dir/multimeter.cc.o" "gcc" "src/powerscope/CMakeFiles/odscope.dir/multimeter.cc.o.d"
  "/root/repo/src/powerscope/online_monitor.cc" "src/powerscope/CMakeFiles/odscope.dir/online_monitor.cc.o" "gcc" "src/powerscope/CMakeFiles/odscope.dir/online_monitor.cc.o.d"
  "/root/repo/src/powerscope/profile.cc" "src/powerscope/CMakeFiles/odscope.dir/profile.cc.o" "gcc" "src/powerscope/CMakeFiles/odscope.dir/profile.cc.o.d"
  "/root/repo/src/powerscope/profiler.cc" "src/powerscope/CMakeFiles/odscope.dir/profiler.cc.o" "gcc" "src/powerscope/CMakeFiles/odscope.dir/profiler.cc.o.d"
  "/root/repo/src/powerscope/smart_battery.cc" "src/powerscope/CMakeFiles/odscope.dir/smart_battery.cc.o" "gcc" "src/powerscope/CMakeFiles/odscope.dir/smart_battery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/odpower.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/odsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/odutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
