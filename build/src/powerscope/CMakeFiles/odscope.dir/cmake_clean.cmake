file(REMOVE_RECURSE
  "CMakeFiles/odscope.dir/multimeter.cc.o"
  "CMakeFiles/odscope.dir/multimeter.cc.o.d"
  "CMakeFiles/odscope.dir/online_monitor.cc.o"
  "CMakeFiles/odscope.dir/online_monitor.cc.o.d"
  "CMakeFiles/odscope.dir/profile.cc.o"
  "CMakeFiles/odscope.dir/profile.cc.o.d"
  "CMakeFiles/odscope.dir/profiler.cc.o"
  "CMakeFiles/odscope.dir/profiler.cc.o.d"
  "CMakeFiles/odscope.dir/smart_battery.cc.o"
  "CMakeFiles/odscope.dir/smart_battery.cc.o.d"
  "libodscope.a"
  "libodscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
