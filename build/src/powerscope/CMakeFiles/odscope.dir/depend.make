# Empty dependencies file for odscope.
# This may be replaced when dependencies are built.
