file(REMOVE_RECURSE
  "CMakeFiles/odenergy.dir/goal_director.cc.o"
  "CMakeFiles/odenergy.dir/goal_director.cc.o.d"
  "CMakeFiles/odenergy.dir/hysteresis.cc.o"
  "CMakeFiles/odenergy.dir/hysteresis.cc.o.d"
  "CMakeFiles/odenergy.dir/predictor.cc.o"
  "CMakeFiles/odenergy.dir/predictor.cc.o.d"
  "CMakeFiles/odenergy.dir/smoothing.cc.o"
  "CMakeFiles/odenergy.dir/smoothing.cc.o.d"
  "libodenergy.a"
  "libodenergy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odenergy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
