file(REMOVE_RECURSE
  "libodenergy.a"
)
