# Empty compiler generated dependencies file for odenergy.
# This may be replaced when dependencies are built.
