
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/accounting.cc" "src/power/CMakeFiles/odpower.dir/accounting.cc.o" "gcc" "src/power/CMakeFiles/odpower.dir/accounting.cc.o.d"
  "/root/repo/src/power/battery.cc" "src/power/CMakeFiles/odpower.dir/battery.cc.o" "gcc" "src/power/CMakeFiles/odpower.dir/battery.cc.o.d"
  "/root/repo/src/power/component.cc" "src/power/CMakeFiles/odpower.dir/component.cc.o" "gcc" "src/power/CMakeFiles/odpower.dir/component.cc.o.d"
  "/root/repo/src/power/cpu.cc" "src/power/CMakeFiles/odpower.dir/cpu.cc.o" "gcc" "src/power/CMakeFiles/odpower.dir/cpu.cc.o.d"
  "/root/repo/src/power/disk.cc" "src/power/CMakeFiles/odpower.dir/disk.cc.o" "gcc" "src/power/CMakeFiles/odpower.dir/disk.cc.o.d"
  "/root/repo/src/power/display.cc" "src/power/CMakeFiles/odpower.dir/display.cc.o" "gcc" "src/power/CMakeFiles/odpower.dir/display.cc.o.d"
  "/root/repo/src/power/machine.cc" "src/power/CMakeFiles/odpower.dir/machine.cc.o" "gcc" "src/power/CMakeFiles/odpower.dir/machine.cc.o.d"
  "/root/repo/src/power/power_manager.cc" "src/power/CMakeFiles/odpower.dir/power_manager.cc.o" "gcc" "src/power/CMakeFiles/odpower.dir/power_manager.cc.o.d"
  "/root/repo/src/power/supply.cc" "src/power/CMakeFiles/odpower.dir/supply.cc.o" "gcc" "src/power/CMakeFiles/odpower.dir/supply.cc.o.d"
  "/root/repo/src/power/thinkpad560x.cc" "src/power/CMakeFiles/odpower.dir/thinkpad560x.cc.o" "gcc" "src/power/CMakeFiles/odpower.dir/thinkpad560x.cc.o.d"
  "/root/repo/src/power/wavelan.cc" "src/power/CMakeFiles/odpower.dir/wavelan.cc.o" "gcc" "src/power/CMakeFiles/odpower.dir/wavelan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/odsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/odutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
