# Empty dependencies file for odpower.
# This may be replaced when dependencies are built.
