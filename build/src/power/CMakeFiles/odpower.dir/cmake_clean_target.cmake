file(REMOVE_RECURSE
  "libodpower.a"
)
