file(REMOVE_RECURSE
  "CMakeFiles/odpower.dir/accounting.cc.o"
  "CMakeFiles/odpower.dir/accounting.cc.o.d"
  "CMakeFiles/odpower.dir/battery.cc.o"
  "CMakeFiles/odpower.dir/battery.cc.o.d"
  "CMakeFiles/odpower.dir/component.cc.o"
  "CMakeFiles/odpower.dir/component.cc.o.d"
  "CMakeFiles/odpower.dir/cpu.cc.o"
  "CMakeFiles/odpower.dir/cpu.cc.o.d"
  "CMakeFiles/odpower.dir/disk.cc.o"
  "CMakeFiles/odpower.dir/disk.cc.o.d"
  "CMakeFiles/odpower.dir/display.cc.o"
  "CMakeFiles/odpower.dir/display.cc.o.d"
  "CMakeFiles/odpower.dir/machine.cc.o"
  "CMakeFiles/odpower.dir/machine.cc.o.d"
  "CMakeFiles/odpower.dir/power_manager.cc.o"
  "CMakeFiles/odpower.dir/power_manager.cc.o.d"
  "CMakeFiles/odpower.dir/supply.cc.o"
  "CMakeFiles/odpower.dir/supply.cc.o.d"
  "CMakeFiles/odpower.dir/thinkpad560x.cc.o"
  "CMakeFiles/odpower.dir/thinkpad560x.cc.o.d"
  "CMakeFiles/odpower.dir/wavelan.cc.o"
  "CMakeFiles/odpower.dir/wavelan.cc.o.d"
  "libodpower.a"
  "libodpower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odpower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
