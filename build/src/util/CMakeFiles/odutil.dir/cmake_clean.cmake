file(REMOVE_RECURSE
  "CMakeFiles/odutil.dir/csv.cc.o"
  "CMakeFiles/odutil.dir/csv.cc.o.d"
  "CMakeFiles/odutil.dir/logging.cc.o"
  "CMakeFiles/odutil.dir/logging.cc.o.d"
  "CMakeFiles/odutil.dir/rng.cc.o"
  "CMakeFiles/odutil.dir/rng.cc.o.d"
  "CMakeFiles/odutil.dir/stats.cc.o"
  "CMakeFiles/odutil.dir/stats.cc.o.d"
  "CMakeFiles/odutil.dir/table.cc.o"
  "CMakeFiles/odutil.dir/table.cc.o.d"
  "libodutil.a"
  "libodutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
