# Empty dependencies file for odutil.
# This may be replaced when dependencies are built.
