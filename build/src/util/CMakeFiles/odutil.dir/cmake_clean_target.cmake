file(REMOVE_RECURSE
  "libodutil.a"
)
