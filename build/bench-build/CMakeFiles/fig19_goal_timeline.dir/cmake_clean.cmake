file(REMOVE_RECURSE
  "../bench/fig19_goal_timeline"
  "../bench/fig19_goal_timeline.pdb"
  "CMakeFiles/fig19_goal_timeline.dir/fig19_goal_timeline.cc.o"
  "CMakeFiles/fig19_goal_timeline.dir/fig19_goal_timeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_goal_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
