# Empty dependencies file for fig19_goal_timeline.
# This may be replaced when dependencies are built.
