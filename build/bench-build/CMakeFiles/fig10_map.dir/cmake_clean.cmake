file(REMOVE_RECURSE
  "../bench/fig10_map"
  "../bench/fig10_map.pdb"
  "CMakeFiles/fig10_map.dir/fig10_map.cc.o"
  "CMakeFiles/fig10_map.dir/fig10_map.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
