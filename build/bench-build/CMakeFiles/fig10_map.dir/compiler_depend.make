# Empty compiler generated dependencies file for fig10_map.
# This may be replaced when dependencies are built.
