file(REMOVE_RECURSE
  "../bench/fig02_profile"
  "../bench/fig02_profile.pdb"
  "CMakeFiles/fig02_profile.dir/fig02_profile.cc.o"
  "CMakeFiles/fig02_profile.dir/fig02_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
