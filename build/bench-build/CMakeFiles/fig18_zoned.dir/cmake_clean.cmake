file(REMOVE_RECURSE
  "../bench/fig18_zoned"
  "../bench/fig18_zoned.pdb"
  "CMakeFiles/fig18_zoned.dir/fig18_zoned.cc.o"
  "CMakeFiles/fig18_zoned.dir/fig18_zoned.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_zoned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
