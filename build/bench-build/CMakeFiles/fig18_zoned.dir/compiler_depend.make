# Empty compiler generated dependencies file for fig18_zoned.
# This may be replaced when dependencies are built.
