# Empty dependencies file for goalprobe.
# This may be replaced when dependencies are built.
