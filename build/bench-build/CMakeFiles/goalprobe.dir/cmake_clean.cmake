file(REMOVE_RECURSE
  "../bench/goalprobe"
  "../bench/goalprobe.pdb"
  "CMakeFiles/goalprobe.dir/goalprobe.cc.o"
  "CMakeFiles/goalprobe.dir/goalprobe.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalprobe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
