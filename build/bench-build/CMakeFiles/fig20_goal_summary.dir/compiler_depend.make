# Empty compiler generated dependencies file for fig20_goal_summary.
# This may be replaced when dependencies are built.
