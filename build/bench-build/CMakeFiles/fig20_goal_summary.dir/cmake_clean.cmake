file(REMOVE_RECURSE
  "../bench/fig20_goal_summary"
  "../bench/fig20_goal_summary.pdb"
  "CMakeFiles/fig20_goal_summary.dir/fig20_goal_summary.cc.o"
  "CMakeFiles/fig20_goal_summary.dir/fig20_goal_summary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_goal_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
