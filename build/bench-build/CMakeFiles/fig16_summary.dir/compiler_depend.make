# Empty compiler generated dependencies file for fig16_summary.
# This may be replaced when dependencies are built.
