file(REMOVE_RECURSE
  "../bench/fig16_summary"
  "../bench/fig16_summary.pdb"
  "CMakeFiles/fig16_summary.dir/fig16_summary.cc.o"
  "CMakeFiles/fig16_summary.dir/fig16_summary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
