# Empty compiler generated dependencies file for fig11_map_think.
# This may be replaced when dependencies are built.
