file(REMOVE_RECURSE
  "../bench/fig11_map_think"
  "../bench/fig11_map_think.pdb"
  "CMakeFiles/fig11_map_think.dir/fig11_map_think.cc.o"
  "CMakeFiles/fig11_map_think.dir/fig11_map_think.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_map_think.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
