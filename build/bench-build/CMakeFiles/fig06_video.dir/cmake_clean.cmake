file(REMOVE_RECURSE
  "../bench/fig06_video"
  "../bench/fig06_video.pdb"
  "CMakeFiles/fig06_video.dir/fig06_video.cc.o"
  "CMakeFiles/fig06_video.dir/fig06_video.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
