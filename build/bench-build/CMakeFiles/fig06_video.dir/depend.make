# Empty dependencies file for fig06_video.
# This may be replaced when dependencies are built.
