# Empty dependencies file for fig14_web_think.
# This may be replaced when dependencies are built.
