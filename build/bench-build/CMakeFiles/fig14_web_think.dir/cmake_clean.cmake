file(REMOVE_RECURSE
  "../bench/fig14_web_think"
  "../bench/fig14_web_think.pdb"
  "CMakeFiles/fig14_web_think.dir/fig14_web_think.cc.o"
  "CMakeFiles/fig14_web_think.dir/fig14_web_think.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_web_think.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
