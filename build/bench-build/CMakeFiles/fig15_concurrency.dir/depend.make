# Empty dependencies file for fig15_concurrency.
# This may be replaced when dependencies are built.
