file(REMOVE_RECURSE
  "../bench/fig15_concurrency"
  "../bench/fig15_concurrency.pdb"
  "CMakeFiles/fig15_concurrency.dir/fig15_concurrency.cc.o"
  "CMakeFiles/fig15_concurrency.dir/fig15_concurrency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
