file(REMOVE_RECURSE
  "../bench/ablate_monitoring"
  "../bench/ablate_monitoring.pdb"
  "CMakeFiles/ablate_monitoring.dir/ablate_monitoring.cc.o"
  "CMakeFiles/ablate_monitoring.dir/ablate_monitoring.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
