# Empty compiler generated dependencies file for ablate_monitoring.
# This may be replaced when dependencies are built.
