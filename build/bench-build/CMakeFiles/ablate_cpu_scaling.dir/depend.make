# Empty dependencies file for ablate_cpu_scaling.
# This may be replaced when dependencies are built.
