file(REMOVE_RECURSE
  "../bench/ablate_cpu_scaling"
  "../bench/ablate_cpu_scaling.pdb"
  "CMakeFiles/ablate_cpu_scaling.dir/ablate_cpu_scaling.cc.o"
  "CMakeFiles/ablate_cpu_scaling.dir/ablate_cpu_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
