file(REMOVE_RECURSE
  "../bench/calibrate"
  "../bench/calibrate.pdb"
  "CMakeFiles/calibrate.dir/calibrate.cc.o"
  "CMakeFiles/calibrate.dir/calibrate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
