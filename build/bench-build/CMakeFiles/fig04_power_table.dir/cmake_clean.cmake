file(REMOVE_RECURSE
  "../bench/fig04_power_table"
  "../bench/fig04_power_table.pdb"
  "CMakeFiles/fig04_power_table.dir/fig04_power_table.cc.o"
  "CMakeFiles/fig04_power_table.dir/fig04_power_table.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_power_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
