# Empty compiler generated dependencies file for fig04_power_table.
# This may be replaced when dependencies are built.
