file(REMOVE_RECURSE
  "../bench/ablate_hysteresis"
  "../bench/ablate_hysteresis.pdb"
  "CMakeFiles/ablate_hysteresis.dir/ablate_hysteresis.cc.o"
  "CMakeFiles/ablate_hysteresis.dir/ablate_hysteresis.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_hysteresis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
