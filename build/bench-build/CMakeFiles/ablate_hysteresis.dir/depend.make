# Empty dependencies file for ablate_hysteresis.
# This may be replaced when dependencies are built.
