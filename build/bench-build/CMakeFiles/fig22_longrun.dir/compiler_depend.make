# Empty compiler generated dependencies file for fig22_longrun.
# This may be replaced when dependencies are built.
