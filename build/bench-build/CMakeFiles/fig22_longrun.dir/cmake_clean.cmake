file(REMOVE_RECURSE
  "../bench/fig22_longrun"
  "../bench/fig22_longrun.pdb"
  "CMakeFiles/fig22_longrun.dir/fig22_longrun.cc.o"
  "CMakeFiles/fig22_longrun.dir/fig22_longrun.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_longrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
