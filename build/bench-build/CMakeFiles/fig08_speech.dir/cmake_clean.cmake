file(REMOVE_RECURSE
  "../bench/fig08_speech"
  "../bench/fig08_speech.pdb"
  "CMakeFiles/fig08_speech.dir/fig08_speech.cc.o"
  "CMakeFiles/fig08_speech.dir/fig08_speech.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_speech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
