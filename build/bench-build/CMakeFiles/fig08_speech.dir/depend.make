# Empty dependencies file for fig08_speech.
# This may be replaced when dependencies are built.
