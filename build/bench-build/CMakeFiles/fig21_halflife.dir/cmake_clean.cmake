file(REMOVE_RECURSE
  "../bench/fig21_halflife"
  "../bench/fig21_halflife.pdb"
  "CMakeFiles/fig21_halflife.dir/fig21_halflife.cc.o"
  "CMakeFiles/fig21_halflife.dir/fig21_halflife.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_halflife.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
