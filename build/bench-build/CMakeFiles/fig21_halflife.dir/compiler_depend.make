# Empty compiler generated dependencies file for fig21_halflife.
# This may be replaced when dependencies are built.
