# Empty compiler generated dependencies file for fig13_web.
# This may be replaced when dependencies are built.
