file(REMOVE_RECURSE
  "../bench/fig13_web"
  "../bench/fig13_web.pdb"
  "CMakeFiles/fig13_web.dir/fig13_web.cc.o"
  "CMakeFiles/fig13_web.dir/fig13_web.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
