// odyssey_cli — command-line front end for the simulator.
//
//   odyssey_cli power-table
//       Print the ThinkPad 560X component power table (Figure 4).
//   odyssey_cli profile [--seconds N]
//       PowerScope profile of a video session (Figure 2 format).
//   odyssey_cli lifetime [--joules J] [--lowest]
//       Untethered lifetime of the Section 5 workload, pinned at highest or
//       lowest fidelity.
//   odyssey_cli goal [--minutes M] [--joules J] [--seed S] [--bursty]
//               [--loss P] [--smart-battery] [--extend-at-min T --extend-min E]
//       Run goal-directed adaptation and report the outcome.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/apps/goal_scenario.h"
#include "src/apps/testbed.h"
#include "src/powerscope/profiler.h"

namespace {

double FlagValue(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::atof(argv[i + 1]);
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

int PowerTable() {
  odsim::Simulator sim;
  auto laptop = odpower::MakeThinkPad560X(&sim);
  const odpower::ThinkPad560XSpec& spec = laptop->spec();
  std::printf("IBM ThinkPad 560X power model (Figure 4):\n");
  std::printf("  Display   bright %.2f W, dim %.2f W\n", spec.display_bright,
              spec.display_dim);
  std::printf("  WaveLAN   tx %.2f, rx %.2f, idle %.2f, standby %.2f W\n",
              spec.wavelan_transmit, spec.wavelan_receive, spec.wavelan_idle,
              spec.wavelan_standby);
  std::printf("  Disk      access %.2f, idle %.2f, standby %.2f W\n",
              spec.disk_access, spec.disk_idle, spec.disk_standby);
  std::printf("  CPU       busy %.2f W (halt 0)\n", spec.cpu_busy);
  std::printf("  Other     %.2f W\n", spec.other);
  std::printf("  Background (dim + standby) = %.2f W\n",
              laptop->BackgroundPowerWatts());
  return 0;
}

int Profile(int argc, char** argv) {
  double seconds = FlagValue(argc, argv, "--seconds", 60.0);
  odapps::TestBed bed;
  odscope::Profiler profiler(&bed.sim(), &bed.laptop().machine());
  profiler.Start();
  bool finished = false;
  bed.video().PlaySegment(odapps::StandardVideoClips()[0],
                          odsim::SimDuration::Seconds(seconds),
                          [&finished] { finished = true; });
  bed.sim().RunUntil(odsim::SimTime::Seconds(seconds + 10));
  profiler.Stop();
  if (!finished) {
    std::fprintf(stderr, "workload did not finish\n");
    return 1;
  }
  std::printf("%s", profiler.Correlate().Format("xanim").c_str());
  return 0;
}

int Lifetime(int argc, char** argv) {
  double joules = FlagValue(argc, argv, "--joules", 13500.0);
  bool lowest = HasFlag(argc, argv, "--lowest");
  double seconds = odapps::MeasurePinnedLifetime(joules, lowest, 1);
  std::printf("%s fidelity on %.0f J: %.0f s (%d:%02d)\n",
              lowest ? "lowest" : "highest", joules, seconds,
              static_cast<int>(seconds) / 60, static_cast<int>(seconds) % 60);
  return 0;
}

int Goal(int argc, char** argv) {
  odapps::GoalScenarioOptions options;
  options.initial_joules = FlagValue(argc, argv, "--joules", 13500.0);
  options.goal =
      odsim::SimDuration::Minutes(FlagValue(argc, argv, "--minutes", 22.0));
  options.seed = static_cast<uint64_t>(FlagValue(argc, argv, "--seed", 1.0));
  options.bursty = HasFlag(argc, argv, "--bursty");
  options.use_smart_battery = HasFlag(argc, argv, "--smart-battery");
  options.rpc_loss_probability = FlagValue(argc, argv, "--loss", 0.0);
  double extend_at = FlagValue(argc, argv, "--extend-at-min", 0.0);
  double extend_by = FlagValue(argc, argv, "--extend-min", 0.0);
  if (extend_at > 0.0 && extend_by > 0.0) {
    options.extend_at = odsim::SimDuration::Minutes(extend_at);
    options.extend_by = odsim::SimDuration::Minutes(extend_by);
  }

  odapps::GoalScenarioResult result = odapps::RunGoalScenario(options);
  std::printf("%s after %.0f s; residual %.0f J (%.1f%% of %.0f J)\n",
              result.goal_met ? "GOAL MET" : "SUPPLY EXHAUSTED",
              result.elapsed_seconds, result.residual_joules,
              100.0 * result.residual_joules / options.initial_joules,
              options.initial_joules);
  for (const auto& [app, count] : result.adaptations) {
    std::printf("  %-7s %3d adaptations, final level %d\n", app.c_str(), count,
                result.final_fidelity.at(app));
  }
  return result.goal_met ? 0 : 2;
}

int Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s <command> [options]\n"
      "  power-table\n"
      "  profile  [--seconds N]\n"
      "  lifetime [--joules J] [--lowest]\n"
      "  goal     [--minutes M] [--joules J] [--seed S] [--bursty]\n"
      "           [--loss P] [--smart-battery]\n"
      "           [--extend-at-min T --extend-min E]\n",
      prog);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage(argv[0]);
  }
  std::string command = argv[1];
  if (command == "power-table") {
    return PowerTable();
  }
  if (command == "profile") {
    return Profile(argc, argv);
  }
  if (command == "lifetime") {
    return Lifetime(argc, argv);
  }
  if (command == "goal") {
    return Goal(argc, argv);
  }
  return Usage(argv[0]);
}
