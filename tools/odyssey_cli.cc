// odyssey_cli — command-line front end for the simulator.
//
//   odyssey_cli power-table
//       Print the ThinkPad 560X component power table (Figure 4).
//   odyssey_cli profile [--seconds N]
//       PowerScope profile of a video session (Figure 2 format).
//   odyssey_cli lifetime [--joules J] [--lowest]
//       Untethered lifetime of the Section 5 workload, pinned at highest or
//       lowest fidelity.
//   odyssey_cli goal [--minutes M] [--joules J] [--seed S] [--bursty]
//               [--loss P] [--smart-battery] [--extend-at-min T --extend-min E]
//       Run goal-directed adaptation and report the outcome.
//
// Flag parsing is the shared odharness::Flags (the same parser odbench
// uses), not a hand-rolled strcmp loop.

#include <cstdio>
#include <string>

#include "src/apps/goal_scenario.h"
#include "src/apps/testbed.h"
#include "src/harness/flags.h"
#include "src/powerscope/profiler.h"

namespace {

int PowerTable() {
  odsim::Simulator sim;
  auto laptop = odpower::MakeThinkPad560X(&sim);
  const odpower::ThinkPad560XSpec& spec = laptop->spec();
  std::printf("IBM ThinkPad 560X power model (Figure 4):\n");
  std::printf("  Display   bright %.2f W, dim %.2f W\n", spec.display_bright,
              spec.display_dim);
  std::printf("  WaveLAN   tx %.2f, rx %.2f, idle %.2f, standby %.2f W\n",
              spec.wavelan_transmit, spec.wavelan_receive, spec.wavelan_idle,
              spec.wavelan_standby);
  std::printf("  Disk      access %.2f, idle %.2f, standby %.2f W\n",
              spec.disk_access, spec.disk_idle, spec.disk_standby);
  std::printf("  CPU       busy %.2f W (halt 0)\n", spec.cpu_busy);
  std::printf("  Other     %.2f W\n", spec.other);
  std::printf("  Background (dim + standby) = %.2f W\n",
              laptop->BackgroundPowerWatts());
  return 0;
}

int Profile(const odharness::Flags& flags) {
  double seconds = flags.GetDouble("seconds", 60.0);
  odapps::TestBed bed;
  odscope::Profiler profiler(&bed.sim(), &bed.laptop().machine());
  profiler.Start();
  bool finished = false;
  bed.video().PlaySegment(odapps::StandardVideoClips()[0],
                          odsim::SimDuration::Seconds(seconds),
                          [&finished] { finished = true; });
  bed.sim().RunUntil(odsim::SimTime::Seconds(seconds + 10));
  profiler.Stop();
  if (!finished) {
    std::fprintf(stderr, "workload did not finish\n");
    return 1;
  }
  std::printf("%s", profiler.Correlate().Format("xanim").c_str());
  return 0;
}

int Lifetime(const odharness::Flags& flags) {
  double joules = flags.GetDouble("joules", 13500.0);
  bool lowest = flags.Has("lowest");
  double seconds = odapps::MeasurePinnedLifetime(joules, lowest, 1);
  std::printf("%s fidelity on %.0f J: %.0f s (%d:%02d)\n",
              lowest ? "lowest" : "highest", joules, seconds,
              static_cast<int>(seconds) / 60, static_cast<int>(seconds) % 60);
  return 0;
}

int Goal(const odharness::Flags& flags) {
  odapps::GoalScenarioOptions options;
  options.initial_joules = flags.GetDouble("joules", 13500.0);
  options.goal = odsim::SimDuration::Minutes(flags.GetDouble("minutes", 22.0));
  options.seed = flags.GetUint64("seed", 1);
  options.bursty = flags.Has("bursty");
  options.use_smart_battery = flags.Has("smart-battery");
  options.rpc_loss_probability = flags.GetDouble("loss", 0.0);
  double extend_at = flags.GetDouble("extend-at-min", 0.0);
  double extend_by = flags.GetDouble("extend-min", 0.0);
  if (extend_at > 0.0 && extend_by > 0.0) {
    options.extend_at = odsim::SimDuration::Minutes(extend_at);
    options.extend_by = odsim::SimDuration::Minutes(extend_by);
  }

  odapps::GoalScenarioResult result = odapps::RunGoalScenario(options);
  std::printf("%s after %.0f s; residual %.0f J (%.1f%% of %.0f J)\n",
              result.goal_met ? "GOAL MET" : "SUPPLY EXHAUSTED",
              result.elapsed_seconds, result.residual_joules,
              100.0 * result.residual_joules / options.initial_joules,
              options.initial_joules);
  for (const auto& [app, count] : result.adaptations) {
    std::printf("  %-7s %3d adaptations, final level %d\n", app.c_str(), count,
                result.final_fidelity.at(app));
  }
  return result.goal_met ? 0 : 2;
}

int Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s <command> [options]\n"
      "  power-table\n"
      "  profile  [--seconds N]\n"
      "  lifetime [--joules J] [--lowest]\n"
      "  goal     [--minutes M] [--joules J] [--seed S] [--bursty]\n"
      "           [--loss P] [--smart-battery]\n"
      "           [--extend-at-min T --extend-min E]\n",
      prog);
  return 64;
}

int Main(int argc, char** argv) {
  odharness::Flags flags(argc, argv);
  if (flags.positional().size() != 1) {
    return Usage(argv[0]);
  }
  const std::string& command = flags.positional()[0];

  std::string error;
  bool flags_ok = true;
  if (command == "power-table") {
    flags_ok = flags.Validate({}, {}, &error);
  } else if (command == "profile") {
    flags_ok = flags.Validate({"seconds"}, {}, &error);
  } else if (command == "lifetime") {
    flags_ok = flags.Validate({"joules"}, {"lowest"}, &error);
  } else if (command == "goal") {
    flags_ok = flags.Validate(
        {"minutes", "joules", "seed", "loss", "extend-at-min", "extend-min"},
        {"bursty", "smart-battery"}, &error);
  } else {
    return Usage(argv[0]);
  }
  if (!flags_ok) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return Usage(argv[0]);
  }

  if (command == "power-table") {
    return PowerTable();
  }
  if (command == "profile") {
    return Profile(flags);
  }
  if (command == "lifetime") {
    return Lifetime(flags);
  }
  return Goal(flags);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Main(argc, argv);
  } catch (const odharness::FlagError& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return Usage(argv[0]);
  }
}
