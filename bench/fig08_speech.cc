// Regenerates Figure 8: energy to recognize four utterances under local,
// remote, and hybrid strategies at high and low fidelity.  Per-process
// columns are cross-trial means.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"

using odapps::RunSpeechExperiment;
using odapps::SpeechMode;
using odapps::StandardUtterances;

namespace {

struct Bar {
  const char* label;
  SpeechMode mode;
  bool reduced;
  bool hw_pm;
};

constexpr Bar kBars[] = {
    {"Baseline", SpeechMode::kLocal, false, false},
    {"Hardware-Only Power Mgmt.", SpeechMode::kLocal, false, true},
    {"Reduced Model", SpeechMode::kLocal, true, true},
    {"Remote", SpeechMode::kRemote, false, true},
    {"Remote Reduced Model", SpeechMode::kRemote, true, true},
    {"Hybrid", SpeechMode::kHybrid, false, true},
    {"Hybrid Reduced Model", SpeechMode::kHybrid, true, true},
};

}  // namespace

ODBENCH_EXPERIMENT(fig08_speech,
                   "Figure 8: energy impact of fidelity for speech "
                   "recognition (7 bars x 4 utterances)") {
  odutil::Table table(
      "Figure 8: Energy impact of fidelity for speech recognition (Joules; mean "
      "of 5 trials ±90% CI)");
  table.SetHeader({"Utterance", "Configuration", "Energy (J)", "Idle", "Janus",
                   "Odyssey", "WaveLAN intr", "vs Baseline", "vs HW-only"});

  for (const odapps::Utterance& utterance : StandardUtterances()) {
    double baseline_mean = 0.0;
    double hw_mean = 0.0;
    for (const Bar& bar : kBars) {
      odharness::TrialSet set = ctx.RunTrials(
          std::string(utterance.name) + "/" + bar.label, 5, 2000,
          [&](uint64_t seed) {
            return odbench::EnergySample(RunSpeechExperiment(
                utterance, bar.mode, bar.reduced, bar.hw_pm, seed));
          });
      if (bar.mode == SpeechMode::kLocal && !bar.reduced) {
        if (!bar.hw_pm) {
          baseline_mean = set.summary.mean;
        } else {
          hw_mean = set.summary.mean;
        }
      }
      table.AddRow({utterance.name, bar.label, odbench::MeanCi(set.summary, 1),
                    odutil::Table::Num(set.Mean("Idle"), 1),
                    odutil::Table::Num(set.Mean("Janus"), 1),
                    odutil::Table::Num(set.Mean("Odyssey"), 1),
                    odutil::Table::Num(set.Mean("Interrupts-WaveLAN"), 1),
                    odutil::Table::Num(set.summary.mean / baseline_mean, 3),
                    hw_mean > 0.0
                        ? odutil::Table::Num(set.summary.mean / hw_mean, 3)
                        : std::string("-")});
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "Paper: HW-only PM saves 33-34%%; reduced model 25-46%%, remote 33-44%%,\n"
      "hybrid 47-55%%, hybrid reduced 53-70%% below HW-only; lowest fidelity\n"
      "is a 69-80%% reduction below baseline.\n");
  return 0;
}
