// Regenerates Figure 15: energy of the composite application in isolation
// versus concurrent with a background video, at baseline, hardware-only
// power management, and lowest fidelity.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"
#include "src/harness/sweep_runner.h"

using odapps::RunCompositeExperiment;

namespace {

// Energy sample plus the server-side view: the concurrency figure is the
// one place the testbed's distillation services see real contention, so
// its artifact records what each service did (queue depth at collection,
// cumulative busy seconds, completed requests, and queue-wait percentiles)
// alongside the client-side energy.
odharness::TrialSample SampleWithServerStats(
    const odapps::TestBed::Measurement& m) {
  odharness::TrialSample s = odbench::EnergySample(m);
  for (const auto& [name, st] : m.by_server) {
    const std::string prefix = "server." + name + ".";
    s.breakdown[prefix + "queue_depth"] = st.queue_depth;
    s.breakdown[prefix + "busy_seconds"] = st.busy_seconds;
    s.breakdown[prefix + "completed"] = st.completed_requests;
    s.breakdown[prefix + "wait_p50_s"] = st.wait_p50_seconds;
    s.breakdown[prefix + "wait_p95_s"] = st.wait_p95_seconds;
  }
  return s;
}

}  // namespace

ODBENCH_EXPERIMENT(fig15_concurrency,
                   "Figure 15: effect of concurrent applications (composite "
                   "alone vs with background video)") {
  struct Case {
    const char* label;
    bool lowest;
    bool hw_pm;
  };
  const Case cases[] = {
      {"Baseline", false, false},
      {"Hardware-Only Power Mgmt.", false, true},
      {"Lowest Fidelity", true, true},
  };

  odutil::Table table(
      "Figure 15: Effect of concurrent applications (composite of Section 3.7, "
      "6 iterations; Joules; mean of 5 trials ±90% CI)");
  table.SetHeader({"Case", "Composite alone", "With background video",
                   "Marginal cost"});

  // All six trial sets (3 cases x alone/with_video) are sweep cells, so
  // the whole figure — not just the trials within one set — shares the
  // --jobs worker budget.
  odharness::Sweep sweep(ctx);
  size_t alone_cells[3], video_cells[3];
  for (int i = 0; i < 3; ++i) {
    const Case& c = cases[i];
    alone_cells[i] = sweep.AddTrials(
        std::string(c.label) + "/alone", 5, 7000, [&c](uint64_t seed) {
          return SampleWithServerStats(
              RunCompositeExperiment(6, c.lowest, c.hw_pm, false, seed));
        });
    video_cells[i] = sweep.AddTrials(
        std::string(c.label) + "/with_video", 5, 7000, [&c](uint64_t seed) {
          return SampleWithServerStats(
              RunCompositeExperiment(6, c.lowest, c.hw_pm, true, seed));
        });
  }
  sweep.Run();

  double pm_video = 0.0, low_video = 0.0, pm_alone = 0.0, low_alone = 0.0;
  for (int i = 0; i < 3; ++i) {
    const Case& c = cases[i];
    const odharness::TrialSet& alone = sweep.Set(alone_cells[i]);
    const odharness::TrialSet& with_video = sweep.Set(video_cells[i]);
    double add = with_video.summary.mean / alone.summary.mean - 1.0;
    table.AddRow({c.label, odbench::MeanCi(alone.summary, 0),
                  odbench::MeanCi(with_video.summary, 0),
                  odutil::Table::Pct(add, 0)});
    if (c.hw_pm && !c.lowest) {
      pm_alone = alone.summary.mean;
      pm_video = with_video.summary.mean;
    }
    if (c.lowest) {
      low_alone = alone.summary.mean;
      low_video = with_video.summary.mean;
    }
  }
  table.Print();

  ctx.Note("lowest_over_pm_concurrent", low_video / pm_video);
  ctx.Note("lowest_over_pm_isolated", low_alone / pm_alone);
  std::printf(
      "Concurrency enhances the benefit of lowering fidelity: lowest/HW-only\n"
      "ratio is %.2f concurrent vs %.2f isolated (paper: 0.65 vs expected 0.71).\n"
      "Paper marginal costs: +53%% baseline, +64%% HW-only, +18%% lowest — our\n"
      "background video sheds more load under contention, so the managed\n"
      "marginal costs are smaller, but the ordering (lowest << baseline <\n"
      "HW-only) is preserved.\n",
      low_video / pm_video, low_alone / pm_alone);
  return 0;
}
