// Ablation: power-monitoring source (Section 5.1.1/5.1.4).  The prototype
// uses an external multimeter sampled at 10 Hz; a deployed system would use
// a SmartBattery gas gauge: 1 Hz, quantized readings, and its own standing
// draw.  How much does coarser monitoring cost the adaptation system?

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace odapps;

ODBENCH_EXPERIMENT(ablate_monitoring,
                   "Ablation: 10 Hz multimeter vs SmartBattery gas gauge "
                   "monitoring (Section 5.1.1)") {
  odutil::Table table(
      "Ablation: power-monitoring source (1320 s goal, 13,500 J; 5 trials; "
      "mean (stddev))");
  table.SetHeader({"Monitor", "Goal Met", "Residual (J)", "Adaptations"});

  for (bool smart : {false, true}) {
    odharness::TrialSet set = ctx.RunTrials(
        smart ? "smart_battery" : "multimeter", 5, 33000, [&](uint64_t seed) {
          GoalScenarioOptions options;
          options.goal = odsim::SimDuration::Seconds(1320);
          options.use_smart_battery = smart;
          options.seed = seed;
          GoalScenarioResult result = RunGoalScenario(options);
          odharness::TrialSample sample;
          sample.value = result.residual_joules;
          sample.breakdown["goal_met"] = result.goal_met ? 1.0 : 0.0;
          sample.breakdown["adaptations"] = result.total_adaptations;
          return sample;
        });
    const odutil::Summary& adaptations =
        set.breakdown_summaries.at("adaptations");
    table.AddRow({smart ? "SmartBattery gas gauge (1 Hz, quantized, +10 mW)"
                        : "On-line multimeter (10 Hz, paper's prototype)",
                  odutil::Table::Pct(set.Mean("goal_met"), 0),
                  odutil::Table::MeanStd(set.summary.mean, set.summary.stddev, 1),
                  odutil::Table::MeanStd(adaptations.mean, adaptations.stddev,
                                         1)});
  }
  table.Print();
  std::printf(
      "The deployment-grade monitor meets the same goals.  Its readings are\n"
      "nearly unbiased, so it runs a deliberate 4%% residual safety margin\n"
      "(the multimeter needs none: its periodic sampling happens to\n"
      "over-estimate consumption slightly, a hidden margin).  Residues run\n"
      "lower and adaptations higher, but the paper's claim stands:\n"
      "SmartBattery-class hardware suffices for goal-directed adaptation at\n"
      "< 14 mW overhead.\n");
  return 0;
}
