// Regenerates Figure 18: projected energy impact of zoned backlighting for
// the video and map applications, normalized to their baselines, for
// no-zoning, 4-zone, and 8-zone displays at full and lowest fidelity.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"

using namespace odapps;

ODBENCH_EXPERIMENT(fig18_zoned,
                   "Figure 18: projected energy impact of zoned backlighting "
                   "(video and map)") {
  odutil::Table table(
      "Figure 18: Energy impact of zoned backlighting (normalized to each "
      "application's baseline)");
  table.SetHeader({"App", "Think (s)", "HW-PM no zones", "HW-PM 4 zones",
                   "HW-PM 8 zones", "Lowest no zones", "Lowest 4 zones",
                   "Lowest 8 zones"});

  {
    const VideoClip& clip = StandardVideoClips()[0];
    double base =
        RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, false, 9000).joules;
    auto at = [&](VideoTrack track, double window, int zones) {
      auto m = RunZonedVideoExperiment(clip, track, window, zones, 9000);
      double ratio = m.joules / base;
      char label[64];
      std::snprintf(label, sizeof(label), "Video/%s/zones%d",
                    track == VideoTrack::kBaseline ? "full" : "lowest", zones);
      ctx.Record(label, 9000, odharness::TrialSample{ratio});
      return ratio;
    };
    table.AddRow({"Video", "N/A",
                  odutil::Table::Num(at(VideoTrack::kBaseline, 1.0, 0), 2),
                  odutil::Table::Num(at(VideoTrack::kBaseline, 1.0, 4), 2),
                  odutil::Table::Num(at(VideoTrack::kBaseline, 1.0, 8), 2),
                  odutil::Table::Num(at(VideoTrack::kPremiereC, 0.5, 0), 2),
                  odutil::Table::Num(at(VideoTrack::kPremiereC, 0.5, 4), 2),
                  odutil::Table::Num(at(VideoTrack::kPremiereC, 0.5, 8), 2)});
  }

  const MapObject& map = StandardMaps()[0];
  for (double think : {0.0, 5.0, 10.0, 20.0}) {
    double base =
        RunMapExperiment(map, MapFidelity::kFull, think, false, 9100).joules;
    auto at = [&](MapFidelity fidelity, int zones) {
      auto m = RunZonedMapExperiment(map, fidelity, think, zones, 9100);
      double ratio = m.joules / base;
      char label[64];
      std::snprintf(label, sizeof(label), "Map/think%.0f/%s/zones%d", think,
                    fidelity == MapFidelity::kFull ? "full" : "lowest", zones);
      ctx.Record(label, 9100, odharness::TrialSample{ratio});
      return ratio;
    };
    table.AddRow({"Map", odutil::Table::Num(think, 0),
                  odutil::Table::Num(at(MapFidelity::kFull, 0), 2),
                  odutil::Table::Num(at(MapFidelity::kFull, 4), 2),
                  odutil::Table::Num(at(MapFidelity::kFull, 8), 2),
                  odutil::Table::Num(at(MapFidelity::kCroppedSecondary, 0), 2),
                  odutil::Table::Num(at(MapFidelity::kCroppedSecondary, 4), 2),
                  odutil::Table::Num(at(MapFidelity::kCroppedSecondary, 8), 2)});
  }
  table.Print();

  std::printf(
      "Paper: video saves 17-18%% at full fidelity (one of four zones lit, or\n"
      "two of eight — same lit area), 24%% / 28-29%% at lowest fidelity; the\n"
      "full map shows no 4-zone benefit (all zones lit) and 7-8%% with eight\n"
      "zones; lowering fidelity enhances zoned savings (cropped maps span two\n"
      "of four / three of eight zones).  Savings rise with think time.\n");
  return 0;
}
