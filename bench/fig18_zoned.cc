// Regenerates Figure 18: projected energy impact of zoned backlighting for
// the video and map applications, normalized to their baselines, for
// no-zoning, 4-zone, and 8-zone displays at full and lowest fidelity.
//
// Two sweep phases: the five normalization baselines run first (in
// parallel), then all thirty zoned cells divide by their row's baseline —
// every cell independent, so the grid parallelizes under --jobs with
// output identical to serial.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"
#include "src/harness/sweep_runner.h"

using namespace odapps;

ODBENCH_EXPERIMENT(fig18_zoned,
                   "Figure 18: projected energy impact of zoned backlighting "
                   "(video and map)") {
  odutil::Table table(
      "Figure 18: Energy impact of zoned backlighting (normalized to each "
      "application's baseline)");
  table.SetHeader({"App", "Think (s)", "HW-PM no zones", "HW-PM 4 zones",
                   "HW-PM 8 zones", "Lowest no zones", "Lowest 4 zones",
                   "Lowest 8 zones"});

  odharness::Sweep sweep(ctx);
  const VideoClip& clip = StandardVideoClips()[0];
  const MapObject& map = StandardMaps()[0];
  const double thinks[] = {0.0, 5.0, 10.0, 20.0};

  // Phase 1: each row's baseline energy.
  size_t video_base = sweep.AddHidden([&clip] {
    return odharness::TrialSample{
        RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, false, 9000).joules};
  });
  size_t map_base[4];
  for (size_t t = 0; t < 4; ++t) {
    const double think = thinks[t];
    map_base[t] = sweep.AddHidden([&map, think] {
      return odharness::TrialSample{
          RunMapExperiment(map, MapFidelity::kFull, think, false, 9100).joules};
    });
  }
  sweep.Run();

  // Phase 2: the zoned grid, each cell normalized by its baseline.
  struct VideoCase {
    VideoTrack track;
    double window;
    int zones;
  };
  std::vector<size_t> video_cells;
  for (const VideoCase& c :
       {VideoCase{VideoTrack::kBaseline, 1.0, 0},
        VideoCase{VideoTrack::kBaseline, 1.0, 4},
        VideoCase{VideoTrack::kBaseline, 1.0, 8},
        VideoCase{VideoTrack::kPremiereC, 0.5, 0},
        VideoCase{VideoTrack::kPremiereC, 0.5, 4},
        VideoCase{VideoTrack::kPremiereC, 0.5, 8}}) {
    double base = sweep.Value(video_base);
    char label[64];
    std::snprintf(label, sizeof(label), "Video/%s/zones%d",
                  c.track == VideoTrack::kBaseline ? "full" : "lowest",
                  c.zones);
    video_cells.push_back(sweep.Add(label, 9000, [&clip, c, base] {
      auto m = RunZonedVideoExperiment(clip, c.track, c.window, c.zones, 9000);
      return odharness::TrialSample{m.joules / base};
    }));
  }
  size_t map_cells[4][6];
  for (size_t t = 0; t < 4; ++t) {
    const double think = thinks[t];
    const double base = sweep.Value(map_base[t]);
    int cell = 0;
    for (MapFidelity fidelity :
         {MapFidelity::kFull, MapFidelity::kCroppedSecondary}) {
      for (int zones : {0, 4, 8}) {
        char label[64];
        std::snprintf(label, sizeof(label), "Map/think%.0f/%s/zones%d", think,
                      fidelity == MapFidelity::kFull ? "full" : "lowest",
                      zones);
        map_cells[t][cell++] =
            sweep.Add(label, 9100, [&map, fidelity, think, zones, base] {
              auto m = RunZonedMapExperiment(map, fidelity, think, zones, 9100);
              return odharness::TrialSample{m.joules / base};
            });
      }
    }
  }
  sweep.Run();

  table.AddRow({"Video", "N/A",
                odutil::Table::Num(sweep.Value(video_cells[0]), 2),
                odutil::Table::Num(sweep.Value(video_cells[1]), 2),
                odutil::Table::Num(sweep.Value(video_cells[2]), 2),
                odutil::Table::Num(sweep.Value(video_cells[3]), 2),
                odutil::Table::Num(sweep.Value(video_cells[4]), 2),
                odutil::Table::Num(sweep.Value(video_cells[5]), 2)});
  for (size_t t = 0; t < 4; ++t) {
    table.AddRow({"Map", odutil::Table::Num(thinks[t], 0),
                  odutil::Table::Num(sweep.Value(map_cells[t][0]), 2),
                  odutil::Table::Num(sweep.Value(map_cells[t][1]), 2),
                  odutil::Table::Num(sweep.Value(map_cells[t][2]), 2),
                  odutil::Table::Num(sweep.Value(map_cells[t][3]), 2),
                  odutil::Table::Num(sweep.Value(map_cells[t][4]), 2),
                  odutil::Table::Num(sweep.Value(map_cells[t][5]), 2)});
  }
  table.Print();

  std::printf(
      "Paper: video saves 17-18%% at full fidelity (one of four zones lit, or\n"
      "two of eight — same lit area), 24%% / 28-29%% at lowest fidelity; the\n"
      "full map shows no 4-zone benefit (all zones lit) and 7-8%% with eight\n"
      "zones; lowering fidelity enhances zoned savings (cropped maps span two\n"
      "of four / three of eight zones).  Savings rise with think time.\n");
  return 0;
}
