// Development aid: prints the key normalized ratios the paper reports so
// that calibration constants can be tuned quickly.  Not a figure bench.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"

using namespace odapps;

ODBENCH_EXPERIMENT(calibrate,
                   "Development aid: key normalized ratios vs the paper's "
                   "targets, for tuning calibration constants") {
  // Video 1, six bars.
  const VideoClip& clip = StandardVideoClips()[0];
  auto v_base = RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, false, 1);
  auto v_pm = RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, true, 1);
  auto v_b = RunVideoExperiment(clip, VideoTrack::kPremiereB, 1.0, true, 1);
  auto v_c = RunVideoExperiment(clip, VideoTrack::kPremiereC, 1.0, true, 1);
  auto v_w = RunVideoExperiment(clip, VideoTrack::kBaseline, 0.5, true, 1);
  auto v_cw = RunVideoExperiment(clip, VideoTrack::kPremiereC, 0.5, true, 1);
  ctx.Note("video_pm_over_base", v_pm.joules / v_base.joules);
  ctx.Note("video_comb_over_pm", v_cw.joules / v_pm.joules);
  std::printf("VIDEO  base=%.0fJ (%.2fW)  pm/base=%.3f (want .90-.91)\n",
              v_base.joules, v_base.average_watts(), v_pm.joules / v_base.joules);
  std::printf("  premB/pm=%.3f (want ~.91)  premC/pm=%.3f (want .83-.84)\n",
              v_b.joules / v_pm.joules, v_c.joules / v_pm.joules);
  std::printf("  window/pm=%.3f (want .80-.81)  comb/pm=%.3f (want .70-.72) comb/base=%.3f (~.65)\n",
              v_w.joules / v_pm.joules, v_cw.joules / v_pm.joules,
              v_cw.joules / v_base.joules);

  // Speech, utterance 3.
  const Utterance& utt = StandardUtterances()[2];
  auto s_base = RunSpeechExperiment(utt, SpeechMode::kLocal, false, false, 1);
  auto s_pm = RunSpeechExperiment(utt, SpeechMode::kLocal, false, true, 1);
  auto s_red = RunSpeechExperiment(utt, SpeechMode::kLocal, true, true, 1);
  auto s_rem = RunSpeechExperiment(utt, SpeechMode::kRemote, false, true, 1);
  auto s_remr = RunSpeechExperiment(utt, SpeechMode::kRemote, true, true, 1);
  auto s_hyb = RunSpeechExperiment(utt, SpeechMode::kHybrid, false, true, 1);
  auto s_hybr = RunSpeechExperiment(utt, SpeechMode::kHybrid, true, true, 1);
  ctx.Note("speech_pm_over_base", s_pm.joules / s_base.joules);
  ctx.Note("speech_hybred_over_base", s_hybr.joules / s_base.joules);
  std::printf("SPEECH base=%.1fJ (%.2fW)  pm/base=%.3f (want .66-.67)\n",
              s_base.joules, s_base.average_watts(), s_pm.joules / s_base.joules);
  std::printf("  red/pm=%.3f (want .54-.75)  rem/pm=%.3f (want .56-.67)  remred/pm=%.3f (want .35-.58)\n",
              s_red.joules / s_pm.joules, s_rem.joules / s_pm.joules,
              s_remr.joules / s_pm.joules);
  std::printf("  hyb/pm=%.3f (want .45-.53)  hybred/pm=%.3f (want .30-.47)  hybred/base=%.3f (want .20-.31)\n",
              s_hyb.joules / s_pm.joules, s_hybr.joules / s_pm.joules,
              s_hybr.joules / s_base.joules);

  // Map, San Jose, think 5.
  const MapObject& map = StandardMaps()[0];
  auto m_base = RunMapExperiment(map, MapFidelity::kFull, 5, false, 1);
  auto m_pm = RunMapExperiment(map, MapFidelity::kFull, 5, true, 1);
  auto m_min = RunMapExperiment(map, MapFidelity::kMinorFilter, 5, true, 1);
  auto m_sec = RunMapExperiment(map, MapFidelity::kSecondaryFilter, 5, true, 1);
  auto m_crop = RunMapExperiment(map, MapFidelity::kCropped, 5, true, 1);
  auto m_cs = RunMapExperiment(map, MapFidelity::kCroppedSecondary, 5, true, 1);
  ctx.Note("map_pm_over_base", m_pm.joules / m_base.joules);
  ctx.Note("map_cs_over_pm", m_cs.joules / m_pm.joules);
  std::printf("MAP    base=%.1fJ (%.2fW)  pm/base=%.3f (want .81-.91)\n",
              m_base.joules, m_base.average_watts(), m_pm.joules / m_base.joules);
  std::printf("  minor/pm=%.3f (want .49-.94)  sec/pm=%.3f (want .45-.77)  crop/pm=%.3f (want .51-.86)  cs/pm=%.3f (want .34-.64)\n",
              m_min.joules / m_pm.joules, m_sec.joules / m_pm.joules,
              m_crop.joules / m_pm.joules, m_cs.joules / m_pm.joules);

  // Web, image 1, think 5.
  const WebImage& img = StandardWebImages()[0];
  auto w_base = RunWebExperiment(img, WebFidelity::kOriginal, 5, false, 1);
  auto w_pm = RunWebExperiment(img, WebFidelity::kOriginal, 5, true, 1);
  auto w_75 = RunWebExperiment(img, WebFidelity::kJpeg75, 5, true, 1);
  auto w_5 = RunWebExperiment(img, WebFidelity::kJpeg5, 5, true, 1);
  ctx.Note("web_pm_over_base", w_pm.joules / w_base.joules);
  ctx.Note("web_jpeg5_over_pm", w_5.joules / w_pm.joules);
  std::printf("WEB    base=%.1fJ (%.2fW)  pm/base=%.3f (want .74-.78)\n",
              w_base.joules, w_base.average_watts(), w_pm.joules / w_base.joules);
  std::printf("  jpeg75/pm=%.3f  jpeg5/pm=%.3f (want .86-.96)\n",
              w_75.joules / w_pm.joules, w_5.joules / w_pm.joules);

  // Concurrency.
  auto c_alone = RunCompositeExperiment(6, false, false, false, 1);
  auto c_video = RunCompositeExperiment(6, false, false, true, 1);
  auto cp_alone = RunCompositeExperiment(6, false, true, false, 1);
  auto cp_video = RunCompositeExperiment(6, false, true, true, 1);
  auto cl_alone = RunCompositeExperiment(6, true, true, false, 1);
  auto cl_video = RunCompositeExperiment(6, true, true, true, 1);
  ctx.Note("concurrency_lowcomb_over_pm", cl_video.joules / cp_video.joules);
  std::printf("CONC   base alone=%.0fJ dur=%.0fs, +video=%.0fJ dur=%.0fs (+%.0f%%, want ~+53%%)\n",
              c_alone.joules, c_alone.seconds, c_video.joules, c_video.seconds,
              100.0 * (c_video.joules / c_alone.joules - 1.0));
  std::printf("  pm alone=%.0fJ +video=%.0fJ (+%.0f%%, want ~+64%%)\n",
              cp_alone.joules, cp_video.joules,
              100.0 * (cp_video.joules / cp_alone.joules - 1.0));
  std::printf("  low alone=%.0fJ dur=%.0fs +video=%.0fJ dur=%.0fs (+%.0f%%, want ~+18%%)  lowcomb/pm(video) ratio=%.2f (want ~.65)\n",
              cl_alone.joules, cl_alone.seconds, cl_video.joules, cl_video.seconds,
              100.0 * (cl_video.joules / cl_alone.joules - 1.0),
              cl_video.joules / cp_video.joules);

  // Zoned.
  auto zv0 = RunZonedVideoExperiment(clip, VideoTrack::kBaseline, 1.0, 0, 1);
  auto zv4 = RunZonedVideoExperiment(clip, VideoTrack::kBaseline, 1.0, 4, 1);
  auto zv8 = RunZonedVideoExperiment(clip, VideoTrack::kBaseline, 1.0, 8, 1);
  auto zv4l = RunZonedVideoExperiment(clip, VideoTrack::kPremiereC, 0.5, 4, 1);
  auto zv8l = RunZonedVideoExperiment(clip, VideoTrack::kPremiereC, 0.5, 8, 1);
  auto zv0l = RunZonedVideoExperiment(clip, VideoTrack::kPremiereC, 0.5, 0, 1);
  std::printf("ZONED-V 4/none=%.3f 8/none=%.3f (want .82-.83)  low4/low=%.3f (want ~.76) low8/low=%.3f (want ~.71)\n",
              zv4.joules / zv0.joules, zv8.joules / zv0.joules,
              zv4l.joules / zv0l.joules, zv8l.joules / zv0l.joules);
  auto zm0 = RunZonedMapExperiment(map, MapFidelity::kFull, 5, 0, 1);
  auto zm4 = RunZonedMapExperiment(map, MapFidelity::kFull, 5, 4, 1);
  auto zm8 = RunZonedMapExperiment(map, MapFidelity::kFull, 5, 8, 1);
  auto zm0l = RunZonedMapExperiment(map, MapFidelity::kCroppedSecondary, 5, 0, 1);
  auto zm4l = RunZonedMapExperiment(map, MapFidelity::kCroppedSecondary, 5, 4, 1);
  auto zm8l = RunZonedMapExperiment(map, MapFidelity::kCroppedSecondary, 5, 8, 1);
  std::printf("ZONED-M 4/none=%.3f (want 1.00) 8/none=%.3f (want ~.92)  low4/low=%.3f (want ~.76) low8/low=%.3f (want ~.71-.72)\n",
              zm4.joules / zm0.joules, zm8.joules / zm0.joules,
              zm4l.joules / zm0l.joules, zm8l.joules / zm0l.joules);
  return 0;
}
