// Regenerates Figure 6: energy to display four videos at six fidelity
// configurations, with per-software-component shading.  Each value is the
// mean of five trials with a 90% confidence interval; per-process columns
// are cross-trial means as well.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/apps/calibration.h"
#include "src/apps/experiments.h"
#include "src/trace/trace_artifact.h"

using odapps::RunVideoExperiment;
using odapps::StandardVideoClips;
using odapps::VideoTrack;

namespace {

struct Bar {
  const char* label;
  VideoTrack track;
  double window;
  bool hw_pm;
};

constexpr Bar kBars[] = {
    {"Baseline", VideoTrack::kBaseline, 1.0, false},
    {"Hardware-Only Power Mgmt.", VideoTrack::kBaseline, 1.0, true},
    {"Premiere-B", VideoTrack::kPremiereB, 1.0, true},
    {"Premiere-C", VideoTrack::kPremiereC, 1.0, true},
    {"Reduced Window", VideoTrack::kBaseline,
     odapps::kVideoCal.reduced_window_scale, true},
    {"Combined", VideoTrack::kPremiereC,
     odapps::kVideoCal.reduced_window_scale, true},
};

}  // namespace

ODBENCH_EXPERIMENT(fig06_video,
                   "Figure 6: energy impact of fidelity for video playing "
                   "(6 bars x 4 clips)") {
  odutil::Table table(
      "Figure 6: Energy impact of fidelity for video playing (Joules; mean of 5 "
      "trials ±90% CI)");
  table.SetHeader({"Video", "Configuration", "Energy (J)", "Idle", "xanim",
                   "X Server", "Odyssey", "WaveLAN intr", "vs Baseline",
                   "vs HW-only"});

  for (const odapps::VideoClip& clip : StandardVideoClips()) {
    double baseline_mean = 0.0;
    double hw_mean = 0.0;
    for (const Bar& bar : kBars) {
      odharness::TrialSet set = ctx.RunTrials(
          std::string(clip.name) + "/" + bar.label, 5, 1000,
          [&](uint64_t seed) {
            return odbench::EnergySample(RunVideoExperiment(
                clip, bar.track, bar.window, bar.hw_pm, seed));
          });
      if (bar.track == VideoTrack::kBaseline && bar.window == 1.0) {
        if (!bar.hw_pm) {
          baseline_mean = set.summary.mean;
        } else {
          hw_mean = set.summary.mean;
        }
      }
      table.AddRow({clip.name, bar.label, odbench::MeanCi(set.summary, 0),
                    odutil::Table::Num(set.Mean("Idle"), 0),
                    odutil::Table::Num(set.Mean("xanim"), 0),
                    odutil::Table::Num(set.Mean("X Server"), 0),
                    odutil::Table::Num(set.Mean("Odyssey"), 0),
                    odutil::Table::Num(set.Mean("Interrupts-WaveLAN"), 0),
                    odutil::Table::Num(set.summary.mean / baseline_mean, 3),
                    hw_mean > 0.0
                        ? odutil::Table::Num(set.summary.mean / hw_mean, 3)
                        : std::string("-")});
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "Paper: HW-only PM saves 9-10%%; Premiere-C 16-17%%, reduced window\n"
      "19-20%%, combined 28-30%% below HW-only (~35%% below baseline).\n");

  if (ctx.trace_enabled()) {
    // Power-profile signatures: deterministic single-trial re-runs of the
    // two extreme bars on the first clip, at the base seed.  Every trial is
    // an independent TestBed at a fixed seed, so the traced re-run is
    // bit-identical to trial 0 of the scalar sets above.
    const uint64_t seed = ctx.options().seed > 0 ? ctx.options().seed : 1000;
    const odapps::VideoClip& clip = StandardVideoClips()[0];
    odtrace::TraceArtifact traces;
    for (const Bar& bar : {kBars[0], kBars[5]}) {
      odapps::TestBed::Measurement m =
          RunVideoExperiment(clip, bar.track, bar.window, bar.hw_pm, seed,
                             /*trace=*/true);
      traces.Add(std::string(clip.name) + "/" + bar.label, seed, *m.trace);
    }
    odtrace::AttachTraceArtifact(ctx, std::move(traces));
  }
  return 0;
}
