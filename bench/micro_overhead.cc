// Micro-benchmarks of the adaptation machinery (Section 5.1.4).
//
// The paper measures its prediction overhead at 4 mW on a 233 MHz Pentium
// and projects under 14 mW total with a SmartBattery-based monitor.  These
// google-benchmark measurements show the per-operation CPU cost of our
// implementation's hot paths: the exponential smoother, demand predictor,
// hysteresis decision, multimeter sample, and event-queue operations.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/energy/hysteresis.h"
#include "src/energy/predictor.h"
#include "src/energy/smoothing.h"
#include "src/power/thinkpad560x.h"
#include "src/powerscope/multimeter.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace {

void BM_SmootherUpdate(benchmark::State& state) {
  odenergy::ExponentialSmoother smoother;
  smoother.set_half_life(120.0);
  double x = 10.0;
  for (auto _ : state) {
    smoother.Update(x, 0.1);
    benchmark::DoNotOptimize(smoother.value());
    x += 0.001;
  }
}
BENCHMARK(BM_SmootherUpdate);

void BM_PredictorSample(benchmark::State& state) {
  odenergy::DemandPredictor predictor(0.10);
  double remaining = 1200.0;
  for (auto _ : state) {
    predictor.AddSample(10.0, 0.1, remaining);
    benchmark::DoNotOptimize(predictor.PredictedDemandJoules(remaining));
    remaining -= 0.1;
    if (remaining < 1.0) {
      remaining = 1200.0;
    }
  }
}
BENCHMARK(BM_PredictorSample);

void BM_HysteresisDecide(benchmark::State& state) {
  odenergy::HysteresisPolicy policy;
  double demand = 9000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy.Decide(demand, 10000.0, 13500.0, odsim::SimTime::Seconds(1)));
    demand += 1.0;
    if (demand > 11000.0) {
      demand = 9000.0;
    }
  }
}
BENCHMARK(BM_HysteresisDecide);

void BM_MachineTotalPower(benchmark::State& state) {
  odsim::Simulator sim;
  auto laptop = odpower::MakeThinkPad560X(&sim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(laptop->machine().TotalPower());
  }
}
BENCHMARK(BM_MachineTotalPower);

void BM_EventQueuePushPop(benchmark::State& state) {
  odsim::EventQueue queue;
  int64_t t = 0;
  for (auto _ : state) {
    queue.Push(odsim::SimTime::Micros(t++), [] {});
    if (queue.size_for_testing() > 64) {
      while (!queue.empty()) {
        queue.Pop();
      }
    }
  }
}
BENCHMARK(BM_EventQueuePushPop);

void BM_RngNormal(benchmark::State& state) {
  odutil::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Normal(10.0, 0.02));
  }
}
BENCHMARK(BM_RngNormal);

void BM_SimulatedSecondOfOnlineMonitoring(benchmark::State& state) {
  // Full cost of one simulated second of Section 5 monitoring: ten 100 ms
  // power samples plus two supply/demand evaluations.
  for (auto _ : state) {
    state.PauseTiming();
    odsim::Simulator sim;
    auto laptop = odpower::MakeThinkPad560X(&sim);
    odenergy::DemandPredictor predictor(0.10);
    odenergy::HysteresisPolicy policy;
    state.ResumeTiming();
    for (int i = 0; i < 10; ++i) {
      double watts = laptop->machine().TotalPower();
      predictor.AddSample(watts, 0.1, 1200.0);
    }
    for (int i = 0; i < 2; ++i) {
      benchmark::DoNotOptimize(policy.Decide(
          predictor.PredictedDemandJoules(1200.0), 13000.0, 13500.0,
          odsim::SimTime::Seconds(1)));
    }
  }
}
BENCHMARK(BM_SimulatedSecondOfOnlineMonitoring);

}  // namespace

ODBENCH_EXPERIMENT_COST(micro_overhead,
                        "Micro-benchmarks of the adaptation machinery hot "
                        "paths (google-benchmark)",
                        6700) {
  int argc = 1;
  char arg0[] = "micro_overhead";
  char* argv[] = {arg0, nullptr};
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
