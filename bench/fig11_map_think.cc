// Regenerates Figure 11: energy to view the San Jose map versus user think
// time (0, 5, 10, 20 s) for three policies, with the linear model
// E_t = E_0 + t * P_B fitted to each.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"
#include "src/util/stats.h"

using odapps::MapFidelity;
using odapps::RunMapExperiment;
using odapps::StandardMaps;

ODBENCH_EXPERIMENT(fig11_map_think,
                   "Figure 11: effect of user think time for map viewing "
                   "(San Jose, linear fits)") {
  const odapps::MapObject& map = StandardMaps()[0];  // San Jose.
  const double thinks[] = {0.0, 5.0, 10.0, 20.0};
  struct Policy {
    const char* label;
    MapFidelity fidelity;
    bool hw_pm;
  };
  const Policy policies[] = {
      {"Baseline", MapFidelity::kFull, false},
      {"Hardware-Only Power Mgmt.", MapFidelity::kFull, true},
      {"Lowest Fidelity", MapFidelity::kCroppedSecondary, true},
  };

  odutil::Table table(
      "Figure 11: Effect of user think time for map viewing (San Jose; Joules; "
      "mean of 10 trials ±90% CI)");
  table.SetHeader({"Policy", "Think 0 s", "Think 5 s", "Think 10 s", "Think 20 s",
                   "Fit E0 (J)", "Fit slope (W)", "R^2"});

  for (const Policy& policy : policies) {
    std::vector<std::string> row = {policy.label};
    std::vector<double> xs, ys;
    for (double think : thinks) {
      odharness::TrialSet set = ctx.RunTrials(
          std::string(policy.label) + "/think" +
              odutil::Table::Num(think, 0),
          10, 4000, [&](uint64_t seed) {
            return odbench::EnergySample(
                RunMapExperiment(map, policy.fidelity, think, policy.hw_pm,
                                 seed));
          });
      row.push_back(odbench::MeanCi(set.summary, 1));
      xs.push_back(think);
      ys.push_back(set.summary.mean);
    }
    odutil::LinearFit fit = odutil::FitLine(xs, ys);
    row.push_back(odutil::Table::Num(fit.intercept, 1));
    row.push_back(odutil::Table::Num(fit.slope, 2));
    row.push_back(odutil::Table::Num(fit.r_squared, 4));
    ctx.Note(std::string(policy.label) + " fit slope (W)", fit.slope);
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "Paper: a linear model fits all three cases; the baseline line diverges\n"
      "from the managed lines (idle network/disk during think time), while the\n"
      "HW-only and lowest-fidelity lines are parallel (fidelity reduction is a\n"
      "constant offset, independent of think time).  The paper's managed slope\n"
      "is its 5.6 W background; ours is the bright-display resting power, since\n"
      "the user is reading the map.\n");
  return 0;
}
