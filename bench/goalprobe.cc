// Development aid: probes goal-directed dynamics.
#include <cstdio>
#include "src/apps/goal_scenario.h"
using namespace odapps;
int main() {
  double full = MeasurePinnedLifetime(13500, false, 1);
  double low = MeasurePinnedLifetime(13500, true, 1);
  std::printf("pinned lifetime: full=%.0fs (%.1f min, %.2fW) low=%.0fs (%.1f min, %.2fW)\n",
              full, full / 60, 13500 / full, low, low / 60, 13500 / low);
  for (double goal_s : {1200.0, 1320.0, 1440.0, 1560.0}) {
    GoalScenarioOptions opt;
    opt.goal = odsim::SimDuration::Seconds(goal_s);
    GoalScenarioResult r = RunGoalScenario(opt);
    std::printf("goal=%4.0fs met=%d residual=%.0fJ elapsed=%.0fs adapts: S=%d V=%d M=%d W=%d final: S=%d V=%d M=%d W=%d\n",
                goal_s, r.goal_met, r.residual_joules, r.elapsed_seconds,
                r.adaptations["Speech"], r.adaptations["Video"], r.adaptations["Map"],
                r.adaptations["Web"], r.final_fidelity["Speech"], r.final_fidelity["Video"],
                r.final_fidelity["Map"], r.final_fidelity["Web"]);
  }
  return 0;
}
