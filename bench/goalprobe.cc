// Development aid: probes goal-directed dynamics.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"

using namespace odapps;

ODBENCH_EXPERIMENT_COST(goalprobe,
                        "Development aid: pinned lifetimes and goal-directed "
                        "dynamics across the Figure 20 goals",
                        70) {
  odfault::FaultPlan plan = odbench::PlanFromContext(ctx);
  if (!plan.empty()) {
    std::printf("disturbance plan: %s\n", plan.ToString().c_str());
  }
  double full = MeasurePinnedLifetime(13500, false, 1, plan);
  double low = MeasurePinnedLifetime(13500, true, 1, plan);
  ctx.Note("pinned_lifetime_full_seconds", full);
  ctx.Note("pinned_lifetime_lowest_seconds", low);
  std::printf("pinned lifetime: full=%.0fs (%.1f min, %.2fW) low=%.0fs (%.1f min, %.2fW)\n",
              full, full / 60, 13500 / full, low, low / 60, 13500 / low);
  for (double goal_s : {1200.0, 1320.0, 1440.0, 1560.0}) {
    GoalScenarioOptions opt;
    opt.goal = odsim::SimDuration::Seconds(goal_s);
    opt.fault_plan = plan;
    GoalScenarioResult r = RunGoalScenario(opt);
    odharness::TrialSample sample;
    sample.value = r.residual_joules;
    sample.breakdown["goal_met"] = r.goal_met ? 1.0 : 0.0;
    for (const auto& [app, count] : r.adaptations) {
      sample.breakdown["adaptations_" + app] = count;
    }
    for (const auto& [app, level] : r.final_fidelity) {
      sample.breakdown["final_" + app] = level;
    }
    ctx.Record("goal_" + odutil::Table::Num(goal_s, 0), opt.seed,
               std::move(sample));
    std::printf("goal=%4.0fs met=%d residual=%.0fJ elapsed=%.0fs adapts: S=%d V=%d M=%d W=%d final: S=%d V=%d M=%d W=%d\n",
                goal_s, r.goal_met, r.residual_joules, r.elapsed_seconds,
                r.adaptations["Speech"], r.adaptations["Video"], r.adaptations["Map"],
                r.adaptations["Web"], r.final_fidelity["Speech"], r.final_fidelity["Video"],
                r.final_fidelity["Map"], r.final_fidelity["Web"]);
  }
  return 0;
}
