// Ablation of the hysteresis design (Section 5.1.3): what each element of
// the adaptation strategy buys.  Removing the variable margin, the constant
// margin, the 15-second upgrade cap, or the degrade spacing each trades
// stability (adaptation count) against residue and goal attainment.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace odapps;

namespace {

struct Variant {
  const char* label;
  odenergy::GoalDirectorConfig config;
};

}  // namespace

ODBENCH_EXPERIMENT(ablate_hysteresis,
                   "Ablation: what each element of the hysteresis strategy "
                   "buys (Section 5.1.3)") {
  odenergy::GoalDirectorConfig standard;

  odenergy::GoalDirectorConfig no_variable = standard;
  no_variable.hysteresis.variable_fraction = 0.0;

  odenergy::GoalDirectorConfig no_constant = standard;
  no_constant.hysteresis.constant_fraction = 0.0;

  odenergy::GoalDirectorConfig no_upgrade_cap = standard;
  no_upgrade_cap.hysteresis.upgrade_interval = odsim::SimDuration::Millis(500);

  odenergy::GoalDirectorConfig no_degrade_spacing = standard;
  no_degrade_spacing.degrade_interval = odsim::SimDuration::Millis(500);

  odenergy::GoalDirectorConfig no_hysteresis = standard;
  no_hysteresis.hysteresis.variable_fraction = 0.0;
  no_hysteresis.hysteresis.constant_fraction = 0.0;
  no_hysteresis.hysteresis.upgrade_interval = odsim::SimDuration::Millis(500);
  no_hysteresis.degrade_interval = odsim::SimDuration::Millis(500);

  const Variant variants[] = {
      {"Standard (5% var + 1% const + 15 s cap)", standard},
      {"No variable margin", no_variable},
      {"No constant margin", no_constant},
      {"No upgrade rate cap", no_upgrade_cap},
      {"No degrade spacing", no_degrade_spacing},
      {"No hysteresis at all", no_hysteresis},
  };

  odutil::Table table(
      "Ablation: hysteresis strategy (1320 s goal, 13,500 J; 5 trials; "
      "mean (stddev))");
  table.SetHeader({"Variant", "Goal Met", "Residual (J)", "Adaptations"});

  for (const Variant& variant : variants) {
    odharness::TrialSet set =
        ctx.RunTrials(variant.label, 5, 30000, [&](uint64_t seed) {
          GoalScenarioOptions options;
          options.goal = odsim::SimDuration::Seconds(1320);
          options.director = variant.config;
          options.seed = seed;
          GoalScenarioResult result = RunGoalScenario(options);
          odharness::TrialSample sample;
          sample.value = result.residual_joules;
          sample.breakdown["goal_met"] = result.goal_met ? 1.0 : 0.0;
          sample.breakdown["adaptations"] = result.total_adaptations;
          return sample;
        });
    const odutil::Summary& adaptations =
        set.breakdown_summaries.at("adaptations");
    table.AddRow({variant.label, odutil::Table::Pct(set.Mean("goal_met"), 0),
                  odutil::Table::MeanStd(set.summary.mean, set.summary.stddev, 1),
                  odutil::Table::MeanStd(adaptations.mean, adaptations.stddev,
                                         1)});
  }
  table.Print();
  std::printf(
      "Expected shape: dropping margins or caps meets the goal but jars the\n"
      "user with many more adaptations; the standard configuration balances\n"
      "residue against stability.\n");
  return 0;
}
