// Goal-directed adaptation under the scenario library: every named
// user-behavior scenario (src/scenario/library.h) replayed through the
// goal director with the run-level invariants checked inline.  Where the
// fault sweep varies the *environment* under a fixed workload, this sweep
// varies the *behavior* — bursty interaction, commuter connectivity (the
// scenario's coverage gaps arrive as matched fault windows), background
// sync, mixed multi-app days — and the measured claim is that the
// controller stays physical and live under all of them:
//
//   * energy conservation: accounted total equals the sum of component
//     energies plus synergy, at every 1 Hz probe tick;
//   * monotone drain: the true residual never increases;
//   * termination: every scenario decides its outcome before the overrun
//     safety valve;
//   * controller health: the director never ends wedged in safe mode;
//   * bounded estimate error: the director's residual estimate stays
//     within a few percent of ground truth.
//
// With --scenario NAME the sweep runs just that scenario — the repro
// spelling for a single-rung regression.  The canonical scenario text is
// stamped into artifact provenance.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"
#include "src/harness/sweep_runner.h"
#include "src/scenario/driver.h"
#include "src/scenario/library.h"
#include "src/util/check.h"
#include "src/util/table.h"

using namespace odapps;

namespace {

// The supply each scenario starts with: a per-second allowance just under
// the full-fidelity draw of the busy scenarios, so the mixed days force
// adaptation while the idle-heavy ones coast.  The goal is the scenario's
// own duration — "make this battery last the whole commute".
constexpr double kBudgetWattsAllowance = 9.5;

}  // namespace

ODBENCH_EXPERIMENT_COST(scenario_sweep,
                        "Goal attainment across the named user-behavior "
                        "scenarios, with run-level invariant checks",
                        400) {
  std::vector<odscenario::Scenario> scenarios = odscenario::ScenarioLibrary();
  if (!ctx.options().scenario.empty()) {
    const odscenario::Scenario* found =
        odscenario::FindScenario(ctx.options().scenario);
    OD_CHECK_MSG(found != nullptr, "unknown scenario");
    scenarios = {*found};
  }

  // The behavior(s) this artifact replayed, in canonical spelling — the
  // same round-trippable stamp fault plans get.
  std::string stamped;
  for (const odscenario::Scenario& scenario : scenarios) {
    if (!stamped.empty()) {
      stamped += " | ";
    }
    stamped += scenario.ToString();
  }
  ctx.artifact().provenance.scenario = stamped;

  odutil::Table table(
      "Goal-directed adaptation across user-behavior scenarios "
      "(9.5 W-allowance budget, goal = scenario duration; 2 trials; means)");
  table.SetHeader({"Scenario", "Goal Met", "Residual %", "Est Err %",
                   "Adapts", "Violations", "Fetches", "Pages", "Chunks"});

  odharness::Sweep sweep(ctx);
  std::vector<size_t> cells(scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const odscenario::Scenario& scenario = scenarios[i];
    cells[i] = sweep.AddTrials(scenario.name, 2, 52000, [&scenario](
                                                            uint64_t seed) {
      const double duration = scenario.Duration().seconds();
      const double initial_joules = kBudgetWattsAllowance * duration;
      GoalScenarioOptions options;
      options.seed = seed;
      options.initial_joules = initial_joules;
      options.goal = scenario.Duration();
      auto stats = std::make_shared<odscenario::ScenarioWorkloadStats>();
      odscenario::ApplyScenarioWorkload(scenario, &options, stats);

      // Inline invariant probe (1 Hz): violations are counted, not
      // asserted — the sweep fails its exit code when any run records one.
      int conservation_violations = 0;
      int monotone_violations = 0;
      int negative_power_violations = 0;
      double last_residual = initial_joules;
      options.tick_probe = [&](TestBed& bed, odpower::EnergySupply& supply) {
        odsim::SimTime now = bed.sim().Now();
        odpower::EnergyAccounting& acct = bed.laptop().accounting();
        odpower::Machine& machine = bed.laptop().machine();
        double total = acct.TotalJoules(now);
        double parts = acct.SynergyJoules(now);
        for (int c = 0; c < machine.component_count(); ++c) {
          if (machine.component(c).power() < 0.0) {
            ++negative_power_violations;
          }
          parts += acct.ComponentJoules(c, now);
        }
        if (std::abs(total - parts) > 1e-6 * std::max(1.0, total)) {
          ++conservation_violations;
        }
        double residual = supply.ResidualJoules(now);
        if (residual > last_residual + 1e-9 || residual < 0.0) {
          ++monotone_violations;
        }
        last_residual = residual;
      };

      GoalScenarioResult result = RunGoalScenario(options);

      // Termination and controller health are run-level invariants: the
      // outcome must be decided before the overrun valve, and a director
      // still wedged in safe mode after the run's recovery slack is a
      // liveness bug, not a measurement.
      const bool terminated =
          result.outcome != odenergy::GoalOutcome::kRunning &&
          result.elapsed_seconds <
              duration + options.max_overrun.seconds() - 1.0;
      const bool healthy_exit =
          result.final_health != odenergy::ControllerHealth::kSafeMode;
      const double estimate_error_pct =
          100.0 *
          std::abs(result.estimated_residual_joules - result.residual_joules) /
          initial_joules;

      odharness::TrialSample sample;
      sample.value = result.residual_joules;
      sample.breakdown["goal_met"] = result.goal_met ? 1.0 : 0.0;
      sample.breakdown["residual_pct"] =
          100.0 * result.residual_joules / initial_joules;
      sample.breakdown["residual_error_pct"] = estimate_error_pct;
      sample.breakdown["adaptations"] = result.total_adaptations;
      sample.breakdown["elapsed_seconds"] = result.elapsed_seconds;
      sample.breakdown["invariant_violations"] =
          conservation_violations + monotone_violations +
          negative_power_violations + (terminated ? 0 : 1) +
          (healthy_exit ? 0 : 1) + (estimate_error_pct <= 10.0 ? 0 : 1);
      // What the timeline actually did — the determinism witness.
      sample.breakdown["video_segments"] = stats->counters.video_segments;
      sample.breakdown["pages"] = stats->counters.pages;
      sample.breakdown["maps"] = stats->counters.maps;
      sample.breakdown["utterances"] = stats->counters.utterances;
      sample.breakdown["composite_iterations"] =
          stats->counters.composite_iterations;
      sample.breakdown["sync_fetches"] = stats->counters.sync_fetches;
      sample.breakdown["burst_starts"] = stats->counters.burst_starts;
      return sample;
    });
  }
  sweep.Run();

  int worst = 0;
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const odharness::TrialSet& set = sweep.Set(cells[i]);
    if (set.Mean("invariant_violations") > 0.0) {
      worst = 1;
    }
    table.AddRow({scenarios[i].name,
                  odutil::Table::Pct(set.Mean("goal_met"), 0),
                  odutil::Table::Num(set.Mean("residual_pct"), 1),
                  odutil::Table::Num(set.Mean("residual_error_pct"), 2),
                  odutil::Table::Num(set.Mean("adaptations"), 1),
                  odutil::Table::Num(set.Mean("invariant_violations"), 1),
                  odutil::Table::Num(set.Mean("sync_fetches"), 1),
                  odutil::Table::Num(set.Mean("pages"), 1),
                  odutil::Table::Num(set.Mean("video_segments"), 1)});
  }
  table.Print();
  std::printf(
      "Expected shape: the busy days (commuter_day, video_evening,\n"
      "office_mix) adapt to make the budget; background_sync and the\n"
      "gap-broken coffee_shop coast on their idle-dominated draw; the\n"
      "violations column is all zeros — conservation, monotone drain,\n"
      "termination, and controller health hold under every behavior\n"
      "timeline.\n");
  return worst;
}
