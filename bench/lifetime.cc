// Untethered lifetime of the Section 5 workload pinned at highest and
// lowest fidelity (the paper's "19:27 vs 27:06" framing numbers, on our
// calibrated 13,500 J supply).  Previously a subcommand of odyssey_cli;
// now a first-class experiment so the extension ratio lands in artifacts.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"

using namespace odapps;

ODBENCH_EXPERIMENT_COST(lifetime,
                        "Untethered lifetime of the Section 5 workload pinned "
                        "at highest vs lowest fidelity",
                        60) {
  odfault::FaultPlan plan = odbench::PlanFromContext(ctx);
  if (!plan.empty()) {
    std::printf("Disturbance plan: %s\n", plan.ToString().c_str());
  }
  odutil::Table table(
      "Pinned-fidelity lifetime (13,500 J supply; mean of 3 seeds ±90% CI)");
  table.SetHeader({"Fidelity", "Lifetime (s)", "Lifetime (min)",
                   "Average draw (W)"});

  double means[2] = {0.0, 0.0};
  for (bool lowest : {false, true}) {
    odharness::TrialSet set = ctx.RunTrials(
        lowest ? "lowest" : "highest", 3, 999, [&](uint64_t seed) {
          return odharness::TrialSample{
              MeasurePinnedLifetime(13500.0, lowest, seed, plan)};
        });
    means[lowest ? 1 : 0] = set.summary.mean;
    table.AddRow({lowest ? "Lowest" : "Highest",
                  odbench::MeanCi(set.summary, 0),
                  odutil::Table::Num(set.summary.mean / 60.0, 1),
                  odutil::Table::Num(13500.0 / set.summary.mean, 2)});
  }
  table.Print();
  ctx.Note("extension_ratio", means[1] / means[0]);
  std::printf(
      "Lowest fidelity extends the workload's lifetime %.0f%% (paper: 39%%\n"
      "on a 12,000 J supply).\n",
      100.0 * (means[1] / means[0] - 1.0));
  return 0;
}
