// Self-constructive power model: coefficient recovery and the
// calibration-withheld deployment.
//
// Three cells over the Figure 20 goal workload (1320 s goal, 13,500 J):
//
//   calibrated   - the learned estimator rides along in observe-only mode;
//                  the measured claim is that its integrated energy tracks
//                  the analytic accounting within 10%.  The per-coefficient
//                  recovery error vs. the calibration table is reported and
//                  golden-tracked but not hard-gated here: the adaptive
//                  workload co-excites components (network + CPU + display
//                  move together), so individual coefficients are only
//                  identifiable up to that collinearity — the controlled-
//                  excitation unit tests (learned_model_test) pin exact
//                  recovery where excitation is orthogonal.
//   scaled gauge - the same fit against a gauge that over-reads by 1.1x
//                  from the first sample (under max_plausible_watts even at
//                  workload peaks, so validation stays silent).  The model
//                  must learn the *delivered* stream, so its energy comes
//                  out scaled by the same factor relative to the calibrated
//                  cell.  This is the estimator seam made measurable.
//   withheld     - the calibration-withheld ablation: the director runs on
//                  the SmartBattery gauge and hands the residual estimate
//                  over to the learned model once it converges
//                  (learned_primary_when_converged; the 1 Hz quantized
//                  gauge carries ~15% irreducible window mismatch, so the
//                  convergence bar is set at 20% for this deployment).
//                  Goal attainment must stay within 15% of the calibrated
//                  baseline.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"
#include "src/fault/fault_plan.h"
#include "src/util/check.h"
#include "src/util/table.h"

using namespace odapps;

namespace {

odharness::TrialSample LearnedCell(const GoalScenarioOptions& options) {
  GoalScenarioResult result = RunGoalScenario(options);
  odharness::TrialSample sample;
  sample.value = result.coefficient_recovery_error;
  sample.breakdown["goal_met"] = result.goal_met ? 1.0 : 0.0;
  sample.breakdown["residual_pct"] =
      100.0 * result.residual_joules / options.initial_joules;
  sample.breakdown["residual_error_pct"] =
      100.0 *
      std::abs(result.estimated_residual_joules - result.residual_joules) /
      options.initial_joules;
  sample.breakdown["converged"] = result.learned_converged ? 1.0 : 0.0;
  sample.breakdown["confidence"] = result.learned_confidence;
  sample.breakdown["recovery_error"] = result.coefficient_recovery_error;
  // Learned energy integral vs. analytic ground truth; the few early
  // pre-convergence windows integrate a still-forming fit, worth ~1-2%.
  sample.breakdown["learned_ratio"] =
      result.accounted_joules > 0.0
          ? result.learned_joules / result.accounted_joules
          : 0.0;
  sample.breakdown["learned_primary"] = result.learned_primary_active ? 1.0 : 0.0;
  sample.breakdown["adaptations"] = result.total_adaptations;
  sample.breakdown["elapsed_seconds"] = result.elapsed_seconds;
  return sample;
}

}  // namespace

ODBENCH_EXPERIMENT_COST(learned_model_sweep,
                        "Self-constructive power model: coefficient recovery "
                        "from the gauge stream, plus the calibration-withheld "
                        "deployment",
                        300) {
  const double initial_joules = 13500.0;
  const double goal_seconds = 1320.0;

  // The scaled-gauge cell's disturbance: a sub-plausible 1.1x over-read
  // covering the whole run including the overrun valve.
  odfault::FaultPlan scaled_plan;
  std::string error;
  OD_CHECK_MSG(
      odfault::FaultPlan::Parse("gauge@0+1920=1.1", &scaled_plan, &error),
      error.c_str());
  ctx.artifact().provenance.fault_plan = scaled_plan.ToString();

  auto base_options = [&](uint64_t seed) {
    GoalScenarioOptions options;
    options.seed = seed;
    options.initial_joules = initial_joules;
    options.goal = odsim::SimDuration::Seconds(goal_seconds);
    options.learned_model = true;
    return options;
  };

  odutil::Table table(
      "Self-constructive power model (13,500 J, 1320 s goal; 3 trials; "
      "means)");
  table.SetHeader({"Cell", "Goal Met", "Residual %", "Est Err %", "Conv",
                   "Learn/Acct", "Coef Err", "Adapts"});

  odharness::TrialSet calibrated =
      ctx.RunTrials("calibrated", 3, 53000, [&](uint64_t seed) {
        return LearnedCell(base_options(seed));
      });
  odharness::TrialSet scaled =
      ctx.RunTrials("scaled gauge 1.1x", 3, 53100, [&](uint64_t seed) {
        GoalScenarioOptions options = base_options(seed);
        options.fault_plan = scaled_plan;
        return LearnedCell(options);
      });
  odharness::TrialSet withheld =
      ctx.RunTrials("calibration withheld", 3, 53200, [&](uint64_t seed) {
        GoalScenarioOptions options = base_options(seed);
        options.use_smart_battery = true;
        options.director.learned_primary_when_converged = true;
        // The 1 Hz quantized gauge never beats the multimeter's 8% window
        // mismatch; 20% is the handoff bar for this deployment.
        options.learned_config.converged_error_fraction = 0.20;
        return LearnedCell(options);
      });

  struct Row {
    const char* label;
    const odharness::TrialSet* set;
  };
  for (const Row& row : {Row{"calibrated", &calibrated},
                         Row{"scaled gauge 1.1x", &scaled},
                         Row{"calibration withheld", &withheld}}) {
    const odharness::TrialSet& set = *row.set;
    table.AddRow({row.label, odutil::Table::Pct(set.Mean("goal_met"), 0),
                  odutil::Table::Num(set.Mean("residual_pct"), 1),
                  odutil::Table::Num(set.Mean("residual_error_pct"), 2),
                  odutil::Table::Pct(set.Mean("converged"), 0),
                  odutil::Table::Num(set.Mean("learned_ratio"), 3),
                  odutil::Table::Num(set.Mean("recovery_error"), 3),
                  odutil::Table::Num(set.Mean("adaptations"), 1)});
  }
  table.Print();

  int rc = 0;
  // The calibrated fit must converge and its energy integral must track
  // the analytic accounting.
  if (calibrated.Mean("converged") < 1.0 ||
      std::abs(calibrated.Mean("learned_ratio") - 1.0) > 0.10) {
    std::printf("FAIL: calibrated fit did not track the accounting "
                "(converged %.0f%%, learned/accounted %.3f)\n",
                100.0 * calibrated.Mean("converged"),
                calibrated.Mean("learned_ratio"));
    rc = 1;
  }
  // The scaled-gauge fit must mirror the delivered stream: its energy
  // scaled by ~1.1x relative to the calibrated cell, not unchanged (which
  // would mean the model somehow saw the analytic accounting).
  const double ratio_lift =
      scaled.Mean("learned_ratio") / calibrated.Mean("learned_ratio");
  if (ratio_lift < 1.07 || ratio_lift > 1.13) {
    std::printf("FAIL: scaled-gauge energy should scale by ~1.1x the "
                "calibrated cell's (got %.3f)\n",
                ratio_lift);
    rc = 1;
  }
  // The withheld deployment must hand over and stay within 15% attainment
  // of the calibrated baseline.
  if (withheld.Mean("learned_primary") < 1.0 ||
      withheld.Mean("residual_error_pct") > 15.0) {
    std::printf("FAIL: calibration-withheld handoff missing (%.0f%%) or "
                "learned residual estimate off by %.2f%% of supply\n",
                100.0 * withheld.Mean("learned_primary"),
                withheld.Mean("residual_error_pct"));
    rc = 1;
  }
  const double attainment_gap =
      std::abs(withheld.Mean("residual_pct") - calibrated.Mean("residual_pct"));
  if (withheld.Mean("goal_met") != calibrated.Mean("goal_met") ||
      attainment_gap > 15.0) {
    std::printf("FAIL: withheld attainment (goal %.0f%%, residual %.1f%%) "
                "outside 15%% of calibrated (goal %.0f%%, residual %.1f%%)\n",
                100.0 * withheld.Mean("goal_met"),
                withheld.Mean("residual_pct"),
                100.0 * calibrated.Mean("goal_met"),
                calibrated.Mean("residual_pct"));
    rc = 1;
  }
  std::printf(
      "Expected shape: the calibrated fit converges and its energy integral\n"
      "tracks the accounting within 10%%; the scaled-gauge fit comes out\n"
      "~1.1x hotter because it can only see the delivered stream; the\n"
      "withheld deployment hands over after convergence and tracks the\n"
      "calibrated baseline's attainment.  Coefficient recovery is reported\n"
      "per cell but identifiable only up to workload collinearity — the\n"
      "learned_model_test suite pins exact recovery under orthogonal\n"
      "excitation.\n");
  return rc;
}
