// Regenerates Figure 20: summary of goal-directed adaptation for specified
// battery durations of 1200, 1320, 1440, and 1560 seconds — percentage of
// trials meeting the goal, residual energy, and per-application adaptation
// counts (mean of five trials, standard deviation in parentheses).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"
#include "src/harness/sweep_runner.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace odapps;

ODBENCH_EXPERIMENT_COST(fig20_goal_summary,
                        "Figure 20: goal-directed adaptation summary across "
                        "1200-1560 s goals",
                        300) {
  odfault::FaultPlan plan = odbench::PlanFromContext(ctx);
  if (!plan.empty()) {
    std::printf("Disturbance plan: %s\n", plan.ToString().c_str());
  }
  odutil::Table table(
      "Figure 20: Summary of goal-directed adaptation (5 trials per row; "
      "mean (stddev))");
  table.SetHeader({"Specified Duration (s)", "Goal Met", "Residual (J)",
                   "Adapt Speech", "Adapt Video", "Adapt Map", "Adapt Web"});

  // The four goal sweeps and the two pinned-lifetime measurements are all
  // independent; submit everything as sweep cells so the figure runs wide
  // under --jobs instead of goal-by-goal.
  odharness::Sweep sweep(ctx);
  const double goals[] = {1200.0, 1320.0, 1440.0, 1560.0};
  size_t goal_cells[4];
  for (int g = 0; g < 4; ++g) {
    const double goal_seconds = goals[g];
    goal_cells[g] = sweep.AddTrials(
        "goal_" + odutil::Table::Num(goal_seconds, 0), 5, 20000,
        [goal_seconds, &plan](uint64_t seed) {
          GoalScenarioOptions options;
          options.goal = odsim::SimDuration::Seconds(goal_seconds);
          options.seed = seed;
          options.fault_plan = plan;
          GoalScenarioResult result = RunGoalScenario(options);
          odharness::TrialSample sample;
          sample.value = result.residual_joules;
          sample.breakdown["goal_met"] = result.goal_met ? 1.0 : 0.0;
          sample.breakdown["elapsed_seconds"] = result.elapsed_seconds;
          for (const auto& [app, count] : result.adaptations) {
            sample.breakdown[app] = count;
          }
          if (!plan.empty()) {
            sample.breakdown["safe_mode_seconds"] = result.safe_mode_seconds;
            sample.breakdown["safe_mode_entries"] = result.safe_mode_entries;
            sample.breakdown["outage_clamps"] = result.outage_clamps;
          }
          return sample;
        });
  }
  size_t full_cell = sweep.AddHidden([&plan] {
    return odharness::TrialSample{
        MeasurePinnedLifetime(13500.0, false, 999, plan)};
  });
  size_t low_cell = sweep.AddHidden([&plan] {
    return odharness::TrialSample{
        MeasurePinnedLifetime(13500.0, true, 999, plan)};
  });
  sweep.Run();

  for (int g = 0; g < 4; ++g) {
    const odharness::TrialSet& set = sweep.Set(goal_cells[g]);
    auto mean_std = [&set](const char* key) {
      const odutil::Summary& s = set.breakdown_summaries.at(key);
      return odutil::Table::MeanStd(s.mean, s.stddev, 1);
    };
    table.AddRow({odutil::Table::Num(goals[g], 0),
                  odutil::Table::Pct(set.Mean("goal_met"), 0),
                  odutil::Table::MeanStd(set.summary.mean, set.summary.stddev, 1),
                  mean_std("Speech"), mean_std("Video"), mean_std("Map"),
                  mean_std("Web")});
  }
  table.Print();

  double full = sweep.Value(full_cell);
  double low = sweep.Value(low_cell);
  ctx.Note("pinned_lifetime_full_seconds", full);
  ctx.Note("pinned_lifetime_lowest_seconds", low);
  std::printf(
      "Workload lifetime pinned at highest fidelity: %.0f s (%d:%02d); at\n"
      "lowest fidelity: %.0f s (%d:%02d) — a %.0f%% extension (paper: 19:27\n"
      "and 27:06 on 12,000 J, a 39%% extension; we use 13,500 J, see\n"
      "DESIGN.md).  Goals spanning 30%% (1200-1560 s) are all met.\n",
      full, static_cast<int>(full) / 60, static_cast<int>(full) % 60, low,
      static_cast<int>(low) / 60, static_cast<int>(low) % 60,
      100.0 * (low / full - 1.0));
  return 0;
}
