// Regenerates Figure 20: summary of goal-directed adaptation for specified
// battery durations of 1200, 1320, 1440, and 1560 seconds — percentage of
// trials meeting the goal, residual energy, and per-application adaptation
// counts (mean of five trials, standard deviation in parentheses).

#include <cstdio>

#include "src/apps/goal_scenario.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace odapps;

int main() {
  odutil::Table table(
      "Figure 20: Summary of goal-directed adaptation (5 trials per row; "
      "mean (stddev))");
  table.SetHeader({"Specified Duration (s)", "Goal Met", "Residual (J)",
                   "Adapt Speech", "Adapt Video", "Adapt Map", "Adapt Web"});

  for (double goal_seconds : {1200.0, 1320.0, 1440.0, 1560.0}) {
    int met = 0;
    odutil::RunningStats residual, speech, video, map, web;
    for (uint64_t trial = 0; trial < 5; ++trial) {
      GoalScenarioOptions options;
      options.goal = odsim::SimDuration::Seconds(goal_seconds);
      options.seed = 20000 + trial;
      GoalScenarioResult result = RunGoalScenario(options);
      if (result.goal_met) {
        ++met;
      }
      residual.Add(result.residual_joules);
      speech.Add(result.adaptations.at("Speech"));
      video.Add(result.adaptations.at("Video"));
      map.Add(result.adaptations.at("Map"));
      web.Add(result.adaptations.at("Web"));
    }
    table.AddRow({odutil::Table::Num(goal_seconds, 0),
                  odutil::Table::Pct(met / 5.0, 0),
                  odutil::Table::MeanStd(residual.mean(), residual.stddev(), 1),
                  odutil::Table::MeanStd(speech.mean(), speech.stddev(), 1),
                  odutil::Table::MeanStd(video.mean(), video.stddev(), 1),
                  odutil::Table::MeanStd(map.mean(), map.stddev(), 1),
                  odutil::Table::MeanStd(web.mean(), web.stddev(), 1)});
  }
  table.Print();

  double full = MeasurePinnedLifetime(13500.0, false, 999);
  double low = MeasurePinnedLifetime(13500.0, true, 999);
  std::printf(
      "Workload lifetime pinned at highest fidelity: %.0f s (%d:%02d); at\n"
      "lowest fidelity: %.0f s (%d:%02d) — a %.0f%% extension (paper: 19:27\n"
      "and 27:06 on 12,000 J, a 39%% extension; we use 13,500 J, see\n"
      "DESIGN.md).  Goals spanning 30%% (1200-1560 s) are all met.\n",
      full, static_cast<int>(full) / 60, static_cast<int>(full) % 60, low,
      static_cast<int>(low) / 60, static_cast<int>(low) % 60,
      100.0 * (low / full - 1.0));
  return 0;
}
