// Fleet-scale degradation curve: N devices, one distillation service.
//
// Sweeps client count (1 -> 10k) x distilled-content cache (off/on) over
// the shared-service fleet (src/apps/fleet.h).  Each device runs its own
// ThinkPad power model and GoalDirector against a common battery goal; the
// cells record goal attainment, mean final fidelity, server utilization,
// queue-wait percentiles, and cache hit rate.
//
// The measured claim: without the cache, goal attainment collapses once
// the fleet saturates the service — queue latency holds every client's
// wireless interface out of standby, and contention at the server is paid
// in energy at the edge.  With the cache, repeated keys are served without
// queueing and attainment holds.  The experiment fails (rc 1) if cache-on
// attainment does not strictly dominate cache-off at >= 1000 clients.
//
// --fault-plan is honored and stamped into provenance; only stall windows
// apply to a fleet (they wedge the shared service), so any other kind is
// rejected with exit 64.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/fleet.h"
#include "src/fault/fault_plan.h"
#include "src/util/table.h"

namespace {

// Shared by fleet_sweep and the compact fleet_small golden so the CI cell
// measures exactly what the sweep measures.
odharness::TrialSample FleetCell(int clients, bool cache_on,
                                 const odfault::FaultPlan& plan, uint64_t seed,
                                 bool scenario_diversity = false) {
  odapps::FleetOptions options;
  options.clients = clients;
  options.seed = seed;
  options.service.cache_capacity = cache_on ? 512 : 0;
  options.fault_plan = plan;
  options.scenario_diversity = scenario_diversity;
  odapps::FleetResult r = odapps::RunFleetScenario(options);

  odharness::TrialSample sample;
  sample.value = r.goal_attainment;
  sample.breakdown["goal_met"] = r.goal_met_count;
  sample.breakdown["mean_final_fidelity"] = r.mean_final_fidelity;
  sample.breakdown["mean_residual_joules"] = r.mean_residual_joules;
  sample.breakdown["mean_consumed_joules"] = r.mean_consumed_joules;
  sample.breakdown["fetches"] = r.total_fetches;
  sample.breakdown["rejected_fetches"] = r.total_rejected_fetches;
  sample.breakdown["device_cache_hits"] = r.total_device_cache_hits;
  sample.breakdown["devices_overload_clamped"] = r.devices_overload_clamped;
  if (scenario_diversity) {
    sample.breakdown["scenario_skipped_ticks"] = r.total_scenario_skipped_ticks;
  }
  sample.breakdown["server_completed"] = r.server_completed;
  sample.breakdown["server_rejected"] = r.server_rejected;
  sample.breakdown["server_cache_hits"] = r.server_cache_hits;
  sample.breakdown["server_batch_joins"] = r.server_batch_joins;
  sample.breakdown["server_cache_evictions"] = r.server_cache_evictions;
  sample.breakdown["server_busy_seconds"] = r.server_busy_seconds;
  sample.breakdown["server_utilization"] = r.server_utilization;
  sample.breakdown["cache_hit_rate"] = r.cache_hit_rate;
  sample.breakdown["wait_mean_s"] = r.queue_wait_mean_seconds;
  sample.breakdown["wait_p50_s"] = r.queue_wait_p50_seconds;
  sample.breakdown["wait_p95_s"] = r.queue_wait_p95_seconds;
  return sample;
}

// Only stall windows make sense fleet-wide (they wedge the shared
// service); device-scoped kinds would disturb one device of N and measure
// nothing.  Returns false (after printing why) on any other kind.
bool ValidateFleetPlan(const odfault::FaultPlan& plan) {
  for (const odfault::FaultEvent& event : plan.events) {
    if (event.kind != odfault::FaultKind::kServerStall) {
      std::fprintf(stderr,
                   "fleet_sweep: fault kind '%s' does not apply fleet-wide; "
                   "only 'stall' windows hit the shared service\n",
                   odfault::FaultKindName(event.kind));
      return false;
    }
  }
  return true;
}

std::string CellLabel(int clients, bool cache_on) {
  return "n=" + std::to_string(clients) + (cache_on ? " cache=on" : " cache=off");
}

}  // namespace

ODBENCH_EXPERIMENT_COST(fleet_sweep,
                        "Fleet sweep: goal attainment vs client count, "
                        "shared service, cache on/off",
                        2000) {
  odfault::FaultPlan plan = odbench::PlanFromContext(ctx);
  if (!ValidateFleetPlan(plan)) {
    return 64;
  }

  const std::vector<int> kClients = {1, 32, 256, 1000, 10000};

  odutil::Table table(
      "Fleet sweep: 600 s battery goal, one shared distillation service "
      "(per-cell fleet run)");
  table.SetHeader({"Clients", "Cache", "Attain", "Fid", "Util", "p50 wait",
                   "p95 wait", "Hit rate", "Rejects"});

  // attainment[cache_on][client index]
  double attainment[2][8] = {};
  for (int cache = 0; cache <= 1; ++cache) {
    for (size_t i = 0; i < kClients.size(); ++i) {
      int n = kClients[i];
      bool cache_on = cache == 1;
      odharness::TrialSet set = ctx.RunTrials(
          CellLabel(n, cache_on), 1, 91000 + 10 * i + cache,
          [&, n, cache_on](uint64_t seed) {
            return FleetCell(n, cache_on, plan, seed);
          });
      attainment[cache][i] = set.summary.mean;
      table.AddRow({std::to_string(n), cache_on ? "on" : "off",
                    odutil::Table::Num(set.summary.mean, 3),
                    odutil::Table::Num(set.Mean("mean_final_fidelity"), 2),
                    odutil::Table::Num(set.Mean("server_utilization"), 3),
                    odutil::Table::Num(set.Mean("wait_p50_s"), 3),
                    odutil::Table::Num(set.Mean("wait_p95_s"), 3),
                    odutil::Table::Num(set.Mean("cache_hit_rate"), 3),
                    odutil::Table::Num(set.Mean("rejected_fetches"), 0)});
    }
  }
  table.Print();

  int rc = 0;
  for (size_t i = 0; i < kClients.size(); ++i) {
    if (kClients[i] < 1000) {
      continue;
    }
    if (!(attainment[1][i] > attainment[0][i])) {
      std::printf(
          "FAIL: cache-on attainment (%.3f) does not strictly dominate "
          "cache-off (%.3f) at %d clients\n",
          attainment[1][i], attainment[0][i], kClients[i]);
      rc = 1;
    }
  }
  std::printf(
      "Expected shape: attainment ~1.0 for both arms while the service is\n"
      "unsaturated, collapsing for cache-off once queue latency pins client\n"
      "radios awake (>= ~1k clients) while cache-on holds; mean fidelity\n"
      "degrades first, attainment second.\n");
  return rc;
}

ODBENCH_EXPERIMENT(fleet_small,
                   "Fleet regression cell: 32 clients, cache off/on "
                   "(compact golden)") {
  odfault::FaultPlan plan = odbench::PlanFromContext(ctx);
  if (!ValidateFleetPlan(plan)) {
    return 64;
  }

  odutil::Table table("Fleet regression cell: 32 clients, 600 s goal");
  table.SetHeader({"Cache", "Attain", "Fid", "Util", "p50 wait", "p95 wait",
                   "Hit rate"});
  for (int cache = 0; cache <= 1; ++cache) {
    bool cache_on = cache == 1;
    odharness::TrialSet set =
        ctx.RunTrials(CellLabel(32, cache_on), 1, 91010 + cache,
                      [&, cache_on](uint64_t seed) {
                        return FleetCell(32, cache_on, plan, seed);
                      });
    table.AddRow({cache_on ? "on" : "off",
                  odutil::Table::Num(set.summary.mean, 3),
                  odutil::Table::Num(set.Mean("mean_final_fidelity"), 2),
                  odutil::Table::Num(set.Mean("server_utilization"), 3),
                  odutil::Table::Num(set.Mean("wait_p50_s"), 3),
                  odutil::Table::Num(set.Mean("wait_p95_s"), 3),
                  odutil::Table::Num(set.Mean("cache_hit_rate"), 3)});
  }
  table.Print();

  // Third arm: the same fleet with per-device behavior diversity — every
  // device gated by its seed-assigned library scenario.  Pins the gating
  // in the compact golden: fewer fetches than the always-on arms and a
  // nonzero skipped-tick count.
  odharness::TrialSet diverse = ctx.RunTrials(
      "n=32 cache=on scenarios", 1, 91012, [&](uint64_t seed) {
        return FleetCell(32, /*cache_on=*/true, plan, seed,
                         /*scenario_diversity=*/true);
      });
  std::printf(
      "scenario-diverse arm: attainment %.3f, %d fetches, %d fetch "
      "tick(s) suppressed by behavior timelines\n",
      diverse.summary.mean, static_cast<int>(diverse.Mean("fetches")),
      static_cast<int>(diverse.Mean("scenario_skipped_ticks")));
  return 0;
}
