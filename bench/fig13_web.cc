// Regenerates Figure 13: energy to fetch and display four GIF images at six
// fidelity configurations with five seconds of think time.  Per-process
// columns are cross-trial means.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"
#include "src/trace/trace_artifact.h"

using odapps::RunWebExperiment;
using odapps::StandardWebImages;
using odapps::WebFidelity;

namespace {

struct Bar {
  const char* label;
  WebFidelity fidelity;
  bool hw_pm;
};

constexpr Bar kBars[] = {
    {"Baseline", WebFidelity::kOriginal, false},
    {"Hardware-Only Power Mgmt.", WebFidelity::kOriginal, true},
    {"JPEG-75", WebFidelity::kJpeg75, true},
    {"JPEG-50", WebFidelity::kJpeg50, true},
    {"JPEG-25", WebFidelity::kJpeg25, true},
    {"JPEG-5", WebFidelity::kJpeg5, true},
};

}  // namespace

ODBENCH_EXPERIMENT(fig13_web,
                   "Figure 13: energy impact of fidelity for Web browsing "
                   "(6 bars x 4 images, 5 s think)") {
  odutil::Table table(
      "Figure 13: Energy impact of fidelity for Web browsing (Joules; 5 s think "
      "time; mean of 10 trials ±90% CI)");
  table.SetHeader({"Image", "Configuration", "Energy (J)", "Idle", "Netscape",
                   "Proxy", "X Server", "vs Baseline", "vs HW-only"});

  for (const odapps::WebImage& image : StandardWebImages()) {
    double baseline_mean = 0.0;
    double hw_mean = 0.0;
    for (const Bar& bar : kBars) {
      odharness::TrialSet set = ctx.RunTrials(
          std::string(image.name) + "/" + bar.label, 10, 5000,
          [&](uint64_t seed) {
            return odbench::EnergySample(
                RunWebExperiment(image, bar.fidelity, 5.0, bar.hw_pm, seed));
          });
      if (bar.fidelity == WebFidelity::kOriginal) {
        if (!bar.hw_pm) {
          baseline_mean = set.summary.mean;
        } else {
          hw_mean = set.summary.mean;
        }
      }
      table.AddRow({image.name, bar.label, odbench::MeanCi(set.summary, 1),
                    odutil::Table::Num(set.Mean("Idle"), 1),
                    odutil::Table::Num(set.Mean("Netscape"), 1),
                    odutil::Table::Num(set.Mean("Proxy"), 1),
                    odutil::Table::Num(set.Mean("X Server"), 1),
                    odutil::Table::Num(set.summary.mean / baseline_mean, 3),
                    hw_mean > 0.0
                        ? odutil::Table::Num(set.summary.mean / hw_mean, 3)
                        : std::string("-")});
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "Paper: HW-only PM saves 22-26%% (mostly during think time); even JPEG-5\n"
      "distillation saves merely 4-14%% more — fidelity reduction is\n"
      "disappointing for this workload.\n");

  if (ctx.trace_enabled()) {
    // Power-profile signatures: the undistilled baseline and the deepest
    // distillation on the first image, re-run deterministically at the
    // base seed (bit-identical to trial 0 of the scalar sets above).
    const uint64_t seed = ctx.options().seed > 0 ? ctx.options().seed : 5000;
    const odapps::WebImage& image = StandardWebImages()[0];
    odtrace::TraceArtifact traces;
    for (const Bar& bar : {kBars[0], kBars[4]}) {
      odapps::TestBed::Measurement m = RunWebExperiment(
          image, bar.fidelity, 5.0, bar.hw_pm, seed, /*trace=*/true);
      traces.Add(std::string(image.name) + "/" + bar.label, seed, *m.trace);
    }
    odtrace::AttachTraceArtifact(ctx, std::move(traces));
  }
  return 0;
}
