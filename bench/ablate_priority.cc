// Ablation of priority-ordered adaptation (Section 5.3): Odyssey degrades
// the lowest-priority application first and upgrades the highest first.
// Inverting the order sacrifices the user's most important application
// (Web) while the background ones keep their quality.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"
#include "src/util/table.h"

using namespace odapps;

namespace {

void Report(odharness::RunContext& ctx, odutil::Table& table, const char* label,
            bool invert) {
  GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(1200);
  options.invert_priorities = invert;
  options.seed = 31;
  GoalScenarioResult result = RunGoalScenario(options);
  odharness::TrialSample sample;
  sample.value = result.residual_joules;
  sample.breakdown["goal_met"] = result.goal_met ? 1.0 : 0.0;
  for (const auto& [app, level] : result.final_fidelity) {
    sample.breakdown["final_" + app] = level;
  }
  ctx.Record(invert ? "inverted" : "paper_order", options.seed,
             std::move(sample));
  table.AddRow({label, result.goal_met ? "Yes" : "No",
                odutil::Table::Num(result.residual_joules, 0),
                std::to_string(result.final_fidelity.at("Speech")) + "/1",
                std::to_string(result.final_fidelity.at("Video")) + "/4",
                std::to_string(result.final_fidelity.at("Map")) + "/4",
                std::to_string(result.final_fidelity.at("Web")) + "/4"});
}

}  // namespace

ODBENCH_EXPERIMENT(ablate_priority,
                   "Ablation: priority-ordered adaptation vs inverted "
                   "priorities (Section 5.3)") {
  odutil::Table table(
      "Ablation: priority-ordered adaptation (1200 s goal, 13,500 J; final "
      "fidelity level / ladder top)");
  table.SetHeader({"Ordering", "Goal Met", "Residual (J)", "Speech", "Video",
                   "Map", "Web"});
  Report(ctx, table, "Paper order (Speech < Video < Map < Web)", false);
  Report(ctx, table, "Inverted (Web degraded first)", true);
  table.Print();
  std::printf(
      "Both orderings can meet the goal — adaptation policy does not change\n"
      "the energy arithmetic — but the paper's ordering preserves the\n"
      "highest-priority application's fidelity while the inverted one\n"
      "sacrifices the Web browser first.\n");
  return 0;
}
