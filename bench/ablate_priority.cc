// Ablation of priority-ordered adaptation (Section 5.3): Odyssey degrades
// the lowest-priority application first and upgrades the highest first.
// Inverting the order sacrifices the user's most important application
// (Web) while the background ones keep their quality.

#include <cstdio>

#include "src/apps/goal_scenario.h"
#include "src/util/table.h"

using namespace odapps;

namespace {

void Report(odutil::Table& table, const char* label, bool invert) {
  GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(1200);
  options.invert_priorities = invert;
  options.seed = 31;
  GoalScenarioResult result = RunGoalScenario(options);
  table.AddRow({label, result.goal_met ? "Yes" : "No",
                odutil::Table::Num(result.residual_joules, 0),
                std::to_string(result.final_fidelity.at("Speech")) + "/1",
                std::to_string(result.final_fidelity.at("Video")) + "/4",
                std::to_string(result.final_fidelity.at("Map")) + "/4",
                std::to_string(result.final_fidelity.at("Web")) + "/4"});
}

}  // namespace

int main() {
  odutil::Table table(
      "Ablation: priority-ordered adaptation (1200 s goal, 13,500 J; final "
      "fidelity level / ladder top)");
  table.SetHeader({"Ordering", "Goal Met", "Residual (J)", "Speech", "Video",
                   "Map", "Web"});
  Report(table, "Paper order (Speech < Video < Map < Web)", false);
  Report(table, "Inverted (Web degraded first)", true);
  table.Print();
  std::printf(
      "Both orderings can meet the goal — adaptation policy does not change\n"
      "the energy arithmetic — but the paper's ordering preserves the\n"
      "highest-priority application's fidelity while the inverted one\n"
      "sacrifices the Web browser first.\n");
  return 0;
}
