// Regenerates Figure 4: power consumption of IBM ThinkPad 560X components,
// the background power line, and the measured superlinearity note.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/power/thinkpad560x.h"
#include "src/sim/simulator.h"
#include "src/util/table.h"

ODBENCH_EXPERIMENT(fig04_power_table,
                   "Figure 4: ThinkPad 560X component power table, background "
                   "power, and superlinearity") {
  odsim::Simulator sim;
  auto laptop = odpower::MakeThinkPad560X(&sim);
  const odpower::ThinkPad560XSpec& spec = laptop->spec();

  odutil::Table table("Figure 4: Power consumption of IBM ThinkPad 560X");
  table.SetHeader({"Component", "State", "Power (W)"});
  table.AddRow({"Display", "Bright", odutil::Table::Num(spec.display_bright, 2)});
  table.AddRow({"Display", "Dim", odutil::Table::Num(spec.display_dim, 2)});
  table.AddSeparator();
  table.AddRow({"WaveLAN", "Transmit", odutil::Table::Num(spec.wavelan_transmit, 2)});
  table.AddRow({"WaveLAN", "Receive", odutil::Table::Num(spec.wavelan_receive, 2)});
  table.AddRow({"WaveLAN", "Idle", odutil::Table::Num(spec.wavelan_idle, 2)});
  table.AddRow({"WaveLAN", "Standby", odutil::Table::Num(spec.wavelan_standby, 2)});
  table.AddSeparator();
  table.AddRow({"Disk", "Access", odutil::Table::Num(spec.disk_access, 2)});
  table.AddRow({"Disk", "Idle", odutil::Table::Num(spec.disk_idle, 2)});
  table.AddRow({"Disk", "Standby", odutil::Table::Num(spec.disk_standby, 2)});
  table.AddSeparator();
  table.AddRow({"CPU", "Busy", odutil::Table::Num(spec.cpu_busy, 2)});
  table.AddRow({"CPU", "Halt (idle)", "0.00"});
  table.AddRow({"Other", "On", odutil::Table::Num(spec.other, 2)});
  table.Print();

  // Background power: display dim, WaveLAN & disk standby.
  laptop->display().Set(odpower::DisplayState::kDim);
  laptop->wavelan().Set(odpower::WaveLanState::kStandby);
  laptop->disk().Set(odpower::DiskState::kStandby);
  const double background = laptop->machine().TotalPower();
  std::printf("Background (display dim, WaveLAN & disk standby) = %.2f W"
              " (paper: 5.60 W)\n",
              background);

  // Superlinearity: screen brightest, disk and network idle.
  laptop->display().Set(odpower::DisplayState::kBright);
  laptop->wavelan().Set(odpower::WaveLanState::kIdle);
  laptop->disk().Set(odpower::DiskState::kIdle);
  double total = laptop->machine().TotalPower();
  double sum = total - laptop->machine().SynergyPower();
  std::printf("Screen brightest, disk & network idle: %.2f W total,"
              " %.2f W above component sum (paper: 0.21 W)\n",
              total, total - sum);
  ctx.Note("background_watts", background);
  ctx.Note("superlinearity_watts", total - sum);
  return 0;
}
