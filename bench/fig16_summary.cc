// Regenerates Figure 16: the summary matrix of normalized energy (min-max
// over the four data objects of each application) for baseline, hardware
// power management, fidelity reduction, and both combined — plus the
// Section 3.8 / abstract claims computed from the same sweep.
//
// The 16-object matrix (40 cells counting the think-time variants) is
// submitted to a Sweep: each cell measures one data object's baseline,
// hardware-PM, and lowest-fidelity energy independently, so the whole
// matrix runs in parallel under --jobs with output identical to serial.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"
#include "src/harness/sweep_runner.h"
#include "src/util/stats.h"

using namespace odapps;

namespace {

struct Ratios {
  std::vector<double> hw;        // hw-pm / baseline.
  std::vector<double> fidelity;  // lowest / hw-pm.
  std::vector<double> combined;  // lowest / baseline.
};

void AddObject(Ratios& r, double base, double pm, double low) {
  r.hw.push_back(pm / base);
  r.fidelity.push_back(low / pm);
  r.combined.push_back(low / base);
}

void AddRow(odutil::Table& table, const char* app, const std::string& think,
            const Ratios& r) {
  auto range = [](const std::vector<double>& v) {
    odutil::Summary s = odutil::Summarize(v);
    return odutil::Table::Range(s.min, s.max);
  };
  table.AddRow({app, think, "1.00", range(r.hw), range(r.fidelity),
                range(r.combined)});
}

// A cell's result: the combined ratio as the headline value, with the
// three absolute measurements as breakdown for the artifact.
odharness::TrialSample ObjectSample(double base, double pm, double low) {
  return odharness::TrialSample{
      low / base, {{"base", base}, {"pm", pm}, {"low", low}}};
}

}  // namespace

ODBENCH_EXPERIMENT(fig16_summary,
                   "Figure 16: summary matrix of normalized energy plus the "
                   "Section 3.8 savings claims") {
  odutil::Table table(
      "Figure 16: Summary of energy impact of fidelity (normalized to baseline; "
      "min-max over four data objects)");
  table.SetHeader({"Application", "Think (s)", "Baseline", "Hardware Power Mgmt.",
                   "Fidelity Reduction", "Combined"});

  // One table row per (application, think time); four sweep cells per row.
  // Only the think-5 rows of map/web contribute to the pooled Section 3.8
  // claims and the artifact, matching the paper's accounting.
  struct Row {
    const char* app;
    std::string think;
    bool pooled = false;
    size_t cells[4] = {};
  };
  std::vector<Row> rows;
  odharness::Sweep sweep(ctx);

  {
    Row row{"Video", "N/A", /*pooled=*/true};
    for (size_t i = 0; i < 4; ++i) {
      const VideoClip& clip = StandardVideoClips()[i];
      const uint64_t seed = 8000 + i;
      row.cells[i] = sweep.Add(
          std::string("Video/") + clip.name, seed, [&clip, seed] {
            double base =
                RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, false, seed)
                    .joules;
            double pm =
                RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, true, seed)
                    .joules;
            double low =
                RunVideoExperiment(clip, VideoTrack::kPremiereC, 0.5, true, seed)
                    .joules;
            return ObjectSample(base, pm, low);
          });
    }
    rows.push_back(std::move(row));
  }
  {
    Row row{"Speech", "N/A", /*pooled=*/true};
    for (size_t i = 0; i < 4; ++i) {
      const Utterance& u = StandardUtterances()[i];
      const uint64_t seed = 8100 + i;
      row.cells[i] = sweep.Add(std::string("Speech/") + u.name, seed, [&u, seed] {
        double base =
            RunSpeechExperiment(u, SpeechMode::kLocal, false, false, seed).joules;
        double pm =
            RunSpeechExperiment(u, SpeechMode::kLocal, false, true, seed).joules;
        double low =
            RunSpeechExperiment(u, SpeechMode::kHybrid, true, true, seed).joules;
        return ObjectSample(base, pm, low);
      });
    }
    rows.push_back(std::move(row));
  }
  for (double think : {0.0, 5.0, 10.0, 20.0}) {
    Row row{"Map", odutil::Table::Num(think, 0), /*pooled=*/think == 5.0};
    for (size_t i = 0; i < 4; ++i) {
      const MapObject& map = StandardMaps()[i];
      const uint64_t seed = 8200 + i;
      auto cell = [&map, think, seed] {
        double base =
            RunMapExperiment(map, MapFidelity::kFull, think, false, seed).joules;
        double pm =
            RunMapExperiment(map, MapFidelity::kFull, think, true, seed).joules;
        double low = RunMapExperiment(map, MapFidelity::kCroppedSecondary, think,
                                      true, seed)
                         .joules;
        return ObjectSample(base, pm, low);
      };
      row.cells[i] = row.pooled
                         ? sweep.Add(std::string("Map/") + map.name, seed, cell)
                         : sweep.AddHidden(cell);
    }
    rows.push_back(std::move(row));
  }
  for (double think : {0.0, 5.0, 10.0, 20.0}) {
    Row row{"Web", odutil::Table::Num(think, 0), /*pooled=*/think == 5.0};
    for (size_t i = 0; i < 4; ++i) {
      const WebImage& image = StandardWebImages()[i];
      const uint64_t seed = 8300 + i;
      auto cell = [&image, think, seed] {
        double base =
            RunWebExperiment(image, WebFidelity::kOriginal, think, false, seed)
                .joules;
        double pm =
            RunWebExperiment(image, WebFidelity::kOriginal, think, true, seed)
                .joules;
        double low =
            RunWebExperiment(image, WebFidelity::kJpeg5, think, true, seed)
                .joules;
        return ObjectSample(base, pm, low);
      };
      row.cells[i] = row.pooled
                         ? sweep.Add(std::string("Web/") + image.name, seed, cell)
                         : sweep.AddHidden(cell);
    }
    rows.push_back(std::move(row));
  }

  sweep.Run();

  Ratios all;  // Pooled across applications for the Section 3.8 claims.
  for (const Row& row : rows) {
    Ratios r;
    for (size_t cell : row.cells) {
      const auto& b = sweep.Sample(cell).breakdown;
      AddObject(r, b.at("base"), b.at("pm"), b.at("low"));
      if (row.pooled) {
        AddObject(all, b.at("base"), b.at("pm"), b.at("low"));
      }
    }
    AddRow(table, row.app, row.think, r);
  }
  table.Print();

  odutil::RunningStats fidelity_savings, combined_savings;
  for (double r : all.fidelity) {
    fidelity_savings.Add(1.0 - r);
  }
  for (double r : all.combined) {
    combined_savings.Add(1.0 - r);
  }
  ctx.Note("fidelity_savings_mean", fidelity_savings.mean());
  ctx.Note("fidelity_savings_min", fidelity_savings.min());
  ctx.Note("fidelity_savings_max", fidelity_savings.max());
  ctx.Note("combined_savings_mean", combined_savings.mean());
  ctx.Note("combined_savings_min", combined_savings.min());
  ctx.Note("combined_savings_max", combined_savings.max());
  std::printf(
      "Section 3.8 claims (16 objects, think time 5 s where applicable):\n"
      "  fidelity reduction alone: %.0f%%-%.0f%% savings, mean %.0f%%"
      " (paper: 7-72%%, mean 36%%)\n"
      "  combined with hardware PM: %.0f%%-%.0f%% savings, mean %.0f%%"
      " (paper: 31-76%%, mean 50%% — \"in effect, doubling battery life\")\n",
      100 * fidelity_savings.min(), 100 * fidelity_savings.max(),
      100 * fidelity_savings.mean(), 100 * combined_savings.min(),
      100 * combined_savings.max(), 100 * combined_savings.mean());
  return 0;
}
