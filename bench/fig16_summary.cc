// Regenerates Figure 16: the summary matrix of normalized energy (min-max
// over the four data objects of each application) for baseline, hardware
// power management, fidelity reduction, and both combined — plus the
// Section 3.8 / abstract claims computed from the same sweep.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"
#include "src/util/stats.h"

using namespace odapps;

namespace {

struct Ratios {
  std::vector<double> hw;        // hw-pm / baseline.
  std::vector<double> fidelity;  // lowest / hw-pm.
  std::vector<double> combined;  // lowest / baseline.
};

void AddObject(Ratios& r, double base, double pm, double low) {
  r.hw.push_back(pm / base);
  r.fidelity.push_back(low / pm);
  r.combined.push_back(low / base);
}

void AddRow(odutil::Table& table, const char* app, const char* think,
            const Ratios& r) {
  auto range = [](const std::vector<double>& v) {
    odutil::Summary s = odutil::Summarize(v);
    return odutil::Table::Range(s.min, s.max);
  };
  table.AddRow({app, think, "1.00", range(r.hw), range(r.fidelity),
                range(r.combined)});
}

}  // namespace

ODBENCH_EXPERIMENT(fig16_summary,
                   "Figure 16: summary matrix of normalized energy plus the "
                   "Section 3.8 savings claims") {
  odutil::Table table(
      "Figure 16: Summary of energy impact of fidelity (normalized to baseline; "
      "min-max over four data objects)");
  table.SetHeader({"Application", "Think (s)", "Baseline", "Hardware Power Mgmt.",
                   "Fidelity Reduction", "Combined"});

  Ratios all;  // Pooled across applications for the Section 3.8 claims.

  {
    Ratios r;
    for (size_t i = 0; i < 4; ++i) {
      const VideoClip& clip = StandardVideoClips()[i];
      uint64_t seed = 8000 + i;
      double base =
          RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, false, seed).joules;
      double pm =
          RunVideoExperiment(clip, VideoTrack::kBaseline, 1.0, true, seed).joules;
      double low =
          RunVideoExperiment(clip, VideoTrack::kPremiereC, 0.5, true, seed).joules;
      AddObject(r, base, pm, low);
      AddObject(all, base, pm, low);
      ctx.Record(std::string("Video/") + clip.name, seed,
                 odharness::TrialSample{
                     low / base, {{"base", base}, {"pm", pm}, {"low", low}}});
    }
    AddRow(table, "Video", "N/A", r);
  }
  {
    Ratios r;
    for (size_t i = 0; i < 4; ++i) {
      const Utterance& u = StandardUtterances()[i];
      uint64_t seed = 8100 + i;
      double base =
          RunSpeechExperiment(u, SpeechMode::kLocal, false, false, seed).joules;
      double pm =
          RunSpeechExperiment(u, SpeechMode::kLocal, false, true, seed).joules;
      double low =
          RunSpeechExperiment(u, SpeechMode::kHybrid, true, true, seed).joules;
      AddObject(r, base, pm, low);
      AddObject(all, base, pm, low);
      ctx.Record(std::string("Speech/") + u.name, seed,
                 odharness::TrialSample{
                     low / base, {{"base", base}, {"pm", pm}, {"low", low}}});
    }
    AddRow(table, "Speech", "N/A", r);
  }
  for (double think : {0.0, 5.0, 10.0, 20.0}) {
    Ratios r;
    for (size_t i = 0; i < 4; ++i) {
      const MapObject& map = StandardMaps()[i];
      uint64_t seed = 8200 + i;
      double base = RunMapExperiment(map, MapFidelity::kFull, think, false, seed)
                        .joules;
      double pm =
          RunMapExperiment(map, MapFidelity::kFull, think, true, seed).joules;
      double low = RunMapExperiment(map, MapFidelity::kCroppedSecondary, think,
                                    true, seed)
                       .joules;
      AddObject(r, base, pm, low);
      if (think == 5.0) {
        AddObject(all, base, pm, low);
        ctx.Record(std::string("Map/") + map.name, seed,
                   odharness::TrialSample{
                       low / base, {{"base", base}, {"pm", pm}, {"low", low}}});
      }
    }
    AddRow(table, "Map", odutil::Table::Num(think, 0).c_str(), r);
  }
  for (double think : {0.0, 5.0, 10.0, 20.0}) {
    Ratios r;
    for (size_t i = 0; i < 4; ++i) {
      const WebImage& image = StandardWebImages()[i];
      uint64_t seed = 8300 + i;
      double base =
          RunWebExperiment(image, WebFidelity::kOriginal, think, false, seed)
              .joules;
      double pm =
          RunWebExperiment(image, WebFidelity::kOriginal, think, true, seed).joules;
      double low =
          RunWebExperiment(image, WebFidelity::kJpeg5, think, true, seed).joules;
      AddObject(r, base, pm, low);
      if (think == 5.0) {
        AddObject(all, base, pm, low);
        ctx.Record(std::string("Web/") + image.name, seed,
                   odharness::TrialSample{
                       low / base, {{"base", base}, {"pm", pm}, {"low", low}}});
      }
    }
    AddRow(table, "Web", odutil::Table::Num(think, 0).c_str(), r);
  }
  table.Print();

  odutil::RunningStats fidelity_savings, combined_savings;
  for (double r : all.fidelity) {
    fidelity_savings.Add(1.0 - r);
  }
  for (double r : all.combined) {
    combined_savings.Add(1.0 - r);
  }
  ctx.Note("fidelity_savings_mean", fidelity_savings.mean());
  ctx.Note("fidelity_savings_min", fidelity_savings.min());
  ctx.Note("fidelity_savings_max", fidelity_savings.max());
  ctx.Note("combined_savings_mean", combined_savings.mean());
  ctx.Note("combined_savings_min", combined_savings.min());
  ctx.Note("combined_savings_max", combined_savings.max());
  std::printf(
      "Section 3.8 claims (16 objects, think time 5 s where applicable):\n"
      "  fidelity reduction alone: %.0f%%-%.0f%% savings, mean %.0f%%"
      " (paper: 7-72%%, mean 36%%)\n"
      "  combined with hardware PM: %.0f%%-%.0f%% savings, mean %.0f%%"
      " (paper: 31-76%%, mean 50%% — \"in effect, doubling battery life\")\n",
      100 * fidelity_savings.min(), 100 * fidelity_savings.max(),
      100 * fidelity_savings.mean(), 100 * combined_savings.min(),
      100 * combined_savings.max(), 100 * combined_savings.mean());
  return 0;
}
