// Goal attainment under the disturbance ladder: the Figure 20 goal
// scenario (1320 s goal on 13,500 J) run under fault plans of increasing
// severity, including the telemetry kinds that attack the director's own
// power feed.  The measured claim is disturbance-hardened goal direction:
// network and server faults cost energy but not the goal; telemetry
// faults trip the controller's safe mode (clamp + planning freeze) and
// recover, and the director's residual estimate stays within a bounded
// error of ground truth because gaps and implausible readings are
// re-counted at the smoothed demand rate.
//
// With --fault-plan the ladder is replaced by that single plan (label
// "custom"), which is how a perturbation lands in a diffable artifact.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"
#include "src/fault/fault_plan.h"
#include "src/harness/sweep_runner.h"
#include "src/util/check.h"
#include "src/util/table.h"

using namespace odapps;

namespace {

struct Rung {
  const char* label;
  const char* spec;  // odfault plan grammar; "" = clean baseline.
};

}  // namespace

ODBENCH_EXPERIMENT_COST(goal_fault_sweep,
                        "Goal attainment under fault plans of increasing "
                        "severity, including telemetry faults",
                        500) {
  // Severity ladder: clean baseline, the five environment kinds, the four
  // telemetry kinds, then two storms.  Every window sits inside the 1320 s
  // goal with slack after it, so safe-mode recovery is part of the record.
  std::vector<Rung> rungs = {
      {"clean", ""},
      {"loss burst", "loss@200+300=0.3"},
      {"bandwidth crash", "bandwidth@200+400=0.1"},
      {"link outage", "outage@300+60"},
      {"server stall", "stall@300+120"},
      {"disk spike", "disk@200+400=8"},
      {"sample dropout", "dropout@300+90"},
      {"frozen feed", "stale@300+90"},
      {"nan feed", "nan@300+60"},
      {"gauge drift", "gauge@200+200=3"},
      {"telemetry storm",
       "dropout@200+60;nan@300+40;stale@400+60;gauge@500+120=3"},
      {"full storm",
       "bandwidth@150+200=0.2;loss@250+150=0.3;outage@400+60;stall@500+90;"
       "disk@200+400=4;dropout@600+60;gauge@700+150=3;nan@850+40"},
  };
  if (!ctx.options().fault_plan.empty()) {
    rungs = {{"custom", ctx.options().fault_plan.c_str()}};
  }

  const double initial_joules = 13500.0;
  const double goal_seconds = 1320.0;

  // The plan(s) this artifact was disturbed by, in canonical spelling.
  std::vector<odfault::FaultPlan> plans(rungs.size());
  std::string stamped;
  for (size_t i = 0; i < rungs.size(); ++i) {
    std::string error;
    OD_CHECK_MSG(odfault::FaultPlan::Parse(rungs[i].spec, &plans[i], &error),
                 error.c_str());
    if (plans[i].empty()) {
      continue;
    }
    if (!stamped.empty()) {
      stamped += " | ";
    }
    stamped += plans[i].ToString();
  }
  ctx.artifact().provenance.fault_plan = stamped;

  odutil::Table table(
      "Goal-directed adaptation under faults (13,500 J, 1320 s goal; "
      "3 trials per rung; means)");
  table.SetHeader({"Plan", "Goal Met", "Residual %", "Est Err %", "Safe s",
                   "Safe #", "Invalid", "Clamps", "Adapts"});

  // Rungs are independent; submit them all as sweep cells so the ladder
  // runs wide under --jobs instead of rung-by-rung.
  odharness::Sweep sweep(ctx);
  std::vector<size_t> cells(rungs.size());
  for (size_t i = 0; i < rungs.size(); ++i) {
    const odfault::FaultPlan& plan = plans[i];
    cells[i] = sweep.AddTrials(rungs[i].label, 3, 47000, [&plan, initial_joules,
                                                          goal_seconds](
                                                             uint64_t seed) {
      GoalScenarioOptions options;
      options.seed = seed;
      options.initial_joules = initial_joules;
      options.goal = odsim::SimDuration::Seconds(goal_seconds);
      options.fault_plan = plan;
      GoalScenarioResult result = RunGoalScenario(options);
      odharness::TrialSample sample;
      sample.value = result.residual_joules;
      sample.breakdown["goal_met"] = result.goal_met ? 1.0 : 0.0;
      sample.breakdown["residual_pct"] =
          100.0 * result.residual_joules / initial_joules;
      // How far telemetry faults dragged the director's residual estimate
      // from ground truth, as a fraction of the whole supply.
      sample.breakdown["residual_error_pct"] =
          100.0 *
          std::abs(result.estimated_residual_joules - result.residual_joules) /
          initial_joules;
      sample.breakdown["safe_mode_seconds"] = result.safe_mode_seconds;
      sample.breakdown["safe_mode_entries"] = result.safe_mode_entries;
      sample.breakdown["invalid_samples"] = result.invalid_samples;
      sample.breakdown["telemetry_gaps"] = result.telemetry_gaps;
      sample.breakdown["outage_clamps"] = result.outage_clamps;
      sample.breakdown["adaptations"] = result.total_adaptations;
      sample.breakdown["elapsed_seconds"] = result.elapsed_seconds;
      return sample;
    });
  }
  sweep.Run();

  int worst = 0;
  for (size_t i = 0; i < rungs.size(); ++i) {
    const odharness::TrialSet& set = sweep.Set(cells[i]);
    // The non-negotiable part of the claim: every run terminates (no rung
    // may wedge the scenario into its overrun valve), and the residual
    // estimate error stays bounded.  The clean baseline already carries a
    // few percent of multimeter measurement bias; telemetry faults add a
    // little conservative error on top because corrupted spans are
    // re-counted at the pre-fault smoothed rate while safe mode actually
    // runs cheaper.  An uncorrected gauge fault would be off by a factor
    // of the drift magnitude — far past this bound.
    const bool terminated =
        set.Mean("elapsed_seconds") < goal_seconds + 590.0;
    const bool bounded = set.Mean("residual_error_pct") <= 10.0;
    if (!terminated || !bounded) {
      worst = 1;
    }
    table.AddRow({rungs[i].label, odutil::Table::Pct(set.Mean("goal_met"), 0),
                  odutil::Table::Num(set.Mean("residual_pct"), 1),
                  odutil::Table::Num(set.Mean("residual_error_pct"), 2),
                  odutil::Table::Num(set.Mean("safe_mode_seconds"), 1),
                  odutil::Table::Num(set.Mean("safe_mode_entries"), 1),
                  odutil::Table::Num(set.Mean("invalid_samples"), 1),
                  odutil::Table::Num(set.Mean("outage_clamps"), 1),
                  odutil::Table::Num(set.Mean("adaptations"), 1)});
  }
  table.Print();
  std::printf(
      "Expected shape: the clean rung matches fig20's 1320 s row; network\n"
      "rungs cost energy but keep the goal; telemetry rungs show safe-mode\n"
      "time covering the fault window plus recovery hysteresis.  The\n"
      "estimate error column stays near the clean baseline because gaps\n"
      "and implausible readings are re-counted at the smoothed demand\n"
      "rate; telemetry rungs err slightly conservative since that rate is\n"
      "the pre-fault one while safe mode actually runs cheaper.\n");
  return worst;
}
