// odbench — the single runner binary behind every experiment in the
// evaluation suite.  Replaces the per-figure bench mains: each former main
// is now a registration stub (see ODBENCH_EXPERIMENT) and this binary
// lists/runs them, parallelizes their trials, and writes a JSON artifact
// per experiment.
//
//   odbench list
//       Show every registered experiment with its description.
//   odbench run <name|all> [--trials N] [--seed S] [--jobs J] [--out DIR]
//       Run one experiment (unique prefixes accepted: `run fig04`) or all
//       of them.  --trials/--seed override each trial set's paper defaults;
//       --jobs runs a set's trials concurrently (results are bit-identical
//       to --jobs 1); --out selects the artifact directory (default
//       "artifacts", "none" disables).

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/harness/flags.h"
#include "src/harness/registry.h"

namespace {

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s list\n"
               "       %s run <name|all> [--trials N] [--seed S] [--jobs J]"
               " [--out DIR]\n",
               prog, prog);
  return 64;
}

int List() {
  const auto experiments = odharness::ExperimentRegistry::Instance().List();
  size_t width = 0;
  for (const odharness::Experiment* experiment : experiments) {
    width = std::max(width, experiment->name.size());
  }
  for (const odharness::Experiment* experiment : experiments) {
    std::printf("%-*s  %s\n", static_cast<int>(width),
                experiment->name.c_str(), experiment->description.c_str());
  }
  std::printf("(%zu experiments)\n", experiments.size());
  return 0;
}

int RunOne(const odharness::Experiment& experiment,
           const odharness::RunOptions& options) {
  std::printf("=== %s: %s ===\n", experiment.name.c_str(),
              experiment.description.c_str());
  odharness::RunContext ctx(experiment.name, options);
  const auto start = std::chrono::steady_clock::now();
  const int rc = experiment.run(ctx);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  ctx.artifact().wall_ms = wall_ms;
  ctx.artifact().exit_code = rc;
  std::printf("--- %s: rc=%d wall=%.0f ms", experiment.name.c_str(), rc,
              wall_ms);
  if (!options.out_dir.empty()) {
    const std::string path =
        options.out_dir + "/" + experiment.name + ".json";
    if (ctx.artifact().WriteFile(path)) {
      std::printf(" artifact=%s", path.c_str());
    } else {
      std::fprintf(stderr, "odbench: could not write %s\n", path.c_str());
    }
  }
  std::printf(" ---\n\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  odharness::Flags flags(argc, argv);
  const auto& positional = flags.positional();
  if (positional.empty()) {
    return Usage(argv[0]);
  }

  const std::string& command = positional[0];
  if (command == "list") {
    return List();
  }
  if (command != "run" || positional.size() != 2) {
    return Usage(argv[0]);
  }
  std::string error;
  if (!flags.Validate({"trials", "seed", "jobs", "out"}, {}, &error)) {
    std::fprintf(stderr, "odbench: %s\n", error.c_str());
    return Usage(argv[0]);
  }

  odharness::RunOptions options;
  options.trials = flags.GetInt("trials", 0);
  options.seed = flags.GetUint64("seed", 0);
  options.jobs = flags.GetInt("jobs", 1);
  options.out_dir = flags.GetString("out", "artifacts");
  if (options.out_dir == "none") {
    options.out_dir.clear();
  }
  if (!options.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "odbench: cannot create %s: %s\n",
                   options.out_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }

  auto& registry = odharness::ExperimentRegistry::Instance();
  const std::string& query = positional[1];
  if (query == "all") {
    int worst = 0;
    for (const odharness::Experiment* experiment : registry.List()) {
      const int rc = RunOne(*experiment, options);
      worst = std::max(worst, rc);
    }
    return worst;
  }

  std::vector<std::string> matches;
  const odharness::Experiment* experiment = registry.Resolve(query, &matches);
  if (experiment == nullptr) {
    if (matches.size() > 1) {
      std::fprintf(stderr, "odbench: '%s' is ambiguous:\n", query.c_str());
      for (const std::string& match : matches) {
        std::fprintf(stderr, "  %s\n", match.c_str());
      }
    } else {
      std::fprintf(stderr,
                   "odbench: unknown experiment '%s' (try: odbench list)\n",
                   query.c_str());
    }
    return 64;
  }
  return RunOne(*experiment, options);
}
