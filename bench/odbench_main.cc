// odbench — the single runner binary behind every experiment in the
// evaluation suite.  Replaces the per-figure bench mains: each former main
// is now a registration stub (see ODBENCH_EXPERIMENT) and this binary
// lists/runs them, parallelizes their trials and sweeps, and writes a JSON
// artifact per experiment.
//
//   odbench list
//       Show every registered experiment with its description.
//   odbench run <name|all> [--trials N] [--seed S] [--jobs J] [--out DIR]
//       Run one experiment (unique prefixes accepted: `run fig04`) or all
//       of them.  --trials/--seed override each trial set's paper defaults;
//       --jobs bounds the total worker count across experiment processes,
//       trial pools, and sweep cells (results are bit-identical to
//       --jobs 1); --out selects the artifact directory (default
//       "artifacts", "none" disables).  Flags and positionals may be
//       interleaved: `odbench run --jobs 4 all` works.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/harness/flags.h"
#include "src/harness/registry.h"
#include "src/harness/scheduler.h"

namespace {

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s list\n"
               "       %s run <name|all> [--trials N] [--seed S] [--jobs J]"
               " [--out DIR]\n",
               prog, prog);
  return 64;
}

int List() {
  const auto experiments = odharness::ExperimentRegistry::Instance().List();
  size_t width = 0;
  for (const odharness::Experiment* experiment : experiments) {
    width = std::max(width, experiment->name.size());
  }
  for (const odharness::Experiment* experiment : experiments) {
    std::printf("%-*s  %s\n", static_cast<int>(width),
                experiment->name.c_str(), experiment->description.c_str());
  }
  std::printf("(%zu experiments)\n", experiments.size());
  return 0;
}

int Main(int argc, char** argv) {
  odharness::Flags flags(argc, argv);
  const auto& positional = flags.positional();
  if (positional.empty()) {
    return Usage(argv[0]);
  }

  // Every subcommand validates its flags; `odbench list --bogus` is an
  // error, not a silently ignored typo.
  const std::string& command = positional[0];
  std::string error;
  if (command == "list") {
    if (positional.size() != 1 || !flags.Validate({}, {}, &error)) {
      if (!error.empty()) {
        std::fprintf(stderr, "odbench: %s\n", error.c_str());
      }
      return Usage(argv[0]);
    }
    return List();
  }
  if (command != "run" || positional.size() != 2) {
    return Usage(argv[0]);
  }
  if (!flags.Validate({"trials", "seed", "jobs", "out"}, {}, &error)) {
    std::fprintf(stderr, "odbench: %s\n", error.c_str());
    return Usage(argv[0]);
  }

  odharness::RunOptions options;
  options.trials = flags.GetInt("trials", 0);
  options.seed = flags.GetUint64("seed", 0);
  options.jobs = flags.GetInt("jobs", 1);
  options.out_dir = flags.GetString("out", "artifacts");
  if (options.out_dir == "none") {
    options.out_dir.clear();
  }
  if (!options.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "odbench: cannot create %s: %s\n",
                   options.out_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }

  auto& registry = odharness::ExperimentRegistry::Instance();
  const std::string& query = positional[1];
  if (query == "all") {
    return odharness::RunExperiments(registry.List(), options);
  }

  std::vector<std::string> matches;
  const odharness::Experiment* experiment = registry.Resolve(query, &matches);
  if (experiment == nullptr) {
    if (matches.size() > 1) {
      std::fprintf(stderr, "odbench: '%s' is ambiguous:\n", query.c_str());
      for (const std::string& match : matches) {
        std::fprintf(stderr, "  %s\n", match.c_str());
      }
    } else {
      std::fprintf(stderr,
                   "odbench: unknown experiment '%s' (try: odbench list)\n",
                   query.c_str());
    }
    return 64;
  }
  return odharness::RunExperiment(*experiment, options);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Main(argc, argv);
  } catch (const odharness::FlagError& e) {
    std::fprintf(stderr, "odbench: %s\n", e.what());
    return Usage(argv[0]);
  }
}
