// odbench — the single runner binary behind every experiment in the
// evaluation suite.  Replaces the per-figure bench mains: each former main
// is now a registration stub (see ODBENCH_EXPERIMENT) and this binary
// lists/runs them, parallelizes their trials and sweeps, and writes a JSON
// artifact per experiment.
//
//   odbench list
//       Show every registered experiment with its description.
//   odbench run <name|all> [--trials N] [--seed S] [--jobs J] [--out DIR]
//       Run one experiment (unique prefixes accepted: `run fig04`) or all
//       of them.  --trials/--seed override each trial set's paper defaults;
//       --jobs bounds the total worker count across experiment processes,
//       trial pools, and sweep cells (results are bit-identical to
//       --jobs 1); --out selects the artifact directory (default
//       "artifacts", "none" disables).  --compact writes single-line
//       artifact JSON (the committed golden fixtures use it);
//       --experiment-timeout SIGKILLs any forked run-all child that
//       exceeds the per-experiment wall-clock budget (reported as rc 124);
//       --fault-plan offers an odfault disturbance spec (see
//       src/fault/fault_plan.h) to fault-aware experiments; --scenario
//       restricts scenario-aware experiments (scenario_sweep) to one named
//       user-behavior scenario (see src/scenario/library.h).  Flags and
//       positionals may be interleaved: `odbench run --jobs 4 all` works.
//   odbench diff <a.json> <b.json> [--rtol R] [--atol A]
//       Structurally compare two run artifacts (sets by label, notes by
//       key).  Exit 0: identical measurements; 1: numeric drift, all
//       within |a-b| <= atol + rtol*max(|a|,|b|); 2: out-of-tolerance or
//       structural changes; 64: usage; 66: unreadable artifact.
//   odbench diff --traces <a.trace.json> <b.trace.json>
//           [--rtol R] [--atol A] [--max-shift S]
//       Shape-level comparison of two power-trace documents (written by
//       `run --trace`): step functions are walked along merged segment
//       boundaries; divergent windows no longer than --max-shift seconds
//       count as drift (boundary jitter), longer ones as regression.  Same
//       exit codes as the scalar diff.

#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/calibration.h"
#include "src/fault/fault_plan.h"
#include "src/harness/artifact_diff.h"
#include "src/harness/flags.h"
#include "src/harness/registry.h"
#include "src/harness/scheduler.h"
#include "src/scenario/library.h"
#include "src/trace/trace_diff.h"

namespace {

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s list\n"
               "       %s run <name|all> [--trials N] [--seed S] [--jobs J]"
               " [--out DIR]\n"
               "           [--compact] [--experiment-timeout SECONDS]"
               " [--fault-plan SPEC] [--trace]\n"
               "           [--scenario NAME]\n"
               "       %s diff <a.json> <b.json> [--rtol R] [--atol A]\n"
               "       %s diff --traces <a.trace.json> <b.trace.json>"
               " [--rtol R] [--atol A]\n"
               "           [--max-shift SECONDS]\n",
               prog, prog, prog, prog);
  return 64;
}

int List() {
  const auto experiments = odharness::ExperimentRegistry::Instance().List();
  size_t width = 0;
  for (const odharness::Experiment* experiment : experiments) {
    width = std::max(width, experiment->name.size());
  }
  for (const odharness::Experiment* experiment : experiments) {
    std::printf("%-*s  %s\n", static_cast<int>(width),
                experiment->name.c_str(), experiment->description.c_str());
  }
  std::printf("(%zu experiments)\n", experiments.size());
  return 0;
}

int DiffTraces(const odharness::Flags& flags, const char* prog) {
  const auto& positional = flags.positional();
  // The flag grammar binds a bare word right after `--traces` as its
  // value, so `diff --traces a.json b.json` parses as traces=a.json with
  // one positional path; accept that form alongside the trailing-switch
  // spelling `diff a.json b.json --traces`.
  std::vector<std::string> paths(positional.begin() + 1, positional.end());
  const std::string bound = flags.GetString("traces", "");
  if (!bound.empty()) {
    paths.insert(paths.begin(), bound);
  }
  std::string error;
  const bool flags_ok =
      flags.Validate({"rtol", "atol", "max-shift", "traces"}, {}, &error) ||
      flags.Validate({"rtol", "atol", "max-shift"}, {"traces"}, &error);
  if (paths.size() != 2 || !flags_ok) {
    if (!flags_ok && !error.empty()) {
      std::fprintf(stderr, "odbench: %s\n", error.c_str());
    }
    return Usage(prog);
  }
  odtrace::TraceDiffOptions options;
  options.rtol = flags.GetDouble("rtol", 0.0);
  options.atol = flags.GetDouble("atol", 0.0);
  const double max_shift_seconds = flags.GetDouble("max-shift", 0.0);
  if (max_shift_seconds < 0) {
    std::fprintf(stderr, "odbench: --max-shift must be >= 0\n");
    return Usage(prog);
  }
  options.max_shift_us = static_cast<int64_t>(max_shift_seconds * 1e6);

  auto read = [](const std::string& path)
      -> std::optional<odtrace::TraceArtifact> {
    auto artifact = odtrace::TraceArtifact::ReadFile(path);
    if (!artifact.has_value()) {
      std::fprintf(stderr, "odbench: cannot read trace artifact %s\n",
                   path.c_str());
    }
    return artifact;
  };
  auto a = read(paths[0]);
  auto b = read(paths[1]);
  if (!a.has_value() || !b.has_value()) {
    return 66;  // EX_NOINPUT
  }

  odtrace::TraceDiff diff = odtrace::DiffTraceArtifacts(*a, *b, options);
  odtrace::PrintTraceDiff(diff, stdout);
  return diff.ExitCode();
}

int Diff(const odharness::Flags& flags, const char* prog) {
  if (flags.Has("traces")) {
    return DiffTraces(flags, prog);
  }
  const auto& positional = flags.positional();
  std::string error;
  if (positional.size() != 3 || !flags.Validate({"rtol", "atol"}, {}, &error)) {
    if (!error.empty()) {
      std::fprintf(stderr, "odbench: %s\n", error.c_str());
    }
    return Usage(prog);
  }
  odharness::DiffOptions options;
  options.rtol = flags.GetDouble("rtol", 0.0);
  options.atol = flags.GetDouble("atol", 0.0);

  auto read = [](const std::string& path)
      -> std::optional<odharness::RunArtifact> {
    auto artifact = odharness::RunArtifact::ReadFile(path);
    if (!artifact.has_value()) {
      std::fprintf(stderr, "odbench: cannot read artifact %s\n", path.c_str());
    }
    return artifact;
  };
  auto a = read(positional[1]);
  auto b = read(positional[2]);
  if (!a.has_value() || !b.has_value()) {
    return 66;  // EX_NOINPUT
  }

  odharness::ArtifactDiff diff = odharness::DiffArtifacts(*a, *b, options);
  odharness::PrintArtifactDiff(diff, stdout);
  return diff.ExitCode();
}

int Main(int argc, char** argv) {
  // Stamp the application-layer calibration constants into every artifact's
  // provenance before anything runs (children inherit this across fork).
  odharness::SetProvenanceCalibration(odapps::CalibrationConstants());

  odharness::Flags flags(argc, argv);
  const auto& positional = flags.positional();
  if (positional.empty()) {
    return Usage(argv[0]);
  }

  // Every subcommand validates its flags; `odbench list --bogus` is an
  // error, not a silently ignored typo.
  const std::string& command = positional[0];
  std::string error;
  if (command == "list") {
    if (positional.size() != 1 || !flags.Validate({}, {}, &error)) {
      if (!error.empty()) {
        std::fprintf(stderr, "odbench: %s\n", error.c_str());
      }
      return Usage(argv[0]);
    }
    return List();
  }
  if (command == "diff") {
    return Diff(flags, argv[0]);
  }
  if (command != "run" || positional.size() != 2) {
    return Usage(argv[0]);
  }
  if (!flags.Validate(
          {"trials", "seed", "jobs", "out", "experiment-timeout",
           "fault-plan", "scenario"},
          {"compact", "trace"}, &error)) {
    std::fprintf(stderr, "odbench: %s\n", error.c_str());
    return Usage(argv[0]);
  }

  odharness::RunOptions options;
  options.trials = flags.GetInt("trials", 0);
  options.seed = flags.GetUint64("seed", 0);
  options.jobs = flags.GetInt("jobs", 1);
  options.out_dir = flags.GetString("out", "artifacts");
  options.compact_artifacts = flags.Has("compact");
  options.trace = flags.Has("trace");
  options.experiment_timeout_seconds =
      flags.GetDouble("experiment-timeout", 0.0);
  if (options.experiment_timeout_seconds < 0) {
    std::fprintf(stderr, "odbench: --experiment-timeout must be >= 0\n");
    return Usage(argv[0]);
  }
  options.fault_plan = flags.GetString("fault-plan", "");
  if (!options.fault_plan.empty()) {
    odfault::FaultPlan plan;
    if (!odfault::FaultPlan::Parse(options.fault_plan, &plan, &error)) {
      std::fprintf(stderr, "odbench: --fault-plan: %s\n", error.c_str());
      return Usage(argv[0]);
    }
    options.fault_plan = plan.ToString();  // Canonical spelling everywhere.
  }
  options.scenario = flags.GetString("scenario", "");
  if (!options.scenario.empty() &&
      odscenario::FindScenario(options.scenario) == nullptr) {
    std::fprintf(stderr, "odbench: unknown scenario '%s'; known scenarios:\n",
                 options.scenario.c_str());
    for (const std::string& name : odscenario::ScenarioNames()) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return Usage(argv[0]);
  }
  if (options.out_dir == "none") {
    options.out_dir.clear();
  }
  if (!options.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "odbench: cannot create %s: %s\n",
                   options.out_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }

  auto& registry = odharness::ExperimentRegistry::Instance();
  const std::string& query = positional[1];
  if (query == "all") {
    return odharness::RunExperiments(registry.List(), options);
  }

  std::vector<std::string> matches;
  const odharness::Experiment* experiment = registry.Resolve(query, &matches);
  if (experiment == nullptr) {
    if (matches.size() > 1) {
      std::fprintf(stderr, "odbench: '%s' is ambiguous:\n", query.c_str());
      for (const std::string& match : matches) {
        std::fprintf(stderr, "  %s\n", match.c_str());
      }
    } else {
      std::fprintf(stderr,
                   "odbench: unknown experiment '%s' (try: odbench list)\n",
                   query.c_str());
    }
    return 64;
  }
  return odharness::RunExperiment(*experiment, options);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Main(argc, argv);
  } catch (const odharness::FlagError& e) {
    std::fprintf(stderr, "odbench: %s\n", e.what());
    return Usage(argv[0]);
  }
}
