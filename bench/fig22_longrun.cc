// Regenerates Figure 22: longer-duration goal-directed adaptation — a
// 90,000 J supply, an initial goal of 2:45 hours extended by 30 minutes at
// the end of the first hour, and a stochastic bursty workload (Section 5.4);
// five trials with different random seeds.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"
#include "src/util/table.h"

using namespace odapps;

ODBENCH_EXPERIMENT_COST(fig22_longrun,
                        "Figure 22: longer-duration goal-directed adaptation "
                        "(bursty workload, goal extension)",
                        400) {
  odfault::FaultPlan plan = odbench::PlanFromContext(ctx);
  if (!plan.empty()) {
    std::printf("Disturbance plan: %s\n", plan.ToString().c_str());
  }
  odutil::Table table(
      "Figure 22: Longer-duration goal-directed adaptation (90,000 J; goal "
      "2:45 h, +30 min at the end of the first hour; bursty workload)");
  table.SetHeader({"Trial", "Goal Met", "Residual (J)", "Adapt Speech",
                   "Adapt Video", "Adapt Map", "Adapt Web"});

  odharness::TrialSet set = ctx.RunTrials("trials", 5, 22001, [&plan](uint64_t seed) {
    GoalScenarioOptions options;
    options.bursty = true;
    options.initial_joules = 90000.0;
    options.goal = odsim::SimDuration::Seconds(9900);  // 2:45 hours.
    options.extend_at = odsim::SimDuration::Seconds(3600);
    options.extend_by = odsim::SimDuration::Seconds(1800);
    options.seed = seed;
    options.fault_plan = plan;
    GoalScenarioResult result = RunGoalScenario(options);
    odharness::TrialSample sample;
    sample.value = result.residual_joules;
    sample.breakdown["goal_met"] = result.goal_met ? 1.0 : 0.0;
    for (const auto& [app, count] : result.adaptations) {
      sample.breakdown[app] = count;
    }
    return sample;
  });

  for (size_t i = 0; i < set.trials.size(); ++i) {
    const odharness::TrialSample& trial = set.trials[i];
    auto count = [&](const char* app) {
      auto it = trial.breakdown.find(app);
      return std::to_string(
          static_cast<int>(it != trial.breakdown.end() ? it->second : 0.0));
    };
    table.AddRow({std::to_string(i + 1),
                  trial.breakdown.at("goal_met") > 0.0 ? "Yes" : "No",
                  odutil::Table::Num(trial.value, 0), count("Speech"),
                  count("Video"), count("Map"), count("Web")});
  }
  table.Print();
  std::printf(
      "Paper: the goal was met in all five trials despite the bursty\n"
      "workload; four of five trials ended with residual energy below 1%% of\n"
      "the supply (the fifth at 2.8%%), and the longer horizon plus larger\n"
      "hysteresis zone yields fewer adaptations than Figure 20.\n");
  return 0;
}
