// Regenerates Figure 22: longer-duration goal-directed adaptation — a
// 90,000 J supply, an initial goal of 2:45 hours extended by 30 minutes at
// the end of the first hour, and a stochastic bursty workload (Section 5.4);
// five trials with different random seeds.

#include <cstdio>

#include "src/apps/goal_scenario.h"
#include "src/util/table.h"

using namespace odapps;

int main() {
  odutil::Table table(
      "Figure 22: Longer-duration goal-directed adaptation (90,000 J; goal "
      "2:45 h, +30 min at the end of the first hour; bursty workload)");
  table.SetHeader({"Trial", "Goal Met", "Residual (J)", "Adapt Speech",
                   "Adapt Video", "Adapt Map", "Adapt Web"});

  for (uint64_t trial = 1; trial <= 5; ++trial) {
    GoalScenarioOptions options;
    options.bursty = true;
    options.initial_joules = 90000.0;
    options.goal = odsim::SimDuration::Seconds(9900);  // 2:45 hours.
    options.extend_at = odsim::SimDuration::Seconds(3600);
    options.extend_by = odsim::SimDuration::Seconds(1800);
    options.seed = 22000 + trial;
    GoalScenarioResult result = RunGoalScenario(options);
    table.AddRow({std::to_string(trial), result.goal_met ? "Yes" : "No",
                  odutil::Table::Num(result.residual_joules, 0),
                  std::to_string(result.adaptations.at("Speech")),
                  std::to_string(result.adaptations.at("Video")),
                  std::to_string(result.adaptations.at("Map")),
                  std::to_string(result.adaptations.at("Web"))});
  }
  table.Print();
  std::printf(
      "Paper: the goal was met in all five trials despite the bursty\n"
      "workload; four of five trials ended with residual energy below 1%% of\n"
      "the supply (the fifth at 2.8%%), and the longer horizon plus larger\n"
      "hysteresis zone yields fewer adaptations than Figure 20.\n");
  return 0;
}
