// Regenerates Figure 19: supply and estimated demand over time, plus the
// fidelity trace of each application, for 20- and 26-minute battery
// duration goals (composite workload every 25 s + background video).

// Pass a directory as argv[1] to additionally dump each run's supply/demand
// series as CSV (fig19_goal_<seconds>.csv) for external plotting.

#include <cstdio>
#include <string>

#include "src/apps/goal_scenario.h"
#include "src/util/csv.h"
#include "src/util/table.h"

using namespace odapps;

namespace {

void PrintRun(double goal_seconds, const char* csv_dir) {
  GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(goal_seconds);
  options.seed = 19;
  GoalScenarioResult result = RunGoalScenario(options);

  if (csv_dir != nullptr) {
    std::string path = std::string(csv_dir) + "/fig19_goal_" +
                       std::to_string(static_cast<int>(goal_seconds)) + ".csv";
    odutil::CsvWriter csv(path);
    if (csv.ok()) {
      csv.WriteRow({"t_seconds", "supply_joules", "demand_joules"});
      for (const odenergy::TimelinePoint& point : result.timeline) {
        csv.WriteNumericRow(
            {point.time.seconds(), point.residual_joules, point.demand_joules});
      }
      std::printf("(wrote %s)\n", path.c_str());
    } else {
      std::fprintf(stderr, "could not open %s\n", path.c_str());
    }
  }

  std::printf("--- Goal: %.0f minutes (initial supply %.0f J) ---\n",
              goal_seconds / 60.0, options.initial_joules);
  std::printf("outcome: %s at t=%.0f s, residual %.0f J (%.1f%% of supply)\n",
              result.goal_met ? "goal met" : "supply exhausted",
              result.elapsed_seconds, result.residual_joules,
              100.0 * result.residual_joules / options.initial_joules);

  // Supply/demand series, downsampled to 60-second steps.
  std::printf("\n  t(s)   supply(J)   demand(J)\n");
  double next_print = 0.0;
  for (const odenergy::TimelinePoint& point : result.timeline) {
    if (point.time.seconds() >= next_print) {
      std::printf("%6.0f %11.0f %11.0f\n", point.time.seconds(),
                  point.residual_joules, point.demand_joules);
      next_print += 60.0;
    }
  }

  // Fidelity traces.
  for (const char* app : {"Speech", "Video", "Map", "Web"}) {
    std::printf("\n%s fidelity changes (level after change):", app);
    const auto& changes = result.fidelity_traces.at(app);
    if (changes.empty()) {
      std::printf(" none (stayed at level %d)", result.final_fidelity.at(app));
    }
    for (const odenergy::FidelityChange& change : changes) {
      std::printf(" %0.0fs->%d", change.time.seconds(), change.level);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const char* csv_dir = argc > 1 ? argv[1] : nullptr;
  std::printf(
      "Figure 19: Example of goal-directed adaptation.\n"
      "Estimated demand should track supply closely for both goals; the\n"
      "tighter goal runs lower-priority applications at lower fidelity, and\n"
      "adaptations grow more frequent as energy drains.\n\n");
  PrintRun(1200.0, csv_dir);
  PrintRun(1560.0, csv_dir);
  return 0;
}
