// Regenerates Figure 19: supply and estimated demand over time, plus the
// fidelity trace of each application, for 20- and 26-minute battery
// duration goals (composite workload every 25 s + background video).  A
// third rung replays the background_sync scenario on a generous budget;
// being adaptation-free, its power profile is the one fig19 trace pinned
// as a hard golden.
//
// When odbench runs with an --out directory, each run's supply/demand
// series is also dumped as CSV (fig19_goal_<seconds>.csv) for external
// plotting.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"
#include "src/scenario/driver.h"
#include "src/scenario/library.h"
#include "src/trace/trace_artifact.h"
#include "src/util/check.h"
#include "src/util/csv.h"
#include "src/util/table.h"

using namespace odapps;

namespace {

void PrintRun(odharness::RunContext& ctx, double goal_seconds,
              const odfault::FaultPlan& plan) {
  GoalScenarioOptions options;
  options.goal = odsim::SimDuration::Seconds(goal_seconds);
  options.seed = 19;
  options.fault_plan = plan;
  GoalScenarioResult result = RunGoalScenario(options);

  const std::string goal_label =
      "goal_" + std::to_string(static_cast<int>(goal_seconds));
  if (!ctx.out_dir().empty()) {
    std::string path = ctx.out_dir() + "/fig19_" + goal_label + ".csv";
    odutil::CsvWriter csv(path);
    if (csv.ok()) {
      csv.WriteRow(
          {"t_seconds", "supply_joules", "demand_joules", "health"});
      for (const odenergy::TimelinePoint& point : result.timeline) {
        csv.WriteNumericRow({point.time.seconds(), point.residual_joules,
                             point.demand_joules,
                             static_cast<double>(point.health)});
      }
      std::printf("(wrote %s)\n", path.c_str());
    } else {
      std::fprintf(stderr, "could not open %s\n", path.c_str());
    }
  }

  odharness::TrialSample sample;
  sample.value = result.residual_joules;
  sample.breakdown["goal_met"] = result.goal_met ? 1.0 : 0.0;
  sample.breakdown["elapsed_seconds"] = result.elapsed_seconds;
  for (const auto& [app, count] : result.adaptations) {
    sample.breakdown["adaptations_" + app] = count;
  }
  if (!plan.empty()) {
    sample.breakdown["safe_mode_seconds"] = result.safe_mode_seconds;
    sample.breakdown["safe_mode_entries"] = result.safe_mode_entries;
    sample.breakdown["invalid_samples"] = result.invalid_samples;
    sample.breakdown["outage_clamps"] = result.outage_clamps;
    sample.breakdown["estimated_residual_joules"] =
        result.estimated_residual_joules;
  }
  ctx.Record(goal_label, options.seed, std::move(sample));

  std::printf("--- Goal: %.0f minutes (initial supply %.0f J) ---\n",
              goal_seconds / 60.0, options.initial_joules);
  std::printf("outcome: %s at t=%.0f s, residual %.0f J (%.1f%% of supply)\n",
              result.goal_met ? "goal met" : "supply exhausted",
              result.elapsed_seconds, result.residual_joules,
              100.0 * result.residual_joules / options.initial_joules);
  if (!plan.empty()) {
    std::printf(
        "controller: %d safe-mode episode(s), %.1f s in safe mode, %d invalid "
        "sample(s), %d outage clamp(s), estimated residual %.0f J (true "
        "%.0f J)\n",
        result.safe_mode_entries, result.safe_mode_seconds,
        result.invalid_samples, result.outage_clamps,
        result.estimated_residual_joules, result.residual_joules);
  }

  // Supply/demand series, downsampled to 60-second steps.
  std::printf("\n  t(s)   supply(J)   demand(J)\n");
  double next_print = 0.0;
  for (const odenergy::TimelinePoint& point : result.timeline) {
    if (point.time.seconds() >= next_print) {
      std::printf("%6.0f %11.0f %11.0f\n", point.time.seconds(),
                  point.residual_joules, point.demand_joules);
      next_print += 60.0;
    }
  }

  // Fidelity traces.
  for (const char* app : {"Speech", "Video", "Map", "Web"}) {
    std::printf("\n%s fidelity changes (level after change):", app);
    const auto& changes = result.fidelity_traces.at(app);
    if (changes.empty()) {
      std::printf(" none (stayed at level %d)", result.final_fidelity.at(app));
    }
    for (const odenergy::FidelityChange& change : changes) {
      std::printf(" %0.0fs->%d", change.time.seconds(), change.level);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

// The third rung: the background_sync scenario on a budget so generous the
// director never schedules an adaptation.  With the adaptation schedule out
// of the picture, the power timeline is a pure function of the scenario's
// deterministic behavior trace — the one fig19 profile stable enough to pin
// as a hard trace golden (ROADMAP section 10).  The 20/26-minute rungs
// above stay schedule-sensitive, so only this rung's trace is attached.
void PrintSyncRun(odharness::RunContext& ctx, const odfault::FaultPlan& plan,
                  odtrace::TraceArtifact* traces) {
  const odscenario::Scenario* scenario =
      odscenario::FindScenario("background_sync");
  OD_CHECK_MSG(scenario != nullptr, "scenario library lost background_sync");

  GoalScenarioOptions options;
  options.seed = 19;
  options.goal = scenario->Duration();
  // 12 W x duration: well above the idle-dominated draw, so the goal is
  // met at full fidelity with zero adaptations.
  options.initial_joules = 12.0 * scenario->Duration().seconds();
  options.fault_plan = plan;
  odscenario::ApplyScenarioWorkload(*scenario, &options);
  // The recorder observes draws passively, so the traced run is
  // bit-identical to the untraced one — same artifact either way.
  options.trace = traces != nullptr;
  GoalScenarioResult result = RunGoalScenario(options);

  odharness::TrialSample sample;
  sample.value = result.residual_joules;
  sample.breakdown["goal_met"] = result.goal_met ? 1.0 : 0.0;
  sample.breakdown["elapsed_seconds"] = result.elapsed_seconds;
  sample.breakdown["adaptations"] = result.total_adaptations;
  ctx.Record("goal_sync", options.seed, std::move(sample));
  if (traces != nullptr && result.trace != nullptr) {
    traces->Add("goal_sync", options.seed, *result.trace);
  }

  std::printf(
      "--- Scenario: %s (initial supply %.0f J) ---\n"
      "outcome: %s at t=%.0f s, residual %.0f J, %d adaptation(s)\n\n",
      scenario->name.c_str(), options.initial_joules,
      result.goal_met ? "goal met" : "supply exhausted",
      result.elapsed_seconds, result.residual_joules,
      result.total_adaptations);
}

}  // namespace

ODBENCH_EXPERIMENT(fig19_goal_timeline,
                   "Figure 19: goal-directed adaptation timelines for 20- and "
                   "26-minute goals") {
  odfault::FaultPlan plan = odbench::PlanFromContext(ctx);
  std::printf(
      "Figure 19: Example of goal-directed adaptation.\n"
      "Estimated demand should track supply closely for both goals; the\n"
      "tighter goal runs lower-priority applications at lower fidelity, and\n"
      "adaptations grow more frequent as energy drains.\n");
  if (!plan.empty()) {
    std::printf("Disturbance plan: %s\n", plan.ToString().c_str());
  }
  std::printf("\n");
  odtrace::TraceArtifact traces;
  odtrace::TraceArtifact* traces_ptr = ctx.trace_enabled() ? &traces : nullptr;
  PrintRun(ctx, 1200.0, plan);
  PrintRun(ctx, 1560.0, plan);
  PrintSyncRun(ctx, plan, traces_ptr);
  if (traces_ptr != nullptr) {
    odtrace::AttachTraceArtifact(ctx, std::move(traces));
  }
  return 0;
}
