// Regenerates Figure 21: sensitivity of goal-directed adaptation to the
// smoothing half-life (1%, 5%, 10%, 15% of time remaining), on a 13,000 J
// supply: goal-met percentage, residual energy, and adaptation count.

#include <cstdio>

#include "src/apps/goal_scenario.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace odapps;

int main() {
  odutil::Table table(
      "Figure 21: Sensitivity to half-life (13,000 J supply, 1320 s goal; "
      "5 trials per row; mean (stddev))");
  table.SetHeader({"Half-Life", "Goal Met", "Residual (J)", "Adaptations"});

  for (double fraction : {0.01, 0.05, 0.10, 0.15}) {
    int met = 0;
    odutil::RunningStats residual, adaptations;
    for (uint64_t trial = 0; trial < 5; ++trial) {
      GoalScenarioOptions options;
      options.initial_joules = 13000.0;
      options.goal = odsim::SimDuration::Seconds(1320);
      options.director.half_life_fraction = fraction;
      options.seed = 21000 + trial;
      GoalScenarioResult result = RunGoalScenario(options);
      if (result.goal_met) {
        ++met;
      }
      residual.Add(result.residual_joules);
      adaptations.Add(result.total_adaptations);
    }
    table.AddRow({odutil::Table::Num(fraction, 2), odutil::Table::Pct(met / 5.0, 0),
                  odutil::Table::MeanStd(residual.mean(), residual.stddev(), 1),
                  odutil::Table::MeanStd(adaptations.mean(),
                                         adaptations.stddev(), 1)});
  }
  table.Print();
  std::printf(
      "Paper: a 1%% half-life is clearly too unstable — the system produces\n"
      "the largest residue and adapts excessively; as the half-life grows the\n"
      "system becomes more stable, at the risk of insufficient agility (the\n"
      "paper's 15%% row missed its goal in one trial).  10%% is the chosen\n"
      "operating point.\n");
  return 0;
}
