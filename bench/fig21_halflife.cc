// Regenerates Figure 21: sensitivity of goal-directed adaptation to the
// smoothing half-life (1%, 5%, 10%, 15% of time remaining), on a 13,000 J
// supply: goal-met percentage, residual energy, and adaptation count.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace odapps;

ODBENCH_EXPERIMENT_COST(fig21_halflife,
                        "Figure 21: sensitivity to the smoothing half-life "
                        "(1-15% of time remaining)",
                        250) {
  odfault::FaultPlan plan = odbench::PlanFromContext(ctx);
  if (!plan.empty()) {
    std::printf("Disturbance plan: %s\n", plan.ToString().c_str());
  }
  odutil::Table table(
      "Figure 21: Sensitivity to half-life (13,000 J supply, 1320 s goal; "
      "5 trials per row; mean (stddev))");
  table.SetHeader({"Half-Life", "Goal Met", "Residual (J)", "Adaptations"});

  for (double fraction : {0.01, 0.05, 0.10, 0.15}) {
    odharness::TrialSet set = ctx.RunTrials(
        "half_life_" + odutil::Table::Num(fraction, 2), 5, 21000,
        [&](uint64_t seed) {
          GoalScenarioOptions options;
          options.initial_joules = 13000.0;
          options.goal = odsim::SimDuration::Seconds(1320);
          options.director.half_life_fraction = fraction;
          options.seed = seed;
          options.fault_plan = plan;
          GoalScenarioResult result = RunGoalScenario(options);
          odharness::TrialSample sample;
          sample.value = result.residual_joules;
          sample.breakdown["goal_met"] = result.goal_met ? 1.0 : 0.0;
          sample.breakdown["adaptations"] = result.total_adaptations;
          return sample;
        });
    const odutil::Summary& adaptations =
        set.breakdown_summaries.at("adaptations");
    table.AddRow({odutil::Table::Num(fraction, 2),
                  odutil::Table::Pct(set.Mean("goal_met"), 0),
                  odutil::Table::MeanStd(set.summary.mean, set.summary.stddev, 1),
                  odutil::Table::MeanStd(adaptations.mean, adaptations.stddev,
                                         1)});
  }
  table.Print();
  std::printf(
      "Paper: a 1%% half-life is clearly too unstable — the system produces\n"
      "the largest residue and adapts excessively; as the half-life grows the\n"
      "system becomes more stable, at the risk of insufficient agility (the\n"
      "paper's 15%% row missed its goal in one trial).  10%% is the chosen\n"
      "operating point.\n");
  return 0;
}
