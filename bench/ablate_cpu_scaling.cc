// Ablation: "slowing the CPU" (the hardware power-management technique the
// paper cites alongside disk spin-down) versus race-to-idle, on the speech
// workload — the most CPU-bound application.
//
// The classic dynamic-voltage-scaling argument says slower clocks save CPU
// energy cubically; but on a platform whose display/motherboard draw
// dominates, stretching the runtime buys that CPU saving at the cost of
// more platform energy.  This bench shows where the crossover falls.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/testbed.h"
#include "src/harness/sweep_runner.h"
#include "src/util/table.h"

using namespace odapps;

namespace {

struct Row {
  double speed;
  double total_joules;
  double cpu_joules;
  double seconds;
};

Row Measure(double speed, bool display_off) {
  TestBed bed(TestBed::Options{.seed = 77, .hw_pm = true, .link = {}});
  bed.laptop().SetCpuSpeed(speed);
  if (!display_off) {
    bed.arbiter().Acquire();  // Pin the display bright (interactive user).
  }
  bed.sim().RunUntil(odsim::SimTime::Seconds(15));
  auto m = bed.Measure([&](odsim::EventFn done) {
    bed.speech().Recognize(StandardUtterances()[3], std::move(done));
  });
  return Row{speed, m.joules, m.Component("CPU"), m.seconds};
}

}  // namespace

ODBENCH_EXPERIMENT(ablate_cpu_scaling,
                   "Ablation: CPU clock scaling vs race-to-idle on the "
                   "speech workload") {
  // The full clock ladder (2 display states x 4 speeds) is one sweep:
  // every cell builds its own TestBed, so the eight measurements run
  // concurrently under --jobs.
  odharness::Sweep sweep(ctx);
  size_t cells[2][4];
  const double speeds[] = {1.0, 0.75, 0.5, 0.33};
  for (int d = 0; d < 2; ++d) {
    const bool display_off = d == 0;
    for (int s = 0; s < 4; ++s) {
      const double speed = speeds[s];
      char label[64];
      std::snprintf(label, sizeof(label), "%s/clock%.0f%%",
                    display_off ? "display_off" : "display_bright",
                    100.0 * speed);
      cells[d][s] = sweep.Add(label, 77, [speed, display_off] {
        Row row = Measure(speed, display_off);
        return odharness::TrialSample{row.total_joules,
                                      {{"cpu_joules", row.cpu_joules},
                                       {"wall_seconds", row.seconds}}};
      });
    }
  }
  sweep.Run();

  for (int d = 0; d < 2; ++d) {
    const bool display_off = d == 0;
    odutil::Table table(display_off
                            ? "CPU scaling, speech recognition (display off — the "
                              "paper's speech configuration)"
                            : "CPU scaling, speech recognition (display bright — "
                              "interactive)");
    table.SetHeader({"Clock", "Total (J)", "CPU (J)", "Wall (s)"});
    for (int s = 0; s < 4; ++s) {
      const odharness::TrialSample& sample = sweep.Sample(cells[d][s]);
      table.AddRow({odutil::Table::Pct(speeds[s], 0),
                    odutil::Table::Num(sample.value, 1),
                    odutil::Table::Num(sample.breakdown.at("cpu_joules"), 1),
                    odutil::Table::Num(sample.breakdown.at("wall_seconds"), 1)});
    }
    table.Print();
  }
  std::printf(
      "CPU energy falls with the clock (cubic power, linear slowdown), but\n"
      "total energy rises again once the platform's fixed draw dominates the\n"
      "stretched runtime.  With the display off a moderate slowdown (~75%%)\n"
      "wins; with the display bright the crossover moves toward full speed\n"
      "and race-to-idle is essentially optimal.  Either way the savings are\n"
      "bounded by background power — which is why the paper's client adapts\n"
      "fidelity (do less work) rather than clock speed (do it slower).\n");
  return 0;
}
