// Degradation curve under the odfault disturbance ladder: the fixed
// adaptive workload (browse + map + looping video, see
// src/fault/fault_scenario.h) run under fault plans of increasing
// severity.  The measured claim is graceful degradation: every rung keeps
// the workload live (completed = 1), useful work falls monotonically-ish
// with severity instead of collapsing, and the outage rungs clamp to
// lowest fidelity and recover.
//
// With --fault-plan the ladder is replaced by that single plan (label
// "custom"), which is how a perturbation lands in a diffable artifact.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fault_scenario.h"
#include "src/trace/trace_artifact.h"
#include "src/util/check.h"
#include "src/util/table.h"

namespace {

struct Rung {
  const char* label;
  const char* spec;  // odfault plan grammar; "" = clean baseline.
};

}  // namespace

ODBENCH_EXPERIMENT(fault_sweep,
                   "Degradation curve: adaptive workload under fault plans "
                   "of increasing severity") {
  // Severity ladder: clean baseline, single disturbances, then a storm
  // that overlaps all five fault kinds.  Every window sits inside the
  // 120 s scenario with slack after it, so recovery is part of the record.
  std::vector<Rung> rungs = {
      {"clean", ""},
      {"loss burst", "loss@30+40=0.3"},
      {"bandwidth crash", "bandwidth@30+40=0.1"},
      {"server stall", "stall@30+25"},
      {"disk spike", "disk@30+40=8"},
      {"link outage", "outage@30+25"},
      {"storm",
       "bandwidth@20+30=0.2;loss@35+20=0.3;outage@60+20;stall@85+15;"
       "disk@20+80=4"},
  };
  if (!ctx.options().fault_plan.empty()) {
    rungs = {{"custom", ctx.options().fault_plan.c_str()}};
  }

  // The plan(s) this artifact was disturbed by, in canonical spelling.
  std::string stamped;
  for (const Rung& rung : rungs) {
    odfault::FaultPlan plan;
    std::string error;
    OD_CHECK_MSG(odfault::FaultPlan::Parse(rung.spec, &plan, &error),
                 error.c_str());
    if (plan.empty()) {
      continue;
    }
    if (!stamped.empty()) {
      stamped += " | ";
    }
    stamped += plan.ToString();
  }
  ctx.artifact().provenance.fault_plan = stamped;

  odutil::Table table(
      "Fault sweep: 120 s adaptive workload per plan (3 trials; means)");
  table.SetHeader({"Plan", "Joules", "Pages", "Maps", "Chunks", "Degraded",
                   "Failed", "Clamp s", "Live"});

  int worst = 0;
  for (const Rung& rung : rungs) {
    odfault::FaultPlan plan;
    std::string error;
    OD_CHECK_MSG(odfault::FaultPlan::Parse(rung.spec, &plan, &error),
                 error.c_str());
    odharness::TrialSet set =
        ctx.RunTrials(rung.label, 3, 42000, [&](uint64_t seed) {
          odfault::FaultScenarioOptions options;
          options.seed = seed;
          options.plan = plan;
          options.duration = odsim::SimDuration::Seconds(120);
          odfault::FaultScenarioResult result = RunFaultScenario(options);
          odharness::TrialSample sample;
          sample.value = result.joules;
          sample.breakdown["pages_browsed"] = result.pages_browsed;
          sample.breakdown["maps_viewed"] = result.maps_viewed;
          sample.breakdown["utterances"] = result.utterances_recognized;
          sample.breakdown["chunks_played"] =
              static_cast<double>(result.chunks_played);
          sample.breakdown["chunks_dropped"] =
              static_cast<double>(result.chunks_dropped);
          sample.breakdown["degraded"] =
              result.pages_degraded + result.maps_degraded;
          sample.breakdown["failed_fetches"] = result.failed_fetches;
          sample.breakdown["retransmissions"] = result.retransmissions;
          sample.breakdown["retries_exhausted"] = result.retries_exhausted;
          sample.breakdown["deadlines_exceeded"] = result.deadlines_exceeded;
          sample.breakdown["outage_clamps"] = result.outage_clamps;
          sample.breakdown["clamped_seconds"] = result.clamped_seconds;
          sample.breakdown["min_fidelity"] =
              std::min(result.min_video_fidelity,
                       std::min(result.min_web_fidelity,
                                result.min_map_fidelity));
          sample.breakdown["recovered"] =
              result.clamped_at_end ? 0.0 : 1.0;
          sample.breakdown["completed"] = result.completed ? 1.0 : 0.0;
          return sample;
        });
    // Liveness is the non-negotiable part of the claim: a plan that
    // wedges any loop fails the experiment, not just the table.
    const bool live = set.Mean("completed") == 1.0;
    if (!live) {
      worst = 1;
    }
    table.AddRow({rung.label, odutil::Table::Num(set.summary.mean, 1),
                  odutil::Table::Num(set.Mean("pages_browsed"), 1),
                  odutil::Table::Num(set.Mean("maps_viewed"), 1),
                  odutil::Table::Num(set.Mean("chunks_played"), 1),
                  odutil::Table::Num(set.Mean("degraded"), 1),
                  odutil::Table::Num(set.Mean("failed_fetches"), 1),
                  odutil::Table::Num(set.Mean("clamped_seconds"), 1),
                  live ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "Expected shape: every rung stays live; the outage rungs clamp to\n"
      "fidelity 0 and recover by scenario end; degraded/failed counts grow\n"
      "with severity while energy stays bounded (no retry storms).\n");

  if (ctx.trace_enabled()) {
    // Power-profile signatures: the clean baseline and the harshest
    // single-fault rung (or the custom plan), re-run deterministically at
    // the base seed.  An outage's radio-down / retransmission-recovery
    // shape is exactly what a scalar mean averages away.
    const uint64_t seed = ctx.options().seed > 0 ? ctx.options().seed : 42000;
    odtrace::TraceArtifact traces;
    for (const Rung& rung : rungs) {
      const std::string label = rung.label;
      if (label != "clean" && label != "link outage" && label != "custom") {
        continue;
      }
      odfault::FaultPlan plan;
      std::string error;
      OD_CHECK_MSG(odfault::FaultPlan::Parse(rung.spec, &plan, &error),
                   error.c_str());
      odfault::FaultScenarioOptions options;
      options.seed = seed;
      options.plan = plan;
      options.duration = odsim::SimDuration::Seconds(120);
      options.trace = true;
      odfault::FaultScenarioResult result = RunFaultScenario(options);
      traces.Add(label, seed, *result.trace);
    }
    odtrace::AttachTraceArtifact(ctx, std::move(traces));
  }
  return worst;
}
