// Gauge-drift sweep: residual-estimate error and goal attainment vs. drift
// magnitude, with and without the drift sentinel.
//
// The Figure 20 goal scenario (1320 s goal on 13,500 J) under gauge-scale
// faults.  Sub-plausible magnitudes (1.2x, 1.5x at ~10 W stay under the
// 15 W plausibility bar) sail through PR 5's health validation and silently
// bias the residual estimate by the scale error integrated over the fault
// window; the sentinel arm cross-checks the gauge against the learned
// model and discounts it while drifted.  The implausible 3x rung is the
// complementary case: validation rejects every reading outright in both
// arms, so the sentinel has nothing left to add.  A slow-ramp rung covers
// the drift shape a step detector would miss.
//
// With --trace the sentinel arm's 1.5x rung is re-run deterministically and
// recorded as a fig19-style per-component power profile; its golden lives
// under tests/data/traces/warn/ (warn-only gate: the profile is expected to
// evolve with controller tuning, but a shape change should be *seen*).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/goal_scenario.h"
#include "src/fault/fault_plan.h"
#include "src/harness/sweep_runner.h"
#include "src/trace/trace_artifact.h"
#include "src/util/check.h"
#include "src/util/table.h"

using namespace odapps;

namespace {

struct Rung {
  const char* label;
  const char* spec;       // odfault plan grammar.
  bool sub_plausible;     // Passes PR 5 validation silently.
};

GoalScenarioOptions RungOptions(const odfault::FaultPlan& plan, bool sentinel,
                                uint64_t seed) {
  GoalScenarioOptions options;
  options.seed = seed;
  options.initial_joules = 13500.0;
  options.goal = odsim::SimDuration::Seconds(1320.0);
  options.fault_plan = plan;
  options.learned_model = true;
  options.director.drift_sentinel.enabled = sentinel;
  return options;
}

odharness::TrialSample DriftCell(const GoalScenarioOptions& options) {
  GoalScenarioResult result = RunGoalScenario(options);
  odharness::TrialSample sample;
  sample.value =
      std::abs(result.estimated_residual_joules - result.residual_joules);
  sample.breakdown["goal_met"] = result.goal_met ? 1.0 : 0.0;
  sample.breakdown["residual_pct"] =
      100.0 * result.residual_joules / options.initial_joules;
  sample.breakdown["residual_error_pct"] =
      100.0 *
      std::abs(result.estimated_residual_joules - result.residual_joules) /
      options.initial_joules;
  sample.breakdown["invalid_samples"] = result.invalid_samples;
  sample.breakdown["safe_mode_seconds"] = result.safe_mode_seconds;
  sample.breakdown["drift_entries"] = result.drift_entries;
  sample.breakdown["drift_seconds"] = result.drift_seconds;
  sample.breakdown["detect_latency_s"] =
      result.first_drift_detected_seconds.has_value()
          ? *result.first_drift_detected_seconds
          : -1.0;
  sample.breakdown["adaptations"] = result.total_adaptations;
  sample.breakdown["elapsed_seconds"] = result.elapsed_seconds;
  return sample;
}

}  // namespace

ODBENCH_EXPERIMENT_COST(gauge_drift_sweep,
                        "Residual-estimate error vs gauge-drift magnitude, "
                        "with and without the drift sentinel",
                        600) {
  // Fault windows sit inside the goal with slack after them, so recovery
  // is part of the record.  800 s at 1.2x is a ~1,600 J raw bias; the
  // 1.2x step exceeds max_plausible_watts only at workload peaks, so most
  // of its readings pass validation and the bias accrues silently in the
  // baseline arm.  1.5x is caught at peaks but not in the troughs; 3x is
  // rejected sample-by-sample (the complementary case: the fault window
  // becomes a gauge blackout, and the error both arms carry is the
  // safe-mode accounting drift, which no cross-check can reduce).
  const std::vector<Rung> rungs = {
      {"step 1.2x", "gauge@200+800=1.2", true},
      {"step 1.5x", "gauge@200+800=1.5", true},
      {"step 3x", "gauge@200+800=3", false},
      {"ramp to 1.6x", "ramp@200+800=1.6", true},
  };

  std::vector<odfault::FaultPlan> plans(rungs.size());
  std::string stamped;
  for (size_t i = 0; i < rungs.size(); ++i) {
    std::string error;
    OD_CHECK_MSG(odfault::FaultPlan::Parse(rungs[i].spec, &plans[i], &error),
                 error.c_str());
    if (!stamped.empty()) {
      stamped += " | ";
    }
    stamped += plans[i].ToString();
  }
  ctx.artifact().provenance.fault_plan = stamped;

  odutil::Table table(
      "Gauge drift vs the sentinel (13,500 J, 1320 s goal; 2 trials per "
      "cell; means)");
  table.SetHeader({"Fault", "Sentinel", "Goal Met", "Residual %", "Est Err %",
                   "Invalid", "Safe s", "Drift #", "Detect s"});

  odharness::Sweep sweep(ctx);
  // cells[armed][rung]
  std::vector<std::vector<size_t>> cells(2, std::vector<size_t>(rungs.size()));
  for (int armed = 0; armed <= 1; ++armed) {
    for (size_t i = 0; i < rungs.size(); ++i) {
      const odfault::FaultPlan& plan = plans[i];
      const std::string label =
          std::string(rungs[i].label) + (armed ? " / sentinel" : " / baseline");
      cells[armed][i] = sweep.AddTrials(
          label, 2, 61000 + 100 * i + 10 * armed,
          [&plan, armed](uint64_t seed) {
            return DriftCell(RungOptions(plan, armed == 1, seed));
          });
    }
  }
  sweep.Run();

  int rc = 0;
  for (size_t i = 0; i < rungs.size(); ++i) {
    for (int armed = 0; armed <= 1; ++armed) {
      const odharness::TrialSet& set = sweep.Set(cells[armed][i]);
      table.AddRow(
          {rungs[i].label, armed ? "on" : "off",
           odutil::Table::Pct(set.Mean("goal_met"), 0),
           odutil::Table::Num(set.Mean("residual_pct"), 1),
           odutil::Table::Num(set.Mean("residual_error_pct"), 2),
           odutil::Table::Num(set.Mean("invalid_samples"), 1),
           odutil::Table::Num(set.Mean("safe_mode_seconds"), 1),
           odutil::Table::Num(set.Mean("drift_entries"), 1),
           odutil::Table::Num(set.Mean("detect_latency_s"), 1)});
    }
    const odharness::TrialSet& off = sweep.Set(cells[0][i]);
    const odharness::TrialSet& on = sweep.Set(cells[1][i]);
    if (rungs[i].sub_plausible) {
      // The claim: the sentinel bounds the silent bias (<= 10% of supply)
      // and strictly improves on the unchecked accounting, which carries
      // the full integrated scale error.
      if (on.Mean("residual_error_pct") > 10.0 ||
          on.Mean("residual_error_pct") >= off.Mean("residual_error_pct")) {
        std::printf("FAIL: %s sentinel error %.2f%% not bounded below "
                    "baseline %.2f%%\n",
                    rungs[i].label, on.Mean("residual_error_pct"),
                    off.Mean("residual_error_pct"));
        rc = 1;
      }
      if (on.Mean("drift_entries") < 1.0) {
        std::printf("FAIL: %s sentinel never declared drift\n",
                    rungs[i].label);
        rc = 1;
      }
    } else {
      // Implausible magnitudes are already rejected sample-by-sample, so
      // the fault window is a gauge blackout in both arms and the residual
      // error is the safe-mode accounting drift.  The sentinel sees no
      // valid readings to cross-check; the claim is only that it does not
      // make the blackout worse.
      if (off.Mean("invalid_samples") < 1.0 ||
          on.Mean("residual_error_pct") >
              off.Mean("residual_error_pct") + 1.0) {
        std::printf("FAIL: %s expected validation rejections (got %.0f) "
                    "and sentinel no worse than baseline (%.2f%% vs "
                    "%.2f%%)\n",
                    rungs[i].label, off.Mean("invalid_samples"),
                    on.Mean("residual_error_pct"),
                    off.Mean("residual_error_pct"));
        rc = 1;
      }
    }
  }
  table.Print();
  std::printf(
      "Expected shape: the 1.2x step passes validation everywhere but the\n"
      "workload peaks, so the baseline arm silently absorbs most of the\n"
      "integrated scale error, while the sentinel arm detects within tens\n"
      "of seconds of the window filling, discounts the gauge, and lands\n"
      "well below the baseline's bias.  Harsher rungs are increasingly\n"
      "caught by per-sample validation until 3x, where the fault window is\n"
      "a full gauge blackout in both arms and the sentinel's job is only\n"
      "to do no harm; the ramp shows the slow-onset shape a step detector\n"
      "misses.\n");

  if (ctx.trace_enabled()) {
    // Power-profile signature of the sentinel arm's 1.5x rung, re-run
    // deterministically at the base seed: the drift window must not change
    // the *true* per-component draw (the fault corrupts telemetry, not
    // power), so the profile doubles as a no-actuation-side-effect check.
    const uint64_t seed = ctx.options().seed > 0 ? ctx.options().seed : 61110;
    GoalScenarioOptions options = RungOptions(plans[1], true, seed);
    options.trace = true;
    GoalScenarioResult result = RunGoalScenario(options);
    odtrace::TraceArtifact traces;
    traces.Add("step 1.5x / sentinel", seed, *result.trace);
    odtrace::AttachTraceArtifact(ctx, std::move(traces));
  }
  return rc;
}
