// Regenerates Figure 14: energy to display Image 1 versus user think time
// for three policies, with linear-model fits.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"
#include "src/util/stats.h"

using odapps::RunWebExperiment;
using odapps::StandardWebImages;
using odapps::WebFidelity;

ODBENCH_EXPERIMENT(fig14_web_think,
                   "Figure 14: effect of user think time for Web browsing "
                   "(Image 1, linear fits)") {
  const odapps::WebImage& image = StandardWebImages()[0];  // Image 1.
  const double thinks[] = {0.0, 5.0, 10.0, 20.0};
  struct Policy {
    const char* label;
    WebFidelity fidelity;
    bool hw_pm;
  };
  const Policy policies[] = {
      {"Baseline", WebFidelity::kOriginal, false},
      {"Hardware-Only Power Mgmt.", WebFidelity::kOriginal, true},
      {"Lowest Fidelity", WebFidelity::kJpeg5, true},
  };

  odutil::Table table(
      "Figure 14: Effect of user think time for Web browsing (Image 1; Joules; "
      "mean of 10 trials ±90% CI)");
  table.SetHeader({"Policy", "Think 0 s", "Think 5 s", "Think 10 s", "Think 20 s",
                   "Fit E0 (J)", "Fit slope (W)", "R^2"});

  for (const Policy& policy : policies) {
    std::vector<std::string> row = {policy.label};
    std::vector<double> xs, ys;
    for (double think : thinks) {
      odharness::TrialSet set = ctx.RunTrials(
          std::string(policy.label) + "/think" +
              odutil::Table::Num(think, 0),
          10, 6000, [&](uint64_t seed) {
            return odbench::EnergySample(RunWebExperiment(
                image, policy.fidelity, think, policy.hw_pm, seed));
          });
      row.push_back(odbench::MeanCi(set.summary, 1));
      xs.push_back(think);
      ys.push_back(set.summary.mean);
    }
    odutil::LinearFit fit = odutil::FitLine(xs, ys);
    row.push_back(odutil::Table::Num(fit.intercept, 1));
    row.push_back(odutil::Table::Num(fit.slope, 2));
    row.push_back(odutil::Table::Num(fit.r_squared, 4));
    ctx.Note(std::string(policy.label) + " fit slope (W)", fit.slope);
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "Paper: the linear model fits all three cases; the divergence of the\n"
      "first two lines shows the importance of hardware power management during\n"
      "think time, and the close spacing of the last two reflects the small\n"
      "energy savings available through fidelity reduction.\n");
  return 0;
}
