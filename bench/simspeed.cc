// Simulator core throughput (ROADMAP "simulator core speed").
//
// Runs the fixed seeded workloads in src/apps/simspeed.h — pure event-queue
// churn, the power/energy sampling grid, and a fleet-shaped cell — and
// reports events/sec plus sim-seconds-per-wall-second for each.  The
// deterministic facts (event count, simulated seconds, workload checksum)
// go into the run artifact, which stays byte-identical across machines and
// --jobs; the wall-derived rates go into a BENCH_simspeed.json trajectory
// record instead (src/harness/bench_baseline.h).
//
// Environment:
//   ODBENCH_BENCH_DIR=<dir>       write <dir>/BENCH_simspeed.json
//   ODBENCH_BENCH_BASELINE=<file> compare against a committed baseline and
//                                 exit 3 if any cell's events/sec fell more
//                                 than 20% below it
//   ODBENCH_BENCH_WARN_ONLY=1     demote that failure to a warning (noisy
//                                 shared CI runners)
//
// Run cells serially (the default --jobs is fine: each cell is a single
// trial, and trial sets run one after another), on an otherwise quiet
// machine, when regenerating the committed baseline.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/simspeed.h"
#include "src/harness/bench_baseline.h"
#include "src/util/table.h"

namespace {

constexpr double kMaxLossFraction = 0.20;

struct CellSpec {
  const char* name;
  uint64_t seed;
  odapps::SimspeedCell (*run)(uint64_t seed);
};

const std::vector<CellSpec>& Cells() {
  static const std::vector<CellSpec> kCells = {
      {"queue_churn", 97001, &odapps::RunQueueChurnCell},
      {"monitor_grid", 97002, &odapps::RunMonitorGridCell},
      {"fleet_2k", 97003,
       [](uint64_t seed) { return odapps::RunFleetShapedCell(seed); }},
  };
  return kCells;
}

}  // namespace

ODBENCH_EXPERIMENT_COST(simspeed,
                        "Simulator core throughput: events/sec and "
                        "sim-time/wall-time for fixed seeded workloads",
                        4000) {
  odharness::BenchRecord record;
  record.experiment = ctx.name();

  odutil::Table table(
      "Simulator core throughput (deterministic workloads; rates are "
      "wall-derived and machine-dependent)");
  table.SetHeader({"Cell", "Events", "Sim s", "Wall s", "Events/s",
                   "Sim s / wall s"});

  for (const CellSpec& spec : Cells()) {
    odapps::SimspeedCell cell;
    ctx.RunTrials(spec.name, 1, spec.seed, [&cell, &spec](uint64_t seed) {
      cell = spec.run(seed);
      odharness::TrialSample sample;
      sample.value = static_cast<double>(cell.events);
      sample.breakdown["sim_seconds"] = cell.sim_seconds;
      sample.breakdown["checksum"] = static_cast<double>(cell.checksum);
      return sample;
    });

    odharness::BenchCell bench;
    bench.name = spec.name;
    bench.events = static_cast<double>(cell.events);
    bench.sim_seconds = cell.sim_seconds;
    bench.wall_seconds = cell.wall_seconds;
    bench.events_per_sec =
        cell.wall_seconds > 0.0 ? bench.events / cell.wall_seconds : 0.0;
    bench.sim_per_wall =
        cell.wall_seconds > 0.0 ? cell.sim_seconds / cell.wall_seconds : 0.0;
    bench.checksum = static_cast<double>(cell.checksum);
    record.cells.push_back(bench);

    table.AddRow({spec.name, odutil::Table::Num(bench.events, 0),
                  odutil::Table::Num(bench.sim_seconds, 0),
                  odutil::Table::Num(bench.wall_seconds, 2),
                  odutil::Table::Num(bench.events_per_sec, 0),
                  odutil::Table::Num(bench.sim_per_wall, 1)});
  }
  table.Print();

  if (const char* dir = std::getenv("ODBENCH_BENCH_DIR");
      dir != nullptr && dir[0] != '\0') {
    std::string path = std::string(dir) + "/BENCH_simspeed.json";
    if (!record.WriteFile(path)) {
      std::fprintf(stderr, "simspeed: cannot write %s\n", path.c_str());
      return 74;
    }
    std::printf("Wrote %s\n", path.c_str());
  }

  const char* baseline_path = std::getenv("ODBENCH_BENCH_BASELINE");
  if (baseline_path == nullptr || baseline_path[0] == '\0') {
    return 0;
  }
  std::optional<odharness::BenchRecord> baseline =
      odharness::BenchRecord::ReadFile(baseline_path);
  if (!baseline.has_value()) {
    std::fprintf(stderr, "simspeed: cannot read baseline %s\n", baseline_path);
    return 66;
  }
  std::vector<odharness::BenchRegression> regressions =
      odharness::CompareEventsPerSec(*baseline, record, kMaxLossFraction);
  for (const odharness::BenchRegression& r : regressions) {
    std::printf(
        "REGRESSION %s: %.0f events/s vs baseline %.0f (%.0f%%, limit "
        "-%.0f%%)\n",
        r.cell.c_str(), r.fresh_events_per_sec, r.baseline_events_per_sec,
        100.0 * (r.ratio - 1.0), 100.0 * kMaxLossFraction);
  }
  if (regressions.empty()) {
    std::printf("No events/sec regression against %s (limit -%.0f%%)\n",
                baseline_path, 100.0 * kMaxLossFraction);
    return 0;
  }
  const char* warn_only = std::getenv("ODBENCH_BENCH_WARN_ONLY");
  if (warn_only != nullptr && std::string(warn_only) == "1") {
    std::printf("ODBENCH_BENCH_WARN_ONLY=1: reporting only, not failing\n");
    return 0;
  }
  return 3;
}
