// Regenerates Figure 10: energy to fetch and display four maps at six
// fidelity configurations with five seconds of think time.  Per-process
// columns are cross-trial means.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"

using odapps::MapFidelity;
using odapps::RunMapExperiment;
using odapps::StandardMaps;

namespace {

struct Bar {
  const char* label;
  MapFidelity fidelity;
  bool hw_pm;
};

constexpr Bar kBars[] = {
    {"Baseline", MapFidelity::kFull, false},
    {"Hardware-Only Power Mgmt.", MapFidelity::kFull, true},
    {"Minor Road Filter", MapFidelity::kMinorFilter, true},
    {"Secondary Road Filter", MapFidelity::kSecondaryFilter, true},
    {"Cropped", MapFidelity::kCropped, true},
    {"Cropped + Secondary Filter", MapFidelity::kCroppedSecondary, true},
};

}  // namespace

ODBENCH_EXPERIMENT(fig10_map,
                   "Figure 10: energy impact of fidelity for map viewing "
                   "(6 bars x 4 maps, 5 s think)") {
  odutil::Table table(
      "Figure 10: Energy impact of fidelity for map viewing (Joules; 5 s think "
      "time; mean of 10 trials ±90% CI)");
  table.SetHeader({"Map", "Configuration", "Energy (J)", "Idle", "Anvil",
                   "X Server", "vs Baseline", "vs HW-only"});

  for (const odapps::MapObject& map : StandardMaps()) {
    double baseline_mean = 0.0;
    double hw_mean = 0.0;
    for (const Bar& bar : kBars) {
      odharness::TrialSet set = ctx.RunTrials(
          std::string(map.name) + "/" + bar.label, 10, 3000,
          [&](uint64_t seed) {
            return odbench::EnergySample(
                RunMapExperiment(map, bar.fidelity, 5.0, bar.hw_pm, seed));
          });
      if (bar.fidelity == MapFidelity::kFull) {
        if (!bar.hw_pm) {
          baseline_mean = set.summary.mean;
        } else {
          hw_mean = set.summary.mean;
        }
      }
      table.AddRow({map.name, bar.label, odbench::MeanCi(set.summary, 1),
                    odutil::Table::Num(set.Mean("Idle"), 1),
                    odutil::Table::Num(set.Mean("Anvil"), 1),
                    odutil::Table::Num(set.Mean("X Server"), 1),
                    odutil::Table::Num(set.summary.mean / baseline_mean, 3),
                    hw_mean > 0.0
                        ? odutil::Table::Num(set.summary.mean / hw_mean, 3)
                        : std::string("-")});
    }
    table.AddSeparator();
  }
  table.Print();
  std::printf(
      "Paper: HW-only PM saves 9-19%%; minor filter 6-51%%, secondary filter\n"
      "23-55%%, cropping 14-49%%, cropped+secondary 36-66%% below HW-only\n"
      "(46-70%% below baseline).\n");
  return 0;
}
