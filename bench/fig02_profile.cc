// Regenerates Figure 2: an example PowerScope energy profile — the summary
// table by process and the per-procedure detail for one process — taken
// over a short video-playback session.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/testbed.h"
#include "src/powerscope/profiler.h"

ODBENCH_EXPERIMENT(fig02_profile,
                   "Figure 2: example PowerScope energy profile of a video "
                   "playback session") {
  odapps::TestBed bed;
  odscope::Profiler profiler(&bed.sim(), &bed.laptop().machine());

  profiler.Start();
  bool finished = false;
  bed.video().PlaySegment(odapps::StandardVideoClips()[0],
                          odsim::SimDuration::Seconds(60),
                          [&finished] { finished = true; });
  bed.sim().RunUntil(odsim::SimTime::Seconds(70));
  profiler.Stop();
  if (!finished) {
    std::fprintf(stderr, "playback did not finish\n");
    return 1;
  }

  odscope::EnergyProfile profile = profiler.Correlate();
  std::printf("Figure 2: Example of an energy profile\n");
  std::printf("(60 s of video playback, %zu multimeter samples at 600 Hz)\n\n",
              profiler.sample_count());
  std::printf("%s", profile.Format("xanim").c_str());
  ctx.Note("multimeter_samples", static_cast<double>(profiler.sample_count()));
  return 0;
}
