// Shared helpers for the figure-regeneration experiments.
//
// The paper reports each value as the mean of five (Sections 3.3-3.4) or
// ten (3.5-3.6) trials with a 90% confidence interval; experiments run those
// trials through RunContext::RunTrials (parallel, deterministic) and format
// cells with the helpers here.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/apps/testbed.h"
#include "src/fault/fault_plan.h"
#include "src/harness/registry.h"
#include "src/util/check.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace odbench {

// Adapts a TestBed measurement into a harness trial sample: headline Joules
// plus per-process and per-component energy breakdowns, so trial sets can
// report cross-trial means for every column the figures print.
inline odharness::TrialSample EnergySample(
    const odapps::TestBed::Measurement& m) {
  return odharness::TrialSample{m.joules, m.by_process, m.by_component};
}

// "mean ±ci" cell.
inline std::string MeanCi(const odutil::Summary& s, int precision = 1) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f ±%.*f", precision, s.mean, precision,
                s.ci90_halfwidth);
  return buf;
}

// The disturbance plan this run executes under: --fault-plan if given,
// else `default_spec` (usually "" = clean).  Parses, aborts on a bad spec,
// and stamps the canonical spelling into artifact provenance so every
// fault-aware experiment's artifact records what disturbed it.  Call once
// per experiment, before any trials run.
inline odfault::FaultPlan PlanFromContext(odharness::RunContext& ctx,
                                          const std::string& default_spec = "") {
  const std::string& spec = ctx.options().fault_plan.empty()
                                ? default_spec
                                : ctx.options().fault_plan;
  odfault::FaultPlan plan;
  std::string error;
  OD_CHECK_MSG(odfault::FaultPlan::Parse(spec, &plan, &error), error.c_str());
  ctx.artifact().provenance.fault_plan = plan.ToString();
  return plan;
}

}  // namespace odbench

#endif  // BENCH_BENCH_UTIL_H_
