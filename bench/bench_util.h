// Shared helpers for the figure-regeneration benches.
//
// The paper reports each value as the mean of five (Sections 3.3-3.4) or
// ten (3.5-3.6) trials with a 90% confidence interval; RunTrials mirrors
// that: it evaluates a measurement at `n` distinct seeds and summarizes.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "src/util/stats.h"
#include "src/util/table.h"

namespace odbench {

inline odutil::Summary RunTrials(int n, uint64_t base_seed,
                                 const std::function<double(uint64_t)>& measure) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    samples.push_back(measure(base_seed + static_cast<uint64_t>(i)));
  }
  return odutil::Summarize(samples);
}

// "mean ±ci" cell.
inline std::string MeanCi(const odutil::Summary& s, int precision = 1) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f ±%.*f", precision, s.mean, precision,
                s.ci90_halfwidth);
  return buf;
}

}  // namespace odbench

#endif  // BENCH_BENCH_UTIL_H_
