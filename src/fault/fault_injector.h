// Deterministic fault injection.
//
// The injector schedules every window of a FaultPlan through the simulator
// and applies/reverts the disturbance at the window edges.  Everything runs
// inside simulated time from an explicit plan, so a faulted run is exactly
// as reproducible as a clean one.
//
// Windows of the same kind may overlap (nest): the nominal value is captured
// when the kind first activates, each window start applies its own
// magnitude, and the nominal is restored only when the last window of that
// kind ends.  While nested, the most recently started window's magnitude is
// in effect.

#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <vector>

#include "src/fault/fault_plan.h"
#include "src/net/link.h"
#include "src/net/rpc.h"
#include "src/odyssey/server.h"
#include "src/power/power_manager.h"
#include "src/powerscope/power_monitor.h"
#include "src/sim/simulator.h"

namespace odfault {

// What the injector disturbs.  A target may be null when the plan contains
// no event of the kinds that need it (checked at Arm()).
struct FaultTargets {
  odnet::Link* link = nullptr;            // bandwidth, outage
  odnet::RpcClient* rpc = nullptr;        // loss
  odpower::PowerManager* pm = nullptr;    // disk
  std::vector<odyssey::RemoteServer*> servers;  // stall
  // dropout, stale, nan, gauge, ramp — must expose a TelemetryFaults
  // switchboard.
  odscope::PowerMonitor* monitor = nullptr;
};

class FaultInjector {
 public:
  FaultInjector(odsim::Simulator* sim, FaultTargets targets);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every event of `plan` relative to now.  May be called once.
  void Arm(const FaultPlan& plan);

  // Windows begun so far.
  int windows_begun() const { return windows_begun_; }
  // Windows currently open, across all kinds.
  int active_windows() const;
  bool any_active() const { return active_windows() > 0; }

 private:
  static constexpr int kKindCount = 10;
  static int Index(FaultKind kind) { return static_cast<int>(kind); }

  void Begin(const FaultEvent& event);
  void End(const FaultEvent& event);
  // Advances an active ramp window: interpolates the gauge scale between
  // nominal and the event magnitude at 1 s granularity.
  void RampTick(const FaultEvent& event, odsim::SimTime begin);
  // Open windows that own the gauge-scale knob (step drift + ramp drift).
  int GaugeWindowsActive() const;

  odsim::Simulator* sim_;
  FaultTargets targets_;
  bool armed_ = false;
  int windows_begun_ = 0;
  int active_[kKindCount] = {};
  double nominal_bandwidth_bps_ = 0.0;
  double nominal_loss_probability_ = 0.0;
  double nominal_disk_scale_ = 1.0;
  double nominal_gauge_scale_ = 1.0;
};

}  // namespace odfault

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
