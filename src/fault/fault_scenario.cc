#include "src/fault/fault_scenario.h"

#include <algorithm>
#include <functional>

#include "src/apps/data_objects.h"
#include "src/apps/experiments.h"
#include "src/apps/testbed.h"
#include "src/fault/fault_injector.h"
#include "src/net/bandwidth_monitor.h"
#include "src/odyssey/warden.h"
#include "src/powerscope/online_monitor.h"
#include "src/util/check.h"

namespace odfault {
namespace {

int WardenFailures(odyssey::Viceroy& viceroy, const char* data_type) {
  odyssey::Warden* warden = viceroy.FindWarden(data_type);
  return warden == nullptr ? 0 : warden->failed_fetches();
}

}  // namespace

FaultScenarioResult RunFaultScenario(const FaultScenarioOptions& options) {
  odapps::TestBed bed(odapps::TestBed::Options{
      .seed = options.seed, .hw_pm = true, .link = {}, .trace = options.trace});

  // Bounded retransmission and a per-call deadline: the liveness half of
  // graceful degradation.  Without the deadline an outage would park every
  // fetch on the dead link's queue forever.
  odnet::RpcConfig rpc;
  rpc.retry_timeout = options.retry_timeout;
  rpc.max_retries = options.max_retries;
  rpc.deadline = options.rpc_deadline;
  bed.viceroy().rpc().set_config(rpc);
  bed.viceroy().set_recovery_hysteresis(options.recovery_hysteresis);

  bed.web().set_think_seconds(options.think_seconds);
  bed.map().set_think_seconds(options.think_seconds);

  // Bandwidth expectations drive ordinary adaptation when the channel
  // merely degrades; the health callback drives the clamp when it dies.
  odnet::BandwidthMonitor monitor(&bed.sim(), &bed.link(),
                                  odnet::BandwidthMonitorConfig{});
  monitor.set_callback([&bed](odsim::SimTime, double bps) {
    bed.viceroy().NotifyResourceLevel(odyssey::ResourceId::kNetworkBandwidth, bps);
  });
  monitor.set_health_callback(
      [&bed](odsim::SimTime, const odnet::BandwidthEstimate& estimate) {
        bed.viceroy().NotifyLinkHealth(estimate);
      });
  for (odyssey::AdaptiveApplication* app : bed.viceroy().applications()) {
    bed.viceroy().RegisterExpectation(
        app, odyssey::ResourceId::kNetworkBandwidth, 8.0e5, 1.6e6);
  }

  FaultTargets targets;
  targets.link = &bed.link();
  targets.rpc = &bed.viceroy().rpc();
  targets.pm = &bed.laptop().power_manager();
  for (const char* data_type : {"video", "speech", "map", "web"}) {
    odyssey::Warden* warden = bed.viceroy().FindWarden(data_type);
    if (warden != nullptr) {
      targets.servers.push_back(warden->server());
    }
  }
  // Injection target for telemetry kinds, so any plan the grammar accepts
  // is legal here.  This scenario runs no goal director; the monitor is
  // never started and the faults land on a feed nothing reads.
  odscope::OnlineMonitor idle_monitor(&bed.sim(), &bed.laptop().machine(),
                                      odscope::OnlineMonitorConfig{},
                                      options.seed ^ 0xf00dULL);
  targets.monitor = &idle_monitor;
  FaultInjector injector(&bed.sim(), targets);

  odapps::Settle(bed);
  monitor.Start();
  injector.Arm(options.plan);

  FaultScenarioResult result;
  result.min_video_fidelity = bed.video().current_fidelity();
  result.min_web_fidelity = bed.web().current_fidelity();
  result.min_map_fidelity = bed.map().current_fidelity();

  // Workload: endless page and map loops plus a looping background video.
  // Each loop schedules its next unit from its completion callback, so a
  // unit that degrades (text-only page, cached map) still keeps the loop
  // moving — that is the point.
  std::function<void()> browse = [&] {
    bed.web().BrowsePage(
        odapps::StandardWebImages()[result.pages_browsed % 4], [&] {
          ++result.pages_browsed;
          browse();
        });
  };
  std::function<void()> view = [&] {
    bed.map().ViewMap(odapps::StandardMaps()[result.maps_viewed % 4], [&] {
      ++result.maps_viewed;
      view();
    });
  };
  browse();
  view();
  // Local full-vocabulary recognition pages from disk, so disk-latency
  // faults slow this loop without touching the network ones.
  bed.speech().set_mode(odapps::SpeechMode::kLocal);
  bed.speech().set_vocab_paging(true);
  std::function<void()> recognize = [&] {
    bed.speech().Recognize(
        odapps::StandardUtterances()[result.utterances_recognized % 4], [&] {
          ++result.utterances_recognized;
          bed.sim().Schedule(
              odsim::SimDuration::Seconds(options.think_seconds), recognize);
        });
  };
  recognize();
  bed.video().PlayLooping(odapps::StandardVideoClips()[0]);

  // 1 s sampler for clamp time and fidelity floors.
  std::function<void()> sample = [&] {
    if (bed.viceroy().link_clamped()) {
      result.clamped_seconds += 1.0;
    }
    result.min_video_fidelity =
        std::min(result.min_video_fidelity, bed.video().current_fidelity());
    result.min_web_fidelity =
        std::min(result.min_web_fidelity, bed.web().current_fidelity());
    result.min_map_fidelity =
        std::min(result.min_map_fidelity, bed.map().current_fidelity());
    bed.sim().Schedule(odsim::SimDuration::Seconds(1), sample);
  };
  bed.sim().Schedule(odsim::SimDuration::Seconds(1), sample);

  odapps::TestBed::Measurement m = bed.MeasureFor(options.duration);
  bed.video().StopLooping();
  monitor.Stop();

  result.joules = m.joules;
  result.seconds = m.seconds;
  result.chunks_played = bed.video().chunks_played();
  result.chunks_dropped = bed.video().chunks_dropped();
  result.pages_degraded = bed.web().pages_degraded();
  result.maps_degraded = bed.map().maps_degraded();
  result.failed_fetches = WardenFailures(bed.viceroy(), "web") +
                          WardenFailures(bed.viceroy(), "map") +
                          WardenFailures(bed.viceroy(), "speech") +
                          WardenFailures(bed.viceroy(), "video");
  result.retransmissions = bed.viceroy().rpc().retransmissions();
  result.request_losses = bed.viceroy().rpc().request_losses();
  result.reply_losses = bed.viceroy().rpc().reply_losses();
  result.retries_exhausted = bed.viceroy().rpc().retries_exhausted();
  result.deadlines_exceeded = bed.viceroy().rpc().deadlines_exceeded();
  result.adaptations = bed.viceroy().TotalAdaptations();
  result.outage_clamps = bed.viceroy().outage_clamps();
  result.clamped_at_end = bed.viceroy().link_clamped();
  result.final_video_fidelity = bed.video().current_fidelity();
  result.final_web_fidelity = bed.web().current_fidelity();
  result.final_map_fidelity = bed.map().current_fidelity();
  result.completed = result.pages_browsed > 0 && result.maps_viewed > 0 &&
                     result.utterances_recognized > 0 &&
                     result.chunks_played > 0;
  result.trace = m.trace;
  return result;
}

}  // namespace odfault
