// Property-based fault-plan generation for the chaos soak.
//
// GenerateChaosPlan derives a random-but-deterministic FaultPlan from a
// seed: a handful of windows of any kind, with uniformly drawn starts,
// durations, and (where applicable) magnitudes inside each kind's valid
// range.  The same seed always yields the same plan, so a soak failure is
// reproducible from its seed alone — the plan's canonical spelling
// (plan.ToString()) is the repro command line.

#ifndef SRC_FAULT_CHAOS_H_
#define SRC_FAULT_CHAOS_H_

#include <cstdint>

#include "src/fault/fault_plan.h"

namespace odfault {

struct ChaosPlanConfig {
  int min_events = 2;
  int max_events = 6;
  // Every window fits inside [0, horizon_seconds]: duration is drawn from
  // [min_duration_seconds, max_duration_seconds] first, then the start from
  // [0, horizon - duration].  Windows may overlap (the injector nests and
  // restores); the plan is ordered by start time.
  double horizon_seconds = 240.0;
  double min_duration_seconds = 5.0;
  double max_duration_seconds = 60.0;
};

FaultPlan GenerateChaosPlan(uint64_t seed,
                            const ChaosPlanConfig& config = ChaosPlanConfig{});

// Scenario-derived chaos: instead of purely random windows, start from the
// environment a user-behavior scenario implies (its coverage gaps, as
// Scenario::DerivedFaultPlan() renders them) and layer realistic telemetry
// noise on top — short sample dropouts, stale spans, and gauge scale
// wobble held inside `gauge_noise_band` of nominal.  The band sits well
// under the drift sentinel's divergence threshold, so any drift episode a
// soak run records under such a plan is a false positive by construction;
// the soak bounds their rate.
struct ScenarioChaosConfig {
  int min_noise_events = 1;
  int max_noise_events = 3;
  double horizon_seconds = 240.0;
  double min_duration_seconds = 5.0;
  double max_duration_seconds = 30.0;
  // Gauge/ramp magnitudes are drawn from [1 - band, 1 + band].  The
  // sentinel tolerates 10% gauge/learned divergence and the learned model
  // itself runs a few percent off under busy scenarios, so +-2% is the
  // realistic wobble that must NOT compound into a drift verdict.
  double gauge_noise_band = 0.02;
};

FaultPlan GenerateScenarioChaosPlan(
    uint64_t seed, const FaultPlan& environment,
    const ScenarioChaosConfig& config = ScenarioChaosConfig{});

}  // namespace odfault

#endif  // SRC_FAULT_CHAOS_H_
