// Property-based fault-plan generation for the chaos soak.
//
// GenerateChaosPlan derives a random-but-deterministic FaultPlan from a
// seed: a handful of windows of any kind, with uniformly drawn starts,
// durations, and (where applicable) magnitudes inside each kind's valid
// range.  The same seed always yields the same plan, so a soak failure is
// reproducible from its seed alone — the plan's canonical spelling
// (plan.ToString()) is the repro command line.

#ifndef SRC_FAULT_CHAOS_H_
#define SRC_FAULT_CHAOS_H_

#include <cstdint>

#include "src/fault/fault_plan.h"

namespace odfault {

struct ChaosPlanConfig {
  int min_events = 2;
  int max_events = 6;
  // Windows start anywhere in [0, horizon_seconds); duration is drawn from
  // [min_duration_seconds, max_duration_seconds].  Windows may overlap and
  // may extend past the horizon (the injector nests and restores anyway).
  double horizon_seconds = 240.0;
  double min_duration_seconds = 5.0;
  double max_duration_seconds = 60.0;
};

FaultPlan GenerateChaosPlan(uint64_t seed,
                            const ChaosPlanConfig& config = ChaosPlanConfig{});

}  // namespace odfault

#endif  // SRC_FAULT_CHAOS_H_
