// Fault scenario: a fixed adaptive workload run under a FaultPlan.
//
// One fully wired client (TestBed) runs a browsing loop, a map-viewing
// loop, a local speech-recognition loop (vocabulary paging on, so disk
// faults bite), and a looping background video while the injector replays
// the plan.
// The bandwidth monitor feeds both the classic expectation path
// (NotifyResourceLevel) and the outage clamp (NotifyLinkHealth); the RPC
// transport gets bounded retries plus a per-call deadline so no fetch can
// wedge.  The result is a degradation record: energy, useful work done,
// work shed or degraded, typed RPC failures, and clamp behavior.

#ifndef SRC_FAULT_FAULT_SCENARIO_H_
#define SRC_FAULT_FAULT_SCENARIO_H_

#include <cstdint>
#include <memory>

#include "src/fault/fault_plan.h"
#include "src/sim/time.h"
#include "src/trace/power_trace.h"

namespace odfault {

struct FaultScenarioOptions {
  uint64_t seed = 1;
  FaultPlan plan;
  odsim::SimDuration duration = odsim::SimDuration::Seconds(180);

  // Graceful-degradation knobs on the shared RPC transport.
  odsim::SimDuration rpc_deadline = odsim::SimDuration::Seconds(10);
  int max_retries = 5;
  odsim::SimDuration retry_timeout = odsim::SimDuration::Millis(500);

  // Consecutive healthy bandwidth estimates before the outage clamp lifts.
  int recovery_hysteresis = 3;

  // Think time between pages/maps; short so the loops exercise the network
  // often enough to meet faults.
  double think_seconds = 2.0;

  // Record the run's per-component power timeline (see
  // TestBed::Options::trace); returned in FaultScenarioResult::trace.
  bool trace = false;
};

struct FaultScenarioResult {
  double joules = 0.0;
  double seconds = 0.0;

  // Useful work (degraded units still count: the loop kept moving).
  int pages_browsed = 0;
  int maps_viewed = 0;
  int utterances_recognized = 0;
  int64_t chunks_played = 0;

  // Work shed or degraded instead of queued behind a dead resource.
  int64_t chunks_dropped = 0;
  int pages_degraded = 0;
  int maps_degraded = 0;
  int failed_fetches = 0;  // Summed across wardens.

  // Transport accounting.
  int retransmissions = 0;
  int request_losses = 0;
  int reply_losses = 0;
  int retries_exhausted = 0;
  int deadlines_exceeded = 0;

  // Adaptation behavior.
  int adaptations = 0;
  int outage_clamps = 0;
  double clamped_seconds = 0.0;  // Sampled at 1 s.
  // Lowest fidelity each app was observed at (1 s samples).
  int min_video_fidelity = 0;
  int min_web_fidelity = 0;
  int min_map_fidelity = 0;
  // Fidelity at scenario end (recovery check).
  int final_video_fidelity = 0;
  int final_web_fidelity = 0;
  int final_map_fidelity = 0;
  bool clamped_at_end = false;

  // The scenario ran to its full duration with every loop having made
  // progress — the liveness property fault plans must not break.
  bool completed = false;

  // Per-component power timeline over the measured window; set only when
  // FaultScenarioOptions::trace was enabled.
  std::shared_ptr<const odtrace::PowerTrace> trace;
};

FaultScenarioResult RunFaultScenario(const FaultScenarioOptions& options);

}  // namespace odfault

#endif  // SRC_FAULT_FAULT_SCENARIO_H_
