#include "src/fault/chaos.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace odfault {
namespace {

// All kinds the generator may draw.  Keep in sync with FaultKind; the
// round-trip test in tests/fault covers every entry.
constexpr FaultKind kAllKinds[] = {
    FaultKind::kBandwidth,    FaultKind::kOutage,
    FaultKind::kLossBurst,    FaultKind::kServerStall,
    FaultKind::kDiskLatency,  FaultKind::kSampleDropout,
    FaultKind::kStaleTelemetry, FaultKind::kNanTelemetry,
    FaultKind::kGaugeDrift,   FaultKind::kGaugeRamp,
};

// Round to ~3 decimals so the generated plan survives the canonical %g
// rendering: Parse(ToString(plan)) must reproduce the plan exactly.
double Round3(double value) { return std::round(value * 1000.0) / 1000.0; }

double DrawMagnitude(FaultKind kind, odutil::Rng& rng) {
  switch (kind) {
    case FaultKind::kBandwidth:
      return Round3(rng.Uniform(0.05, 0.5));  // Keep 5-50% of nominal.
    case FaultKind::kLossBurst:
      return Round3(rng.Uniform(0.1, 0.6));
    case FaultKind::kDiskLatency:
      return Round3(rng.Uniform(2.0, 16.0));
    case FaultKind::kGaugeDrift:
      // Both under- and over-reading gauges, up to 4x off.
      return Round3(rng.Uniform(0.25, 4.0));
    case FaultKind::kGaugeRamp:
      // Creeping miscalibration: the scale drifts linearly toward this
      // endpoint over the window.  Kept sub-plausible on the high side —
      // the whole point of the ramp is that no single reading trips the
      // validator.
      return Round3(rng.Uniform(0.5, 2.0));
    default:
      return 0.0;
  }
}

}  // namespace

FaultPlan GenerateChaosPlan(uint64_t seed, const ChaosPlanConfig& config) {
  OD_CHECK(config.min_events >= 0 && config.max_events >= config.min_events);
  OD_CHECK(config.min_duration_seconds > 0.0 &&
           config.max_duration_seconds >= config.min_duration_seconds);
  odutil::Rng rng(seed ^ 0xc4a05ULL);
  FaultPlan plan;
  int events = rng.UniformInt(config.min_events, config.max_events);
  for (int i = 0; i < events; ++i) {
    FaultEvent event;
    event.kind = kAllKinds[rng.UniformInt(
        0, static_cast<int>(std::size(kAllKinds)) - 1)];
    // Duration first, then a start that keeps the whole window inside the
    // horizon — a window past the horizon is dead weight the run never
    // replays against.
    event.duration = odsim::SimDuration::Seconds(Round3(rng.Uniform(
        config.min_duration_seconds, config.max_duration_seconds)));
    double latest_start =
        std::max(0.0, config.horizon_seconds - event.duration.seconds());
    event.at =
        odsim::SimDuration::Seconds(Round3(rng.Uniform(0.0, latest_start)));
    event.magnitude = DrawMagnitude(event.kind, rng);
    plan.events.push_back(event);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

FaultPlan GenerateScenarioChaosPlan(uint64_t seed,
                                    const FaultPlan& environment,
                                    const ScenarioChaosConfig& config) {
  OD_CHECK(config.min_noise_events >= 0 &&
           config.max_noise_events >= config.min_noise_events);
  OD_CHECK(config.min_duration_seconds > 0.0 &&
           config.max_duration_seconds >= config.min_duration_seconds);
  OD_CHECK(config.gauge_noise_band > 0.0 && config.gauge_noise_band < 1.0);
  // A distinct stream from the random generator: the same seed must not
  // yield correlated random-mode and scenario-mode plans.
  odutil::Rng rng(seed ^ 0x5c40c5ULL);
  FaultPlan plan = environment;
  constexpr FaultKind kNoiseKinds[] = {
      FaultKind::kSampleDropout,
      FaultKind::kStaleTelemetry,
      FaultKind::kGaugeDrift,
      FaultKind::kGaugeRamp,
  };
  int events = rng.UniformInt(config.min_noise_events, config.max_noise_events);
  for (int i = 0; i < events; ++i) {
    FaultEvent event;
    event.kind = kNoiseKinds[rng.UniformInt(
        0, static_cast<int>(std::size(kNoiseKinds)) - 1)];
    event.duration = odsim::SimDuration::Seconds(Round3(rng.Uniform(
        config.min_duration_seconds, config.max_duration_seconds)));
    double latest_start =
        std::max(0.0, config.horizon_seconds - event.duration.seconds());
    event.at =
        odsim::SimDuration::Seconds(Round3(rng.Uniform(0.0, latest_start)));
    if (event.kind == FaultKind::kGaugeDrift ||
        event.kind == FaultKind::kGaugeRamp) {
      event.magnitude = Round3(rng.Uniform(1.0 - config.gauge_noise_band,
                                           1.0 + config.gauge_noise_band));
    }
    plan.events.push_back(event);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace odfault
