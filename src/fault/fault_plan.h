// Declarative fault plans.
//
// A FaultPlan is a deterministic schedule of timed disturbances — bandwidth
// crashes, full link outages, packet-loss bursts, server compute stalls,
// disk latency spikes, and power-telemetry corruption (sample dropouts,
// stale/NaN readings, gauge drift) — that the FaultInjector replays through
// the discrete-event simulator.  Plans are written in a compact spec grammar
// so they can ride in a command-line flag and land verbatim in artifact
// provenance:
//
//   event   := kind '@' start '+' duration [ '=' magnitude ]
//   plan    := event ( ( ';' | newline ) event )*
//
// with start/duration in (fractional) seconds relative to Arm().  Example:
//
//   "bandwidth@20+30=0.1;outage@60+10;loss@90+15=0.3"
//
// crashes bandwidth to 10% of nominal during [20 s, 50 s), takes the link
// down entirely during [60 s, 70 s), and injects 30% packet loss during
// [90 s, 105 s).  Magnitude semantics per kind:
//
//   bandwidth  fraction of nominal bandwidth kept (0, 1]; default 0.1
//   outage     none
//   loss       per-message loss probability [0, 1); default 0.3
//   stall      none
//   disk       disk access latency multiplier > 0; default 8
//   dropout    none — the power monitor delivers no readings at all
//   stale      none — the power monitor repeats its last delivered reading
//   nan        none — the power monitor delivers NaN readings
//   gauge      power-reading scale factor > 0; default 3 (gas-gauge
//              miscalibration: readings are scaled, so the integrated
//              energy estimate develops a discontinuity)
//   ramp       power-reading scale drifts linearly from nominal to the
//              magnitude over the window (> 0; default 2) — creeping
//              miscalibration with no step edge for a validator to catch;
//              the scale snaps back to nominal when the window ends
//
// The last four corrupt *telemetry* only: the machine's true draw and the
// analytic accounting are untouched, which is exactly what makes them a
// test of the goal controller's health machinery (src/energy).
//
// ToString() renders the canonical spec; Parse(ToString()) round-trips.

#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "src/sim/time.h"

namespace odfault {

enum class FaultKind {
  kBandwidth,
  kOutage,
  kLossBurst,
  kServerStall,
  kDiskLatency,
  // Telemetry faults: corrupt what the power monitor reports, not what the
  // machine draws.
  kSampleDropout,
  kStaleTelemetry,
  kNanTelemetry,
  kGaugeDrift,
  kGaugeRamp,
};

// Spec-grammar keyword ("bandwidth", "outage", "loss", "stall", "disk",
// "dropout", "stale", "nan", "gauge", "ramp").
const char* FaultKindName(FaultKind kind);

// True for the kinds that disturb power telemetry (and therefore need a
// PowerMonitor target rather than a link/rpc/pm/server one).
bool IsTelemetryFault(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kOutage;
  // Window start, relative to FaultInjector::Arm().
  odsim::SimDuration at = odsim::SimDuration::Zero();
  odsim::SimDuration duration = odsim::SimDuration::Zero();
  // Kind-specific; see the grammar comment above.
  double magnitude = 0.0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  // Canonical spec string; round-trips through Parse.  Empty plan -> "".
  std::string ToString() const;

  // Parses the spec grammar.  Events are separated by ';' or newlines (so a
  // plan can ride in a flag or in a file).  On failure returns false and,
  // when `error` is non-null, a position-annotated description of the first
  // problem ("line L, col C: <why> near '<token>'" — see SpecError).  An
  // empty spec parses to an empty plan.
  static bool Parse(const std::string& spec, FaultPlan* plan, std::string* error);
};

// Formats a position-annotated spec-grammar error: "line L, col C: <why>
// near '<token>'".  Shared by the fault-plan and scenario grammars so their
// diagnostics read identically; both surface it through odbench with exit
// code 64.  Line and column are 1-based; an empty token drops the "near"
// clause.
std::string SpecError(int line, int column, const std::string& token,
                      const std::string& why);

}  // namespace odfault

#endif  // SRC_FAULT_FAULT_PLAN_H_
