#include "src/fault/fault_injector.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/logging.h"

namespace odfault {

FaultInjector::FaultInjector(odsim::Simulator* sim, FaultTargets targets)
    : sim_(sim), targets_(std::move(targets)) {
  OD_CHECK(sim != nullptr);
}

void FaultInjector::Arm(const FaultPlan& plan) {
  OD_CHECK_MSG(!armed_, "FaultInjector::Arm called twice");
  armed_ = true;
  for (const FaultEvent& event : plan.events) {
    switch (event.kind) {
      case FaultKind::kBandwidth:
      case FaultKind::kOutage:
        OD_CHECK_MSG(targets_.link != nullptr, "fault plan needs a link target");
        break;
      case FaultKind::kLossBurst:
        OD_CHECK_MSG(targets_.rpc != nullptr, "fault plan needs an rpc target");
        break;
      case FaultKind::kServerStall:
        OD_CHECK_MSG(!targets_.servers.empty(),
                     "fault plan needs server targets");
        break;
      case FaultKind::kDiskLatency:
        OD_CHECK_MSG(targets_.pm != nullptr,
                     "fault plan needs a power-manager target");
        break;
      case FaultKind::kSampleDropout:
      case FaultKind::kStaleTelemetry:
      case FaultKind::kNanTelemetry:
      case FaultKind::kGaugeDrift:
      case FaultKind::kGaugeRamp:
        OD_CHECK_MSG(targets_.monitor != nullptr &&
                         targets_.monitor->telemetry_faults() != nullptr,
                     "fault plan needs a power-monitor target with "
                     "telemetry-fault support");
        break;
    }
    sim_->Schedule(event.at, [this, event] { Begin(event); });
    sim_->Schedule(event.at + event.duration, [this, event] { End(event); });
  }
}

int FaultInjector::active_windows() const {
  int total = 0;
  for (int count : active_) {
    total += count;
  }
  return total;
}

void FaultInjector::Begin(const FaultEvent& event) {
  int& count = active_[Index(event.kind)];
  bool first = count == 0;
  ++count;
  ++windows_begun_;
  OD_LOG_DEBUG("fault begin t=%.1fs %s mag=%g", sim_->Now().seconds(),
               FaultKindName(event.kind), event.magnitude);
  switch (event.kind) {
    case FaultKind::kBandwidth:
      if (first) {
        nominal_bandwidth_bps_ = targets_.link->bandwidth_bps();
      }
      targets_.link->set_bandwidth_bps(nominal_bandwidth_bps_ * event.magnitude);
      break;
    case FaultKind::kOutage:
      targets_.link->SetOutage(true);
      break;
    case FaultKind::kLossBurst: {
      odnet::RpcConfig config = targets_.rpc->config();
      if (first) {
        nominal_loss_probability_ = config.loss_probability;
      }
      config.loss_probability = event.magnitude;
      targets_.rpc->set_config(config);
      break;
    }
    case FaultKind::kServerStall:
      for (odyssey::RemoteServer* server : targets_.servers) {
        server->SetStalled(true);
      }
      break;
    case FaultKind::kDiskLatency:
      if (first) {
        nominal_disk_scale_ = targets_.pm->disk_latency_scale();
      }
      targets_.pm->set_disk_latency_scale(event.magnitude);
      break;
    case FaultKind::kSampleDropout:
      targets_.monitor->telemetry_faults()->set_dropout(true);
      break;
    case FaultKind::kStaleTelemetry:
      targets_.monitor->telemetry_faults()->set_stale(true);
      break;
    case FaultKind::kNanTelemetry:
      targets_.monitor->telemetry_faults()->set_nan(true);
      break;
    case FaultKind::kGaugeDrift:
      if (GaugeWindowsActive() == 1) {
        nominal_gauge_scale_ = targets_.monitor->telemetry_faults()->gauge_scale();
      }
      targets_.monitor->telemetry_faults()->set_gauge_scale(event.magnitude);
      break;
    case FaultKind::kGaugeRamp: {
      if (GaugeWindowsActive() == 1) {
        nominal_gauge_scale_ = targets_.monitor->telemetry_faults()->gauge_scale();
      }
      // The scale starts at nominal and creeps toward the magnitude; the
      // first tick runs immediately (zero offset from nominal).
      RampTick(event, sim_->Now());
      break;
    }
  }
}

int FaultInjector::GaugeWindowsActive() const {
  // Step drift and ramp drift share the gauge-scale knob; the nominal is
  // captured when the first window of either kind opens and restored when
  // the last closes.
  return active_[Index(FaultKind::kGaugeDrift)] +
         active_[Index(FaultKind::kGaugeRamp)];
}

void FaultInjector::RampTick(const FaultEvent& event, odsim::SimTime begin) {
  if (active_[Index(FaultKind::kGaugeRamp)] == 0) {
    return;  // The window closed; End() already restored the nominal.
  }
  double elapsed = (sim_->Now() - begin).seconds();
  double fraction =
      std::min(1.0, elapsed / std::max(1e-9, event.duration.seconds()));
  double scale =
      nominal_gauge_scale_ + (event.magnitude - nominal_gauge_scale_) * fraction;
  targets_.monitor->telemetry_faults()->set_gauge_scale(scale);
  if (fraction < 1.0) {
    sim_->Schedule(odsim::SimDuration::Seconds(1),
                   [this, event, begin] { RampTick(event, begin); });
  }
}

void FaultInjector::End(const FaultEvent& event) {
  int& count = active_[Index(event.kind)];
  OD_CHECK(count > 0);
  --count;
  bool last = count == 0;
  OD_LOG_DEBUG("fault end t=%.1fs %s", sim_->Now().seconds(),
               FaultKindName(event.kind));
  switch (event.kind) {
    case FaultKind::kBandwidth:
      if (last) {
        targets_.link->set_bandwidth_bps(nominal_bandwidth_bps_);
      }
      break;
    case FaultKind::kOutage:
      if (last) {
        targets_.link->SetOutage(false);
      }
      break;
    case FaultKind::kLossBurst:
      if (last) {
        odnet::RpcConfig config = targets_.rpc->config();
        config.loss_probability = nominal_loss_probability_;
        targets_.rpc->set_config(config);
      }
      break;
    case FaultKind::kServerStall:
      if (last) {
        for (odyssey::RemoteServer* server : targets_.servers) {
          server->SetStalled(false);
        }
      }
      break;
    case FaultKind::kDiskLatency:
      if (last) {
        targets_.pm->set_disk_latency_scale(nominal_disk_scale_);
      }
      break;
    case FaultKind::kSampleDropout:
      if (last) {
        targets_.monitor->telemetry_faults()->set_dropout(false);
      }
      break;
    case FaultKind::kStaleTelemetry:
      if (last) {
        targets_.monitor->telemetry_faults()->set_stale(false);
      }
      break;
    case FaultKind::kNanTelemetry:
      if (last) {
        targets_.monitor->telemetry_faults()->set_nan(false);
      }
      break;
    case FaultKind::kGaugeDrift:
    case FaultKind::kGaugeRamp:
      if (GaugeWindowsActive() == 0) {
        targets_.monitor->telemetry_faults()->set_gauge_scale(nominal_gauge_scale_);
      }
      break;
  }
}

}  // namespace odfault
