#include "src/fault/fault_plan.h"

#include <cstdio>
#include <cstdlib>

namespace odfault {
namespace {

struct KindInfo {
  FaultKind kind;
  const char* name;
  bool takes_magnitude;
  double default_magnitude;
};

constexpr KindInfo kKinds[] = {
    {FaultKind::kBandwidth, "bandwidth", true, 0.1},
    {FaultKind::kOutage, "outage", false, 0.0},
    {FaultKind::kLossBurst, "loss", true, 0.3},
    {FaultKind::kServerStall, "stall", false, 0.0},
    {FaultKind::kDiskLatency, "disk", true, 8.0},
    {FaultKind::kSampleDropout, "dropout", false, 0.0},
    {FaultKind::kStaleTelemetry, "stale", false, 0.0},
    {FaultKind::kNanTelemetry, "nan", false, 0.0},
    {FaultKind::kGaugeDrift, "gauge", true, 3.0},
    {FaultKind::kGaugeRamp, "ramp", true, 2.0},
};

const KindInfo* FindKind(const std::string& name) {
  for (const KindInfo& info : kKinds) {
    if (name == info.name) {
      return &info;
    }
  }
  return nullptr;
}

const KindInfo& Info(FaultKind kind) {
  for (const KindInfo& info : kKinds) {
    if (info.kind == kind) {
      return info;
    }
  }
  return kKinds[0];  // Unreachable: kKinds covers the enum.
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

bool MagnitudeValid(FaultKind kind, double magnitude) {
  switch (kind) {
    case FaultKind::kBandwidth:
      return magnitude > 0.0 && magnitude <= 1.0;
    case FaultKind::kLossBurst:
      return magnitude >= 0.0 && magnitude < 1.0;
    case FaultKind::kDiskLatency:
    case FaultKind::kGaugeDrift:
    case FaultKind::kGaugeRamp:
      return magnitude > 0.0;
    case FaultKind::kOutage:
    case FaultKind::kServerStall:
    case FaultKind::kSampleDropout:
    case FaultKind::kStaleTelemetry:
    case FaultKind::kNanTelemetry:
      return true;
  }
  return false;
}

// %g keeps "0.1" as "0.1" and "30" as "30": the canonical rendering stays
// close to what a human would type.
std::string FormatNumber(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

// `line` / `column` locate the event's first character in the original
// spec; sub-token failures offset the column to the token itself.
bool ParseEvent(const std::string& text, int line, int column,
                FaultEvent* event, std::string* error) {
  auto fail = [&](size_t offset, const std::string& token,
                  const std::string& why) {
    if (error != nullptr) {
      *error = SpecError(line, column + static_cast<int>(offset), token, why);
    }
    return false;
  };
  size_t at_pos = text.find('@');
  if (at_pos == std::string::npos) {
    return fail(0, text, "expected kind@start+duration[=magnitude]");
  }
  const std::string kind_text = text.substr(0, at_pos);
  const KindInfo* info = FindKind(kind_text);
  if (info == nullptr) {
    return fail(0, kind_text,
                "unknown kind "
                "(bandwidth|outage|loss|stall|disk|dropout|stale|nan|gauge|"
                "ramp)");
  }
  size_t plus_pos = text.find('+', at_pos + 1);
  if (plus_pos == std::string::npos) {
    return fail(at_pos + 1, text.substr(at_pos + 1), "expected '+duration'");
  }
  size_t eq_pos = text.find('=', plus_pos + 1);
  double start = 0.0;
  double duration = 0.0;
  const std::string start_text = text.substr(at_pos + 1, plus_pos - at_pos - 1);
  if (!ParseDouble(start_text, &start) || start < 0.0) {
    return fail(at_pos + 1, start_text,
                "start must be a nonnegative number of seconds");
  }
  const std::string duration_text =
      eq_pos == std::string::npos
          ? text.substr(plus_pos + 1)
          : text.substr(plus_pos + 1, eq_pos - plus_pos - 1);
  if (!ParseDouble(duration_text, &duration) || duration <= 0.0) {
    return fail(plus_pos + 1, duration_text,
                "duration must be a positive number of seconds");
  }
  double magnitude = info->default_magnitude;
  if (eq_pos != std::string::npos) {
    const std::string magnitude_text = text.substr(eq_pos + 1);
    if (!info->takes_magnitude) {
      return fail(eq_pos, "=" + magnitude_text,
                  std::string(info->name) + " takes no magnitude");
    }
    if (!ParseDouble(magnitude_text, &magnitude)) {
      return fail(eq_pos + 1, magnitude_text, "magnitude must be a number");
    }
    if (!MagnitudeValid(info->kind, magnitude)) {
      return fail(eq_pos + 1, magnitude_text,
                  "magnitude out of range for " + std::string(info->name));
    }
  } else if (!MagnitudeValid(info->kind, magnitude)) {
    return fail(0, text, "magnitude out of range for " + std::string(info->name));
  }
  event->kind = info->kind;
  event->at = odsim::SimDuration::Seconds(start);
  event->duration = odsim::SimDuration::Seconds(duration);
  event->magnitude = magnitude;
  return true;
}

}  // namespace

std::string SpecError(int line, int column, const std::string& token,
                      const std::string& why) {
  std::string message =
      "line " + std::to_string(line) + ", col " + std::to_string(column) +
      ": " + why;
  if (!token.empty()) {
    message += " near '" + token + "'";
  }
  return message;
}

const char* FaultKindName(FaultKind kind) { return Info(kind).name; }

bool IsTelemetryFault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSampleDropout:
    case FaultKind::kStaleTelemetry:
    case FaultKind::kNanTelemetry:
    case FaultKind::kGaugeDrift:
    case FaultKind::kGaugeRamp:
      return true;
    default:
      return false;
  }
}

std::string FaultPlan::ToString() const {
  std::string spec;
  for (const FaultEvent& event : events) {
    if (!spec.empty()) {
      spec += ';';
    }
    spec += FaultKindName(event.kind);
    spec += '@';
    spec += FormatNumber(event.at.seconds());
    spec += '+';
    spec += FormatNumber(event.duration.seconds());
    if (Info(event.kind).takes_magnitude) {
      spec += '=';
      spec += FormatNumber(event.magnitude);
    }
  }
  return spec;
}

bool FaultPlan::Parse(const std::string& spec, FaultPlan* plan,
                      std::string* error) {
  FaultPlan parsed;
  size_t pos = 0;
  int line = 1;
  int column = 1;
  while (pos < spec.size()) {
    size_t sep = spec.find_first_of(";\n", pos);
    if (sep == std::string::npos) {
      sep = spec.size();
    }
    std::string piece = spec.substr(pos, sep - pos);
    // Surrounding whitespace is separator decoration, not token content;
    // keep the column pointing at the event's first character.
    size_t lead = piece.find_first_not_of(" \t");
    if (lead == std::string::npos) {
      piece.clear();
    } else {
      piece = piece.substr(lead, piece.find_last_not_of(" \t") - lead + 1);
    }
    if (!piece.empty()) {
      FaultEvent event;
      if (!ParseEvent(piece, line, column + static_cast<int>(lead), &event,
                      error)) {
        return false;
      }
      parsed.events.push_back(event);
    }
    if (sep < spec.size() && spec[sep] == '\n') {
      ++line;
      column = 1;
    } else {
      column += static_cast<int>(sep - pos) + 1;
    }
    pos = sep + 1;
  }
  *plan = std::move(parsed);
  return true;
}

}  // namespace odfault
