#include "src/fault/fault_plan.h"

#include <cstdio>
#include <cstdlib>

namespace odfault {
namespace {

struct KindInfo {
  FaultKind kind;
  const char* name;
  bool takes_magnitude;
  double default_magnitude;
};

constexpr KindInfo kKinds[] = {
    {FaultKind::kBandwidth, "bandwidth", true, 0.1},
    {FaultKind::kOutage, "outage", false, 0.0},
    {FaultKind::kLossBurst, "loss", true, 0.3},
    {FaultKind::kServerStall, "stall", false, 0.0},
    {FaultKind::kDiskLatency, "disk", true, 8.0},
    {FaultKind::kSampleDropout, "dropout", false, 0.0},
    {FaultKind::kStaleTelemetry, "stale", false, 0.0},
    {FaultKind::kNanTelemetry, "nan", false, 0.0},
    {FaultKind::kGaugeDrift, "gauge", true, 3.0},
    {FaultKind::kGaugeRamp, "ramp", true, 2.0},
};

const KindInfo* FindKind(const std::string& name) {
  for (const KindInfo& info : kKinds) {
    if (name == info.name) {
      return &info;
    }
  }
  return nullptr;
}

const KindInfo& Info(FaultKind kind) {
  for (const KindInfo& info : kKinds) {
    if (info.kind == kind) {
      return info;
    }
  }
  return kKinds[0];  // Unreachable: kKinds covers the enum.
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

bool MagnitudeValid(FaultKind kind, double magnitude) {
  switch (kind) {
    case FaultKind::kBandwidth:
      return magnitude > 0.0 && magnitude <= 1.0;
    case FaultKind::kLossBurst:
      return magnitude >= 0.0 && magnitude < 1.0;
    case FaultKind::kDiskLatency:
    case FaultKind::kGaugeDrift:
    case FaultKind::kGaugeRamp:
      return magnitude > 0.0;
    case FaultKind::kOutage:
    case FaultKind::kServerStall:
    case FaultKind::kSampleDropout:
    case FaultKind::kStaleTelemetry:
    case FaultKind::kNanTelemetry:
      return true;
  }
  return false;
}

// %g keeps "0.1" as "0.1" and "30" as "30": the canonical rendering stays
// close to what a human would type.
std::string FormatNumber(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

bool ParseEvent(const std::string& text, FaultEvent* event, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "bad fault event '" + text + "': " + why;
    }
    return false;
  };
  size_t at_pos = text.find('@');
  if (at_pos == std::string::npos) {
    return fail("expected kind@start+duration[=magnitude]");
  }
  const KindInfo* info = FindKind(text.substr(0, at_pos));
  if (info == nullptr) {
    return fail(
        "unknown kind "
        "(bandwidth|outage|loss|stall|disk|dropout|stale|nan|gauge|ramp)");
  }
  size_t plus_pos = text.find('+', at_pos + 1);
  if (plus_pos == std::string::npos) {
    return fail("expected '+duration'");
  }
  size_t eq_pos = text.find('=', plus_pos + 1);
  double start = 0.0;
  double duration = 0.0;
  if (!ParseDouble(text.substr(at_pos + 1, plus_pos - at_pos - 1), &start) ||
      start < 0.0) {
    return fail("start must be a nonnegative number of seconds");
  }
  std::string duration_text =
      eq_pos == std::string::npos
          ? text.substr(plus_pos + 1)
          : text.substr(plus_pos + 1, eq_pos - plus_pos - 1);
  if (!ParseDouble(duration_text, &duration) || duration <= 0.0) {
    return fail("duration must be a positive number of seconds");
  }
  double magnitude = info->default_magnitude;
  if (eq_pos != std::string::npos) {
    if (!info->takes_magnitude) {
      return fail(std::string(info->name) + " takes no magnitude");
    }
    if (!ParseDouble(text.substr(eq_pos + 1), &magnitude)) {
      return fail("magnitude must be a number");
    }
  }
  if (!MagnitudeValid(info->kind, magnitude)) {
    return fail("magnitude out of range for " + std::string(info->name));
  }
  event->kind = info->kind;
  event->at = odsim::SimDuration::Seconds(start);
  event->duration = odsim::SimDuration::Seconds(duration);
  event->magnitude = magnitude;
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind kind) { return Info(kind).name; }

bool IsTelemetryFault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSampleDropout:
    case FaultKind::kStaleTelemetry:
    case FaultKind::kNanTelemetry:
    case FaultKind::kGaugeDrift:
    case FaultKind::kGaugeRamp:
      return true;
    default:
      return false;
  }
}

std::string FaultPlan::ToString() const {
  std::string spec;
  for (const FaultEvent& event : events) {
    if (!spec.empty()) {
      spec += ';';
    }
    spec += FaultKindName(event.kind);
    spec += '@';
    spec += FormatNumber(event.at.seconds());
    spec += '+';
    spec += FormatNumber(event.duration.seconds());
    if (Info(event.kind).takes_magnitude) {
      spec += '=';
      spec += FormatNumber(event.magnitude);
    }
  }
  return spec;
}

bool FaultPlan::Parse(const std::string& spec, FaultPlan* plan,
                      std::string* error) {
  FaultPlan parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t sep = spec.find(';', pos);
    if (sep == std::string::npos) {
      sep = spec.size();
    }
    std::string piece = spec.substr(pos, sep - pos);
    if (!piece.empty()) {
      FaultEvent event;
      if (!ParseEvent(piece, &event, error)) {
        return false;
      }
      parsed.events.push_back(event);
    }
    pos = sep + 1;
  }
  *plan = std::move(parsed);
  return true;
}

}  // namespace odfault
