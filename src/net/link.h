// WaveLAN link model.
//
// A single shared 2 Mb/s wireless channel.  Transfers are serviced FIFO at
// full channel rate; each transfer drives the interface power state
// (transmit or receive) and injects periodic interrupt-handler CPU work
// attributed to the "Interrupts-WaveLAN" pseudo-process, mirroring how the
// paper's profiles aggregate samples taken during network interrupts.

#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstddef>
#include <deque>

#include "src/power/power_manager.h"
#include "src/sim/simulator.h"

namespace odnet {

enum class Direction {
  kSend,
  kReceive,
};

struct LinkConfig {
  // Channel rate in bits per second (2 Mb/s WaveLAN).
  double bandwidth_bps = 2.0e6;
  // Fixed per-transfer setup latency (media access + driver).
  odsim::SimDuration setup_latency = odsim::SimDuration::Millis(5);
  // Interrupt-handler work: one batch per this many bytes transferred...
  size_t interrupt_batch_bytes = 16 * 1024;
  // ...costing this much CPU time, attributed to Interrupts-WaveLAN.
  odsim::SimDuration interrupt_cpu_per_batch = odsim::SimDuration::Millis(3);
};

class Link {
 public:
  Link(odsim::Simulator* sim, odpower::PowerManager* pm, const LinkConfig& config);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Queues a transfer; `on_done` fires when the last byte moves.  The
  // interface is held out of standby for the duration.
  void Transfer(Direction direction, size_t bytes, odsim::EventFn on_done);

  bool busy() const { return active_; }

  // In-flight plus queued transfers.  Streaming sources use this to shed
  // load (drop frames) rather than queue without bound.
  int queued_transfers() const {
    return static_cast<int>(queue_.size()) + (active_ ? 1 : 0);
  }

  const LinkConfig& config() const { return config_; }

  // Duration the channel needs for `bytes` (excluding queueing).
  odsim::SimDuration TransferTime(size_t bytes) const;

  // Current channel rate; changeable mid-run to model signal degradation
  // (affects transfers started after the change).
  double bandwidth_bps() const { return config_.bandwidth_bps; }
  void set_bandwidth_bps(double bps);

  // Full outage: the channel is dead.  A transfer already on the air
  // completes (its final bytes were committed), but queued and new transfers
  // wait; they drain in order when the outage clears.  Sources that poll
  // queued_transfers() keep shedding load meanwhile, and the RPC layer's
  // per-call deadline bounds callers that cannot shed.
  void SetOutage(bool outage);
  bool outage() const { return outage_; }

  // Cumulative counters for bandwidth estimation.
  size_t total_bytes() const { return total_bytes_; }
  double total_busy_seconds() const { return total_busy_seconds_; }

 private:
  struct Pending {
    Direction direction;
    size_t bytes;
    odsim::EventFn on_done;
  };

  void StartNext();

  odsim::Simulator* sim_;
  odpower::PowerManager* pm_;
  LinkConfig config_;
  std::deque<Pending> queue_;
  bool active_ = false;
  bool outage_ = false;
  size_t total_bytes_ = 0;
  double total_busy_seconds_ = 0.0;
  odsim::ProcessId interrupt_pid_;
  odsim::ProcedureId interrupt_proc_;
};

}  // namespace odnet

#endif  // SRC_NET_LINK_H_
