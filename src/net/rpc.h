// Remote procedure calls over the WaveLAN link.
//
// A call transmits the request, waits for the remote server to compute (the
// client CPU is idle but the interface stays awake listening), then receives
// the reply.  This is the communication pattern of Odyssey's wardens and of
// remote/hybrid speech recognition.
//
// Failure injection: wireless links lose packets.  With a nonzero loss
// probability each message (request or reply) can be lost; the client times
// out and retransmits, paying the full energy cost of every attempt.
// Retransmission backs off exponentially with seeded jitter (a fixed retry
// period synchronizes badly with bursty loss), the attempt count is capped,
// and an optional per-call deadline bounds the worst case even when the
// channel is in full outage and transfers never complete.  Callers that care
// why a call ended use CallWithStatus; the classic Call/CallWithCompute
// entry points keep their historical contract of always completing.

#ifndef SRC_NET_RPC_H_
#define SRC_NET_RPC_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/net/link.h"
#include "src/power/power_manager.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace odnet {

// Why a call finished.  kOk is a received reply; the failures are typed so
// wardens can degrade deliberately (serve a cached object, shed the fetch)
// instead of treating every completion alike.
enum class RpcStatus {
  kOk,
  kRetriesExhausted,   // max_retries spent without a reply.
  kDeadlineExceeded,   // Per-call deadline elapsed (e.g. link outage).
  kRejected,           // Server admission control refused the request.
};

const char* RpcStatusName(RpcStatus status);

struct RpcConfig {
  // Probability that any one message (request or reply) is lost.
  double loss_probability = 0.0;
  // Backoff before the first retransmission; attempt k waits
  // min(retry_timeout * backoff_factor^(k-1), max_retry_timeout), scaled by
  // a jitter factor drawn uniformly from [1 - retry_jitter, 1 + retry_jitter]
  // out of the client's seeded stream.
  odsim::SimDuration retry_timeout = odsim::SimDuration::Seconds(2);
  double backoff_factor = 2.0;
  odsim::SimDuration max_retry_timeout = odsim::SimDuration::Seconds(16);
  double retry_jitter = 0.1;
  // Retransmissions before the client gives up (kRetriesExhausted); the
  // original transmission is not a retry, so a call costs at most
  // max_retries + 1 attempts.
  int max_retries = 7;
  // Per-call wall-clock budget measured from call start; Zero() disables.
  // The deadline fires even when a transfer is wedged in an outage queue —
  // it is the liveness bound that keeps wardens from waiting forever.
  odsim::SimDuration deadline = odsim::SimDuration::Zero();
};

class RpcClient {
 public:
  RpcClient(odsim::Simulator* sim, Link* link, odpower::PowerManager* pm,
            uint64_t loss_seed = 0x59c0ffeeULL);

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // The server-side computation between request and reply: invoked with a
  // completion callback once the request has arrived.  Lets callers route
  // the work through a queued server model instead of a fixed delay.
  using ComputeFn = std::function<void(odsim::EventFn done)>;

  // Completion with the call's typed outcome.
  using StatusFn = std::function<void(RpcStatus status)>;

  // Issues a request/response exchange with a fixed server processing time.
  // `on_reply` fires once the full reply has been received (or the call gave
  // up); the warden falls back to whatever arrived and upper layers see
  // completion.
  void Call(size_t request_bytes, size_t reply_bytes, odsim::SimDuration server_time,
            odsim::EventFn on_reply);

  // As Call, but the server-side work is performed by `compute` (e.g.
  // submitted to a odyssey::RemoteServer queue).  If a reply is lost, the
  // retransmitted request recomputes.
  void CallWithCompute(size_t request_bytes, size_t reply_bytes, ComputeFn compute,
                       odsim::EventFn on_reply);

  // As CallWithCompute, but the completion receives the typed outcome, so
  // the caller can distinguish a reply from a failed call and degrade.
  void CallWithStatus(size_t request_bytes, size_t reply_bytes, ComputeFn compute,
                      StatusFn on_complete);

  // Server-side computation that may refuse the request: invoked with a
  // completion taking `served` — true for content produced (the full reply
  // follows), false for an admission reject (the server answered with a
  // small typed refusal instead of computing).
  using OutcomeComputeFn = std::function<void(std::function<void(bool served)>)>;

  // As CallWithStatus, but the server may reject at admission.  A reject
  // transmits a `kRejectReplyBytes` refusal back to the client and settles
  // the call with RpcStatus::kRejected immediately — no retransmission:
  // the server deliberately refused, and retrying into an overloaded
  // queue only deepens it.  Backpressure belongs to the caller (the
  // viceroy's overload clamp), not the transport.
  void CallWithOutcome(size_t request_bytes, size_t reply_bytes,
                       OutcomeComputeFn compute, StatusFn on_complete);

  // Size of the refusal message an admission reject sends back.
  static constexpr size_t kRejectReplyBytes = 64;

  void set_config(const RpcConfig& config);
  const RpcConfig& config() const { return config_; }

  // -- Diagnostics and test hooks --------------------------------------------

  // Total retransmitted messages so far.
  int retransmissions() const { return retransmissions_; }
  // Loss accounting, split by which half of the exchange the channel ate.
  int request_losses() const { return request_losses_; }
  int reply_losses() const { return reply_losses_; }
  // Calls that ended without a reply, by failure type.
  int retries_exhausted() const { return retries_exhausted_; }
  int deadlines_exceeded() const { return deadlines_exceeded_; }
  // Calls the server refused at admission.
  int rejected() const { return rejected_; }

 private:
  // Per-call bookkeeping shared by the attempt chain, the retry timer, and
  // the deadline timer.  `settled` makes late continuations — a transfer
  // that finally drains after an outage, a reply racing the deadline —
  // harmless no-ops.
  struct CallState;

  void Attempt(size_t request_bytes, size_t reply_bytes,
               const OutcomeComputeFn& compute,
               const std::shared_ptr<CallState>& state);
  void Settle(const std::shared_ptr<CallState>& state, RpcStatus status);
  odsim::SimDuration BackoffDelay(int retry_index);

  odsim::Simulator* sim_;
  Link* link_;
  odpower::PowerManager* pm_;
  RpcConfig config_;
  odutil::Rng rng_;
  int retransmissions_ = 0;
  int request_losses_ = 0;
  int reply_losses_ = 0;
  int retries_exhausted_ = 0;
  int deadlines_exceeded_ = 0;
  int rejected_ = 0;
};

}  // namespace odnet

#endif  // SRC_NET_RPC_H_
