// Remote procedure calls over the WaveLAN link.
//
// A call transmits the request, waits for the remote server to compute (the
// client CPU is idle but the interface stays awake listening), then receives
// the reply.  This is the communication pattern of Odyssey's wardens and of
// remote/hybrid speech recognition.
//
// Failure injection: wireless links lose packets.  With a nonzero loss
// probability each message (request or reply) can be lost; the client times
// out and retransmits, paying the full energy cost of every attempt.  The
// energy impact of an unreliable channel is therefore measurable.

#ifndef SRC_NET_RPC_H_
#define SRC_NET_RPC_H_

#include <cstddef>
#include <cstdint>

#include "src/net/link.h"
#include "src/power/power_manager.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace odnet {

struct RpcConfig {
  // Probability that any one message (request or reply) is lost.
  double loss_probability = 0.0;
  // How long the client waits before retransmitting.
  odsim::SimDuration retry_timeout = odsim::SimDuration::Seconds(2);
  // Attempts before the client gives up and completes anyway (the warden
  // falls back to whatever arrived; upper layers see completion).
  int max_attempts = 8;
};

class RpcClient {
 public:
  RpcClient(odsim::Simulator* sim, Link* link, odpower::PowerManager* pm,
            uint64_t loss_seed = 0x59c0ffeeULL);

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // The server-side computation between request and reply: invoked with a
  // completion callback once the request has arrived.  Lets callers route
  // the work through a queued server model instead of a fixed delay.
  using ComputeFn = std::function<void(odsim::EventFn done)>;

  // Issues a request/response exchange with a fixed server processing time.
  // `on_reply` fires once the full reply has been received (or attempts are
  // exhausted).
  void Call(size_t request_bytes, size_t reply_bytes, odsim::SimDuration server_time,
            odsim::EventFn on_reply);

  // As Call, but the server-side work is performed by `compute` (e.g.
  // submitted to a odyssey::RemoteServer queue).  If a reply is lost, the
  // retransmitted request recomputes.
  void CallWithCompute(size_t request_bytes, size_t reply_bytes, ComputeFn compute,
                       odsim::EventFn on_reply);

  void set_config(const RpcConfig& config);
  const RpcConfig& config() const { return config_; }

  // Total retransmitted messages so far (diagnostics and tests).
  int retransmissions() const { return retransmissions_; }

 private:
  void Attempt(size_t request_bytes, size_t reply_bytes, const ComputeFn& compute,
               int attempt, odsim::EventFn on_reply);
  void Finish(odsim::EventFn on_reply);

  odsim::Simulator* sim_;
  Link* link_;
  odpower::PowerManager* pm_;
  RpcConfig config_;
  odutil::Rng rng_;
  int retransmissions_ = 0;
};

}  // namespace odnet

#endif  // SRC_NET_RPC_H_
