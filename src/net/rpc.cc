#include "src/net/rpc.h"

#include <memory>
#include <utility>

#include "src/util/check.h"

namespace odnet {

RpcClient::RpcClient(odsim::Simulator* sim, Link* link, odpower::PowerManager* pm,
                     uint64_t loss_seed)
    : sim_(sim), link_(link), pm_(pm), rng_(loss_seed) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(link != nullptr);
  OD_CHECK(pm != nullptr);
}

void RpcClient::set_config(const RpcConfig& config) {
  OD_CHECK(config.loss_probability >= 0.0 && config.loss_probability < 1.0);
  OD_CHECK(config.max_attempts >= 1);
  config_ = config;
}

void RpcClient::Call(size_t request_bytes, size_t reply_bytes,
                     odsim::SimDuration server_time, odsim::EventFn on_reply) {
  CallWithCompute(
      request_bytes, reply_bytes,
      [this, server_time](odsim::EventFn done) {
        sim_->Schedule(server_time, std::move(done));
      },
      std::move(on_reply));
}

void RpcClient::CallWithCompute(size_t request_bytes, size_t reply_bytes,
                                ComputeFn compute, odsim::EventFn on_reply) {
  // Hold the interface out of standby across the whole exchange: the client
  // must listen for the reply while the server computes.
  pm_->BeginNetworkUse();
  Attempt(request_bytes, reply_bytes, compute, 1, std::move(on_reply));
}

void RpcClient::Finish(odsim::EventFn on_reply) {
  pm_->EndNetworkUse();
  if (on_reply) {
    on_reply();
  }
}

void RpcClient::Attempt(size_t request_bytes, size_t reply_bytes,
                        const ComputeFn& compute, int attempt,
                        odsim::EventFn on_reply) {
  // The completion continuation is shared between the success path and the
  // timeout/retransmit path.
  auto reply_fn = std::make_shared<odsim::EventFn>(std::move(on_reply));

  auto retry = [this, request_bytes, reply_bytes, compute, attempt, reply_fn] {
    if (attempt >= config_.max_attempts) {
      Finish(std::move(*reply_fn));
      return;
    }
    ++retransmissions_;
    sim_->Schedule(config_.retry_timeout,
                   [this, request_bytes, reply_bytes, compute, attempt, reply_fn] {
                     Attempt(request_bytes, reply_bytes, compute, attempt + 1,
                             std::move(*reply_fn));
                   });
  };

  bool request_lost = rng_.Bernoulli(config_.loss_probability);
  link_->Transfer(
      Direction::kSend, request_bytes,
      [this, reply_bytes, compute, request_lost, retry, reply_fn] {
        if (request_lost) {
          // The server never saw the request; the client times out.
          retry();
          return;
        }
        compute([this, reply_bytes, retry, reply_fn] {
          bool reply_lost = rng_.Bernoulli(config_.loss_probability);
          link_->Transfer(Direction::kReceive, reply_bytes,
                          [this, reply_lost, retry, reply_fn] {
                            if (reply_lost) {
                              retry();
                              return;
                            }
                            Finish(std::move(*reply_fn));
                          });
        });
      });
}

}  // namespace odnet
