#include "src/net/rpc.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/util/check.h"

namespace odnet {

const char* RpcStatusName(RpcStatus status) {
  switch (status) {
    case RpcStatus::kOk:
      return "ok";
    case RpcStatus::kRetriesExhausted:
      return "retries-exhausted";
    case RpcStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case RpcStatus::kRejected:
      return "rejected";
  }
  return "unknown";
}

struct RpcClient::CallState {
  bool settled = false;
  int attempt = 1;  // 1-based; attempt - 1 retries have been spent.
  StatusFn on_complete;
  odsim::EventHandle deadline_timer;
  odsim::EventHandle retry_timer;
};

RpcClient::RpcClient(odsim::Simulator* sim, Link* link, odpower::PowerManager* pm,
                     uint64_t loss_seed)
    : sim_(sim), link_(link), pm_(pm), rng_(loss_seed) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(link != nullptr);
  OD_CHECK(pm != nullptr);
}

void RpcClient::set_config(const RpcConfig& config) {
  OD_CHECK(config.loss_probability >= 0.0 && config.loss_probability < 1.0);
  OD_CHECK(config.max_retries >= 0);
  OD_CHECK(config.backoff_factor >= 1.0);
  OD_CHECK(config.retry_timeout > odsim::SimDuration::Zero());
  OD_CHECK(config.max_retry_timeout >= config.retry_timeout);
  OD_CHECK(config.retry_jitter >= 0.0 && config.retry_jitter < 1.0);
  config_ = config;
}

void RpcClient::Call(size_t request_bytes, size_t reply_bytes,
                     odsim::SimDuration server_time, odsim::EventFn on_reply) {
  CallWithCompute(
      request_bytes, reply_bytes,
      [this, server_time](odsim::EventFn done) {
        sim_->Schedule(server_time, std::move(done));
      },
      std::move(on_reply));
}

void RpcClient::CallWithCompute(size_t request_bytes, size_t reply_bytes,
                                ComputeFn compute, odsim::EventFn on_reply) {
  // Historical contract: completion fires regardless of outcome and the
  // caller never learns why.  The status is simply dropped.
  CallWithStatus(request_bytes, reply_bytes, std::move(compute),
                 [on_reply = std::move(on_reply)](RpcStatus) {
                   if (on_reply) {
                     on_reply();
                   }
                 });
}

void RpcClient::CallWithStatus(size_t request_bytes, size_t reply_bytes,
                               ComputeFn compute, StatusFn on_complete) {
  // A plain compute never refuses: adapt it onto the outcome-aware path.
  CallWithOutcome(
      request_bytes, reply_bytes,
      [compute = std::move(compute)](std::function<void(bool)> done) {
        compute([done = std::move(done)] { done(true); });
      },
      std::move(on_complete));
}

void RpcClient::CallWithOutcome(size_t request_bytes, size_t reply_bytes,
                                OutcomeComputeFn compute, StatusFn on_complete) {
  // Hold the interface out of standby across the whole exchange: the client
  // must listen for the reply while the server computes.
  pm_->BeginNetworkUse();
  auto state = std::make_shared<CallState>();
  state->on_complete = std::move(on_complete);
  if (config_.deadline > odsim::SimDuration::Zero()) {
    state->deadline_timer = sim_->Schedule(config_.deadline, [this, state] {
      if (state->settled) {
        return;
      }
      ++deadlines_exceeded_;
      Settle(state, RpcStatus::kDeadlineExceeded);
    });
  }
  Attempt(request_bytes, reply_bytes, compute, state);
}

void RpcClient::Settle(const std::shared_ptr<CallState>& state, RpcStatus status) {
  OD_CHECK(!state->settled);
  state->settled = true;
  state->deadline_timer.Cancel();
  state->retry_timer.Cancel();
  pm_->EndNetworkUse();
  if (state->on_complete) {
    StatusFn done = std::move(state->on_complete);
    state->on_complete = nullptr;
    done(status);
  }
}

odsim::SimDuration RpcClient::BackoffDelay(int retry_index) {
  // retry_index is 0-based: the first retransmission waits retry_timeout.
  double scale = 1.0;
  for (int i = 0; i < retry_index; ++i) {
    scale *= config_.backoff_factor;
  }
  odsim::SimDuration base =
      std::min(config_.retry_timeout * scale, config_.max_retry_timeout);
  if (config_.retry_jitter > 0.0) {
    base = base * rng_.Uniform(1.0 - config_.retry_jitter,
                               1.0 + config_.retry_jitter);
  }
  return base;
}

void RpcClient::Attempt(size_t request_bytes, size_t reply_bytes,
                        const OutcomeComputeFn& compute,
                        const std::shared_ptr<CallState>& state) {
  // Shared between the request-lost and reply-lost paths.  Captures the
  // state by value: a retry scheduled before the deadline fires must notice
  // it fired by the time the timer runs.
  auto retry = [this, request_bytes, reply_bytes, compute, state] {
    if (state->settled) {
      return;
    }
    if (state->attempt > config_.max_retries) {
      ++retries_exhausted_;
      Settle(state, RpcStatus::kRetriesExhausted);
      return;
    }
    ++retransmissions_;
    odsim::SimDuration delay = BackoffDelay(state->attempt - 1);
    state->retry_timer =
        sim_->Schedule(delay, [this, request_bytes, reply_bytes, compute, state] {
          if (state->settled) {
            return;
          }
          ++state->attempt;
          Attempt(request_bytes, reply_bytes, compute, state);
        });
  };

  bool request_lost = rng_.Bernoulli(config_.loss_probability);
  link_->Transfer(
      Direction::kSend, request_bytes,
      [this, reply_bytes, compute, request_lost, retry, state] {
        if (state->settled) {
          return;  // Deadline fired while the request sat in the queue.
        }
        if (request_lost) {
          // The server never saw the request; the client times out.
          ++request_losses_;
          retry();
          return;
        }
        compute([this, reply_bytes, retry, state](bool served) {
          if (state->settled) {
            return;
          }
          if (!served) {
            // Admission reject: the server answers with a small typed
            // refusal.  Not retried — the refusal is deliberate, and the
            // reject reply shares the loss-free fate of being short (the
            // client treats a lost refusal as the refusal it is only
            // after its deadline; modeling that adds nothing here).
            ++rejected_;
            link_->Transfer(Direction::kReceive, kRejectReplyBytes,
                            [this, state] {
                              if (state->settled) {
                                return;
                              }
                              Settle(state, RpcStatus::kRejected);
                            });
            return;
          }
          bool reply_lost = rng_.Bernoulli(config_.loss_probability);
          link_->Transfer(Direction::kReceive, reply_bytes,
                          [this, reply_lost, retry, state] {
                            if (state->settled) {
                              return;
                            }
                            if (reply_lost) {
                              ++reply_losses_;
                              retry();
                              return;
                            }
                            Settle(state, RpcStatus::kOk);
                          });
        });
      });
}

}  // namespace odnet
