#include "src/net/bandwidth_monitor.h"

#include "src/util/check.h"

namespace odnet {

BandwidthMonitor::BandwidthMonitor(odsim::Simulator* sim, Link* link,
                                   const BandwidthMonitorConfig& config)
    : sim_(sim), link_(link), config_(config) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(link != nullptr);
  OD_CHECK(config.period > odsim::SimDuration::Zero());
  OD_CHECK(config.window >= config.period);
}

void BandwidthMonitor::Start() {
  OD_CHECK(!running_);
  running_ = true;
  observations_.clear();
  observations_.push_back(Observation{sim_->Now(), link_->total_bytes(),
                                      link_->total_busy_seconds()});
  next_ = sim_->Schedule(config_.period, [this] { Tick(); });
}

void BandwidthMonitor::Stop() {
  running_ = false;
  next_.Cancel();
}

void BandwidthMonitor::Prune(odsim::SimTime now) const {
  // Keep one observation at or before the window start so diffs span it.
  while (observations_.size() > 1 &&
         observations_[1].time + config_.window <= now) {
    observations_.pop_front();
  }
}

BandwidthEstimate BandwidthMonitor::Estimate() const {
  BandwidthEstimate estimate;
  if (link_->outage()) {
    estimate.outage = true;
    return estimate;  // bps = 0: a dead channel has no bandwidth.
  }
  if (!link_->busy() && link_->queued_transfers() > 0) {
    // Transfers are parked but the pump is not running: the channel is
    // wedged even though the link does not report an outage.  (A long
    // in-flight transfer is NOT stale — the channel is merely busy.)
    estimate.stale = true;
    return estimate;
  }
  if (observations_.size() < 2) {
    estimate.bps = link_->bandwidth_bps();
    return estimate;
  }
  const Observation& oldest = observations_.front();
  const Observation& newest = observations_.back();
  size_t bytes = newest.bytes - oldest.bytes;
  double busy = newest.busy_seconds - oldest.busy_seconds;
  if (bytes == 0 || busy <= 0.0) {
    // An idle network is not a slow network: report channel capacity.
    estimate.bps = link_->bandwidth_bps();
    return estimate;
  }
  estimate.bps = static_cast<double>(bytes) * 8.0 / busy;
  return estimate;
}

void BandwidthMonitor::Tick() {
  if (!running_) {
    return;
  }
  odsim::SimTime now = sim_->Now();
  observations_.push_back(
      Observation{now, link_->total_bytes(), link_->total_busy_seconds()});
  Prune(now);
  if (callback_ || health_callback_) {
    BandwidthEstimate estimate = Estimate();
    if (callback_) {
      callback_(now, estimate.bps);
    }
    if (health_callback_) {
      health_callback_(now, estimate);
    }
  }
  next_ = sim_->Schedule(config_.period, [this] { Tick(); });
}

}  // namespace odnet
