#include "src/net/link.h"

#include <utility>

#include "src/util/check.h"

namespace odnet {

Link::Link(odsim::Simulator* sim, odpower::PowerManager* pm, const LinkConfig& config)
    : sim_(sim), pm_(pm), config_(config) {
  OD_CHECK(sim != nullptr);
  OD_CHECK(pm != nullptr);
  OD_CHECK(config.bandwidth_bps > 0.0);
  interrupt_pid_ = sim_->processes().RegisterProcess("Interrupts-WaveLAN");
  interrupt_proc_ = sim_->processes().RegisterProcedure("_wavelan_intr");
}

void Link::set_bandwidth_bps(double bps) {
  OD_CHECK(bps > 0.0);
  config_.bandwidth_bps = bps;
}

void Link::SetOutage(bool outage) {
  if (outage_ == outage) {
    return;
  }
  outage_ = outage;
  if (!outage_ && !active_) {
    StartNext();  // Drain whatever queued while the channel was dead.
  }
}

odsim::SimDuration Link::TransferTime(size_t bytes) const {
  double seconds = static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return config_.setup_latency + odsim::SimDuration::Seconds(seconds);
}

void Link::Transfer(Direction direction, size_t bytes, odsim::EventFn on_done) {
  queue_.push_back(Pending{direction, bytes, std::move(on_done)});
  if (!active_) {
    StartNext();
  }
}

void Link::StartNext() {
  if (queue_.empty() || outage_) {
    // During an outage queued transfers stay parked; SetOutage(false)
    // restarts the pump.
    active_ = false;
    return;
  }
  active_ = true;
  Pending next = std::move(queue_.front());
  queue_.pop_front();

  pm_->BeginNetworkUse();
  pm_->wavelan()->Set(next.direction == Direction::kSend
                          ? odpower::WaveLanState::kTransmit
                          : odpower::WaveLanState::kReceive);

  // Interrupt-handler CPU load, spread across the transfer.
  size_t batches = next.bytes / config_.interrupt_batch_bytes;
  odsim::SimDuration duration = TransferTime(next.bytes);
  for (size_t i = 0; i < batches; ++i) {
    odsim::SimDuration at = duration * (static_cast<double>(i + 1) /
                                        static_cast<double>(batches + 1));
    sim_->Schedule(at, [this] {
      sim_->SubmitWork(interrupt_pid_, interrupt_proc_,
                       config_.interrupt_cpu_per_batch, nullptr);
    });
  }

  sim_->Schedule(duration, [this, bytes = next.bytes, duration,
                            on_done = std::move(next.on_done)]() mutable {
    total_bytes_ += bytes;
    total_busy_seconds_ += duration.seconds();
    pm_->wavelan()->Set(odpower::WaveLanState::kIdle);
    pm_->EndNetworkUse();
    if (on_done) {
      on_done();
    }
    StartNext();
  });
}

}  // namespace odnet
