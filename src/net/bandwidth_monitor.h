// Network bandwidth estimation.
//
// The initial Odyssey prototype adapted to network bandwidth; energy
// adaptation was added on top (Section 2.2).  This monitor completes that
// original path: it observes bytes moved by the link over a sliding window,
// periodically estimates available bandwidth, and reports it to the viceroy
// as ResourceId::kNetworkBandwidth so that registered application
// expectation windows trigger fidelity upcalls.

#ifndef SRC_NET_BANDWIDTH_MONITOR_H_
#define SRC_NET_BANDWIDTH_MONITOR_H_

#include <deque>
#include <functional>

#include "src/net/link.h"
#include "src/sim/simulator.h"

namespace odnet {

struct BandwidthMonitorConfig {
  // Estimation period.
  odsim::SimDuration period = odsim::SimDuration::Seconds(1);
  // Sliding window over which throughput is averaged.
  odsim::SimDuration window = odsim::SimDuration::Seconds(5);
};

class BandwidthMonitor {
 public:
  using EstimateFn = std::function<void(odsim::SimTime, double bps)>;

  BandwidthMonitor(odsim::Simulator* sim, Link* link,
                   const BandwidthMonitorConfig& config);

  BandwidthMonitor(const BandwidthMonitor&) = delete;
  BandwidthMonitor& operator=(const BandwidthMonitor&) = delete;

  void Start();
  void Stop();

  // Observed throughput over the sliding window, bits per second.  When the
  // link was idle the estimate reports the link's configured capacity (an
  // idle network is not a slow network).
  double EstimatedBps() const;

  // Called after every periodic estimate; wire this to
  // Viceroy::NotifyResourceLevel(kNetworkBandwidth, bps).
  void set_callback(EstimateFn callback) { callback_ = std::move(callback); }

 private:
  void Tick();
  void Prune(odsim::SimTime now) const;

  odsim::Simulator* sim_;
  Link* link_;
  BandwidthMonitorConfig config_;
  bool running_ = false;
  odsim::EventHandle next_;
  EstimateFn callback_;

  struct Observation {
    odsim::SimTime time;
    size_t bytes;
    double busy_seconds;
  };
  mutable std::deque<Observation> observations_;
};

}  // namespace odnet

#endif  // SRC_NET_BANDWIDTH_MONITOR_H_
