// Network bandwidth estimation.
//
// The initial Odyssey prototype adapted to network bandwidth; energy
// adaptation was added on top (Section 2.2).  This monitor completes that
// original path: it observes bytes moved by the link over a sliding window,
// periodically estimates available bandwidth, and reports it to the viceroy
// as ResourceId::kNetworkBandwidth so that registered application
// expectation windows trigger fidelity upcalls.

#ifndef SRC_NET_BANDWIDTH_MONITOR_H_
#define SRC_NET_BANDWIDTH_MONITOR_H_

#include <deque>
#include <functional>

#include "src/net/link.h"
#include "src/sim/simulator.h"

namespace odnet {

struct BandwidthMonitorConfig {
  // Estimation period.
  odsim::SimDuration period = odsim::SimDuration::Seconds(1);
  // Sliding window over which throughput is averaged.
  odsim::SimDuration window = odsim::SimDuration::Seconds(5);
};

// One periodic bandwidth estimate, with the health signals the viceroy's
// outage clamp keys on.  `outage` is the link's hard outage flag; `stale`
// means transfers are parked while the link's pump is not running — a
// wedged channel that has not declared an outage.  (A long in-flight
// transfer is busy, not stale.)  Either way `bps` is zero: an unreachable
// network has no usable bandwidth.
struct BandwidthEstimate {
  double bps = 0.0;
  bool outage = false;
  bool stale = false;

  bool healthy() const { return !outage && !stale; }
};

class BandwidthMonitor {
 public:
  using EstimateFn = std::function<void(odsim::SimTime, double bps)>;
  using HealthFn = std::function<void(odsim::SimTime, const BandwidthEstimate&)>;

  BandwidthMonitor(odsim::Simulator* sim, Link* link,
                   const BandwidthMonitorConfig& config);

  BandwidthMonitor(const BandwidthMonitor&) = delete;
  BandwidthMonitor& operator=(const BandwidthMonitor&) = delete;

  void Start();
  void Stop();

  // Observed throughput over the sliding window, bits per second.  When the
  // link was idle the estimate reports the link's configured capacity (an
  // idle network is not a slow network).  Zero during an outage.
  double EstimatedBps() const { return Estimate().bps; }

  // The full estimate, health flags included.
  BandwidthEstimate Estimate() const;

  // Called after every periodic estimate; wire this to
  // Viceroy::NotifyResourceLevel(kNetworkBandwidth, bps).
  void set_callback(EstimateFn callback) { callback_ = std::move(callback); }

  // Richer periodic callback carrying the health flags; wire this to
  // Viceroy::NotifyLinkHealth so applications are clamped to lowest
  // fidelity through an outage.  Both callbacks fire when both are set.
  void set_health_callback(HealthFn callback) {
    health_callback_ = std::move(callback);
  }

 private:
  void Tick();
  void Prune(odsim::SimTime now) const;

  odsim::Simulator* sim_;
  Link* link_;
  BandwidthMonitorConfig config_;
  bool running_ = false;
  odsim::EventHandle next_;
  EstimateFn callback_;
  HealthFn health_callback_;

  struct Observation {
    odsim::SimTime time;
    size_t bytes;
    double busy_seconds;
  };
  mutable std::deque<Observation> observations_;
};

}  // namespace odnet

#endif  // SRC_NET_BANDWIDTH_MONITOR_H_
