// Recorded-artifact lookup for replay-mode tests.
//
// The reproduction bands in tests/repro/ historically re-simulated every
// scenario the bench experiments already run, doubling CI simulation time.
// ArtifactReplay lets them consume a recorded run instead: point
// ODBENCH_ARTIFACT_DIR at a directory of `odbench run all --out` artifacts
// and each band test asserts the paper's bands against the recorded
// cross-trial means; every accessor returns nullopt when replay is
// disabled or the artifact/set/key is absent, which is the caller's signal
// to fall back to live simulation.
//
//   const auto& replay = odharness::ArtifactReplay::Env();
//   if (auto mean = replay.SetMean("fig06_video", "Video 1/Combined")) {
//     // assert bands against *mean
//   } else {
//     // simulate live, as before
//   }
//
// Artifacts load lazily and are cached per experiment, so a test binary
// touching fig06 fifty times parses fig06_video.json once.

#ifndef SRC_HARNESS_ARTIFACT_REPLAY_H_
#define SRC_HARNESS_ARTIFACT_REPLAY_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "src/harness/artifact.h"

namespace odharness {

class ArtifactReplay {
 public:
  // Reads artifacts from `dir` (one <experiment>.json per experiment); an
  // empty dir disables replay and every accessor returns nullopt.
  //
  // `expected_fault_plan` is the canonical disturbance spec the consumer
  // is asserting against ("" = a clean run, the usual case for the band
  // tests).  An artifact recorded under a *different* plan answers a
  // different question, so it is rejected — with a one-time diagnostic —
  // and the caller's nullopt path falls back to live simulation.
  explicit ArtifactReplay(std::string dir, std::string expected_fault_plan = "");

  // Shared instance configured from $ODBENCH_ARTIFACT_DIR.
  static const ArtifactReplay& Env();

  bool enabled() const { return !dir_.empty(); }

  // The recorded artifact for `experiment`, or nullptr when replay is
  // disabled, the file is missing, or it fails to parse.
  const RunArtifact* Get(const std::string& experiment) const;

  // Cross-trial mean of a set's headline value.
  std::optional<double> SetMean(const std::string& experiment,
                                const std::string& label) const;
  // Cross-trial mean of one per-process breakdown key of a set.
  std::optional<double> BreakdownMean(const std::string& experiment,
                                      const std::string& label,
                                      const std::string& key) const;
  // Cross-trial mean of one per-component key of a set.
  std::optional<double> ComponentMean(const std::string& experiment,
                                      const std::string& label,
                                      const std::string& key) const;
  // A recorded scalar note.
  std::optional<double> Note(const std::string& experiment,
                             const std::string& key) const;

 private:
  const TrialSet* FindSet(const std::string& experiment,
                          const std::string& label) const;

  std::string dir_;
  std::string expected_fault_plan_;
  mutable std::mutex mutex_;
  mutable std::map<std::string, std::optional<RunArtifact>> cache_;
};

}  // namespace odharness

#endif  // SRC_HARNESS_ARTIFACT_REPLAY_H_
