#include "src/harness/artifact.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

namespace odharness {

namespace {

#ifndef ODHARNESS_GIT_REVISION
#define ODHARNESS_GIT_REVISION "unknown"
#endif

std::vector<std::pair<std::string, double>>& CalibrationStore() {
  static auto* store = new std::vector<std::pair<std::string, double>>();
  return *store;
}

JsonValue MapToJson(const std::map<std::string, double>& map) {
  JsonValue object = JsonValue::MakeObject();
  for (const auto& [key, value] : map) {
    object.Set(key, value);
  }
  return object;
}

std::map<std::string, double> JsonToMap(const JsonValue* json) {
  std::map<std::string, double> out;
  if (json != nullptr) {
    for (const auto& [key, value] : json->object()) {
      out[key] = value.AsDouble();
    }
  }
  return out;
}

JsonValue SummaryToJson(const odutil::Summary& summary) {
  JsonValue object = JsonValue::MakeObject();
  object.Set("n", summary.n);
  object.Set("mean", summary.mean);
  object.Set("stddev", summary.stddev);
  object.Set("ci90", summary.ci90_halfwidth);
  object.Set("min", summary.min);
  object.Set("max", summary.max);
  return object;
}

}  // namespace

void SetProvenanceCalibration(
    std::vector<std::pair<std::string, double>> constants) {
  CalibrationStore() = std::move(constants);
}

const std::vector<std::pair<std::string, double>>& ProvenanceCalibration() {
  return CalibrationStore();
}

std::string BuildGitRevision() { return ODHARNESS_GIT_REVISION; }

JsonValue ProvenanceToJson(const Provenance& provenance) {
  JsonValue prov = JsonValue::MakeObject();
  prov.Set("git_revision", provenance.git_revision);
  JsonValue seed_policy = JsonValue::MakeObject();
  seed_policy.Set("trials_override", provenance.trials_override);
  seed_policy.Set("seed_override", provenance.seed_override);
  prov.Set("seed_policy", std::move(seed_policy));
  if (!provenance.fault_plan.empty()) {
    prov.Set("fault_plan", provenance.fault_plan);
  }
  if (!provenance.scenario.empty()) {
    prov.Set("scenario", provenance.scenario);
  }
  JsonValue calibration = JsonValue::MakeObject();
  for (const auto& [key, value] : provenance.calibration) {
    calibration.Set(key, value);
  }
  prov.Set("calibration", std::move(calibration));
  return prov;
}

Provenance ProvenanceFromJson(const JsonValue* json) {
  Provenance provenance;
  if (json == nullptr || !json->is_object()) {
    return provenance;
  }
  if (const JsonValue* rev = json->Find("git_revision")) {
    provenance.git_revision = rev->AsString();
  }
  if (const JsonValue* seed_policy = json->Find("seed_policy")) {
    provenance.trials_override =
        static_cast<int>(seed_policy->DoubleAt("trials_override"));
    provenance.seed_override =
        static_cast<uint64_t>(seed_policy->DoubleAt("seed_override"));
  }
  if (const JsonValue* fault_plan = json->Find("fault_plan")) {
    provenance.fault_plan = fault_plan->AsString();
  }
  if (const JsonValue* scenario = json->Find("scenario")) {
    provenance.scenario = scenario->AsString();
  }
  if (const JsonValue* calibration = json->Find("calibration")) {
    for (const auto& [key, value] : calibration->object()) {
      provenance.calibration.emplace_back(key, value.AsDouble());
    }
  }
  return provenance;
}

bool WriteJsonFile(const std::string& path, const JsonValue& json,
                   bool compact) {
  // Write-then-rename: a child killed mid-write (run-all schedules each
  // experiment in its own process) must never leave a truncated document
  // that a later diff or replay would consume as truth.
  const std::string tmp = path + ".tmp";
  {
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
        std::fopen(tmp.c_str(), "w"), &std::fclose);
    if (file == nullptr) {
      return false;
    }
    const std::string text = json.Dump(/*indent=*/compact ? 0 : 2);
    if (std::fwrite(text.data(), 1, text.size(), file.get()) != text.size() ||
        std::fflush(file.get()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void RunArtifact::AddSet(std::string label, TrialSet set) {
  sets.push_back(LabeledSet{std::move(label), std::move(set)});
}

void RunArtifact::AddNote(std::string key, double value) {
  for (auto& [k, v] : notes) {
    if (k == key) {
      v = value;
      return;
    }
  }
  notes.emplace_back(std::move(key), value);
}

const RunArtifact::LabeledSet* RunArtifact::FindSet(
    const std::string& label) const {
  for (const LabeledSet& labeled : sets) {
    if (labeled.label == label) {
      return &labeled;
    }
  }
  return nullptr;
}

std::optional<double> RunArtifact::FindNote(const std::string& key) const {
  for (const auto& [k, v] : notes) {
    if (k == key) {
      return v;
    }
  }
  return std::nullopt;
}

JsonValue RunArtifact::ToJson() const {
  JsonValue root = JsonValue::MakeObject();
  root.Set("schema_version", kSchemaVersion);
  root.Set("experiment", experiment);
  root.Set("exit_code", exit_code);

  root.Set("provenance", ProvenanceToJson(provenance));

  JsonValue sets_json = JsonValue::MakeArray();
  for (const LabeledSet& labeled : sets) {
    JsonValue set_json = JsonValue::MakeObject();
    set_json.Set("label", labeled.label);
    set_json.Set("base_seed", labeled.set.base_seed);
    JsonValue trials = JsonValue::MakeArray();
    for (const TrialSample& trial : labeled.set.trials) {
      JsonValue trial_json = JsonValue::MakeObject();
      trial_json.Set("value", trial.value);
      if (!trial.breakdown.empty()) {
        trial_json.Set("breakdown", MapToJson(trial.breakdown));
      }
      if (!trial.components.empty()) {
        trial_json.Set("components", MapToJson(trial.components));
      }
      trials.Append(std::move(trial_json));
    }
    set_json.Set("trials", std::move(trials));
    set_json.Set("summary", SummaryToJson(labeled.set.summary));
    if (!labeled.set.breakdown_summaries.empty()) {
      JsonValue means = JsonValue::MakeObject();
      for (const auto& [key, summary] : labeled.set.breakdown_summaries) {
        means.Set(key, summary.mean);
      }
      set_json.Set("breakdown_means", std::move(means));
    }
    sets_json.Append(std::move(set_json));
  }
  root.Set("sets", std::move(sets_json));

  JsonValue notes_json = JsonValue::MakeObject();
  for (const auto& [key, value] : notes) {
    notes_json.Set(key, value);
  }
  root.Set("notes", std::move(notes_json));
  return root;
}

std::optional<RunArtifact> RunArtifact::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return std::nullopt;
  }
  const JsonValue* version = json.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return std::nullopt;
  }
  const int schema = static_cast<int>(version->AsDouble());
  if (schema < kMinReadSchemaVersion || schema > kSchemaVersion) {
    return std::nullopt;
  }
  const JsonValue* name = json.Find("experiment");
  if (name == nullptr || !name->is_string()) {
    return std::nullopt;
  }

  RunArtifact artifact;
  artifact.experiment = name->AsString();
  artifact.exit_code = static_cast<int>(json.DoubleAt("exit_code"));

  // v2 documents predate provenance; ProvenanceFromJson leaves the
  // defaults in place for an absent block.
  if (const JsonValue* prov = json.Find("provenance")) {
    if (!prov->is_object()) {
      return std::nullopt;
    }
  }
  artifact.provenance = ProvenanceFromJson(json.Find("provenance"));

  if (const JsonValue* sets = json.Find("sets")) {
    if (!sets->is_array()) {
      return std::nullopt;
    }
    for (const JsonValue& set_json : sets->array()) {
      // Every recorded set carries a label, a trials array, and a summary;
      // anything else is a malformed (e.g. hand-edited) document.
      const JsonValue* label = set_json.Find("label");
      const JsonValue* trials = set_json.Find("trials");
      const JsonValue* summary = set_json.Find("summary");
      if (label == nullptr || !label->is_string() || trials == nullptr ||
          !trials->is_array() || summary == nullptr || !summary->is_object()) {
        return std::nullopt;
      }
      LabeledSet labeled;
      labeled.label = label->AsString();
      labeled.set.base_seed =
          static_cast<uint64_t>(set_json.DoubleAt("base_seed"));
      for (const JsonValue& trial_json : trials->array()) {
        if (!trial_json.is_object()) {
          return std::nullopt;
        }
        TrialSample trial;
        trial.value = trial_json.DoubleAt("value");
        trial.breakdown = JsonToMap(trial_json.Find("breakdown"));
        trial.components = JsonToMap(trial_json.Find("components"));
        labeled.set.trials.push_back(std::move(trial));
      }
      // Summaries are derived data; recompute rather than trust the file.
      labeled.set.Summarize();
      artifact.sets.push_back(std::move(labeled));
    }
  }
  if (const JsonValue* notes = json.Find("notes")) {
    for (const auto& [key, value] : notes->object()) {
      artifact.notes.emplace_back(key, value.AsDouble());
    }
  }
  return artifact;
}

bool RunArtifact::WriteFile(const std::string& path, bool compact) const {
  return WriteJsonFile(path, ToJson(), compact);
}

std::optional<RunArtifact> RunArtifact::ReadFile(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "r"), &std::fclose);
  if (file == nullptr) {
    return std::nullopt;
  }
  std::string text;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    text.append(buffer, read);
  }
  std::optional<JsonValue> json = JsonValue::Parse(text);
  if (!json.has_value()) {
    return std::nullopt;
  }
  return FromJson(*json);
}

}  // namespace odharness
