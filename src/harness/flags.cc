#include "src/harness/flags.h"

#include <cstdlib>
#include <set>

namespace odharness {

namespace {

bool IsFlagToken(const std::string& token) {
  return token.size() > 2 && token[0] == '-' && token[1] == '-';
}

}  // namespace

Flags::Flags(int argc, char** argv)
    : Flags([argc, argv] {
        std::vector<std::string> args;
        args.reserve(argc > 1 ? static_cast<size_t>(argc - 1) : 0);
        for (int i = 1; i < argc; ++i) {
          args.emplace_back(argv[i]);
        }
        return args;
      }()) {}

Flags::Flags(std::vector<std::string> args) {
  bool seen_flag = false;
  for (std::string& arg : args) {
    if (IsFlagToken(arg)) {
      seen_flag = true;
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        tokens_.push_back(arg.substr(0, eq));
        tokens_.push_back(arg.substr(eq + 1));
        continue;
      }
    } else if (!seen_flag) {
      positional_.push_back(std::move(arg));
      continue;
    }
    tokens_.push_back(std::move(arg));
  }
}

bool Flags::Has(const std::string& name) const {
  const std::string needle = "--" + name;
  for (const std::string& token : tokens_) {
    if (token == needle) {
      return true;
    }
  }
  return false;
}

const std::string* Flags::RawValue(const std::string& name) const {
  const std::string needle = "--" + name;
  for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
    if (tokens_[i] == needle && !IsFlagToken(tokens_[i + 1])) {
      return &tokens_[i + 1];
    }
  }
  return nullptr;
}

std::string Flags::GetString(const std::string& name,
                             std::string fallback) const {
  const std::string* value = RawValue(name);
  return value != nullptr ? *value : std::move(fallback);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const std::string* value = RawValue(name);
  return value != nullptr ? std::atof(value->c_str()) : fallback;
}

int Flags::GetInt(const std::string& name, int fallback) const {
  const std::string* value = RawValue(name);
  return value != nullptr ? std::atoi(value->c_str()) : fallback;
}

uint64_t Flags::GetUint64(const std::string& name, uint64_t fallback) const {
  const std::string* value = RawValue(name);
  return value != nullptr ? std::strtoull(value->c_str(), nullptr, 10)
                          : fallback;
}

bool Flags::Validate(std::initializer_list<const char*> value_flags,
                     std::initializer_list<const char*> bool_flags,
                     std::string* error) const {
  std::set<std::string> values;
  std::set<std::string> bools;
  for (const char* f : value_flags) {
    values.insert(std::string("--") + f);
  }
  for (const char* f : bool_flags) {
    bools.insert(std::string("--") + f);
  }
  for (size_t i = 0; i < tokens_.size(); ++i) {
    const std::string& token = tokens_[i];
    if (!IsFlagToken(token)) {
      if (error != nullptr) {
        *error = "unexpected argument '" + token + "'";
      }
      return false;
    }
    if (values.count(token) > 0) {
      if (i + 1 >= tokens_.size() || IsFlagToken(tokens_[i + 1])) {
        if (error != nullptr) {
          *error = "flag '" + token + "' requires a value";
        }
        return false;
      }
      ++i;  // Skip the value token.
      continue;
    }
    if (bools.count(token) > 0) {
      continue;
    }
    if (error != nullptr) {
      *error = "unknown flag '" + token + "'";
    }
    return false;
  }
  return true;
}

}  // namespace odharness
