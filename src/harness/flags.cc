#include "src/harness/flags.h"

#include <cerrno>
#include <charconv>
#include <cstdlib>

namespace odharness {

namespace {

bool IsFlagToken(const std::string& token) {
  return token.size() > 2 && token[0] == '-' && token[1] == '-';
}

[[noreturn]] void ThrowBadValue(const char* kind, const std::string& name,
                                const std::string& value) {
  throw FlagError("invalid " + std::string(kind) + " for --" + name + ": '" +
                  value + "'");
}

}  // namespace

Flags::Flags(int argc, char** argv)
    : Flags([argc, argv] {
        std::vector<std::string> args;
        args.reserve(argc > 1 ? static_cast<size_t>(argc - 1) : 0);
        for (int i = 1; i < argc; ++i) {
          args.emplace_back(argv[i]);
        }
        return args;
      }()) {}

Flags::Flags(std::vector<std::string> args) {
  bool end_of_flags = false;
  bool expect_value = false;  // Previous token was a bare "--flag".
  for (std::string& arg : args) {
    if (end_of_flags) {
      positional_.push_back(std::move(arg));
      continue;
    }
    if (arg == "--") {
      end_of_flags = true;
      expect_value = false;
      continue;
    }
    if (IsFlagToken(arg)) {
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        tokens_.push_back(Token{arg.substr(0, eq), /*is_flag_name=*/true});
        tokens_.push_back(Token{arg.substr(eq + 1), /*is_flag_name=*/false});
        expect_value = false;
      } else {
        tokens_.push_back(Token{std::move(arg), /*is_flag_name=*/true});
        expect_value = true;
      }
      continue;
    }
    if (expect_value) {
      tokens_.push_back(Token{std::move(arg), /*is_flag_name=*/false});
      expect_value = false;
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Flags::Has(const std::string& name) const {
  const std::string needle = "--" + name;
  for (const Token& token : tokens_) {
    if (token.is_flag_name && token.text == needle) {
      return true;
    }
  }
  return false;
}

const std::string* Flags::RawValue(const std::string& name) const {
  const std::string needle = "--" + name;
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i].is_flag_name && tokens_[i].text == needle) {
      if (i + 1 < tokens_.size() && !tokens_[i + 1].is_flag_name) {
        return &tokens_[i + 1].text;
      }
      return nullptr;
    }
  }
  return nullptr;
}

std::string Flags::GetString(const std::string& name,
                             std::string fallback) const {
  const std::string* value = RawValue(name);
  return value != nullptr ? *value : std::move(fallback);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const std::string* value = RawValue(name);
  if (value == nullptr) {
    return fallback;
  }
  if (value->empty()) {
    ThrowBadValue("number", name, *value);
  }
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(value->c_str(), &end);
  if (errno != 0 || end != value->c_str() + value->size()) {
    ThrowBadValue("number", name, *value);
  }
  return parsed;
}

int Flags::GetInt(const std::string& name, int fallback) const {
  const std::string* value = RawValue(name);
  if (value == nullptr) {
    return fallback;
  }
  int parsed = 0;
  auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), parsed);
  if (ec != std::errc() || ptr != value->data() + value->size()) {
    ThrowBadValue("integer", name, *value);
  }
  return parsed;
}

uint64_t Flags::GetUint64(const std::string& name, uint64_t fallback) const {
  const std::string* value = RawValue(name);
  if (value == nullptr) {
    return fallback;
  }
  uint64_t parsed = 0;
  auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), parsed);
  if (ec != std::errc() || ptr != value->data() + value->size()) {
    ThrowBadValue("unsigned integer", name, *value);
  }
  return parsed;
}

bool Flags::Validate(std::initializer_list<const char*> value_flags,
                     std::initializer_list<const char*> bool_flags,
                     std::string* error) const {
  auto fail = [error](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  for (size_t i = 0; i < tokens_.size(); ++i) {
    const Token& token = tokens_[i];
    // Value tokens are consumed alongside their flag below; by construction
    // every top-of-loop token is a flag name.
    const bool has_value = i + 1 < tokens_.size() && !tokens_[i + 1].is_flag_name;
    bool declared = false;
    for (const char* f : value_flags) {
      if (token.text.compare(2, std::string::npos, f) == 0) {
        if (!has_value) {
          return fail("flag '" + token.text + "' requires a value");
        }
        declared = true;
        break;
      }
    }
    if (!declared) {
      for (const char* f : bool_flags) {
        if (token.text.compare(2, std::string::npos, f) == 0) {
          if (has_value) {
            return fail("flag '" + token.text + "' does not take a value (got '" +
                        tokens_[i + 1].text + "'; use -- before positionals)");
          }
          declared = true;
          break;
        }
      }
    }
    if (!declared) {
      return fail("unknown flag '" + token.text + "'");
    }
    if (has_value) {
      ++i;  // Skip the value token.
    }
  }
  return true;
}

}  // namespace odharness
