#include "src/harness/trial_runner.h"

#include <set>

#include "src/harness/job_budget.h"
#include "src/util/check.h"

namespace odharness {

namespace {

// Summaries keyed by the union of map keys across trials, gathering values
// in trial-index order (missing keys contribute 0.0) so the result does not
// depend on execution order.
std::map<std::string, odutil::Summary> SummarizeKeyed(
    const std::vector<TrialSample>& trials,
    std::map<std::string, double> TrialSample::*field) {
  std::set<std::string> keys;
  for (const TrialSample& trial : trials) {
    for (const auto& [key, value] : trial.*field) {
      keys.insert(key);
    }
  }
  std::map<std::string, odutil::Summary> out;
  std::vector<double> values;
  for (const std::string& key : keys) {
    values.clear();
    values.reserve(trials.size());
    for (const TrialSample& trial : trials) {
      auto it = (trial.*field).find(key);
      values.push_back(it != (trial.*field).end() ? it->second : 0.0);
    }
    out[key] = odutil::Summarize(values);
  }
  return out;
}

}  // namespace

double TrialSet::Mean(const std::string& key) const {
  auto it = breakdown_summaries.find(key);
  return it != breakdown_summaries.end() ? it->second.mean : 0.0;
}

double TrialSet::ComponentMean(const std::string& key) const {
  auto it = component_summaries.find(key);
  return it != component_summaries.end() ? it->second.mean : 0.0;
}

void TrialSet::Summarize() {
  std::vector<double> values;
  values.reserve(trials.size());
  for (const TrialSample& trial : trials) {
    values.push_back(trial.value);
  }
  summary = odutil::Summarize(values);
  breakdown_summaries = SummarizeKeyed(trials, &TrialSample::breakdown);
  component_summaries = SummarizeKeyed(trials, &TrialSample::components);
}

TrialRunner::TrialRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

TrialSet TrialRunner::Run(int n, uint64_t base_seed,
                          const TrialFn& measure) const {
  OD_CHECK(n >= 0);
  TrialSet set;
  set.base_seed = base_seed;
  set.trials.resize(static_cast<size_t>(n));

  ParallelFor(n, jobs_, [&](int i) {
    set.trials[static_cast<size_t>(i)] =
        measure(base_seed + static_cast<uint64_t>(i));
  });

  set.Summarize();
  return set;
}

}  // namespace odharness
