#include "src/harness/job_budget.h"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "src/util/check.h"

namespace odharness {

JobBudget& JobBudget::Global() {
  static JobBudget* budget = new JobBudget();
  return *budget;
}

void JobBudget::ConfigureLocal(int tokens) {
  if (mode_ == Mode::kPipe) {
    return;  // Children of the run-all scheduler keep the inherited pipe.
  }
  mode_ = Mode::kLocal;
  local_tokens_.store(tokens < 0 ? 0 : tokens, std::memory_order_relaxed);
}

void JobBudget::ConfigurePipe(int read_fd, int write_fd) {
  mode_ = Mode::kPipe;
  read_fd_ = read_fd;
  write_fd_ = write_fd;
}

void JobBudget::Reset() {
  mode_ = Mode::kUnconfigured;
  local_tokens_.store(0, std::memory_order_relaxed);
  read_fd_ = -1;
  write_fd_ = -1;
}

bool JobBudget::TryAcquire() {
  switch (mode_) {
    case Mode::kUnconfigured:
      return true;
    case Mode::kLocal: {
      int available = local_tokens_.load(std::memory_order_relaxed);
      while (available > 0) {
        if (local_tokens_.compare_exchange_weak(available, available - 1,
                                                std::memory_order_relaxed)) {
          return true;
        }
      }
      return false;
    }
    case Mode::kPipe: {
#ifndef _WIN32
      char token = 0;
      return ::read(read_fd_, &token, 1) == 1;  // O_NONBLOCK: EAGAIN -> 0.
#else
      return true;
#endif
    }
  }
  return true;
}

void JobBudget::Release() {
  switch (mode_) {
    case Mode::kUnconfigured:
      break;
    case Mode::kLocal:
      local_tokens_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Mode::kPipe: {
#ifndef _WIN32
      char token = '+';
      // A jobserver pipe never fills past its initial stock, so a short
      // write here means the fd is gone — nothing sane to do but drop it.
      [[maybe_unused]] ssize_t rc = ::write(write_fd_, &token, 1);
#endif
      break;
    }
  }
}

void ParallelFor(int n, int max_workers,
                 const std::function<void(int)>& task) {
  OD_CHECK(n >= 0);
  if (n == 0) {
    return;
  }

  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  // Exceptions recorded per task index; the lowest-index one wins so the
  // propagated error does not depend on thread completion order.
  std::vector<std::exception_ptr> errors(static_cast<size_t>(n));
  std::mutex error_mutex;

  auto work = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        errors[static_cast<size_t>(i)] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const int wanted = (max_workers < n ? max_workers : n) - 1;
  std::vector<std::thread> helpers;
  if (wanted > 0) {
    JobBudget& budget = JobBudget::Global();
    helpers.reserve(static_cast<size_t>(wanted));
    for (int w = 0; w < wanted; ++w) {
      if (next.load(std::memory_order_relaxed) >= n || !budget.TryAcquire()) {
        break;  // Tasks exhausted, or no token free: the caller works alone.
      }
      helpers.emplace_back([&budget, &work] {
        work();
        budget.Release();
      });
    }
  }
  work();
  for (std::thread& helper : helpers) {
    helper.join();
  }

  if (failed.load(std::memory_order_relaxed)) {
    for (std::exception_ptr& error : errors) {
      if (error != nullptr) {
        std::rethrow_exception(error);
      }
    }
  }
}

}  // namespace odharness
