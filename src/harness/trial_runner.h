// Parallel execution of independent seeded trials.
//
// The paper reports every figure value as the mean of five or ten trials at
// distinct seeds.  Each trial builds its own TestBed/Simulator, so trials
// are embarrassingly parallel; TrialRunner farms them out to a thread pool
// and collects results *by trial index*, which makes the output bit-identical
// to a serial run regardless of the job count or completion order.
//
// A trial produces a TrialSample: the headline value (usually Joules) plus
// optional named breakdowns (per-process energy, adaptation counts, ...).
// TrialSet aggregates a run: per-trial samples, a Summary of the values, and
// a Summary per breakdown key — which is how the figure benches now report
// per-process columns as cross-trial means instead of last-trial snapshots.

#ifndef SRC_HARNESS_TRIAL_RUNNER_H_
#define SRC_HARNESS_TRIAL_RUNNER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/util/stats.h"

namespace odharness {

struct TrialSample {
  TrialSample() = default;
  explicit TrialSample(double v, std::map<std::string, double> b = {},
                       std::map<std::string, double> c = {})
      : value(v), breakdown(std::move(b)), components(std::move(c)) {}

  double value = 0.0;
  // Named per-trial metrics: per-process energy in the figure benches,
  // adaptation counts / goal outcomes in the goal benches.
  std::map<std::string, double> breakdown;
  // Per-hardware-component energy, when the measurement provides it.
  std::map<std::string, double> components;
};

using TrialFn = std::function<TrialSample(uint64_t seed)>;

struct TrialSet {
  uint64_t base_seed = 0;
  std::vector<TrialSample> trials;  // Indexed by trial number.
  odutil::Summary summary;          // Over the trial values.
  std::map<std::string, odutil::Summary> breakdown_summaries;
  std::map<std::string, odutil::Summary> component_summaries;

  // Cross-trial mean of a breakdown / component key (0.0 when absent).
  double Mean(const std::string& key) const;
  double ComponentMean(const std::string& key) const;

  // Recomputes the summaries from `trials`; used after filling `trials`
  // directly (artifact round-trip) and by TrialRunner itself.
  void Summarize();
};

class TrialRunner {
 public:
  // `jobs` <= 1 runs serially on the calling thread.
  explicit TrialRunner(int jobs = 1);

  int jobs() const { return jobs_; }

  // Runs `measure` at seeds base_seed .. base_seed + n - 1.  Results are
  // deterministic: the set is identical for any job count.
  TrialSet Run(int n, uint64_t base_seed, const TrialFn& measure) const;

 private:
  int jobs_;
};

}  // namespace odharness

#endif  // SRC_HARNESS_TRIAL_RUNNER_H_
