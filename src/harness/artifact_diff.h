// Structural comparison of two run artifacts.
//
// `odbench diff a.json b.json [--rtol R --atol A]` turns the JSON artifacts
// from byte-diffable blobs into a regression oracle: sets are matched by
// label (order-insensitive) and notes by key, every measured cell — trial
// values, per-trial breakdowns and components, trial counts, seeds — is
// compared, and each numeric difference is classified against the
// tolerance |a - b| <= atol + rtol * max(|a|, |b|).  NaN compares equal to
// NaN and each infinity to itself; any other non-finite mismatch is out of
// tolerance.
//
// Severity maps to the CLI exit code:
//   0  identical — every compared cell bit-equal;
//   1  drift     — numeric changes only, all within tolerance;
//   2  regression — out-of-tolerance changes, or structure changed (set or
//                   note present on one side only, trial count or seed
//                   mismatch, different experiment or exit code).
//
// Provenance (git revision, seed policy, calibration constants) is
// self-describing metadata, not measured content: differences are reported
// as hints — a perturbed calibration constant is named right next to the
// sets it shifted — but never affect the severity, so a committed golden
// still compares identical against a fresh run from a later commit.

#ifndef SRC_HARNESS_ARTIFACT_DIFF_H_
#define SRC_HARNESS_ARTIFACT_DIFF_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/artifact.h"

namespace odharness {

struct DiffOptions {
  double rtol = 0.0;  // Relative tolerance.
  double atol = 0.0;  // Absolute tolerance.
};

// True when x and y are equal under the diff's tolerance rule.
bool WithinTolerance(double x, double y, const DiffOptions& options);

// Human-readable descriptions of every provenance difference between `a`
// and `b` (empty when the blocks match).  Shared by the scalar diff and the
// trace diff (src/trace/trace_diff.h) so both report provenance drift the
// same way — always as information, never as a verdict.
std::vector<std::string> ProvenanceHints(const Provenance& a,
                                         const Provenance& b);

struct ArtifactDiff {
  enum class Severity { kIdentical = 0, kDrift = 1, kRegression = 2 };

  struct Change {
    enum class Kind {
      kAddedInB,    // Cell exists only in the second artifact.
      kRemovedInB,  // Cell exists only in the first.
      kChanged,     // Numeric value differs; `within` classifies it.
      kStructural,  // Non-tolerance-eligible mismatch (seed, count, name).
    };
    Kind kind = Kind::kChanged;
    // Dotted location, e.g. "sets[Video 1/Combined].trials[3].value" or
    // "notes[background_watts]".
    std::string path;
    double a = 0.0, b = 0.0;  // Values for kChanged.
    std::string detail;       // Human-readable summary for the other kinds.
    bool within = false;      // kChanged only: inside the tolerance?
  };

  Severity severity = Severity::kIdentical;
  std::vector<Change> changes;
  // Provenance differences (informational; never affect severity).
  std::vector<std::string> provenance_hints;

  bool identical() const { return severity == Severity::kIdentical; }
  // The `odbench diff` exit code for this comparison: 0, 1, or 2.
  int ExitCode() const { return static_cast<int>(severity); }
};

ArtifactDiff DiffArtifacts(const RunArtifact& a, const RunArtifact& b,
                           const DiffOptions& options = {});

// Prints a human-readable report (changes first, provenance hints after,
// one-line verdict last).  Quiet when the artifacts are identical and no
// provenance drifted.
void PrintArtifactDiff(const ArtifactDiff& diff, std::FILE* out);

}  // namespace odharness

#endif  // SRC_HARNESS_ARTIFACT_DIFF_H_
