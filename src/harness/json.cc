#include "src/harness/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace odharness {

namespace {

const std::string kEmptyString;
const JsonValue::Array kEmptyArray;
const JsonValue::Object kEmptyObject;

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the conventional stand-in.
    *out += "null";
    return;
  }
  // Shortest representation that round-trips the exact double.
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec != std::errc()) {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
    return;
  }
  out->append(buf, ptr);
}

// Recursive-descent parser.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> ParseDocument() {
    std::optional<JsonValue> value = ParseValue();
    SkipWhitespace();
    if (!value.has_value() || pos_ != text_.size()) {
      return std::nullopt;
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return std::nullopt;
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      std::optional<std::string> s = ParseString();
      if (!s.has_value()) {
        return std::nullopt;
      }
      return JsonValue(*std::move(s));
    }
    if (ConsumeLiteral("true")) {
      return JsonValue(true);
    }
    if (ConsumeLiteral("false")) {
      return JsonValue(false);
    }
    if (ConsumeLiteral("null")) {
      return JsonValue();
    }
    return ParseNumber();
  }

  std::optional<JsonValue> ParseObject() {
    if (!Consume('{')) {
      return std::nullopt;
    }
    JsonValue object = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) {
      return object;
    }
    while (true) {
      SkipWhitespace();
      std::optional<std::string> key = ParseString();
      if (!key.has_value() || !Consume(':')) {
        return std::nullopt;
      }
      std::optional<JsonValue> value = ParseValue();
      if (!value.has_value()) {
        return std::nullopt;
      }
      object.Set(*std::move(key), *std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return object;
      }
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseArray() {
    if (!Consume('[')) {
      return std::nullopt;
    }
    JsonValue array = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) {
      return array;
    }
    while (true) {
      std::optional<JsonValue> value = ParseValue();
      if (!value.has_value()) {
        return std::nullopt;
      }
      array.Append(*std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return array;
      }
      return std::nullopt;
    }
  }

  std::optional<std::string> ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return std::nullopt;
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return std::nullopt;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return std::nullopt;
          }
          unsigned code = 0;
          auto [ptr, ec] = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || ptr != text_.data() + pos_ + 4) {
            return std::nullopt;
          }
          pos_ += 4;
          // UTF-8 encode the basic-multilingual-plane code point.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // Unterminated string.
  }

  std::optional<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return std::nullopt;
    }
    double value = 0.0;
    auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return std::nullopt;
    }
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue::Type JsonValue::type() const {
  switch (value_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:
      return Type::kNumber;
    case 3:
      return Type::kString;
    case 4:
      return Type::kArray;
    default:
      return Type::kObject;
  }
}

bool JsonValue::AsBool(bool fallback) const {
  if (const bool* b = std::get_if<bool>(&value_)) {
    return *b;
  }
  return fallback;
}

double JsonValue::AsDouble(double fallback) const {
  if (const double* d = std::get_if<double>(&value_)) {
    return *d;
  }
  return fallback;
}

const std::string& JsonValue::AsString() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) {
    return *s;
  }
  return kEmptyString;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  if (!std::holds_alternative<Object>(value_)) {
    value_ = Object{};
  }
  Object& object = std::get<Object>(value_);
  for (auto& [k, v] : object) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object.emplace_back(key, std::move(value));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (const Object* object = std::get_if<Object>(&value_)) {
    for (const auto& [k, v] : *object) {
      if (k == key) {
        return &v;
      }
    }
  }
  return nullptr;
}

JsonValue* JsonValue::Find(const std::string& key) {
  if (Object* object = std::get_if<Object>(&value_)) {
    for (auto& [k, v] : *object) {
      if (k == key) {
        return &v;
      }
    }
  }
  return nullptr;
}

bool JsonValue::Remove(const std::string& key) {
  if (Object* object = std::get_if<Object>(&value_)) {
    for (auto it = object->begin(); it != object->end(); ++it) {
      if (it->first == key) {
        object->erase(it);
        return true;
      }
    }
  }
  return false;
}

double JsonValue::DoubleAt(const std::string& key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr ? value->AsDouble(fallback) : fallback;
}

void JsonValue::Append(JsonValue value) {
  if (!std::holds_alternative<Array>(value_)) {
    value_ = Array{};
  }
  std::get<Array>(value_).push_back(std::move(value));
}

const JsonValue::Array& JsonValue::array() const {
  if (const Array* array = std::get_if<Array>(&value_)) {
    return *array;
  }
  return kEmptyArray;
}

JsonValue::Array& JsonValue::array() {
  if (!std::holds_alternative<Array>(value_)) {
    value_ = Array{};  // Coerce, matching Append() on a non-array value.
  }
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::object() const {
  if (const Object* object = std::get_if<Object>(&value_)) {
    return *object;
  }
  return kEmptyObject;
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  if (indent > 0) {
    out.push_back('\n');
  }
  return out;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const std::string newline =
      indent > 0 ? "\n" + std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
                 : "";
  const std::string closing =
      indent > 0 ? "\n" + std::string(static_cast<size_t>(indent) * depth, ' ') : "";
  switch (type()) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += std::get<bool>(value_) ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, std::get<double>(value_));
      break;
    case Type::kString:
      AppendEscaped(out, std::get<std::string>(value_));
      break;
    case Type::kArray: {
      const Array& array = std::get<Array>(value_);
      if (array.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < array.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        *out += newline;
        array[i].DumpTo(out, indent, depth + 1);
      }
      *out += closing;
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      const Object& object = std::get<Object>(value_);
      if (object.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        *out += newline;
        AppendEscaped(out, key);
        *out += indent > 0 ? ": " : ":";
        value.DumpTo(out, indent, depth + 1);
      }
      *out += closing;
      out->push_back('}');
      break;
    }
  }
}

std::optional<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace odharness
