// A process-global budget of worker threads, shared by every layer of the
// harness that can run work concurrently.
//
// Both the trial pool (TrialRunner), the sweep-cell pool (Sweep), and the
// experiment-level scheduler draw *extra* workers from one budget, so
// `--jobs J` bounds the total number of computing threads no matter how the
// layers nest — a sweep cell that itself runs a trial set cannot multiply
// J×J threads (no pool-on-pool oversubscription).  The always-present
// calling thread is free: a budget token buys one helper thread beyond it.
//
// Three modes:
//   - unconfigured: TryAcquire always succeeds (standalone library use,
//     e.g. a bare TrialRunner in a unit test keeps its historical behavior);
//   - local: an in-process atomic token counter (`odbench run <one>`);
//   - pipe: tokens are single bytes in an inherited pipe, the classic make
//     jobserver scheme, so the forked children of `odbench run all` and
//     their helper threads all share one budget across process boundaries.
//
// Acquisition is always non-blocking.  Work never waits for a token: the
// submitting thread executes tasks itself and helpers only join when a
// token is free, which is what makes the nesting deadlock-free.

#ifndef SRC_HARNESS_JOB_BUDGET_H_
#define SRC_HARNESS_JOB_BUDGET_H_

#include <atomic>
#include <functional>

namespace odharness {

class JobBudget {
 public:
  // The single process-wide budget.
  static JobBudget& Global();

  // Installs an in-process budget of `tokens` helper slots (typically
  // jobs - 1).  No-op when a pipe budget is active: a forked child must
  // keep drawing from its parent's pipe, not shadow it with a local pool.
  void ConfigureLocal(int tokens);

  // Installs the jobserver pipe (read end, write end).  The caller has
  // already stocked the pipe; the read end must be O_NONBLOCK.
  void ConfigurePipe(int read_fd, int write_fd);

  // Returns to the unconfigured (unlimited) state.  Test helper.
  void Reset();

  // Takes one helper token; false when the budget is exhausted.
  bool TryAcquire();
  // Returns a token previously obtained from TryAcquire.
  void Release();

  bool is_pipe() const { return mode_ == Mode::kPipe; }

 private:
  enum class Mode { kUnconfigured, kLocal, kPipe };

  Mode mode_ = Mode::kUnconfigured;
  std::atomic<int> local_tokens_{0};
  int read_fd_ = -1;
  int write_fd_ = -1;
};

// Runs task(0) .. task(n-1), in index order on the calling thread plus up
// to max_workers - 1 helper threads, each gated on a token from
// JobBudget::Global().  Tasks must be independent; results should be
// written to preallocated slots indexed by task id, which is what keeps
// callers' output identical for any worker count.  If tasks throw, the
// remaining tasks are abandoned and the exception from the lowest task
// index is rethrown (deterministically, regardless of completion order).
void ParallelFor(int n, int max_workers, const std::function<void(int)>& task);

}  // namespace odharness

#endif  // SRC_HARNESS_JOB_BUDGET_H_
