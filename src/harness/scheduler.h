// Experiment-level scheduling for `odbench run <name|all>`.
//
// RunExperiment executes one registered experiment: prints its header and
// footer, times it, and writes the JSON artifact.  A failed artifact write
// is a nonzero exit, not a stderr whisper — CI must not pass with missing
// artifacts.
//
// RunExperiments runs a whole suite.  With --jobs > 1 (on POSIX) it forks
// one child per experiment, scheduling expensive experiments first (see
// Experiment::cost_hint) so the long pole overlaps the short tail, and
// bounds *total* concurrency — child processes plus every trial/sweep
// helper thread inside them — with one jobserver pipe shared through
// JobBudget: a child's main thread costs one token (held by the parent for
// the child's lifetime) and each helper thread inside any child costs one
// more, so `--jobs J` never oversubscribes no matter how the levels nest.
//
// Determinism contract: each child's stdout+stderr is captured to a log
// file and replayed in registry order as experiments complete, and the
// artifacts are byte-identical to a serial run — the parallel run differs
// only in the wall-clock numbers printed to the console.

#ifndef SRC_HARNESS_SCHEDULER_H_
#define SRC_HARNESS_SCHEDULER_H_

#include <vector>

#include "src/harness/registry.h"

namespace odharness {

// Runs one experiment under `options`, writing its artifact when
// options.out_dir is set.  Returns the experiment's rc, or nonzero when
// the artifact cannot be written.
int RunExperiment(const Experiment& experiment, const RunOptions& options);

// Runs every experiment, overlapping them under the shared job budget when
// options.jobs > 1; output is replayed in list order.  Returns the worst
// per-experiment rc.  Falls back to a serial loop when jobs <= 1 or the
// platform cannot fork.
int RunExperiments(const std::vector<const Experiment*>& experiments,
                   const RunOptions& options);

}  // namespace odharness

#endif  // SRC_HARNESS_SCHEDULER_H_
