// Deterministic parallel execution of heterogeneous sweep cells.
//
// RunTrials covers the N-trials-at-consecutive-seeds shape, but several
// experiments sweep something else entirely: fig16_summary measures a
// 16-object matrix, fig18_zoned a zone-count grid, ablate_cpu_scaling a
// clock ladder.  Those used to run serially.  A Sweep lets an experiment
// submit each independent cell — a labeled closure returning a TrialSample,
// or a whole RunTrials-shaped set — and then execute all of them on the
// shared worker budget.  Results are collected and recorded in the run
// artifact strictly by submission index, so tables and JSON artifacts are
// bit-identical to a serial run for any --jobs value: the same guarantee
// TrialRunner gives for trials.
//
//   odharness::Sweep sweep(ctx);
//   auto base = sweep.AddHidden([=] { return Measure(full); });
//   auto low  = sweep.Add("Video/lowest", seed, [=] { return Measure(low); });
//   sweep.Run();
//   double ratio = sweep.Value(low) / sweep.Value(base);
//
// Cells may nest trial sets (AddTrials): the inner pool draws helpers from
// the same global JobBudget, so --jobs J bounds total threads even when a
// sweep cell is itself parallel.

#ifndef SRC_HARNESS_SWEEP_RUNNER_H_
#define SRC_HARNESS_SWEEP_RUNNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/harness/trial_runner.h"

namespace odharness {

class RunContext;

class Sweep {
 public:
  using CellFn = std::function<TrialSample()>;

  explicit Sweep(RunContext& ctx) : ctx_(ctx) {}
  Sweep(const Sweep&) = delete;
  Sweep& operator=(const Sweep&) = delete;

  // Submits one cell; its sample is recorded in the artifact as a
  // single-trial set labeled `label` at `seed`.  Returns the submission
  // index, valid after Run() in Sample()/Value()/Set().
  size_t Add(std::string label, uint64_t seed, CellFn fn);

  // Submits a cell whose result feeds later computation (a normalization
  // baseline, say) but is not recorded in the artifact.
  size_t AddHidden(CellFn fn);

  // Submits a whole trial set as one cell: the RunTrials shape (n seeded
  // trials, --trials/--seed overrides apply), recorded under `label`.
  // The set's own trials run in parallel within the shared budget.
  size_t AddTrials(std::string label, int default_n, uint64_t default_seed,
                   TrialFn fn);

  // Executes every pending cell (calling thread + budgeted helpers) and
  // records results in submission order.  If any cell throws, no result is
  // recorded and the lowest-index exception propagates.  Run() may be
  // called repeatedly; each call executes the cells added since the last.
  void Run();

  // Result accessors; a trial-set cell's Sample() is its first trial.
  const TrialSample& Sample(size_t index) const;
  double Value(size_t index) const { return Sample(index).value; }
  const TrialSet& Set(size_t index) const;

 private:
  enum class Kind { kSample, kTrialSet, kHidden };

  struct Cell {
    Kind kind = Kind::kSample;
    std::string label;
    uint64_t seed = 0;
    CellFn fn;                 // kSample / kHidden.
    int trials = 0;            // kTrialSet (after overrides).
    TrialFn trial_fn;          // kTrialSet.
    TrialSet result;
    bool done = false;
  };

  RunContext& ctx_;
  std::vector<Cell> cells_;
  size_t executed_ = 0;  // Cells already run and recorded.
};

}  // namespace odharness

#endif  // SRC_HARNESS_SWEEP_RUNNER_H_
