// Performance-trajectory records (BENCH_*.json).
//
// Run artifacts deliberately exclude wall-clock quantities so their bytes
// are machine- and --jobs-independent; performance numbers therefore live
// in a separate record: a committed BENCH_<experiment>.json baseline that
// perf-tracked experiments (simspeed) regenerate and compare against.  The
// comparison is rate-based (events/sec), with a tolerance wide enough for
// run-to-run noise on a quiet machine; noisy shared runners demote failures
// to warnings via ODBENCH_BENCH_WARN_ONLY=1.

#ifndef SRC_HARNESS_BENCH_BASELINE_H_
#define SRC_HARNESS_BENCH_BASELINE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/harness/json.h"

namespace odharness {

struct BenchCell {
  std::string name;
  double events = 0.0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double sim_per_wall = 0.0;  // Simulated seconds per wall second.
  // Deterministic workload signature (folded to 32 bits so it is exact in
  // a double); 0 when the producer records none.
  double checksum = 0.0;
};

struct BenchRecord {
  std::string experiment;
  std::vector<BenchCell> cells;

  const BenchCell* FindCell(const std::string& name) const;

  JsonValue ToJson() const;
  static std::optional<BenchRecord> FromJson(const JsonValue& json);

  // Atomic write-then-rename, mirroring RunArtifact::WriteFile.
  bool WriteFile(const std::string& path) const;
  static std::optional<BenchRecord> ReadFile(const std::string& path);
};

struct BenchRegression {
  std::string cell;
  double baseline_events_per_sec = 0.0;
  double fresh_events_per_sec = 0.0;
  double ratio = 0.0;  // fresh / baseline.
};

// Cells of `fresh` whose events/sec fell more than `max_loss_fraction`
// below the matching baseline cell (cells missing from either side are
// skipped: a renamed cell is a baseline refresh, not a regression).
std::vector<BenchRegression> CompareEventsPerSec(const BenchRecord& baseline,
                                                 const BenchRecord& fresh,
                                                 double max_loss_fraction);

}  // namespace odharness

#endif  // SRC_HARNESS_BENCH_BASELINE_H_
