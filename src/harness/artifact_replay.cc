#include "src/harness/artifact_replay.h"

#include <cstdlib>
#include <utility>

namespace odharness {

ArtifactReplay::ArtifactReplay(std::string dir) : dir_(std::move(dir)) {}

const ArtifactReplay& ArtifactReplay::Env() {
  static const ArtifactReplay* instance = [] {
    const char* dir = std::getenv("ODBENCH_ARTIFACT_DIR");
    return new ArtifactReplay(dir != nullptr ? dir : "");
  }();
  return *instance;
}

const RunArtifact* ArtifactReplay::Get(const std::string& experiment) const {
  if (!enabled()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(experiment);
  if (it == cache_.end()) {
    it = cache_
             .emplace(experiment,
                      RunArtifact::ReadFile(dir_ + "/" + experiment + ".json"))
             .first;
  }
  return it->second.has_value() ? &*it->second : nullptr;
}

const TrialSet* ArtifactReplay::FindSet(const std::string& experiment,
                                        const std::string& label) const {
  const RunArtifact* artifact = Get(experiment);
  if (artifact == nullptr) {
    return nullptr;
  }
  const RunArtifact::LabeledSet* labeled = artifact->FindSet(label);
  return labeled != nullptr ? &labeled->set : nullptr;
}

std::optional<double> ArtifactReplay::SetMean(const std::string& experiment,
                                              const std::string& label) const {
  const TrialSet* set = FindSet(experiment, label);
  if (set == nullptr || set->trials.empty()) {
    return std::nullopt;
  }
  return set->summary.mean;
}

std::optional<double> ArtifactReplay::BreakdownMean(
    const std::string& experiment, const std::string& label,
    const std::string& key) const {
  const TrialSet* set = FindSet(experiment, label);
  if (set == nullptr) {
    return std::nullopt;
  }
  auto it = set->breakdown_summaries.find(key);
  if (it == set->breakdown_summaries.end()) {
    return std::nullopt;
  }
  return it->second.mean;
}

std::optional<double> ArtifactReplay::ComponentMean(
    const std::string& experiment, const std::string& label,
    const std::string& key) const {
  const TrialSet* set = FindSet(experiment, label);
  if (set == nullptr) {
    return std::nullopt;
  }
  auto it = set->component_summaries.find(key);
  if (it == set->component_summaries.end()) {
    return std::nullopt;
  }
  return it->second.mean;
}

std::optional<double> ArtifactReplay::Note(const std::string& experiment,
                                           const std::string& key) const {
  const RunArtifact* artifact = Get(experiment);
  if (artifact == nullptr) {
    return std::nullopt;
  }
  return artifact->FindNote(key);
}

}  // namespace odharness
