#include "src/harness/artifact_replay.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace odharness {

ArtifactReplay::ArtifactReplay(std::string dir, std::string expected_fault_plan)
    : dir_(std::move(dir)),
      expected_fault_plan_(std::move(expected_fault_plan)) {}

const ArtifactReplay& ArtifactReplay::Env() {
  static const ArtifactReplay* instance = [] {
    const char* dir = std::getenv("ODBENCH_ARTIFACT_DIR");
    return new ArtifactReplay(dir != nullptr ? dir : "");
  }();
  return *instance;
}

const RunArtifact* ArtifactReplay::Get(const std::string& experiment) const {
  if (!enabled()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(experiment);
  if (it == cache_.end()) {
    std::optional<RunArtifact> artifact =
        RunArtifact::ReadFile(dir_ + "/" + experiment + ".json");
    if (artifact.has_value() &&
        artifact->provenance.fault_plan != expected_fault_plan_) {
      // Recorded under a different disturbance plan than the one the
      // consumer is asserting against: replaying it would compare numbers
      // from two different experiments.  Diagnose once, then fall back to
      // live simulation via the usual nullopt path.
      std::fprintf(
          stderr,
          "ArtifactReplay: ignoring %s/%s.json: recorded fault plan \"%s\" "
          "differs from expected \"%s\"; falling back to live simulation\n",
          dir_.c_str(), experiment.c_str(),
          artifact->provenance.fault_plan.c_str(),
          expected_fault_plan_.c_str());
      artifact.reset();
    }
    it = cache_.emplace(experiment, std::move(artifact)).first;
  }
  return it->second.has_value() ? &*it->second : nullptr;
}

const TrialSet* ArtifactReplay::FindSet(const std::string& experiment,
                                        const std::string& label) const {
  const RunArtifact* artifact = Get(experiment);
  if (artifact == nullptr) {
    return nullptr;
  }
  const RunArtifact::LabeledSet* labeled = artifact->FindSet(label);
  return labeled != nullptr ? &labeled->set : nullptr;
}

std::optional<double> ArtifactReplay::SetMean(const std::string& experiment,
                                              const std::string& label) const {
  const TrialSet* set = FindSet(experiment, label);
  if (set == nullptr || set->trials.empty()) {
    return std::nullopt;
  }
  return set->summary.mean;
}

std::optional<double> ArtifactReplay::BreakdownMean(
    const std::string& experiment, const std::string& label,
    const std::string& key) const {
  const TrialSet* set = FindSet(experiment, label);
  if (set == nullptr) {
    return std::nullopt;
  }
  auto it = set->breakdown_summaries.find(key);
  if (it == set->breakdown_summaries.end()) {
    return std::nullopt;
  }
  return it->second.mean;
}

std::optional<double> ArtifactReplay::ComponentMean(
    const std::string& experiment, const std::string& label,
    const std::string& key) const {
  const TrialSet* set = FindSet(experiment, label);
  if (set == nullptr) {
    return std::nullopt;
  }
  auto it = set->component_summaries.find(key);
  if (it == set->component_summaries.end()) {
    return std::nullopt;
  }
  return it->second.mean;
}

std::optional<double> ArtifactReplay::Note(const std::string& experiment,
                                           const std::string& key) const {
  const RunArtifact* artifact = Get(experiment);
  if (artifact == nullptr) {
    return std::nullopt;
  }
  return artifact->FindNote(key);
}

}  // namespace odharness
