#include "src/harness/sweep_runner.h"

#include <utility>

#include "src/harness/job_budget.h"
#include "src/harness/registry.h"
#include "src/util/check.h"

namespace odharness {

size_t Sweep::Add(std::string label, uint64_t seed, CellFn fn) {
  Cell cell;
  cell.kind = Kind::kSample;
  cell.label = std::move(label);
  cell.seed = seed;
  cell.fn = std::move(fn);
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

size_t Sweep::AddHidden(CellFn fn) {
  Cell cell;
  cell.kind = Kind::kHidden;
  cell.fn = std::move(fn);
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

size_t Sweep::AddTrials(std::string label, int default_n,
                        uint64_t default_seed, TrialFn fn) {
  const RunOptions& options = ctx_.options();
  Cell cell;
  cell.kind = Kind::kTrialSet;
  cell.label = std::move(label);
  cell.seed = options.seed > 0 ? options.seed : default_seed;
  cell.trials = options.trials > 0 ? options.trials : default_n;
  cell.trial_fn = std::move(fn);
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

void Sweep::Run() {
  const size_t begin = executed_;
  const size_t n = cells_.size() - begin;
  if (n == 0) {
    return;
  }

  ParallelFor(static_cast<int>(n), ctx_.jobs(), [&](int i) {
    Cell& cell = cells_[begin + static_cast<size_t>(i)];
    if (cell.kind == Kind::kTrialSet) {
      TrialRunner runner(ctx_.jobs());
      cell.result = runner.Run(cell.trials, cell.seed, cell.trial_fn);
    } else {
      cell.result.base_seed = cell.seed;
      cell.result.trials.push_back(cell.fn());
      cell.result.Summarize();
    }
    cell.done = true;
  });

  // Every cell completed (ParallelFor would have thrown otherwise); record
  // in submission order so the artifact is independent of scheduling.
  for (size_t i = begin; i < cells_.size(); ++i) {
    Cell& cell = cells_[i];
    if (cell.kind != Kind::kHidden) {
      ctx_.artifact().AddSet(cell.label, cell.result);
    }
  }
  executed_ = cells_.size();
}

const TrialSample& Sweep::Sample(size_t index) const {
  OD_CHECK(index < cells_.size());
  const Cell& cell = cells_[index];
  OD_CHECK(cell.done);  // Run() must come before result access.
  OD_CHECK(!cell.result.trials.empty());
  return cell.result.trials.front();
}

const TrialSet& Sweep::Set(size_t index) const {
  OD_CHECK(index < cells_.size());
  OD_CHECK(cells_[index].done);
  return cells_[index].result;
}

}  // namespace odharness
