// Shared command-line flag parsing for the harness binaries.
//
// Replaces the hand-rolled strcmp loops that odyssey_cli (and before it,
// every bench main) grew independently.  The grammar: bare words are
// positionals (subcommands, experiment names) and may be interleaved with
// `--flag value` / `--flag=value` pairs; a bare word immediately following
// a `--flag` token binds to it as the value; `--` ends flag parsing and
// everything after it is positional.  Numeric accessors parse strictly and
// throw FlagError on garbage instead of silently returning 0.

#ifndef SRC_HARNESS_FLAGS_H_
#define SRC_HARNESS_FLAGS_H_

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace odharness {

// Thrown when a flag value fails to parse (e.g. `--trials five`).  CLI
// mains catch this at top level and turn it into a usage error.
class FlagError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Flags {
 public:
  Flags(int argc, char** argv);
  explicit Flags(std::vector<std::string> args);

  // Bare arguments in order: words before, between, and after flag pairs,
  // plus everything following a literal "--".
  const std::vector<std::string>& positional() const { return positional_; }

  // True if `--name` appears as a flag token (with or without a value).
  // Value tokens are never matched: `--out=--trials` does not set "trials".
  bool Has(const std::string& name) const;

  // Value of `--name value` or `--name=value`; `fallback` when absent.
  // The numeric forms parse the full token strictly and throw FlagError on
  // trailing garbage, overflow, or an empty value.
  std::string GetString(const std::string& name, std::string fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  int GetInt(const std::string& name, int fallback) const;
  uint64_t GetUint64(const std::string& name, uint64_t fallback) const;

  // Verifies that every `--flag` present is a declared one: `value_flags`
  // must carry a value, `bool_flags` must not.  On failure fills *error
  // with a usage-style message and returns false.
  bool Validate(std::initializer_list<const char*> value_flags,
                std::initializer_list<const char*> bool_flags,
                std::string* error) const;

 private:
  // One parsed token: either a flag name ("--jobs") or the value bound to
  // the flag name immediately before it.  Tracking the kind is what keeps
  // Has() from matching value tokens that merely look like flags.
  struct Token {
    std::string text;
    bool is_flag_name = false;
  };

  // Returns the value token for `--name`, or nullptr when absent/valueless.
  const std::string* RawValue(const std::string& name) const;

  std::vector<Token> tokens_;
  std::vector<std::string> positional_;
};

}  // namespace odharness

#endif  // SRC_HARNESS_FLAGS_H_
