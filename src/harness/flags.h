// Shared command-line flag parsing for the harness binaries.
//
// Replaces the hand-rolled strcmp loops that odyssey_cli (and before it,
// every bench main) grew independently.  The grammar is the one those tools
// already used: leading positional words (subcommands), then `--flag value`
// or `--flag=value` pairs, with valueless flags acting as booleans.

#ifndef SRC_HARNESS_FLAGS_H_
#define SRC_HARNESS_FLAGS_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace odharness {

class Flags {
 public:
  Flags(int argc, char** argv);
  explicit Flags(std::vector<std::string> args);

  // The leading arguments before the first "--" flag (e.g. subcommands).
  const std::vector<std::string>& positional() const { return positional_; }

  // True if `--name` appears (with or without a value).
  bool Has(const std::string& name) const;

  // Value of `--name value` or `--name=value`; `fallback` when absent.
  std::string GetString(const std::string& name, std::string fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  int GetInt(const std::string& name, int fallback) const;
  uint64_t GetUint64(const std::string& name, uint64_t fallback) const;

  // Verifies that every `--flag` present is a declared one: `value_flags`
  // must be followed by a value, `bool_flags` must not consume one.  On
  // failure fills *error with a usage-style message and returns false.
  bool Validate(std::initializer_list<const char*> value_flags,
                std::initializer_list<const char*> bool_flags,
                std::string* error) const;

 private:
  // Returns the value token for `--name`, or nullptr when absent/valueless.
  const std::string* RawValue(const std::string& name) const;

  std::vector<std::string> tokens_;
  std::vector<std::string> positional_;
  // Tokens rewritten so "--flag=value" is split into "--flag", "value".
};

}  // namespace odharness

#endif  // SRC_HARNESS_FLAGS_H_
