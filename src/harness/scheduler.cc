#include "src/harness/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define ODHARNESS_HAS_FORK 1
#endif

#include "src/harness/job_budget.h"

namespace odharness {

namespace {

// Streams `path` to stdout and deletes it.  Used to replay a finished
// child's captured output in registry order.
void ReplayLog(const std::string& path) {
  if (std::FILE* log = std::fopen(path.c_str(), "r")) {
    char buffer[1 << 14];
    size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), log)) > 0) {
      std::fwrite(buffer, 1, n, stdout);
    }
    std::fclose(log);
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

int SerialLoop(const std::vector<const Experiment*>& experiments,
               const RunOptions& options) {
  int worst = 0;
  for (const Experiment* experiment : experiments) {
    worst = std::max(worst, RunExperiment(*experiment, options));
  }
  return worst;
}

}  // namespace

int RunExperiment(const Experiment& experiment, const RunOptions& options) {
  std::printf("=== %s: %s ===\n", experiment.name.c_str(),
              experiment.description.c_str());
  RunContext ctx(experiment.name, options);
  const auto start = std::chrono::steady_clock::now();
  int rc = experiment.run(ctx);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  ctx.artifact().exit_code = rc;
  std::printf("--- %s: rc=%d wall=%.0f ms", experiment.name.c_str(), rc,
              wall_ms);
  if (!options.out_dir.empty()) {
    const std::string path = options.out_dir + "/" + experiment.name + ".json";
    if (ctx.artifact().WriteFile(path, options.compact_artifacts)) {
      std::printf(" artifact=%s", path.c_str());
    } else {
      std::fprintf(stderr, "odbench: could not write %s\n", path.c_str());
      rc = std::max(rc, 74);  // EX_IOERR: a missing artifact must fail CI.
    }
    // Auxiliary documents (power traces) land next to the scalar artifact
    // under the same atomic-write and must-exist-for-CI rules.
    for (const auto& [filename, document] : ctx.aux_documents()) {
      const std::string aux_path = options.out_dir + "/" + filename;
      if (WriteJsonFile(aux_path, document, options.compact_artifacts)) {
        std::printf(" %s", aux_path.c_str());
      } else {
        std::fprintf(stderr, "odbench: could not write %s\n",
                     aux_path.c_str());
        rc = std::max(rc, 74);
      }
    }
  }
  std::printf(" ---\n\n");
  return rc;
}

#ifdef ODHARNESS_HAS_FORK

int RunExperiments(const std::vector<const Experiment*>& experiments,
                   const RunOptions& options) {
  const size_t n = experiments.size();
  if (options.jobs <= 1 || n <= 1) {
    return SerialLoop(experiments, options);
  }

  // Captured per-experiment logs; replayed to stdout in list order.
  std::error_code ec;
  std::string log_dir =
      (options.out_dir.empty()
           ? std::filesystem::temp_directory_path(ec).string()
           : options.out_dir) +
      "/.odbench-logs-" + std::to_string(::getpid());
  std::filesystem::create_directories(log_dir, ec);
  if (ec) {
    return SerialLoop(experiments, options);
  }
  auto log_path = [&](size_t i) {
    return log_dir + "/" + experiments[i]->name + ".log";
  };

  // The jobserver pipe: one byte per worker slot.  The read end is
  // non-blocking — every layer acquires tokens opportunistically.
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    return SerialLoop(experiments, options);
  }
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  for (int i = 0; i < options.jobs; ++i) {
    char token = '+';
    if (::write(fds[1], &token, 1) != 1) {
      ::close(fds[0]);
      ::close(fds[1]);
      return SerialLoop(experiments, options);
    }
  }
  JobBudget::Global().ConfigurePipe(fds[0], fds[1]);

  // Start order: most expensive first so fig22_longrun/micro_overhead
  // overlap the short tail.  Purely a scheduling choice — output replay
  // and artifacts follow the caller's (registry) order.
  std::vector<size_t> queue(n);
  for (size_t i = 0; i < n; ++i) {
    queue[i] = i;
  }
  std::stable_sort(queue.begin(), queue.end(), [&](size_t a, size_t b) {
    return experiments[a]->cost_hint > experiments[b]->cost_hint;
  });

  std::vector<int> rcs(n, 0);
  std::vector<bool> done(n, false);
  std::map<pid_t, size_t> running;
  size_t next_in_queue = 0;
  size_t next_to_print = 0;
  int worst = 0;

  // Per-child watchdog (--experiment-timeout).  Each forked child gets a
  // wall-clock deadline; overdue ones are SIGKILLed and reported as rc 124
  // (the `timeout(1)` convention) in the registry-order replay.  A killed
  // child takes any helper tokens it held with it, so once no children
  // remain the jobserver pipe is reprimed to the full budget.
  using Clock = std::chrono::steady_clock;
  const bool watchdog = options.experiment_timeout_seconds > 0;
  const auto timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options.experiment_timeout_seconds));
  std::map<pid_t, Clock::time_point> deadlines;
  std::set<size_t> timed_out;
  bool tokens_may_be_lost = false;

  auto flush_done = [&] {
    while (next_to_print < n && done[next_to_print]) {
      ReplayLog(log_path(next_to_print));
      ++next_to_print;
    }
  };

  // Runs one experiment in the parent, output still captured to its log so
  // the replay order holds.  Fallback for fork failure / lost tokens.
  auto run_inline = [&](size_t index) {
    int saved_out = ::dup(1);
    int saved_err = ::dup(2);
    std::fflush(nullptr);
    std::FILE* log = std::fopen(log_path(index).c_str(), "w");
    if (log != nullptr) {
      ::dup2(::fileno(log), 1);
      ::dup2(::fileno(log), 2);
    }
    rcs[index] = RunExperiment(*experiments[index], options);
    std::fflush(nullptr);
    if (log != nullptr) {
      std::fclose(log);
    }
    ::dup2(saved_out, 1);
    ::dup2(saved_err, 2);
    ::close(saved_out);
    ::close(saved_err);
    worst = std::max(worst, rcs[index]);
    done[index] = true;
    flush_done();
  };

  while (next_in_queue < n || !running.empty()) {
    bool progressed = false;

    // Reap any finished children, returning their main-thread tokens.
    while (!running.empty()) {
      int status = 0;
      pid_t pid = ::waitpid(-1, &status, WNOHANG);
      if (pid <= 0) {
        break;
      }
      auto it = running.find(pid);
      if (it == running.end()) {
        continue;
      }
      const size_t index = it->second;
      running.erase(it);
      deadlines.erase(pid);
      rcs[index] = timed_out.count(index) != 0
                       ? 124
                       : (WIFEXITED(status) ? WEXITSTATUS(status)
                                            : 128 + WTERMSIG(status));
      worst = std::max(worst, rcs[index]);
      done[index] = true;
      JobBudget::Global().Release();
      flush_done();
      progressed = true;
    }

    // Kill children past their wall-clock budget.  They stay in `running`
    // until waitpid reaps the SIGKILL above.
    if (watchdog && !deadlines.empty()) {
      const auto now = Clock::now();
      for (auto it = deadlines.begin(); it != deadlines.end();) {
        if (now < it->second) {
          ++it;
          continue;
        }
        const size_t index = running.at(it->first);
        ::kill(it->first, SIGKILL);
        timed_out.insert(index);
        tokens_may_be_lost = true;
        // Appended to the child's captured log so the note shows up in
        // its slot of the registry-order replay.
        if (std::FILE* log = std::fopen(log_path(index).c_str(), "a")) {
          std::fprintf(log,
                       "odbench: %s exceeded --experiment-timeout (%g s); "
                       "killed\n",
                       experiments[index]->name.c_str(),
                       options.experiment_timeout_seconds);
          std::fclose(log);
        }
        it = deadlines.erase(it);
      }
    }

    // A killed child never returned the helper tokens it had acquired.
    // Once no children hold tokens, every live token is back in the pipe:
    // drain it and rewrite the full budget.
    if (tokens_may_be_lost && running.empty()) {
      while (JobBudget::Global().TryAcquire()) {
      }
      for (int i = 0; i < options.jobs; ++i) {
        JobBudget::Global().Release();
      }
      tokens_may_be_lost = false;
    }

    // Launch further experiments while worker tokens are free.
    while (next_in_queue < n && JobBudget::Global().TryAcquire()) {
      const size_t index = queue[next_in_queue++];
      progressed = true;
      // Flush before forking: the child inherits stdio buffers and shares
      // our file offsets, so any pending bytes would be written twice.
      std::fflush(nullptr);
      pid_t pid = ::fork();
      if (pid == 0) {
        // Child: capture all output, run the one experiment, exit raw.
        std::FILE* log = std::freopen(log_path(index).c_str(), "w", stdout);
        if (log != nullptr) {
          ::dup2(::fileno(stdout), 2);
        }
        int rc = RunExperiment(*experiments[index], options);
        std::fflush(nullptr);
        ::_exit(rc < 0 || rc > 125 ? 125 : rc);
      }
      if (pid > 0) {
        running.emplace(pid, index);
        if (watchdog) {
          deadlines.emplace(pid, Clock::now() + timeout);
        }
        continue;
      }
      run_inline(index);  // Fork failed; degrade gracefully.
      JobBudget::Global().Release();
    }

    if (!progressed) {
      if (running.empty() && next_in_queue < n) {
        // No child is running and no token surfaced — tokens were lost
        // (a crashed child takes its helpers' tokens with it).  Degrade to
        // inline execution rather than spinning forever.
        run_inline(queue[next_in_queue++]);
        continue;
      }
      // Tokens are all in flight inside children; wait for movement.
      ::usleep(2000);
    }
  }

  flush_done();
  JobBudget::Global().Reset();
  ::close(fds[0]);
  ::close(fds[1]);
  std::filesystem::remove(log_dir, ec);
  return worst;
}

#else  // !ODHARNESS_HAS_FORK

int RunExperiments(const std::vector<const Experiment*>& experiments,
                   const RunOptions& options) {
  return SerialLoop(experiments, options);
}

#endif

}  // namespace odharness
