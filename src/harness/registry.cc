#include "src/harness/registry.h"

#include "src/harness/job_budget.h"
#include "src/util/check.h"

namespace odharness {

RunContext::RunContext(std::string experiment_name, const RunOptions& options)
    : name_(std::move(experiment_name)),
      options_(options),
      runner_(options.jobs) {
  artifact_.experiment = name_;
  // Stamp how this run's numbers are being produced.  Identical for every
  // experiment and every --jobs value, so the determinism contract holds.
  artifact_.provenance.git_revision = BuildGitRevision();
  artifact_.provenance.trials_override = options.trials;
  artifact_.provenance.seed_override = options.seed;
  artifact_.provenance.calibration = ProvenanceCalibration();
  // All parallelism below this context — trial pools, sweep cells, nested
  // combinations — shares one budget of jobs-1 helper threads (the calling
  // thread is the jobs-th worker).  Inside a run-all child this is a no-op:
  // the inherited jobserver pipe already spans every sibling process.
  JobBudget::Global().ConfigureLocal(runner_.jobs() - 1);
}

TrialSet RunContext::RunTrials(const std::string& label, int default_n,
                               uint64_t default_seed, const TrialFn& measure) {
  const int n = options_.trials > 0 ? options_.trials : default_n;
  const uint64_t seed = options_.seed > 0 ? options_.seed : default_seed;
  TrialSet set = runner_.Run(n, seed, measure);
  artifact_.AddSet(label, set);
  return set;
}

void RunContext::Record(const std::string& label, uint64_t seed,
                        TrialSample sample) {
  TrialSet set;
  set.base_seed = seed;
  set.trials.push_back(std::move(sample));
  set.Summarize();
  artifact_.AddSet(label, std::move(set));
}

void RunContext::Note(const std::string& key, double value) {
  artifact_.AddNote(key, value);
}

void RunContext::AddAuxDocument(std::string filename, JsonValue document) {
  OD_CHECK(!filename.empty());
  for (auto& [name, doc] : aux_documents_) {
    if (name == filename) {
      doc = std::move(document);
      return;
    }
  }
  aux_documents_.emplace_back(std::move(filename), std::move(document));
}

ExperimentRegistry& ExperimentRegistry::Instance() {
  static ExperimentRegistry* registry = new ExperimentRegistry();
  return *registry;
}

void ExperimentRegistry::Register(Experiment experiment) {
  OD_CHECK(!experiment.name.empty());
  OD_CHECK(experiment.run != nullptr);
  auto [it, inserted] = by_name_.emplace(experiment.name, experiment);
  OD_CHECK(inserted);  // Duplicate experiment name.
  (void)it;
}

const Experiment* ExperimentRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it != by_name_.end() ? &it->second : nullptr;
}

const Experiment* ExperimentRegistry::Resolve(
    const std::string& query, std::vector<std::string>* matches) const {
  if (const Experiment* exact = Find(query)) {
    return exact;
  }
  const Experiment* unique = nullptr;
  std::vector<std::string> candidates;
  for (const auto& [name, experiment] : by_name_) {
    if (name.rfind(query, 0) == 0) {
      candidates.push_back(name);
      unique = &experiment;
    }
  }
  if (matches != nullptr) {
    *matches = candidates;
  }
  return candidates.size() == 1 ? unique : nullptr;
}

std::vector<const Experiment*> ExperimentRegistry::List() const {
  std::vector<const Experiment*> out;
  out.reserve(by_name_.size());
  for (const auto& [name, experiment] : by_name_) {
    out.push_back(&experiment);
  }
  return out;
}

Registrar::Registrar(const char* name, const char* description,
                     int (*run)(RunContext&), double cost_hint) {
  ExperimentRegistry::Instance().Register(
      Experiment{name, description, run, cost_hint});
}

}  // namespace odharness
