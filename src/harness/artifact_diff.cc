#include "src/harness/artifact_diff.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace odharness {

namespace {

using Change = ArtifactDiff::Change;
using Kind = ArtifactDiff::Change::Kind;
using Severity = ArtifactDiff::Severity;

// Bit-equality with NaN == NaN: the "no change at all" predicate.
bool SameValue(double x, double y) {
  return x == y || (std::isnan(x) && std::isnan(y));
}

std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

class DiffBuilder {
 public:
  explicit DiffBuilder(const DiffOptions& options) : options_(options) {}

  void Compare(const std::string& path, double a, double b) {
    if (SameValue(a, b)) {
      return;
    }
    Change change;
    change.kind = Kind::kChanged;
    change.path = path;
    change.a = a;
    change.b = b;
    change.within = WithinTolerance(a, b, options_);
    Raise(change.within ? Severity::kDrift : Severity::kRegression);
    diff_.changes.push_back(std::move(change));
  }

  void OneSided(Kind kind, const std::string& path, double value) {
    Change change;
    change.kind = kind;
    change.path = path;
    change.detail = (kind == Kind::kAddedInB ? "only in second: "
                                             : "only in first: ") +
                    FormatValue(value);
    Raise(Severity::kRegression);
    diff_.changes.push_back(std::move(change));
  }

  void Structural(const std::string& path, std::string detail) {
    Change change;
    change.kind = Kind::kStructural;
    change.path = path;
    change.detail = std::move(detail);
    Raise(Severity::kRegression);
    diff_.changes.push_back(std::move(change));
  }

  // Compares two string-keyed maps cell by cell (used for per-trial
  // breakdowns and components).
  void CompareMaps(const std::string& path,
                   const std::map<std::string, double>& a,
                   const std::map<std::string, double>& b) {
    for (const auto& [key, value] : a) {
      auto it = b.find(key);
      if (it == b.end()) {
        OneSided(Kind::kRemovedInB, path + "[" + key + "]", value);
      } else {
        Compare(path + "[" + key + "]", value, it->second);
      }
    }
    for (const auto& [key, value] : b) {
      if (a.find(key) == a.end()) {
        OneSided(Kind::kAddedInB, path + "[" + key + "]", value);
      }
    }
  }

  void Hint(std::string text) {
    diff_.provenance_hints.push_back(std::move(text));
  }

  ArtifactDiff Take() { return std::move(diff_); }

 private:
  void Raise(Severity severity) {
    diff_.severity = std::max(diff_.severity, severity);
  }

  DiffOptions options_;
  ArtifactDiff diff_;
};

void DiffProvenance(const Provenance& a, const Provenance& b,
                    DiffBuilder& builder) {
  for (std::string& hint : ProvenanceHints(a, b)) {
    builder.Hint(std::move(hint));
  }
}

void DiffSet(const std::string& path, const TrialSet& a, const TrialSet& b,
             DiffBuilder& builder) {
  if (a.base_seed != b.base_seed) {
    builder.Structural(path + ".base_seed",
                       "seed " + std::to_string(a.base_seed) + " vs " +
                           std::to_string(b.base_seed));
    return;  // Different seeds measure different things; values would only
             // drown the report in noise.
  }
  if (a.trials.size() != b.trials.size()) {
    builder.Structural(path + ".trials",
                       std::to_string(a.trials.size()) + " vs " +
                           std::to_string(b.trials.size()) + " trials");
    return;
  }
  for (size_t t = 0; t < a.trials.size(); ++t) {
    const std::string trial_path = path + ".trials[" + std::to_string(t) + "]";
    builder.Compare(trial_path + ".value", a.trials[t].value,
                    b.trials[t].value);
    builder.CompareMaps(trial_path + ".breakdown", a.trials[t].breakdown,
                        b.trials[t].breakdown);
    builder.CompareMaps(trial_path + ".components", a.trials[t].components,
                        b.trials[t].components);
  }
}

}  // namespace

std::vector<std::string> ProvenanceHints(const Provenance& a,
                                         const Provenance& b) {
  std::vector<std::string> hints;
  if (a.git_revision != b.git_revision) {
    hints.push_back("git_revision: " + a.git_revision + " vs " +
                    b.git_revision);
  }
  if (a.trials_override != b.trials_override) {
    hints.push_back("seed_policy.trials_override: " +
                    std::to_string(a.trials_override) + " vs " +
                    std::to_string(b.trials_override));
  }
  if (a.seed_override != b.seed_override) {
    hints.push_back("seed_policy.seed_override: " +
                    std::to_string(a.seed_override) + " vs " +
                    std::to_string(b.seed_override));
  }
  if (a.fault_plan != b.fault_plan) {
    auto shown = [](const std::string& plan) {
      return plan.empty() ? std::string("(none)") : plan;
    };
    hints.push_back("fault_plan: " + shown(a.fault_plan) + " vs " +
                    shown(b.fault_plan));
  }
  if (a.scenario != b.scenario) {
    auto shown = [](const std::string& scenario) {
      return scenario.empty() ? std::string("(none)") : scenario;
    };
    hints.push_back("scenario: " + shown(a.scenario) + " vs " +
                    shown(b.scenario));
  }
  std::map<std::string, double> b_calibration(b.calibration.begin(),
                                              b.calibration.end());
  std::set<std::string> seen;
  for (const auto& [key, value] : a.calibration) {
    seen.insert(key);
    auto it = b_calibration.find(key);
    if (it == b_calibration.end()) {
      hints.push_back("calibration." + key + ": only in first (" +
                      FormatValue(value) + ")");
    } else if (!SameValue(value, it->second)) {
      hints.push_back("calibration." + key + ": " + FormatValue(value) +
                      " vs " + FormatValue(it->second));
    }
  }
  for (const auto& [key, value] : b_calibration) {
    if (seen.find(key) == seen.end()) {
      hints.push_back("calibration." + key + ": only in second (" +
                      FormatValue(value) + ")");
    }
  }
  return hints;
}

bool WithinTolerance(double x, double y, const DiffOptions& options) {
  if (SameValue(x, y)) {
    return true;
  }
  if (!std::isfinite(x) || !std::isfinite(y)) {
    return false;  // NaN vs number, opposite infinities, inf vs finite.
  }
  return std::abs(x - y) <=
         options.atol + options.rtol * std::max(std::abs(x), std::abs(y));
}

ArtifactDiff DiffArtifacts(const RunArtifact& a, const RunArtifact& b,
                           const DiffOptions& options) {
  DiffBuilder builder(options);

  if (a.experiment != b.experiment) {
    builder.Structural("experiment",
                       "\"" + a.experiment + "\" vs \"" + b.experiment + "\"");
  }
  if (a.exit_code != b.exit_code) {
    builder.Structural("exit_code", std::to_string(a.exit_code) + " vs " +
                                        std::to_string(b.exit_code));
  }
  DiffProvenance(a.provenance, b.provenance, builder);

  // Sets match by label, not position: a reordered document is not a
  // change.  Labels are unique within an artifact (RunContext appends in
  // execution order and experiments never reuse one).
  for (const RunArtifact::LabeledSet& labeled : a.sets) {
    const std::string path = "sets[" + labeled.label + "]";
    const RunArtifact::LabeledSet* other = b.FindSet(labeled.label);
    if (other == nullptr) {
      builder.OneSided(Kind::kRemovedInB, path, labeled.set.summary.mean);
    } else {
      DiffSet(path, labeled.set, other->set, builder);
    }
  }
  for (const RunArtifact::LabeledSet& labeled : b.sets) {
    if (a.FindSet(labeled.label) == nullptr) {
      builder.OneSided(Kind::kAddedInB, "sets[" + labeled.label + "]",
                       labeled.set.summary.mean);
    }
  }

  for (const auto& [key, value] : a.notes) {
    std::optional<double> other = b.FindNote(key);
    if (!other.has_value()) {
      builder.OneSided(Kind::kRemovedInB, "notes[" + key + "]", value);
    } else {
      builder.Compare("notes[" + key + "]", value, *other);
    }
  }
  for (const auto& [key, value] : b.notes) {
    if (!a.FindNote(key).has_value()) {
      builder.OneSided(Kind::kAddedInB, "notes[" + key + "]", value);
    }
  }

  return builder.Take();
}

void PrintArtifactDiff(const ArtifactDiff& diff, std::FILE* out) {
  size_t out_of_tolerance = 0;
  for (const Change& change : diff.changes) {
    switch (change.kind) {
      case Kind::kChanged:
        std::fprintf(out, "changed    %s: %s -> %s%s\n", change.path.c_str(),
                     FormatValue(change.a).c_str(),
                     FormatValue(change.b).c_str(),
                     change.within ? " (within tolerance)"
                                   : " (OUT OF TOLERANCE)");
        if (!change.within) {
          ++out_of_tolerance;
        }
        break;
      case Kind::kAddedInB:
        std::fprintf(out, "added      %s (%s)\n", change.path.c_str(),
                     change.detail.c_str());
        ++out_of_tolerance;
        break;
      case Kind::kRemovedInB:
        std::fprintf(out, "removed    %s (%s)\n", change.path.c_str(),
                     change.detail.c_str());
        ++out_of_tolerance;
        break;
      case Kind::kStructural:
        std::fprintf(out, "structural %s: %s\n", change.path.c_str(),
                     change.detail.c_str());
        ++out_of_tolerance;
        break;
    }
  }
  for (const std::string& hint : diff.provenance_hints) {
    std::fprintf(out, "provenance %s\n", hint.c_str());
  }
  switch (diff.severity) {
    case Severity::kIdentical:
      if (!diff.provenance_hints.empty()) {
        std::fprintf(out,
                     "identical measurements (provenance differs, see above)\n");
      }
      break;
    case Severity::kDrift:
      std::fprintf(out, "%zu cell(s) drifted, all within tolerance\n",
                   diff.changes.size());
      break;
    case Severity::kRegression:
      std::fprintf(out, "%zu cell(s) differ, %zu out of tolerance\n",
                   diff.changes.size(), out_of_tolerance);
      break;
  }
}

}  // namespace odharness
