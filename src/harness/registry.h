// Experiment registry: the single harness layer behind `odbench`.
//
// Each former bench main() is now a registered experiment: a name, a
// one-line description, and a Run(RunContext&) function.  The odbench
// runner binary lists and executes them; experiments record their trial
// sets and scalar notes on the context, and the runner writes the
// accumulated RunArtifact as JSON next to the ASCII output.
//
// Registering an experiment:
//
//   ODBENCH_EXPERIMENT(fig06_video, "Figure 6: video fidelity sweep") {
//     auto set = ctx.RunTrials("Video 1/Combined", 5, 1000, measure);
//     ...print tables...
//     return 0;
//   }

#ifndef SRC_HARNESS_REGISTRY_H_
#define SRC_HARNESS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/artifact.h"
#include "src/harness/trial_runner.h"

namespace odharness {

struct RunOptions {
  int trials = 0;      // > 0 overrides each trial set's default count.
  uint64_t seed = 0;   // > 0 overrides each trial set's default base seed.
  int jobs = 1;        // Trial-level parallelism.
  std::string out_dir; // Artifact/CSV directory; empty = no artifacts.
  // Single-line artifact JSON (same content, ~4x smaller); the committed
  // golden fixtures are written this way.
  bool compact_artifacts = false;
  // Fault-plan spec (odfault grammar, see src/fault/fault_plan.h) offered
  // to fault-aware experiments; empty = each experiment's own default.
  // Experiments that honor it stamp the plan into artifact provenance.
  std::string fault_plan;
  // Named scenario (see src/scenario/library.h) offered to scenario-aware
  // experiments; empty = run every scenario the experiment covers.
  // Experiments that honor it stamp the canonical scenario text into
  // artifact provenance.
  std::string scenario;
  // Per-experiment wall-clock budget for the forked run-all path, in
  // seconds; 0 disables.  A child that exceeds it is SIGKILLed, reported
  // as rc 124 in the registry-order replay, and its jobserver tokens are
  // reclaimed.  Serial runs are not killed (there is no child to kill).
  double experiment_timeout_seconds = 0.0;
  // Record per-component power traces for the experiment's signature
  // scenarios (see src/trace).  Trace-aware experiments attach a
  // "<name>.trace.json" aux document; scalar artifacts are byte-unchanged.
  bool trace = false;
};

class RunContext {
 public:
  RunContext(std::string experiment_name, const RunOptions& options);

  const std::string& name() const { return name_; }
  const RunOptions& options() const { return options_; }
  int jobs() const { return runner_.jobs(); }
  // Directory for auxiliary outputs (CSV dumps); empty when artifacts are
  // disabled.  Created by the runner before the experiment starts.
  const std::string& out_dir() const { return options_.out_dir; }

  // Runs seeded trials on the pool and records the set in the artifact.
  // `default_n` / `default_seed` are the experiment's paper-faithful
  // defaults, subject to the --trials / --seed overrides.
  TrialSet RunTrials(const std::string& label, int default_n,
                     uint64_t default_seed, const TrialFn& measure);

  // Records a single precomputed observation (for sweeps whose structure
  // is not N-trials-at-consecutive-seeds).
  void Record(const std::string& label, uint64_t seed, TrialSample sample);

  // Records a named scalar (claim, calibration ratio, fit parameter).
  void Note(const std::string& key, double value);

  RunArtifact& artifact() { return artifact_; }

  // Whether the run asked for power traces (--trace).  Experiments that
  // support tracing consult this and attach their trace document via
  // AddAuxDocument; experiments that don't simply ignore it.
  bool trace_enabled() const { return options_.trace; }

  // Registers an auxiliary JSON document the runner writes to out_dir
  // next to the scalar artifact (same atomic write, same --compact
  // honoring).  `filename` is relative to out_dir; a repeated filename
  // replaces the earlier document.  The harness stays ignorant of the
  // document's schema — the odtrace layer builds trace documents this way
  // without the harness depending on it.
  void AddAuxDocument(std::string filename, JsonValue document);
  const std::vector<std::pair<std::string, JsonValue>>& aux_documents() const {
    return aux_documents_;
  }

 private:
  std::string name_;
  RunOptions options_;
  TrialRunner runner_;
  RunArtifact artifact_;
  std::vector<std::pair<std::string, JsonValue>> aux_documents_;
};

struct Experiment {
  std::string name;
  std::string description;
  int (*run)(RunContext&) = nullptr;
  // Relative serial cost (roughly milliseconds on the reference machine).
  // The run-all scheduler starts expensive experiments first so the long
  // pole overlaps the short tail.  Purely a scheduling hint: results and
  // output order never depend on it.
  double cost_hint = 10.0;
};

class ExperimentRegistry {
 public:
  static ExperimentRegistry& Instance();

  // Fails (OD_CHECK) on duplicate names.
  void Register(Experiment experiment);

  // Exact-name lookup; nullptr when absent.
  const Experiment* Find(const std::string& name) const;
  // Exact match first, then a unique-prefix match ("fig04" ->
  // "fig04_power_table").  `matches`, when non-null, receives the candidate
  // names of an ambiguous prefix.
  const Experiment* Resolve(const std::string& query,
                            std::vector<std::string>* matches = nullptr) const;

  // All experiments, sorted by name.
  std::vector<const Experiment*> List() const;
  size_t size() const { return by_name_.size(); }

 private:
  ExperimentRegistry() = default;
  std::map<std::string, Experiment> by_name_;
};

// Static-initialization helper behind ODBENCH_EXPERIMENT.
struct Registrar {
  Registrar(const char* name, const char* description, int (*run)(RunContext&),
            double cost_hint = 10.0);
};

}  // namespace odharness

// Defines and registers an experiment.  The body that follows becomes
// `int Run(odharness::RunContext& ctx)`.
#define ODBENCH_EXPERIMENT(id, description)                            \
  static int OdbenchRun_##id(::odharness::RunContext& ctx);            \
  static const ::odharness::Registrar odbench_registrar_##id{          \
      #id, description, &OdbenchRun_##id};                             \
  static int OdbenchRun_##id([[maybe_unused]] ::odharness::RunContext& ctx)

// As above, with a cost hint for the run-all scheduler (see
// Experiment::cost_hint); use for experiments much slower than the rest.
#define ODBENCH_EXPERIMENT_COST(id, description, cost)                 \
  static int OdbenchRun_##id(::odharness::RunContext& ctx);            \
  static const ::odharness::Registrar odbench_registrar_##id{          \
      #id, description, &OdbenchRun_##id, cost};                       \
  static int OdbenchRun_##id([[maybe_unused]] ::odharness::RunContext& ctx)

#endif  // SRC_HARNESS_REGISTRY_H_
