#include "src/harness/bench_baseline.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

namespace odharness {

namespace {
constexpr char kSchema[] = "odbench-bench-v1";
}  // namespace

const BenchCell* BenchRecord::FindCell(const std::string& name) const {
  for (const BenchCell& cell : cells) {
    if (cell.name == name) {
      return &cell;
    }
  }
  return nullptr;
}

JsonValue BenchRecord::ToJson() const {
  JsonValue root = JsonValue::MakeObject();
  root.Set("schema", kSchema);
  root.Set("experiment", experiment);
  JsonValue array = JsonValue::MakeArray();
  for (const BenchCell& cell : cells) {
    JsonValue c = JsonValue::MakeObject();
    c.Set("name", cell.name);
    c.Set("events", cell.events);
    c.Set("sim_seconds", cell.sim_seconds);
    c.Set("wall_seconds", cell.wall_seconds);
    c.Set("events_per_sec", cell.events_per_sec);
    c.Set("sim_per_wall", cell.sim_per_wall);
    c.Set("checksum", cell.checksum);
    array.Append(std::move(c));
  }
  root.Set("cells", std::move(array));
  return root;
}

std::optional<BenchRecord> BenchRecord::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return std::nullopt;
  }
  const JsonValue* schema = json.Find("schema");
  if (schema == nullptr || schema->AsString() != kSchema) {
    return std::nullopt;
  }
  const JsonValue* cells = json.Find("cells");
  if (cells == nullptr || !cells->is_array()) {
    return std::nullopt;
  }
  BenchRecord record;
  const JsonValue* experiment = json.Find("experiment");
  record.experiment = experiment != nullptr ? experiment->AsString() : "";
  for (const JsonValue& c : cells->array()) {
    const JsonValue* name = c.Find("name");
    if (name == nullptr || !name->is_string()) {
      return std::nullopt;
    }
    BenchCell cell;
    cell.name = name->AsString();
    cell.events = c.DoubleAt("events");
    cell.sim_seconds = c.DoubleAt("sim_seconds");
    cell.wall_seconds = c.DoubleAt("wall_seconds");
    cell.events_per_sec = c.DoubleAt("events_per_sec");
    cell.sim_per_wall = c.DoubleAt("sim_per_wall");
    cell.checksum = c.DoubleAt("checksum");
    record.cells.push_back(std::move(cell));
  }
  return record;
}

bool BenchRecord::WriteFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
        std::fopen(tmp.c_str(), "w"), &std::fclose);
    if (file == nullptr) {
      return false;
    }
    const std::string text = ToJson().Dump(/*indent=*/2) + "\n";
    if (std::fwrite(text.data(), 1, text.size(), file.get()) != text.size() ||
        std::fflush(file.get()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<BenchRecord> BenchRecord::ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::optional<JsonValue> json = JsonValue::Parse(text.str());
  if (!json.has_value()) {
    return std::nullopt;
  }
  return FromJson(*json);
}

std::vector<BenchRegression> CompareEventsPerSec(const BenchRecord& baseline,
                                                 const BenchRecord& fresh,
                                                 double max_loss_fraction) {
  std::vector<BenchRegression> regressions;
  for (const BenchCell& base : baseline.cells) {
    const BenchCell* cell = fresh.FindCell(base.name);
    if (cell == nullptr || base.events_per_sec <= 0.0) {
      continue;
    }
    double ratio = cell->events_per_sec / base.events_per_sec;
    if (ratio < 1.0 - max_loss_fraction) {
      regressions.push_back(BenchRegression{base.name, base.events_per_sec,
                                            cell->events_per_sec, ratio});
    }
  }
  return regressions;
}

}  // namespace odharness
