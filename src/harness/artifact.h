// Structured run artifacts.
//
// Every odbench run emits one JSON document per experiment alongside the
// ASCII tables: the experiment name, each recorded trial set (per-trial
// samples with breakdowns, summary mean/stddev/90% CI, cross-trial breakdown
// means), and named scalar notes.  These files are the machine-readable
// performance trajectory of the repo.
//
// The document contains *measured content only* — deliberately no wall
// clock and no job count — so an artifact is byte-identical for any --jobs
// value and diffable across runs (the scheduler's determinism contract; CI
// enforces it).  Wall-clock timings go to the console.
//
// Schema (version 2):
//   {
//     "schema_version": 2,
//     "experiment": "fig06_video",
//     "exit_code": 0,
//     "sets": [
//       {
//         "label": "Video 1/Combined",
//         "base_seed": 1000,
//         "trials": [
//           {"value": 470.1,
//            "breakdown": {"Idle": 121.9, ...},
//            "components": {"CPU": 88.2, ...}},
//           ...
//         ],
//         "summary": {"n": 5, "mean": ..., "stddev": ..., "ci90": ...,
//                     "min": ..., "max": ...},
//         "breakdown_means": {"Idle": ..., ...}
//       }
//     ],
//     "notes": {"background_watts": 5.6, ...}
//   }

#ifndef SRC_HARNESS_ARTIFACT_H_
#define SRC_HARNESS_ARTIFACT_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/json.h"
#include "src/harness/trial_runner.h"

namespace odharness {

struct RunArtifact {
  static constexpr int kSchemaVersion = 2;

  std::string experiment;
  int exit_code = 0;

  struct LabeledSet {
    std::string label;
    TrialSet set;
  };
  std::vector<LabeledSet> sets;
  // Named scalars (claims, calibration ratios, fit parameters) in
  // insertion order.
  std::vector<std::pair<std::string, double>> notes;

  void AddSet(std::string label, TrialSet set);
  void AddNote(std::string key, double value);

  JsonValue ToJson() const;
  // Reconstructs an artifact (summaries included) from ToJson() output.
  // Returns nullopt if `json` does not match the schema.
  static std::optional<RunArtifact> FromJson(const JsonValue& json);

  // Serializes to `path` (pretty-printed).  Returns false on I/O failure.
  bool WriteFile(const std::string& path) const;
  static std::optional<RunArtifact> ReadFile(const std::string& path);
};

}  // namespace odharness

#endif  // SRC_HARNESS_ARTIFACT_H_
