// Structured run artifacts.
//
// Every odbench run emits one JSON document per experiment alongside the
// ASCII tables: the experiment name, each recorded trial set (per-trial
// samples with breakdowns, summary mean/stddev/90% CI, cross-trial breakdown
// means), named scalar notes, and the wall-clock duration of the run.  These
// files are the machine-readable performance trajectory of the repo.
//
// Schema (version 1):
//   {
//     "schema_version": 1,
//     "experiment": "fig06_video",
//     "jobs": 8,
//     "wall_ms": 1234.5,
//     "exit_code": 0,
//     "sets": [
//       {
//         "label": "Video 1/Combined",
//         "base_seed": 1000,
//         "trials": [
//           {"value": 470.1,
//            "breakdown": {"Idle": 121.9, ...},
//            "components": {"CPU": 88.2, ...}},
//           ...
//         ],
//         "summary": {"n": 5, "mean": ..., "stddev": ..., "ci90": ...,
//                     "min": ..., "max": ...},
//         "breakdown_means": {"Idle": ..., ...}
//       }
//     ],
//     "notes": {"background_watts": 5.6, ...}
//   }

#ifndef SRC_HARNESS_ARTIFACT_H_
#define SRC_HARNESS_ARTIFACT_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/json.h"
#include "src/harness/trial_runner.h"

namespace odharness {

struct RunArtifact {
  static constexpr int kSchemaVersion = 1;

  std::string experiment;
  int jobs = 1;
  double wall_ms = 0.0;
  int exit_code = 0;

  struct LabeledSet {
    std::string label;
    TrialSet set;
  };
  std::vector<LabeledSet> sets;
  // Named scalars (claims, calibration ratios, fit parameters) in
  // insertion order.
  std::vector<std::pair<std::string, double>> notes;

  void AddSet(std::string label, TrialSet set);
  void AddNote(std::string key, double value);

  JsonValue ToJson() const;
  // Reconstructs an artifact (summaries included) from ToJson() output.
  // Returns nullopt if `json` does not match the schema.
  static std::optional<RunArtifact> FromJson(const JsonValue& json);

  // Serializes to `path` (pretty-printed).  Returns false on I/O failure.
  bool WriteFile(const std::string& path) const;
  static std::optional<RunArtifact> ReadFile(const std::string& path);
};

}  // namespace odharness

#endif  // SRC_HARNESS_ARTIFACT_H_
