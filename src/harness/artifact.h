// Structured run artifacts.
//
// Every odbench run emits one JSON document per experiment alongside the
// ASCII tables: the experiment name, each recorded trial set (per-trial
// samples with breakdowns, summary mean/stddev/90% CI, cross-trial breakdown
// means), and named scalar notes.  These files are the machine-readable
// performance trajectory of the repo and the regression oracle that
// `odbench diff` (src/harness/artifact_diff.h) and the replay-mode repro
// tests (src/harness/artifact_replay.h) consume.
//
// The document contains *measured content only* — deliberately no wall
// clock and no job count — so an artifact is byte-identical for any --jobs
// value and diffable across runs (the scheduler's determinism contract; CI
// enforces it).  Wall-clock timings go to the console.  The provenance
// block records *how* the numbers were produced (calibration constants,
// git revision, seed policy); it is self-describing metadata, not measured
// content, and artifact diffs report it informationally without letting it
// affect the comparison verdict.
//
// Schema (version 3; version-2 documents, which lack "provenance", are
// still readable):
//   {
//     "schema_version": 3,
//     "experiment": "fig06_video",
//     "exit_code": 0,
//     "provenance": {
//       "git_revision": "c54b220",
//       "seed_policy": {"trials_override": 0, "seed_override": 0},
//       "calibration": {"video.chunk_seconds": 0.5, ...}
//     },
//     "sets": [
//       {
//         "label": "Video 1/Combined",
//         "base_seed": 1000,
//         "trials": [
//           {"value": 470.1,
//            "breakdown": {"Idle": 121.9, ...},
//            "components": {"CPU": 88.2, ...}},
//           ...
//         ],
//         "summary": {"n": 5, "mean": ..., "stddev": ..., "ci90": ...,
//                     "min": ..., "max": ...},
//         "breakdown_means": {"Idle": ..., ...}
//       }
//     ],
//     "notes": {"background_watts": 5.6, ...}
//   }

#ifndef SRC_HARNESS_ARTIFACT_H_
#define SRC_HARNESS_ARTIFACT_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/json.h"
#include "src/harness/trial_runner.h"

namespace odharness {

// How an artifact's numbers were produced: the calibration constants in
// effect, the git revision of the build, and whether --trials/--seed
// overrode the experiments' paper defaults.  Equal measurements with
// different provenance are still equal — diffs surface provenance drift as
// information, never as a regression by itself.
struct Provenance {
  std::string git_revision = "unknown";
  // The --trials / --seed overrides (0 = paper defaults everywhere).
  int trials_override = 0;
  uint64_t seed_override = 0;
  // The fault plan (odfault spec grammar) the run was disturbed by; empty
  // for clean runs and omitted from the JSON so pre-fault artifacts stay
  // byte-identical.
  std::string fault_plan;
  // The user-behavior scenario(s) (odscenario grammar, canonical spelling)
  // the run's workload replayed; empty for fixed-workload runs and omitted
  // from the JSON so pre-scenario artifacts stay byte-identical.
  std::string scenario;
  // Calibration constants in registration order (see
  // SetProvenanceCalibration); empty when no application layer registered.
  std::vector<std::pair<std::string, double>> calibration;
};

// Registers the process-wide calibration constants stamped into every
// artifact's provenance.  The application layer owns the constants (the
// harness cannot depend on it), so odbench's main() calls this once with
// odapps::CalibrationConstants() before running anything.
void SetProvenanceCalibration(
    std::vector<std::pair<std::string, double>> constants);
const std::vector<std::pair<std::string, double>>& ProvenanceCalibration();

// The git revision compiled into this binary (CMake configure time), or
// "unknown" outside a git checkout.
std::string BuildGitRevision();

// Provenance <-> JSON, shared by every schema-v3 document kind (the scalar
// RunArtifact and the odtrace power-trace artifact stamp the same block so
// one diff hint path serves both).  FromJson tolerates a null/absent block
// (v2 compatibility): it returns a default-constructed Provenance.
JsonValue ProvenanceToJson(const Provenance& provenance);
Provenance ProvenanceFromJson(const JsonValue* json);

// Serializes `json` to `path` via a temp file + rename, so a crashed or
// killed writer never leaves a truncated document for a later diff or
// replay to consume.  Pretty-printed by default; `compact` emits a single
// line.  Returns false on I/O failure.
bool WriteJsonFile(const std::string& path, const JsonValue& json,
                   bool compact = false);

struct RunArtifact {
  static constexpr int kSchemaVersion = 3;
  // Oldest schema FromJson still accepts; v2 documents predate provenance
  // and read back with a default-constructed block.
  static constexpr int kMinReadSchemaVersion = 2;

  std::string experiment;
  int exit_code = 0;
  Provenance provenance;

  struct LabeledSet {
    std::string label;
    TrialSet set;
  };
  std::vector<LabeledSet> sets;
  // Named scalars (claims, calibration ratios, fit parameters) in
  // insertion order.
  std::vector<std::pair<std::string, double>> notes;

  void AddSet(std::string label, TrialSet set);
  void AddNote(std::string key, double value);

  // The recorded set with this label, or nullptr.  Labels are unique per
  // artifact; lookup is what the diff and replay layers match sets by.
  const LabeledSet* FindSet(const std::string& label) const;
  // The recorded note value, when present.
  std::optional<double> FindNote(const std::string& key) const;

  JsonValue ToJson() const;
  // Reconstructs an artifact (summaries included) from ToJson() output.
  // Accepts schema versions kMinReadSchemaVersion..kSchemaVersion; returns
  // nullopt — never crashes — when `json` does not match the schema
  // (wrong version, missing experiment, malformed set entries).
  static std::optional<RunArtifact> FromJson(const JsonValue& json);

  // Serializes to `path` via a temp file + rename, so a crashed or killed
  // writer never leaves a truncated document for a later diff or replay to
  // consume.  Pretty-printed by default; `compact` emits a single line
  // (same content, ~4x smaller — the committed golden fixtures use it).
  // Returns false on I/O failure.
  bool WriteFile(const std::string& path, bool compact = false) const;
  static std::optional<RunArtifact> ReadFile(const std::string& path);
};

}  // namespace odharness

#endif  // SRC_HARNESS_ARTIFACT_H_
