// Minimal JSON document model for the benchmark harness.
//
// Run artifacts (src/harness/artifact.h) are written as JSON so that external
// tooling can track the repo's performance trajectory; JsonValue is the small
// value type they serialize through, plus a parser so artifacts can be read
// back (round-trip tested).  Numbers are emitted with shortest-round-trip
// precision, so double values survive Dump -> Parse exactly.

#ifndef SRC_HARNESS_JSON_H_
#define SRC_HARNESS_JSON_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace odharness {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  // Insertion-ordered: artifacts keep a stable, human-diffable key order.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}  // NOLINT(google-explicit-constructor)
  JsonValue(double d) : value_(d) {}  // NOLINT(google-explicit-constructor)
  JsonValue(int i) : value_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(uint64_t u) : value_(static_cast<double>(u)) {}  // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}  // NOLINT

  static JsonValue MakeArray() { return JsonValue(Array{}); }
  static JsonValue MakeObject() { return JsonValue(Object{}); }

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool AsBool(bool fallback = false) const;
  double AsDouble(double fallback = 0.0) const;
  const std::string& AsString() const;  // empty string if not a string

  // Object helpers.  Set() appends or replaces; Find() returns nullptr when
  // the key is absent or this value is not an object; Remove() erases a key
  // and reports whether it was present.
  void Set(const std::string& key, JsonValue value);
  const JsonValue* Find(const std::string& key) const;
  JsonValue* Find(const std::string& key);
  bool Remove(const std::string& key);
  // Convenience: Find(key)->AsDouble(fallback) tolerating a missing key.
  double DoubleAt(const std::string& key, double fallback = 0.0) const;

  // Array helper.
  void Append(JsonValue value);

  const Array& array() const;    // empty if not an array
  Array& array();                // coerces to an array, like Append()
  const Object& object() const;  // empty if not an object

  // Serializes the value.  indent > 0 pretty-prints with that many spaces
  // per nesting level; indent == 0 emits a compact single line.
  std::string Dump(int indent = 0) const;

  // Parses a JSON document.  Returns nullopt on malformed input or trailing
  // garbage.
  static std::optional<JsonValue> Parse(std::string_view text);

 private:
  explicit JsonValue(Array a) : value_(std::move(a)) {}
  explicit JsonValue(Object o) : value_(std::move(o)) {}

  void DumpTo(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace odharness

#endif  // SRC_HARNESS_JSON_H_
