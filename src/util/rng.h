// Deterministic pseudo-random number generator.
//
// Every stochastic element of the simulation (multimeter noise, bursty
// workload transitions, utterance jitter) draws from an explicitly seeded
// Rng so that experiments are reproducible run-to-run.  The generator is
// PCG32 (O'Neill), seeded through SplitMix64; both are small, fast, and have
// no global state.

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace odutil {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 32-bit value.
  uint32_t NextU32();

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  // True with probability p.
  bool Bernoulli(double p);

  // Normal (Gaussian) with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Exponential with the given mean.
  double Exponential(double mean);

  // Derives an independent child generator; used to give each component of a
  // large experiment its own stream without coupling their consumption.
  Rng Fork();

 private:
  uint64_t state_;
  uint64_t inc_;
  // Cached second value from the Box-Muller transform.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace odutil

#endif  // SRC_UTIL_RNG_H_
