// Lightweight runtime-check macros.
//
// OD_CHECK aborts with a message when the condition is false; it is always
// compiled in, because this library is a measurement instrument and a silent
// accounting error is worse than a crash.  OD_DCHECK compiles out in NDEBUG
// builds and is for hot paths.

#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define OD_CHECK(cond)                                                              \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      std::fprintf(stderr, "OD_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__,    \
                   #cond);                                                          \
      std::abort();                                                                 \
    }                                                                               \
  } while (0)

#define OD_CHECK_MSG(cond, msg)                                                     \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      std::fprintf(stderr, "OD_CHECK failed at %s:%d: %s (%s)\n", __FILE__,         \
                   __LINE__, #cond, msg);                                           \
      std::abort();                                                                 \
    }                                                                               \
  } while (0)

#ifdef NDEBUG
#define OD_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define OD_DCHECK(cond) OD_CHECK(cond)
#endif

#endif  // SRC_UTIL_CHECK_H_
